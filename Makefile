# Development targets for the CatDB reproduction.

GO ?= go

.PHONY: build vet test race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The benchmark harness fans experiment cells out across a worker pool;
# the race detector guards the per-cell isolation invariants (own LLM
# client, own trace store, read-only shared datasets).
race:
	$(GO) test -race ./internal/bench/... ./internal/core/...

verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem ./...
