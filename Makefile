# Development targets for the CatDB reproduction.

GO ?= go

.PHONY: build vet test race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The benchmark harness fans experiment cells out across a worker pool;
# the race detector guards the per-cell isolation invariants (own LLM
# client, own trace store, read-only shared datasets). internal/profile
# and internal/data are included for the parallel profiler and the
# concurrent column-summary / profile-cache paths.
race:
	$(GO) test -race ./internal/bench/... ./internal/core/... ./internal/profile/... ./internal/data/...

verify: build vet test race

# Profiling benchmarks: one cold iteration per benchmark (matching how the
# committed baseline was captured) merged into BENCH_profile.json; the
# pre-optimization baseline block in that file is preserved.
bench:
	$(GO) test -run='^$$' -bench=Profile -benchmem -benchtime=1x ./internal/profile/ | $(GO) run ./cmd/benchjson -o BENCH_profile.json
