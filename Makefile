# Development targets for the CatDB reproduction.

GO ?= go

.PHONY: build vet test race verify bench lint-encapsulation lint-obs lint-transform lint-dag lint-shard lint-http

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The benchmark harness fans experiment cells out across a worker pool;
# the race detector guards the per-cell isolation invariants (own LLM
# client, own trace store, read-only shared datasets). internal/profile
# and internal/data cover the parallel profiler and concurrent
# column-summary / profile-cache paths; internal/ml covers the parallel
# ensemble fit/inference paths.
race:
	$(GO) test -race ./internal/bench/... ./internal/core/... ./internal/profile/... ./internal/data/... ./internal/ml/... ./internal/obs/... ./internal/pipescript/...

# Column storage is encapsulated behind accessors (Num/Str/IsMissing/
# SetNum/...): only internal/data may touch the backing slices, and the
# Touch() invalidation contract is gone. Fail on any reference to the old
# exported field names (or Touch) outside internal/data.
lint-encapsulation:
	@matches=$$(grep -rnE '\.(Nums|Strs|Missing)\b|\.Touch\(' --include='*.go' --exclude-dir=data .); \
	if [ -n "$$matches" ]; then \
		echo "lint-encapsulation: direct column-storage access outside internal/data:"; \
		echo "$$matches"; \
		exit 1; \
	fi

# Stage timing in internal/core flows through obs.Now/obs.Since so the
# span clock stays injectable and the GenTime/ExecTime split stays
# auditable. Fail on any raw time.Now there.
lint-obs:
	@matches=$$(grep -rnE 'time\.Now\(' --include='*.go' internal/core/); \
	if [ -n "$$matches" ]; then \
		echo "lint-obs: raw time.Now in internal/core (use obs.Now / obs.Since):"; \
		echo "$$matches"; \
		exit 1; \
	fi

# The serving half of the fit/transform split applies only recorded
# parameters: it must have no notion of a label column. Fail on any
# reference to the executor's Target field (or a target option lookup)
# in the transform-phase source.
lint-transform:
	@matches=$$(grep -n 'Target' internal/pipescript/transform.go); \
	if [ -n "$$matches" ]; then \
		echo "lint-transform: transform-phase code references the target column:"; \
		echo "$$matches"; \
		exit 1; \
	fi

# Op metadata (arity, column footprint, barriers, handlers) lives in one
# registry (pipescript/optable.go) consumed by the parser, executor,
# analyzer, and DAG scheduler. Fail on any op dispatch switch in the
# executor sources or any knownOps registration outside the registry.
lint-dag:
	@matches=$$(grep -nE 'switch (st|stmt)\.Op' internal/pipescript/exec.go internal/pipescript/ops_extra.go); \
	if [ -n "$$matches" ]; then \
		echo "lint-dag: op dispatch switch outside the op registry (use registerOp):"; \
		echo "$$matches"; \
		exit 1; \
	fi
	@matches=$$(grep -rnE 'knownOps\[[^]]*\] *=|registerOp\(' --include='*.go' internal/pipescript/ | grep -v 'optable.go'); \
	if [ -n "$$matches" ]; then \
		echo "lint-dag: op registration outside internal/pipescript/optable.go:"; \
		echo "$$matches"; \
		exit 1; \
	fi

# Elementwise op bodies parallelize only through the row sharder
# (pipescript/sharder.go): its disjoint-write contract and shared worker
# budget are what keep results bit-identical and the pool bounded. Fail
# on raw pool fan-outs or goroutines in op-body/serving sources, and on
# raw slab views (NumsView/StrsView) in op bodies — a raw slab loop
# would bypass the ShardView write path.
lint-shard:
	@matches=$$(grep -nE 'pool\.(Map|Each)\(|go func' internal/pipescript/ops.go internal/pipescript/ops_extra.go internal/pipescript/exec.go internal/pipescript/transform.go); \
	if [ -n "$$matches" ]; then \
		echo "lint-shard: raw parallelism in op bodies (route row loops through the sharder):"; \
		echo "$$matches"; \
		exit 1; \
	fi
	@matches=$$(grep -nE '\.(NumsView|StrsView)\(' internal/pipescript/ops.go internal/pipescript/ops_extra.go internal/pipescript/transform.go); \
	if [ -n "$$matches" ]; then \
		echo "lint-shard: raw slab access in elementwise op bodies (use column accessors through shard views):"; \
		echo "$$matches"; \
		exit 1; \
	fi

# The live ops plane is the repo's single HTTP surface: every handler is
# registered on internal/obs/opsserver's private mux, so its read-only
# guarantee (and the bit-identity contract behind it) is auditable in
# one file. Fail on handler registration, mux construction, or server
# listening anywhere else — other packages embed the plane via
# opsserver.Start, they never grow endpoints of their own.
lint-http:
	@matches=$$(grep -rnE 'http\.(Handle|HandleFunc)\(|http\.NewServeMux\(|http\.ListenAndServe\(|pprof\.(Index|Cmdline|Profile|Symbol|Trace)|"net/http/pprof"' --include='*.go' . | grep -v '^\./internal/obs/opsserver/'); \
	if [ -n "$$matches" ]; then \
		echo "lint-http: HTTP handler registration outside internal/obs/opsserver:"; \
		echo "$$matches"; \
		exit 1; \
	fi

verify: build vet lint-encapsulation lint-obs lint-transform lint-dag lint-shard lint-http test race

# Profiling + ML benchmarks: one cold iteration per benchmark (matching
# how the committed baselines were captured) merged into BENCH_*.json;
# the pre-optimization baseline blocks in those files are preserved.
#
# Two-pass lanes select their pre-optimization baseline pass with
# BENCH_BASELINE=<lane> (lanes: data, ingest, dag, shard — see
# internal/bench/baseline; the historical BENCH_DATA_MODE=deep,
# BENCH_INGEST_MODE=legacy, BENCH_DAG_MODE=serial, and
# BENCH_SHARD_MODE=serial variables remain supported aliases).
bench:
	$(GO) test -run='^$$' -bench=Profile -benchmem -benchtime=1x ./internal/profile/ | $(GO) run ./cmd/benchjson -o BENCH_profile.json
	$(GO) test -run='^$$' -bench=ML -benchmem -benchtime=1x -timeout=30m ./internal/ml/ | $(GO) run ./cmd/benchjson -o BENCH_ml.json
	BENCH_BASELINE=data $(GO) test -run='^$$' -bench=Data -benchmem -benchtime=10x ./internal/data/ | $(GO) run ./cmd/benchjson -set-baseline -o BENCH_data.json
	$(GO) test -run='^$$' -bench=Data -benchmem -benchtime=10x ./internal/data/ | $(GO) run ./cmd/benchjson -o BENCH_data.json
	$(GO) test -run='^$$' -bench=Obs -benchmem -benchtime=50x ./internal/bench/ | $(GO) run ./cmd/benchjson -o BENCH_obs.json
	$(GO) test -run='^$$' -bench=Predict -benchtime=300x ./internal/pipescript/ | $(GO) run ./cmd/benchjson -o BENCH_predict.json
	BENCH_BASELINE=ingest $(GO) test -run='^$$' -bench=Ingest -benchmem -benchtime=1x -timeout=30m ./internal/data/ | $(GO) run ./cmd/benchjson -set-baseline -o BENCH_ingest.json
	$(GO) test -run='^$$' -bench=Ingest -benchmem -benchtime=1x -timeout=30m ./internal/data/ | $(GO) run ./cmd/benchjson -o BENCH_ingest.json
	BENCH_BASELINE=dag $(GO) test -run='^$$' -bench=DAG -benchmem -benchtime=3x ./internal/pipescript/ | $(GO) run ./cmd/benchjson -set-baseline -o BENCH_dag.json
	$(GO) test -run='^$$' -bench=DAG -benchmem -benchtime=3x ./internal/pipescript/ | $(GO) run ./cmd/benchjson -o BENCH_dag.json
	BENCH_BASELINE=shard $(GO) test -run='^$$' -bench=Shard -benchmem -benchtime=3x -timeout=30m ./internal/pipescript/ | $(GO) run ./cmd/benchjson -set-baseline -o BENCH_shard.json
	$(GO) test -run='^$$' -bench=Shard -benchmem -benchtime=3x -timeout=30m ./internal/pipescript/ | $(GO) run ./cmd/benchjson -o BENCH_shard.json
