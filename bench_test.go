package catdb

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (§5), each delegating to the corresponding runner in
// internal/bench and reporting the key quantities as custom metrics, plus
// micro-benchmarks of the substrates (profiling, refinement, tree
// training, pipeline execution).
//
// Run everything:   go test -bench=. -benchmem
// Full-size runs:   go run ./cmd/catdb-bench -exp all -scale 1.0
//
// The benchmarks use small scales so the whole suite finishes on a laptop;
// the *shape* statements of EXPERIMENTS.md hold at every scale.

import (
	"io"
	"testing"

	"catdb/internal/bench"
	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/ml"
	"catdb/internal/profile"
)

func benchCfg(b *testing.B) bench.Config {
	b.Helper()
	return bench.Config{Scale: 0.1, Seed: 1, Iterations: 2, Fast: true, Out: io.Discard}
}

// BenchmarkFigure9Profiling regenerates Figure 9 (profiling runtime and
// data-type distribution across all 20 datasets).
func BenchmarkFigure9Profiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig9Profiling(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 20 {
			b.Fatal("expected 20 datasets")
		}
	}
}

// BenchmarkFigure10MetadataImpact regenerates Figure 10 (Table 1 metadata
// combinations vs CatDB / CatDB Chain).
func BenchmarkFigure10MetadataImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig10MetadataImpact(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Best("Diabetes", "CatDB"), "catdb-auc")
		b.ReportMetric(res.Best("Diabetes", "#1"), "combo1-auc")
	}
}

// BenchmarkTable2ErrorTraces regenerates Table 2 and Figure 8 (error-trace
// distribution per model, 23-type histogram).
func BenchmarkTable2ErrorTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable2ErrorTraces(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range res.Distributions {
			if d.Model == "llama3.1-70b" {
				b.ReportMetric(d.REPct, "llama-re-pct")
			}
		}
	}
}

// BenchmarkTable4Refinement regenerates Table 4 (distinct-item reduction
// through catalog refinement).
func BenchmarkTable4Refinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable4Refinement(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Rows)), "refined-columns")
	}
}

// BenchmarkTable5CleaningAccuracy regenerates Tables 5 and 6 (cleaning
// accuracy and runtime on the six §5.3 datasets).
func BenchmarkTable5CleaningAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable5Cleaning(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		if row := res.Get("EU-IT", "CatDB Refined"); row != nil {
			b.ReportMetric(row.TestAcc, "euit-refined-acc")
		}
		if row := res.Get("EU-IT", "CatDB Original"); row != nil {
			b.ReportMetric(row.TestAcc, "euit-original-acc")
		}
	}
}

// BenchmarkTable6CleaningRuntime is the runtime view of the same runs as
// Table 5 (the paper reports them as separate tables).
func BenchmarkTable6CleaningRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable5Cleaning(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		if row := res.Get("Wifi", "CatDB Refined"); row != nil {
			b.ReportMetric(row.Runtime.Seconds(), "catdb-wifi-sec")
		}
	}
}

// BenchmarkFigure11TenIterations regenerates Figure 11 (AUC distributions
// over repeated generations).
func BenchmarkFigure11TenIterations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig11TenIterations(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		if c := res.Get("Diabetes", "gpt-4o", "CatDB"); c != nil {
			b.ReportMetric(c.Mean(), "catdb-mean-auc")
		}
	}
}

// BenchmarkFigure12CostRuntime regenerates Figure 12 (token cost and
// runtime of the same repeated generations).
func BenchmarkFigure12CostRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig11TenIterations(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		if c := res.Get("Diabetes", "gpt-4o", "CatDB"); c != nil {
			b.ReportMetric(float64(c.TotalTokens), "catdb-tokens")
		}
		if c := res.Get("Diabetes", "gpt-4o", "CAAFE TabPFN"); c != nil {
			b.ReportMetric(float64(c.TotalTokens), "caafe-tokens")
		}
	}
}

// BenchmarkTable7SingleIteration regenerates Table 7 (single-iteration
// sweep over eight datasets, three LLMs, and all systems).
func BenchmarkTable7SingleIteration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable7SingleIteration(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		if row := res.Get("CMC", "gpt-4o", "CatDB"); row != nil {
			b.ReportMetric(row.Score, "cmc-catdb-auc")
		}
	}
}

// BenchmarkFigure13Tokens regenerates Figure 13 (token consumption
// including error handling) from the Table 7 sweep.
func BenchmarkFigure13Tokens(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable7SingleIteration(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		total, errTok := 0, 0
		for _, row := range res.Rows {
			if row.System == "CatDB" {
				total += row.Tokens
				errTok += row.ErrTok
			}
		}
		b.ReportMetric(float64(total), "catdb-tokens")
		b.ReportMetric(float64(errTok), "catdb-err-tokens")
	}
}

// BenchmarkTable8EndToEnd regenerates Table 8 (Fail/AVG/SUM end-to-end
// runtimes per system and LLM).
func BenchmarkTable8EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable8EndToEnd(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.System == "CatDB" && row.Model == "gpt-4o" {
				b.ReportMetric(float64(row.Fail), "catdb-fails")
				b.ReportMetric(row.SumSec, "catdb-sum-sec")
			}
		}
	}
}

// BenchmarkFigure14Robustness regenerates Figure 14 (outlier/missing/mixed
// corruption robustness, CatDB vs AutoML without cleaning).
func BenchmarkFigure14Robustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig14Robustness(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := res.Get("Utility", "outliers", 0.05, "CatDB"); ok {
			b.ReportMetric(v, "catdb-r2-at-5pct")
		}
		if v, ok := res.Get("Utility", "outliers", 0.05, "Flaml"); ok {
			b.ReportMetric(v, "flaml-r2-at-5pct")
		}
	}
}

// --- parallel harness ---

// harnessWorkload is the fixed experiment batch the worker-scaling
// benchmarks run: three runners with many independent cells each.
func harnessWorkload(b *testing.B, workers int) {
	b.Helper()
	cfg := benchCfg(b)
	cfg.Workers = workers
	if _, err := bench.RunFig10MetadataImpact(cfg); err != nil {
		b.Fatal(err)
	}
	if _, err := bench.RunTable2ErrorTraces(cfg); err != nil {
		b.Fatal(err)
	}
	if _, err := bench.RunAblation(cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHarnessWorkers1 is the serial baseline of the experiment
// harness (Workers=1 reproduces the old one-cell-at-a-time loops).
func BenchmarkHarnessWorkers1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harnessWorkload(b, 1)
	}
}

// BenchmarkHarnessWorkersMax runs the same workload with the default
// GOMAXPROCS-sized worker pool. Compare against BenchmarkHarnessWorkers1
// for the parallel speedup (≥2x on multi-core machines; on a single-core
// runner the two are equivalent by construction).
func BenchmarkHarnessWorkersMax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harnessWorkload(b, 0) // 0 = GOMAXPROCS default
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkProfileDataset measures Algorithm 1 on a mid-size dataset.
func BenchmarkProfileDataset(b *testing.B) {
	ds, err := data.Load("CMC", 1.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Dataset(ds, profile.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipGenWifi measures one full CatDB generation end to end.
func BenchmarkPipGenWifi(b *testing.B) {
	ds, err := data.Load("Wifi", 1.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client, _ := llm.New("gemini-1.5-pro", int64(i))
		if _, err := core.NewRunner(client).Run(ds, core.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestFit measures random-forest training (the dominant model
// cost inside pipeline execution).
func BenchmarkForestFit(b *testing.B) {
	n, d := 2000, 20
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = float64((i*31+j*17)%100) / 100
		}
		X[i] = row
		y[i] = i % 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := ml.NewForest(ml.ForestConfig{Trees: 20, Seed: int64(i)})
		if err := f.FitClass(X, y, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation regenerates the design-choice ablation (DESIGN.md):
// rules, refinement, knowledge base, static repair, and the τ₂ budget.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblation(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		if row := res.Get("Etailing", "full"); row != nil {
			b.ReportMetric(row.MeanScore, "full-score")
		}
		if row := res.Get("Etailing", "no-rules"); row != nil {
			b.ReportMetric(row.MeanScore, "no-rules-score")
		}
	}
}
