// Package catdb is the public API of the CatDB reproduction: a
// data-catalog-guided, LLM-based generator of data-centric ML pipelines
// (Fathollahzadeh, Mansour, Boehm — PVLDB 18(8), 2025; demonstrated at
// SIGMOD 2025).
//
// The API mirrors the paper's user API (§2):
//
//	md  := catdb.Collect(ds)                  // md = catdb_collect(M)
//	llm := catdb.NewLLM("gemini-1.5-pro", 1)  // llm = LLM(model, url, config)
//	p   := catdb.PipGen(ds, llm, opts)        // P = catdb_pipgen(md, llm)
//	// p.Pipeline: source code of the generated pipeline
//	// p.Exec:     outputs of the pipeline's execution
//
// Everything underneath — profiling, catalog refinement, prompt
// construction, pipeline parsing/execution, error management, ML models,
// baselines, and the benchmark harness — lives in internal packages and is
// re-exported here through type aliases where users need to touch it.
package catdb

import (
	"fmt"
	"io"

	"catdb/internal/catalog"
	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/obs"
	"catdb/internal/pipescript"
	"catdb/internal/pool"
	"catdb/internal/profile"
)

// Core data types (aliases into the tabular substrate).
type (
	// Dataset is a possibly multi-table dataset with target and task.
	Dataset = data.Dataset
	// Table is a single in-memory table.
	Table = data.Table
	// Column is one typed column with a missing-value mask.
	Column = data.Column
	// Task is the supervised learning task type.
	Task = data.Task
	// Relation is a foreign-key edge between dataset tables.
	Relation = data.Relation
)

// Task constants.
const (
	Binary     = data.Binary
	Multiclass = data.Multiclass
	Regression = data.Regression
)

// Catalog and generation types.
type (
	// Profile is the data-catalog profile of a dataset (Algorithm 1).
	Profile = profile.Profile
	// RefineResult is the outcome of catalog refinement (§3.2).
	RefineResult = catalog.Result
	// LLM is the language-model client interface.
	LLM = llm.Client
	// Options configures pipeline generation (α, β, τ₂, metadata combos).
	Options = core.Options
	// Result is a generated-and-executed pipeline with cost accounting.
	Result = core.Result
	// PipelineResult carries the execution metrics of a pipeline run.
	PipelineResult = pipescript.Result
)

// LoadDataset generates one of the twenty built-in synthetic analogues of
// the paper's evaluation datasets (Table 3) at the given scale; scale 1.0
// yields the registry's default row counts.
func LoadDataset(name string, scale float64) (*Dataset, error) {
	return data.Load(name, scale)
}

// DatasetNames lists the built-in datasets in Table 3 order.
func DatasetNames() []string { return data.Names() }

// IngestOptions tunes CSV ingest: Workers bounds the chunk-parse fan-out
// (0 = GOMAXPROCS, 1 = serial) and ChunkBytes the record-aligned chunk
// size (0 = 4 MiB). Results are identical at any setting.
type IngestOptions = data.IngestOptions

// SummaryBackend selects how column statistics are computed:
// exact (bit-identical full-fidelity path), sketch (mergeable one-pass
// sketches, no sorted copies), or auto (sketch at scale).
type SummaryBackend = data.SummaryBackend

// ParseSummaryBackend parses a -summary-backend flag value
// ("exact" | "sketch" | "auto").
func ParseSummaryBackend(s string) (SummaryBackend, error) { return data.ParseSummaryBackend(s) }

// SetDefaultSummaryBackend installs the process-wide statistics backend
// used wherever no explicit backend is passed.
func SetDefaultSummaryBackend(b SummaryBackend) { data.SetDefaultSummaryBackend(b) }

// ReadCSV loads a single-table dataset from a CSV stream; target and task
// describe the prediction problem.
func ReadCSV(r io.Reader, name, target string, task Task) (*Dataset, error) {
	return ReadCSVOptions(r, name, target, task, IngestOptions{})
}

// ReadCSVOptions is ReadCSV with explicit ingest tuning.
func ReadCSVOptions(r io.Reader, name, target string, task Task, opts IngestOptions) (*Dataset, error) {
	t, err := data.ReadCSVOptions(r, name, opts)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{Name: name, Tables: []*Table{t}, Primary: name, Target: target, Task: task}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// ReadCSVFile is ReadCSV over a file path.
func ReadCSVFile(path, target string, task Task) (*Dataset, error) {
	return ReadCSVFileOptions(path, target, task, IngestOptions{})
}

// ReadCSVFileOptions is ReadCSVFile with explicit ingest tuning.
func ReadCSVFileOptions(path, target string, task Task, opts IngestOptions) (*Dataset, error) {
	t, err := data.ReadCSVFileOptions(path, opts)
	if err != nil {
		return nil, err
	}
	t.Name = path
	ds := &Dataset{Name: path, Tables: []*Table{t}, Primary: path, Target: target, Task: task}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// Collect profiles a dataset into its data-catalog metadata — the
// md = catdb_collect(M) call of the paper's user API.
func Collect(ds *Dataset) (*Profile, error) {
	return profile.Dataset(ds, profile.Options{})
}

// NewLLM configures a language model client — the llm = LLM(model,
// client_url, config) call. Supported models: "gpt-4o", "gemini-1.5-pro",
// "llama3.1-70b" (simulated; see DESIGN.md for the substitution rationale).
func NewLLM(model string, seed int64) (LLM, error) {
	return llm.New(model, seed)
}

// ModelNames lists the supported model names.
func ModelNames() []string { return llm.ModelNames() }

// Refine applies the §3.2 catalog refinements (feature-type inference,
// categorical dedup, composite splitting, sentence extraction, list k-hot)
// and materializes the prepared dataset.
func Refine(ds *Dataset, client LLM) (*RefineResult, error) {
	return catalog.RefineDataset(ds, client, catalog.Options{})
}

// PipGen generates, validates, and executes a data-centric ML pipeline —
// the P = catdb_pipgen(md, llm) call. The result carries the pipeline
// source (P.code) and the execution metrics (P.results).
func PipGen(ds *Dataset, client LLM, opts Options) (*Result, error) {
	if client == nil {
		return nil, fmt.Errorf("catdb: nil LLM client")
	}
	return core.NewRunner(client).Run(ds, opts)
}

// Observability types (aliases into internal/obs).
type (
	// Tracer records a hierarchical span tree per PIPEGEN run: run →
	// refine / profile / prompt-build / generate (with one debug-attempt
	// span per error-correction iteration) / exec. Export with
	// WriteJSONL or WriteTree; nil disables tracing with zero overhead.
	Tracer = obs.Tracer
	// Span is one node of a Tracer's span tree.
	Span = obs.Span
	// Metrics is a registry of counters, gauges, and bounded histograms
	// with Prometheus-style text exposition (WriteProm): LLM calls and
	// tokens by prompt kind, KB-vs-LLM fixes by error category, cache
	// hits, pool utilization, and per-stage latencies.
	Metrics = obs.Registry
)

// NewTracer returns an empty span tracer safe for concurrent use.
func NewTracer() *Tracer { return obs.New() }

// NewMetrics returns an empty metrics registry safe for concurrent use.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// PipGenObserved is PipGen with observability attached: the run's span
// tree is recorded into tracer and its counters/latencies into metrics
// (either may be nil). Observed and unobserved runs produce identical
// pipelines and results — instrumentation never changes behavior.
func PipGenObserved(ds *Dataset, client LLM, opts Options, tracer *Tracer, metrics *Metrics) (*Result, error) {
	if client == nil {
		return nil, fmt.Errorf("catdb: nil LLM client")
	}
	r := core.NewRunner(client)
	r.Tracer = tracer
	r.Metrics = metrics
	return r.Run(ds, opts)
}

// PipGenJob is one pipeline-generation request in a ParallelPipGen batch.
type PipGenJob struct {
	Dataset *Dataset
	Model   string // LLM model name (see ModelNames)
	Seed    int64  // base seed; the job's client seed is derived from it
	Options Options
}

// PipGenOutcome pairs one job's generated pipeline with its error; exactly
// one of Result and Err is non-nil.
type PipGenOutcome struct {
	Result *Result
	Err    error
}

// ParallelPipGen runs a batch of PipGen jobs on a bounded worker pool and
// returns the outcomes in job order. Each job gets its own LLM client whose
// seed is derived deterministically from the job's base seed, position,
// dataset name, and model, so outcomes are identical at any worker count
// (workers <= 0 defaults to GOMAXPROCS; workers == 1 runs serially).
func ParallelPipGen(jobs []PipGenJob, workers int) []PipGenOutcome {
	outs := make([]PipGenOutcome, len(jobs))
	pool.Each(workers, len(jobs), func(i int) error {
		j := jobs[i]
		if j.Dataset == nil {
			outs[i].Err = fmt.Errorf("catdb: job %d: nil dataset", i)
			return nil
		}
		client, err := llm.New(j.Model, pool.DeriveSeed(j.Seed, i, j.Dataset.Name, j.Model))
		if err != nil {
			outs[i].Err = err
			return nil
		}
		res, err := core.NewRunner(client).Run(j.Dataset, j.Options)
		if err != nil {
			outs[i].Err = err
			return nil
		}
		outs[i].Result = res
		return nil
	})
	return outs
}

// ExecutePipeline parses and runs a PipeScript pipeline against an
// explicit train/test split — for users who want to re-run or hand-edit a
// generated pipeline.
func ExecutePipeline(source string, train, test *Table, target string, task Task, seed int64) (*PipelineResult, error) {
	return ExecutePipelineWith(source, train, test, target, task, seed, ExecOptions{})
}

// ExecOptions tunes how ExecutePipelineWith and FitPipelineWith run a
// pipeline. The zero value reproduces ExecutePipeline / FitPipeline.
type ExecOptions struct {
	// DAG schedules independent pipeline statements concurrently with
	// the dependency-DAG scheduler. Results, fitted artifacts, and
	// errors are bit-identical to linear execution at any worker count;
	// only wall time changes.
	DAG bool
	// Workers bounds the goroutines the DAG scheduler, row sharding,
	// and the tree/KNN models use (0 = all cores).
	Workers int
	// ShardRows sets the row-shard chunk size for elementwise op loops:
	// 0 selects the built-in default, a negative value disables row
	// sharding (serial loops). Results are bit-identical at any value.
	ShardRows int
	// Metrics, when set, records execution counters and latency
	// histograms (catdb_pipescript_*, catdb_dag_*, catdb_shard_*) into
	// the registry — the same registry an ops server serves at /metrics.
	// Nil disables recording with zero overhead.
	Metrics *Metrics
	// TraceSpan, when set, parents the execution's span tree (exec →
	// dag-segment → dag-wave → dag-node) under an existing span, so live
	// ops-plane views and the critical-path/flamegraph exporters see
	// inside pipeline execution. Observation only: results are
	// bit-identical with or without it.
	TraceSpan *Span
}

// ExecutePipelineWith is ExecutePipeline with execution tuning.
func ExecutePipelineWith(source string, train, test *Table, target string, task Task, seed int64, opts ExecOptions) (*PipelineResult, error) {
	prog, err := pipescript.Parse(source)
	if err != nil {
		return nil, err
	}
	ex := &pipescript.Executor{Target: target, Task: task, Seed: seed,
		DAG: opts.DAG, Workers: opts.Workers, ShardRows: opts.ShardRows,
		Metrics: opts.Metrics, Span: opts.TraceSpan}
	return ex.Execute(prog, train, test)
}

// Serving types (aliases into the pipeline executor).
type (
	// FittedPipeline is the versioned, serializable artifact a fit run
	// produces: every fitted preprocessing parameter plus the trained
	// model. Apply it to new row batches with Predict; steps touching the
	// label column are never recorded, so serving cannot read labels.
	FittedPipeline = pipescript.FittedPipeline
	// Predictions is the output of scoring a row batch with an artifact.
	Predictions = pipescript.Predictions
	// ArtifactError is a serving-contract failure (schema drift, corrupt
	// artifact) with a machine-readable Code.
	ArtifactError = pipescript.ArtifactError
)

// FitPipeline parses and runs a PipeScript pipeline like ExecutePipeline
// and additionally returns the fitted-pipeline artifact. The artifact's
// Predict on the test rows is bit-identical to the executor's own
// held-out scoring — both funnel through the same fitted-step code.
func FitPipeline(source string, train, test *Table, target string, task Task, seed int64) (*PipelineResult, *FittedPipeline, error) {
	return FitPipelineWith(source, train, test, target, task, seed, ExecOptions{})
}

// FitPipelineWith is FitPipeline with execution tuning. The fitted
// artifact is byte-identical whichever way the pipeline executed.
func FitPipelineWith(source string, train, test *Table, target string, task Task, seed int64, opts ExecOptions) (*PipelineResult, *FittedPipeline, error) {
	prog, err := pipescript.Parse(source)
	if err != nil {
		return nil, nil, err
	}
	ex := &pipescript.Executor{Target: target, Task: task, Seed: seed,
		DAG: opts.DAG, Workers: opts.Workers, ShardRows: opts.ShardRows,
		Metrics: opts.Metrics, Span: opts.TraceSpan}
	return ex.Fit(prog, train, test)
}

// RenderPipelineDAG renders the dependency-DAG execution plan of a
// pipeline over the given initial columns: segments of parallel waves
// separated by serial barriers, with per-statement column dependencies.
// It is a static preview of what ExecOptions.DAG would schedule;
// segments whose references cannot be statically resolved are marked
// serial (they fall back to linear execution at run time).
func RenderPipelineDAG(source string, cols []string, target string) (string, error) {
	prog, err := pipescript.Parse(source)
	if err != nil {
		return "", err
	}
	return pipescript.RenderDAG(prog, cols, target), nil
}

// Predict applies a fitted-pipeline artifact to a batch of raw rows:
// recorded preprocessing first, then model inference (512-row chunks,
// identical output at any Workers setting). The rows need the raw feature
// columns the pipeline was fitted on — never the target column.
func Predict(fp *FittedPipeline, rows *Table) (*Predictions, error) {
	return fp.Predict(rows)
}

// LoadFittedPipeline reads and version-checks a fitted-pipeline artifact.
func LoadFittedPipeline(r io.Reader) (*FittedPipeline, error) {
	return pipescript.LoadFittedPipeline(r)
}

// LoadFittedPipelineFile is LoadFittedPipeline over a file path.
func LoadFittedPipelineFile(path string) (*FittedPipeline, error) {
	return pipescript.LoadFittedPipelineFile(path)
}

// ReadTableCSV reads one raw table from a CSV stream — the row-batch
// loader for Predict, with no target or task attached.
func ReadTableCSV(r io.Reader, name string) (*Table, error) {
	return data.ReadCSV(r, name)
}

// ReadTableCSVOptions is ReadTableCSV with explicit ingest tuning.
func ReadTableCSVOptions(r io.Reader, name string, opts IngestOptions) (*Table, error) {
	return data.ReadCSVOptions(r, name, opts)
}
