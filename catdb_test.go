package catdb

import (
	"strings"
	"testing"
)

// Integration tests over the public API: the module's surface exercised
// the way a downstream user would.

func TestPublicQuickstart(t *testing.T) {
	ds, err := LoadDataset("Wifi", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	md, err := Collect(ds)
	if err != nil {
		t.Fatal(err)
	}
	if md.Rows == 0 || len(md.Columns) == 0 {
		t.Fatal("empty profile")
	}
	client, err := NewLLM("gemini-1.5-pro", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PipGen(ds, client, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline == "" || res.Exec == nil {
		t.Fatal("pipeline or metrics missing")
	}
	if res.Exec.TestAUC < 55 {
		t.Fatalf("AUC = %g", res.Exec.TestAUC)
	}
}

func TestParallelPipGenDeterministicAcrossWorkerCounts(t *testing.T) {
	wifi, err := LoadDataset("Wifi", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cmc, err := LoadDataset("CMC", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []PipGenJob{
		{Dataset: wifi, Model: "gemini-1.5-pro", Seed: 1, Options: Options{Seed: 1}},
		{Dataset: cmc, Model: "gpt-4o", Seed: 1, Options: Options{Seed: 1}},
		{Dataset: wifi, Model: "llama3.1-70b", Seed: 2, Options: Options{Seed: 2}},
		{Dataset: nil, Model: "gpt-4o", Seed: 3}, // must error, not panic
	}
	serial := ParallelPipGen(jobs, 1)
	parallel := ParallelPipGen(jobs, 8)
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("outcome counts: %d and %d, want %d", len(serial), len(parallel), len(jobs))
	}
	for i := range jobs[:3] {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("job %d: unexpected errors %v / %v", i, s.Err, p.Err)
		}
		if s.Result.Pipeline != p.Result.Pipeline {
			t.Fatalf("job %d: pipeline differs between worker counts", i)
		}
		if s.Result.Pipeline == "" || s.Result.Exec == nil {
			t.Fatalf("job %d: missing pipeline or metrics", i)
		}
	}
	if serial[3].Err == nil || parallel[3].Err == nil {
		t.Fatal("nil-dataset job must report an error")
	}
	if serial[3].Result != nil {
		t.Fatal("failed job must not carry a result")
	}
	// Distinct jobs over the same dataset get distinct derived clients.
	if serial[0].Result.Model == serial[2].Result.Model &&
		serial[0].Result.Pipeline == serial[2].Result.Pipeline {
		t.Log("note: different models produced identical pipelines (allowed but unexpected)")
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	csv := "x,y,label\n1,2,a\n3,4,b\n5,6,a\n7,8,b\n2,3,a\n6,7,b\n"
	ds, err := ReadCSV(strings.NewReader(csv), "toy", "label", Binary)
	if err != nil {
		t.Fatal(err)
	}
	if ds.PrimaryTable().NumRows() != 6 {
		t.Fatal("rows lost")
	}
	if _, err := ReadCSV(strings.NewReader("x\n1\n"), "bad", "missing", Binary); err == nil {
		t.Fatal("missing target must error")
	}
}

func TestPublicRefine(t *testing.T) {
	ds, err := LoadDataset("Utility", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	client, _ := NewLLM("gemini-1.5-pro", 2)
	ref, err := Refine(ds, client)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Table == nil || len(ref.Updates) == 0 {
		t.Fatal("refinement produced nothing")
	}
}

func TestPublicExecutePipeline(t *testing.T) {
	ds, err := LoadDataset("Diabetes", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ds.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	tr, te := tb.StratifiedSplit(ds.Target, 0.7, 1)
	src := `pipeline "manual"
impute_all strategy=auto
train model=gbm target="target" rounds=20
evaluate metric=auto
`
	res, err := ExecutePipeline(src, tr, te, ds.Target, ds.Task, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAUC < 55 {
		t.Fatalf("manual pipeline AUC = %g", res.TestAUC)
	}
	if _, err := ExecutePipeline("garbage !!", tr, te, ds.Target, ds.Task, 1); err == nil {
		t.Fatal("bad pipeline must error")
	}
}

func TestPublicHelpers(t *testing.T) {
	if len(DatasetNames()) != 20 {
		t.Fatal("dataset registry")
	}
	if len(ModelNames()) != 3 {
		t.Fatal("model registry")
	}
	if _, err := NewLLM("nope", 1); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, err := PipGen(nil, nil, Options{}); err == nil {
		t.Fatal("nil client must error")
	}
}

func TestChainVariantPublic(t *testing.T) {
	ds, err := LoadDataset("CMC", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	client, _ := NewLLM("gpt-4o", 3)
	res, err := PipGen(ds, client, Options{Seed: 3, Chains: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != "CatDB Chain" {
		t.Fatalf("variant = %s", res.Variant)
	}
}
