package catdb

import (
	"strings"
	"testing"
)

// Integration tests over the public API: the module's surface exercised
// the way a downstream user would.

func TestPublicQuickstart(t *testing.T) {
	ds, err := LoadDataset("Wifi", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	md, err := Collect(ds)
	if err != nil {
		t.Fatal(err)
	}
	if md.Rows == 0 || len(md.Columns) == 0 {
		t.Fatal("empty profile")
	}
	client, err := NewLLM("gemini-1.5-pro", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PipGen(ds, client, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline == "" || res.Exec == nil {
		t.Fatal("pipeline or metrics missing")
	}
	if res.Exec.TestAUC < 55 {
		t.Fatalf("AUC = %g", res.Exec.TestAUC)
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	csv := "x,y,label\n1,2,a\n3,4,b\n5,6,a\n7,8,b\n2,3,a\n6,7,b\n"
	ds, err := ReadCSV(strings.NewReader(csv), "toy", "label", Binary)
	if err != nil {
		t.Fatal(err)
	}
	if ds.PrimaryTable().NumRows() != 6 {
		t.Fatal("rows lost")
	}
	if _, err := ReadCSV(strings.NewReader("x\n1\n"), "bad", "missing", Binary); err == nil {
		t.Fatal("missing target must error")
	}
}

func TestPublicRefine(t *testing.T) {
	ds, err := LoadDataset("Utility", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	client, _ := NewLLM("gemini-1.5-pro", 2)
	ref, err := Refine(ds, client)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Table == nil || len(ref.Updates) == 0 {
		t.Fatal("refinement produced nothing")
	}
}

func TestPublicExecutePipeline(t *testing.T) {
	ds, err := LoadDataset("Diabetes", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ds.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	tr, te := tb.StratifiedSplit(ds.Target, 0.7, 1)
	src := `pipeline "manual"
impute_all strategy=auto
train model=gbm target="target" rounds=20
evaluate metric=auto
`
	res, err := ExecutePipeline(src, tr, te, ds.Target, ds.Task, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAUC < 55 {
		t.Fatalf("manual pipeline AUC = %g", res.TestAUC)
	}
	if _, err := ExecutePipeline("garbage !!", tr, te, ds.Target, ds.Task, 1); err == nil {
		t.Fatal("bad pipeline must error")
	}
}

func TestPublicHelpers(t *testing.T) {
	if len(DatasetNames()) != 20 {
		t.Fatal("dataset registry")
	}
	if len(ModelNames()) != 3 {
		t.Fatal("model registry")
	}
	if _, err := NewLLM("nope", 1); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, err := PipGen(nil, nil, Options{}); err == nil {
		t.Fatal("nil client must error")
	}
}

func TestChainVariantPublic(t *testing.T) {
	ds, err := LoadDataset("CMC", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	client, _ := NewLLM("gpt-4o", 3)
	res, err := PipGen(ds, client, Options{Seed: 3, Chains: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != "CatDB Chain" {
		t.Fatalf("variant = %s", res.Variant)
	}
}
