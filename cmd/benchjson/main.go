// Command benchjson converts `go test -bench` output on stdin into a
// committed JSON record. It merges into an existing file: the "baseline"
// block (the pre-optimization numbers) is preserved verbatim, the
// "current" block is replaced with the parsed run, and a per-benchmark
// speedup table is recomputed for every name present in both blocks.
//
//	go test -run='^$' -bench=Profile -benchmem -benchtime=1x ./internal/profile/ \
//	  | go run ./cmd/benchjson -o BENCH_profile.json
//
// With -compare it instead reads a run ledger (the JSONL appended by
// `catdb-bench -ledger`) and diffs each configuration's latest run
// against its earliest baseline, exiting 1 if any stage time or the
// token total regressed beyond -threshold:
//
//	go run ./cmd/benchjson -compare runs.jsonl -threshold 0.10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"catdb/internal/obs/ledger"
)

// Entry is one benchmark measurement. Extra holds custom b.ReportMetric
// units (e.g. p99-ns, qps) keyed by their unit string.
type Entry struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// File is the on-disk layout of BENCH_profile.json.
type File struct {
	Note     string            `json:"note,omitempty"`
	Baseline map[string]Entry  `json:"baseline,omitempty"`
	Current  map[string]Entry  `json:"current"`
	Speedup  map[string]string `json:"speedup_vs_baseline,omitempty"`
}

// benchLine matches the benchmark name and iteration count, e.g.
//
//	BenchmarkProfileKDD98-16  1  17379382968 ns/op  5621032880 B/op  74230499 allocs/op
//	BenchmarkPredictSingleRow-16  300  61500 ns/op  58000 p50-ns  91000 p99-ns
//
// The remainder of the line is value/unit pairs, parsed positionally so
// custom b.ReportMetric units interleave freely with the standard ones.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	out := flag.String("o", "BENCH_profile.json", "output JSON file (merged in place)")
	setBaseline := flag.Bool("set-baseline", false, "record this run as the baseline instead of the current numbers")
	compare := flag.String("compare", "", "run-ledger JSONL to check for regressions instead of parsing stdin")
	threshold := flag.Float64("threshold", 0.10, "relative regression threshold for -compare (0.10 = 10%)")
	flag.Parse()

	if *compare != "" {
		os.Exit(runCompare(*compare, *threshold))
	}

	parsed := map[string]Entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stay pipe-transparent: the raw output remains visible
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		e := Entry{}
		e.Iterations, _ = strconv.Atoi(m[2])
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = int64(v)
			case "allocs/op":
				e.AllocsPerOp = int64(v)
			default:
				if e.Extra == nil {
					e.Extra = map[string]float64{}
				}
				e.Extra[fields[i+1]] = v
			}
		}
		if e.NsPerOp == 0 && e.Extra == nil {
			continue
		}
		parsed[m[1]] = e
	}
	if err := sc.Err(); err != nil {
		fatal("read stdin: %v", err)
	}
	if len(parsed) == 0 {
		fatal("no benchmark lines found on stdin")
	}

	var f File
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			fatal("parse existing %s: %v", *out, err)
		}
	}
	if *setBaseline {
		f.Baseline = parsed
	} else {
		f.Current = parsed
	}
	f.Speedup = map[string]string{}
	for name, cur := range f.Current {
		if base, ok := f.Baseline[name]; ok && cur.NsPerOp > 0 {
			f.Speedup[name] = fmt.Sprintf("%.2fx", base.NsPerOp/cur.NsPerOp)
		}
	}
	if len(f.Speedup) == 0 {
		f.Speedup = nil
	}

	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fatal("encode: %v", err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatal("write %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d entries to %s\n", len(parsed), *out)
}

// runCompare diffs the latest run of every configuration in the ledger
// against its earliest recorded baseline. Exit status: 0 clean, 1
// regressions found, 2 unreadable ledger.
func runCompare(path string, threshold float64) int {
	records, err := ledger.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	if len(records) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %s: empty ledger, nothing to compare\n", path)
		return 0
	}
	regs, compared := ledger.Compare(records, threshold)
	fmt.Printf("benchjson: %d records, %d configurations with history, threshold %.0f%%\n",
		len(records), compared, threshold*100)
	if len(regs) == 0 {
		fmt.Println("benchjson: no regressions")
		return 0
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %s\n", r)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%%\n", len(regs), threshold*100)
	return 1
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
