// Command catdb-bench regenerates the paper's tables and figures (§5).
//
// Usage:
//
//	catdb-bench -exp all -scale 0.2 -seed 1 -iterations 10
//	catdb-bench -exp fig10,table5,table8 -fast
//
// Experiments: fig9, fig10, table2 (incl. fig8), table4, table5 (incl.
// table6), fig11 (incl. fig12), table7 (incl. fig13), table8, fig14, the
// design-choice ablation (ablation), and the ingest-scaling measurement
// (ingest).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"catdb/internal/bench"
	"catdb/internal/data"
	"catdb/internal/obs"
	"catdb/internal/obs/ledger"
	"catdb/internal/obs/opsserver"
	"catdb/internal/pool"
)

type experiment struct {
	name string
	run  func(bench.Config) error
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments or 'all'")
	scale := flag.Float64("scale", 0.2, "dataset row-count scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	iters := flag.Int("iterations", 10, "iterations for fig11/fig12/table2")
	fast := flag.Bool("fast", false, "trimmed datasets and iterations")
	workers := flag.Int("workers", 0, "concurrent experiment cells (0 = GOMAXPROCS, 1 = serial)")
	ingestWorkers := flag.Int("ingest-workers", 0, "CSV parse goroutines (0 = all cores, 1 = serial; output identical at any setting)")
	chunkBytes := flag.Int("chunk-bytes", 0, "CSV ingest chunk size in bytes (0 = 4 MiB)")
	summaryBackend := flag.String("summary-backend", "", "column statistics backend: exact|sketch|auto (default exact)")
	outPath := flag.String("out", "", "also write the report to this file")
	progress := flag.Bool("progress", false, "print one line per completed experiment cell to stderr")
	traceOut := flag.String("trace-out", "", "write per-cell span traces to this file (.jsonl = JSON lines, otherwise a human-readable tree)")
	metricsOut := flag.String("metrics-out", "", "write harness metrics in Prometheus text format to this file")
	dag := flag.Bool("dag", false, "execute pipelines with the DAG statement scheduler (results are bit-identical; only wall time changes)")
	shardRows := flag.Int("shard-rows", 0, "row-shard chunk size for elementwise pipeline ops (0 = default, negative = serial; results are bit-identical at any value)")
	listen := flag.String("listen", "", "serve the live ops plane on this address while experiments run (/metrics, /api/spans, /api/runs, /debug/pprof; results are bit-identical with or without it)")
	ledgerPath := flag.String("ledger", "", "append one JSONL record per completed run to this persistent run ledger (compare runs with `benchjson -compare`)")
	flag.Parse()

	var out io.Writer = os.Stdout
	var file *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "catdb-bench:", err)
			os.Exit(1)
		}
		file = f
		out = io.MultiWriter(os.Stdout, f)
	}
	var tracer *obs.Tracer
	var metrics *obs.Registry
	// -listen implies live tracing and metrics even without the file
	// exporters: the ops server's whole point is watching a run that
	// wasn't configured to save anything.
	if *traceOut != "" || *listen != "" {
		tracer = obs.New()
	}
	if *metricsOut != "" || *listen != "" {
		metrics = obs.NewRegistry()
		// The worker pool is process-wide infrastructure, so its queue
		// and utilization gauges are installed process-wide too.
		pool.SetMetrics(metrics)
	}
	var ledgerW *ledger.Writer
	if *ledgerPath != "" {
		w, err := ledger.OpenWriter(*ledgerPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "catdb-bench:", err)
			os.Exit(1)
		}
		ledgerW = w
	}
	if *listen != "" {
		srv, err := opsserver.Start(*listen, opsserver.Options{
			Registry: metrics, Tracer: tracer, LedgerPath: *ledgerPath,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "catdb-bench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		col := opsserver.NewCollector(metrics)
		col.Start(time.Second)
		defer col.Stop()
		fmt.Fprintf(os.Stderr, "ops server listening on %s\n", srv.URL())
	}
	var progressW io.Writer
	if *progress {
		progressW = os.Stderr
	}
	backend, err := data.ParseSummaryBackend(*summaryBackend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catdb-bench:", err)
		os.Exit(2)
	}
	data.SetDefaultSummaryBackend(backend)
	cfg := bench.Config{
		Scale: *scale, Seed: *seed, Iterations: *iters, Fast: *fast, Workers: *workers, Out: out,
		Ingest: data.IngestOptions{Workers: *ingestWorkers, ChunkBytes: *chunkBytes},
		Tracer: tracer, Metrics: metrics, Progress: progressW, DAG: *dag, ShardRows: *shardRows,
		Ledger: ledgerW,
	}

	experiments := []experiment{
		{"fig9", func(c bench.Config) error { _, err := bench.RunFig9Profiling(c); return err }},
		{"fig10", func(c bench.Config) error { _, err := bench.RunFig10MetadataImpact(c); return err }},
		{"table2", func(c bench.Config) error { _, err := bench.RunTable2ErrorTraces(c); return err }},
		{"table4", func(c bench.Config) error { _, err := bench.RunTable4Refinement(c); return err }},
		{"table5", func(c bench.Config) error { _, err := bench.RunTable5Cleaning(c); return err }},
		{"fig11", func(c bench.Config) error { _, err := bench.RunFig11TenIterations(c); return err }},
		{"table7", func(c bench.Config) error { _, err := bench.RunTable7SingleIteration(c); return err }},
		{"table8", func(c bench.Config) error { _, err := bench.RunTable8EndToEnd(c); return err }},
		{"fig14", func(c bench.Config) error { _, err := bench.RunFig14Robustness(c); return err }},
		{"ablation", func(c bench.Config) error { _, err := bench.RunAblation(c); return err }},
		{"ingest", func(c bench.Config) error { _, err := bench.RunIngestScaling(c); return err }},
	}
	want := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(name)] = true
	}
	ranAny := false
	for _, e := range experiments {
		if !want["all"] && !want[e.name] {
			continue
		}
		ranAny = true
		start := time.Now()
		fmt.Fprintf(out, "\n### experiment %s (scale=%.2f seed=%d) ###\n", e.name, *scale, *seed)
		if err := e.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "catdb-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "[%s completed in %s]\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !ranAny {
		fmt.Fprintln(os.Stderr, "catdb-bench: no matching experiments; known:", names(experiments))
		os.Exit(2)
	}
	if err := writeObsOutputs(tracer, metrics, *traceOut, *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, "catdb-bench:", err)
		os.Exit(1)
	}
	if ledgerW != nil {
		// Close reports the first append error retained during the run —
		// a full disk surfaces here instead of failing experiment cells.
		if err := ledgerW.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "catdb-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "run ledger appended to %s\n", *ledgerPath)
	}
	if file != nil {
		if err := file.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "catdb-bench:", err)
			os.Exit(1)
		}
	}
}

// writeObsOutputs exports the collected span trace (JSONL or tree by
// file extension) and the Prometheus metrics snapshot.
func writeObsOutputs(tracer *obs.Tracer, metrics *obs.Registry, tracePath, metricsPath string) error {
	if tracer != nil && tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if strings.HasSuffix(tracePath, ".jsonl") {
			err = tracer.WriteJSONL(f)
		} else {
			err = tracer.WriteTree(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d spans)\n", tracePath, tracer.Len())
	}
	if metrics != nil && metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		err = metrics.WriteProm(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", metricsPath)
	}
	return nil
}

func names(exps []experiment) string {
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.name
	}
	return strings.Join(out, ", ")
}
