// Command catdb is the CLI front end of the CatDB reproduction: profile a
// dataset, refine its catalog, and generate+execute a data-centric ML
// pipeline.
//
// Usage:
//
//	catdb datasets
//	catdb profile  -dataset Wifi | -csv file.csv -target y -task binary
//	catdb refine   -dataset Utility [-model gemini-1.5-pro]
//	catdb generate -dataset Diabetes [-model gpt-4o] [-chains 3] [-seed 1]
//	catdb fit      -dataset Diabetes -pipe p.pipe -out model.catdb.json
//	catdb predict  -artifact model.catdb.json -csv rows.csv [-proba]
package main

import (
	csvenc "encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"catdb"
	"catdb/internal/data"
	"catdb/internal/obs/opsserver"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "datasets":
		err = cmdDatasets()
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "refine":
		err = cmdRefine(os.Args[2:])
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "fit":
		err = cmdFit(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "catdb:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: catdb <command> [flags]

commands:
  datasets   list the built-in synthetic datasets (Table 3 analogues)
  profile    profile a dataset into data-catalog metadata
  refine     run catalog refinement and report distinct-count reductions
  generate   generate, validate, and execute a pipeline (-export saves it)
  run        execute a saved .pipe file against a dataset
  fit        fit a saved .pipe file and export the artifact (-out model.json)
  predict    score CSV rows (file or stdin) with a fitted artifact`)
}

// startOps serves the live ops plane (/metrics, /api/spans,
// /debug/pprof) on addr for the duration of the command and starts the
// runtime collector against metrics. It returns a shutdown func; nil
// Options fields simply 404 their endpoints. Results are bit-identical
// with or without the server — it only reads snapshots.
func startOps(addr string, tracer *catdb.Tracer, metrics *catdb.Metrics) (func(), error) {
	srv, err := opsserver.Start(addr, opsserver.Options{Registry: metrics, Tracer: tracer})
	if err != nil {
		return nil, err
	}
	col := opsserver.NewCollector(metrics)
	col.Start(time.Second)
	fmt.Fprintf(os.Stderr, "ops server listening on %s\n", srv.URL())
	return func() {
		col.Stop()
		_ = srv.Close()
	}, nil
}

// dsFlags bundles the shared dataset-selection and ingest-tuning flags.
type dsFlags struct {
	dataset, csv, target, task *string
	scale                      *float64
	ingestWorkers, chunkBytes  *int
	summaryBackend             *string
}

// datasetFlags adds the shared dataset-selection flags.
func datasetFlags(fs *flag.FlagSet) *dsFlags {
	f := &dsFlags{}
	f.dataset = fs.String("dataset", "", "built-in dataset name (see `catdb datasets`)")
	f.csv = fs.String("csv", "", "path to a CSV file (single-table dataset)")
	f.target = fs.String("target", "", "target column (required with -csv)")
	f.task = fs.String("task", "binary", "task type with -csv: binary|multiclass|regression")
	f.scale = fs.Float64("scale", 0.2, "row-count scale for built-in datasets")
	f.ingestWorkers = fs.Int("ingest-workers", 0, "CSV parse goroutines (0 = all cores, 1 = serial; output identical at any setting)")
	f.chunkBytes = fs.Int("chunk-bytes", 0, "CSV ingest chunk size in bytes (0 = 4 MiB; output identical at any setting)")
	f.summaryBackend = fs.String("summary-backend", "auto", "column statistics backend: exact|sketch|auto (auto sketches at scale)")
	return f
}

func (f *dsFlags) load() (*catdb.Dataset, error) {
	backend, err := catdb.ParseSummaryBackend(*f.summaryBackend)
	if err != nil {
		return nil, err
	}
	catdb.SetDefaultSummaryBackend(backend)
	if *f.dataset != "" {
		return catdb.LoadDataset(*f.dataset, *f.scale)
	}
	if *f.csv == "" {
		return nil, fmt.Errorf("one of -dataset or -csv is required")
	}
	if *f.target == "" {
		return nil, fmt.Errorf("-target is required with -csv")
	}
	var tk catdb.Task
	switch *f.task {
	case "binary":
		tk = catdb.Binary
	case "multiclass":
		tk = catdb.Multiclass
	case "regression":
		tk = catdb.Regression
	default:
		return nil, fmt.Errorf("unknown task %q", *f.task)
	}
	return catdb.ReadCSVFileOptions(*f.csv, *f.target, tk, f.ingest())
}

func (f *dsFlags) ingest() catdb.IngestOptions {
	return catdb.IngestOptions{Workers: *f.ingestWorkers, ChunkBytes: *f.chunkBytes}
}

func cmdDatasets() error {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tName\tTables\tRows\tCols\tTask\tClasses\tPaperRows")
	for _, in := range data.AllInfo() {
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%s\t%d\t%d\n",
			in.ID, in.Name, in.Tables, in.Rows, in.Cols, in.Task, in.Classes, data.PaperRows(in.Name))
	}
	return w.Flush()
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	df := datasetFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := df.load()
	if err != nil {
		return err
	}
	prof, err := catdb.Collect(ds)
	if err != nil {
		return err
	}
	fmt.Printf("dataset=%s rows=%d cols=%d task=%s target=%s profiled in %s\n\n",
		prof.Dataset, prof.Rows, len(prof.Columns), prof.Task, prof.Target, prof.Elapsed)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Column\tType\tFeature\tDistinct%\tMissing%\tTargetCorr")
	for _, c := range prof.Columns {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.1f\t%.1f\t%.2f\n",
			c.Name, c.DataType, c.FeatureType, c.DistinctPct, c.MissingPct, c.TargetCorr)
	}
	return w.Flush()
}

func cmdRefine(args []string) error {
	fs := flag.NewFlagSet("refine", flag.ExitOnError)
	df := datasetFlags(fs)
	model := fs.String("model", "gemini-1.5-pro", "LLM model name")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := df.load()
	if err != nil {
		return err
	}
	client, err := catdb.NewLLM(*model, *seed)
	if err != nil {
		return err
	}
	ref, err := catdb.Refine(ds, client)
	if err != nil {
		return err
	}
	fmt.Printf("refined %s in %s: %d updates\n\n", ds.Name, ref.Elapsed, len(ref.Updates))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Column\tRefinement\tOriginalDistinct\tRefinedDistinct")
	for _, up := range ref.Updates {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\n", up.Column, up.Kind, up.OriginalDistinct, up.RefinedDistinct)
	}
	return w.Flush()
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	df := datasetFlags(fs)
	model := fs.String("model", "gemini-1.5-pro", "LLM model name")
	seed := fs.Int64("seed", 1, "random seed")
	chains := fs.Int("chains", 1, "β: 1 = CatDB single prompt, >1 = CatDB Chain")
	topK := fs.Int("topk", 0, "α: keep only the K most relevant columns (0 = all)")
	noRefine := fs.Bool("no-refine", false, "skip catalog refinement")
	export := fs.String("export", "", "write the generated pipeline to this .pipe file")
	traceOut := fs.String("trace-out", "", "write the run's span trace to this file (.jsonl = JSON lines, otherwise a human-readable tree)")
	metricsOut := fs.String("metrics-out", "", "write run metrics in Prometheus text format to this file")
	dag := fs.Bool("dag", false, "execute generated pipelines with the DAG statement scheduler (results are bit-identical; only wall time changes)")
	shardRows := fs.Int("shard-rows", 0, "row-shard chunk size for elementwise pipeline ops (0 = default, negative = serial; results are bit-identical at any value)")
	listen := fs.String("listen", "", "serve the live ops plane on this address while generating (/metrics, /api/spans, /debug/pprof; results are bit-identical with or without it)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := df.load()
	if err != nil {
		return err
	}
	client, err := catdb.NewLLM(*model, *seed)
	if err != nil {
		return err
	}
	var tracer *catdb.Tracer
	var metrics *catdb.Metrics
	// -listen implies live tracing and metrics even without the file
	// exporters: the ops server exists to watch runs that were not
	// configured to save anything.
	if *traceOut != "" || *listen != "" {
		tracer = catdb.NewTracer()
	}
	if *metricsOut != "" || *listen != "" {
		metrics = catdb.NewMetrics()
	}
	if *listen != "" {
		stopOps, serr := startOps(*listen, tracer, metrics)
		if serr != nil {
			return serr
		}
		defer stopOps()
	}
	res, err := catdb.PipGenObserved(ds, client, catdb.Options{
		Seed: *seed, Chains: *chains, TopK: *topK, NoRefine: *noRefine, DAG: *dag, ExecShardRows: *shardRows,
	}, tracer, metrics)
	if werr := writeObsOutputs(tracer, metrics, *traceOut, *metricsOut); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		return err
	}
	fmt.Printf("=== %s pipeline for %s (model %s) ===\n%s\n", res.Variant, res.Dataset, res.Model, res.Pipeline)
	ex := res.Exec
	if ex.Metric == "r2" {
		fmt.Printf("train R2=%.2f  test R2=%.2f  RMSE=%.3f\n", ex.TrainR2, ex.TestR2, ex.TestRMSE)
	} else {
		fmt.Printf("train acc=%.2f auc=%.2f  test acc=%.2f auc=%.2f\n", ex.TrainAcc, ex.TrainAUC, ex.TestAcc, ex.TestAUC)
	}
	fmt.Printf("model=%s features=%d rows=%d\n", ex.ModelName, ex.Features, ex.TrainRows)
	fmt.Printf("cost: prompt=%d completion=%d errPrompt=%d errCompletion=%d (calls=%d, kbFixes=%d, llmFixes=%d)\n",
		res.Cost.PromptTokens, res.Cost.CompletionTokens, res.Cost.ErrorPromptTokens,
		res.Cost.ErrorCompletionTokens, res.Cost.LLMCalls, res.Cost.KBFixes, res.Cost.LLMFixes)
	fmt.Printf("time: profile=%s refine=%s generate=%s execute=%s total=%s\n",
		res.ProfileTime, res.RefineTime, res.GenTime, res.ExecTime, res.TotalTime())
	if *export != "" {
		if err := os.WriteFile(*export, []byte(res.Pipeline), 0o644); err != nil {
			return err
		}
		fmt.Printf("pipeline written to %s\n", *export)
	}
	return nil
}

// writeObsOutputs exports the collected span trace and metrics. It runs
// even when generation failed, so a failing run still leaves its partial
// trace behind for diagnosis.
func writeObsOutputs(tracer *catdb.Tracer, metrics *catdb.Metrics, tracePath, metricsPath string) error {
	if tracer != nil && tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if strings.HasSuffix(tracePath, ".jsonl") {
			err = tracer.WriteJSONL(f)
		} else {
			err = tracer.WriteTree(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", tracePath)
	}
	if metrics != nil && metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		err = metrics.WriteProm(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", metricsPath)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	df := datasetFlags(fs)
	pipe := fs.String("pipe", "", "path to a .pipe file (required)")
	seed := fs.Int64("seed", 1, "random seed")
	refine := fs.Bool("refine", false, "apply catalog refinement before running (use when the pipeline was generated without -no-refine)")
	model := fs.String("model", "gemini-1.5-pro", "LLM model for -refine")
	dag := fs.Bool("dag", false, "schedule independent statements concurrently (results are bit-identical; only wall time changes)")
	workers := fs.Int("workers", 0, "execution goroutines for -dag, row sharding, and model fitting (0 = all cores)")
	shardRows := fs.Int("shard-rows", 0, "row-shard chunk size for elementwise ops (0 = default, negative = serial; results are bit-identical at any value)")
	dagPlan := fs.Bool("dag-plan", false, "print the DAG execution plan (waves, barriers, dependencies) before running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pipe == "" {
		return fmt.Errorf("-pipe is required")
	}
	ds, tr, te, err := prepareSplit(df, *refine, *model, *seed)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*pipe)
	if err != nil {
		return err
	}
	if *dagPlan {
		plan, perr := catdb.RenderPipelineDAG(string(src), tr.ColumnNames(), ds.Target)
		if perr != nil {
			return perr
		}
		fmt.Print(plan)
	}
	res, err := catdb.ExecutePipelineWith(string(src), tr, te, ds.Target, ds.Task, *seed,
		catdb.ExecOptions{DAG: *dag, Workers: *workers, ShardRows: *shardRows})
	if err != nil {
		return err
	}
	printExecResult(res)
	return nil
}

// prepareSplit loads a dataset, optionally refines it, and splits it
// 70/30 — the shared front half of `catdb run` and `catdb fit`.
func prepareSplit(df *dsFlags, refine bool, model string, seed int64) (*catdb.Dataset, *catdb.Table, *catdb.Table, error) {
	ds, err := df.load()
	if err != nil {
		return nil, nil, nil, err
	}
	var tb *catdb.Table
	if refine {
		client, err := catdb.NewLLM(model, seed)
		if err != nil {
			return nil, nil, nil, err
		}
		ref, err := catdb.Refine(ds, client)
		if err != nil {
			return nil, nil, nil, err
		}
		tb = ref.Table
	} else {
		tb, err = ds.Consolidate()
		if err != nil {
			return nil, nil, nil, err
		}
	}
	var tr, te *catdb.Table
	if ds.Task.IsClassification() {
		tr, te = tb.StratifiedSplit(ds.Target, 0.7, seed)
	} else {
		tr, te = tb.Split(0.7, seed)
	}
	return ds, tr, te, nil
}

func printExecResult(res *catdb.PipelineResult) {
	if res.Metric == "r2" {
		fmt.Printf("train R2=%.2f  test R2=%.2f  RMSE=%.3f\n", res.TrainR2, res.TestR2, res.TestRMSE)
	} else {
		fmt.Printf("train acc=%.2f auc=%.2f  test acc=%.2f auc=%.2f\n", res.TrainAcc, res.TrainAUC, res.TestAcc, res.TestAUC)
	}
	fmt.Printf("model=%s features=%d rows=%d\n", res.ModelName, res.Features, res.TrainRows)
}

func cmdFit(args []string) error {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	df := datasetFlags(fs)
	pipe := fs.String("pipe", "", "path to a .pipe file (required)")
	seed := fs.Int64("seed", 1, "random seed")
	refine := fs.Bool("refine", false, "apply catalog refinement before fitting")
	model := fs.String("model", "gemini-1.5-pro", "LLM model for -refine")
	out := fs.String("out", "model.catdb.json", "fitted-pipeline artifact output path")
	dag := fs.Bool("dag", false, "schedule independent statements concurrently (the artifact is byte-identical; only wall time changes)")
	workers := fs.Int("workers", 0, "execution goroutines for -dag, row sharding, and model fitting (0 = all cores)")
	shardRows := fs.Int("shard-rows", 0, "row-shard chunk size for elementwise ops (0 = default, negative = serial; the artifact is byte-identical at any value)")
	listen := fs.String("listen", "", "serve the live ops plane on this address while fitting (/metrics, /api/spans, /debug/pprof; the artifact is byte-identical with or without it)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pipe == "" {
		return fmt.Errorf("-pipe is required")
	}
	var tracer *catdb.Tracer
	var metrics *catdb.Metrics
	var fitSpan *catdb.Span
	if *listen != "" {
		tracer = catdb.NewTracer()
		metrics = catdb.NewMetrics()
		fitSpan = tracer.Root("fit")
		stopOps, serr := startOps(*listen, tracer, metrics)
		if serr != nil {
			return serr
		}
		defer stopOps()
	}
	ds, tr, te, err := prepareSplit(df, *refine, *model, *seed)
	if err != nil {
		return err
	}
	src, err := os.ReadFile(*pipe)
	if err != nil {
		return err
	}
	res, fp, err := catdb.FitPipelineWith(string(src), tr, te, ds.Target, ds.Task, *seed,
		catdb.ExecOptions{DAG: *dag, Workers: *workers, ShardRows: *shardRows,
			Metrics: metrics, TraceSpan: fitSpan})
	fitSpan.End()
	if err != nil {
		return err
	}
	printExecResult(res)
	if err := fp.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("artifact written to %s (%d steps, model=%s)\n", *out, len(fp.Steps), fp.ModelName)
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	artifact := fs.String("artifact", "", "fitted-pipeline artifact path (required)")
	csvPath := fs.String("csv", "", "CSV rows to score; '-' reads stdin (required)")
	proba := fs.Bool("proba", false, "classification: also emit per-class probability columns")
	workers := fs.Int("workers", 0, "inference and transform goroutines (0 = all cores; output is identical at any setting)")
	dag := fs.Bool("dag", false, "apply independent recorded steps concurrently (predictions are identical; only wall time changes)")
	shardRows := fs.Int("shard-rows", 0, "row-shard chunk size for transform-time elementwise loops (0 = default, negative = serial; predictions are identical at any value)")
	ingestWorkers := fs.Int("ingest-workers", 0, "CSV parse goroutines (0 = all cores, 1 = serial; output identical at any setting)")
	chunkBytes := fs.Int("chunk-bytes", 0, "CSV ingest chunk size in bytes (0 = 4 MiB)")
	metricsOut := fs.String("metrics-out", "", "write serving metrics in Prometheus text format to this file")
	listen := fs.String("listen", "", "serve the live ops plane on this address while scoring (/metrics, /debug/pprof; predictions are identical with or without it)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *artifact == "" {
		return fmt.Errorf("-artifact is required")
	}
	if *csvPath == "" {
		return fmt.Errorf("-csv is required ('-' for stdin)")
	}
	fp, err := catdb.LoadFittedPipelineFile(*artifact)
	if err != nil {
		return err
	}
	fp.Workers = *workers
	fp.DAG = *dag
	fp.ShardRows = *shardRows
	var metrics *catdb.Metrics
	if *metricsOut != "" || *listen != "" {
		metrics = catdb.NewMetrics()
		fp.Metrics = metrics
	}
	if *listen != "" {
		stopOps, serr := startOps(*listen, nil, metrics)
		if serr != nil {
			return serr
		}
		defer stopOps()
	}
	var in io.Reader = os.Stdin
	if *csvPath != "-" {
		f, err := os.Open(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	tb, err := catdb.ReadTableCSVOptions(in, "batch", catdb.IngestOptions{Workers: *ingestWorkers, ChunkBytes: *chunkBytes})
	if err != nil {
		return err
	}
	pred, err := catdb.Predict(fp, tb)
	if werr := writeObsOutputs(nil, metrics, "", *metricsOut); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		return err
	}
	w := csvenc.NewWriter(os.Stdout)
	header := []string{"prediction"}
	if pred.Task != "regression" && *proba {
		for _, cl := range pred.Classes {
			header = append(header, "proba_"+cl)
		}
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for i := 0; i < pred.Rows; i++ {
		var row []string
		if pred.Task == "regression" {
			row = append(row, strconv.FormatFloat(pred.Values[i], 'g', -1, 64))
		} else {
			row = append(row, pred.Labels[i])
			if *proba {
				for _, p := range pred.Proba[i] {
					row = append(row, strconv.FormatFloat(p, 'g', -1, 64))
				}
			}
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "scored %d rows (task=%s model=%s)\n", pred.Rows, pred.Task, fp.ModelName)
	return nil
}
