// Multitable: CatDB over a relational dataset — the 8-table Financial
// analogue. The catalog consolidates the tables along their foreign-key
// relations, and CatDB Chain (β>1) splits prompt construction into
// per-chunk preprocessing and feature-engineering prompts plus one model
// selection prompt, which is what keeps wide, joined schemas inside the
// LLM's context budget (§3.4).
package main

import (
	"fmt"
	"log"

	"catdb"
)

func main() {
	ds, err := catdb.LoadDataset("Financial", 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d tables, %d relations, task %s\n",
		ds.Name, ds.NumTables(), len(ds.Relations), ds.Task)
	for _, rel := range ds.Relations {
		fmt.Printf("  %s.%s -> %s.%s\n", rel.LeftTable, rel.LeftCol, rel.RightTable, rel.RightCol)
	}
	joined, err := ds.Consolidate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consolidated: %d rows x %d columns\n\n", joined.NumRows(), joined.NumCols())

	client, err := catdb.NewLLM("gpt-4o", 11)
	if err != nil {
		log.Fatal(err)
	}

	// Single prompt vs chain on the same joined schema.
	single, err := catdb.PipGen(ds, client, catdb.Options{Seed: 11, Chains: 1})
	if err != nil {
		log.Fatal(err)
	}
	chainClient, _ := catdb.NewLLM("gpt-4o", 11)
	chain, err := catdb.PipGen(ds, chainClient, catdb.Options{Seed: 11, Chains: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- CatDB Chain pipeline (3 chunks) ---")
	fmt.Print(chain.Pipeline)
	fmt.Printf("\n%-12s  AUC %.1f  tokens %6d  llm-calls %d\n",
		single.Variant, single.Exec.TestAUC, single.Cost.Total(), single.Cost.LLMCalls)
	fmt.Printf("%-12s  AUC %.1f  tokens %6d  llm-calls %d\n",
		chain.Variant, chain.Exec.TestAUC, chain.Cost.Total(), chain.Cost.LLMCalls)
}
