// Quickstart: load a built-in dataset, collect its data catalog, generate
// a data-centric ML pipeline with a (simulated) LLM, and print the
// pipeline plus its train/test metrics — the paper's user API (§2) in a
// dozen lines.
package main

import (
	"fmt"
	"log"

	"catdb"
)

func main() {
	// 1. Load a dataset (one of the 20 built-in Table 3 analogues).
	ds, err := catdb.LoadDataset("Diabetes", 1.0)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Collect the data-catalog metadata (Algorithm 1).
	md, err := catdb.Collect(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected catalog for %s: %d rows, %d columns (profiled in %s)\n",
		md.Dataset, md.Rows, len(md.Columns), md.Elapsed.Round(1000))

	// 3. Configure the LLM.
	client, err := catdb.NewLLM("gemini-1.5-pro", 42)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Generate, validate, and execute the pipeline.
	res, err := catdb.PipGen(ds, client, catdb.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- generated pipeline (P.code) ---")
	fmt.Print(res.Pipeline)
	fmt.Println("\n--- execution results (P.results) ---")
	fmt.Printf("train accuracy %.1f%%  AUC %.1f\n", res.Exec.TrainAcc, res.Exec.TrainAUC)
	fmt.Printf("test  accuracy %.1f%%  AUC %.1f\n", res.Exec.TestAcc, res.Exec.TestAUC)
	fmt.Printf("tokens: %d (of which error management: %d)\n", res.Cost.Total(), res.Cost.ErrorTokens())
	fmt.Printf("end-to-end time: %s\n", res.TotalTime().Round(1000))
}
