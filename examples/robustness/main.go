// Robustness: the Figure 14 experiment in miniature. Outliers are
// injected into the *training* split of the Utility regression dataset at
// increasing ratios (test data stays clean, as in the paper); CatDB's
// data-centric pipelines clip/impute per the catalog's rules and hold
// their R² while an AutoML tool without cleaning degrades.
package main

import (
	"fmt"
	"log"
	"time"

	"catdb"
	"catdb/internal/baselines"
	"catdb/internal/data"
)

func main() {
	fmt.Println("ratio   CatDB-R2   FLAML-R2 (no cleaning)")
	for _, ratio := range []float64{0, 0.01, 0.02, 0.05} {
		ratio := ratio
		ds, err := catdb.LoadDataset("Utility", 0.4)
		if err != nil {
			log.Fatal(err)
		}
		inject := func(t *catdb.Table) {
			data.InjectOutliers(t, ds.Target, ratio, 3)
			data.InjectTargetOutliers(t, ds.Target, ratio, 4)
		}

		client, err := catdb.NewLLM("gemini-1.5-pro", 3)
		if err != nil {
			log.Fatal(err)
		}
		res, err := catdb.PipGen(ds, client, catdb.Options{Seed: 3, TrainMutator: inject})
		if err != nil {
			log.Fatal(err)
		}

		tb, err := ds.Consolidate()
		if err != nil {
			log.Fatal(err)
		}
		tr, te := tb.Split(0.7, 3)
		inject(tr)
		aml := baselines.RunAutoML(baselines.FLAML, tr, te, ds.Target, ds.Task,
			baselines.AutoMLOptions{Seed: 3, TimeBudget: 10 * time.Second})

		amlScore := "FAIL"
		if !aml.Failed {
			amlScore = fmt.Sprintf("%8.1f", aml.TestR2)
		}
		fmt.Printf("%4.0f%%   %8.1f   %s\n", ratio*100, res.Exec.TestR2, amlScore)
	}
}
