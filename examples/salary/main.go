// Salary: the paper's running example (Figures 1, 3, and 5). A messy
// employee-salary table with a sentence-valued Experience column, a
// list-valued Skills column, a composite Address column, and duplicate
// Gender spellings is profiled, refined through the data catalog, and then
// used to generate pipelines — once on the original data and once on the
// refined data — showing the accuracy gap catalog refinement closes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"catdb"
	"catdb/internal/data"
)

// buildSalary synthesizes the Figure 1 table: Experience ("1 year" /
// "12 Months" / "two years"), Skills ("Python, Java"), Gender ("F",
// "Female", "M"), Address ("7050 CA"), Salary.
func buildSalary(n int, seed int64) *catdb.Dataset {
	rng := rand.New(rand.NewSource(seed))
	exp := make([]string, n)
	gender := make([]string, n)
	skills := make([]string, n)
	addr := make([]string, n)
	salary := make([]float64, n)
	expTemplates := []string{"%s", "about %s", "roughly %s or so", "reported as %s"}
	expTokens := []string{"junior", "mid", "senior"}
	skillSets := [][]string{{"java", "sql"}, {"python"}, {"cpp", "java", "sql"}, {"python", "sql"}}
	states := []string{"CA", "TX", "WA", "NY"}
	for i := 0; i < n; i++ {
		level := rng.Intn(3)
		exp[i] = fmt.Sprintf(expTemplates[rng.Intn(len(expTemplates))], expTokens[level])
		g := []string{"Female", "Male"}[rng.Intn(2)]
		gender[i] = []string{g, strings.ToUpper(g), " " + g}[rng.Intn(3)]
		set := skillSets[rng.Intn(len(skillSets))]
		rng.Shuffle(len(set), func(a, b int) { set[a], set[b] = set[b], set[a] })
		skills[i] = strings.Join(set, ", ")
		state := rng.Intn(len(states))
		zip := fmt.Sprintf("%04d", 7000+state*37)
		if rng.Float64() < 0.5 {
			addr[i] = zip + " " + states[state]
		} else {
			addr[i] = states[state] + " " + zip
		}
		salary[i] = 80 + 60*float64(level) + 15*float64(len(set)) +
			10*float64(state) + rng.NormFloat64()*8
	}
	t := data.NewTable("salary")
	t.MustAddColumn(data.NewString("Experience", exp))
	t.MustAddColumn(data.NewString("Gender", gender))
	t.MustAddColumn(data.NewString("Skills", skills))
	t.MustAddColumn(data.NewString("Address", addr))
	t.MustAddColumn(data.NewNumeric("Salary", salary))
	return &catdb.Dataset{
		Name: "Salary", Tables: []*catdb.Table{t}, Primary: "salary",
		Target: "Salary", Task: catdb.Regression,
		Description: "Employee records with messy experience, skills, and address columns; predict salary.",
	}
}

func main() {
	ds := buildSalary(800, 7)

	// Profile the raw data: note the feature types the profiler guesses.
	md, err := catdb.Collect(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- raw catalog (before refinement) ---")
	for _, c := range md.Columns {
		fmt.Printf("%-12s %-8s feature=%-12s distinct=%d\n", c.Name, c.DataType, c.FeatureType, c.DistinctCount)
	}

	client, err := catdb.NewLLM("gemini-1.5-pro", 7)
	if err != nil {
		log.Fatal(err)
	}

	// Catalog refinement (§3.2): sentence → categorical, list → k-hot,
	// composite → split, categorical dedup.
	ref, err := catdb.Refine(ds, client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- catalog refinements (Figure 5) ---")
	for _, up := range ref.Updates {
		fmt.Printf("%-12s %-24s distinct %d -> %d  %v\n",
			up.Column, up.Kind, up.OriginalDistinct, up.RefinedDistinct, up.NewColumns)
	}

	// Generate on original vs refined data.
	origClient, _ := catdb.NewLLM("gemini-1.5-pro", 8)
	orig, err := catdb.PipGen(ds, origClient, catdb.Options{Seed: 7, NoRefine: true})
	if err != nil {
		log.Fatal(err)
	}
	refClient, _ := catdb.NewLLM("gemini-1.5-pro", 8)
	refined, err := catdb.PipGen(ds, refClient, catdb.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- generated pipeline on refined data (Figure 3) ---")
	fmt.Print(refined.Pipeline)
	fmt.Printf("\noriginal data:  test R2 = %.1f\n", orig.Exec.TestR2)
	fmt.Printf("refined data:   test R2 = %.1f\n", refined.Exec.TestR2)
}
