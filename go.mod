module catdb

go 1.22
