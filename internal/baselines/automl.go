package baselines

import (
	"errors"
	"fmt"
	"time"

	"catdb/internal/data"
	"catdb/internal/ml"
)

// AutoMLTool names one of the simulated AutoML systems.
type AutoMLTool string

// The AutoML tools of §5.1. Auto-Sklearn covers both Auto-Sklearn (for
// regression) and Auto-Sklearn 2.0 (for classification), as in the paper.
const (
	AutoSklearn AutoMLTool = "Auto-Sklearn"
	H2O         AutoMLTool = "H2O"
	FLAML       AutoMLTool = "Flaml"
	AutoGluon   AutoMLTool = "Autogluon"
)

// AutoMLTools lists the simulated tools in the paper's column order.
func AutoMLTools() []AutoMLTool { return []AutoMLTool{AutoSklearn, H2O, FLAML, AutoGluon} }

// AutoMLOptions tunes an AutoML run.
type AutoMLOptions struct {
	// TimeBudget caps search time (the paper sets it to the measured
	// CatDB runtime). Default 30s.
	TimeBudget time.Duration
	Seed       int64
	// MaxCells caps rows×features before the tool reports out-of-memory
	// (Auto-Sklearn's Table 7 failures). 0 = tool default.
	MaxCells int
	// Workers bounds the goroutines the portfolio's tree ensembles and KNN
	// use (0 = GOMAXPROCS, 1 = serial); scores are identical either way.
	Workers int
}

// candidate is one (model, hyper-parameter) configuration in a portfolio.
type candidate struct {
	name string
	clf  func(seed int64) interface {
		FitClass(X [][]float64, y []int, classes int) error
		Proba(X [][]float64) [][]float64
	}
	reg func(seed int64) interface {
		Fit(X [][]float64, y []float64) error
		Predict(X [][]float64) []float64
	}
}

func portfolio(tool AutoMLTool, workers int) []candidate {
	rf := func(trees, depth int) candidate {
		return candidate{
			name: fmt.Sprintf("rf%d", trees),
			clf: func(seed int64) interface {
				FitClass(X [][]float64, y []int, classes int) error
				Proba(X [][]float64) [][]float64
			} {
				return ml.NewForest(ml.ForestConfig{Trees: trees, MaxDepth: depth, Seed: seed, Workers: workers})
			},
			reg: func(seed int64) interface {
				Fit(X [][]float64, y []float64) error
				Predict(X [][]float64) []float64
			} {
				return ml.NewForest(ml.ForestConfig{Trees: trees, MaxDepth: depth, Seed: seed, Workers: workers})
			},
		}
	}
	gbm := func(rounds int) candidate {
		return candidate{
			name: fmt.Sprintf("gbm%d", rounds),
			clf: func(seed int64) interface {
				FitClass(X [][]float64, y []int, classes int) error
				Proba(X [][]float64) [][]float64
			} {
				// One-vs-rest boosting costs rounds×classes tree fits;
				// budgeted tools cap the product.
				return ml.NewGBM(ml.GBMConfig{Rounds: rounds, Seed: seed, MaxDepth: 4, Workers: workers})
			},
			reg: func(seed int64) interface {
				Fit(X [][]float64, y []float64) error
				Predict(X [][]float64) []float64
			} {
				return ml.NewGBM(ml.GBMConfig{Rounds: rounds, Seed: seed, Workers: workers})
			},
		}
	}
	tree := candidate{
		name: "tree",
		clf: func(seed int64) interface {
			FitClass(X [][]float64, y []int, classes int) error
			Proba(X [][]float64) [][]float64
		} {
			return ml.NewTree(ml.TreeConfig{Seed: seed})
		},
		reg: func(seed int64) interface {
			Fit(X [][]float64, y []float64) error
			Predict(X [][]float64) []float64
		} {
			return ml.NewTree(ml.TreeConfig{Seed: seed})
		},
	}
	knn := candidate{
		name: "knn",
		clf: func(seed int64) interface {
			FitClass(X [][]float64, y []int, classes int) error
			Proba(X [][]float64) [][]float64
		} {
			return ml.NewKNN(ml.KNNConfig{K: 7, MaxTrain: 3000, Workers: workers})
		},
		reg: func(seed int64) interface {
			Fit(X [][]float64, y []float64) error
			Predict(X [][]float64) []float64
		} {
			return ml.NewKNN(ml.KNNConfig{K: 7, MaxTrain: 3000, Workers: workers})
		},
	}
	switch tool {
	case AutoSklearn:
		return []candidate{rf(40, 12), gbm(40), tree, knn}
	case H2O:
		return []candidate{gbm(60), rf(50, 14), tree}
	case FLAML:
		// FLAML's signature: cheap learners first, budget-aware.
		return []candidate{tree, gbm(30), rf(25, 10), gbm(80)}
	case AutoGluon:
		// AutoGluon stacks larger ensembles.
		return []candidate{rf(80, 16), gbm(100), rf(40, 10)}
	default:
		return []candidate{rf(40, 12)}
	}
}

// toolMaxCells is the capacity ceiling (rows × encoded features) per tool;
// Auto-Sklearn's is the lowest, reproducing its Table 7 OOM/timeout
// failures on the large multi-table datasets.
func toolMaxCells(tool AutoMLTool) int {
	switch tool {
	case AutoSklearn:
		return 1_500_000
	case H2O:
		return 12_000_000
	case AutoGluon:
		return 20_000_000
	default: // FLAML subsamples internally; effectively unbounded here.
		return 1 << 40
	}
}

// RunAutoML runs a simulated AutoML tool on a pre-split dataset. No data
// cleaning happens beyond imputation and one-hot encoding — the tools
// optimize models, not data.
func RunAutoML(tool AutoMLTool, train, test *data.Table, target string, task data.Task, opts AutoMLOptions) Outcome {
	start := time.Now()
	o := Outcome{System: string(tool), Dataset: train.Name, Metric: "auc"}
	if !task.IsClassification() {
		o.Metric = "r2"
	}
	budget := opts.TimeBudget
	if budget <= 0 {
		budget = 30 * time.Second
	}
	e, err := encodeBasic(train, test, target, task, 64)
	if err != nil {
		return failed(string(tool), train.Name, err.Error())
	}
	maxCells := opts.MaxCells
	if maxCells <= 0 {
		maxCells = toolMaxCells(tool)
	}
	if len(e.Xtr)*len(e.Xtr[0]) > maxCells {
		return failed(string(tool), train.Name, "OOM")
	}
	// Budget-aware subsampling: like the real tools under a time budget,
	// training operates on a capped working set when the encoded matrix is
	// large (FLAML subsamples aggressively; the others less so).
	capCells := 600_000
	if tool == AutoGluon {
		capCells = 1_200_000
	}
	if cells := len(e.Xtr) * len(e.Xtr[0]); cells > capCells {
		keep := capCells / len(e.Xtr[0])
		if keep < 200 {
			keep = 200
		}
		if keep < len(e.Xtr) {
			e.Xtr = e.Xtr[:keep]
			if e.ytrC != nil {
				e.ytrC = e.ytrC[:keep]
			}
			if e.ytrR != nil {
				e.ytrR = e.ytrR[:keep]
			}
			if e.trainStr != nil {
				e.trainStr = e.trainStr[:keep]
			}
		}
	}

	// Internal holdout for model selection.
	cut := len(e.Xtr) * 4 / 5
	if cut < 1 {
		cut = 1
	}
	bestScore := -1.0
	var bestOutcome *Outcome
	tried := 0
	for i, cand := range portfolio(tool, opts.Workers) {
		if tried > 0 && time.Since(start) > budget {
			break // budget exhausted; keep the best so far
		}
		tried++
		co := Outcome{System: string(tool), Dataset: train.Name, Metric: o.Metric}
		var score float64
		if task.IsClassification() {
			clf := cand.clf(opts.Seed + int64(i))
			if err := clf.FitClass(e.Xtr[:cut], e.ytrC[:cut], e.classes); err != nil {
				if errors.Is(err, ml.ErrOutOfMemory) {
					continue
				}
				continue
			}
			score = ml.MacroAUC(clf.Proba(e.Xtr[cut:]), e.ytrC[cut:], e.classes)
			// Refit on the full training split for the final model.
			full := cand.clf(opts.Seed + int64(i))
			if err := full.FitClass(e.Xtr, e.ytrC, e.classes); err != nil {
				continue
			}
			scoreClassifier(&co, full, e)
		} else {
			reg := cand.reg(opts.Seed + int64(i))
			if err := reg.Fit(e.Xtr[:cut], e.ytrR[:cut]); err != nil {
				continue
			}
			score = ml.R2(reg.Predict(e.Xtr[cut:]), e.ytrR[cut:])
			full := cand.reg(opts.Seed + int64(i))
			if err := full.Fit(e.Xtr, e.ytrR); err != nil {
				continue
			}
			scoreRegressor(&co, full, e)
		}
		if score > bestScore {
			bestScore = score
			bestOutcome = &co
		}
	}
	if bestOutcome == nil {
		return failed(string(tool), train.Name, "No trained models")
	}
	out := *bestOutcome
	out.ExecTime = time.Since(start)
	return out
}
