// Package baselines re-implements the comparison systems of §5:
// LLM-based generators (CAAFE, AIDE, AutoGen), AutoML tools
// (Auto-Sklearn, H2O, FLAML, AutoGluon), data-cleaning frameworks (SAGA,
// Learn2Clean), and the ADASYN-style augmentation workflow. Each carries
// the structural behaviour and failure modes the paper reports — e.g.
// CAAFE's TabPFN backend runs out of memory on large/wide data, AIDE and
// AutoGen depend on human descriptions and resubmission loops, and the
// AutoML tools perform no data cleaning.
package baselines

import (
	"fmt"
	"time"

	"catdb/internal/data"
	"catdb/internal/ml"
)

// Outcome is the shared result record of every baseline run.
type Outcome struct {
	System   string
	Dataset  string
	Model    string // LLM name for LLM-based systems
	TrainAcc float64
	TestAcc  float64
	TrainAUC float64
	TestAUC  float64
	TrainR2  float64
	TestR2   float64
	Metric   string // "auc" or "r2"
	Tokens   int    // LLM token usage (0 for AutoML)
	GenTime  time.Duration
	ExecTime time.Duration
	Failed   bool
	Reason   string
}

// Primary returns the headline test score (AUC or R², [0,100]).
func (o Outcome) Primary() float64 {
	if o.Metric == "r2" {
		return o.TestR2
	}
	return o.TestAUC
}

// Total returns the end-to-end runtime.
func (o Outcome) Total() time.Duration { return o.GenTime + o.ExecTime }

func failed(system, dataset, reason string) Outcome {
	return Outcome{System: system, Dataset: dataset, Failed: true, Reason: reason}
}

// encoded holds a numeric design matrix aligned between train and test.
type encoded struct {
	Xtr, Xte [][]float64
	ytrC     []int // classification labels
	yteC     []int
	ytrR     []float64 // regression targets
	yteR     []float64
	classes  int
	classOf  []string
	truthStr []string // raw test label strings (for exact-match accuracy)
	trainStr []string
}

// encodeBasic is the standard AutoML front end: median/mode imputation and
// one-hot encoding of categoricals (top 64), nothing more — no dedup, no
// outlier handling, no sentence/list refinement. This is precisely why
// AutoML tools are brittle on dirty data (Figure 14, Table 5).
func encodeBasic(train, test *data.Table, target string, task data.Task, maxCats int) (*encoded, error) {
	if maxCats <= 0 {
		maxCats = 64
	}
	tr := train.Clone()
	te := test.Clone()
	for _, c := range tr.Cols {
		if c.Name == target {
			continue
		}
		if c.MissingCount() > 0 || (te.Col(c.Name) != nil && te.Col(c.Name).MissingCount() > 0) {
			fillNum, fillStr := imputeParams(c)
			fill(c, fillNum, fillStr)
			if tc := te.Col(c.Name); tc != nil {
				fill(tc, fillNum, fillStr)
			}
		}
	}
	// Encode string features.
	var stringCols []string
	for _, c := range tr.Cols {
		if c.Name != target && c.Kind == data.KindString {
			stringCols = append(stringCols, c.Name)
		}
	}
	for _, name := range stringCols {
		cats := topCats(tr.Col(name), maxCats)
		replaceOneHot(tr, name, cats)
		if te.Col(name) != nil {
			replaceOneHot(te, name, cats)
		}
	}
	e := &encoded{}
	e.Xtr = matrixOf(tr, target)
	e.Xte = matrixAlignedTo(te, tr, target)
	if len(e.Xtr) == 0 || len(e.Xtr[0]) == 0 {
		return nil, fmt.Errorf("baselines: no usable features")
	}
	tcol := tr.Col(target)
	if tcol == nil {
		return nil, fmt.Errorf("baselines: target %q missing", target)
	}
	if task.IsClassification() {
		idx := map[string]int{}
		for _, v := range tcol.Distinct() {
			idx[v] = len(idx)
		}
		e.classes = len(idx)
		if e.classes < 2 {
			return nil, fmt.Errorf("baselines: single-class target")
		}
		e.classOf = make([]string, e.classes)
		for v, i := range idx {
			e.classOf[i] = v
		}
		e.ytrC = make([]int, tcol.Len())
		e.trainStr = make([]string, tcol.Len())
		for i := range e.ytrC {
			e.trainStr[i] = tcol.ValueString(i)
			e.ytrC[i] = idx[e.trainStr[i]]
		}
		teT := te.Col(target)
		e.yteC = make([]int, teT.Len())
		e.truthStr = make([]string, teT.Len())
		for i := range e.yteC {
			e.truthStr[i] = teT.ValueString(i)
			if j, ok := idx[e.truthStr[i]]; ok {
				e.yteC[i] = j
			} else {
				e.yteC[i] = -1
			}
		}
		return e, nil
	}
	if !tcol.Kind.IsNumeric() {
		return nil, fmt.Errorf("baselines: regression target %q is not numeric", target)
	}
	e.ytrR = append([]float64(nil), tcol.NumsView()...)
	e.yteR = append([]float64(nil), te.Col(target).NumsView()...)
	return e, nil
}

func imputeParams(c *data.Column) (float64, string) {
	if c.Kind.IsNumeric() {
		return c.NumericStats().Median, ""
	}
	counts := map[string]int{}
	best, bestN := "", -1
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) {
			continue
		}
		v := c.Str(i)
		counts[v]++
		if counts[v] > bestN || (counts[v] == bestN && v < best) {
			best, bestN = v, counts[v]
		}
	}
	return 0, best
}

func fill(c *data.Column, num float64, str string) {
	for i := 0; i < c.Len(); i++ {
		if !c.IsMissing(i) {
			continue
		}
		c.ClearMissing(i)
		if c.Kind.IsNumeric() {
			c.SetNum(i, num)
		} else {
			c.SetStr(i, str)
		}
	}
}

func topCats(c *data.Column, max int) []string {
	counts := map[string]int{}
	for i := 0; i < c.Len(); i++ {
		if !c.IsMissing(i) {
			counts[c.ValueString(i)]++
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	// Frequency-descending, name-ascending.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0; j-- {
			a, b := keys[j-1], keys[j]
			if counts[b] > counts[a] || (counts[b] == counts[a] && b < a) {
				keys[j-1], keys[j] = keys[j], keys[j-1]
			} else {
				break
			}
		}
	}
	if len(keys) > max {
		keys = keys[:max]
	}
	return keys
}

func replaceOneHot(t *data.Table, name string, cats []string) {
	c := t.Col(name)
	if c == nil {
		return
	}
	n := c.Len()
	t.DropColumn(name)
	for _, cat := range cats {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			if !c.IsMissing(i) && c.ValueString(i) == cat {
				vals[i] = 1
			}
		}
		nc := data.NewNumeric(name+"__"+sanitize(cat), vals)
		if err := t.AddColumn(nc); err != nil {
			// Duplicate encoded names collapse; skip silently.
			continue
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) > 24 {
		out = out[:24]
	}
	return string(out)
}

func matrixOf(t *data.Table, target string) [][]float64 {
	var cols []*data.Column
	for _, c := range t.Cols {
		if c.Name != target && c.Kind.IsNumeric() {
			cols = append(cols, c)
		}
	}
	X := make([][]float64, t.NumRows())
	for i := range X {
		row := make([]float64, len(cols))
		for j, c := range cols {
			row[j] = c.Num(i)
		}
		X[i] = row
	}
	return X
}

// matrixAlignedTo builds the test matrix in the train table's column
// order; absent columns contribute zeros.
func matrixAlignedTo(te, tr *data.Table, target string) [][]float64 {
	var cols []*data.Column
	for _, c := range tr.Cols {
		if c.Name != target && c.Kind.IsNumeric() {
			cols = append(cols, te.Col(c.Name))
		}
	}
	X := make([][]float64, te.NumRows())
	for i := range X {
		row := make([]float64, len(cols))
		for j, c := range cols {
			if c != nil && c.Kind.IsNumeric() && i < c.Len() && !c.IsMissing(i) {
				row[j] = c.Num(i)
			}
		}
		X[i] = row
	}
	return X
}

// scoreClassifier fills the classification metrics of an outcome.
func scoreClassifier(o *Outcome, clf interface {
	Proba(X [][]float64) [][]float64
}, e *encoded) {
	o.Metric = "auc"
	trP := clf.Proba(e.Xtr)
	teP := clf.Proba(e.Xte)
	predStr := func(p [][]float64) []string {
		out := make([]string, len(p))
		for i, row := range p {
			best, bi := row[0], 0
			for j, v := range row[1:] {
				if v > best {
					best, bi = v, j+1
				}
			}
			out[i] = e.classOf[bi]
		}
		return out
	}
	o.TrainAcc = ml.AccuracyStrings(predStr(trP), e.trainStr) * 100
	o.TestAcc = ml.AccuracyStrings(predStr(teP), e.truthStr) * 100
	o.TrainAUC = ml.MacroAUC(trP, e.ytrC, e.classes) * 100
	o.TestAUC = ml.MacroAUC(teP, e.yteC, e.classes) * 100
}

// scoreRegressor fills the regression metrics of an outcome.
func scoreRegressor(o *Outcome, reg interface {
	Predict(X [][]float64) []float64
}, e *encoded) {
	o.Metric = "r2"
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v * 100
	}
	o.TrainR2 = clamp(ml.R2(reg.Predict(e.Xtr), e.ytrR))
	o.TestR2 = clamp(ml.R2(reg.Predict(e.Xte), e.yteR))
}
