package baselines

import (
	"strings"
	"testing"
	"time"

	"catdb/internal/data"
	"catdb/internal/llm"
)

func splitDS(t *testing.T, name string, scale float64) (*data.Dataset, *data.Table, *data.Table) {
	t.Helper()
	ds, err := data.Load(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ds.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	var tr, te *data.Table
	if ds.Task.IsClassification() {
		tr, te = tb.StratifiedSplit(ds.Target, 0.7, 1)
	} else {
		tr, te = tb.Split(0.7, 1)
	}
	return ds, tr, te
}

func TestEncodeBasic(t *testing.T) {
	_, tr, te := splitDS(t, "CMC", 1.0)
	e, err := encodeBasic(tr, te, "target", data.Multiclass, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Xtr) != tr.NumRows() || len(e.Xte) != te.NumRows() {
		t.Fatalf("matrix shapes: %d/%d", len(e.Xtr), len(e.Xte))
	}
	if e.classes != 3 {
		t.Fatalf("classes = %d", e.classes)
	}
	// No NaN remnants: every feature cell numeric and aligned.
	w := len(e.Xtr[0])
	for _, row := range e.Xte {
		if len(row) != w {
			t.Fatal("test matrix misaligned")
		}
	}
}

func TestRunAutoMLTools(t *testing.T) {
	_, tr, te := splitDS(t, "CMC", 1.0)
	for _, tool := range AutoMLTools() {
		o := RunAutoML(tool, tr, te, "target", data.Multiclass, AutoMLOptions{Seed: 1, TimeBudget: 20 * time.Second})
		if o.Failed {
			t.Fatalf("%s failed: %s", tool, o.Reason)
		}
		if o.TestAUC < 55 {
			t.Errorf("%s AUC = %g", tool, o.TestAUC)
		}
		if o.ExecTime <= 0 {
			t.Errorf("%s missing runtime", tool)
		}
	}
}

func TestAutoMLRegression(t *testing.T) {
	_, tr, te := splitDS(t, "Utility", 0.5)
	o := RunAutoML(FLAML, tr, te, "target", data.Regression, AutoMLOptions{Seed: 1})
	if o.Failed {
		t.Fatal(o.Reason)
	}
	if o.Metric != "r2" || o.TestR2 < 40 {
		t.Fatalf("regression outcome: %+v", o)
	}
}

func TestAutoSklearnOOMOnWideData(t *testing.T) {
	_, tr, te := splitDS(t, "CMC", 1.0)
	o := RunAutoML(AutoSklearn, tr, te, "target", data.Multiclass, AutoMLOptions{Seed: 1, MaxCells: 10})
	if !o.Failed || o.Reason != "OOM" {
		t.Fatalf("want OOM failure, got %+v", o)
	}
}

func TestCAAFETabPFNSmall(t *testing.T) {
	_, tr, te := splitDS(t, "Wifi", 1.0)
	o := RunCAAFE(tr, te, "target", data.Binary, CAAFEOptions{Backend: CAAFETabPFN, Seed: 1, Rounds: 2})
	if o.Failed {
		t.Fatalf("CAAFE failed on tiny data: %s", o.Reason)
	}
	if o.Tokens == 0 {
		t.Fatal("CAAFE must account prompt tokens")
	}
	if o.TestAUC < 50 {
		t.Fatalf("CAAFE AUC = %g", o.TestAUC)
	}
}

func TestCAAFETabPFNOOMOnLargeData(t *testing.T) {
	_, tr, te := splitDS(t, "Gas-Drift", 0.3)
	o := RunCAAFE(tr, te, "target", data.Multiclass, CAAFEOptions{Backend: CAAFETabPFN, Seed: 1, Rounds: 1})
	if !o.Failed || !strings.Contains(o.Reason, "Mem") {
		t.Fatalf("want TabPFN OOM, got %+v", o)
	}
	// RandomForest backend survives the same data.
	o2 := RunCAAFE(tr, te, "target", data.Multiclass, CAAFEOptions{Backend: CAAFEForest, Seed: 1, Rounds: 1, MaxPairs: 20})
	if o2.Failed {
		t.Fatalf("CAAFE RF should survive: %s", o2.Reason)
	}
}

func TestCAAFERejectsRegression(t *testing.T) {
	_, tr, te := splitDS(t, "Utility", 0.3)
	o := RunCAAFE(tr, te, "target", data.Regression, CAAFEOptions{Seed: 1})
	if !o.Failed || !strings.Contains(o.Reason, "regression") {
		t.Fatalf("CAAFE must reject regression: %+v", o)
	}
}

func TestAIDERequiresDescription(t *testing.T) {
	ds, _, _ := splitDS(t, "CMC", 0.5)
	ds.Description = ""
	c, _ := llm.New("gpt-4o", 1)
	o := RunAIDE(ds, c, LLMBaselineOptions{Seed: 1})
	if !o.Failed || !strings.Contains(o.Reason, "description") {
		t.Fatalf("AIDE without description: %+v", o)
	}
}

func TestAIDERuns(t *testing.T) {
	ds, _, _ := splitDS(t, "CMC", 0.5)
	c, _ := llm.New("gpt-4o", 2)
	o := RunAIDE(ds, c, LLMBaselineOptions{Seed: 2})
	if o.Failed {
		t.Fatalf("AIDE failed: %s", o.Reason)
	}
	if o.Tokens == 0 || o.TestAUC < 50 {
		t.Fatalf("AIDE outcome: %+v", o)
	}
}

func TestAutoGenRuns(t *testing.T) {
	ds, _, _ := splitDS(t, "Diabetes", 1.0)
	c, _ := llm.New("gemini-1.5-pro", 3)
	o := RunAutoGen(ds, c, LLMBaselineOptions{Seed: 3})
	if o.Failed {
		t.Fatalf("AutoGen failed: %s", o.Reason)
	}
	if o.TestAUC < 50 {
		t.Fatalf("AutoGen AUC = %g", o.TestAUC)
	}
}

func TestLearn2CleanGreedy(t *testing.T) {
	_, tr, _ := splitDS(t, "Diabetes", 1.0)
	res, err := RunLearn2Clean(tr, "target", data.Binary, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Train == nil || res.Train.NumRows() == 0 {
		t.Fatal("L2C returned no data")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed missing")
	}
}

func TestLearn2CleanNeedsNumeric(t *testing.T) {
	tb := data.NewTable("cats")
	tb.MustAddColumn(data.NewString("a", []string{"x", "y", "x", "y"}))
	tb.MustAddColumn(data.NewString("y", []string{"p", "q", "p", "q"}))
	if _, err := RunLearn2Clean(tb, "y", data.Binary, 1); err == nil {
		t.Fatal("L2C must fail without continuous columns (EU-IT pathology)")
	}
}

func TestSAGAEvolution(t *testing.T) {
	_, tr, _ := splitDS(t, "Diabetes", 1.0)
	res, err := RunSAGA(tr, "target", data.Binary, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("SAGA found no pipeline")
	}
}

func TestCleaningWorkflow(t *testing.T) {
	_, tr, te := splitDS(t, "CMC", 0.6)
	o, steps := RunCleaningWorkflow(CleanL2C, FLAML, tr, te, "target", data.Multiclass, AutoMLOptions{Seed: 1})
	if o.Failed {
		t.Fatalf("workflow failed: %s", o.Reason)
	}
	if !strings.Contains(o.System, "L2C") {
		t.Fatalf("system name = %s", o.System)
	}
	_ = steps
}

func TestADASYNBalances(t *testing.T) {
	n := 200
	x := make([]float64, n)
	y := make([]string, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i)
		if i < 180 {
			y[i] = "maj"
		} else {
			y[i] = "min"
		}
	}
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewNumeric("x", x))
	tb.MustAddColumn(data.NewString("y", y))
	AugmentADASYN(tb, "y", data.Binary, 1)
	counts := map[string]int{}
	c := tb.Col("y")
	for i := 0; i < c.Len(); i++ {
		counts[c.Str(i)]++
	}
	if counts["min"] <= 20 {
		t.Fatalf("ADASYN did not oversample: %v", counts)
	}
}

func TestCleaningOpsPreserveTarget(t *testing.T) {
	_, tr, _ := splitDS(t, "Diabetes", 1.0)
	orig := tr.Col("target").Len()
	for _, op := range allCleaningOps {
		cp := tr.Clone()
		applyCleaningOp(cp, "target", op, 1)
		if cp.Col("target") == nil {
			t.Fatalf("%s dropped the target", op)
		}
		if op == OpDS || op == OpIQR || op == OpEM || op == OpMEDIAN {
			if cp.NumRows() != orig {
				t.Fatalf("%s must not change row count", op)
			}
		}
	}
}

func TestOutcomeHelpers(t *testing.T) {
	o := Outcome{Metric: "auc", TestAUC: 88, TestR2: 11, GenTime: time.Second, ExecTime: time.Second}
	if o.Primary() != 88 {
		t.Fatal("auc primary")
	}
	o.Metric = "r2"
	if o.Primary() != 11 {
		t.Fatal("r2 primary")
	}
	if o.Total() != 2*time.Second {
		t.Fatal("total time")
	}
}

func TestInflateSearch(t *testing.T) {
	src := "pipeline \"x\"\ntrain model=random_forest target=\"y\" trees=40\n"
	out := inflateSearch(src)
	if !strings.Contains(out, "trees=160") {
		t.Fatalf("inflate: %s", out)
	}
}
