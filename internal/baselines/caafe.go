package baselines

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"catdb/internal/data"
	"catdb/internal/ml"
	"catdb/internal/prompt"
)

// CAAFEBackend selects CAAFE's fixed downstream classifier.
type CAAFEBackend string

// CAAFE backends: the original TabPFN and the RandomForest extension the
// paper added for scalability.
const (
	CAAFETabPFN CAAFEBackend = "TabPFN"
	CAAFEForest CAAFEBackend = "R.Forest"
)

// CAAFEOptions tunes the CAAFE reproduction.
type CAAFEOptions struct {
	Backend CAAFEBackend
	// Rounds of LLM feature-engineering iterations (default 5, CAAFE's
	// default of ten halved for the scaled datasets).
	Rounds int
	Seed   int64
	// MaxPairs caps candidate feature combinations evaluated per round.
	MaxPairs int
}

// RunCAAFE reproduces CAAFE (Hollmann et al., NeurIPS'23): a fixed
// pre-processing stage, iterative LLM-driven feature engineering where
// each round proposes a derived feature and keeps it only if holdout
// performance improves, and a fixed classifier (TabPFN by default).
//
// Behavioural fidelity notes: CAAFE prompts carry the full schema plus ten
// sample rows per feature (hence its high input-token costs, Figure 12);
// it does not support regression; and its TabPFN backend fails on
// large/wide datasets (Tables 5 and 7). The feature proposals themselves
// are simulated by a seeded generator over numeric column combinations —
// the quantity CAAFE's LLM varies — while token costs are accounted from
// the real prompt text.
func RunCAAFE(train, test *data.Table, target string, task data.Task, opts CAAFEOptions) Outcome {
	start := time.Now()
	name := "CAAFE " + string(opts.Backend)
	if opts.Backend == "" {
		opts.Backend = CAAFETabPFN
		name = "CAAFE TabPFN"
	}
	if task == data.Regression {
		return failed(name, train.Name, "Doesn't support regression")
	}
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 5
	}
	maxPairs := opts.MaxPairs
	if maxPairs <= 0 {
		maxPairs = 120
	}
	e, err := encodeBasic(train, test, target, task, 64)
	if err != nil {
		return failed(name, train.Name, err.Error())
	}
	// CAAFE evaluates every candidate feature with its fixed classifier,
	// so a TabPFN backend that cannot hold the data fails immediately.
	if opts.Backend != CAAFEForest {
		probe := ml.NewTabPFNSim()
		if err := probe.FitClass(e.Xtr[:minInt(2, len(e.Xtr))], e.ytrC[:minInt(2, len(e.ytrC))], e.classes); err == nil {
			if len(e.Xtr) > probe.MaxRows || len(e.Xtr[0]) > probe.MaxFeatures {
				return failed(name, train.Name, "Out of Mem.")
			}
		} else if errors.Is(err, ml.ErrOutOfMemory) {
			return failed(name, train.Name, "Out of Mem.")
		}
	}
	o := Outcome{System: name, Dataset: train.Name, Metric: "auc"}
	rng := rand.New(rand.NewSource(opts.Seed))

	// Token accounting: schema + 10 samples per feature, once per round.
	o.Tokens = rounds * (caafePromptTokens(train, target) + 200)

	// Holdout for feature acceptance (subsampled: candidate scoring is
	// exhaustive across pairs, so each evaluation must stay cheap).
	sample := len(e.Xtr)
	if sample > 1000 {
		sample = 1000
	}
	cut := sample * 4 / 5
	if cut < 1 {
		cut = 1
	}
	holdScore := func(X [][]float64) float64 {
		tr := ml.NewTree(ml.TreeConfig{MaxDepth: 6, MaxThresholds: 8, Seed: opts.Seed})
		if err := tr.FitClass(X[:cut], e.ytrC[:cut], e.classes); err != nil {
			return -1
		}
		return ml.MacroAUC(tr.Proba(X[cut:sample]), e.ytrC[cut:sample], e.classes)
	}
	base := holdScore(e.Xtr)
	d := len(e.Xtr[0])
	for round := 0; round < rounds; round++ {
		// Propose candidate derived features (products/ratios), evaluate
		// each — this exhaustive evaluation is what makes CAAFE slow.
		bestGain := 0.0
		bestA, bestB, bestOp := -1, -1, 0
		pairs := 0
		for a := 0; a < d && pairs < maxPairs; a++ {
			for b := a + 1; b < d && pairs < maxPairs; b++ {
				if rng.Float64() < 0.5 {
					continue
				}
				pairs++
				op := rng.Intn(2)
				Xc := withDerived(e.Xtr[:sample], a, b, op)
				if s := holdScore(Xc); s > base+1e-6 && s-base > bestGain {
					bestGain, bestA, bestB, bestOp = s-base, a, b, op
				}
			}
		}
		if bestA < 0 {
			continue
		}
		e.Xtr = withDerived(e.Xtr, bestA, bestB, bestOp)
		e.Xte = withDerived(e.Xte, bestA, bestB, bestOp)
		base += bestGain
		d++
	}
	o.GenTime = time.Since(start)

	// Fixed classifier.
	fitStart := time.Now()
	switch opts.Backend {
	case CAAFEForest:
		clf := ml.NewForest(ml.ForestConfig{Trees: 60, Seed: opts.Seed})
		if err := clf.FitClass(e.Xtr, e.ytrC, e.classes); err != nil {
			return failed(name, train.Name, err.Error())
		}
		scoreClassifier(&o, clf, e)
	default:
		clf := ml.NewTabPFNSim()
		if err := clf.FitClass(e.Xtr, e.ytrC, e.classes); err != nil {
			if errors.Is(err, ml.ErrOutOfMemory) {
				return failed(name, train.Name, "Out of Mem.")
			}
			return failed(name, train.Name, err.Error())
		}
		scoreClassifier(&o, clf, e)
	}
	o.ExecTime = time.Since(fitStart)
	return o
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func withDerived(X [][]float64, a, b, op int) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		nr := make([]float64, len(row)+1)
		copy(nr, row)
		if a < len(row) && b < len(row) {
			if op == 0 {
				nr[len(row)] = row[a] * row[b]
			} else {
				den := row[b]
				if den == 0 {
					den = 1
				}
				nr[len(row)] = row[a] / den
			}
		}
		out[i] = nr
	}
	return out
}

// caafePromptTokens renders the CAAFE-style prompt (schema + 10 samples
// per feature) and counts its tokens.
func caafePromptTokens(t *data.Table, target string) int {
	var b strings.Builder
	b.WriteString("The dataframe has the following columns:\n")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%s (%s): samples [", c.Name, c.Kind)
		n := 0
		for i := 0; i < c.Len() && n < 10; i++ {
			if c.IsMissing(i) {
				continue
			}
			b.WriteString(c.ValueString(i))
			b.WriteString(", ")
			n++
		}
		b.WriteString("]\n")
	}
	fmt.Fprintf(&b, "Target: %s. Propose one new feature as pandas code.\n", target)
	return prompt.CountTokens(b.String())
}
