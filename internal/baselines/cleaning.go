package baselines

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"catdb/internal/data"
	"catdb/internal/ml"
)

// cleaningOp is one primitive in the Learn2Clean / SAGA search spaces,
// named after the paper's Table 7 legend: DS (decimal-scale
// normalization), ED (exact duplicate removal), AD (approximate duplicate
// removal), IQR (outlier clipping), LOF (local-outlier-factor row
// removal), EM and MEDIAN imputations, DROP (drop incomplete rows).
type cleaningOp string

// The cleaning primitives of the paper's Table 7 legend.
const (
	OpDS     cleaningOp = "DS"
	OpED     cleaningOp = "ED"
	OpAD     cleaningOp = "AD"
	OpIQR    cleaningOp = "IQR"
	OpLOF    cleaningOp = "LOF"
	OpEM     cleaningOp = "EM"
	OpMEDIAN cleaningOp = "MEDIAN"
	OpDROP   cleaningOp = "DROP"
)

var allCleaningOps = []cleaningOp{OpDS, OpED, OpAD, OpIQR, OpLOF, OpEM, OpMEDIAN, OpDROP}

// applyCleaningOp transforms the table in place (train-side only, as the
// paper evaluates on unaltered test sets).
func applyCleaningOp(t *data.Table, target string, op cleaningOp, seed int64) {
	switch op {
	case OpDS: // decimal-scale normalization of numeric features
		for _, c := range t.Cols {
			if c.Name == target || !c.Kind.IsNumeric() {
				continue
			}
			st := c.NumericStats()
			maxAbs := st.Max
			if -st.Min > maxAbs {
				maxAbs = -st.Min
			}
			p := 1.0
			for maxAbs >= 1 {
				maxAbs /= 10
				p *= 10
			}
			for i := 0; i < c.Len(); i++ {
				c.SetNum(i, c.Num(i)/p)
			}
			c.Kind = data.KindFloat
		}
	case OpED: // exact duplicate rows
		seen := map[string]bool{}
		var keep []int
		for i := 0; i < t.NumRows(); i++ {
			key := rowKey(t, i, false)
			if !seen[key] {
				seen[key] = true
				keep = append(keep, i)
			}
		}
		if len(keep) > 0 && len(keep) < t.NumRows() {
			*t = *t.SelectRows(keep)
		}
	case OpAD: // approximate duplicates: rows equal after rounding/casefold
		seen := map[string]bool{}
		var keep []int
		for i := 0; i < t.NumRows(); i++ {
			key := rowKey(t, i, true)
			if !seen[key] {
				seen[key] = true
				keep = append(keep, i)
			}
		}
		if len(keep) > 0 && len(keep) < t.NumRows() {
			*t = *t.SelectRows(keep)
		}
	case OpIQR:
		for _, c := range t.Cols {
			if c.Name == target || !c.Kind.IsNumeric() {
				continue
			}
			q1, q3 := c.Quantile(0.25), c.Quantile(0.75)
			iqr := q3 - q1
			lo, hi := q1-1.5*iqr, q3+1.5*iqr
			for i := 0; i < c.Len(); i++ {
				if c.IsMissing(i) {
					continue
				}
				if c.Num(i) < lo {
					c.SetNum(i, lo)
				}
				if c.Num(i) > hi {
					c.SetNum(i, hi)
				}
			}
		}
	case OpLOF: // remove rows whose numeric profile is far from median
		var keep []int
		dists := rowDeviations(t, target)
		if dists == nil {
			return
		}
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		cut := sorted[int(float64(len(sorted))*0.98)]
		for i, d := range dists {
			if d <= cut {
				keep = append(keep, i)
			}
		}
		if len(keep) > 0 {
			*t = *t.SelectRows(keep)
		}
	case OpEM: // expectation-maximization imputation ≈ mean for this scope
		for _, c := range t.Cols {
			if c.Name == target || !c.Kind.IsNumeric() || c.MissingCount() == 0 {
				continue
			}
			mean := c.NumericStats().Mean
			for i := 0; i < c.Len(); i++ {
				if c.IsMissing(i) {
					c.ClearMissing(i)
					c.SetNum(i, mean)
				}
			}
		}
	case OpMEDIAN:
		for _, c := range t.Cols {
			if c.Name == target || c.MissingCount() == 0 {
				continue
			}
			if c.Kind.IsNumeric() {
				med := c.NumericStats().Median
				for i := 0; i < c.Len(); i++ {
					if c.IsMissing(i) {
						c.ClearMissing(i)
						c.SetNum(i, med)
					}
				}
			}
		}
	case OpDROP: // drop rows with any missing cell
		var keep []int
		for i := 0; i < t.NumRows(); i++ {
			ok := true
			for _, c := range t.Cols {
				if c.IsMissing(i) {
					ok = false
					break
				}
			}
			if ok {
				keep = append(keep, i)
			}
		}
		// Never drop below 20% of the data.
		if len(keep) > t.NumRows()/5 {
			*t = *t.SelectRows(keep)
		}
	}
	_ = seed
}

func rowKey(t *data.Table, i int, approx bool) string {
	key := ""
	for _, c := range t.Cols {
		v := c.ValueString(i)
		if approx {
			v = approxValue(v)
		}
		key += v + "\x1f"
	}
	return key
}

func approxValue(v string) string {
	out := make([]rune, 0, len(v))
	for _, r := range v {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r-'A'+'a')
		case r == ' ', r == '-', r == '_':
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func rowDeviations(t *data.Table, target string) []float64 {
	var cols []*data.Column
	var meds, iqrs []float64
	for _, c := range t.Cols {
		if c.Name == target || !c.Kind.IsNumeric() {
			continue
		}
		cols = append(cols, c)
		meds = append(meds, c.Quantile(0.5))
		iq := c.Quantile(0.75) - c.Quantile(0.25)
		if iq == 0 {
			iq = 1
		}
		iqrs = append(iqrs, iq)
	}
	if len(cols) == 0 {
		return nil
	}
	out := make([]float64, t.NumRows())
	for i := range out {
		for j, c := range cols {
			if c.IsMissing(i) {
				continue
			}
			d := (c.Num(i) - meds[j]) / iqrs[j]
			if d < 0 {
				d = -d
			}
			if d > out[i] {
				out[i] = d
			}
		}
	}
	return out
}

// quickScore trains a shallow tree on a holdout split of the table and
// returns the validation score — the cheap reward signal both cleaning
// searchers use.
func quickScore(t *data.Table, target string, task data.Task, seed int64) float64 {
	tr, va := t.Split(0.8, seed)
	if tr.NumRows() < 10 || va.NumRows() < 5 {
		return 0
	}
	e, err := encodeBasic(tr, va, target, task, 32)
	if err != nil {
		return 0
	}
	if task.IsClassification() {
		tree := ml.NewTree(ml.TreeConfig{MaxDepth: 8, Seed: seed})
		if err := tree.FitClass(e.Xtr, e.ytrC, e.classes); err != nil {
			return 0
		}
		return ml.MacroAUC(tree.Proba(e.Xte), e.yteC, e.classes)
	}
	tree := ml.NewTree(ml.TreeConfig{MaxDepth: 8, Seed: seed})
	if err := tree.Fit(e.Xtr, e.ytrR); err != nil {
		return 0
	}
	return ml.R2(tree.Predict(e.Xte), e.yteR)
}

// CleaningResult is the output of a cleaning framework run.
type CleaningResult struct {
	Train   *data.Table
	Steps   []string
	Elapsed time.Duration
}

// RunLearn2Clean reproduces Learn2Clean (Berti-Équille, WWW'19): a greedy
// Q-learning-style selector that repeatedly applies the cleaning primitive
// with the best one-step validation reward. As in the paper's EU-IT
// failure, it errors when the table has no continuous feature columns.
func RunLearn2Clean(train *data.Table, target string, task data.Task, seed int64) (*CleaningResult, error) {
	start := time.Now()
	hasNumeric := false
	for _, c := range train.Cols {
		if c.Name != target && c.Kind.IsNumeric() {
			hasNumeric = true
			break
		}
	}
	if !hasNumeric {
		return nil, fmt.Errorf("baselines: Learn2Clean requires continuous columns")
	}
	cur := train.Clone()
	res := &CleaningResult{}
	best := quickScore(cur, target, task, seed)
	for step := 0; step < 4; step++ {
		var bestOp cleaningOp
		bestScore := best
		var bestTable *data.Table
		for _, op := range allCleaningOps {
			cand := cur.Clone()
			applyCleaningOp(cand, target, op, seed)
			if s := quickScore(cand, target, task, seed); s > bestScore+1e-9 {
				bestScore, bestOp, bestTable = s, op, cand
			}
		}
		if bestTable == nil {
			break
		}
		cur, best = bestTable, bestScore
		res.Steps = append(res.Steps, string(bestOp))
	}
	res.Train = cur
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunSAGA reproduces SAGA (Siddiqi et al., SIGMOD'23): an evolutionary
// search over cleaning-pipeline sequences. Populations of op sequences are
// mutated and recombined across generations, each individual evaluated by
// a downstream model — effective but expensive, which is exactly the
// runtime penalty Table 6 reports for cleaning+AutoML workflows.
func RunSAGA(train *data.Table, target string, task data.Task, seed int64) (*CleaningResult, error) {
	start := time.Now()
	rng := rand.New(rand.NewSource(seed))
	const popSize, generations = 6, 3
	type indiv struct {
		ops   []cleaningOp
		score float64
		table *data.Table
	}
	randomSeq := func() []cleaningOp {
		n := 1 + rng.Intn(3)
		out := make([]cleaningOp, n)
		for i := range out {
			out[i] = allCleaningOps[rng.Intn(len(allCleaningOps))]
		}
		return out
	}
	evaluate := func(ops []cleaningOp) indiv {
		t := train.Clone()
		for _, op := range ops {
			applyCleaningOp(t, target, op, seed)
		}
		return indiv{ops: ops, score: quickScore(t, target, task, seed), table: t}
	}
	pop := make([]indiv, popSize)
	for i := range pop {
		pop[i] = evaluate(randomSeq())
	}
	for g := 0; g < generations; g++ {
		sort.Slice(pop, func(i, j int) bool { return pop[i].score > pop[j].score })
		// Elitism: keep the top half, regenerate the rest by mutation.
		for i := popSize / 2; i < popSize; i++ {
			parent := pop[rng.Intn(popSize/2)]
			child := append([]cleaningOp(nil), parent.ops...)
			if len(child) > 1 && rng.Float64() < 0.5 {
				child = child[:len(child)-1]
			} else {
				child = append(child, allCleaningOps[rng.Intn(len(allCleaningOps))])
			}
			pop[i] = evaluate(child)
		}
	}
	sort.Slice(pop, func(i, j int) bool { return pop[i].score > pop[j].score })
	bestOps := make([]string, len(pop[0].ops))
	for i, op := range pop[0].ops {
		bestOps[i] = string(op)
	}
	return &CleaningResult{Train: pop[0].table, Steps: bestOps, Elapsed: time.Since(start)}, nil
}

// AugmentADASYN applies the ADASYN-style oversampling (classification) or
// the imbalanced-regression resampler the paper pairs with cleaning.
func AugmentADASYN(train *data.Table, target string, task data.Task, seed int64) time.Duration {
	start := time.Now()
	if task.IsClassification() {
		adasynOversample(train, target, seed)
	} else {
		regressionResample(train, target, seed)
	}
	return time.Since(start)
}

func adasynOversample(t *data.Table, target string, seed int64) {
	c := t.Col(target)
	if c == nil {
		return
	}
	groups := map[string][]int{}
	for i := 0; i < t.NumRows(); i++ {
		groups[c.ValueString(i)] = append(groups[c.ValueString(i)], i)
	}
	maxN := 0
	for _, rows := range groups {
		if len(rows) > maxN {
			maxN = len(rows)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	stds := map[string]float64{}
	for _, col := range t.Cols {
		if col.Kind.IsNumeric() && col.Name != target {
			stds[col.Name] = col.NumericStats().Std
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, label := range keys {
		rows := groups[label]
		need := maxN - len(rows)
		if need > 2*len(rows) {
			need = 2 * len(rows)
		}
		for k := 0; k < need; k++ {
			src := rows[rng.Intn(len(rows))]
			for _, col := range t.Cols {
				col.AppendFrom(col, src)
				if std, ok := stds[col.Name]; ok && !col.IsMissing(col.Len()-1) {
					last := col.Len() - 1
					col.SetNum(last, col.Num(last)+rng.NormFloat64()*std*0.05)
				}
			}
		}
	}
}

func regressionResample(t *data.Table, target string, seed int64) {
	c := t.Col(target)
	if c == nil || !c.Kind.IsNumeric() {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	lo, hi := c.Quantile(0.1), c.Quantile(0.9)
	var tails []int
	for i := 0; i < c.Len(); i++ {
		if !c.IsMissing(i) && (c.Num(i) < lo || c.Num(i) > hi) {
			tails = append(tails, i)
		}
	}
	if len(tails) == 0 {
		return
	}
	need := t.NumRows() / 10
	for k := 0; k < need; k++ {
		src := tails[rng.Intn(len(tails))]
		for _, col := range t.Cols {
			col.AppendFrom(col, src)
		}
	}
}

// WorkflowCleaner names a cleaning framework for workflow runs.
type WorkflowCleaner string

// Cleaning frameworks used in the AutoML-with-cleaning workflows.
const (
	CleanSAGA WorkflowCleaner = "SAGA"
	CleanL2C  WorkflowCleaner = "L2C"
)

// RunCleaningWorkflow reproduces the paper's AutoML-with-cleaning setting:
// clean the training split, apply augmentation, then hand the result to an
// AutoML tool; the test split stays untouched.
func RunCleaningWorkflow(cleaner WorkflowCleaner, tool AutoMLTool, train, test *data.Table,
	target string, task data.Task, opts AutoMLOptions) (Outcome, []string) {

	var cres *CleaningResult
	var err error
	switch cleaner {
	case CleanSAGA:
		cres, err = RunSAGA(train, target, task, opts.Seed)
	default:
		cres, err = RunLearn2Clean(train, target, task, opts.Seed)
	}
	if err != nil {
		f := failed(string(cleaner)+"+"+string(tool), train.Name, err.Error())
		return f, nil
	}
	AugmentADASYN(cres.Train, target, task, opts.Seed)
	o := RunAutoML(tool, cres.Train, test, target, task, opts)
	o.System = string(cleaner) + "+" + string(tool)
	o.GenTime += cres.Elapsed
	return o, cres.Steps
}
