package baselines

import (
	"strings"
	"time"

	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/pipescript"
	"catdb/internal/profile"
	"catdb/internal/prompt"
)

// LLMBaselineOptions tunes the AIDE and AutoGen reproductions.
type LLMBaselineOptions struct {
	Seed int64
	// MaxRetries bounds resubmissions (AIDE retried up to 20 times in the
	// paper's runs, AutoGen up to 15).
	MaxRetries int
	TrainFrac  float64
}

func (o LLMBaselineOptions) withDefaults(def int) LLMBaselineOptions {
	if o.MaxRetries <= 0 {
		o.MaxRetries = def
	}
	if o.TrainFrac <= 0 || o.TrainFrac >= 1 {
		o.TrainFrac = 0.7
	}
	return o
}

// RunAIDE reproduces AIDE (Schmidt et al. 2024): an end-to-end LLM
// solution generator driven by a concise human-written task description
// rather than a data catalog. On errors it resubmits the whole prompt (no
// knowledge base, no targeted metadata), which makes it cheap when the
// LLM succeeds and unstable when it does not — the Figure 11/Table 8
// behaviour. It requires a human description and fails without one.
func RunAIDE(ds *data.Dataset, client llm.Client, opts LLMBaselineOptions) Outcome {
	opts = opts.withDefaults(20)
	o := Outcome{System: "AIDE", Dataset: ds.Name, Model: client.Name()}
	if ds.Description == "" {
		return failed("AIDE", ds.Name, "N/A (needs human-written description)")
	}
	return runDescriptionDriven(o, ds, client, opts, descriptionConfig(), false)
}

// RunAutoGen reproduces AutoGen (Wu et al. 2024) as used in the paper: a
// multi-agent conversation where a writer agent generates the pipeline
// and a critic agent feeds execution errors back (without catalog
// metadata). It carries slightly more metadata than AIDE (missing-value
// frequencies) but still performs no data cleaning; Llama-generated
// pipelines default to naive wide searches, inflating runtime (Table 8).
func RunAutoGen(ds *data.Dataset, client llm.Client, opts LLMBaselineOptions) Outcome {
	opts = opts.withDefaults(15)
	o := Outcome{System: "AutoGen", Dataset: ds.Name, Model: client.Name()}
	cfg := descriptionConfig()
	cfg.Combo = prompt.Combo6
	return runDescriptionDriven(o, ds, client, opts, cfg, true)
}

func descriptionConfig() prompt.Config {
	return prompt.Config{Combo: prompt.Combo1, Chains: 1, IncludeRules: false, IncludeDescription: true}
}

func runDescriptionDriven(o Outcome, ds *data.Dataset, client llm.Client, opts LLMBaselineOptions,
	cfg prompt.Config, errorFeedback bool) Outcome {

	start := time.Now()
	table, err := ds.Consolidate()
	if err != nil {
		return failed(o.System, ds.Name, err.Error())
	}
	var train, test *data.Table
	if ds.Task.IsClassification() {
		train, test = table.StratifiedSplit(ds.Target, opts.TrainFrac, opts.Seed)
	} else {
		train, test = table.Split(opts.TrainFrac, opts.Seed)
	}
	prof, err := profile.Table(train, ds.Target, ds.Task, profile.Options{Seed: opts.Seed})
	if err != nil {
		return failed(o.System, ds.Name, err.Error())
	}
	in := prompt.InputFromProfile(prof, 0, ds.Description)
	spec := prompt.ModelSpec{Name: client.Name(), MaxPromptTokens: client.MaxPromptTokens()}
	prompts := prompt.Build(in, spec, cfg)
	pr := prompts[0]

	ex := &pipescript.Executor{Target: ds.Target, Task: ds.Task, Seed: opts.Seed}
	var source string
	success := false
	var lastErr error
	for attempt := 0; attempt < opts.MaxRetries; attempt++ {
		text := pr.Text
		if errorFeedback && lastErr != nil && source != "" {
			// AutoGen's critic: the error (without catalog metadata) plus
			// the previous code travel back to the writer agent.
			ep := prompt.FormatErrorPrompt(in, source, errLine(lastErr), errCode(lastErr), lastErr.Error(), nil, cfg)
			text = ep.Text
		}
		resp, cerr := client.Complete(text)
		if cerr != nil {
			return failed(o.System, ds.Name, cerr.Error())
		}
		o.Tokens += resp.Usage.Total()
		source = resp.Text
		prog, perr := pipescript.Parse(source)
		if perr != nil {
			lastErr = perr
			continue
		}
		if o.Model == "llama3.1-70b" {
			// Llama's naive grid-search habit: quadruple the ensemble.
			source = inflateSearch(source)
			prog, perr = pipescript.Parse(source)
			if perr != nil {
				lastErr = perr
				continue
			}
		}
		res, xerr := ex.Execute(prog, train, test)
		if xerr != nil {
			lastErr = xerr
			continue
		}
		o.TrainAcc, o.TestAcc = res.TrainAcc, res.TestAcc
		o.TrainAUC, o.TestAUC = res.TrainAUC, res.TestAUC
		o.TrainR2, o.TestR2 = res.TrainR2, res.TestR2
		o.Metric = res.Metric
		success = true
		break
	}
	o.ExecTime = time.Since(start)
	if !success {
		reason := "retries exhausted"
		if lastErr != nil {
			reason = lastErr.Error()
		}
		f := failed(o.System, ds.Name, reason)
		f.Model = o.Model
		f.Tokens = o.Tokens
		f.ExecTime = o.ExecTime
		return f
	}
	return o
}

func errLine(err error) int {
	if re, ok := err.(*pipescript.RuntimeError); ok {
		return re.Line
	}
	if se, ok := err.(*pipescript.SyntaxError); ok {
		return se.Line
	}
	return 1
}

func errCode(err error) string {
	if re, ok := err.(*pipescript.RuntimeError); ok {
		return re.Code
	}
	if _, ok := err.(*pipescript.SyntaxError); ok {
		return "E_SYNTAX"
	}
	return "E_UNKNOWN"
}

// inflateSearch multiplies ensemble sizes in train statements (the
// Llama grid-search pathology).
func inflateSearch(source string) string {
	lines := strings.Split(source, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "train ") {
			l = strings.Replace(l, "trees=40", "trees=160", 1)
			l = strings.Replace(l, "trees=50", "trees=200", 1)
			l = strings.Replace(l, "rounds=40", "rounds=120", 1)
			lines[i] = l
		}
	}
	return strings.Join(lines, "\n")
}
