package bench

import (
	"fmt"

	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/obs"
)

// AblationRow is one (dataset, variant) aggregate over repeated runs.
type AblationRow struct {
	Dataset     string
	Variant     string
	MeanScore   float64
	Fails       int
	Runs        int
	Attempts    int // error-correction attempts across runs
	ErrTokens   int // error-management tokens across runs
	KBFixes     int
	Handcrafted int // times the τ₂ fallback fired
}

// AblationResult holds the design-choice ablation study.
type AblationResult struct {
	Rows []AblationRow
}

// Get returns the row for a dataset/variant pair, or nil.
func (r *AblationResult) Get(dataset, variant string) *AblationRow {
	for i := range r.Rows {
		if r.Rows[i].Dataset == dataset && r.Rows[i].Variant == variant {
			return &r.Rows[i]
		}
	}
	return nil
}

// ablationVariants isolates CatDB's design choices, one per row:
// rules, catalog refinement, the local knowledge base, the static
// code-analysis repair pass, and the τ₂ error-correction budget.
var ablationVariants = []struct {
	name string
	opts func(seed int64) core.Options
	noKB bool
}{
	{"full", func(s int64) core.Options { return core.Options{Seed: s} }, false},
	{"no-rules", func(s int64) core.Options { return core.Options{Seed: s, MetadataOnly: true} }, false},
	{"no-refine", func(s int64) core.Options { return core.Options{Seed: s, NoRefine: true} }, false},
	{"no-kb", func(s int64) core.Options { return core.Options{Seed: s} }, true},
	{"static-repair", func(s int64) core.Options { return core.Options{Seed: s, StaticRepair: true} }, false},
	{"tau2=1", func(s int64) core.Options { return core.Options{Seed: s, MaxAttempts: 1} }, false},
}

// RunAblation measures the contribution of each CatDB design choice on a
// dirty multiclass dataset and a regression dataset, using the
// error-prone Llama personality so the error-management ablations have
// signal.
func RunAblation(cfg Config) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	res := &AblationResult{}
	datasets := []string{"Etailing", "Utility"}
	if cfg.Fast {
		datasets = datasets[:1]
	}
	// One cell per (dataset, variant, iteration); per-run outcomes are
	// folded into the per-variant aggregates in iteration order.
	type cell struct {
		ds      *data.Dataset
		variant int
		iter    int
	}
	type runOut struct {
		failed      bool
		score       float64
		attempts    int
		errTokens   int
		kbFixes     int
		handcrafted bool
	}
	var cells []cell
	for _, name := range datasets {
		ds, err := data.Load(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		for vi := range ablationVariants {
			for i := 0; i < cfg.Iterations; i++ {
				cells = append(cells, cell{ds: ds, variant: vi, iter: i})
			}
		}
	}
	outs, err := mapCells(cfg, "ablation", len(cells), func(k int, sp *obs.Span) (runOut, error) {
		c := cells[k]
		v := ablationVariants[c.variant]
		sp.SetStr("dataset", c.ds.Name)
		sp.SetStr("variant", v.name)
		seed := cfg.Seed + int64(c.iter)*53
		client, cerr := llm.New("llama3.1-70b", seed)
		if cerr != nil {
			return runOut{}, cerr
		}
		r := core.NewRunner(client)
		r.ProfileCache = cfg.ProfileCache
		cfg.instrument(r, sp)
		if v.noKB {
			r.KB = nil
		}
		opts := v.opts(seed)
		opts.DAG = cfg.DAG
		out, rerr := r.Run(c.ds, opts)
		if rerr != nil {
			return runOut{failed: true}, nil
		}
		return runOut{
			score: out.Exec.Primary(), attempts: out.Cost.Attempts,
			errTokens: out.Cost.ErrorTokens(), kbFixes: out.Cost.KBFixes,
			handcrafted: out.Handcrafted,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for k := 0; k < len(cells); k += cfg.Iterations {
		c := cells[k]
		row := AblationRow{Dataset: c.ds.Name, Variant: ablationVariants[c.variant].name}
		var scoreSum float64
		for i := 0; i < cfg.Iterations; i++ {
			o := outs[k+i]
			row.Runs++
			if o.failed {
				row.Fails++
				continue
			}
			scoreSum += o.score
			row.Attempts += o.attempts
			row.ErrTokens += o.errTokens
			row.KBFixes += o.kbFixes
			if o.handcrafted {
				row.Handcrafted++
			}
		}
		if ok := row.Runs - row.Fails; ok > 0 {
			row.MeanScore = scoreSum / float64(ok)
		}
		res.Rows = append(res.Rows, row)
	}

	t := &table{header: []string{"Dataset", "Variant", "Score", "Attempts", "ErrTokens", "KBFixes", "Handcrafted", "Fails"}}
	for _, r := range res.Rows {
		t.add(r.Dataset, r.Variant, f1(r.MeanScore),
			fmt.Sprint(r.Attempts), fmt.Sprint(r.ErrTokens),
			fmt.Sprint(r.KBFixes), fmt.Sprint(r.Handcrafted), fmt.Sprint(r.Fails))
	}
	t.render(cfg.Out, "Ablation: contribution of CatDB's design choices (LLM = Llama)")
	return res, nil
}
