// Package baseline resolves which benchmark comparison lane a bench run
// captures. Every two-pass benchmark in the repo (pre-optimization
// baseline pass, then the current implementation) selects its baseline
// pass through one documented convention:
//
//	BENCH_BASELINE=<lane>
//
// where <lane> names the subsystem: "data" (deep-copy gather), "ingest"
// (serial single-chunk parse), "dag" (linear statement execution), or
// "shard" (serial elementwise row loops). The historical per-subsystem
// variables (BENCH_DATA_MODE=deep, BENCH_INGEST_MODE=legacy,
// BENCH_DAG_MODE=serial, BENCH_SHARD_MODE=serial) remain supported as
// aliases so existing invocations keep working.
//
// The package is a leaf (it imports only os) so bench files anywhere —
// including internal/data, which internal/bench itself imports — can
// use it without import cycles.
package baseline

import "os"

// Lane reports whether the current run should capture the named lane's
// baseline: BENCH_BASELINE equals lane, or the lane's legacy variable
// carries its legacy value.
func Lane(lane, legacyVar, legacyValue string) bool {
	if os.Getenv("BENCH_BASELINE") == lane {
		return true
	}
	return legacyVar != "" && os.Getenv(legacyVar) == legacyValue
}
