// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§5). Each experiment has a typed
// runner returning structured rows plus a printer that renders them in
// the paper's layout. Dataset sizes are scaled via Config.Scale (see
// DESIGN.md: row counts are scaled, characteristics are not), so the
// comparisons preserve the paper's shape rather than its absolute
// numbers.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
	"unicode/utf8"

	"catdb/internal/data"
	"catdb/internal/obs"
	"catdb/internal/obs/ledger"
	"catdb/internal/pool"
	"catdb/internal/profile"
)

// Config tunes an experiment run.
type Config struct {
	// Scale multiplies the registry row counts (1.0 = full scaled sizes;
	// the quick default used by the benches is 0.2).
	Scale float64
	// Seed drives every random choice; a fixed seed reproduces runs
	// bit-for-bit.
	Seed int64
	// Iterations for the repeated-run experiments (Figures 11-12).
	Iterations int
	// Fast trims dataset lists and iteration counts for CI runs.
	Fast bool
	// Workers bounds how many experiment cells run concurrently (default
	// GOMAXPROCS). Every runner fans its independent (dataset, model,
	// iteration) cells over a shared worker pool and reassembles results
	// in the paper's row order; each cell derives its own LLM client and
	// RNG from the cell identity, so output is bit-for-bit identical at
	// any worker count. Workers=1 reproduces the serial harness.
	Workers int
	// ProfileCache shares Algorithm 1 profiling across cells: every cell
	// that loads the same (dataset, scale) at the same seed and options
	// reuses one computed profile instead of redoing the pass. Defaults to
	// a fresh cache per experiment; pass one cache to several experiments
	// to share across them. Profiles are keyed by table content, so
	// corrupted/mutated variants never alias (see profile.Cache).
	ProfileCache *profile.Cache
	// Ingest tunes CSV ingest wherever experiments parse CSV (chunk-parse
	// worker count and chunk size) and parameterizes the ingest-scaling
	// experiment. Results never depend on it — only wall time does.
	Ingest data.IngestOptions
	// Out receives the rendered tables (defaults to io.Discard).
	Out io.Writer
	// Tracer, when set, records one "bench:<phase>" span per experiment
	// phase with a "cell" child per experiment cell; instrumented runners
	// nest their run subtree (refine/profile/generate/debug-attempt/exec)
	// under the cell. Nil disables tracing; experiment results are
	// bit-identical either way.
	Tracer *obs.Tracer
	// Metrics, when set, receives harness counters and latency histograms
	// (catdb_bench_*) plus everything the instrumented runners, LLM
	// middleware, profile cache, and pipeline executors record.
	Metrics *obs.Registry
	// Progress, when set, receives one line per completed experiment cell
	// (the bench CLI points it at stderr under -progress). Lines report
	// completion order, which is scheduling-dependent; experiment results
	// remain deterministic.
	Progress io.Writer
	// DAG turns on the pipeline executor's dependency-DAG scheduler for
	// every run the experiments launch. Scores, costs, and errors are
	// bit-identical to linear execution — only pipeline wall time
	// changes — so it is safe to flip on any experiment.
	DAG bool
	// ShardRows sets the pipeline executor's row-shard chunk size for
	// elementwise op loops (0 = default, negative = serial). Like DAG,
	// results are bit-identical at any value.
	ShardRows int
	// Ledger, when set, appends one record per completed core.Run —
	// config hash, stage seconds, token counts, fix counts, and the
	// final metric snapshot — to the persistent run ledger
	// (`benchjson -compare` diffs the latest run against this history).
	// Nil disables recording; results are bit-identical either way.
	Ledger *ledger.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.2
	}
	if c.Iterations <= 0 {
		c.Iterations = 10
	}
	if c.Fast && c.Iterations > 3 {
		c.Iterations = 3
	}
	if c.Workers <= 0 {
		c.Workers = pool.DefaultWorkers()
	}
	if c.ProfileCache == nil {
		c.ProfileCache = profile.NewCache()
	}
	if c.Metrics != nil {
		// Cache lookups surface as catdb_profile_cache_{hits,misses}_total.
		// Only attach when metrics are on, so an unobserved experiment
		// never detaches a registry another experiment installed on a
		// shared cache.
		c.ProfileCache.SetMetrics(c.Metrics)
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// table is a simple fixed-width table renderer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// pad right-pads to w columns measured in runes, not bytes, so non-ASCII
// cells (dataset names, τ₂ variant labels) don't misalign the table.
func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func secs(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

func orNA(failed bool, reason, value string) string {
	if failed {
		if reason == "OOM" || strings.Contains(reason, "Mem") {
			return "OOM"
		}
		if strings.Contains(reason, "regression") {
			return "n/s"
		}
		return "N/A"
	}
	return value
}
