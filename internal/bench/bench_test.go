package bench

import (
	"bytes"
	"strings"
	"testing"
)

// fastCfg is a small-but-meaningful config for CI runs.
func fastCfg() Config {
	return Config{Scale: 0.12, Seed: 1, Iterations: 2, Fast: true}
}

func TestFig9Profiling(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	res, err := RunFig9Profiling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("profiled %d datasets, want 20", len(res.Rows))
	}
	total := 0
	for _, n := range res.Census {
		total += n
	}
	if total == 0 {
		t.Fatal("empty type census")
	}
	if !strings.Contains(buf.String(), "Figure 9(a)") {
		t.Fatal("report not rendered")
	}
}

func TestTable4Refinement(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	res, err := RunTable4Refinement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no refinement rows")
	}
	// Shape: refined distinct counts must never exceed originals for
	// dedup/sentence updates.
	for _, r := range res.Rows {
		if (r.Kind == "dedup-categorical" || r.Kind == "sentence-to-categorical") &&
			r.RefinedDistinct > r.OriginalDistinct {
			t.Fatalf("refinement increased distinct count: %+v", r)
		}
	}
}

func TestTable5Cleaning(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	res, err := RunTable5Cleaning(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shape check (paper's headline): refined CatDB beats original CatDB
	// on EU-IT (dirty target labels).
	orig := res.Get("EU-IT", "CatDB Original")
	ref := res.Get("EU-IT", "CatDB Refined")
	if orig == nil || ref == nil {
		t.Fatal("EU-IT rows missing")
	}
	if !orig.Failed && !ref.Failed && ref.TestAcc <= orig.TestAcc {
		t.Fatalf("EU-IT: refined (%.1f) must beat original (%.1f)", ref.TestAcc, orig.TestAcc)
	}
}

func TestFig11TenIterations(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	res, err := RunFig11TenIterations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Get("Diabetes", "gpt-4o", "CatDB")
	if c == nil {
		t.Fatal("CatDB cell missing")
	}
	if len(c.AUCs)+c.Fails != cfg.withDefaults().Iterations {
		t.Fatalf("iterations accounted: %d + %d", len(c.AUCs), c.Fails)
	}
	if c.Mean() < 55 {
		t.Fatalf("Diabetes CatDB mean AUC = %g", c.Mean())
	}
	if c.TotalTokens == 0 {
		t.Fatal("token cost missing")
	}
}

func TestTable7And8(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	res, err := RunTable7SingleIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Get("CMC", "gpt-4o", "CatDB")
	if row == nil || row.Failed {
		t.Fatalf("CMC CatDB row: %+v", row)
	}
	if row.Score < 55 {
		t.Fatalf("CMC CatDB AUC = %g", row.Score)
	}
	t8 := AggregateTable8(res)
	foundCatDB := false
	for _, r := range t8.Rows {
		if r.System == "CatDB" && r.Fail != 0 {
			t.Fatalf("CatDB must not fail (Table 8): %+v", r)
		}
		if r.System == "CatDB" {
			foundCatDB = true
			if r.SumSec <= 0 {
				t.Fatal("runtime sums missing")
			}
		}
	}
	if !foundCatDB {
		t.Fatal("CatDB missing from Table 8")
	}
}

func TestTable2ErrorTraces(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	res, err := RunTable2ErrorTraces(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Store.Len() == 0 {
		t.Fatal("no traces collected")
	}
	// Shape: RE dominates the error mix (paper: >75%).
	for _, d := range res.Distributions {
		if d.TotalRequests >= 10 && d.REPct < 50 {
			t.Fatalf("%s: RE share = %.1f%%, expected dominant", d.Model, d.REPct)
		}
	}
}

func TestFig14Robustness(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	res, err := RunFig14Robustness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shape: CatDB at 5% outliers stays close to its clean score, while
	// the AutoML tool degrades (Figure 14a).
	catClean, ok1 := res.Get("Utility", "outliers", 0, "CatDB")
	catDirty, ok2 := res.Get("Utility", "outliers", 0.05, "CatDB")
	amlClean, ok3 := res.Get("Utility", "outliers", 0, "Flaml")
	amlDirty, ok4 := res.Get("Utility", "outliers", 0.05, "Flaml")
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatalf("cells missing: %v %v %v %v", ok1, ok2, ok3, ok4)
	}
	catDrop := catClean - catDirty
	amlDrop := amlClean - amlDirty
	if catDrop > amlDrop+5 {
		t.Fatalf("CatDB should be more robust: CatDB drop %.1f vs AutoML drop %.1f", catDrop, amlDrop)
	}
}

func TestFig10MetadataImpact(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	res, err := RunFig10MetadataImpact(cfg)
	if err != nil {
		t.Fatal(err)
	}
	catdb := res.Best("Diabetes", "CatDB")
	if catdb < 55 {
		t.Fatalf("Diabetes CatDB score = %g", catdb)
	}
	// Combos exist.
	if res.Best("Diabetes", "#") == 0 {
		t.Fatal("combo rows missing")
	}
}

func TestTableRenderer(t *testing.T) {
	var buf bytes.Buffer
	tb := &table{header: []string{"A", "LongHeader"}}
	tb.add("x", "1")
	tb.add("longer-cell", "2")
	tb.render(&buf, "Title")
	out := buf.String()
	if !strings.Contains(out, "== Title ==") || !strings.Contains(out, "longer-cell") {
		t.Fatalf("render: %s", out)
	}
}

func TestHelpers(t *testing.T) {
	if orNA(true, "OOM", "99") != "OOM" {
		t.Fatal("OOM rendering")
	}
	if orNA(true, "Doesn't support regression", "99") != "n/s" {
		t.Fatal("n/s rendering")
	}
	if orNA(false, "", "99") != "99" {
		t.Fatal("value rendering")
	}
	if f1(1.25) != "1.2" && f1(1.25) != "1.3" {
		t.Fatal("f1")
	}
}

func TestAblation(t *testing.T) {
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Out = &buf
	res, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := res.Get("Etailing", "full")
	noRules := res.Get("Etailing", "no-rules")
	if full == nil || noRules == nil {
		t.Fatal("ablation rows missing")
	}
	if full.MeanScore < noRules.MeanScore-10 {
		t.Fatalf("rules should not hurt: full=%.1f no-rules=%.1f", full.MeanScore, noRules.MeanScore)
	}
	// Static repair must not increase attempts relative to full.
	repair := res.Get("Etailing", "static-repair")
	if repair == nil {
		t.Fatal("static-repair row missing")
	}
	if repair.Attempts > full.Attempts {
		t.Fatalf("static repair should cut attempts: %d vs %d", repair.Attempts, full.Attempts)
	}
	// no-kb must have zero KB fixes.
	if nokb := res.Get("Etailing", "no-kb"); nokb == nil || nokb.KBFixes != 0 {
		t.Fatalf("no-kb row: %+v", nokb)
	}
}
