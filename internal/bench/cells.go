package bench

import (
	"fmt"
	"sync"
	"time"

	"catdb/internal/core"
	"catdb/internal/obs"
	"catdb/internal/pool"
)

// mapCells fans one experiment phase's cells over the worker pool with
// optional observability: a "bench:<phase>" root span with one "cell"
// child per cell, per-cell latency/count/error metrics (catdb_bench_*),
// and live progress lines. With no Tracer, Metrics, or Progress
// configured it collapses to exactly the untraced pool.Map fan-out, so
// unobserved benches keep bit-identical behavior and zero overhead.
// Result order and error semantics are pool.Map's in both modes.
func mapCells[T any](cfg Config, phase string, n int, fn func(i int, sp *obs.Span) (T, error)) ([]T, error) {
	if cfg.Tracer == nil && cfg.Metrics == nil && cfg.Progress == nil {
		return pool.Map(cfg.Workers, n, func(i int) (T, error) { return fn(i, nil) })
	}
	root := cfg.Tracer.Root("bench:" + phase)
	root.SetInt("cells", int64(n))
	defer root.End()
	var (
		mu   sync.Mutex
		done int
	)
	return pool.Map(cfg.Workers, n, func(i int) (T, error) {
		sp := root.Child("cell")
		sp.SetStr("phase", phase)
		sp.SetInt("index", int64(i))
		start := obs.Now()
		v, err := fn(i, sp)
		d := obs.Since(start)
		if err != nil {
			sp.SetStr("error", err.Error())
		}
		sp.End()
		if cfg.Metrics != nil {
			cfg.Metrics.Counter("catdb_bench_cells_total", "phase", phase).Inc()
			cfg.Metrics.Histogram("catdb_bench_cell_seconds", obs.DefBuckets, "phase", phase).Observe(d.Seconds())
			if err != nil {
				cfg.Metrics.Counter("catdb_bench_cell_errors_total", "phase", phase).Inc()
			}
		}
		if cfg.Progress != nil {
			// One completion line per cell; the mutex keeps concurrent
			// lines whole and the done counter monotone. With metrics on,
			// the line carries running p50/p99 cell latencies interpolated
			// from the shared histogram.
			quantiles := ""
			if cfg.Metrics != nil {
				h := cfg.Metrics.Histogram("catdb_bench_cell_seconds", obs.DefBuckets, "phase", phase)
				quantiles = fmt.Sprintf(", p50=%.2fs p99=%.2fs", h.Quantile(0.5), h.Quantile(0.99))
			}
			mu.Lock()
			done++
			fmt.Fprintf(cfg.Progress, "[%s] cell %d/%d done (index %d, %s%s)\n",
				phase, done, n, i, d.Round(time.Millisecond), quantiles)
			mu.Unlock()
		}
		return v, err
	})
}

// instrument attaches the config's observability sinks to a runner so
// its Run nests a full span subtree under the cell's span, records into
// the shared registry, and appends completed runs to the persistent
// ledger. With observability off (nil span, nil registry, nil ledger)
// it leaves the runner's behavior untouched.
func (c Config) instrument(r *core.Runner, sp *obs.Span) {
	r.TraceParent = sp
	r.Metrics = c.Metrics
	if c.Ledger != nil {
		r.OnResult = func(opts core.Options, res *core.Result) {
			// Append errors are retained by the writer and reported once
			// at Close; a full disk must not fail the experiment cell.
			_ = c.Ledger.Append(c.ledgerRecord(opts, res))
		}
	}
}
