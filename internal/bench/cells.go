package bench

import (
	"fmt"
	"sync"
	"time"

	"catdb/internal/core"
	"catdb/internal/obs"
	"catdb/internal/pool"
)

// mapCells fans one experiment phase's cells over the worker pool with
// optional observability: a "bench:<phase>" root span with one "cell"
// child per cell, per-cell latency/count/error metrics (catdb_bench_*),
// and live progress lines. With no Tracer, Metrics, or Progress
// configured it collapses to exactly the untraced pool.Map fan-out, so
// unobserved benches keep bit-identical behavior and zero overhead.
// Result order and error semantics are pool.Map's in both modes.
func mapCells[T any](cfg Config, phase string, n int, fn func(i int, sp *obs.Span) (T, error)) ([]T, error) {
	if cfg.Tracer == nil && cfg.Metrics == nil && cfg.Progress == nil {
		return pool.Map(cfg.Workers, n, func(i int) (T, error) { return fn(i, nil) })
	}
	root := cfg.Tracer.Root("bench:" + phase)
	root.SetInt("cells", int64(n))
	defer root.End()
	var (
		mu   sync.Mutex
		done int
	)
	return pool.Map(cfg.Workers, n, func(i int) (T, error) {
		sp := root.Child("cell")
		sp.SetStr("phase", phase)
		sp.SetInt("index", int64(i))
		start := obs.Now()
		v, err := fn(i, sp)
		d := obs.Since(start)
		if err != nil {
			sp.SetStr("error", err.Error())
		}
		sp.End()
		if cfg.Metrics != nil {
			cfg.Metrics.Counter("catdb_bench_cells_total", "phase", phase).Inc()
			cfg.Metrics.Histogram("catdb_bench_cell_seconds", obs.DefBuckets, "phase", phase).Observe(d.Seconds())
			if err != nil {
				cfg.Metrics.Counter("catdb_bench_cell_errors_total", "phase", phase).Inc()
			}
		}
		if cfg.Progress != nil {
			// One completion line per cell; the mutex keeps concurrent
			// lines whole and the done counter monotone.
			mu.Lock()
			done++
			fmt.Fprintf(cfg.Progress, "[%s] cell %d/%d done (index %d, %s)\n",
				phase, done, n, i, d.Round(time.Millisecond))
			mu.Unlock()
		}
		return v, err
	})
}

// instrument attaches the config's observability sinks to a runner so
// its Run nests a full span subtree under the cell's span and records
// into the shared registry. With observability off (nil span, nil
// registry) it leaves the runner's behavior untouched.
func (c Config) instrument(r *core.Runner, sp *obs.Span) {
	r.TraceParent = sp
	r.Metrics = c.Metrics
}
