package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"catdb/internal/obs"
	"catdb/internal/pool"
)

// TestMapCellsMatchesPoolMap pins the fast-path contract: with no
// observability configured, mapCells must return exactly what pool.Map
// returns — same values, same order — and the observed mode must not
// change the results either.
func TestMapCellsMatchesPoolMap(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	want, err := pool.Map(4, 32, fn)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := mapCells(Config{Workers: 4}, "test", 32, func(i int, _ *obs.Span) (int, error) { return fn(i) })
	if err != nil {
		t.Fatal(err)
	}
	observed, err := mapCells(Config{Workers: 4, Tracer: obs.New(), Metrics: obs.NewRegistry(), Progress: io.Discard},
		"test", 32, func(i int, _ *obs.Span) (int, error) { return fn(i) })
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if plain[i] != want[i] || observed[i] != want[i] {
			t.Fatalf("index %d: pool=%d plain=%d observed=%d", i, want[i], plain[i], observed[i])
		}
	}
}

// TestMapCellsProgressSpansMetrics checks the observed mode's three
// outputs: one progress line per cell, a bench:<phase> root span with one
// cell child per cell, and the catdb_bench_* counters.
func TestMapCellsProgressSpansMetrics(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.New()
	reg := obs.NewRegistry()
	cfg := Config{Workers: 3, Tracer: tr, Metrics: reg, Progress: &buf}
	const n = 7
	if _, err := mapCells(cfg, "phaseX", n, func(i int, sp *obs.Span) (int, error) {
		sp.SetInt("payload", int64(i))
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != n {
		t.Fatalf("progress lines = %d, want %d:\n%s", len(lines), n, buf.String())
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "[phaseX] cell ") || !strings.Contains(line, "done") {
			t.Fatalf("malformed progress line %q", line)
		}
		// With metrics on, every line carries running latency quantiles.
		if !strings.Contains(line, "p50=") || !strings.Contains(line, "p99=") {
			t.Fatalf("progress line missing latency quantiles: %q", line)
		}
	}
	spans := tr.Snapshot()
	if len(spans) != 1+n {
		t.Fatalf("spans = %d, want %d", len(spans), 1+n)
	}
	if spans[0].Name != "bench:phaseX" {
		t.Fatalf("root span = %q", spans[0].Name)
	}
	cells := 0
	for _, s := range spans[1:] {
		if s.Name == "cell" && s.Parent == spans[0].ID {
			cells++
		}
	}
	if cells != n {
		t.Fatalf("cell spans under root = %d, want %d", cells, n)
	}
	if got := reg.Counter("catdb_bench_cells_total", "phase", "phaseX").Value(); got != n {
		t.Fatalf("catdb_bench_cells_total = %d, want %d", got, n)
	}
	if got := reg.Histogram("catdb_bench_cell_seconds", obs.DefBuckets, "phase", "phaseX").Count(); got != n {
		t.Fatalf("catdb_bench_cell_seconds count = %d, want %d", got, n)
	}
}

// TestObservedBenchOutputIdentical runs a real experiment twice — once
// bare, once fully observed — and requires byte-identical rendered
// tables: observability must never leak into experiment results.
func TestObservedBenchOutputIdentical(t *testing.T) {
	var plain, observed bytes.Buffer
	if _, err := RunTable4Refinement(Config{Fast: true, Seed: 1, Out: &plain}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunTable4Refinement(Config{
		Fast: true, Seed: 1, Out: &observed,
		Tracer: obs.New(), Metrics: obs.NewRegistry(), Progress: io.Discard,
	}); err != nil {
		t.Fatal(err)
	}
	if plain.String() != observed.String() {
		t.Fatalf("observed run changed output:\n--- plain ---\n%s\n--- observed ---\n%s", plain.String(), observed.String())
	}
}
