package bench

import (
	"fmt"

	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/obs"
	"catdb/internal/prompt"
)

// Fig10Row is one (dataset, configuration) accuracy measurement.
type Fig10Row struct {
	Dataset string
	Config  string // "#1".."#11", "CatDB", "CatDB Chain", "TopK=..."
	Score   float64
	Failed  bool
}

// Fig10Result holds the metadata-impact micro-benchmark.
type Fig10Result struct {
	Rows []Fig10Row
}

// RunFig10MetadataImpact reproduces Figure 10: pipeline quality across the
// eleven metadata combinations of Table 1 (metadata-only prompting) versus
// CatDB's adaptive metadata+rules selection and CatDB Chain, on one
// binary, one multiclass, and one regression dataset; plus the top-K
// feature-selection sweep of Figure 10(c,d) on the wide KDD98 analogue.
func RunFig10MetadataImpact(cfg Config) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig10Result{}
	datasets := []string{"Diabetes", "EU-IT", "Utility"}
	if cfg.Fast {
		datasets = []string{"Diabetes", "Utility"}
	}
	model := "gemini-1.5-pro"

	// One closure per (dataset, configuration) cell, built in the paper's
	// row order; the pool preserves that order on reassembly. runCell is
	// the shared body: each cell derives its own client from the cell
	// identity so scores are independent of scheduling.
	runCell := func(sp *obs.Span, ds *data.Dataset, config, model string, clientSeed int64, opts core.Options) (Fig10Row, error) {
		client, err := llm.New(model, clientSeed)
		if err != nil {
			return Fig10Row{}, err
		}
		r := core.NewRunner(client)
		r.ProfileCache = cfg.ProfileCache
		cfg.instrument(r, sp)
		out, rerr := r.Run(ds, opts)
		row := Fig10Row{Dataset: ds.Name, Config: config}
		if rerr != nil {
			row.Failed = true
		} else {
			row.Score = out.Exec.Primary()
		}
		return row, nil
	}
	var cells []func(sp *obs.Span) (Fig10Row, error)
	for _, name := range datasets {
		ds, err := data.Load(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		// Table 1 combinations, metadata-only.
		for combo := prompt.Combo1; combo <= prompt.Combo11; combo++ {
			if cfg.Fast && combo > prompt.Combo4 && combo != prompt.Combo11 {
				continue
			}
			combo := combo
			cells = append(cells, func(sp *obs.Span) (Fig10Row, error) {
				return runCell(sp, ds, fmt.Sprintf("#%d", combo), model, cfg.Seed+int64(combo),
					core.Options{Seed: cfg.Seed, Combo: combo, MetadataOnly: true, NoRefine: true, DAG: cfg.DAG, ExecShardRows: cfg.ShardRows})
			})
		}
		// CatDB and CatDB Chain.
		for _, variant := range []struct {
			label  string
			chains int
		}{{"CatDB", 1}, {"CatDB Chain", 3}} {
			variant := variant
			cells = append(cells, func(sp *obs.Span) (Fig10Row, error) {
				return runCell(sp, ds, variant.label, model, cfg.Seed+100+int64(variant.chains),
					core.Options{Seed: cfg.Seed, Chains: variant.chains, DAG: cfg.DAG, ExecShardRows: cfg.ShardRows})
			})
		}
	}

	// Figure 10(c,d): top-K sweep on the wide dataset; the single prompt
	// degrades once the metadata overflows the model context (rules get
	// truncated), while the chain variant stays flat.
	if !cfg.Fast {
		wide, err := data.Load("KDD98", cfg.Scale*0.5)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{50, 130, 260, 478} {
			for _, variant := range []struct {
				label  string
				chains int
			}{{"single", 1}, {"chain", 4}} {
				k, variant := k, variant
				cells = append(cells, func(sp *obs.Span) (Fig10Row, error) {
					row, err := runCell(sp, wide, fmt.Sprintf("TopK=%d/%s", k, variant.label),
						"llama3.1-70b", cfg.Seed+int64(k),
						core.Options{Seed: cfg.Seed, TopK: k, Chains: variant.chains, NoRefine: true, DAG: cfg.DAG, ExecShardRows: cfg.ShardRows})
					row.Dataset = "KDD98"
					return row, err
				})
			}
		}
	}
	rows, err := mapCells(cfg, "fig10", len(cells), func(i int, sp *obs.Span) (Fig10Row, error) { return cells[i](sp) })
	if err != nil {
		return nil, err
	}
	res.Rows = rows

	t := &table{header: []string{"Dataset", "Config", "Score(AUC/R2)"}}
	for _, r := range res.Rows {
		v := f1(r.Score)
		if r.Failed {
			v = "FAIL"
		}
		t.add(r.Dataset, r.Config, v)
	}
	t.render(cfg.Out, "Figure 10: Metadata Impact on Pipeline Performance")
	return res, nil
}

// Best returns the best score recorded for a dataset/config prefix.
func (r *Fig10Result) Best(dataset, configPrefix string) float64 {
	best := 0.0
	for _, row := range r.Rows {
		if row.Dataset == dataset && len(row.Config) >= len(configPrefix) &&
			row.Config[:len(configPrefix)] == configPrefix && row.Score > best {
			best = row.Score
		}
	}
	return best
}
