package bench

import (
	"fmt"

	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/prompt"
)

// Fig10Row is one (dataset, configuration) accuracy measurement.
type Fig10Row struct {
	Dataset string
	Config  string // "#1".."#11", "CatDB", "CatDB Chain", "TopK=..."
	Score   float64
	Failed  bool
}

// Fig10Result holds the metadata-impact micro-benchmark.
type Fig10Result struct {
	Rows []Fig10Row
}

// RunFig10MetadataImpact reproduces Figure 10: pipeline quality across the
// eleven metadata combinations of Table 1 (metadata-only prompting) versus
// CatDB's adaptive metadata+rules selection and CatDB Chain, on one
// binary, one multiclass, and one regression dataset; plus the top-K
// feature-selection sweep of Figure 10(c,d) on the wide KDD98 analogue.
func RunFig10MetadataImpact(cfg Config) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig10Result{}
	datasets := []string{"Diabetes", "EU-IT", "Utility"}
	if cfg.Fast {
		datasets = []string{"Diabetes", "Utility"}
	}
	model := "gemini-1.5-pro"

	for _, name := range datasets {
		ds, err := data.Load(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		// Table 1 combinations, metadata-only.
		for combo := prompt.Combo1; combo <= prompt.Combo11; combo++ {
			if cfg.Fast && combo > prompt.Combo4 && combo != prompt.Combo11 {
				continue
			}
			client, err := llm.New(model, cfg.Seed+int64(combo))
			if err != nil {
				return nil, err
			}
			r := core.NewRunner(client)
			out, err := r.Run(ds, core.Options{
				Seed: cfg.Seed, Combo: combo, MetadataOnly: true, NoRefine: true,
			})
			row := Fig10Row{Dataset: name, Config: fmt.Sprintf("#%d", combo)}
			if err != nil {
				row.Failed = true
			} else {
				row.Score = out.Exec.Primary()
			}
			res.Rows = append(res.Rows, row)
		}
		// CatDB and CatDB Chain.
		for _, variant := range []struct {
			label  string
			chains int
		}{{"CatDB", 1}, {"CatDB Chain", 3}} {
			client, err := llm.New(model, cfg.Seed+100+int64(variant.chains))
			if err != nil {
				return nil, err
			}
			r := core.NewRunner(client)
			out, err := r.Run(ds, core.Options{Seed: cfg.Seed, Chains: variant.chains})
			row := Fig10Row{Dataset: name, Config: variant.label}
			if err != nil {
				row.Failed = true
			} else {
				row.Score = out.Exec.Primary()
			}
			res.Rows = append(res.Rows, row)
		}
	}

	// Figure 10(c,d): top-K sweep on the wide dataset; the single prompt
	// degrades once the metadata overflows the model context (rules get
	// truncated), while the chain variant stays flat.
	if !cfg.Fast {
		wide, err := data.Load("KDD98", cfg.Scale*0.5)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{50, 130, 260, 478} {
			for _, variant := range []struct {
				label  string
				chains int
			}{{"single", 1}, {"chain", 4}} {
				client, err := llm.New("llama3.1-70b", cfg.Seed+int64(k))
				if err != nil {
					return nil, err
				}
				r := core.NewRunner(client)
				out, rerr := r.Run(wide, core.Options{Seed: cfg.Seed, TopK: k, Chains: variant.chains, NoRefine: true})
				row := Fig10Row{Dataset: "KDD98", Config: fmt.Sprintf("TopK=%d/%s", k, variant.label)}
				if rerr != nil {
					row.Failed = true
				} else {
					row.Score = out.Exec.Primary()
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}

	t := &table{header: []string{"Dataset", "Config", "Score(AUC/R2)"}}
	for _, r := range res.Rows {
		v := f1(r.Score)
		if r.Failed {
			v = "FAIL"
		}
		t.add(r.Dataset, r.Config, v)
	}
	t.render(cfg.Out, "Figure 10: Metadata Impact on Pipeline Performance")
	return res, nil
}

// Best returns the best score recorded for a dataset/config prefix.
func (r *Fig10Result) Best(dataset, configPrefix string) float64 {
	best := 0.0
	for _, row := range r.Rows {
		if row.Dataset == dataset && len(row.Config) >= len(configPrefix) &&
			row.Config[:len(configPrefix)] == configPrefix && row.Score > best {
			best = row.Score
		}
	}
	return best
}
