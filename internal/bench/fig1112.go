package bench

import (
	"fmt"
	"sort"

	"catdb/internal/baselines"
	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/obs"
)

// iterDatasets are the three datasets of the 10-iteration study (§5.4).
var iterDatasets = []string{"Diabetes", "Gas-Drift", "Volkert"}

// Fig11Cell aggregates one (dataset, model, system) distribution over the
// repeated iterations.
type Fig11Cell struct {
	Dataset string
	Model   string
	System  string
	AUCs    []float64 // successful iterations only
	Fails   int
	// Cost/runtime aggregates reused by Figure 12.
	TotalTokens      int
	ErrTokens        int
	TotalGenSeconds  float64
	TotalExecSeconds float64
}

// Mean returns the mean AUC of successful iterations.
func (c *Fig11Cell) Mean() float64 {
	if len(c.AUCs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range c.AUCs {
		s += v
	}
	return s / float64(len(c.AUCs))
}

// MinMax returns the observed AUC range.
func (c *Fig11Cell) MinMax() (float64, float64) {
	if len(c.AUCs) == 0 {
		return 0, 0
	}
	sorted := append([]float64(nil), c.AUCs...)
	sort.Float64s(sorted)
	return sorted[0], sorted[len(sorted)-1]
}

// Fig11Result holds the 10-iteration quality and cost study (Figures 11
// and 12 share the same runs).
type Fig11Result struct {
	Cells []*Fig11Cell
}

// Get returns the cell for a (dataset, model, system) triple, or nil.
func (r *Fig11Result) Get(dataset, model, system string) *Fig11Cell {
	for _, c := range r.Cells {
		if c.Dataset == dataset && c.Model == model && c.System == system {
			return c
		}
	}
	return nil
}

// RunFig11TenIterations reproduces Figures 11 and 12: AUC distributions,
// token costs, and runtimes over repeated pipeline generations for CatDB,
// CatDB Chain, CAAFE (both backends), AIDE, and AutoGen across the three
// LLMs.
func RunFig11TenIterations(cfg Config) (*Fig11Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig11Result{}
	datasets := iterDatasets
	models := llm.ModelNames()
	if cfg.Fast {
		datasets = []string{"Diabetes"}
		models = models[:2]
	}
	cell := func(dataset, model, system string) *Fig11Cell {
		if c := res.Get(dataset, model, system); c != nil {
			return c
		}
		c := &Fig11Cell{Dataset: dataset, Model: model, System: system}
		res.Cells = append(res.Cells, c)
		return c
	}
	// Each worker cell computes one (dataset, model, iteration, system)
	// outcome and returns it as a contribution; contributions are folded
	// into the Fig11Cell aggregates strictly in the serial loop order, so
	// AUC lists and token sums are identical at any worker count.
	type contrib struct {
		system string
		failed bool
		auc    float64
		tokens, errTokens int
		genSec, execSec   float64
	}
	type job func(sp *obs.Span) contrib
	var jobs []job
	for _, name := range datasets {
		ds, err := data.Load(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		tb, err := ds.Consolidate()
		if err != nil {
			return nil, err
		}
		tr, te := tb.StratifiedSplit(ds.Target, 0.7, cfg.Seed)
		for _, model := range models {
			model := model
			for iter := 0; iter < cfg.Iterations; iter++ {
				seed := cfg.Seed + int64(iter)*101

				// CatDB and CatDB Chain.
				for _, v := range []struct {
					label  string
					chains int
				}{{"CatDB", 1}, {"CatDB Chain", 2}} {
					v := v
					jobs = append(jobs, func(sp *obs.Span) contrib {
						c := contrib{system: v.label}
						client, cerr := llm.New(model, seed+int64(v.chains))
						if cerr != nil {
							c.failed = true
							return c
						}
						r := core.NewRunner(client)
						r.ProfileCache = cfg.ProfileCache
						cfg.instrument(r, sp)
						out, rerr := r.Run(ds, core.Options{Seed: seed, Chains: v.chains, DAG: cfg.DAG, ExecShardRows: cfg.ShardRows})
						if rerr != nil {
							c.failed = true
							return c
						}
						c.auc = out.Exec.TestAUC
						c.tokens = out.Cost.Total()
						c.errTokens = out.Cost.ErrorTokens()
						c.genSec = (out.ProfileTime + out.RefineTime + out.GenTime).Seconds()
						c.execSec = out.ExecTime.Seconds()
						return c
					})
				}

				// CAAFE (LLM-independent backend; run once per model for
				// token parity with the paper's setup).
				for _, backend := range []baselines.CAAFEBackend{baselines.CAAFETabPFN, baselines.CAAFEForest} {
					backend := backend
					jobs = append(jobs, func(*obs.Span) contrib {
						c := contrib{system: "CAAFE " + string(backend)}
						o := baselines.RunCAAFE(tr, te, ds.Target, ds.Task, baselines.CAAFEOptions{
							Backend: backend, Seed: seed, Rounds: 2, MaxPairs: 40,
						})
						if o.Failed {
							c.failed = true
							return c
						}
						c.auc = o.TestAUC
						c.tokens = o.Tokens
						c.genSec = o.GenTime.Seconds()
						c.execSec = o.ExecTime.Seconds()
						return c
					})
				}

				// AIDE and AutoGen.
				jobs = append(jobs, func(*obs.Span) contrib {
					c := contrib{system: "AIDE"}
					clientA, _ := llm.New(model, seed+31)
					o := baselines.RunAIDE(ds, clientA, baselines.LLMBaselineOptions{Seed: seed})
					if o.Failed {
						c.failed = true
						return c
					}
					c.auc, c.tokens, c.execSec = o.TestAUC, o.Tokens, o.ExecTime.Seconds()
					return c
				})
				jobs = append(jobs, func(*obs.Span) contrib {
					c := contrib{system: "AutoGen"}
					clientG, _ := llm.New(model, seed+37)
					o := baselines.RunAutoGen(ds, clientG, baselines.LLMBaselineOptions{Seed: seed})
					if o.Failed {
						c.failed = true
						return c
					}
					c.auc, c.tokens, c.execSec = o.TestAUC, o.Tokens, o.ExecTime.Seconds()
					return c
				})
			}
		}
	}
	// jobs[k] belongs to dataset jobOwner[k]: reconstruct the (dataset,
	// model) of each job from its position so the merge can address the
	// right aggregate without threading labels through every closure.
	jobsPerIter := 6 // CatDB, Chain, CAAFE x2, AIDE, AutoGen
	jobsPerModel := cfg.Iterations * jobsPerIter
	jobsPerDataset := len(models) * jobsPerModel
	contribs, err := mapCells(cfg, "fig1112", len(jobs), func(k int, sp *obs.Span) (contrib, error) { return jobs[k](sp), nil })
	if err != nil {
		return nil, err
	}
	for k, c := range contribs {
		name := datasets[k/jobsPerDataset]
		model := models[(k%jobsPerDataset)/jobsPerModel]
		agg := cell(name, model, c.system)
		if c.failed {
			agg.Fails++
			continue
		}
		agg.AUCs = append(agg.AUCs, c.auc)
		agg.TotalTokens += c.tokens
		agg.ErrTokens += c.errTokens
		agg.TotalGenSeconds += c.genSec
		agg.TotalExecSeconds += c.execSec
	}

	t := &table{header: []string{"Dataset", "Model", "System", "AUC mean", "AUC min", "AUC max", "Fails", "Tokens", "ErrTokens", "Gen[s]", "Exec[s]"}}
	for _, c := range res.Cells {
		lo, hi := c.MinMax()
		t.add(c.Dataset, c.Model, c.System, f1(c.Mean()), f1(lo), f1(hi),
			fmt.Sprint(c.Fails), fmt.Sprint(c.TotalTokens), fmt.Sprint(c.ErrTokens),
			fmt.Sprintf("%.2f", c.TotalGenSeconds), fmt.Sprintf("%.2f", c.TotalExecSeconds))
	}
	t.render(cfg.Out, fmt.Sprintf("Figures 11+12: %d-iteration quality, cost, and runtime", cfg.Iterations))
	return res, nil
}
