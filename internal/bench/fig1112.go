package bench

import (
	"fmt"
	"sort"

	"catdb/internal/baselines"
	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/llm"
)

// iterDatasets are the three datasets of the 10-iteration study (§5.4).
var iterDatasets = []string{"Diabetes", "Gas-Drift", "Volkert"}

// Fig11Cell aggregates one (dataset, model, system) distribution over the
// repeated iterations.
type Fig11Cell struct {
	Dataset string
	Model   string
	System  string
	AUCs    []float64 // successful iterations only
	Fails   int
	// Cost/runtime aggregates reused by Figure 12.
	TotalTokens      int
	ErrTokens        int
	TotalGenSeconds  float64
	TotalExecSeconds float64
}

// Mean returns the mean AUC of successful iterations.
func (c *Fig11Cell) Mean() float64 {
	if len(c.AUCs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range c.AUCs {
		s += v
	}
	return s / float64(len(c.AUCs))
}

// MinMax returns the observed AUC range.
func (c *Fig11Cell) MinMax() (float64, float64) {
	if len(c.AUCs) == 0 {
		return 0, 0
	}
	sorted := append([]float64(nil), c.AUCs...)
	sort.Float64s(sorted)
	return sorted[0], sorted[len(sorted)-1]
}

// Fig11Result holds the 10-iteration quality and cost study (Figures 11
// and 12 share the same runs).
type Fig11Result struct {
	Cells []*Fig11Cell
}

// Get returns the cell for a (dataset, model, system) triple, or nil.
func (r *Fig11Result) Get(dataset, model, system string) *Fig11Cell {
	for _, c := range r.Cells {
		if c.Dataset == dataset && c.Model == model && c.System == system {
			return c
		}
	}
	return nil
}

// RunFig11TenIterations reproduces Figures 11 and 12: AUC distributions,
// token costs, and runtimes over repeated pipeline generations for CatDB,
// CatDB Chain, CAAFE (both backends), AIDE, and AutoGen across the three
// LLMs.
func RunFig11TenIterations(cfg Config) (*Fig11Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig11Result{}
	datasets := iterDatasets
	models := llm.ModelNames()
	if cfg.Fast {
		datasets = []string{"Diabetes"}
		models = models[:2]
	}
	cell := func(dataset, model, system string) *Fig11Cell {
		if c := res.Get(dataset, model, system); c != nil {
			return c
		}
		c := &Fig11Cell{Dataset: dataset, Model: model, System: system}
		res.Cells = append(res.Cells, c)
		return c
	}
	for _, name := range datasets {
		ds, err := data.Load(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		tb, err := ds.Consolidate()
		if err != nil {
			return nil, err
		}
		tr, te := tb.StratifiedSplit(ds.Target, 0.7, cfg.Seed)
		for _, model := range models {
			for iter := 0; iter < cfg.Iterations; iter++ {
				seed := cfg.Seed + int64(iter)*101

				// CatDB and CatDB Chain.
				for _, v := range []struct {
					label  string
					chains int
				}{{"CatDB", 1}, {"CatDB Chain", 2}} {
					client, cerr := llm.New(model, seed+int64(v.chains))
					if cerr != nil {
						return nil, cerr
					}
					r := core.NewRunner(client)
					c := cell(name, model, v.label)
					out, rerr := r.Run(ds, core.Options{Seed: seed, Chains: v.chains})
					if rerr != nil {
						c.Fails++
						continue
					}
					c.AUCs = append(c.AUCs, out.Exec.TestAUC)
					c.TotalTokens += out.Cost.Total()
					c.ErrTokens += out.Cost.ErrorTokens()
					c.TotalGenSeconds += (out.ProfileTime + out.RefineTime + out.GenTime).Seconds()
					c.TotalExecSeconds += out.ExecTime.Seconds()
				}

				// CAAFE (LLM-independent backend; run once per model for
				// token parity with the paper's setup).
				for _, backend := range []baselines.CAAFEBackend{baselines.CAAFETabPFN, baselines.CAAFEForest} {
					c := cell(name, model, "CAAFE "+string(backend))
					o := baselines.RunCAAFE(tr, te, ds.Target, ds.Task, baselines.CAAFEOptions{
						Backend: backend, Seed: seed, Rounds: 2, MaxPairs: 40,
					})
					if o.Failed {
						c.Fails++
						continue
					}
					c.AUCs = append(c.AUCs, o.TestAUC)
					c.TotalTokens += o.Tokens
					c.TotalGenSeconds += o.GenTime.Seconds()
					c.TotalExecSeconds += o.ExecTime.Seconds()
				}

				// AIDE and AutoGen.
				clientA, _ := llm.New(model, seed+31)
				oA := baselines.RunAIDE(ds, clientA, baselines.LLMBaselineOptions{Seed: seed})
				cA := cell(name, model, "AIDE")
				if oA.Failed {
					cA.Fails++
				} else {
					cA.AUCs = append(cA.AUCs, oA.TestAUC)
					cA.TotalTokens += oA.Tokens
					cA.TotalExecSeconds += oA.ExecTime.Seconds()
				}
				clientG, _ := llm.New(model, seed+37)
				oG := baselines.RunAutoGen(ds, clientG, baselines.LLMBaselineOptions{Seed: seed})
				cG := cell(name, model, "AutoGen")
				if oG.Failed {
					cG.Fails++
				} else {
					cG.AUCs = append(cG.AUCs, oG.TestAUC)
					cG.TotalTokens += oG.Tokens
					cG.TotalExecSeconds += oG.ExecTime.Seconds()
				}
			}
		}
	}

	t := &table{header: []string{"Dataset", "Model", "System", "AUC mean", "AUC min", "AUC max", "Fails", "Tokens", "ErrTokens", "Gen[s]", "Exec[s]"}}
	for _, c := range res.Cells {
		lo, hi := c.MinMax()
		t.add(c.Dataset, c.Model, c.System, f1(c.Mean()), f1(lo), f1(hi),
			fmt.Sprint(c.Fails), fmt.Sprint(c.TotalTokens), fmt.Sprint(c.ErrTokens),
			fmt.Sprintf("%.2f", c.TotalGenSeconds), fmt.Sprintf("%.2f", c.TotalExecSeconds))
	}
	t.render(cfg.Out, fmt.Sprintf("Figures 11+12: %d-iteration quality, cost, and runtime", cfg.Iterations))
	return res, nil
}
