package bench

import (
	"fmt"
	"time"

	"catdb/internal/baselines"
	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/obs"
)

// Fig14Row is one (dataset, corruption, ratio, system) measurement.
type Fig14Row struct {
	Dataset    string
	Corruption string // "outliers", "missing", "mixed"
	Ratio      float64
	System     string
	Score      float64
	Failed     bool
}

// Fig14Result holds the robustness study of Figure 14.
type Fig14Result struct {
	Rows []Fig14Row
}

// Get returns the score for a specific cell (NaN-free: 0 when missing).
func (r *Fig14Result) Get(dataset, corruption string, ratio float64, system string) (float64, bool) {
	for _, row := range r.Rows {
		if row.Dataset == dataset && row.Corruption == corruption &&
			row.Ratio == ratio && row.System == system && !row.Failed {
			return row.Score, true
		}
	}
	return 0, false
}

// RunFig14Robustness reproduces Figure 14: outlier, missing-value, and
// mixed corruption injected at increasing ratios into the Utility
// (regression) and Volkert (classification) analogues, comparing CatDB's
// data-centric pipelines against AutoML tools without cleaning.
func RunFig14Robustness(cfg Config) (*Fig14Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig14Result{}
	datasets := []string{"Utility", "Volkert"}
	ratios := []float64{0, 0.01, 0.02, 0.05}
	corruptions := []string{"outliers", "missing", "mixed"}
	if cfg.Fast {
		datasets = datasets[:1]
		ratios = []float64{0, 0.05}
		corruptions = corruptions[:2]
	}
	tools := []baselines.AutoMLTool{baselines.FLAML, baselines.AutoGluon, baselines.H2O}
	if cfg.Fast {
		tools = tools[:1]
	}

	// One cell per (dataset, corruption, ratio): the cell clones the base
	// dataset before injecting corruption, so concurrent cells never see
	// each other's mutations; each returns its CatDB row plus the AutoML
	// rows in the serial order.
	type cellID struct {
		base       *data.Dataset
		name       string
		corruption string
		ratio      float64
	}
	var cells []cellID
	for _, name := range datasets {
		base, err := data.Load(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		for _, corruption := range corruptions {
			for _, ratio := range ratios {
				cells = append(cells, cellID{base: base, name: name, corruption: corruption, ratio: ratio})
			}
		}
	}
	rowGroups, err := mapCells(cfg, "fig14", len(cells), func(k int, sp *obs.Span) ([]Fig14Row, error) {
		name, corruption, ratio := cells[k].name, cells[k].corruption, cells[k].ratio
		sp.SetStr("dataset", name)
		sp.SetStr("corruption", corruption)
		var rows []Fig14Row
		ds := cells[k].base.Clone()
		// Corruption targets the *training* data; test sets stay clean,
		// as in the paper's setup.
		inject := func(t *data.Table) {
			switch corruption {
			case "outliers":
				data.InjectOutliers(t, ds.Target, ratio, cfg.Seed)
				data.InjectTargetOutliers(t, ds.Target, ratio, cfg.Seed+1)
			case "missing":
				data.InjectMissing(t, ds.Target, ratio, cfg.Seed)
			default:
				data.InjectMixed(t, ds.Target, ratio, cfg.Seed)
				data.InjectTargetOutliers(t, ds.Target, ratio/2, cfg.Seed+1)
			}
		}

		// CatDB: the train split is corrupted after splitting.
		client, cerr := llm.New("gemini-1.5-pro", cfg.Seed+int64(ratio*1000))
		if cerr != nil {
			return nil, cerr
		}
		r := core.NewRunner(client)
		r.ProfileCache = cfg.ProfileCache
		cfg.instrument(r, sp)
		out, rerr := r.Run(ds, core.Options{Seed: cfg.Seed, TrainMutator: inject, DAG: cfg.DAG, ExecShardRows: cfg.ShardRows})
		row := Fig14Row{Dataset: name, Corruption: corruption, Ratio: ratio, System: "CatDB"}
		if rerr != nil {
			row.Failed = true
		} else {
			row.Score = out.Exec.Primary()
		}
		rows = append(rows, row)

		// AutoML tools without cleaning: same corrupted train split.
		tb, err := ds.Consolidate()
		if err != nil {
			return nil, err
		}
		var tr, te *data.Table
		if ds.Task.IsClassification() {
			tr, te = tb.StratifiedSplit(ds.Target, 0.7, cfg.Seed)
		} else {
			tr, te = tb.Split(0.7, cfg.Seed)
		}
		inject(tr)
		for _, tool := range tools {
			o := baselines.RunAutoML(tool, tr, te, ds.Target, ds.Task,
				baselines.AutoMLOptions{Seed: cfg.Seed, TimeBudget: pickDur(cfg.Fast, 5*time.Second, 15*time.Second)})
			rows = append(rows, Fig14Row{
				Dataset: name, Corruption: corruption, Ratio: ratio,
				System: string(tool), Score: o.Primary(), Failed: o.Failed,
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowGroups {
		res.Rows = append(res.Rows, rows...)
	}

	t := &table{header: []string{"Dataset", "Corruption", "Ratio", "System", "Score"}}
	for _, r := range res.Rows {
		v := f1(r.Score)
		if r.Failed {
			v = "FAIL"
		}
		t.add(r.Dataset, r.Corruption, fmt.Sprintf("%.0f%%", r.Ratio*100), r.System, v)
	}
	t.render(cfg.Out, "Figure 14: Robustness under Outlier/Missing/Mixed Injection")
	return res, nil
}
