package bench

import (
	"fmt"
	"time"

	"catdb/internal/data"
	"catdb/internal/obs"
	"catdb/internal/profile"
)

// Fig9Row is one dataset's profiling measurement (Figure 9a) plus its
// contribution to the type census (Figure 9b).
type Fig9Row struct {
	Dataset string
	Rows    int
	Cols    int
	Elapsed time.Duration
}

// Fig9Result holds the profiling runtimes and the feature-type census.
type Fig9Result struct {
	Rows   []Fig9Row
	Census map[profile.FeatureType]int
}

// RunFig9Profiling profiles every registered dataset, reproducing the
// offline data-profiling measurement of Figure 9(a) and the data-type
// distribution of Figure 9(b).
func RunFig9Profiling(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig9Result{Census: map[profile.FeatureType]int{}}
	names := data.Names()
	profiles, err := mapCells(cfg, "fig9", len(names), func(i int, sp *obs.Span) (*profile.Profile, error) {
		sp.SetStr("dataset", names[i])
		ds, err := data.Load(names[i], cfg.Scale)
		if err != nil {
			return nil, err
		}
		p, err := cfg.ProfileCache.Dataset(ds, profile.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("bench: profiling %s: %w", names[i], err)
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range profiles {
		res.Rows = append(res.Rows, Fig9Row{
			Dataset: names[i], Rows: p.Rows, Cols: len(p.Columns), Elapsed: p.Elapsed,
		})
	}
	for ft, n := range profile.TypeCensus(profiles) {
		res.Census[ft] += n
	}

	t := &table{header: []string{"Dataset", "Rows", "Cols", "Profiling[s]"}}
	for _, r := range res.Rows {
		t.add(r.Dataset, fmt.Sprint(r.Rows), fmt.Sprint(r.Cols), secs(r.Elapsed))
	}
	t.render(cfg.Out, "Figure 9(a): Execution Time for Data Profiling")

	t2 := &table{header: []string{"FeatureType", "Count"}}
	for _, ft := range []profile.FeatureType{
		profile.FeatureNumerical, profile.FeatureCategorical, profile.FeatureBoolean,
		profile.FeatureSentence, profile.FeatureList, profile.FeatureConstant,
		profile.FeatureID, profile.FeatureUnknown,
	} {
		if n := res.Census[ft]; n > 0 {
			t2.add(ft.String(), fmt.Sprint(n))
		}
	}
	t2.render(cfg.Out, "Figure 9(b): Data Type Distribution")
	return res, nil
}
