package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"catdb/internal/data"
	"catdb/internal/pool"
)

// IngestRow is one table size's ingest + summary measurement: cold CSV
// parse serial vs chunked-parallel, and summary build exact vs sketch.
type IngestRow struct {
	Rows          int
	Cols          int
	Bytes         int
	Serial        time.Duration
	Parallel      time.Duration
	Workers       int
	ExactSummary  time.Duration
	SketchSummary time.Duration
}

// IngestResult holds the ingest-scaling measurements.
type IngestResult struct {
	Rows []IngestRow
}

// ingestSizes picks the synthetic table sizes (paper tables reach tens of
// millions of rows; the bench covers the shape at tractable sizes).
func ingestSizes(cfg Config) []int {
	if cfg.Fast {
		return []int{20_000}
	}
	return []int{50_000, 200_000}
}

// syntheticIngestCSV renders a mixed-kind table (ints, floats, bools,
// categoricals, quoted free text with embedded commas) to CSV bytes.
func syntheticIngestCSV(rows int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	cats := [...]string{"alpha", "beta", "gamma", "delta", "epsilon"}
	var buf bytes.Buffer
	buf.WriteString("id,num1,num2,int1,cat,flag,text,score\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&buf, "%d,%.4f,%.2f,%d,%s,%t,\"item %d, cell\",%.3f\n",
			i, rng.NormFloat64()*100, rng.Float64()*1e6, rng.Intn(1000),
			cats[rng.Intn(len(cats))], rng.Intn(2) == 0, i, rng.Float64())
	}
	return buf.Bytes()
}

// RunIngestScaling measures cold CSV ingest (streaming serial vs
// chunked-parallel at Config.Ingest.Workers) and column-summary builds
// (exact sorted-copy vs mergeable sketches) over synthetic mixed-kind
// tables. Cells run serially — this experiment times wall clock, so
// concurrent cells would contaminate each other.
func RunIngestScaling(cfg Config) (*IngestResult, error) {
	cfg = cfg.withDefaults()
	workers := cfg.Ingest.Workers
	if workers <= 0 {
		workers = pool.DefaultWorkers()
	}
	res := &IngestResult{}
	for _, rows := range ingestSizes(cfg) {
		raw := syntheticIngestCSV(rows, cfg.Seed)
		row := IngestRow{Rows: rows, Bytes: len(raw), Workers: workers}

		start := time.Now()
		serialT, err := data.ReadCSVOptions(bytes.NewReader(raw), "ingest-serial",
			data.IngestOptions{Workers: 1, ChunkBytes: cfg.Ingest.ChunkBytes})
		if err != nil {
			return nil, fmt.Errorf("bench: ingest serial: %w", err)
		}
		row.Serial = time.Since(start)

		start = time.Now()
		t, err := data.ReadCSVOptions(bytes.NewReader(raw), "ingest-parallel",
			data.IngestOptions{Workers: workers, ChunkBytes: cfg.Ingest.ChunkBytes})
		if err != nil {
			return nil, fmt.Errorf("bench: ingest parallel: %w", err)
		}
		row.Parallel = time.Since(start)
		row.Cols = t.NumCols()
		_ = serialT

		start = time.Now()
		for _, c := range t.Cols {
			c.SummaryWith(data.SummaryExact)
		}
		row.ExactSummary = time.Since(start)

		start = time.Now()
		for _, c := range t.Cols {
			c.SummaryWith(data.SummarySketch)
		}
		row.SketchSummary = time.Since(start)

		res.Rows = append(res.Rows, row)
	}

	tb := &table{header: []string{"Rows", "Cols", "MiB", "Serial[ms]", fmt.Sprintf("Parallel[ms] (w=%d)", workers), "ExactSum[ms]", "SketchSum[ms]"}}
	for _, r := range res.Rows {
		tb.add(fmt.Sprint(r.Rows), fmt.Sprint(r.Cols),
			fmt.Sprintf("%.1f", float64(r.Bytes)/(1<<20)),
			millis(r.Serial), millis(r.Parallel),
			millis(r.ExactSummary), millis(r.SketchSummary))
	}
	tb.render(cfg.Out, "Ingest scaling: chunked CSV parse and summary backends")
	return res, nil
}

func millis(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}
