package bench

import (
	"fmt"

	"catdb/internal/core"
	"catdb/internal/obs/ledger"
)

// ledgerRecord adapts a completed core.Result into the persistent run
// ledger's schema. The config hash covers the full run identity —
// dataset, model, variant, harness scale, and the run's own options
// (seed, metadata combo, top-K, chains, executor knobs) — so
// `benchjson -compare` only ever diffs runs of the same configuration;
// e.g. Figure 10's eleven metadata combos on one dataset all hash
// differently even though their Results look alike.
func (c Config) ledgerRecord(opts core.Options, res *core.Result) ledger.Record {
	rec := ledger.Record{
		ConfigHash: ledger.ConfigHash(
			res.Dataset, res.Model, res.Variant,
			fmt.Sprint(c.Scale),
			fmt.Sprint(opts.Seed), fmt.Sprint(opts.Combo), fmt.Sprint(opts.MetadataOnly),
			fmt.Sprint(opts.TopK), fmt.Sprint(opts.Chains), fmt.Sprint(opts.NoRefine),
			fmt.Sprint(opts.DAG), fmt.Sprint(opts.ExecShardRows),
		),
		Dataset: res.Dataset,
		Model:   res.Model,
		Variant: res.Variant,
		Seed:    opts.Seed,
		StageSeconds: map[string]float64{
			"profile":  res.ProfileTime.Seconds(),
			"refine":   res.RefineTime.Seconds(),
			"generate": res.GenTime.Seconds(),
			"exec":     res.ExecTime.Seconds(),
		},
		Tokens: map[string]int{
			"prompt":           res.Cost.PromptTokens,
			"completion":       res.Cost.CompletionTokens,
			"error_prompt":     res.Cost.ErrorPromptTokens,
			"error_completion": res.Cost.ErrorCompletionTokens,
		},
		LLMCalls:    res.Cost.LLMCalls,
		Attempts:    res.Cost.Attempts,
		KBFixes:     res.Cost.KBFixes,
		LLMFixes:    res.Cost.LLMFixes,
		Handcrafted: res.Handcrafted,
	}
	if x := res.Exec; x != nil {
		rec.Metrics = map[string]float64{}
		if x.Metric == "r2" {
			rec.Metrics["test_r2"] = x.TestR2
			rec.Metrics["test_rmse"] = x.TestRMSE
		} else {
			rec.Metrics["test_acc"] = x.TestAcc
			rec.Metrics["test_auc"] = x.TestAUC
		}
	}
	return rec
}
