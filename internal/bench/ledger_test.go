package bench

import (
	"path/filepath"
	"reflect"
	"testing"

	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/obs/ledger"
)

// TestLedgerHookAppendsRuns pins the instrument → OnResult → ledger
// wiring: a run through an instrumented runner lands in the ledger file
// with the run's actual costs and metrics, the config hash is stable
// across identical runs, and attaching the ledger never changes the
// run's result.
func TestLedgerHookAppendsRuns(t *testing.T) {
	ds, err := data.Load("Wifi", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "runs.jsonl")

	run := func(withLedger bool) *core.Result {
		var cfg Config
		cfg.Seed = 7
		if withLedger {
			w, werr := ledger.OpenWriter(path)
			if werr != nil {
				t.Fatal(werr)
			}
			defer func() {
				if cerr := w.Close(); cerr != nil {
					t.Fatal(cerr)
				}
			}()
			cfg.Ledger = w
		}
		client, cerr := llm.New("gemini-1.5-pro", 7)
		if cerr != nil {
			t.Fatal(cerr)
		}
		r := core.NewRunner(client)
		cfg.instrument(r, nil)
		res, rerr := r.Run(ds, core.Options{Seed: 7, NoRefine: true})
		if rerr != nil {
			t.Fatal(rerr)
		}
		res.ProfileTime, res.RefineTime, res.GenTime, res.ExecTime = 0, 0, 0, 0
		return res
	}

	plain := run(false)
	logged := run(true)
	run(true) // second identical run: forms a comparison group of two
	if !reflect.DeepEqual(plain, logged) {
		t.Fatalf("ledger-attached run diverged:\nplain:  %+v\nlogged: %+v", plain, logged)
	}

	records, err := ledger.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("ledger has %d records, want 2", len(records))
	}
	rec := records[0]
	if rec.Dataset != "Wifi" || rec.Model != "gemini-1.5-pro" || rec.Seed != 7 {
		t.Errorf("record identity wrong: %+v", rec)
	}
	if rec.TotalTokens() != logged.Cost.Total() || rec.LLMCalls != logged.Cost.LLMCalls {
		t.Errorf("record costs %d tokens/%d calls, run had %d/%d",
			rec.TotalTokens(), rec.LLMCalls, logged.Cost.Total(), logged.Cost.LLMCalls)
	}
	if len(rec.StageSeconds) != 4 {
		t.Errorf("stage seconds = %+v, want the 4 stages", rec.StageSeconds)
	}
	if rec.Metrics["test_acc"] != logged.Exec.TestAcc {
		t.Errorf("recorded test_acc %v, run scored %v", rec.Metrics["test_acc"], logged.Exec.TestAcc)
	}
	// Identical configurations hash identically, so the two appends form
	// one comparison group — and identical runs compare clean.
	if rec.ConfigHash == "" || rec.ConfigHash != records[1].ConfigHash {
		t.Errorf("config hash unstable: %q vs %q", rec.ConfigHash, records[1].ConfigHash)
	}
	regs, compared := ledger.Compare(records, 0.10)
	if compared != 1 {
		t.Errorf("compared = %d, want 1", compared)
	}
	// Stage wall times jitter between identical runs; only token counts
	// are exactly reproducible, and those must not flag.
	for _, r := range regs {
		if r.Metric == "tokens/total" {
			t.Errorf("identical runs flagged a token regression: %+v", r)
		}
	}
}
