package bench

import (
	"io"
	"testing"

	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/obs"
)

// BenchmarkObsCellDisabled / BenchmarkObsCellEnabled measure the
// observability tax on a real experiment: the Table 4 refinement phase
// (three datasets through data loading, LLM-driven catalog refinement,
// and the cell fan-out) run bare versus with tracer, metrics registry,
// and progress sink all attached. The enabled-vs-disabled gap is the
// overhead budget tracked in BENCH_obs.json (target: under 3%).
func BenchmarkObsCellDisabled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunTable4Refinement(Config{Fast: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsCellEnabled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunTable4Refinement(Config{
			Fast: true, Seed: 1,
			Tracer: obs.New(), Metrics: obs.NewRegistry(), Progress: io.Discard,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsRunDisabled / BenchmarkObsRunEnabled isolate the per-run
// cost inside core.Runner (spans on every stage and debug attempt, LLM
// middleware, stage histograms) without the harness around it.
func BenchmarkObsRunDisabled(b *testing.B) {
	benchmarkObsRun(b, false)
}

func BenchmarkObsRunEnabled(b *testing.B) {
	benchmarkObsRun(b, true)
}

func benchmarkObsRun(b *testing.B, traced bool) {
	ds, err := data.Load("Wifi", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client, cerr := llm.New("gemini-1.5-pro", 1)
		if cerr != nil {
			b.Fatal(cerr)
		}
		r := core.NewRunner(client)
		if traced {
			r.Tracer = obs.New()
			r.Metrics = obs.NewRegistry()
		}
		if _, err := r.Run(ds, core.Options{Seed: 1, NoRefine: true}); err != nil {
			b.Fatal(err)
		}
	}
}
