package bench

import (
	"io"
	"testing"
	"time"

	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/obs"
	"catdb/internal/obs/opsserver"
)

// BenchmarkObsCellDisabled / BenchmarkObsCellEnabled measure the
// observability tax on a real experiment: the Table 4 refinement phase
// (three datasets through data loading, LLM-driven catalog refinement,
// and the cell fan-out) run bare versus with tracer, metrics registry,
// and progress sink all attached. The enabled-vs-disabled gap is the
// overhead budget tracked in BENCH_obs.json (target: under 3%).
func BenchmarkObsCellDisabled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunTable4Refinement(Config{Fast: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsCellEnabled(b *testing.B) {
	// One tracer/registry for the whole loop, matching real usage where a
	// single observed process runs many experiments (and keeping this pair
	// comparable with the server benchmark below).
	cfg := Config{
		Fast: true, Seed: 1,
		Tracer: obs.New(), Metrics: obs.NewRegistry(), Progress: io.Discard,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunTable4Refinement(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsServerEnabledUnscraped measures the same observed
// experiment with the full ops plane attached but idle — debug HTTP
// server listening, runtime collector sampling — and nobody scraping.
// The plane starts once outside the timed loop (as in real usage, where
// one -listen server watches a whole experiment batch), so the gap
// against BenchmarkObsCellEnabled is the steady-state cost of merely
// having it on (target: under 1%, tracked in BENCH_obs.json): the
// server only does work per request, so an unscraped listener is a
// parked goroutine and the collector a few atomic stores per second.
func BenchmarkObsServerEnabledUnscraped(b *testing.B) {
	cfg := Config{
		Fast: true, Seed: 1,
		Tracer: obs.New(), Metrics: obs.NewRegistry(), Progress: io.Discard,
	}
	srv, err := opsserver.Start("127.0.0.1:0", opsserver.Options{Registry: cfg.Metrics, Tracer: cfg.Tracer})
	if err != nil {
		b.Fatal(err)
	}
	col := opsserver.NewCollector(cfg.Metrics)
	col.Start(100 * time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunTable4Refinement(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	col.Stop()
	_ = srv.Close()
}

// BenchmarkObsRunDisabled / BenchmarkObsRunEnabled isolate the per-run
// cost inside core.Runner (spans on every stage and debug attempt, LLM
// middleware, stage histograms) without the harness around it.
func BenchmarkObsRunDisabled(b *testing.B) {
	benchmarkObsRun(b, false)
}

func BenchmarkObsRunEnabled(b *testing.B) {
	benchmarkObsRun(b, true)
}

func benchmarkObsRun(b *testing.B, traced bool) {
	ds, err := data.Load("Wifi", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client, cerr := llm.New("gemini-1.5-pro", 1)
		if cerr != nil {
			b.Fatal(cerr)
		}
		r := core.NewRunner(client)
		if traced {
			r.Tracer = obs.New()
			r.Metrics = obs.NewRegistry()
		}
		if _, err := r.Run(ds, core.Options{Seed: 1, NoRefine: true}); err != nil {
			b.Fatal(err)
		}
	}
}
