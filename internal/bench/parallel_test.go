package bench

import (
	"bytes"
	"testing"
)

// The parallel harness must be invisible in the results: for a fixed seed,
// any worker count produces exactly the rows the serial loop produced, in
// the same order. These tests pin that guarantee on experiments whose
// rendered reports are time-free (fig10, table2, ablation) and structurally
// on fig11, whose report includes wall-clock columns.

func renderedAt(t *testing.T, workers int, run func(Config) error) string {
	t.Helper()
	var buf bytes.Buffer
	cfg := fastCfg()
	cfg.Workers = workers
	cfg.Out = &buf
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestParallelMatchesSerialRendered(t *testing.T) {
	experiments := []struct {
		name string
		run  func(Config) error
	}{
		{"fig10", func(c Config) error { _, err := RunFig10MetadataImpact(c); return err }},
		{"table2", func(c Config) error { _, err := RunTable2ErrorTraces(c); return err }},
		{"ablation", func(c Config) error { _, err := RunAblation(c); return err }},
	}
	for _, e := range experiments {
		e := e
		t.Run(e.name, func(t *testing.T) {
			serial := renderedAt(t, 1, e.run)
			parallel := renderedAt(t, 8, e.run)
			if serial != parallel {
				t.Fatalf("%s: workers=8 output differs from workers=1\n--- serial ---\n%s\n--- parallel ---\n%s",
					e.name, serial, parallel)
			}
		})
	}
}

func TestParallelMatchesSerialFig11(t *testing.T) {
	runAt := func(workers int) *Fig11Result {
		var buf bytes.Buffer
		cfg := fastCfg()
		cfg.Workers = workers
		cfg.Out = &buf
		res, err := RunFig11TenIterations(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := runAt(1)
	parallel := runAt(8)
	if len(serial.Cells) != len(parallel.Cells) {
		t.Fatalf("cell count: %d vs %d", len(serial.Cells), len(parallel.Cells))
	}
	// Cells appear in first-contribution order, which the ordered merge
	// makes identical; every time-free field must match exactly, including
	// the per-iteration AUC sequences.
	for i, s := range serial.Cells {
		p := parallel.Cells[i]
		if s.Dataset != p.Dataset || s.Model != p.Model || s.System != p.System {
			t.Fatalf("cell %d identity: %s/%s/%s vs %s/%s/%s",
				i, s.Dataset, s.Model, s.System, p.Dataset, p.Model, p.System)
		}
		if s.Fails != p.Fails || s.TotalTokens != p.TotalTokens || s.ErrTokens != p.ErrTokens {
			t.Fatalf("cell %s/%s/%s aggregates differ: %+v vs %+v", s.Dataset, s.Model, s.System, s, p)
		}
		if len(s.AUCs) != len(p.AUCs) {
			t.Fatalf("cell %s/%s/%s AUC count: %d vs %d", s.Dataset, s.Model, s.System, len(s.AUCs), len(p.AUCs))
		}
		for j := range s.AUCs {
			if s.AUCs[j] != p.AUCs[j] {
				t.Fatalf("cell %s/%s/%s AUC[%d]: %g vs %g", s.Dataset, s.Model, s.System, j, s.AUCs[j], p.AUCs[j])
			}
		}
	}
}
