package bench

import (
	"fmt"
	"sort"

	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/errkb"
	"catdb/internal/llm"
	"catdb/internal/obs"
)

// Table2Result holds the error-trace dataset statistics (Table 2) and the
// error-type histogram (Figure 8).
type Table2Result struct {
	Store         *errkb.TraceStore
	Distributions []errkb.Distribution
	Histogram     map[string]int
}

// RunTable2ErrorTraces reproduces the error-trace dataset of §4.2: many
// pipeline generations across datasets and models, every encountered
// error classified and recorded, then summarized as the per-model KB/SE/RE
// distribution (Table 2) and the 23-type histogram (Figure 8).
func RunTable2ErrorTraces(cfg Config) (*Table2Result, error) {
	cfg = cfg.withDefaults()
	store := errkb.NewTraceStore()
	datasets := []string{"Diabetes", "CMC", "Utility", "Etailing"}
	models := []string{"llama3.1-70b", "gemini-1.5-pro"}
	runs := cfg.Iterations
	if cfg.Fast {
		datasets = datasets[:2]
		runs = 3
	}
	// One cell per (model, dataset, iteration); every cell gets its own
	// client, runner, and trace store (the shared TraceStore would make
	// trace order scheduling-dependent), and the per-cell stores are
	// merged back in the serial loop order.
	type cell struct {
		model, dataset string
		ds             *data.Dataset
		iter           int
	}
	var cells []cell
	for _, model := range models {
		for _, name := range datasets {
			ds, err := data.Load(name, cfg.Scale)
			if err != nil {
				return nil, err
			}
			for i := 0; i < runs; i++ {
				cells = append(cells, cell{model: model, dataset: name, ds: ds, iter: i})
			}
		}
	}
	stores, err := mapCells(cfg, "table2", len(cells), func(k int, sp *obs.Span) (*errkb.TraceStore, error) {
		c := cells[k]
		sp.SetStr("dataset", c.dataset)
		sp.SetStr("model", c.model)
		client, cerr := llm.New(c.model, cfg.Seed+int64(c.iter)*977)
		if cerr != nil {
			return nil, cerr
		}
		r := core.NewRunner(client)
		r.ProfileCache = cfg.ProfileCache
		cfg.instrument(r, sp)
		r.Traces = errkb.NewTraceStore()
		// NoRefine keeps the runs cheap; refinement does not change the
		// generation-error profile.
		if _, err := r.Run(c.ds, core.Options{Seed: cfg.Seed + int64(c.iter), NoRefine: true, DAG: cfg.DAG, ExecShardRows: cfg.ShardRows}); err != nil {
			return nil, err
		}
		return r.Traces, nil
	})
	if err != nil {
		return nil, err
	}
	for _, s := range stores {
		store.Traces = append(store.Traces, s.Traces...)
	}
	res := &Table2Result{
		Store:         store,
		Distributions: store.DistributionByModel(),
		Histogram:     store.TypeHistogram(),
	}

	t := &table{header: []string{"LLM", "Total Errors", "KB [%]", "SE [%]", "RE [%]"}}
	for _, d := range res.Distributions {
		t.add(d.Model, fmt.Sprint(d.TotalRequests),
			fmt.Sprintf("%.3f", d.KBPct), fmt.Sprintf("%.3f", d.SEPct), fmt.Sprintf("%.3f", d.REPct))
	}
	t.render(cfg.Out, "Table 2: Error Distributions of Error Trace Dataset")

	t2 := &table{header: []string{"ErrorType", "Count"}}
	types := make([]string, 0, len(res.Histogram))
	for typ := range res.Histogram {
		types = append(types, typ)
	}
	sort.Slice(types, func(i, j int) bool {
		if res.Histogram[types[i]] != res.Histogram[types[j]] {
			return res.Histogram[types[i]] > res.Histogram[types[j]]
		}
		return types[i] < types[j]
	})
	for _, typ := range types {
		t2.add(typ, fmt.Sprint(res.Histogram[typ]))
	}
	t2.render(cfg.Out, "Figure 8: Ratio and Distribution of Errors")
	return res, nil
}
