package bench

import (
	"fmt"
	"time"

	"catdb/internal/baselines"
	"catdb/internal/catalog"
	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/obs"
)

// cleaningDatasets are the six datasets of the §5.3 catalog-refinement
// study (Tables 4-6).
var cleaningDatasets = []string{"EU-IT", "Wifi", "Etailing", "Survey", "Utility", "Yelp"}

// Table4Row is one refined column's distinct-count reduction.
type Table4Row struct {
	Dataset          string
	Column           string
	Kind             catalog.UpdateKind
	OriginalDistinct int
	RefinedDistinct  int
}

// Table4Result holds the refinement bookkeeping of Table 4.
type Table4Result struct {
	Rows []Table4Row
}

// RunTable4Refinement reproduces Table 4: per-column original vs refined
// distinct-value counts for the six cleaning datasets (LLM = Gemini-1.5,
// as in the paper).
func RunTable4Refinement(cfg Config) (*Table4Result, error) {
	cfg = cfg.withDefaults()
	res := &Table4Result{}
	datasets := cleaningDatasets
	if cfg.Fast {
		datasets = datasets[:3]
	}
	// One cell per dataset; refinement rows come back in dataset order.
	rowGroups, err := mapCells(cfg, "table4", len(datasets), func(i int, sp *obs.Span) ([]Table4Row, error) {
		name := datasets[i]
		sp.SetStr("dataset", name)
		ds, err := data.Load(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		client, err := llm.New("gemini-1.5-pro", cfg.Seed)
		if err != nil {
			return nil, err
		}
		ref, err := catalog.RefineDataset(ds, client, catalog.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("bench: refine %s: %w", name, err)
		}
		var rows []Table4Row
		for _, up := range ref.Updates {
			rows = append(rows, Table4Row{
				Dataset: name, Column: up.Column, Kind: up.Kind,
				OriginalDistinct: up.OriginalDistinct, RefinedDistinct: up.RefinedDistinct,
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowGroups {
		res.Rows = append(res.Rows, rows...)
	}
	t := &table{header: []string{"Dataset", "Column", "Refinement", "Original", "CatDB"}}
	for _, r := range res.Rows {
		t.add(r.Dataset, r.Column, string(r.Kind), fmt.Sprint(r.OriginalDistinct), fmt.Sprint(r.RefinedDistinct))
	}
	t.render(cfg.Out, "Table 4: Catalog Refinement and Data Cleaning (distinct items)")
	return res, nil
}

// Table5Row is one (dataset, system) train/test accuracy pair.
type Table5Row struct {
	Dataset  string
	System   string
	TrainAcc float64
	TestAcc  float64
	Failed   bool
	Reason   string
	Runtime  time.Duration // reused by Table 6
	Steps    []string      // cleaning steps for workflow systems
}

// Table5Result holds the cleaning accuracy comparison (Tables 5 and 6
// share the same runs).
type Table5Result struct {
	Rows []Table5Row
}

// Get returns the row for a dataset/system pair, or nil.
func (r *Table5Result) Get(dataset, system string) *Table5Row {
	for i := range r.Rows {
		if r.Rows[i].Dataset == dataset && r.Rows[i].System == system {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunTable5Cleaning reproduces Tables 5 and 6: train/test accuracy and
// runtimes for CatDB on original vs refined data against CAAFE, AIDE,
// AutoGen, and cleaning+AutoML workflows on the six cleaning datasets
// (LLM = Gemini-1.5).
func RunTable5Cleaning(cfg Config) (*Table5Result, error) {
	cfg = cfg.withDefaults()
	res := &Table5Result{}
	datasets := cleaningDatasets
	if cfg.Fast {
		datasets = []string{"EU-IT", "Wifi", "Etailing"}
	}
	// One closure per (dataset, system) cell, built in the paper's row
	// order. The dataset and its split are loaded once per dataset and
	// shared read-only across the dataset's cells (every system clones
	// before mutating).
	var cells []func(sp *obs.Span) (Table5Row, error)
	for _, name := range datasets {
		name := name
		ds, err := data.Load(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		tb, err := ds.Consolidate()
		if err != nil {
			return nil, err
		}
		var tr, te *data.Table
		if ds.Task.IsClassification() {
			tr, te = tb.StratifiedSplit(ds.Target, 0.7, cfg.Seed)
		} else {
			tr, te = tb.Split(0.7, cfg.Seed)
		}

		// CatDB original vs refined.
		for _, variant := range []struct {
			label    string
			noRefine bool
		}{{"CatDB Original", true}, {"CatDB Refined", false}} {
			variant := variant
			cells = append(cells, func(sp *obs.Span) (Table5Row, error) {
				client, err := llm.New("gemini-1.5-pro", cfg.Seed+7)
				if err != nil {
					return Table5Row{}, err
				}
				r := core.NewRunner(client)
				r.ProfileCache = cfg.ProfileCache
				cfg.instrument(r, sp)
				start := time.Now()
				out, rerr := r.Run(ds, core.Options{Seed: cfg.Seed, NoRefine: variant.noRefine, DAG: cfg.DAG, ExecShardRows: cfg.ShardRows})
				row := Table5Row{Dataset: name, System: variant.label, Runtime: time.Since(start)}
				if rerr != nil {
					row.Failed, row.Reason = true, rerr.Error()
				} else {
					row.TrainAcc = trainScore(out)
					row.TestAcc = testScore(out)
					row.Runtime = out.ExecTime // Table 6 reports pipeline execution time
				}
				return row, nil
			})
		}

		// CAAFE (both backends).
		for _, backend := range []baselines.CAAFEBackend{baselines.CAAFETabPFN, baselines.CAAFEForest} {
			backend := backend
			cells = append(cells, func(*obs.Span) (Table5Row, error) {
				o := baselines.RunCAAFE(tr, te, ds.Target, ds.Task, baselines.CAAFEOptions{
					Backend: backend, Seed: cfg.Seed, Rounds: pickInt(cfg.Fast, 2, 4),
				})
				return toTable5Row(name, o), nil
			})
		}

		// AIDE and AutoGen.
		cells = append(cells, func(*obs.Span) (Table5Row, error) {
			client, _ := llm.New("gemini-1.5-pro", cfg.Seed+13)
			return toTable5Row(name, baselines.RunAIDE(ds, client, baselines.LLMBaselineOptions{Seed: cfg.Seed})), nil
		})
		cells = append(cells, func(*obs.Span) (Table5Row, error) {
			client, _ := llm.New("gemini-1.5-pro", cfg.Seed+17)
			return toTable5Row(name, baselines.RunAutoGen(ds, client, baselines.LLMBaselineOptions{Seed: cfg.Seed})), nil
		})

		// Cleaning + AutoML workflows.
		tools := []baselines.AutoMLTool{baselines.H2O, baselines.FLAML, baselines.AutoGluon}
		if cfg.Fast {
			tools = tools[:1]
		}
		for _, tool := range tools {
			tool := tool
			cells = append(cells, func(*obs.Span) (Table5Row, error) {
				o, steps := baselines.RunCleaningWorkflow(baselines.CleanL2C, tool, tr, te, ds.Target, ds.Task,
					baselines.AutoMLOptions{Seed: cfg.Seed, TimeBudget: pickDur(cfg.Fast, 5*time.Second, 20*time.Second)})
				row := toTable5Row(name, o)
				row.Steps = steps
				return row, nil
			})
		}
	}
	rows, err := mapCells(cfg, "table56", len(cells), func(i int, sp *obs.Span) (Table5Row, error) { return cells[i](sp) })
	if err != nil {
		return nil, err
	}
	res.Rows = rows

	t := &table{header: []string{"Dataset", "System", "Train", "Test", "Runtime[s]"}}
	for _, r := range res.Rows {
		t.add(r.Dataset, r.System,
			orNA(r.Failed, r.Reason, f1(r.TrainAcc)),
			orNA(r.Failed, r.Reason, f1(r.TestAcc)),
			secs(r.Runtime))
	}
	t.render(cfg.Out, "Table 5/6: Cleaning Accuracy and Runtime (LLM = Gemini-1.5)")
	return res, nil
}

func toTable5Row(dataset string, o baselines.Outcome) Table5Row {
	row := Table5Row{Dataset: dataset, System: o.System, Failed: o.Failed, Reason: o.Reason, Runtime: o.Total()}
	if !o.Failed {
		if o.Metric == "r2" {
			row.TrainAcc, row.TestAcc = o.TrainR2, o.TestR2
		} else {
			row.TrainAcc, row.TestAcc = o.TrainAcc, o.TestAcc
		}
	}
	return row
}

func trainScore(out *core.Result) float64 {
	if out.Exec.Metric == "r2" {
		return out.Exec.TrainR2
	}
	return out.Exec.TrainAcc
}

func testScore(out *core.Result) float64 {
	if out.Exec.Metric == "r2" {
		return out.Exec.TestR2
	}
	return out.Exec.TestAcc
}

func pickInt(cond bool, a, b int) int {
	if cond {
		return a
	}
	return b
}

func pickDur(cond bool, a, b time.Duration) time.Duration {
	if cond {
		return a
	}
	return b
}
