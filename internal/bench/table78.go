package bench

import (
	"fmt"
	"time"

	"catdb/internal/baselines"
	"catdb/internal/core"
	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/obs"
)

// table78Datasets are the eight datasets of the single-iteration study
// (§5.5, Tables 7 and 8).
var table78Datasets = []string{
	"Airline", "IMDB", "Accidents", "Financial",
	"CMC", "Bike-Sharing", "House-Sales", "NYC",
}

// Table7Row is one (dataset, model, system) single-iteration outcome.
type Table7Row struct {
	Dataset string
	Model   string
	System  string
	Score   float64 // test AUC or R² in [0,100]
	Failed  bool
	Reason  string
	Tokens  int
	ErrTok  int
	Total   time.Duration
}

// Table7Result holds the single-iteration sweep (Tables 7 and 8 plus the
// Figure 13 token decomposition share these runs).
type Table7Result struct {
	Rows []Table7Row
}

// Get returns the row for a (dataset, model, system) triple, or nil.
func (r *Table7Result) Get(dataset, model, system string) *Table7Row {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Dataset == dataset && row.Model == model && row.System == system {
			return row
		}
	}
	return nil
}

// RunTable7SingleIteration reproduces Table 7: one generation (with up to
// 15 error-correction attempts) per dataset/LLM/system, AutoML tools with
// a budget matched to the measured CatDB runtime.
func RunTable7SingleIteration(cfg Config) (*Table7Result, error) {
	cfg = cfg.withDefaults()
	res := &Table7Result{}
	datasets := table78Datasets
	models := llm.ModelNames()
	if cfg.Fast {
		datasets = []string{"CMC", "Bike-Sharing"}
		models = models[:1]
	}
	// Two phases: the LLM-driven systems are independent cells, but the
	// AutoML tools need the measured CatDB runtime of their dataset as a
	// time budget, so they only fan out after every LLM cell of that
	// dataset has finished.
	type prep struct {
		ds     *data.Dataset
		tr, te *data.Table
	}
	preps := make([]prep, len(datasets))
	for i, name := range datasets {
		ds, err := data.Load(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		tb, err := ds.Consolidate()
		if err != nil {
			return nil, err
		}
		var tr, te *data.Table
		if ds.Task.IsClassification() {
			tr, te = tb.StratifiedSplit(ds.Target, 0.7, cfg.Seed)
		} else {
			tr, te = tb.Split(0.7, cfg.Seed)
		}
		preps[i] = prep{ds: ds, tr: tr, te: te}
	}

	// Phase 1: LLM systems, one cell per (dataset, model, system), in the
	// paper's row order.
	var llmCells []func(sp *obs.Span) (Table7Row, error)
	for di := range preps {
		p := preps[di]
		name := datasets[di]
		for _, model := range models {
			model := model
			for _, v := range []struct {
				label  string
				chains int
			}{{"CatDB", 1}, {"CatDB Chain", 3}} {
				v := v
				llmCells = append(llmCells, func(sp *obs.Span) (Table7Row, error) {
					client, cerr := llm.New(model, cfg.Seed+int64(len(model))+int64(v.chains))
					if cerr != nil {
						return Table7Row{}, cerr
					}
					r := core.NewRunner(client)
					r.ProfileCache = cfg.ProfileCache
					cfg.instrument(r, sp)
					out, rerr := r.Run(p.ds, core.Options{Seed: cfg.Seed, Chains: v.chains, DAG: cfg.DAG, ExecShardRows: cfg.ShardRows})
					row := Table7Row{Dataset: name, Model: model, System: v.label}
					if rerr != nil {
						row.Failed, row.Reason = true, rerr.Error()
					} else {
						row.Score = out.Exec.Primary()
						row.Tokens = out.Cost.Total()
						row.ErrTok = out.Cost.ErrorTokens()
						row.Total = out.TotalTime()
					}
					return row, nil
				})
			}
			for _, backend := range []baselines.CAAFEBackend{baselines.CAAFETabPFN, baselines.CAAFEForest} {
				backend := backend
				llmCells = append(llmCells, func(*obs.Span) (Table7Row, error) {
					o := baselines.RunCAAFE(p.tr, p.te, p.ds.Target, p.ds.Task, baselines.CAAFEOptions{
						Backend: backend, Seed: cfg.Seed, Rounds: 2, MaxPairs: 40,
					})
					return outcomeToT7(name, model, o), nil
				})
			}
			llmCells = append(llmCells, func(*obs.Span) (Table7Row, error) {
				clientA, _ := llm.New(model, cfg.Seed+41)
				return outcomeToT7(name, model,
					baselines.RunAIDE(p.ds, clientA, baselines.LLMBaselineOptions{Seed: cfg.Seed})), nil
			})
			llmCells = append(llmCells, func(*obs.Span) (Table7Row, error) {
				clientG, _ := llm.New(model, cfg.Seed+43)
				return outcomeToT7(name, model,
					baselines.RunAutoGen(p.ds, clientG, baselines.LLMBaselineOptions{Seed: cfg.Seed})), nil
			})
		}
	}
	llmRows, err := mapCells(cfg, "table7-llm", len(llmCells), func(i int, sp *obs.Span) (Table7Row, error) { return llmCells[i](sp) })
	if err != nil {
		return nil, err
	}

	// Phase 2: AutoML tools (model-independent), budget = measured CatDB
	// time of the dataset.
	rowsPerDataset := len(models) * 6 // CatDB, Chain, CAAFE x2, AIDE, AutoGen
	budgets := make([]time.Duration, len(datasets))
	for di := range datasets {
		var catdbRuntime time.Duration
		for _, row := range llmRows[di*rowsPerDataset : (di+1)*rowsPerDataset] {
			if row.System == "CatDB" && !row.Failed && row.Total > catdbRuntime {
				catdbRuntime = row.Total
			}
		}
		if catdbRuntime < 5*time.Second {
			catdbRuntime = 5 * time.Second
		}
		// Fast mode is for CI: cap the wall-clock budget so slow runners
		// (race detector, loaded machines) don't inflate the AutoML phase.
		if cfg.Fast && catdbRuntime > 5*time.Second {
			catdbRuntime = 5 * time.Second
		}
		budgets[di] = catdbRuntime
	}
	tools := baselines.AutoMLTools()
	autoPerDataset := len(tools) + 1 // tools + cleaning workflow
	autoRows, err := mapCells(cfg, "table7-automl", len(datasets)*autoPerDataset, func(k int, sp *obs.Span) (Table7Row, error) {
		di, ti := k/autoPerDataset, k%autoPerDataset
		sp.SetStr("dataset", datasets[di])
		p := preps[di]
		opts := baselines.AutoMLOptions{Seed: cfg.Seed, TimeBudget: budgets[di]}
		if ti < len(tools) {
			o := baselines.RunAutoML(tools[ti], p.tr, p.te, p.ds.Target, p.ds.Task, opts)
			return outcomeToT7(datasets[di], "-", o), nil
		}
		// Cleaning + AutoML workflow (FLAML as representative).
		wo, _ := baselines.RunCleaningWorkflow(baselines.CleanL2C, baselines.FLAML, p.tr, p.te,
			p.ds.Target, p.ds.Task, opts)
		return outcomeToT7(datasets[di], "-", wo), nil
	})
	if err != nil {
		return nil, err
	}

	// Reassemble in the serial order: per dataset, the LLM rows then the
	// AutoML rows.
	for di := range datasets {
		res.Rows = append(res.Rows, llmRows[di*rowsPerDataset:(di+1)*rowsPerDataset]...)
		res.Rows = append(res.Rows, autoRows[di*autoPerDataset:(di+1)*autoPerDataset]...)
	}

	t := &table{header: []string{"Dataset", "LLM", "System", "AUC/R2", "Tokens", "ErrTokens", "Total[s]"}}
	for _, r := range res.Rows {
		t.add(r.Dataset, r.Model, r.System,
			orNA(r.Failed, r.Reason, f1(r.Score)),
			fmt.Sprint(r.Tokens), fmt.Sprint(r.ErrTok), secs(r.Total))
	}
	t.render(cfg.Out, "Table 7 (+Figure 13 tokens): Single-Iteration Performance")
	return res, nil
}

func outcomeToT7(dataset, model string, o baselines.Outcome) Table7Row {
	return Table7Row{
		Dataset: dataset, Model: model, System: o.System,
		Score: o.Primary(), Failed: o.Failed, Reason: o.Reason,
		Tokens: o.Tokens, Total: o.Total(),
	}
}

// Table8Row is one (system, model) end-to-end runtime aggregate.
type Table8Row struct {
	System string
	Model  string
	Fail   int
	AvgSec float64
	SumSec float64
}

// Table8Result holds the end-to-end runtime aggregation of Table 8,
// derived from the Table 7 sweep.
type Table8Result struct {
	Rows []Table8Row
}

// AggregateTable8 folds a Table 7 sweep into Table 8's Fail/AVG/SUM rows.
func AggregateTable8(t7 *Table7Result) *Table8Result {
	type key struct{ system, model string }
	sums := map[key]*Table8Row{}
	counts := map[key]int{}
	var order []key
	for _, r := range t7.Rows {
		if r.Model == "-" {
			continue // AutoML tools are not LLM-dependent
		}
		k := key{r.System, r.Model}
		row, ok := sums[k]
		if !ok {
			row = &Table8Row{System: r.System, Model: r.Model}
			sums[k] = row
			order = append(order, k)
		}
		if r.Failed {
			row.Fail++
			continue
		}
		counts[k]++
		row.SumSec += r.Total.Seconds()
	}
	out := &Table8Result{}
	for _, k := range order {
		row := sums[k]
		if counts[k] > 0 {
			row.AvgSec = row.SumSec / float64(counts[k])
		}
		out.Rows = append(out.Rows, *row)
	}
	return out
}

// RunTable8EndToEnd runs the Table 7 sweep and prints the Table 8 view.
func RunTable8EndToEnd(cfg Config) (*Table8Result, error) {
	cfg = cfg.withDefaults()
	t7, err := RunTable7SingleIteration(Config{
		Scale: cfg.Scale, Seed: cfg.Seed, Fast: cfg.Fast,
		Tracer: cfg.Tracer, Metrics: cfg.Metrics, Progress: cfg.Progress,
	})
	if err != nil {
		return nil, err
	}
	res := AggregateTable8(t7)
	t := &table{header: []string{"Baseline", "LLM", "Fail", "AVG[s]", "SUM[s]"}}
	for _, r := range res.Rows {
		t.add(r.System, r.Model, fmt.Sprint(r.Fail), fmt.Sprintf("%.1f", r.AvgSec), fmt.Sprintf("%.1f", r.SumSec))
	}
	t.render(cfg.Out, "Table 8: End-to-End Runtime Across LLMs")
	return res, nil
}
