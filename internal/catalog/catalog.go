// Package catalog implements the data catalog and its LLM-assisted
// refinements of §3.2: feature-type inference over string columns
// (categorical / list / sentence / composite), categorical-value
// deduplication, composite-column splitting, sentence-token extraction,
// list k-hot materialization, and the materialization of the prepared
// dataset (Figures 4 and 5). It also records the per-column refinement
// updates reported in Table 4.
package catalog

import (
	"fmt"
	"strings"
	"time"

	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/pipescript"
	"catdb/internal/profile"
)

// UpdateKind names one refinement action.
type UpdateKind string

// Refinement actions (§3.2).
const (
	UpdateDedup        UpdateKind = "dedup-categorical"
	UpdateSentence     UpdateKind = "sentence-to-categorical"
	UpdateList         UpdateKind = "list-k-hot"
	UpdateComposite    UpdateKind = "composite-split"
	UpdateDropConstant UpdateKind = "drop-constant"
)

// Update records one applied refinement: the Table 4 bookkeeping of
// original vs refined distinct counts.
type Update struct {
	Column           string
	Kind             UpdateKind
	OriginalDistinct int
	RefinedDistinct  int
	OriginalType     profile.FeatureType
	RefinedType      profile.FeatureType
	NewColumns       []string
}

// Result is the outcome of refining a dataset.
type Result struct {
	// Table is the materialized prepared dataset (single consolidated
	// table with refinements applied).
	Table *data.Table
	// Profile is the re-profiled refined table.
	Profile *profile.Profile
	// Updates lists every applied refinement in column order.
	Updates []Update
	// Elapsed is the wall time of refinement (Table 6's refined column).
	Elapsed time.Duration
}

// Options tunes refinement.
type Options struct {
	// Samples per type-inference request (the paper uses 10).
	Samples int
	// DedupBatch is the value-list batch size for dedup prompts.
	DedupBatch int
	// MaxDedupDistinct skips dedup for columns with more distinct values
	// (they are not categorical candidates).
	MaxDedupDistinct int
	Seed             int64
	// Cache, when set, memoizes the two profiling passes by table content
	// (nil falls back to direct profiling).
	Cache *profile.Cache
}

func (o Options) withDefaults() Options {
	if o.Samples <= 0 {
		o.Samples = 10
	}
	if o.DedupBatch <= 0 {
		o.DedupBatch = 200
	}
	if o.MaxDedupDistinct <= 0 {
		o.MaxDedupDistinct = 3000
	}
	return o
}

// RefineDataset consolidates a (multi-table) dataset and refines the
// result; this is CatDB's "Materializing Prepared Data" step, which joins
// multi-table datasets into a single table and applies value mappings.
func RefineDataset(ds *data.Dataset, client llm.Client, opts Options) (*Result, error) {
	t, err := ds.Consolidate()
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	return Refine(t, ds.Target, ds.Task, client, opts)
}

// Refine applies the §3.2 refinement workflow to a single table in place
// of the original dataset (the paper overwrites the input dataset).
func Refine(t *data.Table, target string, task data.Task, client llm.Client, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	start := time.Now()
	out := t.Clone()
	res := &Result{}

	prof, err := opts.Cache.Table(out, target, task, profile.Options{Samples: opts.Samples, Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}

	// Pass 1: LLM feature-type inference on string columns, then the
	// structural refinements (split / extract / k-hot).
	for _, cp := range prof.Columns {
		col := out.Col(cp.Name)
		if col == nil || cp.IsTarget || col.Kind != data.KindString {
			continue
		}
		if cp.FeatureType == profile.FeatureConstant {
			out.DropColumn(cp.Name)
			res.Updates = append(res.Updates, Update{
				Column: cp.Name, Kind: UpdateDropConstant,
				OriginalDistinct: cp.DistinctCount, RefinedDistinct: 0,
				OriginalType: cp.FeatureType, RefinedType: profile.FeatureConstant,
			})
			continue
		}
		req := llm.BuildTypeRequest(cp.Name, cp.Samples)
		resp, cerr := client.Complete(req)
		if cerr != nil {
			return nil, fmt.Errorf("catalog: type inference for %q: %w", cp.Name, cerr)
		}
		switch llm.ParseTypeResponse(resp.Text) {
		case "list":
			items := pipescript.ListItems(col, 256)
			origDistinct := col.DistinctCount()
			if err := pipescript.KHot(out, cp.Name, items); err != nil {
				return nil, fmt.Errorf("catalog: k-hot %q: %w", cp.Name, err)
			}
			var newCols []string
			for _, c := range out.Cols {
				if strings.HasPrefix(c.Name, cp.Name+"__") {
					newCols = append(newCols, c.Name)
				}
			}
			res.Updates = append(res.Updates, Update{
				Column: cp.Name, Kind: UpdateList,
				OriginalDistinct: origDistinct, RefinedDistinct: len(items),
				OriginalType: cp.FeatureType, RefinedType: profile.FeatureList,
				NewColumns: newCols,
			})
		case "composite":
			origDistinct := col.DistinctCount()
			nameA, nameB := cp.Name+"_part", cp.Name+"_code"
			if err := pipescript.SplitComposite(out, cp.Name, nameA, nameB); err != nil {
				return nil, fmt.Errorf("catalog: split %q: %w", cp.Name, err)
			}
			refined := out.Col(nameA).DistinctCount()
			if d := out.Col(nameB).DistinctCount(); d > refined {
				refined = d
			}
			res.Updates = append(res.Updates, Update{
				Column: cp.Name, Kind: UpdateComposite,
				OriginalDistinct: origDistinct, RefinedDistinct: refined,
				OriginalType: cp.FeatureType, RefinedType: profile.FeatureCategorical,
				NewColumns: []string{nameA, nameB},
			})
		case "sentence":
			origDistinct := col.DistinctCount()
			pipescript.ExtractTokens(col)
			res.Updates = append(res.Updates, Update{
				Column: cp.Name, Kind: UpdateSentence,
				OriginalDistinct: origDistinct, RefinedDistinct: col.DistinctCount(),
				OriginalType: cp.FeatureType, RefinedType: profile.FeatureCategorical,
			})
		}
	}

	// Pass 2: categorical-value deduplication via the LLM (batched), on
	// every remaining string column including a string-valued target —
	// the EU-IT pathology lives in the target labels.
	for _, col := range out.Cols {
		if col.Kind != data.KindString {
			continue
		}
		distinct := col.Distinct()
		if len(distinct) < 2 || len(distinct) > opts.MaxDedupDistinct {
			continue
		}
		mapping := map[string]string{}
		for lo := 0; lo < len(distinct); lo += opts.DedupBatch {
			hi := lo + opts.DedupBatch
			if hi > len(distinct) {
				hi = len(distinct)
			}
			req := llm.BuildDedupRequest(col.Name, distinct[lo:hi])
			resp, cerr := client.Complete(req)
			if cerr != nil {
				return nil, fmt.Errorf("catalog: dedup for %q: %w", col.Name, cerr)
			}
			for raw, canon := range llm.ParseDedupResponse(resp.Text) {
				mapping[raw] = canon
			}
		}
		before := len(distinct)
		pipescript.ApplyValueMapping(col, mapping)
		after := col.DistinctCount()
		if after < before {
			res.Updates = append(res.Updates, Update{
				Column: col.Name, Kind: UpdateDedup,
				OriginalDistinct: before, RefinedDistinct: after,
				OriginalType: profile.FeatureCategorical, RefinedType: profile.FeatureCategorical,
			})
		}
	}

	refProf, err := opts.Cache.Table(out, target, task, profile.Options{Samples: opts.Samples, Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("catalog: re-profile: %w", err)
	}
	res.Table = out
	res.Profile = refProf
	res.Elapsed = time.Since(start)
	return res, nil
}

// UpdateFor returns the refinement update recorded for a column, or nil.
func (r *Result) UpdateFor(column string) *Update {
	for i := range r.Updates {
		if r.Updates[i].Column == column {
			return &r.Updates[i]
		}
	}
	return nil
}
