package catalog

import (
	"strings"
	"testing"

	"catdb/internal/data"
	"catdb/internal/llm"
	"catdb/internal/profile"
)

func client(t *testing.T) llm.Client {
	t.Helper()
	c, err := llm.New("gemini-1.5-pro", 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// salaryTable mirrors the paper's Figure 1/5 running example.
func salaryTable(n int) *data.Table {
	exp := make([]string, n)
	gender := make([]string, n)
	skills := make([]string, n)
	addr := make([]string, n)
	konst := make([]string, n)
	sal := make([]float64, n)
	templates := []string{"about %s", "roughly %s or so", "reported as %s", "%s (confirmed)"}
	for i := 0; i < n; i++ {
		token := []string{"alpha", "bravo", "congo"}[i%3]
		exp[i] = strings.Replace(templates[i%4], "%s", token, 1)
		switch i % 3 {
		case 0:
			gender[i] = "Female"
			skills[i] = "java, sql"
			addr[i] = "7050 congo"
		case 1:
			gender[i] = "FEMALE"
			skills[i] = "python"
			addr[i] = "delta 7871"
		default:
			gender[i] = "Male"
			skills[i] = "cpp, java, sql"
			addr[i] = "congo 9000"
		}
		konst[i] = "v1"
		sal[i] = 100 + float64(i%3)*100
	}
	t := data.NewTable("salary")
	t.MustAddColumn(data.NewString("experience", exp))
	t.MustAddColumn(data.NewString("gender", gender))
	t.MustAddColumn(data.NewString("skills", skills))
	t.MustAddColumn(data.NewString("address", addr))
	t.MustAddColumn(data.NewString("firmware", konst))
	t.MustAddColumn(data.NewNumeric("salary", sal))
	return t
}

func TestRefineSalaryExample(t *testing.T) {
	res, err := Refine(salaryTable(300), "salary", data.Regression, client(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Sentence: experience reduced to 3 category tokens.
	up := res.UpdateFor("experience")
	if up == nil || up.Kind != UpdateSentence {
		t.Fatalf("experience update = %+v", up)
	}
	if up.RefinedDistinct != 3 || up.OriginalDistinct <= 3 {
		t.Fatalf("experience distinct %d -> %d", up.OriginalDistinct, up.RefinedDistinct)
	}
	// Dedup: gender Female variants collapse to 2 categories.
	gup := res.UpdateFor("gender")
	if gup == nil || gup.Kind != UpdateDedup || gup.RefinedDistinct != 2 {
		t.Fatalf("gender update = %+v", gup)
	}
	// List: skills k-hot into item columns.
	sup := res.UpdateFor("skills")
	if sup == nil || sup.Kind != UpdateList {
		t.Fatalf("skills update = %+v", sup)
	}
	if len(sup.NewColumns) != 4 { // java sql python cpp
		t.Fatalf("skills items = %v", sup.NewColumns)
	}
	// Composite: address split into part + code.
	aup := res.UpdateFor("address")
	if aup == nil || aup.Kind != UpdateComposite {
		t.Fatalf("address update = %+v", aup)
	}
	if res.Table.Col("address_part") == nil || res.Table.Col("address_code") == nil {
		t.Fatalf("split columns missing: %v", res.Table.ColumnNames())
	}
	// Constant firmware dropped.
	if res.Table.Col("firmware") != nil {
		t.Fatal("constant column must be dropped")
	}
	if res.UpdateFor("firmware").Kind != UpdateDropConstant {
		t.Fatal("drop-constant update missing")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
	// Refined profile exists and reflects the new columns.
	if res.Profile == nil || res.Profile.Column("address_part") == nil {
		t.Fatal("refined profile incomplete")
	}
}

func TestRefineDirtyTarget(t *testing.T) {
	n := 300
	x := make([]float64, n)
	y := make([]string, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i % 5)
		base := []string{"engineer", "manager", "analyst"}[i%3]
		y[i] = []string{base, strings.ToUpper(base), " " + base, base + " "}[i%4]
	}
	tb := data.NewTable("euit")
	tb.MustAddColumn(data.NewNumeric("x", x))
	tb.MustAddColumn(data.NewString("role", y))
	res, err := Refine(tb, "role", data.Multiclass, client(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Table.Col("role").DistinctCount(); got != 3 {
		t.Fatalf("refined target distinct = %d, want 3", got)
	}
	up := res.UpdateFor("role")
	if up == nil || up.Kind != UpdateDedup {
		t.Fatal("target dedup update missing")
	}
}

func TestRefineDataset(t *testing.T) {
	ds, err := data.Load("Utility", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RefineDataset(ds, client(t), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) == 0 {
		t.Fatal("Utility should get refinements (dirty meter_class)")
	}
	// meter_class distinct count must shrink (Table 4 shape).
	up := res.UpdateFor("meter_class")
	if up == nil || up.RefinedDistinct >= up.OriginalDistinct {
		t.Fatalf("meter_class update = %+v", up)
	}
}

func TestRefineNumericOnlyNoop(t *testing.T) {
	tb := data.NewTable("num")
	tb.MustAddColumn(data.NewNumeric("a", []float64{1, 2, 3, 4}))
	tb.MustAddColumn(data.NewNumeric("y", []float64{1, 2, 3, 4}))
	res, err := Refine(tb, "y", data.Regression, client(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Updates) != 0 {
		t.Fatalf("numeric table should need no refinement: %+v", res.Updates)
	}
	if res.Table.NumCols() != 2 {
		t.Fatal("columns altered")
	}
}

func TestRefineIsIdempotent(t *testing.T) {
	res1, err := Refine(salaryTable(300), "salary", data.Regression, client(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Refine(res1.Table, "salary", data.Regression, client(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A second refinement pass should change (almost) nothing: no new
	// structural updates.
	for _, up := range res2.Updates {
		if up.Kind == UpdateList || up.Kind == UpdateComposite || up.Kind == UpdateDedup {
			t.Fatalf("second pass should be clean, got %+v", up)
		}
	}
}

func TestRefineRecordsProfileTypes(t *testing.T) {
	res, err := Refine(salaryTable(300), "salary", data.Regression, client(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ft := res.Profile.Column("experience").FeatureType; ft != profile.FeatureCategorical {
		t.Fatalf("refined experience type = %s", ft)
	}
}
