// Package core is the paper's primary contribution glued together: the
// end-to-end CatDB pipeline generator (Algorithm 4, PIPEGEN) with its
// validation and error-management loop, the CatDB Chain driver, the
// handcrafted-pipeline fallback, and the token cost model of Equations 1
// and 2.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"catdb/internal/catalog"
	"catdb/internal/data"
	"catdb/internal/errkb"
	"catdb/internal/llm"
	"catdb/internal/obs"
	"catdb/internal/pipescript"
	"catdb/internal/profile"
	"catdb/internal/prompt"
)

// Options configures a CatDB run.
type Options struct {
	// TopK is α: restrict the prompt to the K most relevant columns
	// (0 = all).
	TopK int
	// Chains is β: 1 = single prompt (CatDB), >1 = CatDB Chain.
	Chains int
	// MaxAttempts is τ₂, the error-correction budget per prompt
	// (default 15, the paper's cap).
	MaxAttempts int
	// Combo selects the metadata combination (Table 1); the zero value is
	// CatDB's adaptive projection.
	Combo prompt.Combo
	// MetadataOnly disables the rule messages — the "[Metadata-only &
	// LLM]" baseline of Figure 1.
	MetadataOnly bool
	// NoRefine skips catalog refinement and data cleaning — the
	// "Original" variant of Table 5.
	NoRefine bool
	// Seed drives splits, validation sampling, and pipeline execution.
	Seed int64
	// TrainFrac is the train share of the split (default 0.7).
	TrainFrac float64
	// ValidationRows caps the sample used during the debug loop
	// (default 500).
	ValidationRows int
	// TrainMutator, when set, is applied to the training split right
	// after the train/test split — the robustness experiments of Figure
	// 14 use it to inject corruption into training data while keeping the
	// evaluation set clean.
	TrainMutator func(train *data.Table)
	// StaticRepair enables the §4 code-analysis pass: generated pipelines
	// are statically checked (pipescript.Analyze) and repairable missing
	// steps are inserted before execution, cutting error-correction
	// iterations and token costs (see the ablation benchmark).
	StaticRepair bool
	// Policy enforces organizational library constraints on generated
	// pipelines (the §4.3 compliance extension): disallowed models or
	// packages raise policy errors that the error-management loop repairs
	// with allowed alternatives.
	Policy *pipescript.Policy
	// DAG schedules independent pipeline statements concurrently
	// (pipescript's dependency-DAG scheduler). Results, artifacts, and
	// errors are bit-identical to linear execution at any worker count;
	// only wall time changes. With Chains > 1 the chained sub-pipelines
	// accumulate into one program, so the whole chain is fused into a
	// single DAG.
	DAG bool
	// ExecWorkers bounds the goroutines the pipeline executor uses for
	// DAG statement scheduling, row sharding, and model fitting
	// (0 = all cores).
	ExecWorkers int
	// ExecShardRows sets the executor's row-shard chunk size for
	// elementwise op loops (0 = default, negative = serial loops).
	// Results are bit-identical at any value.
	ExecShardRows int
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 15
	}
	if o.Chains <= 0 {
		o.Chains = 1
	}
	if o.TrainFrac <= 0 || o.TrainFrac >= 1 {
		o.TrainFrac = 0.7
	}
	if o.ValidationRows <= 0 {
		o.ValidationRows = 500
	}
	return o
}

// Cost aggregates token usage per Equations 1 and 2: generation prompts
// (γ·L(Pp)) and error-correction prompts (Σ L(Pe)).
type Cost struct {
	PromptTokens          int // initial generation prompts
	CompletionTokens      int
	ErrorPromptTokens     int // error-correction prompts
	ErrorCompletionTokens int
	LLMCalls              int
	KBFixes               int
	LLMFixes              int
	Attempts              int
}

// Total returns all tokens exchanged.
func (c Cost) Total() int {
	return c.PromptTokens + c.CompletionTokens + c.ErrorPromptTokens + c.ErrorCompletionTokens
}

// ErrorTokens returns the error-management share of the cost.
func (c Cost) ErrorTokens() int { return c.ErrorPromptTokens + c.ErrorCompletionTokens }

// Result is the outcome of one CatDB run.
type Result struct {
	Dataset  string
	Model    string
	Variant  string // "CatDB" or "CatDB Chain"
	Pipeline string // final PipeScript source
	Exec     *pipescript.Result
	Cost     Cost
	Errors   []errkb.Classified
	// Handcrafted reports that the τ₂ budget was exhausted and the
	// fallback pipeline was used (Algorithm 4 lines 16-17).
	Handcrafted bool

	ProfileTime time.Duration
	RefineTime  time.Duration
	GenTime     time.Duration // prompt construction + LLM loop
	ExecTime    time.Duration // final pipeline execution
}

// TotalTime is the end-to-end runtime reported in Table 8 (data loading,
// catalog refinement, metadata projection, rule definition, generation,
// error management, and execution).
func (r *Result) TotalTime() time.Duration {
	return r.ProfileTime + r.RefineTime + r.GenTime + r.ExecTime
}

// Runner generates and executes CatDB pipelines against one LLM client.
type Runner struct {
	Client llm.Client
	// KB is the local knowledge base (defaults to the built-in one).
	KB *errkb.KnowledgeBase
	// Traces, when set, records every encountered error (the error-trace
	// dataset of Table 2).
	Traces *errkb.TraceStore
	// Description is the optional user-written dataset summary.
	Description string
	// ProfileCache, when set, memoizes data profiles by table content so
	// runs over the same (dataset, scale, seed, options) cell — and the
	// catalog's refinement profiling — skip redundant Algorithm 1 passes.
	// Share one cache across runners to share across benchmark cells.
	ProfileCache *profile.Cache
	// Tracer, when set, records a hierarchical span tree per Run: run →
	// refine / profile / prompt-build / per-prompt generate (with one
	// debug-attempt span per τ₂ iteration carrying category, fixedBy, and
	// token attributes) / exec, plus a resume-debug subtree when the
	// validated pipeline fails on full data. Nil disables tracing with
	// zero overhead and bit-identical results.
	Tracer *obs.Tracer
	// TraceParent, when set, nests the Run's span tree under an existing
	// span (the bench harness parents runs under its per-cell spans); it
	// implies the parent's tracer, so Tracer may stay nil.
	TraceParent *obs.Span
	// Metrics, when set, records counters and histograms: LLM calls and
	// tokens by prompt kind (catdb_gen_*) and by model (catdb_llm_*, via
	// the llm.Observed middleware), KB-vs-LLM fixes by error category
	// (catdb_fixes_total), per-stage latencies (catdb_stage_seconds), and
	// pipeline executions (catdb_pipescript_*).
	Metrics *obs.Registry
	// OnResult, when set, observes every successful Run result just
	// before it returns, along with the options that produced it — the
	// hook the bench harness uses to append runs to the persistent
	// ledger (the options distinguish configurations the Result alone
	// does not, like metadata combos). It must not mutate the result.
	OnResult func(Options, *Result)
}

// NewRunner returns a runner over the given client.
func NewRunner(client llm.Client) *Runner {
	return &Runner{Client: client, KB: errkb.NewKnowledgeBase()}
}

// Run executes the full CatDB workflow on a dataset: consolidation,
// optional catalog refinement, profiling, prompt construction, generation
// with error management, and final execution on the 70/30 split.
func (r *Runner) Run(ds *data.Dataset, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if r.Metrics != nil {
		// Route every LLM call of this run (generation, error fixes, and
		// catalog refinement) through the metrics middleware. The shallow
		// copy keeps the caller's Runner unwrapped.
		rc := *r
		rc.Client = llm.Observed(r.Client, r.Metrics)
		r = &rc
	}
	res := &Result{Dataset: ds.Name, Model: r.Client.Name(), Variant: variantName(opts)}
	root := r.rootSpan()
	root.SetStr("dataset", ds.Name)
	root.SetStr("model", res.Model)
	root.SetStr("variant", res.Variant)
	defer root.End()

	// Materialize (and optionally refine) the working table.
	var table *data.Table
	if opts.NoRefine {
		t, err := ds.Consolidate()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		table = t
	} else {
		sp := root.Child("refine")
		start := obs.Now()
		ref, err := catalog.RefineDataset(ds, r.Client, catalog.Options{Seed: opts.Seed, Cache: r.ProfileCache})
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("core: %w", err)
		}
		table = ref.Table
		res.RefineTime = obs.Since(start)
		sp.End()
		r.observeStage("refine", res.RefineTime)
	}

	// Split before prompting: all metadata is derived from train data.
	var train, test *data.Table
	if ds.Task.IsClassification() {
		train, test = table.StratifiedSplit(ds.Target, opts.TrainFrac, opts.Seed)
	} else {
		train, test = table.Split(opts.TrainFrac, opts.Seed)
	}
	if opts.TrainMutator != nil {
		opts.TrainMutator(train)
	}

	// Profile (Algorithm 1).
	psp := root.Child("profile")
	pstart := obs.Now()
	prof, err := r.ProfileCache.Table(train, ds.Target, ds.Task, profile.Options{Seed: opts.Seed})
	if err != nil {
		psp.End()
		return nil, fmt.Errorf("core: %w", err)
	}
	res.ProfileTime = obs.Since(pstart)
	psp.End()
	r.observeStage("profile", res.ProfileTime)

	bsp := root.Child("prompt-build")
	in := prompt.InputFromProfile(prof, topClassShare(train, ds.Target, ds.Task), descriptionOf(ds, r.Description))
	cfg := prompt.Config{
		Combo: opts.Combo, TopK: opts.TopK, Chains: opts.Chains,
		IncludeRules: !opts.MetadataOnly, IncludeDescription: true,
	}
	spec := prompt.ModelSpec{Name: r.Client.Name(), MaxPromptTokens: r.Client.MaxPromptTokens()}
	prompts := prompt.Build(in, spec, cfg)
	bsp.SetInt("prompts", int64(len(prompts)))
	bsp.End()

	// Validation sample for the debug loop (the paper tests pipelines on
	// sample data before full execution).
	rng := rand.New(rand.NewSource(opts.Seed))
	vTrain := train.Sample(opts.ValidationRows, rng)
	vTest := test.Sample(opts.ValidationRows/2+1, rng)

	gstart := obs.Now()
	source := ""
	for _, pr := range prompts {
		// Chain intermediate steps (preprocessing / feature engineering)
		// legitimately have no train statement yet.
		allowNoTrain := pr.Kind == prompt.KindPreprocessing || pr.Kind == prompt.KindFeatureEng
		pr = prompt.WithCode(pr, source)
		gsp := root.Child("generate")
		gsp.SetStr("kind", string(pr.Kind))
		src, err := r.generateAndFix(pr, in, cfg, opts, vTrain, vTest, ds, allowNoTrain, res, gsp)
		gsp.End()
		if err != nil {
			return nil, err
		}
		source = src
	}
	// Validate the complete program strictly (a train statement is now
	// mandatory).
	vsp := root.Child("final-validate")
	source, err = r.finalValidate(source, in, cfg, opts, vTrain, vTest, ds, res, vsp)
	vsp.End()
	if err != nil {
		return nil, err
	}
	res.GenTime = obs.Since(gstart)
	res.Pipeline = source

	// Final execution on the full split (the pipeline runtime of Table 6).
	esp := root.Child("exec")
	estart := obs.Now()
	var resumeGen time.Duration
	prog, perr := pipescript.Parse(source)
	if perr != nil {
		esp.End()
		return nil, fmt.Errorf("core: final pipeline failed to parse after validation: %w", perr)
	}
	ex := &pipescript.Executor{Target: ds.Target, Task: ds.Task, Seed: opts.Seed, Policy: opts.Policy, Metrics: r.Metrics, DAG: opts.DAG, Workers: opts.ExecWorkers, ShardRows: opts.ExecShardRows, Span: esp}
	execRes, xerr := ex.Execute(prog, train, test)
	if xerr != nil {
		// Full-data failure after sample validation: resume the debug
		// loop against the full data.
		var genDur time.Duration
		source, execRes, genDur, xerr = r.resumeOnFullData(source, xerr, in, cfg, opts, train, test, ds, res, esp)
		resumeGen = genDur
		if xerr != nil {
			esp.End()
			return nil, fmt.Errorf("core: pipeline failed on full data: %w", xerr)
		}
		res.Pipeline = source
	}
	// The resume path is generation work — LLM repair calls and sample
	// re-validation — so its share of the wall time is booked under
	// GenTime, keeping ExecTime a pure pipeline-execution measurement.
	res.GenTime += resumeGen
	res.ExecTime = obs.Since(estart) - resumeGen
	esp.End()
	r.observeStage("generate", res.GenTime)
	r.observeStage("exec", res.ExecTime)
	res.Exec = execRes
	if r.OnResult != nil {
		r.OnResult(opts, res)
	}
	return res, nil
}

// rootSpan opens the per-run span: nested under TraceParent when the
// bench harness provides one, a fresh root on the runner's tracer
// otherwise (both nil-safe no-ops when tracing is off).
func (r *Runner) rootSpan() *obs.Span {
	if r.TraceParent != nil {
		return r.TraceParent.Child("run")
	}
	return r.Tracer.Root("run")
}

// observeStage records one Table 8 stage latency into the registry.
func (r *Runner) observeStage(stage string, d time.Duration) {
	if r.Metrics == nil {
		return
	}
	r.Metrics.Histogram("catdb_stage_seconds", obs.DefBuckets, "stage", stage).Observe(d.Seconds())
}

// observeGenCall records one generation-path LLM exchange by prompt kind
// ("pipeline", chain steps, or "error-fix").
func (r *Runner) observeGenCall(kind string, u llm.Usage) {
	if r.Metrics == nil {
		return
	}
	r.Metrics.Counter("catdb_gen_calls_total", "kind", kind).Inc()
	r.Metrics.Counter("catdb_gen_tokens_total", "kind", kind, "dir", "prompt").Add(int64(u.PromptTokens))
	r.Metrics.Counter("catdb_gen_tokens_total", "kind", kind, "dir", "completion").Add(int64(u.CompletionTokens))
}

func variantName(opts Options) string {
	if opts.Chains > 1 {
		return "CatDB Chain"
	}
	return "CatDB"
}

func descriptionOf(ds *data.Dataset, override string) string {
	if override != "" {
		return override
	}
	return ds.Description
}

// topClassShare computes the largest class share of a classification
// target (0 for regression/absent targets). The task decides whether the
// target is categorical: int-coded 0/1 labels are numeric-kind columns but
// still class labels, and skipping them would hide class imbalance from
// the prompt rules.
func topClassShare(t *data.Table, target string, task data.Task) float64 {
	if !task.IsClassification() {
		return 0
	}
	c := t.Col(target)
	if c == nil {
		return 0
	}
	counts := map[string]int{}
	max := 0
	for i := 0; i < c.Len(); i++ {
		counts[c.ValueString(i)]++
		if counts[c.ValueString(i)] > max {
			max = counts[c.ValueString(i)]
		}
	}
	if c.Len() == 0 {
		return 0
	}
	return float64(max) / float64(c.Len())
}

// generateAndFix submits one prompt and runs the τ₂-bounded debug loop of
// Algorithm 4 against the validation sample.
func (r *Runner) generateAndFix(pr prompt.Prompt, in prompt.Input, cfg prompt.Config, opts Options,
	vTrain, vTest *data.Table, ds *data.Dataset, allowNoTrain bool, res *Result, sp *obs.Span) (string, error) {

	resp, err := r.Client.Complete(pr.Text)
	if err != nil {
		return "", fmt.Errorf("core: llm: %w", err)
	}
	res.Cost.PromptTokens += resp.Usage.PromptTokens
	res.Cost.CompletionTokens += resp.Usage.CompletionTokens
	res.Cost.LLMCalls++
	r.observeGenCall(string(pr.Kind), resp.Usage)
	sp.SetInt("tokens", int64(resp.Usage.PromptTokens+resp.Usage.CompletionTokens))

	source := resp.Text
	if opts.StaticRepair && !allowNoTrain {
		source = staticRepair(source, in, ds.Task)
	}
	ex := &pipescript.Executor{Target: ds.Target, Task: ds.Task, Seed: opts.Seed, AllowNoTrain: allowNoTrain, Policy: opts.Policy, Metrics: r.Metrics, DAG: opts.DAG, Workers: opts.ExecWorkers, ShardRows: opts.ExecShardRows}
	return r.debugLoop(source, in, cfg, opts, ex, vTrain, vTest, ds, res, sp)
}

// staticRepair runs the code-analysis pass over freshly generated source:
// parseable pipelines are checked against the input schema and repairable
// gaps (missing imputation/encodings, unknown models, bad requires) are
// fixed without an LLM round trip. Unparseable sources pass through — the
// knowledge base and error loop handle syntax.
func staticRepair(source string, in prompt.Input, task data.Task) string {
	prog, err := pipescript.Parse(source)
	if err != nil {
		return source
	}
	cols := make([]pipescript.ColumnInfo, 0, len(in.Cols))
	for _, c := range in.Cols {
		cols = append(cols, pipescript.ColumnInfo{
			Name:       c.Name,
			IsString:   c.DataType == data.KindString,
			HasMissing: c.MissingPct > 0,
			IsTarget:   c.IsTarget,
		})
	}
	issues := pipescript.Analyze(prog, cols, task)
	if len(issues) == 0 {
		return source
	}
	fixed := pipescript.Repair(source, issues, cols, in.Target)
	if _, err := pipescript.Parse(fixed); err != nil {
		return source // never hand the loop something worse
	}
	return fixed
}

// finalValidate runs the strict (train-required) validation over the
// assembled program, continuing the debug loop if needed.
func (r *Runner) finalValidate(source string, in prompt.Input, cfg prompt.Config, opts Options,
	vTrain, vTest *data.Table, ds *data.Dataset, res *Result, sp *obs.Span) (string, error) {

	ex := &pipescript.Executor{Target: ds.Target, Task: ds.Task, Seed: opts.Seed, Policy: opts.Policy, Metrics: r.Metrics, DAG: opts.DAG, Workers: opts.ExecWorkers, ShardRows: opts.ExecShardRows}
	return r.debugLoop(source, in, cfg, opts, ex, vTrain, vTest, ds, res, sp)
}

// debugLoop is the shared fix loop used by finalValidate and the
// full-data resume path.
func (r *Runner) debugLoop(source string, in prompt.Input, cfg prompt.Config, opts Options,
	ex *pipescript.Executor, train, test *data.Table, ds *data.Dataset, res *Result, parent *obs.Span) (string, error) {

	var lastFixBy string
	var lastCls errkb.Classified
	var preFixSource string

	// Whether an attempt's fix actually worked is only knowable one
	// iteration later, so traces are buffered and flushed once the next
	// execution reveals the outcome: Fixed means the run succeeded or the
	// error signature (category, type, code) changed; an attempt still
	// pending when the τ₂ budget runs out is flushed unfixed.
	var pending *errkb.Trace
	var pendingCls errkb.Classified
	flush := func(fixed bool) {
		if pending == nil {
			return
		}
		pending.Fixed = fixed
		r.Traces.Add(*pending)
		pending = nil
	}

	for attempt := 1; attempt <= opts.MaxAttempts; attempt++ {
		execErr := parseAndExecute(ex, source, train, test)
		if execErr == nil {
			flush(true)
			// A successful run right after an LLM repair is a learning
			// opportunity: generalize the fix into the knowledge base so
			// the next occurrence is patched locally (§4.2).
			if lastFixBy == "llm" && r.KB != nil {
				r.KB.LearnFromFix(preFixSource, source, lastCls)
			}
			return source, nil
		}
		res.Cost.Attempts++
		cls := errkb.Classify(execErr)
		if pending != nil {
			flush(cls.Category != pendingCls.Category || cls.Type != pendingCls.Type || cls.Code != pendingCls.Code)
		}
		res.Errors = append(res.Errors, cls)

		asp := parent.Child("debug-attempt")
		asp.SetInt("attempt", int64(attempt))
		asp.SetStr("category", cls.Category.String())
		asp.SetStr("type", cls.Type)
		asp.SetStr("code", cls.Code)

		fixedBy := ""
		preFixSource = source
		if r.KB != nil {
			// A patch that leaves the source unchanged cannot fix the error;
			// counting it as a fix would burn a τ₂ attempt re-running the
			// identical pipeline. Fall through to the LLM repair instead.
			if patched, ok := r.KB.TryPatch(source, cls); ok && patched != source {
				source = patched
				res.Cost.KBFixes++
				fixedBy = "kb"
			}
		}
		if fixedBy == "" {
			var relevant []prompt.ColumnMeta
			if cls.Category == errkb.CategoryRE {
				relevant = relevantColumns(in, cls)
			}
			ep := prompt.FormatErrorPrompt(in, source, cls.Line, cls.Code, cls.Msg, relevant, cfg)
			fresp, ferr := r.Client.Complete(ep.Text)
			if ferr != nil {
				asp.End()
				return "", fmt.Errorf("core: llm error fix: %w", ferr)
			}
			res.Cost.ErrorPromptTokens += fresp.Usage.PromptTokens
			res.Cost.ErrorCompletionTokens += fresp.Usage.CompletionTokens
			res.Cost.LLMCalls++
			res.Cost.LLMFixes++
			r.observeGenCall("error-fix", fresp.Usage)
			asp.SetInt("tokens", int64(fresp.Usage.PromptTokens+fresp.Usage.CompletionTokens))
			source = fresp.Text
			fixedBy = "llm"
		}
		asp.SetStr("fixedBy", fixedBy)
		asp.End()
		if r.Metrics != nil {
			r.Metrics.Counter("catdb_fixes_total", "by", fixedBy, "category", cls.Category.String()).Inc()
		}
		lastFixBy, lastCls = fixedBy, cls
		if r.Traces != nil {
			pending = &errkb.Trace{
				Model: r.Client.Name(), Dataset: ds.Name,
				Category: cls.Category.String(), Type: cls.Type, Code: cls.Code,
				Attempt: attempt, FixedBy: fixedBy,
			}
			pendingCls = cls
		}
	}
	flush(false)
	res.Handcrafted = true
	parent.SetBool("handcrafted", true)
	if r.Metrics != nil {
		r.Metrics.Counter("catdb_handcrafted_total").Inc()
	}
	return HandcraftPipeline(in), nil
}

// resumeOnFullData continues error correction when the validated pipeline
// fails on the complete dataset. The returned duration is the debug-loop
// share of the resume — LLM repair rounds, not the final execution — so
// the caller can book it under GenTime rather than ExecTime.
func (r *Runner) resumeOnFullData(source string, firstErr error, in prompt.Input, cfg prompt.Config,
	opts Options, train, test *data.Table, ds *data.Dataset, res *Result, parent *obs.Span) (string, *pipescript.Result, time.Duration, error) {

	sp := parent.Child("resume-debug")
	sp.SetStr("cause", errkb.Classify(firstErr).Code)
	defer sp.End()
	ex := &pipescript.Executor{Target: ds.Target, Task: ds.Task, Seed: opts.Seed, Policy: opts.Policy, Metrics: r.Metrics, DAG: opts.DAG, Workers: opts.ExecWorkers, ShardRows: opts.ExecShardRows, Span: sp}
	dstart := obs.Now()
	fixed, err := r.debugLoop(source, in, cfg, opts, ex, train, test, ds, res, sp)
	genDur := obs.Since(dstart)
	if err != nil {
		return "", nil, genDur, err
	}
	prog, perr := pipescript.Parse(fixed)
	if perr != nil {
		return "", nil, genDur, perr
	}
	execRes, xerr := ex.Execute(prog, train, test)
	return fixed, execRes, genDur, xerr
}

// parseAndExecute is Algorithm 4's PARSEANDEXECUTE: syntax check first
// (ast analogue), then a runtime check on local data.
func parseAndExecute(ex *pipescript.Executor, source string, train, test *data.Table) error {
	prog, err := pipescript.Parse(source)
	if err != nil {
		return err
	}
	_, err = ex.Execute(prog, train, test)
	return err
}

// relevantColumns filters and projects the metadata relevant to an error
// (Algorithm 4's GETCATALOGDATA): the column named in the message if any,
// plus every column with missing values for NaN errors and every string
// column for encoding errors.
func relevantColumns(in prompt.Input, cls errkb.Classified) []prompt.ColumnMeta {
	named := firstQuoted(cls.Msg)
	var out []prompt.ColumnMeta
	for _, c := range in.Cols {
		switch {
		case c.Name == named:
			out = append(out, c)
		case cls.Code == pipescript.ErrNaNInMatrix && c.MissingPct > 0:
			out = append(out, c)
		case cls.Code == pipescript.ErrStringInMatrix && c.DataType == data.KindString:
			out = append(out, c)
		case cls.Code == pipescript.ErrUnknownColumn:
			out = append(out, c) // the fixer needs the full schema to re-map
		}
	}
	if len(out) == 0 {
		return in.Cols
	}
	return out
}

// firstQuoted extracts the first quoted token from an error message. Error
// sources are inconsistent about quote style, so double quotes, backticks,
// and single quotes are all accepted (the earliest opening quote wins, and
// the token must be closed by the same character).
func firstQuoted(s string) string {
	start, quote := -1, byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if start < 0 {
			if c == '"' || c == '`' || c == '\'' {
				start, quote = i+1, c
			}
			continue
		}
		if c == quote {
			return s[start:i]
		}
	}
	return ""
}

// HandcraftPipeline is the safety-net pipeline of Algorithm 4: impute
// everything, encode every string column, train a robust default model.
func HandcraftPipeline(in prompt.Input) string {
	src := fmt.Sprintf("pipeline %q\n", in.Dataset+"-handcrafted")
	src += "impute_all strategy=auto\n"
	for _, c := range in.Cols {
		if c.IsTarget || c.DataType != data.KindString {
			continue
		}
		if c.DistinctCount > 64 {
			src += fmt.Sprintf("hash_encode %q buckets=64\n", c.Name)
		} else {
			src += fmt.Sprintf("onehot %q\n", c.Name)
		}
	}
	src += "drop_constant\n"
	src += fmt.Sprintf("train model=random_forest target=%q trees=50\n", in.Target)
	src += "evaluate metric=auto\n"
	return src
}

// EstimateCost evaluates Equation 1 (single prompt) for reporting: γ·L(Pp)
// plus the error-prompt terms actually incurred.
func EstimateCost(c Cost) int { return c.Total() }
