package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"catdb/internal/data"
	"catdb/internal/errkb"
	"catdb/internal/llm"
	"catdb/internal/pipescript"
	"catdb/internal/profile"
	"catdb/internal/prompt"
)

func loadDS(t *testing.T, name string, scale float64) *data.Dataset {
	t.Helper()
	ds, err := data.Load(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func runner(t *testing.T, model string, seed int64) *Runner {
	t.Helper()
	c, err := llm.New(model, seed)
	if err != nil {
		t.Fatal(err)
	}
	return NewRunner(c)
}

func TestRunWifiEndToEnd(t *testing.T) {
	ds := loadDS(t, "Wifi", 1.0)
	r := runner(t, "gemini-1.5-pro", 1)
	res, err := r.Run(ds, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec == nil || res.Pipeline == "" {
		t.Fatal("no execution result")
	}
	if res.Exec.TestAUC < 60 {
		t.Fatalf("Wifi test AUC = %g, want decent", res.Exec.TestAUC)
	}
	if res.Cost.LLMCalls == 0 || res.Cost.Total() == 0 {
		t.Fatalf("cost not tracked: %+v", res.Cost)
	}
	if res.TotalTime() <= 0 {
		t.Fatal("timing not tracked")
	}
	if res.Variant != "CatDB" {
		t.Fatalf("variant = %q", res.Variant)
	}
	// The final pipeline must parse.
	if _, err := pipescript.Parse(res.Pipeline); err != nil {
		t.Fatalf("final pipeline invalid: %v", err)
	}
}

func TestRunChainVariant(t *testing.T) {
	ds := loadDS(t, "Diabetes", 1.0)
	r := runner(t, "gpt-4o", 2)
	res, err := r.Run(ds, Options{Seed: 2, Chains: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != "CatDB Chain" {
		t.Fatalf("variant = %q", res.Variant)
	}
	if res.Exec.TestAUC < 55 {
		t.Fatalf("Diabetes chain AUC = %g", res.Exec.TestAUC)
	}
	// Chain submits more prompts than single.
	if res.Cost.LLMCalls < 4 {
		t.Fatalf("chain LLM calls = %d, want >= 4", res.Cost.LLMCalls)
	}
}

func TestRefinementBeatsOriginalOnDirtyTarget(t *testing.T) {
	ds := loadDS(t, "EU-IT", 1.0)
	r := runner(t, "gemini-1.5-pro", 3)
	refined, err := r.Run(ds, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r2 := runner(t, "gemini-1.5-pro", 3)
	original, err := r2.Run(ds, Options{Seed: 3, NoRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Exec.TestAcc <= original.Exec.TestAcc+5 {
		t.Fatalf("refinement should lift EU-IT accuracy: original=%.1f refined=%.1f",
			original.Exec.TestAcc, refined.Exec.TestAcc)
	}
}

func TestMetadataOnlyWorseThanCatDB(t *testing.T) {
	ds := loadDS(t, "Etailing", 1.0)
	full := runner(t, "gemini-1.5-pro", 4)
	fres, err := full.Run(ds, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	meta := runner(t, "gemini-1.5-pro", 4)
	mres, err := meta.Run(ds, Options{Seed: 4, MetadataOnly: true, NoRefine: true, Combo: prompt.Combo1})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Exec.TestAcc < mres.Exec.TestAcc {
		t.Fatalf("CatDB (%.1f) should beat metadata-only (%.1f)", fres.Exec.TestAcc, mres.Exec.TestAcc)
	}
}

func TestErrorManagementTracesRecorded(t *testing.T) {
	ds := loadDS(t, "CMC", 0.5)
	c, _ := llm.New("llama3.1-70b", 5)
	r := NewRunner(c)
	r.Traces = errkb.NewTraceStore()
	// Run several times; llama's 42% fault rate should produce traces.
	for seed := int64(0); seed < 6; seed++ {
		if _, err := r.Run(ds, Options{Seed: seed, NoRefine: true}); err != nil {
			t.Fatal(err)
		}
	}
	if r.Traces.Len() == 0 {
		t.Fatal("no error traces recorded across 6 llama runs")
	}
	dist := r.Traces.DistributionByModel()
	if len(dist) != 1 || dist[0].Model != "llama3.1-70b" {
		t.Fatalf("distribution = %+v", dist)
	}
}

func TestRegressionRun(t *testing.T) {
	ds := loadDS(t, "Utility", 0.5)
	r := runner(t, "gpt-4o", 6)
	res, err := r.Run(ds, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.Metric != "r2" {
		t.Fatalf("metric = %s", res.Exec.Metric)
	}
	if res.Exec.TestR2 < 50 {
		t.Fatalf("Utility R2 = %g", res.Exec.TestR2)
	}
}

func TestMultiTableRun(t *testing.T) {
	ds := loadDS(t, "Financial", 0.02)
	r := runner(t, "gemini-1.5-pro", 7)
	res, err := r.Run(ds, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.TestAUC < 55 {
		t.Fatalf("Financial AUC = %g", res.Exec.TestAUC)
	}
	// Joined dimension columns must appear in the pipeline's world: at
	// minimum the pipeline ran with more features than the fact table had.
	if res.Exec.Features < 10 {
		t.Fatalf("features = %d, expected joined width", res.Exec.Features)
	}
}

func TestHandcraftPipelineIsValid(t *testing.T) {
	ds := loadDS(t, "Wifi", 1.0)
	tb, _ := ds.Consolidate()
	tr, te := tb.Split(0.7, 1)
	prof, err := profile.Table(tr, ds.Target, ds.Task, profile.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := prompt.InputFromProfile(prof, 0.5, "")
	src := HandcraftPipeline(in)
	prog, perr := pipescript.Parse(src)
	if perr != nil {
		t.Fatalf("handcrafted pipeline must parse: %v\n%s", perr, src)
	}
	ex := &pipescript.Executor{Target: ds.Target, Task: ds.Task, Seed: 1}
	if _, err := ex.Execute(prog, tr, te); err != nil {
		t.Fatalf("handcrafted pipeline must run: %v\n%s", err, src)
	}
}

func TestTopClassShare(t *testing.T) {
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewString("y", []string{"a", "a", "a", "b"}))
	if got := topClassShare(tb, "y", data.Binary); got != 0.75 {
		t.Fatalf("share = %g", got)
	}
	if topClassShare(tb, "missing", data.Binary) != 0 {
		t.Fatal("missing target share must be 0")
	}
}

func TestTopClassShareNumericLabels(t *testing.T) {
	// Int-coded 0/1 labels are numeric-kind columns but still classes; the
	// imbalance rule must see their share (regression targets stay at 0).
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewInt("y", []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 1}))
	if got := topClassShare(tb, "y", data.Binary); got != 0.9 {
		t.Fatalf("numeric-label share = %g, want 0.9", got)
	}
	if got := topClassShare(tb, "y", data.Regression); got != 0 {
		t.Fatalf("regression share = %g, want 0", got)
	}
}

func TestFirstQuotedQuoteStyles(t *testing.T) {
	cases := []struct{ in, want string }{
		{`column "price" not found`, "price"},
		{"column `price` not found", "price"},
		{"column 'price' not found", "price"},
		{"first `a` then 'b'", "a"},
		{"unterminated `price", ""},
		{"no quotes at all", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := firstQuoted(c.in); got != c.want {
			t.Errorf("firstQuoted(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDebugLoopNoOpKBPatchFallsThroughToLLM(t *testing.T) {
	// A learned patch that "repairs" NaN errors by swapping in the model
	// already in use leaves the source unchanged. Counting that as a KB fix
	// re-runs the identical failing pipeline every attempt, so the τ₂
	// budget is exhausted and the handcrafted fallback fires; the loop must
	// instead treat the no-op as not-fixed and consult the LLM.
	tb := data.NewTable("noop")
	xs := make([]float64, 40)
	ys := make([]string, 40)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = fmt.Sprint(i % 2)
	}
	tb.MustAddColumn(data.NewInt("x", xs))
	tb.MustAddColumn(data.NewString("y", ys))
	tr, te := tb.StratifiedSplit("y", 0.7, 1)
	if data.InjectMissing(tr, "y", 0.3, 1) == 0 {
		t.Fatal("no missing values injected")
	}
	ds := &data.Dataset{Name: "noop", Tables: []*data.Table{tb}, Primary: "noop", Target: "y", Task: data.Binary}
	prof, err := profile.Table(tr, "y", data.Binary, profile.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := prompt.InputFromProfile(prof, 0.5, "")

	r := runner(t, "gemini-1.5-pro", 3)
	path := filepath.Join(t.TempDir(), "kb.json")
	noop := `[{"code":"E_NAN_IN_MATRIX","stmt_op":"train","action":"replace-model","payload":"random_forest"}]`
	if err := os.WriteFile(path, []byte(noop), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.KB.LoadLearned(path); err != nil {
		t.Fatal(err)
	}

	src := "pipeline \"noop\"\ntrain model=random_forest target=\"y\"\n"
	ex := &pipescript.Executor{Target: "y", Task: data.Binary, Seed: 1}
	res := &Result{}
	out, err := r.debugLoop(src, in, prompt.DefaultConfig(), Options{Seed: 1, MaxAttempts: 15}, ex, tr, te, ds, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Handcrafted {
		t.Fatal("no-op KB patch must not exhaust the τ₂ budget")
	}
	if res.Cost.KBFixes != 0 {
		t.Fatalf("no-op patch counted as %d KB fixes", res.Cost.KBFixes)
	}
	if res.Cost.LLMFixes == 0 {
		t.Fatal("the LLM repair should have been consulted")
	}
	if !strings.Contains(out, "impute_all") {
		t.Fatalf("LLM repair missing from fixed pipeline:\n%s", out)
	}
}

func TestCostAccounting(t *testing.T) {
	c := Cost{PromptTokens: 10, CompletionTokens: 5, ErrorPromptTokens: 3, ErrorCompletionTokens: 2}
	if c.Total() != 20 || c.ErrorTokens() != 5 || EstimateCost(c) != 20 {
		t.Fatalf("cost math: %+v", c)
	}
}

func TestDeterministicRuns(t *testing.T) {
	ds := loadDS(t, "Wifi", 1.0)
	a := runner(t, "gemini-1.5-pro", 11)
	b := runner(t, "gemini-1.5-pro", 11)
	ra, err := a.Run(ds, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run(ds, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Pipeline != rb.Pipeline {
		t.Fatal("same seeds must give identical pipelines")
	}
	if ra.Exec.TestAUC != rb.Exec.TestAUC {
		t.Fatal("same seeds must give identical metrics")
	}
}

func TestRelevantColumns(t *testing.T) {
	in := prompt.Input{Cols: []prompt.ColumnMeta{
		{Name: "a", DataType: data.KindString},
		{Name: "b", MissingPct: 10, DataType: data.KindFloat},
		{Name: "c", DataType: data.KindFloat},
	}}
	got := relevantColumns(in, errkb.Classified{Code: pipescript.ErrNaNInMatrix, Msg: `column "b" has NaN`})
	if len(got) != 1 || got[0].Name != "b" {
		// b matches both by name and missing; dedup not required, but it
		// must at least contain b.
		found := false
		for _, c := range got {
			if c.Name == "b" {
				found = true
			}
		}
		if !found {
			t.Fatalf("relevant = %+v", got)
		}
	}
	got = relevantColumns(in, errkb.Classified{Code: pipescript.ErrStringInMatrix, Msg: "no quotes"})
	if len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("string relevant = %+v", got)
	}
}

func TestFirstQuoted(t *testing.T) {
	if firstQuoted(`column "abc" missing`) != "abc" {
		t.Fatal("firstQuoted broken")
	}
	if firstQuoted("no quotes") != "" {
		t.Fatal("no quotes must give empty")
	}
}

func TestVariantNameAndHelpers(t *testing.T) {
	if variantName(Options{Chains: 1}) != "CatDB" || variantName(Options{Chains: 4}) != "CatDB Chain" {
		t.Fatal("variant naming")
	}
	src := HandcraftPipeline(prompt.Input{Dataset: "d", Target: "y"})
	if !strings.Contains(src, "train model=random_forest") {
		t.Fatal("handcraft must train")
	}
}

func TestPolicyEnforcementEndToEnd(t *testing.T) {
	ds := loadDS(t, "Wifi", 1.0)
	r := runner(t, "gemini-1.5-pro", 21)
	res, err := r.Run(ds, Options{Seed: 21, Policy: &pipescript.Policy{
		DisallowedModels: []string{"random_forest"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.ModelName == "random_forest" {
		t.Fatalf("policy violated: trained %s", res.Exec.ModelName)
	}
	// The error loop must have fired at least once to swap the model.
	if res.Cost.Attempts == 0 && !strings.Contains(res.Pipeline, "model=") {
		t.Fatal("expected a policy correction")
	}
}

func TestStaticRepairReducesAttempts(t *testing.T) {
	ds := loadDS(t, "Etailing", 0.8)
	var plainAttempts, repairAttempts int
	for seed := int64(0); seed < 4; seed++ {
		a := runner(t, "llama3.1-70b", 100+seed)
		ra, err := a.Run(ds, Options{Seed: seed, NoRefine: true})
		if err != nil {
			t.Fatal(err)
		}
		plainAttempts += ra.Cost.Attempts
		b := runner(t, "llama3.1-70b", 100+seed)
		rb, err := b.Run(ds, Options{Seed: seed, NoRefine: true, StaticRepair: true})
		if err != nil {
			t.Fatal(err)
		}
		repairAttempts += rb.Cost.Attempts
	}
	if repairAttempts > plainAttempts {
		t.Fatalf("static repair should not increase attempts: %d vs %d", repairAttempts, plainAttempts)
	}
}

func TestChainCostsExceedSingle(t *testing.T) {
	// Figure 12's cost shape: CatDB Chain re-sends context per chunk, so
	// its token total exceeds single-prompt CatDB on the same dataset.
	ds := loadDS(t, "CMC", 0.6)
	single := runner(t, "gpt-4o", 31)
	rs, err := single.Run(ds, Options{Seed: 31, NoRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	chain := runner(t, "gpt-4o", 31)
	rc, err := chain.Run(ds, Options{Seed: 31, Chains: 3, NoRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Cost.PromptTokens <= rs.Cost.PromptTokens {
		t.Fatalf("chain prompt tokens (%d) should exceed single (%d)",
			rc.Cost.PromptTokens, rs.Cost.PromptTokens)
	}
}

func TestHandcraftedFallbackFires(t *testing.T) {
	// With τ₂=1 and a maximally error-prone model, some seeds exhaust the
	// budget; the run must still succeed via the handcrafted pipeline
	// (Table 8's zero-failure guarantee).
	ds := loadDS(t, "CMC", 0.4)
	sawHandcrafted := false
	for seed := int64(0); seed < 8 && !sawHandcrafted; seed++ {
		c, _ := llm.New("llama3.1-70b", 900+seed)
		r := NewRunner(c)
		res, err := r.Run(ds, Options{Seed: seed, MaxAttempts: 1, NoRefine: true})
		if err != nil {
			t.Fatalf("run must never fail: %v", err)
		}
		if res.Handcrafted {
			sawHandcrafted = true
			if res.Exec == nil || res.Exec.TestAUC <= 0 {
				t.Fatal("handcrafted pipeline must still produce metrics")
			}
		}
	}
	if !sawHandcrafted {
		t.Log("no seed exhausted the budget (acceptable; guarantee still tested elsewhere)")
	}
}
