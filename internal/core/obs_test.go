package core

import (
	"io"
	"net/http"
	"reflect"
	"testing"
	"time"

	"catdb/internal/errkb"
	"catdb/internal/llm"
	"catdb/internal/obs"
	"catdb/internal/obs/opsserver"
)

// TestTracedRunBitIdentical pins the observability contract: attaching a
// tracer and metrics registry to a runner must not change anything about
// the run's outcome except the wall-clock duration fields. The
// error-prone llama personality exercises the debug loop (and its
// per-attempt spans and fix counters) on both sides of the comparison.
func TestTracedRunBitIdentical(t *testing.T) {
	ds := loadDS(t, "CMC", 0.5)
	run := func(traced bool) *Result {
		c, err := llm.New("llama3.1-70b", 11)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(c)
		if traced {
			r.Tracer = obs.New()
			r.Metrics = obs.NewRegistry()
		}
		res, err := r.Run(ds, Options{Seed: 11, NoRefine: true})
		if err != nil {
			t.Fatal(err)
		}
		res.ProfileTime, res.RefineTime, res.GenTime, res.ExecTime = 0, 0, 0, 0
		return res
	}
	plain, traced := run(false), run(true)
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("traced run diverged from untraced:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
}

// TestOpsServerRunBitIdentical extends the bit-identity contract to the
// full live ops plane: one arm runs bare, the other runs with tracer,
// metrics, a sampling runtime collector, AND an attached debug HTTP
// server being actively scraped (/metrics, /api/spans,
// /api/critical-path) while the run is in flight. DAG scheduling is on
// in both arms so the executor's dag-wave/dag-node span emission is
// exercised under concurrent snapshots. Everything except wall-clock
// durations must match exactly.
func TestOpsServerRunBitIdentical(t *testing.T) {
	ds := loadDS(t, "CMC", 0.5)
	run := func(ops bool) *Result {
		c, err := llm.New("llama3.1-70b", 11)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(c)
		var cleanup func()
		if ops {
			r.Tracer = obs.New()
			r.Metrics = obs.NewRegistry()
			srv, serr := opsserver.Start("127.0.0.1:0", opsserver.Options{Registry: r.Metrics, Tracer: r.Tracer})
			if serr != nil {
				t.Fatal(serr)
			}
			col := opsserver.NewCollector(r.Metrics)
			col.Start(time.Millisecond)
			stop := make(chan struct{})
			scraped := make(chan struct{})
			go func() {
				defer close(scraped)
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, path := range []string{"/metrics", "/api/spans", "/api/critical-path"} {
						resp, gerr := http.Get(srv.URL() + path)
						if gerr != nil {
							return
						}
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}()
			cleanup = func() {
				close(stop)
				<-scraped
				col.Stop()
				_ = srv.Close()
			}
		}
		res, err := r.Run(ds, Options{Seed: 11, NoRefine: true, DAG: true})
		if cleanup != nil {
			cleanup()
		}
		if err != nil {
			t.Fatal(err)
		}
		res.ProfileTime, res.RefineTime, res.GenTime, res.ExecTime = 0, 0, 0, 0
		return res
	}
	plain, served := run(false), run(true)
	if !reflect.DeepEqual(plain, served) {
		t.Fatalf("run with live ops plane diverged from bare run:\nplain:  %+v\nserved: %+v", plain, served)
	}
}

// TestTracedRunRecordsSpansAndMetrics sanity-checks that an instrumented
// run actually produces a span tree rooted at "run" and the headline
// counters, so the wiring cannot silently regress to all no-ops.
func TestTracedRunRecordsSpansAndMetrics(t *testing.T) {
	ds := loadDS(t, "Wifi", 0.5)
	c, err := llm.New("gemini-1.5-pro", 12)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(c)
	r.Tracer = obs.New()
	r.Metrics = obs.NewRegistry()
	if _, err := r.Run(ds, Options{Seed: 12, NoRefine: true}); err != nil {
		t.Fatal(err)
	}
	spans := r.Tracer.Snapshot()
	if len(spans) == 0 || spans[0].Name != "run" {
		t.Fatalf("want a span tree rooted at run, got %d spans", len(spans))
	}
	names := map[string]bool{}
	for _, s := range spans {
		names[s.Name] = true
	}
	for _, want := range []string{"profile", "prompt-build", "generate", "final-validate", "exec"} {
		if !names[want] {
			t.Errorf("missing %q span in %v", want, names)
		}
	}
	if got := r.Metrics.Counter("catdb_llm_calls_total", "model", "gemini-1.5-pro").Value(); got == 0 {
		t.Error("catdb_llm_calls_total not recorded")
	}
	if got := r.Metrics.Counter("catdb_gen_calls_total", "kind", "pipeline").Value(); got == 0 {
		t.Error("catdb_gen_calls_total{kind=pipeline} not recorded")
	}
	if got := r.Metrics.Histogram("catdb_stage_seconds", obs.DefBuckets, "stage", "exec").Count(); got == 0 {
		t.Error("catdb_stage_seconds{stage=exec} not recorded")
	}
}

// TestDebugLoopTraceFixedSemantics drives the error-prone llama client
// through runs that hit the debug loop and checks the recorded traces
// carry meaningful Fixed values: a fix is only credited when the next
// execution succeeded or surfaced a different error signature, so a
// store full of unconditional Fixed=true can no longer happen.
func TestDebugLoopTraceFixedSemantics(t *testing.T) {
	ds := loadDS(t, "CMC", 0.5)
	c, _ := llm.New("llama3.1-70b", 5)
	r := NewRunner(c)
	r.Traces = errkb.NewTraceStore()
	// Several seeds so traces accumulate (the Table 2 setup).
	for seed := int64(0); seed < 8; seed++ {
		if _, err := r.Run(ds, Options{Seed: seed, NoRefine: true}); err != nil {
			t.Fatal(err)
		}
	}
	if r.Traces.Len() == 0 {
		t.Skip("no error traces produced at these seeds")
	}
	fixed := 0
	for _, tr := range r.Traces.Traces {
		if tr.FixedBy == "" {
			t.Fatalf("trace without FixedBy: %+v", tr)
		}
		if tr.Fixed {
			fixed++
		}
	}
	// Successful runs end their error chains, so at least one trace must
	// be credited as fixed; and with a 42%-fault client not every attempt
	// clears its error, so blanket Fixed=true would be a regression.
	if fixed == 0 {
		t.Fatal("no trace marked fixed across 8 runs that all completed")
	}
	if fixed == len(r.Traces.Traces) && len(r.Traces.Traces) > 3 {
		t.Fatalf("all %d traces marked fixed — Fixed is not being derived from outcomes", fixed)
	}
}
