package data

import (
	"math/rand"
	"testing"

	"catdb/internal/bench/baseline"
)

// The Data* benchmarks measure row subsetting on a 100k×30 table. With
// BENCH_DATA_MODE=deep they run the pre-view O(cells) deep-copy gather
// (the old Column.Select semantics, reimplemented below) so the committed
// BENCH_data.json baseline can be re-captured:
//
//	BENCH_BASELINE=data go test -bench=Data ... | benchjson -set-baseline
//	go test -bench=Data ...                     | benchjson
//
// (BENCH_DATA_MODE=deep remains a supported alias; see
// internal/bench/baseline.)
const (
	benchRows = 100_000
	benchCols = 30
)

func benchDeepMode() bool { return baseline.Lane("data", "BENCH_DATA_MODE", "deep") }

func benchTable() *Table {
	tb := NewTable("bench")
	for c := 0; c < benchCols; c++ {
		if c%5 == 4 {
			vals := make([]string, benchRows)
			for i := range vals {
				vals[i] = string(rune('a' + (i+c)%20))
			}
			tb.MustAddColumn(NewString(colName(c), vals))
			continue
		}
		vals := make([]float64, benchRows)
		for i := range vals {
			vals[i] = float64((i*7 + c) % 1000)
		}
		tb.MustAddColumn(NewNumeric(colName(c), vals))
	}
	tb.Cols[0].SetMissing(10)
	return tb
}

// deepSelectColumn materializes rows of c into fresh dense storage — the
// pre-refactor Column.Select implementation.
func deepSelectColumn(c *Column, rows []int) *Column {
	st := &colStore{missing: make([]bool, len(rows))}
	out := &Column{Name: c.Name, Kind: c.Kind, store: st}
	if c.Kind == KindString {
		st.strs = make([]string, len(rows))
		for i, r := range rows {
			st.strs[i] = c.Str(r)
			st.missing[i] = c.IsMissing(r)
		}
		return out
	}
	st.nums = make([]float64, len(rows))
	for i, r := range rows {
		st.nums[i] = c.Num(r)
		st.missing[i] = c.IsMissing(r)
	}
	return out
}

func deepSelectRows(t *Table, rows []int) *Table {
	out := &Table{Name: t.Name, Cols: make([]*Column, len(t.Cols))}
	for i, c := range t.Cols {
		out.Cols[i] = deepSelectColumn(c, rows)
	}
	return out
}

func deepSplit(t *Table, frac float64, seed int64) (*Table, *Table) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(t.NumRows())
	cut := int(frac * float64(len(perm)))
	if cut < 1 && len(perm) > 0 {
		cut = 1
	}
	return deepSelectRows(t, perm[:cut]), deepSelectRows(t, perm[cut:])
}

func BenchmarkDataSelectRows(b *testing.B) {
	tb := benchTable()
	rows := make([]int, benchRows/2)
	for i := range rows {
		rows[i] = i * 2
	}
	deep := benchDeepMode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if deep {
			_ = deepSelectRows(tb, rows)
		} else {
			_ = tb.SelectRows(rows)
		}
	}
}

func BenchmarkDataSplit(b *testing.B) {
	tb := benchTable()
	deep := benchDeepMode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if deep {
			_, _ = deepSplit(tb, 0.7, 42)
		} else {
			_, _ = tb.Split(0.7, 42)
		}
	}
}

func BenchmarkDataSample(b *testing.B) {
	tb := benchTable()
	deep := benchDeepMode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(7))
		if deep {
			perm := rng.Perm(tb.NumRows())
			_ = deepSelectRows(tb, perm[:50_000])
		} else {
			_ = tb.Sample(50_000, rng)
		}
	}
}

func BenchmarkDataClone(b *testing.B) {
	tb := benchTable()
	deep := benchDeepMode()
	all := make([]int, tb.NumRows())
	for i := range all {
		all[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if deep {
			_ = deepSelectRows(tb, all)
		} else {
			_ = tb.Clone()
		}
	}
}
