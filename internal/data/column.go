// Package data provides the tabular-data substrate for the CatDB
// reproduction: typed columns with missing-value masks, single tables,
// multi-table datasets with relations, CSV serialization, synthetic
// generators for the paper's twenty evaluation datasets, and the
// corruption injectors used by the robustness experiments (Figure 14).
package data

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// Kind is the physical storage type of a column.
type Kind int

// Physical column kinds. Feature types (categorical, list, sentence, ...)
// are a catalog-level notion layered on top of these by internal/profile
// and internal/catalog.
const (
	KindString Kind = iota
	KindInt
	KindFloat
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// IsNumeric reports whether the kind stores numbers (ints, floats, bools).
func (k Kind) IsNumeric() bool { return k == KindInt || k == KindFloat || k == KindBool }

// colStore is the physical cell storage of a column: a float64 slab for
// numeric kinds, a string slab for string columns, and the missing mask
// (which may be shorter than the value slabs; absent entries mean
// present). Several Column views may alias one store: the shared flag is
// set the moment a view is handed out and every mutating accessor
// promotes (copies) a column whose store is shared before writing —
// classic copy-on-write.
type colStore struct {
	nums    []float64
	strs    []string
	missing []bool
	// shared is set (and never cleared) once another Column aliases this
	// store. Atomic so concurrent read-only view creation is race-free.
	shared atomic.Bool
}

// ensureMask grows the missing mask to cover n cells.
func (s *colStore) ensureMask(n int) {
	if len(s.missing) < n {
		m := make([]bool, n)
		copy(m, s.missing)
		s.missing = m
	}
}

// Column is a single named column. Numeric kinds (int, float, bool) store
// values in a float64 slab; string columns store values in a string slab;
// missing cells are masked and their storage slot is zero-valued.
//
// The storage is encapsulated: reads go through Num/Str/IsMissing (or the
// bulk NumsView/StrsView), writes through SetNum/SetStr/SetMissing/
// ClearMissing/Append*. Every mutating accessor bumps the version counter
// that guards the memoized Summary, so — unlike the old exported-slice
// representation — it is impossible to mutate a column without its
// statistics invalidating; the former Touch() contract is gone.
//
// A Column may be a *view*: an index-mapped window onto a store shared
// with other columns. Table.SelectRows/Head/Sample/Split/StratifiedSplit
// and Clone hand these out in O(1) per column; reads map through the
// index, and the first write promotes just that column to private dense
// storage (copy-on-write), leaving the base bytes untouched.
//
// Statistics (Distinct, MissingCount, NumericStats, Quantile, IsConstant)
// are served from the memoized one-pass Summary (see summary.go).
type Column struct {
	Name string
	Kind Kind

	store *colStore
	rows  []int // view row mapping into store; nil = identity over the full store

	// Shard-view state: a shard is a zero-copy window [shardOff,
	// shardOff+shardLen) over a dense owned store, handed out by
	// ShardView for disjoint-range parallel writes. Unlike rows-mapped
	// views a shard writes THROUGH to the base slabs (own is a no-op),
	// so the owner must promote once via BeginShardWrite before fanning
	// out and bump stats once via EndShardWrite after the join.
	shardOff int
	shardLen int
	isShard  bool

	version     atomic.Uint64                // bumped by every mutating accessor
	cache       atomic.Pointer[summaryEntry] // last computed exact Summary, if current
	cacheSketch atomic.Pointer[summaryEntry] // last computed sketch Summary, if current
}

// NewNumeric returns a float column over vals with no missing cells; it
// takes ownership of vals.
func NewNumeric(name string, vals []float64) *Column {
	return &Column{Name: name, Kind: KindFloat, store: &colStore{nums: vals, missing: make([]bool, len(vals))}}
}

// NewInt returns an int column over vals with no missing cells.
func NewInt(name string, vals []float64) *Column {
	return &Column{Name: name, Kind: KindInt, store: &colStore{nums: vals, missing: make([]bool, len(vals))}}
}

// NewString returns a string column over vals with no missing cells; it
// takes ownership of vals.
func NewString(name string, vals []string) *Column {
	return &Column{Name: name, Kind: KindString, store: &colStore{strs: vals, missing: make([]bool, len(vals))}}
}

// NewBool returns a bool column; true is stored as 1, false as 0.
func NewBool(name string, vals []bool) *Column {
	nums := make([]float64, len(vals))
	for i, v := range vals {
		if v {
			nums[i] = 1
		}
	}
	return &Column{Name: name, Kind: KindBool, store: &colStore{nums: nums, missing: make([]bool, len(vals))}}
}

// ensureStore lazily allocates storage for a zero-value column. Only
// mutation and view-creation paths call it; plain reads treat a nil store
// as an empty column.
func (c *Column) ensureStore() *colStore {
	if c.store == nil {
		c.store = &colStore{}
	}
	return c.store
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	if c.isShard {
		return c.shardLen
	}
	if c.rows != nil {
		return len(c.rows)
	}
	if c.store == nil {
		return 0
	}
	if c.Kind == KindString {
		return len(c.store.strs)
	}
	return len(c.store.nums)
}

// at maps a view-relative row index to its storage slot.
func (c *Column) at(i int) int {
	if c.isShard {
		return c.shardOff + i
	}
	if c.rows != nil {
		return c.rows[i]
	}
	return i
}

// Num returns the numeric value at row i (0 when the cell is missing).
func (c *Column) Num(i int) float64 { return c.store.nums[c.at(i)] }

// Str returns the string value at row i ("" when the cell is missing).
func (c *Column) Str(i int) string { return c.store.strs[c.at(i)] }

// IsMissing reports whether row i has no value.
func (c *Column) IsMissing(i int) bool {
	if c.store == nil {
		return false
	}
	j := c.at(i)
	return j < len(c.store.missing) && c.store.missing[j]
}

// own gives the column exclusive dense storage: views gather their mapped
// rows into fresh slabs, shared-dense columns copy theirs. A column that
// already owns its store returns immediately, so steady-state mutation
// costs one boolean load. After own, row index == storage index.
func (c *Column) own() {
	if c.isShard {
		// Shard views write through to the base slabs by contract: the
		// owner promoted once in BeginShardWrite, and shards touch only
		// their disjoint [shardOff, shardOff+shardLen) range.
		return
	}
	st := c.ensureStore()
	if c.rows == nil && !st.shared.Load() {
		return
	}
	n := c.Len()
	ns := &colStore{missing: make([]bool, n)}
	if st.strs != nil {
		ns.strs = make([]string, n)
	}
	if st.nums != nil {
		ns.nums = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		j := c.at(i)
		if ns.strs != nil {
			ns.strs[i] = st.strs[j]
		}
		if ns.nums != nil {
			ns.nums[i] = st.nums[j]
		}
		ns.missing[i] = j < len(st.missing) && st.missing[j]
	}
	c.store, c.rows = ns, nil
}

// touch bumps the mutation version, invalidating the memoized Summary.
func (c *Column) touch() { c.version.Add(1) }

// SetNum writes the numeric value at row i. The missing mask is left
// untouched — pair with ClearMissing when imputing a missing cell.
func (c *Column) SetNum(i int, v float64) {
	c.own()
	c.store.nums[c.at(i)] = v
	c.touch()
}

// SetStr writes the string value at row i. The missing mask is left
// untouched — pair with ClearMissing when imputing a missing cell.
func (c *Column) SetStr(i int, v string) {
	c.own()
	c.store.strs[c.at(i)] = v
	c.touch()
}

// SetMissing marks row i as missing and zeroes its storage slot.
func (c *Column) SetMissing(i int) {
	c.own()
	c.ensureWriteMask()
	j := c.at(i)
	c.store.missing[j] = true
	if c.Kind == KindString {
		c.store.strs[j] = ""
	} else {
		c.store.nums[j] = 0
	}
	c.touch()
}

// ClearMissing marks row i as present without changing its stored value.
func (c *Column) ClearMissing(i int) {
	c.own()
	c.ensureWriteMask()
	c.store.missing[c.at(i)] = false
	c.touch()
}

// ensureWriteMask sizes the missing mask for mask writes through this
// column. Shard views never grow the mask themselves — BeginShardWrite
// pre-sized it over the full base column, so concurrent shards only
// ever write disjoint slots of an already-full-length slice.
func (c *Column) ensureWriteMask() {
	if c.isShard {
		return
	}
	c.store.ensureMask(c.Len())
}

// MissingCount returns the number of missing cells.
func (c *Column) MissingCount() int { return c.Summary().Missing }

// MissingRatio returns the fraction of missing cells in [0,1].
func (c *Column) MissingRatio() float64 {
	if c.Len() == 0 {
		return 0
	}
	return float64(c.MissingCount()) / float64(c.Len())
}

// ValueString renders the value at row i as a string ("" when missing).
func (c *Column) ValueString(i int) string {
	if c.IsMissing(i) {
		return ""
	}
	switch c.Kind {
	case KindString:
		return c.Str(i)
	case KindInt:
		return strconv.FormatInt(int64(c.Num(i)), 10)
	case KindBool:
		if c.Num(i) != 0 {
			return "true"
		}
		return "false"
	default:
		return strconv.FormatFloat(c.Num(i), 'g', -1, 64)
	}
}

// NumsView returns the column's numeric values as a read-only slice:
// dense columns return their live storage (callers must not modify it),
// views gather into a fresh dense slice. Missing cells hold 0. Callers
// that need an owned, mutable copy should copy the result.
func (c *Column) NumsView() []float64 {
	if c.store == nil {
		return nil
	}
	if c.isShard {
		return c.store.nums[c.shardOff : c.shardOff+c.shardLen]
	}
	if c.rows == nil {
		return c.store.nums
	}
	out := make([]float64, len(c.rows))
	for i, r := range c.rows {
		out[i] = c.store.nums[r]
	}
	return out
}

// StrsView returns the column's string values as a read-only slice, under
// the same contract as NumsView.
func (c *Column) StrsView() []string {
	if c.store == nil {
		return nil
	}
	if c.isShard {
		return c.store.strs[c.shardOff : c.shardOff+c.shardLen]
	}
	if c.rows == nil {
		return c.store.strs
	}
	out := make([]string, len(c.rows))
	for i, r := range c.rows {
		out[i] = c.store.strs[r]
	}
	return out
}

// AppendNums appends present (non-missing) numeric values in bulk.
func (c *Column) AppendNums(vals ...float64) {
	c.own()
	c.store.ensureMask(c.Len())
	c.store.nums = append(c.store.nums, vals...)
	c.store.missing = append(c.store.missing, make([]bool, len(vals))...)
	c.touch()
}

// AppendStrs appends present (non-missing) string values in bulk.
func (c *Column) AppendStrs(vals ...string) {
	c.own()
	c.store.ensureMask(c.Len())
	c.store.strs = append(c.store.strs, vals...)
	c.store.missing = append(c.store.missing, make([]bool, len(vals))...)
	c.touch()
}

// Distinct returns the distinct non-missing values rendered as strings,
// sorted ascending for determinism. The slice is the memoized Summary's —
// shared across callers and must not be modified.
func (c *Column) Distinct() []string { return c.Summary().Distinct }

// DistinctCount returns the number of distinct non-missing values.
func (c *Column) DistinctCount() int { return c.Summary().DistinctCount() }

// DistinctRatio returns distinct/non-missing in [0,1] (1 when all unique).
func (c *Column) DistinctRatio() float64 {
	n := c.Len() - c.MissingCount()
	if n == 0 {
		return 0
	}
	return float64(c.DistinctCount()) / float64(n)
}

// Stats summarizes a numeric column. All fields ignore missing cells.
type Stats struct {
	Count  int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	Std    float64
	Q1     float64 // first quartile (robust to outliers)
	Q3     float64 // third quartile
}

// NumericStats returns summary statistics over the non-missing cells of a
// numeric column (memoized; see Summary). It returns a zero Stats for
// string columns or columns with no present values.
func (c *Column) NumericStats() Stats {
	if c.Kind == KindString {
		return Stats{}
	}
	return c.Summary().Stats
}

// quantileSorted interpolates the q-quantile of an ascending slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantile returns the q-quantile (0<=q<=1) of the non-missing values using
// linear interpolation, or NaN for string/empty columns (memoized; the
// sorted value slice is built once per mutation generation).
func (c *Column) Quantile(q float64) float64 {
	if c.Kind == KindString {
		return math.NaN()
	}
	return c.Summary().Quantile(q)
}

// Clone returns an independent copy of the column in O(1): the clone is a
// copy-on-write view sharing the original's storage, and the first write
// to either side promotes the writer to private storage. Observable
// semantics are those of the old deep copy (pinned by the equivalence
// tests in view_test.go), minus the O(cells) allocation.
func (c *Column) Clone() *Column {
	st := c.ensureStore()
	st.shared.Store(true)
	return &Column{Name: c.Name, Kind: c.Kind, store: st, rows: c.rows}
}

// Select returns a view containing only the given row indexes, sharing
// the receiver's storage (copy-on-write on first mutation). The rows
// slice is not retained.
func (c *Column) Select(rows []int) *Column {
	idx := make([]int, len(rows))
	if c.rows != nil {
		for i, r := range rows {
			idx[i] = c.rows[r]
		}
	} else {
		copy(idx, rows)
	}
	return c.viewAt(idx)
}

// viewAt wraps pre-composed storage indexes into a view column. The idx
// slice must already be storage-relative and is retained (views never
// mutate it).
func (c *Column) viewAt(idx []int) *Column {
	st := c.ensureStore()
	st.shared.Store(true)
	return &Column{Name: c.Name, Kind: c.Kind, store: st, rows: idx}
}

// AppendFrom appends row i of src (which must have the same kind) to c.
// Appending promotes a view or shared column to private storage first, so
// growth is never visible through other views of the same store.
func (c *Column) AppendFrom(src *Column, i int) {
	c.own()
	c.store.ensureMask(c.Len())
	if c.Kind == KindString {
		c.store.strs = append(c.store.strs, src.Str(i))
	} else {
		c.store.nums = append(c.store.nums, src.Num(i))
	}
	c.store.missing = append(c.store.missing, src.IsMissing(i))
	c.touch()
}

// AppendMissing appends a missing cell to c.
func (c *Column) AppendMissing() {
	c.own()
	c.store.ensureMask(c.Len())
	if c.Kind == KindString {
		c.store.strs = append(c.store.strs, "")
	} else {
		c.store.nums = append(c.store.nums, 0)
	}
	c.store.missing = append(c.store.missing, true)
	c.touch()
}

// IsConstant reports whether all present values are identical (and at least
// one value is present).
func (c *Column) IsConstant() bool {
	s := c.Summary()
	return s.DistinctCount() == 1 && s.Present() > 0
}

// InferKind guesses the narrowest kind that can represent every non-empty
// string in vals: bool, int, float, then string.
func InferKind(vals []string) Kind {
	isBool, isInt, isFloat := true, true, true
	any := false
	for _, v := range vals {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		any = true
		lv := strings.ToLower(v)
		if lv != "true" && lv != "false" {
			isBool = false
		}
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			isFloat = false
		}
		if !isBool && !isInt && !isFloat {
			return KindString
		}
	}
	if !any {
		return KindString
	}
	switch {
	case isBool:
		return KindBool
	case isInt:
		return KindInt
	case isFloat:
		return KindFloat
	default:
		return KindString
	}
}

// ParseColumn builds a column of the given kind from raw strings; empty or
// unparseable cells become missing.
func ParseColumn(name string, kind Kind, vals []string) *Column {
	st := &colStore{missing: make([]bool, len(vals))}
	c := &Column{Name: name, Kind: kind, store: st}
	if kind == KindString {
		st.strs = make([]string, len(vals))
		for i, v := range vals {
			if strings.TrimSpace(v) == "" {
				st.missing[i] = true
				continue
			}
			st.strs[i] = v
		}
		return c
	}
	st.nums = make([]float64, len(vals))
	for i, v := range vals {
		v = strings.TrimSpace(v)
		if v == "" {
			st.missing[i] = true
			continue
		}
		switch kind {
		case KindBool:
			st.nums[i] = 0
			if strings.EqualFold(v, "true") {
				st.nums[i] = 1
			}
		default:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				st.missing[i] = true
				continue
			}
			st.nums[i] = f
		}
	}
	return c
}
