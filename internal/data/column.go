// Package data provides the tabular-data substrate for the CatDB
// reproduction: typed columns with missing-value masks, single tables,
// multi-table datasets with relations, CSV serialization, synthetic
// generators for the paper's twenty evaluation datasets, and the
// corruption injectors used by the robustness experiments (Figure 14).
package data

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// Kind is the physical storage type of a column.
type Kind int

// Physical column kinds. Feature types (categorical, list, sentence, ...)
// are a catalog-level notion layered on top of these by internal/profile
// and internal/catalog.
const (
	KindString Kind = iota
	KindInt
	KindFloat
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// IsNumeric reports whether the kind stores numbers (ints, floats, bools).
func (k Kind) IsNumeric() bool { return k == KindInt || k == KindFloat || k == KindBool }

// Column is a single named column. Numeric kinds (int, float, bool) store
// values in Nums; string columns store values in Strs. Missing marks cells
// with no value; the corresponding slot in Nums/Strs is zero-valued.
//
// Statistics (Distinct, MissingCount, NumericStats, Quantile, IsConstant)
// are served from a memoized one-pass Summary guarded by a mutation
// version counter. The mutating methods below invalidate it; code writing
// Nums/Strs/Missing directly must call Touch (see summary.go).
type Column struct {
	Name    string
	Kind    Kind
	Nums    []float64
	Strs    []string
	Missing []bool

	version atomic.Uint64                // bumped by Touch on every mutation
	cache   atomic.Pointer[summaryEntry] // last computed Summary, if current
}

// NewNumeric returns a float column over vals with no missing cells.
func NewNumeric(name string, vals []float64) *Column {
	return &Column{Name: name, Kind: KindFloat, Nums: vals, Missing: make([]bool, len(vals))}
}

// NewInt returns an int column over vals with no missing cells.
func NewInt(name string, vals []float64) *Column {
	return &Column{Name: name, Kind: KindInt, Nums: vals, Missing: make([]bool, len(vals))}
}

// NewString returns a string column over vals with no missing cells.
func NewString(name string, vals []string) *Column {
	return &Column{Name: name, Kind: KindString, Strs: vals, Missing: make([]bool, len(vals))}
}

// NewBool returns a bool column; true is stored as 1, false as 0.
func NewBool(name string, vals []bool) *Column {
	nums := make([]float64, len(vals))
	for i, v := range vals {
		if v {
			nums[i] = 1
		}
	}
	return &Column{Name: name, Kind: KindBool, Nums: nums, Missing: make([]bool, len(vals))}
}

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	if c.Kind == KindString {
		return len(c.Strs)
	}
	return len(c.Nums)
}

// IsMissing reports whether row i has no value.
func (c *Column) IsMissing(i int) bool { return len(c.Missing) > i && c.Missing[i] }

// SetMissing marks row i as missing and zeroes its storage slot.
func (c *Column) SetMissing(i int) {
	c.ensureMask()
	c.Missing[i] = true
	if c.Kind == KindString {
		c.Strs[i] = ""
	} else {
		c.Nums[i] = 0
	}
	c.Touch()
}

func (c *Column) ensureMask() {
	if len(c.Missing) < c.Len() {
		m := make([]bool, c.Len())
		copy(m, c.Missing)
		c.Missing = m
	}
}

// MissingCount returns the number of missing cells.
func (c *Column) MissingCount() int { return c.Summary().Missing }

// MissingRatio returns the fraction of missing cells in [0,1].
func (c *Column) MissingRatio() float64 {
	if c.Len() == 0 {
		return 0
	}
	return float64(c.MissingCount()) / float64(c.Len())
}

// ValueString renders the value at row i as a string ("" when missing).
func (c *Column) ValueString(i int) string {
	if c.IsMissing(i) {
		return ""
	}
	switch c.Kind {
	case KindString:
		return c.Strs[i]
	case KindInt:
		return strconv.FormatInt(int64(c.Nums[i]), 10)
	case KindBool:
		if c.Nums[i] != 0 {
			return "true"
		}
		return "false"
	default:
		return strconv.FormatFloat(c.Nums[i], 'g', -1, 64)
	}
}

// Distinct returns the distinct non-missing values rendered as strings,
// sorted ascending for determinism. The slice is the memoized Summary's —
// shared across callers and must not be modified.
func (c *Column) Distinct() []string { return c.Summary().Distinct }

// DistinctCount returns the number of distinct non-missing values.
func (c *Column) DistinctCount() int { return c.Summary().DistinctCount() }

// DistinctRatio returns distinct/non-missing in [0,1] (1 when all unique).
func (c *Column) DistinctRatio() float64 {
	n := c.Len() - c.MissingCount()
	if n == 0 {
		return 0
	}
	return float64(c.DistinctCount()) / float64(n)
}

// Stats summarizes a numeric column. All fields ignore missing cells.
type Stats struct {
	Count  int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	Std    float64
	Q1     float64 // first quartile (robust to outliers)
	Q3     float64 // third quartile
}

// NumericStats returns summary statistics over the non-missing cells of a
// numeric column (memoized; see Summary). It returns a zero Stats for
// string columns or columns with no present values.
func (c *Column) NumericStats() Stats {
	if c.Kind == KindString {
		return Stats{}
	}
	return c.Summary().Stats
}

// quantileSorted interpolates the q-quantile of an ascending slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantile returns the q-quantile (0<=q<=1) of the non-missing values using
// linear interpolation, or NaN for string/empty columns (memoized; the
// sorted value slice is built once per mutation generation).
func (c *Column) Quantile(q float64) float64 {
	if c.Kind == KindString {
		return math.NaN()
	}
	return c.Summary().Quantile(q)
}

// Clone returns a deep copy of the column.
func (c *Column) Clone() *Column {
	cp := &Column{Name: c.Name, Kind: c.Kind}
	if c.Nums != nil {
		cp.Nums = append([]float64(nil), c.Nums...)
	}
	if c.Strs != nil {
		cp.Strs = append([]string(nil), c.Strs...)
	}
	if c.Missing != nil {
		cp.Missing = append([]bool(nil), c.Missing...)
	}
	return cp
}

// Select returns a new column containing only the given row indexes.
func (c *Column) Select(rows []int) *Column {
	out := &Column{Name: c.Name, Kind: c.Kind, Missing: make([]bool, len(rows))}
	if c.Kind == KindString {
		out.Strs = make([]string, len(rows))
		for i, r := range rows {
			out.Strs[i] = c.Strs[r]
			out.Missing[i] = c.IsMissing(r)
		}
		return out
	}
	out.Nums = make([]float64, len(rows))
	for i, r := range rows {
		out.Nums[i] = c.Nums[r]
		out.Missing[i] = c.IsMissing(r)
	}
	return out
}

// AppendFrom appends row i of src (which must have the same kind) to c.
func (c *Column) AppendFrom(src *Column, i int) {
	c.ensureMask()
	if c.Kind == KindString {
		c.Strs = append(c.Strs, src.Strs[i])
	} else {
		c.Nums = append(c.Nums, src.Nums[i])
	}
	c.Missing = append(c.Missing, src.IsMissing(i))
	c.Touch()
}

// AppendMissing appends a missing cell to c.
func (c *Column) AppendMissing() {
	c.ensureMask()
	if c.Kind == KindString {
		c.Strs = append(c.Strs, "")
	} else {
		c.Nums = append(c.Nums, 0)
	}
	c.Missing = append(c.Missing, true)
	c.Touch()
}

// IsConstant reports whether all present values are identical (and at least
// one value is present).
func (c *Column) IsConstant() bool {
	s := c.Summary()
	return s.DistinctCount() == 1 && s.Present() > 0
}

// InferKind guesses the narrowest kind that can represent every non-empty
// string in vals: bool, int, float, then string.
func InferKind(vals []string) Kind {
	isBool, isInt, isFloat := true, true, true
	any := false
	for _, v := range vals {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		any = true
		lv := strings.ToLower(v)
		if lv != "true" && lv != "false" {
			isBool = false
		}
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			isFloat = false
		}
		if !isBool && !isInt && !isFloat {
			return KindString
		}
	}
	if !any {
		return KindString
	}
	switch {
	case isBool:
		return KindBool
	case isInt:
		return KindInt
	case isFloat:
		return KindFloat
	default:
		return KindString
	}
}

// ParseColumn builds a column of the given kind from raw strings; empty or
// unparseable cells become missing.
func ParseColumn(name string, kind Kind, vals []string) *Column {
	c := &Column{Name: name, Kind: kind, Missing: make([]bool, len(vals))}
	if kind == KindString {
		c.Strs = make([]string, len(vals))
		for i, v := range vals {
			if strings.TrimSpace(v) == "" {
				c.Missing[i] = true
				continue
			}
			c.Strs[i] = v
		}
		return c
	}
	c.Nums = make([]float64, len(vals))
	for i, v := range vals {
		v = strings.TrimSpace(v)
		if v == "" {
			c.Missing[i] = true
			continue
		}
		switch kind {
		case KindBool:
			c.Nums[i] = 0
			if strings.EqualFold(v, "true") {
				c.Nums[i] = 1
			}
		default:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				c.Missing[i] = true
				continue
			}
			c.Nums[i] = f
		}
	}
	return c
}
