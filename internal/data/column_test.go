package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{KindString: "string", KindInt: "int", KindFloat: "float", KindBool: "bool"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind formatting broken")
	}
}

func TestKindIsNumeric(t *testing.T) {
	if KindString.IsNumeric() {
		t.Error("string must not be numeric")
	}
	for _, k := range []Kind{KindInt, KindFloat, KindBool} {
		if !k.IsNumeric() {
			t.Errorf("%s must be numeric", k)
		}
	}
}

func TestColumnMissing(t *testing.T) {
	c := NewNumeric("x", []float64{1, 2, 3, 4})
	c.SetMissing(1)
	c.SetMissing(3)
	if got := c.MissingCount(); got != 2 {
		t.Fatalf("MissingCount = %d, want 2", got)
	}
	if got := c.MissingRatio(); got != 0.5 {
		t.Fatalf("MissingRatio = %g, want 0.5", got)
	}
	if !c.IsMissing(1) || c.IsMissing(0) {
		t.Fatal("IsMissing flags wrong")
	}
	if c.Num(1) != 0 {
		t.Fatal("SetMissing must zero the slot")
	}
	if c.ValueString(1) != "" {
		t.Fatal("missing cell must render empty")
	}
}

func TestColumnValueString(t *testing.T) {
	if got := NewInt("i", []float64{42}).ValueString(0); got != "42" {
		t.Errorf("int render = %q", got)
	}
	if got := NewBool("b", []bool{true}).ValueString(0); got != "true" {
		t.Errorf("bool render = %q", got)
	}
	if got := NewNumeric("f", []float64{2.5}).ValueString(0); got != "2.5" {
		t.Errorf("float render = %q", got)
	}
	if got := NewString("s", []string{"hi"}).ValueString(0); got != "hi" {
		t.Errorf("string render = %q", got)
	}
}

func TestDistinct(t *testing.T) {
	c := NewString("s", []string{"b", "a", "b", "c", "a"})
	d := c.Distinct()
	want := []string{"a", "b", "c"}
	if len(d) != len(want) {
		t.Fatalf("Distinct = %v", d)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Distinct = %v, want %v", d, want)
		}
	}
	if c.DistinctCount() != 3 {
		t.Fatal("DistinctCount wrong")
	}
	if got := c.DistinctRatio(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("DistinctRatio = %g, want 0.6", got)
	}
}

func TestNumericStats(t *testing.T) {
	c := NewNumeric("x", []float64{1, 2, 3, 4, 100})
	c.SetMissing(4) // exclude the 100
	s := c.NumericStats()
	if s.Count != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("mean/median = %g/%g", s.Mean, s.Median)
	}
	odd := NewNumeric("y", []float64{5, 1, 3})
	if got := odd.NumericStats().Median; got != 3 {
		t.Fatalf("odd median = %g, want 3", got)
	}
	if got := NewString("s", []string{"a"}).NumericStats(); got.Count != 0 {
		t.Fatal("string stats must be zero")
	}
}

func TestQuantile(t *testing.T) {
	c := NewNumeric("x", []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if got := c.Quantile(0.5); got != 5 {
		t.Fatalf("median quantile = %g", got)
	}
	if got := c.Quantile(0); got != 0 {
		t.Fatalf("q0 = %g", got)
	}
	if got := c.Quantile(1); got != 10 {
		t.Fatalf("q1 = %g", got)
	}
	if got := c.Quantile(0.25); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("q0.25 = %g, want 2.5", got)
	}
	if !math.IsNaN(NewString("s", []string{"a"}).Quantile(0.5)) {
		t.Fatal("string quantile must be NaN")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := NewNumeric("x", []float64{1, 2})
	cp := c.Clone()
	cp.SetNum(0, 99)
	cp.SetMissing(1)
	if c.Num(0) != 1 || c.IsMissing(1) {
		t.Fatal("clone mutation leaked into the original")
	}
	if cp.Num(0) != 99 || !cp.IsMissing(1) {
		t.Fatal("clone lost its own mutations")
	}
	// And the reverse direction: mutating the original must not show
	// through an untouched clone.
	cp2 := c.Clone()
	c.SetNum(1, -5)
	if cp2.Num(1) == -5 {
		t.Fatal("original mutation leaked into the clone")
	}
}

func TestSelect(t *testing.T) {
	c := NewString("s", []string{"a", "b", "c", "d"})
	c.SetMissing(2)
	sel := c.Select([]int{3, 2, 0})
	if sel.Str(0) != "d" || sel.Str(2) != "a" {
		t.Fatalf("Select values wrong: %v", sel.StrsView())
	}
	if !sel.IsMissing(1) {
		t.Fatal("Select must carry missing mask")
	}
}

func TestAppendFromAndMissing(t *testing.T) {
	src := NewNumeric("x", []float64{7, 8})
	src.SetMissing(1)
	dst := NewNumeric("x", nil)
	dst.AppendFrom(src, 0)
	dst.AppendFrom(src, 1)
	dst.AppendMissing()
	if dst.Len() != 3 || dst.Num(0) != 7 {
		t.Fatalf("append result: %+v", dst)
	}
	if !dst.IsMissing(1) || !dst.IsMissing(2) {
		t.Fatal("missing propagation broken")
	}
}

func TestIsConstant(t *testing.T) {
	c := NewString("s", []string{"x", "x", "x"})
	if !c.IsConstant() {
		t.Fatal("constant column not detected")
	}
	c.SetStr(1, "y") // setter invalidates the memoized summary automatically
	if c.IsConstant() {
		t.Fatal("non-constant reported constant")
	}
	empty := NewString("e", nil)
	if empty.IsConstant() {
		t.Fatal("empty column must not be constant")
	}
	allMissing := NewString("m", []string{"a"})
	allMissing.SetMissing(0)
	if allMissing.IsConstant() {
		t.Fatal("all-missing column must not be constant")
	}
}

func TestInferKind(t *testing.T) {
	cases := []struct {
		vals []string
		want Kind
	}{
		{[]string{"1", "2", ""}, KindInt},
		{[]string{"1.5", "2"}, KindFloat},
		{[]string{"true", "FALSE"}, KindBool},
		{[]string{"1", "x"}, KindString},
		{[]string{"", ""}, KindString},
	}
	for _, tc := range cases {
		if got := InferKind(tc.vals); got != tc.want {
			t.Errorf("InferKind(%v) = %s, want %s", tc.vals, got, tc.want)
		}
	}
}

func TestParseColumn(t *testing.T) {
	c := ParseColumn("x", KindFloat, []string{"1.5", "", "bogus", "3"})
	if c.Num(0) != 1.5 || c.Num(3) != 3 {
		t.Fatalf("parsed: %v", c.NumsView())
	}
	if !c.IsMissing(1) || !c.IsMissing(2) {
		t.Fatal("empty/bogus must be missing")
	}
	b := ParseColumn("b", KindBool, []string{"true", "false", "TRUE"})
	if b.Num(0) != 1 || b.Num(1) != 0 || b.Num(2) != 1 {
		t.Fatalf("bool parse: %v", b.NumsView())
	}
	s := ParseColumn("s", KindString, []string{"a", " "})
	if s.Str(0) != "a" || !s.IsMissing(1) {
		t.Fatal("string parse broken")
	}
}

// Property: quantile is monotone in q for any numeric column.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		qa, qb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		c := NewNumeric("x", vals)
		return c.Quantile(qa) <= c.Quantile(qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Select(identity permutation) preserves values and mask.
func TestSelectIdentityProperty(t *testing.T) {
	f := func(vals []float64) bool {
		c := NewNumeric("x", vals)
		for i := range vals {
			if i%3 == 0 {
				c.SetMissing(i)
			}
		}
		rows := make([]int, len(vals))
		for i := range rows {
			rows[i] = i
		}
		sel := c.Select(rows)
		for i := range vals {
			if sel.IsMissing(i) != c.IsMissing(i) {
				return false
			}
			if !c.IsMissing(i) && sel.Num(i) != c.Num(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
