package data

import (
	"math/rand"
)

// InjectOutliers corrupts the given ratio of numeric feature cells (never
// the target) with extreme values, as in the Figure 14 robustness study.
// It modifies the table in place and returns the number of corrupted cells.
func InjectOutliers(t *Table, target string, ratio float64, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	n := 0
	for _, c := range t.Cols {
		if c.Name == target || !c.Kind.IsNumeric() {
			continue
		}
		st := c.NumericStats()
		span := st.Max - st.Min
		if span == 0 {
			span = 1
		}
		for i := 0; i < c.Len(); i++ {
			if c.IsMissing(i) || rng.Float64() >= ratio {
				continue
			}
			sign := 1.0
			if rng.Float64() < 0.5 {
				sign = -1
			}
			c.SetNum(i, st.Mean+sign*span*(10+rng.Float64()*40))
			n++
		}
	}
	return n
}

// InjectTargetOutliers corrupts the given ratio of a numeric target
// column's cells with extreme values (regression label corruption; the
// classification targets of Figure 14 are strings and unaffected by
// outliers). It returns the number of corrupted cells.
func InjectTargetOutliers(t *Table, target string, ratio float64, seed int64) int {
	c := t.Col(target)
	if c == nil || !c.Kind.IsNumeric() {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	st := c.NumericStats()
	span := st.Max - st.Min
	if span == 0 {
		span = 1
	}
	n := 0
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) || rng.Float64() >= ratio {
			continue
		}
		sign := 1.0
		if rng.Float64() < 0.5 {
			sign = -1
		}
		c.SetNum(i, st.Mean+sign*span*(10+rng.Float64()*40))
		n++
	}
	return n
}

// InjectMissing blanks out the given ratio of feature cells (never the
// target). It modifies the table in place and returns the number of cells
// blanked.
func InjectMissing(t *Table, target string, ratio float64, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	n := 0
	for _, c := range t.Cols {
		if c.Name == target {
			continue
		}
		for i := 0; i < c.Len(); i++ {
			if c.IsMissing(i) || rng.Float64() >= ratio {
				continue
			}
			c.SetMissing(i)
			n++
		}
	}
	return n
}

// InjectMixed applies half the ratio as outliers and half as missing cells,
// reproducing the "mixed errors" condition of Figure 14(c,f).
func InjectMixed(t *Table, target string, ratio float64, seed int64) int {
	n := InjectOutliers(t, target, ratio/2, seed)
	n += InjectMissing(t, target, ratio/2, seed+1)
	return n
}
