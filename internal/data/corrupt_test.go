package data

import (
	"math"
	"testing"
)

func corruptTable() *Table {
	n := 1000
	x := make([]float64, n)
	s := make([]string, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i%50) + 1
		s[i] = "v"
		y[i] = float64(i)
	}
	t := NewTable("c")
	t.MustAddColumn(NewNumeric("x", x))
	t.MustAddColumn(NewString("s", s))
	t.MustAddColumn(NewNumeric("y", y))
	return t
}

func TestInjectOutliers(t *testing.T) {
	tb := corruptTable()
	origMax := tb.Col("x").NumericStats().Max
	n := InjectOutliers(tb, "y", 0.05, 1)
	if n == 0 {
		t.Fatal("no outliers injected")
	}
	if got := tb.Col("x").NumericStats().Max; got <= origMax*2 {
		t.Fatalf("max after injection = %g, want extreme", got)
	}
	// Target untouched.
	for i := 0; i < tb.NumRows(); i++ {
		if tb.Col("y").Num(i) != float64(i) {
			t.Fatal("target corrupted")
		}
	}
	// Ratio roughly honored (x column only, ±50%).
	want := float64(tb.NumRows()) * 0.05
	if math.Abs(float64(n)-want) > want {
		t.Fatalf("injected %d, expected ≈%g", n, want)
	}
}

func TestInjectMissing(t *testing.T) {
	tb := corruptTable()
	n := InjectMissing(tb, "y", 0.1, 2)
	if n == 0 {
		t.Fatal("nothing blanked")
	}
	if tb.Col("y").MissingCount() != 0 {
		t.Fatal("target must never be blanked")
	}
	if tb.Col("x").MissingCount()+tb.Col("s").MissingCount() != n {
		t.Fatal("count mismatch")
	}
}

func TestInjectMixed(t *testing.T) {
	tb := corruptTable()
	n := InjectMixed(tb, "y", 0.1, 3)
	if n == 0 {
		t.Fatal("mixed injection did nothing")
	}
	if tb.Col("x").MissingCount() == 0 && tb.Col("s").MissingCount() == 0 {
		t.Fatal("mixed should blank some cells")
	}
}

func TestInjectZeroRatio(t *testing.T) {
	tb := corruptTable()
	if InjectOutliers(tb, "y", 0, 1) != 0 || InjectMissing(tb, "y", 0, 1) != 0 {
		t.Fatal("zero ratio must inject nothing")
	}
}
