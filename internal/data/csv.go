package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// WriteCSV writes the table as CSV with a header row. Missing cells are
// written as empty strings.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return fmt.Errorf("data: write csv header: %w", err)
	}
	row := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for c, col := range t.Cols {
			row[c] = col.ValueString(r)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: write csv row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to path, creating or truncating it.
func WriteCSVFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	if err := WriteCSV(f, t); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSV parses a CSV stream with a header row into a table, inferring the
// narrowest kind per column (bool, int, float, string). Empty cells become
// missing values. It is ReadCSVOptions under the default ingest options
// (parallel chunked parse); output is identical to the historical serial
// reader.
func ReadCSV(r io.Reader, name string) (*Table, error) {
	return ReadCSVOptions(r, name, IngestOptions{})
}

// ReadCSVOptions is ReadCSV with explicit ingest tuning. The stream is
// slurped once, split into record-aligned byte chunks, and parsed
// concurrently straight into preallocated typed columns; any input the
// chunked path cannot handle re-parses through the legacy serial reader,
// so results and errors never depend on Workers or ChunkBytes.
func ReadCSVOptions(r io.Reader, name string, opts IngestOptions) (*Table, error) {
	buf, err := slurp(r)
	if err != nil {
		return nil, fmt.Errorf("data: read csv %q: %w", name, err)
	}
	return parseCSVBytes(buf, name, opts)
}

// slurp reads r to EOF. When the reader knows its remaining size
// (bytes.Reader, strings.Reader, bytes.Buffer all expose Len) the
// destination is allocated once up front; io.ReadAll's append-growth
// would otherwise cumulatively allocate several times the input size on
// large tables.
func slurp(r io.Reader) ([]byte, error) {
	if l, ok := r.(interface{ Len() int }); ok {
		buf := make([]byte, l.Len())
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		// Guard against readers that grow after Len (e.g. a Buffer being
		// written concurrently is unsupported, but a short final read is
		// cheap to confirm).
		rest, err := io.ReadAll(r)
		if err != nil {
			return nil, err
		}
		return append(buf, rest...), nil
	}
	return io.ReadAll(r)
}

// readCSVLegacy is the historical ReadAll-based serial reader. It is the
// semantic reference: the chunked path falls back to it on any parse
// trouble, and the equivalence tests pin the chunked output against it.
func readCSVLegacy(r io.Reader, name string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("data: read csv %q: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("data: read csv %q: empty input", name)
	}
	header := records[0]
	body := records[1:]
	t := NewTable(name)
	for ci, colName := range header {
		raw := make([]string, len(body))
		for ri, rec := range body {
			if ci < len(rec) {
				raw[ri] = rec[ci]
			}
		}
		kind := InferKind(raw)
		if err := t.AddColumn(ParseColumn(colName, kind, raw)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReadCSVFile reads the CSV file at path into a table named after the file.
func ReadCSVFile(path string) (*Table, error) {
	return ReadCSVFileOptions(path, IngestOptions{})
}

// ReadCSVFileOptions is ReadCSVFile with explicit ingest tuning.
func ReadCSVFileOptions(path string, opts IngestOptions) (*Table, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	return parseCSVBytes(buf, path, opts)
}
