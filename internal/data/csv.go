package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// WriteCSV writes the table as CSV with a header row. Missing cells are
// written as empty strings.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return fmt.Errorf("data: write csv header: %w", err)
	}
	row := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for c, col := range t.Cols {
			row[c] = col.ValueString(r)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: write csv row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table to path, creating or truncating it.
func WriteCSVFile(path string, t *Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	if err := WriteCSV(f, t); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSV parses a CSV stream with a header row into a table, inferring the
// narrowest kind per column (bool, int, float, string). Empty cells become
// missing values.
func ReadCSV(r io.Reader, name string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("data: read csv %q: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("data: read csv %q: empty input", name)
	}
	header := records[0]
	body := records[1:]
	t := NewTable(name)
	for ci, colName := range header {
		raw := make([]string, len(body))
		for ri, rec := range body {
			if ci < len(rec) {
				raw[ri] = rec[ci]
			}
		}
		kind := InferKind(raw)
		if err := t.AddColumn(ParseColumn(colName, kind, raw)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReadCSVFile reads the CSV file at path into a table named after the file.
func ReadCSVFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	return ReadCSV(f, path)
}
