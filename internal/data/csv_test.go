package data

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestCSVRoundTrip(t *testing.T) {
	tb := NewTable("rt")
	tb.MustAddColumn(NewNumeric("f", []float64{1.5, 2.25, 0}))
	tb.MustAddColumn(NewInt("i", []float64{10, -3, 0}))
	tb.MustAddColumn(NewString("s", []string{"a", "b,c", `quo"te`}))
	tb.MustAddColumn(NewBool("b", []bool{true, false, true}))
	tb.Col("f").SetMissing(2)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 || back.NumCols() != 4 {
		t.Fatalf("shape %dx%d", back.NumRows(), back.NumCols())
	}
	if back.Col("f").Kind != KindFloat || back.Col("i").Kind != KindInt ||
		back.Col("s").Kind != KindString || back.Col("b").Kind != KindBool {
		t.Fatalf("kinds: %v %v %v %v", back.Col("f").Kind, back.Col("i").Kind, back.Col("s").Kind, back.Col("b").Kind)
	}
	if !back.Col("f").IsMissing(2) {
		t.Fatal("missing cell lost in round trip")
	}
	if back.Col("s").Str(1) != "b,c" {
		t.Fatal("quoted comma lost")
	}
}

func TestCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	tb := NewTable("t")
	tb.MustAddColumn(NewNumeric("x", []float64{1, 2}))
	if err := WriteCSVFile(path, tb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 {
		t.Fatal("rows lost")
	}
	if _, err := ReadCSVFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "x"); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1"), "x"); err == nil {
		t.Fatal("ragged csv must error")
	}
}

// Property: numeric CSV round trip preserves finite values.
func TestCSVNumericRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round(rng.NormFloat64()*1e6) / 1e3
		}
		tb := NewTable("p")
		tb.MustAddColumn(NewNumeric("v", vals))
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tb); err != nil {
			return false
		}
		back, err := ReadCSV(&buf, "p")
		if err != nil {
			return false
		}
		c := back.Col("v")
		for i := range vals {
			if math.Abs(c.Num(i)-vals[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
