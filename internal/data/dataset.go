package data

import (
	"fmt"
)

// Task is the supervised ML task type of a dataset.
type Task int

// Supported task types, matching Table 3 of the paper.
const (
	Binary Task = iota
	Multiclass
	Regression
)

// String returns the human-readable task name.
func (t Task) String() string {
	switch t {
	case Binary:
		return "binary"
	case Multiclass:
		return "multiclass"
	case Regression:
		return "regression"
	default:
		return fmt.Sprintf("task(%d)", int(t))
	}
}

// IsClassification reports whether the task predicts a categorical label.
func (t Task) IsClassification() bool { return t == Binary || t == Multiclass }

// Relation is a foreign-key edge between two tables of a dataset.
type Relation struct {
	LeftTable  string // fact-side table
	LeftCol    string // foreign key column in LeftTable
	RightTable string // dimension-side table
	RightCol   string // primary key column in RightTable
}

// Dataset is a (possibly multi-table) dataset with a designated primary
// table, target column, and task type.
type Dataset struct {
	Name      string
	Tables    []*Table
	Relations []Relation
	Primary   string // name of the primary (fact) table
	Target    string // target column (lives in the primary table or joined result)
	Task      Task
	// Description is the optional human-written summary some baselines
	// (AIDE, AutoGen) rely on instead of a data catalog.
	Description string
}

// Table returns the named table, or nil.
func (d *Dataset) Table(name string) *Table {
	for _, t := range d.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// PrimaryTable returns the primary table (or the single table when only one
// exists), or nil when absent.
func (d *Dataset) PrimaryTable() *Table {
	if d.Primary == "" && len(d.Tables) == 1 {
		return d.Tables[0]
	}
	return d.Table(d.Primary)
}

// NumTables returns the table count.
func (d *Dataset) NumTables() int { return len(d.Tables) }

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Name: d.Name, Primary: d.Primary, Target: d.Target, Task: d.Task, Description: d.Description}
	out.Relations = append([]Relation(nil), d.Relations...)
	for _, t := range d.Tables {
		out.Tables = append(out.Tables, t.Clone())
	}
	return out
}

// Validate checks structural invariants: primary table exists, target column
// exists in the primary table, relations reference existing tables/columns.
func (d *Dataset) Validate() error {
	pt := d.PrimaryTable()
	if pt == nil {
		return fmt.Errorf("data: dataset %q has no primary table", d.Name)
	}
	if d.Target != "" && pt.Col(d.Target) == nil {
		return fmt.Errorf("data: dataset %q target column %q not in primary table", d.Name, d.Target)
	}
	for _, r := range d.Relations {
		lt, rt := d.Table(r.LeftTable), d.Table(r.RightTable)
		if lt == nil || rt == nil {
			return fmt.Errorf("data: dataset %q relation references missing table (%s→%s)", d.Name, r.LeftTable, r.RightTable)
		}
		if lt.Col(r.LeftCol) == nil {
			return fmt.Errorf("data: dataset %q relation column %s.%s missing", d.Name, r.LeftTable, r.LeftCol)
		}
		if rt.Col(r.RightCol) == nil {
			return fmt.Errorf("data: dataset %q relation column %s.%s missing", d.Name, r.RightTable, r.RightCol)
		}
	}
	return nil
}

// Consolidate materializes a multi-table dataset into a single table by
// left-joining every dimension table into the primary table along the
// declared relations (the "join multi-table datasets into a single table"
// step of §3.2). Joined columns are prefixed with "<table>_" to avoid name
// clashes; key columns of dimension tables are not duplicated. Single-table
// datasets are returned as a clone of the primary table.
func (d *Dataset) Consolidate() (*Table, error) {
	pt := d.PrimaryTable()
	if pt == nil {
		return nil, fmt.Errorf("data: dataset %q has no primary table", d.Name)
	}
	out := pt.Clone()
	for _, r := range d.Relations {
		if r.LeftTable != pt.Name {
			// Chained relations (dimension of a dimension) are resolved
			// against the running join result when the FK was pulled in.
			if out.Col(r.LeftTable+"_"+r.LeftCol) == nil && out.Col(r.LeftCol) == nil {
				continue
			}
		}
		dim := d.Table(r.RightTable)
		if dim == nil {
			return nil, fmt.Errorf("data: dataset %q: relation to missing table %q", d.Name, r.RightTable)
		}
		fkName := r.LeftCol
		if out.Col(fkName) == nil {
			fkName = r.LeftTable + "_" + r.LeftCol
			if out.Col(fkName) == nil {
				continue
			}
		}
		if err := leftJoin(out, fkName, dim, r.RightCol); err != nil {
			return nil, fmt.Errorf("data: dataset %q: %w", d.Name, err)
		}
	}
	out.Name = d.Name
	return out, nil
}

// leftJoin joins dim into fact on fact[fk] == dim[pk], appending every
// non-key dim column as "<dim>_<col>"; unmatched rows get missing cells.
func leftJoin(fact *Table, fk string, dim *Table, pk string) error {
	fkCol := fact.Col(fk)
	pkCol := dim.Col(pk)
	if fkCol == nil {
		return fmt.Errorf("join: fact key %q missing", fk)
	}
	if pkCol == nil {
		return fmt.Errorf("join: dim key %q missing in %q", pk, dim.Name)
	}
	index := make(map[string]int, pkCol.Len())
	for i := 0; i < pkCol.Len(); i++ {
		if !pkCol.IsMissing(i) {
			index[pkCol.ValueString(i)] = i
		}
	}
	for _, dc := range dim.Cols {
		if dc.Name == pk {
			continue
		}
		name := dim.Name + "_" + dc.Name
		if fact.Col(name) != nil {
			continue // already joined
		}
		nc := &Column{Name: name, Kind: dc.Kind}
		for i := 0; i < fkCol.Len(); i++ {
			if fkCol.IsMissing(i) {
				nc.AppendMissing()
				continue
			}
			j, ok := index[fkCol.ValueString(i)]
			if !ok {
				nc.AppendMissing()
				continue
			}
			nc.AppendFrom(dc, j)
		}
		if err := fact.AddColumn(nc); err != nil {
			return err
		}
	}
	return nil
}
