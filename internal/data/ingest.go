package data

import (
	"bytes"
	"encoding/csv"
	"errors"
	"io"
	"strconv"
	"strings"

	"catdb/internal/pool"
)

// IngestOptions tunes the chunked CSV reader. The zero value is the
// recommended configuration: parallel parse over GOMAXPROCS workers with
// 4 MiB chunks.
type IngestOptions struct {
	// Workers bounds the chunk-parse fan-out: 0 means GOMAXPROCS, 1 forces
	// the serial streaming path (same chunking, one goroutine) — the
	// pool-wide convention.
	Workers int
	// ChunkBytes is the target chunk size in bytes; chunks are extended to
	// the next record boundary so no record straddles two chunks. 0 means
	// defaultChunkBytes. Output is identical at any chunk size.
	ChunkBytes int
}

const (
	// defaultChunkBytes balances scheduling overhead against parse
	// locality; at 4 MiB a 1M-row table yields enough chunks to keep a
	// many-core box busy without flooding the pool.
	defaultChunkBytes = 4 << 20
	// sniffRecords is how many leading records the mode sniffer inspects
	// to pick per-column storage (numeric slab vs string slab) before the
	// parallel parse commits cells directly into preallocated columns.
	sniffRecords = 512
)

// errIngestShape signals that a chunk parsed to a different record count
// than the boundary scanner predicted. It is never surfaced: any chunked
// failure re-parses through the legacy serial reader, which either
// succeeds (scanner limitation) or reproduces the canonical error.
var errIngestShape = errors.New("data: ingest chunk shape mismatch")

// chunkSpan is a byte range of the input holding whole CSV records:
// records complete records starting at global body row rowOff.
type chunkSpan struct {
	start, end int
	records    int
	rowOff     int
}

// scanCSVChunks walks the buffer once with a quote-state toggle and
// returns the header record's span plus record-aligned body chunks of
// roughly chunkBytes each. The scanner mirrors encoding/csv's framing
// rules: newlines inside quoted fields do not terminate records, doubled
// quotes stay inside the quoted state's net effect, and lines that are
// empty ("" or a bare "\r" from a CRLF ending) produce no record. Inputs
// that desynchronize the toggle (bare quotes in unquoted fields) are
// exactly the inputs encoding/csv rejects, so the downstream chunk parse
// fails and ingest falls back to the legacy reader.
func scanCSVChunks(buf []byte, chunkBytes int) (header chunkSpan, spans []chunkSpan, totalBody int) {
	inQuotes := false
	headerDone := false
	recStart := 0
	chunkStart := 0
	recs := 0
	rowOff := 0

	endRecord := func(end int) {
		if !headerDone {
			headerDone = true
			header = chunkSpan{start: 0, end: end, records: 1}
			chunkStart = end
			return
		}
		recs++
	}
	closeChunk := func(end int) {
		spans = append(spans, chunkSpan{start: chunkStart, end: end, records: recs, rowOff: rowOff})
		rowOff += recs
		chunkStart = end
		recs = 0
	}

	n := len(buf)
	for i := 0; i < n; i++ {
		c := buf[i]
		if inQuotes {
			if c == '"' {
				inQuotes = false
			}
			continue
		}
		switch c {
		case '"':
			inQuotes = true
		case '\n':
			seg := buf[recStart:i]
			if !(len(seg) == 0 || (len(seg) == 1 && seg[0] == '\r')) {
				endRecord(i + 1)
			}
			recStart = i + 1
			if headerDone && recs > 0 && i+1-chunkStart >= chunkBytes {
				closeChunk(i + 1)
			}
		}
	}
	if recStart < n {
		// Any unterminated tail is a record (or a parse error) to
		// encoding/csv — only complete "\r\n" / "\n" lines are skipped as
		// empty, and those were handled at their '\n'.
		endRecord(n)
	}
	if headerDone && chunkStart < n && (recs > 0 || len(spans) == 0) {
		closeChunk(n)
	}
	for _, sp := range spans {
		totalBody += sp.records
	}
	return header, spans, totalBody
}

// colMode is the storage the sniffer commits a column to before the
// parallel parse: numeric and bool columns go straight into float slabs,
// string columns into string slabs. modeStrFlag is the undecided case
// (no non-missing value in the sniff window): cells land in the string
// slab and full kind flags are tracked so a numeric column can still be
// recovered without re-reading the file.
type colMode uint8

const (
	modeNum colMode = iota
	modeBool
	modeStr
	modeStrFlag
)

// kindFlags is InferKind's per-value state in mergeable form: each flag
// is an AND across values, any an OR, so per-chunk flags merge
// commutatively into exactly the verdict a whole-column InferKind pass
// would reach.
type kindFlags struct {
	isBool, isInt, isFloat, any bool
}

func newKindFlags() kindFlags { return kindFlags{isBool: true, isInt: true, isFloat: true} }

// observe folds one trimmed non-missing value into the flags, mirroring
// the InferKind loop body.
func (f *kindFlags) observe(v string) {
	f.any = true
	if f.isBool {
		lv := strings.ToLower(v)
		if lv != "true" && lv != "false" {
			f.isBool = false
		}
	}
	if f.isInt {
		if _, err := strconv.ParseInt(v, 10, 64); err != nil {
			f.isInt = false
		}
	}
	if f.isFloat {
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			f.isFloat = false
		}
	}
}

func (f *kindFlags) merge(o kindFlags) {
	f.isBool = f.isBool && o.isBool
	f.isInt = f.isInt && o.isInt
	f.isFloat = f.isFloat && o.isFloat
	f.any = f.any || o.any
}

// kind resolves merged flags with InferKind's precedence.
func (f kindFlags) kind() Kind {
	if !f.any {
		return KindString
	}
	switch {
	case f.isBool:
		return KindBool
	case f.isInt:
		return KindInt
	case f.isFloat:
		return KindFloat
	default:
		return KindString
	}
}

// sniffModes parses up to sniffRecords leading body records and assigns
// each column a storage mode from the evidence so far. A wrong guess is
// never wrong output — only wasted work: the merged full-table flags
// decide the final kind, and columns whose slab can't serve that kind
// are re-read in a second pass.
func sniffModes(buf []byte, ncols int, spans []chunkSpan) []colMode {
	flags := make([]kindFlags, ncols)
	for i := range flags {
		flags[i] = newKindFlags()
	}
	if len(spans) > 0 {
		cr := csv.NewReader(bytes.NewReader(buf[spans[0].start:]))
		cr.ReuseRecord = true
		cr.FieldsPerRecord = ncols
		for seen := 0; seen < sniffRecords; seen++ {
			rec, err := cr.Read()
			if err != nil {
				break
			}
			for col, v := range rec {
				if t := strings.TrimSpace(v); t != "" {
					flags[col].observe(t)
				}
			}
		}
	}
	modes := make([]colMode, ncols)
	for col, f := range flags {
		switch {
		case !f.any:
			modes[col] = modeStrFlag
		case f.isBool:
			modes[col] = modeBool
		case f.isInt || f.isFloat:
			modes[col] = modeNum
		default:
			modes[col] = modeStr
		}
	}
	return modes
}

// ingestJob carries the shared state of one chunked parse: every chunk
// writes cells into disjoint row ranges of the same preallocated slabs
// (no per-chunk builders, no reassembly copy) and deposits its kind
// flags at its own index.
type ingestJob struct {
	buf   []byte
	ncols int
	modes []colMode
	spans []chunkSpan
	nums  [][]float64
	strs  [][]string
	miss  [][]bool
	flags [][]kindFlags
}

func newIngestJob(buf []byte, ncols int, modes []colMode, spans []chunkSpan, rows int) *ingestJob {
	j := &ingestJob{
		buf:   buf,
		ncols: ncols,
		modes: modes,
		spans: spans,
		nums:  make([][]float64, ncols),
		strs:  make([][]string, ncols),
		miss:  make([][]bool, ncols),
		flags: make([][]kindFlags, len(spans)),
	}
	for col := 0; col < ncols; col++ {
		j.miss[col] = make([]bool, rows)
		switch modes[col] {
		case modeNum, modeBool:
			j.nums[col] = make([]float64, rows)
		default:
			j.strs[col] = make([]string, rows)
		}
	}
	return j
}

// parseChunk parses one chunk with encoding/csv (ReuseRecord: the field
// strings it yields are substrings of a fresh per-record allocation, so
// retaining them in the string slab is safe) and writes cells straight
// into the job's slabs at the chunk's row offsets.
func (j *ingestJob) parseChunk(ci int) error {
	sp := j.spans[ci]
	cr := csv.NewReader(bytes.NewReader(j.buf[sp.start:sp.end]))
	cr.ReuseRecord = true
	cr.FieldsPerRecord = j.ncols
	fl := make([]kindFlags, j.ncols)
	for i := range fl {
		fl[i] = newKindFlags()
	}
	j.flags[ci] = fl

	row := sp.rowOff
	end := sp.rowOff + sp.records
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if row >= end {
			return errIngestShape
		}
		for col, v := range rec {
			t := strings.TrimSpace(v)
			if t == "" {
				j.miss[col][row] = true
				continue
			}
			switch j.modes[col] {
			case modeNum:
				f := &fl[col]
				f.any = true
				if f.isBool {
					lv := strings.ToLower(t)
					if lv != "true" && lv != "false" {
						f.isBool = false
					}
				}
				if f.isInt {
					if _, err := strconv.ParseInt(t, 10, 64); err != nil {
						f.isInt = false
					}
				}
				if f.isFloat {
					x, err := strconv.ParseFloat(t, 64)
					if err != nil {
						f.isFloat = false
					} else {
						j.nums[col][row] = x
					}
				}
			case modeBool:
				f := &fl[col]
				f.any = true
				if f.isInt {
					if _, err := strconv.ParseInt(t, 10, 64); err != nil {
						f.isInt = false
					}
				}
				if f.isFloat {
					if _, err := strconv.ParseFloat(t, 64); err != nil {
						f.isFloat = false
					}
				}
				lv := strings.ToLower(t)
				switch lv {
				case "true":
					j.nums[col][row] = 1
				case "false":
					// zero value already in place
				default:
					f.isBool = false
				}
			case modeStr:
				j.strs[col][row] = v
			case modeStrFlag:
				fl[col].observe(t)
				j.strs[col][row] = v
			}
		}
		row++
	}
	if row != end {
		return errIngestShape
	}
	return nil
}

// rereadColumns runs a second parallel pass collecting the raw strings of
// the columns whose sniffed slab cannot serve their final kind (e.g. a
// column that looked numeric for the whole sniff window but holds strings
// later on). Only the listed columns allocate.
func (j *ingestJob) rereadColumns(workers int, cols []int, rows int) ([][]string, error) {
	raws := make([][]string, j.ncols)
	for _, col := range cols {
		raws[col] = make([]string, rows)
	}
	err := pool.Each(workers, len(j.spans), func(ci int) error {
		sp := j.spans[ci]
		cr := csv.NewReader(bytes.NewReader(j.buf[sp.start:sp.end]))
		cr.ReuseRecord = true
		cr.FieldsPerRecord = j.ncols
		row := sp.rowOff
		end := sp.rowOff + sp.records
		for {
			rec, err := cr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if row >= end {
				return errIngestShape
			}
			for _, col := range cols {
				raws[col][row] = rec[col]
			}
			row++
		}
		if row != end {
			return errIngestShape
		}
		return nil
	})
	return raws, err
}

// parseCSVBytes is the chunked ingest entry point: it parses buf under
// opts and, on any chunked-path failure (csv syntax error, scanner
// disagreement, shape mismatch), re-parses through the legacy serial
// reader so errors and edge-case behaviour match it exactly.
func parseCSVBytes(buf []byte, name string, opts IngestOptions) (*Table, error) {
	t, err := parseCSVChunked(buf, name, opts)
	if err != nil {
		return readCSVLegacy(bytes.NewReader(buf), name)
	}
	return t, nil
}

// parseCSVChunked performs the scan → sniff → parallel parse → merge
// pipeline. The output is deterministic in Workers and ChunkBytes by
// construction: chunk boundaries depend only on the bytes and chunk
// size, every chunk writes a disjoint row range, and flag merging is
// order-independent.
func parseCSVChunked(buf []byte, name string, opts IngestOptions) (*Table, error) {
	chunkBytes := opts.ChunkBytes
	if chunkBytes <= 0 {
		chunkBytes = defaultChunkBytes
	}
	headerSpan, spans, rows := scanCSVChunks(buf, chunkBytes)
	if headerSpan.records == 0 {
		return nil, errIngestShape // empty input; legacy reader owns the message
	}

	hr := csv.NewReader(bytes.NewReader(buf[headerSpan.start:headerSpan.end]))
	header, err := hr.Read()
	if err != nil {
		return nil, err
	}
	ncols := len(header)

	modes := sniffModes(buf, ncols, spans)
	job := newIngestJob(buf, ncols, modes, spans, rows)
	if err := pool.Each(opts.Workers, len(spans), job.parseChunk); err != nil {
		return nil, err
	}

	merged := make([]kindFlags, ncols)
	for col := range merged {
		merged[col] = newKindFlags()
		merged[col].any = false
	}
	for _, fl := range job.flags {
		for col := range fl {
			merged[col].merge(fl[col])
		}
	}

	kinds := make([]Kind, ncols)
	var reread []int
	for col := 0; col < ncols; col++ {
		kind := merged[col].kind()
		if modes[col] == modeStr {
			kind = KindString
		}
		kinds[col] = kind
		if !modeServes(modes[col], kind) {
			reread = append(reread, col)
		}
	}

	var raws [][]string
	if len(reread) > 0 {
		raws, err = job.rereadColumns(opts.Workers, reread, rows)
		if err != nil {
			return nil, err
		}
	}

	t := NewTable(name)
	for col := 0; col < ncols; col++ {
		var c *Column
		switch {
		case raws != nil && raws[col] != nil:
			c = ParseColumn(header[col], kinds[col], raws[col])
		case kinds[col] == KindString:
			c = &Column{Name: header[col], Kind: KindString, store: &colStore{strs: job.strs[col], missing: job.miss[col]}}
		case modes[col] == modeStrFlag:
			// Undecided column that turned out numeric/bool: its raw
			// strings are in the string slab; ParseColumn converts.
			c = ParseColumn(header[col], kinds[col], job.strs[col])
		default:
			c = &Column{Name: header[col], Kind: kinds[col], store: &colStore{nums: job.nums[col], missing: job.miss[col]}}
		}
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// modeServes reports whether a column parsed under mode holds a slab that
// can directly back the final kind without a re-read: string kinds need a
// string slab, bool needs the true/false encoding, and int/float need the
// ParseFloat slab. Undecided columns (modeStrFlag) always serve — their
// raw strings feed ParseColumn directly when the final kind is numeric.
func modeServes(m colMode, k Kind) bool {
	switch m {
	case modeNum:
		return k == KindInt || k == KindFloat
	case modeBool:
		return k == KindBool
	default:
		return true
	}
}
