package data

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"catdb/internal/bench/baseline"
)

// The Ingest* benchmarks measure cold CSV parse (serial and
// chunked-parallel) and cold summary builds (exact vs sketch) on
// synthetic mixed-kind tables. With BENCH_INGEST_MODE=legacy the parse
// benchmarks run the old ReadAll-based reader (readCSVLegacy) so the
// committed BENCH_ingest.json baseline can be re-captured:
//
//	BENCH_BASELINE=ingest go test -bench=Ingest ... | benchjson -set-baseline
//	go test -bench=Ingest ...                       | benchjson
//
// (BENCH_INGEST_MODE=legacy remains a supported alias; see
// internal/bench/baseline.)
const (
	ingestBenchSmall = 100_000
	ingestBenchLarge = 1_000_000
)

func ingestLegacyMode() bool { return baseline.Lane("ingest", "BENCH_INGEST_MODE", "legacy") }

// ingestBenchCSV renders a mixed-kind table (ints, floats, bools,
// categoricals, quoted free text with embedded commas, scattered
// missing cells) to CSV bytes, memoized per row count so the large
// input is generated once per test binary.
var ingestBenchCache = map[int][]byte{}

func ingestBenchCSV(rows int) []byte {
	if raw, ok := ingestBenchCache[rows]; ok {
		return raw
	}
	rng := rand.New(rand.NewSource(int64(rows)))
	cats := [...]string{"alpha", "beta", "gamma", "delta", "epsilon"}
	var buf bytes.Buffer
	buf.WriteString("id,num1,num2,int1,cat,flag,text,score\n")
	for i := 0; i < rows; i++ {
		num := fmt.Sprintf("%.4f", rng.NormFloat64()*100)
		if i%97 == 13 {
			num = "" // missing cell
		}
		fmt.Fprintf(&buf, "%d,%s,%.2f,%d,%s,%t,\"item %d, cell\",%.3f\n",
			i, num, rng.Float64()*1e6, rng.Intn(1000),
			cats[rng.Intn(len(cats))], rng.Intn(2) == 0, i, rng.Float64())
	}
	ingestBenchCache[rows] = buf.Bytes()
	return ingestBenchCache[rows]
}

func benchIngestParse(b *testing.B, rows, workers int) {
	raw := ingestBenchCSV(rows)
	legacy := ingestLegacyMode()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if legacy {
			_, err = readCSVLegacy(bytes.NewReader(raw), "bench")
		} else {
			_, err = ReadCSVOptions(bytes.NewReader(raw), "bench", IngestOptions{Workers: workers})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestSerial100k(b *testing.B)   { benchIngestParse(b, ingestBenchSmall, 1) }
func BenchmarkIngestSerial1M(b *testing.B)     { benchIngestParse(b, ingestBenchLarge, 1) }
func BenchmarkIngestParallel100k(b *testing.B) { benchIngestParse(b, ingestBenchSmall, 0) }
func BenchmarkIngestParallel1M(b *testing.B)   { benchIngestParse(b, ingestBenchLarge, 0) }

// benchIngestSummary times a cold summary build over every column of the
// parsed table. It calls the compute functions directly (not SummaryWith)
// so the per-column memo cache never hides the work being measured.
func benchIngestSummary(b *testing.B, rows int, backend SummaryBackend) {
	t, err := ReadCSVOptions(bytes.NewReader(ingestBenchCSV(rows)), "bench", IngestOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range t.Cols {
			if backend == SummarySketch {
				_ = c.computeSummarySketch()
			} else {
				_ = c.computeSummary()
			}
		}
	}
}

func BenchmarkIngestSummaryExact100k(b *testing.B) {
	benchIngestSummary(b, ingestBenchSmall, SummaryExact)
}
func BenchmarkIngestSummaryExact1M(b *testing.B) {
	benchIngestSummary(b, ingestBenchLarge, SummaryExact)
}
func BenchmarkIngestSummarySketch100k(b *testing.B) {
	benchIngestSummary(b, ingestBenchSmall, SummarySketch)
}
func BenchmarkIngestSummarySketch1M(b *testing.B) {
	benchIngestSummary(b, ingestBenchLarge, SummarySketch)
}
