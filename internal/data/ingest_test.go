package data

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// ingestGrid is the worker × chunk-size matrix the equivalence tests sweep.
// ChunkBytes 1 forces a chunk per record — the maximum-fragmentation stress
// case — while 1<<20 usually keeps the whole input in one chunk.
var ingestGrid = []IngestOptions{
	{Workers: 1, ChunkBytes: 1},
	{Workers: 1, ChunkBytes: 64},
	{Workers: 2, ChunkBytes: 1},
	{Workers: 4, ChunkBytes: 7},
	{Workers: 4, ChunkBytes: 256},
	{Workers: 8, ChunkBytes: 1 << 20},
	{Workers: 0, ChunkBytes: 0},
}

// requireTablesEqual compares two tables cell-by-cell through the public
// accessors: names, kinds, shapes, missing masks, rendered values, and (for
// numeric kinds) exact float bits.
func requireTablesEqual(t *testing.T, want, got *Table, label string) {
	t.Helper()
	if want.NumRows() != got.NumRows() || want.NumCols() != got.NumCols() {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for ci, wc := range want.Cols {
		gc := got.Cols[ci]
		if wc.Name != gc.Name {
			t.Fatalf("%s: col %d name %q, want %q", label, ci, gc.Name, wc.Name)
		}
		if wc.Kind != gc.Kind {
			t.Fatalf("%s: col %q kind %v, want %v", label, wc.Name, gc.Kind, wc.Kind)
		}
		for i := 0; i < wc.Len(); i++ {
			if wc.IsMissing(i) != gc.IsMissing(i) {
				t.Fatalf("%s: col %q row %d missing=%v, want %v", label, wc.Name, i, gc.IsMissing(i), wc.IsMissing(i))
			}
			if wc.IsMissing(i) {
				continue
			}
			if wc.ValueString(i) != gc.ValueString(i) {
				t.Fatalf("%s: col %q row %d value %q, want %q", label, wc.Name, i, gc.ValueString(i), wc.ValueString(i))
			}
			if wc.Kind != KindString && math.Float64bits(wc.Num(i)) != math.Float64bits(gc.Num(i)) {
				t.Fatalf("%s: col %q row %d num %v, want %v", label, wc.Name, i, gc.Num(i), wc.Num(i))
			}
		}
	}
}

// requireIngestMatchesLegacy parses input through the legacy serial reader
// and through the chunked reader at every grid point, requiring identical
// tables (or identical error-ness).
func requireIngestMatchesLegacy(t *testing.T, input, label string) {
	t.Helper()
	want, wantErr := readCSVLegacy(strings.NewReader(input), "x")
	for _, opts := range ingestGrid {
		tag := fmt.Sprintf("%s w=%d cb=%d", label, opts.Workers, opts.ChunkBytes)
		got, err := ReadCSVOptions(strings.NewReader(input), "x", opts)
		if wantErr != nil {
			if err == nil {
				t.Fatalf("%s: chunked succeeded, legacy error: %v", tag, wantErr)
			}
			// The fallback re-parses through the legacy reader, so the
			// message must be the canonical one.
			if err.Error() != wantErr.Error() {
				t.Fatalf("%s: error %q, want %q", tag, err, wantErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: chunked error %v, legacy succeeded", tag, err)
		}
		requireTablesEqual(t, want, got, tag)
	}
}

// The CSV edge-case goldens of the issue: quoted fields containing newlines
// and commas, CRLF endings, UTF-8 BOM, empty trailing lines, ragged
// records — each pinned byte-identical between the serial and
// chunked-parallel readers across worker counts and chunk sizes.
func TestIngestEdgeCaseGoldens(t *testing.T) {
	goldens := map[string]string{
		"plain":          "a,b,c\n1,2.5,x\n3,4.5,y\n",
		"no trailing nl": "a,b\n1,x\n2,y",
		"quoted newline": "a,b\n\"line1\nline2\",1\n\"more\r\nlines\",2\n",
		"quoted comma":   "a,b\n\"x,y\",1\n\"\"\"quoted\"\"\",2\n",
		"crlf":           "a,b\r\n1,x\r\n2,y\r\n",
		"utf8 bom":       "\xef\xbb\xbfa,b\n1,x\n",
		"empty trailing": "a,b\n1,x\n\n\n",
		"empty interior": "a,b\n1,x\n\n2,y\n\r\n3,z\n",
		"leading empty":  "\n\na,b\n1,x\n",
		"missing cells":  "a,b,c\n,2, \n1,,x\n , ,\n",
		"bool column":    "flag,v\ntrue,1\nFALSE,2\nTrue,3\n",
		"unicode":        "名前,v\n\"こん\nにちは\",1\né,2\n",
		"single column":  "only\n1\n2\n\n3\n",
		"header only":    "a,b,c\n",
		"ragged short":   "a,b\n1\n",
		"ragged long":    "a,b\n1,2,3\n",
		"bare quote":     "a,b\n1,x\"y\n",
		"stray cr tail":  "a\n1\n\r",
		"empty":          "",
		"blank lines":    "\n\n",
		"spaces kind":    "a,b\n 1 , x \n 2 , y \n",
		"all missing":    "a,b\n,\n,\n",
		"numeric mix":    "a,b\n1,1\n2.5,2\nNaN,inf\n",
	}
	for name, input := range goldens {
		requireIngestMatchesSerialAndLegacy(t, input, name)
	}
}

// requireIngestMatchesSerialAndLegacy additionally checks the WriteCSV
// rendering of the parses is byte-identical (the issue's "byte-identical"
// bar) on inputs that parse.
func requireIngestMatchesSerialAndLegacy(t *testing.T, input, label string) {
	t.Helper()
	requireIngestMatchesLegacy(t, input, label)
	want, err := readCSVLegacy(strings.NewReader(input), "x")
	if err != nil {
		return
	}
	var wantCSV bytes.Buffer
	if err := WriteCSV(&wantCSV, want); err != nil {
		t.Fatalf("%s: rewrite legacy: %v", label, err)
	}
	for _, opts := range ingestGrid {
		got, err := ReadCSVOptions(strings.NewReader(input), "x", opts)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		var gotCSV bytes.Buffer
		if err := WriteCSV(&gotCSV, got); err != nil {
			t.Fatalf("%s: rewrite chunked: %v", label, err)
		}
		if !bytes.Equal(wantCSV.Bytes(), gotCSV.Bytes()) {
			t.Fatalf("%s w=%d cb=%d: re-rendered CSV differs", label, opts.Workers, opts.ChunkBytes)
		}
	}
}

// Columns that change character after the sniff window exercise the
// demotion/promotion machinery: a numeric-looking column that turns string
// (re-read pass), an all-missing prefix that turns numeric or bool
// (string-slab conversion), and a bool prefix that turns string.
func TestIngestModeDemotions(t *testing.T) {
	n := sniffRecords * 3
	var latentStr, latentNum, latentBool, boolToStr, intToFloat strings.Builder
	latentStr.WriteString("a,pad\n")
	latentNum.WriteString("a,pad\n")
	latentBool.WriteString("a,pad\n")
	boolToStr.WriteString("a,pad\n")
	intToFloat.WriteString("a,pad\n")
	for i := 0; i < n; i++ {
		switch {
		case i < sniffRecords+17:
			fmt.Fprintf(&latentStr, "%d,p\n", i)
			latentNum.WriteString(",p\n")
			latentBool.WriteString(",p\n")
			fmt.Fprintf(&boolToStr, "true,p\n")
			fmt.Fprintf(&intToFloat, "%d,p\n", i)
		default:
			fmt.Fprintf(&latentStr, "v%d,p\n", i)
			fmt.Fprintf(&latentNum, "%d.5,p\n", i)
			fmt.Fprintf(&latentBool, "false,p\n")
			fmt.Fprintf(&boolToStr, "maybe%d,p\n", i)
			fmt.Fprintf(&intToFloat, "%d.25,p\n", i)
		}
	}
	cases := map[string]struct {
		input string
		kind  Kind
	}{
		"num to string":       {latentStr.String(), KindString},
		"missing to float":    {latentNum.String(), KindFloat},
		"missing to bool":     {latentBool.String(), KindBool},
		"bool to string":      {boolToStr.String(), KindString},
		"int to float":        {intToFloat.String(), KindFloat},
		"stays int":           {latentStr.String()[:len("a,pad\n")+len("0,p\n")*10], KindInt},
		"all missing col":     {"a,pad\n" + strings.Repeat(",p\n", n), KindString},
		"string whole column": {"a,pad\n" + strings.Repeat("s,p\n", n), KindString},
	}
	for name, tc := range cases {
		requireIngestMatchesLegacy(t, tc.input, name)
		got, err := ReadCSV(strings.NewReader(tc.input), "x")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Col("a").Kind != tc.kind {
			t.Fatalf("%s: kind %v, want %v", name, got.Col("a").Kind, tc.kind)
		}
	}
}

// randomCSVTable builds a table of mixed kinds with adversarial string
// content (commas, quotes, newlines, CRLF, unicode, leading spaces) and
// scattered missing cells, then renders it to CSV.
func randomCSVTable(rng *rand.Rand, rows int) string {
	nasty := []string{"plain", "a,b", "q\"uote", "nl\nline", "crlf\r\nline", "héllo", " lead", "trail ", "true", "12", "3.5", "x"}
	tb := NewTable("r")
	nums := make([]float64, rows)
	ints := make([]float64, rows)
	bools := make([]bool, rows)
	strs := make([]string, rows)
	for i := 0; i < rows; i++ {
		nums[i] = math.Round(rng.NormFloat64()*1e4) / 100
		ints[i] = float64(rng.Intn(2000) - 1000)
		bools[i] = rng.Intn(2) == 0
		strs[i] = nasty[rng.Intn(len(nasty))]
	}
	tb.MustAddColumn(NewNumeric("num", nums))
	tb.MustAddColumn(NewInt("int", ints))
	tb.MustAddColumn(NewBool("bool", bools))
	tb.MustAddColumn(NewString("str", strs))
	for i := 0; i < rows/10; i++ {
		tb.Cols[rng.Intn(4)].SetMissing(rng.Intn(rows))
	}
	var out bytes.Buffer
	if err := WriteCSV(&out, tb); err != nil {
		panic(err)
	}
	return out.String()
}

// TestParallelIngestMatchesSerial is the PR-1-style invariance test: a
// large randomized table with adversarial content parses identically
// through the legacy serial reader and the chunked reader at every point
// of the worker × chunk-size grid.
func TestParallelIngestMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, rows := range []int{3, 40, sniffRecords + 100, 2000} {
		input := randomCSVTable(rng, rows)
		requireIngestMatchesSerialAndLegacy(t, input, fmt.Sprintf("rows=%d", rows))
	}
}

// Property: any random table round-trips identically through both readers
// even at pathological chunk sizes.
func TestIngestEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		input := randomCSVTable(rng, 1+rng.Intn(60))
		want, err := readCSVLegacy(strings.NewReader(input), "x")
		if err != nil {
			return false
		}
		for _, cb := range []int{1, 3 + rng.Intn(100), 1 << 16} {
			got, err := ReadCSVOptions(strings.NewReader(input), "x", IngestOptions{Workers: 1 + rng.Intn(4), ChunkBytes: cb})
			if err != nil {
				return false
			}
			var a, b bytes.Buffer
			if WriteCSV(&a, want) != nil || WriteCSV(&b, got) != nil {
				return false
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The scanner's view of record framing must agree with encoding/csv on the
// goldens: spans tile the body and record counts sum to the parsed rows.
func TestScanCSVChunksFraming(t *testing.T) {
	input := "a,b\n\"x\n,\r\ny\",1\n\n2,3\r\n\r\n4,5\n"
	for _, cb := range []int{1, 2, 5, 1 << 20} {
		header, spans, total := scanCSVChunks([]byte(input), cb)
		if header.records != 1 || header.start != 0 {
			t.Fatalf("cb=%d: header %+v", cb, header)
		}
		if total != 3 {
			t.Fatalf("cb=%d: total %d, want 3", cb, total)
		}
		prev := header.end
		rows := 0
		for _, sp := range spans {
			if sp.start != prev {
				t.Fatalf("cb=%d: span start %d, want %d (spans must tile)", cb, sp.start, prev)
			}
			if sp.rowOff != rows {
				t.Fatalf("cb=%d: rowOff %d, want %d", cb, sp.rowOff, rows)
			}
			prev = sp.end
			rows += sp.records
		}
		if prev != len(input) || rows != total {
			t.Fatalf("cb=%d: spans end %d rows %d", cb, prev, rows)
		}
	}
}

func TestIngestEmptyInputMessage(t *testing.T) {
	_, err := ReadCSV(strings.NewReader(""), "x")
	if err == nil || !strings.Contains(err.Error(), "empty input") {
		t.Fatalf("err = %v, want empty-input message", err)
	}
	_, err = ReadCSVOptions(strings.NewReader("\n\n\n"), "x", IngestOptions{Workers: 4, ChunkBytes: 1})
	if err == nil || !strings.Contains(err.Error(), "empty input") {
		t.Fatalf("err = %v, want empty-input message for blank-lines input", err)
	}
}
