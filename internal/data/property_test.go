package data

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Split partitions rows exactly — sizes sum and no row appears
// twice (checked via a unique id column).
func TestPropertySplitPartitions(t *testing.T) {
	f := func(seed int64, frac8 uint8) bool {
		n := 50 + int(seed%200+200)%200
		frac := 0.1 + float64(frac8%80)/100
		ids := make([]float64, n)
		for i := range ids {
			ids[i] = float64(i)
		}
		tb := NewTable("t")
		tb.MustAddColumn(NewInt("id", ids))
		tr, te := tb.Split(frac, seed)
		if tr.NumRows()+te.NumRows() != n {
			return false
		}
		seen := map[float64]bool{}
		for _, part := range []*Table{tr, te} {
			for _, v := range part.Col("id").NumsView() {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: StratifiedSplit also partitions exactly and keeps every class
// present in train when a class has at least 2 members.
func TestPropertyStratifiedSplitPartitions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(200)
		ids := make([]float64, n)
		labels := make([]string, n)
		classes := 2 + rng.Intn(4)
		for i := range ids {
			ids[i] = float64(i)
			labels[i] = string(rune('a' + i%classes))
		}
		tb := NewTable("t")
		tb.MustAddColumn(NewInt("id", ids))
		tb.MustAddColumn(NewString("y", labels))
		tr, te := tb.StratifiedSplit("y", 0.7, seed)
		if tr.NumRows()+te.NumRows() != n {
			return false
		}
		trainClasses := map[string]bool{}
		c := tr.Col("y")
		for i := 0; i < c.Len(); i++ {
			trainClasses[c.Str(i)] = true
		}
		return len(trainClasses) == classes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Consolidate preserves the fact table's row count and never
// loses its columns.
func TestPropertyConsolidatePreservesRows(t *testing.T) {
	f := func(seed int64) bool {
		spec := Spec{
			Name: "p", Rows: 100 + int(seed%100+100)%100, Task: Binary, Classes: 2,
			Tables: 3,
			Columns: []ColumnSpec{
				{Name: "a", Type: ColNumeric, Weight: 1},
				{Name: "b", Type: ColCategorical, Cardinality: 4, Table: 1},
				{Name: "c", Type: ColNumeric, Table: 2},
			},
		}
		ds, err := Generate(spec, seed)
		if err != nil {
			return false
		}
		joined, err := ds.Consolidate()
		if err != nil {
			return false
		}
		if joined.NumRows() != ds.PrimaryTable().NumRows() {
			return false
		}
		for _, c := range ds.PrimaryTable().Cols {
			if joined.Col(c.Name) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: corruption injectors never touch the target column and never
// increase the row count.
func TestPropertyInjectorsPreserveTarget(t *testing.T) {
	f := func(seed int64, ratio8 uint8) bool {
		ratio := float64(ratio8%20) / 100
		spec := Spec{
			Name: "p", Rows: 150, Task: Regression,
			Columns: []ColumnSpec{
				{Name: "a", Type: ColNumeric, Weight: 1},
				{Name: "b", Type: ColCategorical, Cardinality: 3},
			},
		}
		ds, err := Generate(spec, seed)
		if err != nil {
			return false
		}
		pt := ds.PrimaryTable()
		orig := append([]float64(nil), pt.Col("target").NumsView()...)
		InjectOutliers(pt, "target", ratio, seed)
		InjectMissing(pt, "target", ratio, seed+1)
		tgt := pt.Col("target")
		if tgt.MissingCount() != 0 || pt.NumRows() != 150 {
			return false
		}
		for i, v := range tgt.NumsView() {
			if v != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSV round trip preserves shape and missing masks for any
// generated dataset.
func TestPropertyCSVRoundTripDataset(t *testing.T) {
	f := func(seed int64) bool {
		spec := basicSpec()
		spec.Rows = 80
		ds, err := Generate(spec, seed)
		if err != nil {
			return false
		}
		pt := ds.PrimaryTable()
		var buf bytes.Buffer
		if err := WriteCSV(&buf, pt); err != nil {
			return false
		}
		back, err := ReadCSV(&buf, "rt")
		if err != nil {
			return false
		}
		if back.NumRows() != pt.NumRows() || back.NumCols() != pt.NumCols() {
			return false
		}
		// Missing masks survive (string columns; numeric NaNs are absent
		// by construction).
		for ci, c := range pt.Cols {
			for r := 0; r < c.Len(); r++ {
				if c.IsMissing(r) != back.Cols[ci].IsMissing(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
