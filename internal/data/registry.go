package data

import (
	"fmt"
	"sort"
)

// DatasetInfo summarizes a registry entry, mirroring Table 3 of the paper.
type DatasetInfo struct {
	ID      int
	Name    string
	Tables  int
	Rows    int // scaled row count at scale=1.0
	Cols    int // feature columns incl. target (approximate paper ncol)
	Task    Task
	Classes int
}

// registryEntry couples the Table 3 metadata with a spec builder.
type registryEntry struct {
	info  DatasetInfo
	build func(rows int) Spec
}

// paperRows maps each dataset to the paper's original row count, used for
// the Table 3 rendition in documentation; generation uses scaled rows.
var paperRows = map[string]int{
	"Wifi": 98, "Diabetes": 768, "Tic-Tac-Toe": 958, "IMDB": 30530313,
	"KDD98": 82318, "Walking": 149332, "CMC": 1473, "EU-IT": 1253,
	"Survey": 2778, "Etailing": 439, "Accidents": 954036, "Financial": 552017,
	"Airline": 445827, "Gas-Drift": 13910, "Volkert": 58310, "Yelp": 229907,
	"Bike-Sharing": 17379, "Utility": 4574, "NYC": 581835, "House-Sales": 21613,
}

// registry holds the twenty synthetic analogues of the paper's datasets.
// Row counts are scaled so the full suite runs on a laptop; the scaled
// counts preserve the small/medium/large ordering of Table 3.
var registry = []registryEntry{
	{DatasetInfo{1, "Wifi", 1, 98, 9, Binary, 2}, wifiSpec},
	{DatasetInfo{2, "Diabetes", 1, 768, 9, Binary, 2}, diabetesSpec},
	{DatasetInfo{3, "Tic-Tac-Toe", 1, 958, 10, Binary, 2}, ticTacToeSpec},
	{DatasetInfo{4, "IMDB", 7, 60000, 15, Binary, 2}, imdbSpec},
	{DatasetInfo{5, "KDD98", 1, 20000, 478, Binary, 2}, kdd98Spec},
	{DatasetInfo{6, "Walking", 1, 30000, 5, Multiclass, 22}, walkingSpec},
	{DatasetInfo{7, "CMC", 1, 1473, 10, Multiclass, 3}, cmcSpec},
	{DatasetInfo{8, "EU-IT", 1, 1253, 23, Multiclass, 12}, euITSpec},
	{DatasetInfo{9, "Survey", 1, 2778, 29, Multiclass, 9}, surveySpec},
	{DatasetInfo{10, "Etailing", 1, 439, 44, Multiclass, 5}, etailingSpec},
	{DatasetInfo{11, "Accidents", 3, 40000, 46, Multiclass, 6}, accidentsSpec},
	{DatasetInfo{12, "Financial", 8, 30000, 62, Multiclass, 4}, financialSpec},
	{DatasetInfo{13, "Airline", 19, 25000, 115, Multiclass, 3}, airlineSpec},
	{DatasetInfo{14, "Gas-Drift", 1, 13910, 129, Multiclass, 6}, gasDriftSpec},
	{DatasetInfo{15, "Volkert", 1, 25000, 181, Multiclass, 10}, volkertSpec},
	{DatasetInfo{16, "Yelp", 4, 30000, 194, Multiclass, 9}, yelpSpec},
	{DatasetInfo{17, "Bike-Sharing", 1, 17379, 12, Regression, 0}, bikeSharingSpec},
	{DatasetInfo{18, "Utility", 1, 4574, 13, Regression, 0}, utilitySpec},
	{DatasetInfo{19, "NYC", 1, 40000, 17, Regression, 0}, nycSpec},
	{DatasetInfo{20, "House-Sales", 1, 21613, 18, Regression, 0}, houseSalesSpec},
}

// Names returns the registered dataset names in Table 3 order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.info.Name
	}
	return out
}

// Info returns the registry metadata for a dataset name.
func Info(name string) (DatasetInfo, error) {
	for _, e := range registry {
		if e.info.Name == name {
			return e.info, nil
		}
	}
	return DatasetInfo{}, fmt.Errorf("data: unknown dataset %q", name)
}

// PaperRows returns the paper's original row count for a dataset name
// (0 when unknown).
func PaperRows(name string) int { return paperRows[name] }

// Load generates the named dataset at the given scale (1.0 = registry row
// counts; 0.1 = one tenth) with a deterministic per-dataset seed.
func Load(name string, scale float64) (*Dataset, error) {
	for _, e := range registry {
		if e.info.Name != name {
			continue
		}
		rows := int(float64(e.info.Rows) * scale)
		if rows < 60 {
			rows = 60
		}
		spec := e.build(rows)
		spec.Name = e.info.Name
		spec.Tables = e.info.Tables
		return Generate(spec, datasetSeed(name))
	}
	return nil, fmt.Errorf("data: unknown dataset %q", name)
}

// LoadAll generates every registered dataset at the given scale; the result
// is ordered by Table 3 ID.
func LoadAll(scale float64) ([]*Dataset, error) {
	out := make([]*Dataset, 0, len(registry))
	for _, e := range registry {
		ds, err := Load(e.info.Name, scale)
		if err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	return out, nil
}

// AllInfo returns registry metadata in Table 3 order.
func AllInfo() []DatasetInfo {
	out := make([]DatasetInfo, len(registry))
	for i, e := range registry {
		out[i] = e.info
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func datasetSeed(name string) int64 {
	h := int64(1125899906842597)
	for _, c := range name {
		h = h*31 + int64(c)
	}
	return h
}

// numCols is a helper building n weakly-informative numeric noise features.
func numCols(prefix string, n int, weightEvery int, missing float64) []ColumnSpec {
	out := make([]ColumnSpec, n)
	for i := range out {
		w := 0.0
		if weightEvery > 0 && i%weightEvery == 0 {
			w = 0.6
		}
		out[i] = ColumnSpec{
			Name: fmt.Sprintf("%s%d", prefix, i+1), Type: ColNumeric,
			Mean: float64(i%7) * 3, Std: 1 + float64(i%5)/2, Weight: w,
			MissingRate: missing,
		}
	}
	return out
}

func wifiSpec(rows int) Spec {
	return Spec{
		Rows: rows, Task: Binary, Classes: 2, NoiseStd: 0.2,
		Description: "Indoor WiFi localization readings; predict connection quality.",
		Columns: append([]ColumnSpec{
			{Name: "router", Type: ColCategorical, Cardinality: 4, Dirty: 4, Weight: 1.2},
			{Name: "router_label", Type: ColCategorical, Cardinality: 4, Dirty: 3, DuplicateOf: "router"},
			{Name: "firmware", Type: ColConstant},
			{Name: "band", Type: ColCategorical, Cardinality: 2, Weight: 0.8},
		}, numCols("signal", 4, 2, 0.05)...),
	}
}

func diabetesSpec(rows int) Spec {
	return Spec{
		Rows: rows, Task: Binary, Classes: 2, NoiseStd: 0.45,
		Description: "Clinical measurements; predict diabetes onset.",
		Columns: append([]ColumnSpec{
			{Name: "pregnancies", Type: ColNumeric, Mean: 3, Std: 2, Weight: 0.4},
			{Name: "glucose", Type: ColNumeric, Mean: 120, Std: 30, Weight: 1.1, MissingRate: 0.05},
			{Name: "blood_pressure", Type: ColNumeric, Mean: 70, Std: 12, Weight: 0.3, MissingRate: 0.04},
			{Name: "bmi", Type: ColNumeric, Mean: 32, Std: 7, Weight: 0.9, MissingRate: 0.03},
		}, numCols("lab", 4, 3, 0.02)...),
	}
}

func ticTacToeSpec(rows int) Spec {
	cols := make([]ColumnSpec, 9)
	for i := range cols {
		cols[i] = ColumnSpec{Name: fmt.Sprintf("cell_%d", i+1), Type: ColCategorical,
			Cardinality: 3, Weight: 0.5}
	}
	return Spec{Rows: rows, Task: Binary, Classes: 2, NoiseStd: 0.35,
		Description: "Board endgame configurations; predict the winner.",
		Columns:     cols}
}

func imdbSpec(rows int) Spec {
	cols := []ColumnSpec{
		{Name: "runtime", Type: ColNumeric, Mean: 105, Std: 25, Weight: 0.5},
		{Name: "year", Type: ColNumeric, Mean: 2000, Std: 15, Weight: 0.3},
		{Name: "votes", Type: ColNumeric, Mean: 5000, Std: 4000, Weight: 0.8, OutlierRate: 0.003},
		{Name: "genre", Type: ColCategorical, Cardinality: 12, Weight: 1.0, Table: 1},
		{Name: "country", Type: ColCategorical, Cardinality: 20, Table: 2},
		{Name: "language", Type: ColCategorical, Cardinality: 15, Table: 3},
		{Name: "studio", Type: ColCategorical, Cardinality: 30, Weight: 0.4, Table: 4},
		{Name: "director_rating", Type: ColNumeric, Mean: 6, Std: 1.5, Weight: 0.9, Table: 5},
		{Name: "actor_rating", Type: ColNumeric, Mean: 6, Std: 1.5, Weight: 0.6, Table: 6},
		{Name: "budget", Type: ColNumeric, Mean: 20, Std: 18, Weight: 0.2, MissingRate: 0.1},
	}
	return Spec{Rows: rows, Task: Binary, Classes: 2, NoiseStd: 0.3,
		Description: "Multi-table movie metadata; predict above/below-median rating.",
		Columns:     cols}
}

func kdd98Spec(rows int) Spec {
	// 478 columns: mostly sparse numeric donations history + some
	// categorical demographics; heavy missingness.
	cols := numCols("adate", 200, 17, 0.35)
	cols = append(cols, numCols("ramnt", 200, 23, 0.4)...)
	for i := 0; i < 70; i++ {
		cols = append(cols, ColumnSpec{
			Name: fmt.Sprintf("demo%d", i+1), Type: ColCategorical,
			Cardinality: 5 + i%20, Dirty: 1 + i%3, Weight: pick(i%11 == 0, 0.7, 0),
			MissingRate: 0.1,
		})
	}
	cols = append(cols,
		ColumnSpec{Name: "income", Type: ColNumeric, Mean: 50, Std: 20, Weight: 1.0, MissingRate: 0.2},
		ColumnSpec{Name: "age", Type: ColNumeric, Mean: 55, Std: 15, Weight: 0.8, MissingRate: 0.25},
	)
	return Spec{Rows: rows, Task: Binary, Classes: 2, NoiseStd: 0.5, Imbalance: 0.75,
		Description: "Direct-mail fundraising; predict donors (wide, sparse, imbalanced).",
		Columns:     cols}
}

func walkingSpec(rows int) Spec {
	return Spec{Rows: rows, Task: Multiclass, Classes: 22, NoiseStd: 0.15,
		Description: "Accelerometer traces; identify the walking person (22 classes).",
		Columns: []ColumnSpec{
			{Name: "acc_x", Type: ColNumeric, Std: 2, Weight: 1.4},
			{Name: "acc_y", Type: ColNumeric, Std: 2, Weight: 1.2},
			{Name: "acc_z", Type: ColNumeric, Std: 2, Weight: 1.0},
			{Name: "time_step", Type: ColNumeric, Mean: 500, Std: 280},
		}}
}

func cmcSpec(rows int) Spec {
	return Spec{Rows: rows, Task: Multiclass, Classes: 3, NoiseStd: 0.5,
		Description: "Contraceptive method choice from demographic survey.",
		Columns: []ColumnSpec{
			{Name: "wife_age", Type: ColNumeric, Mean: 32, Std: 8, Weight: 0.9},
			{Name: "wife_edu", Type: ColCategorical, Cardinality: 4, Weight: 0.9},
			{Name: "husband_edu", Type: ColCategorical, Cardinality: 4, Weight: 0.3},
			{Name: "children", Type: ColNumeric, Mean: 3, Std: 2, Weight: 1.0},
			{Name: "religion", Type: ColBoolean, Weight: 0.3},
			{Name: "working", Type: ColBoolean},
			{Name: "husband_job", Type: ColCategorical, Cardinality: 4, Weight: 0.4},
			{Name: "living_std", Type: ColCategorical, Cardinality: 4, Weight: 0.6},
			{Name: "media", Type: ColBoolean, Weight: 0.2},
		}}
}

func euITSpec(rows int) Spec {
	// The EU-IT pathology: the *target* has duplicate differently-formatted
	// labels, and several features carry heavy missingness.
	cols := []ColumnSpec{
		{Name: "position", Type: ColCategorical, Cardinality: 10, Dirty: 4, Weight: 1.3},
		{Name: "seniority", Type: ColSentence, Cardinality: 5, Weight: 1.2},
		{Name: "country", Type: ColCategorical, Cardinality: 12, Dirty: 2, Weight: 0.5},
		{Name: "company_size", Type: ColCategorical, Cardinality: 6, Weight: 0.4, MissingRate: 0.15},
		{Name: "tech_stack", Type: ColList, VocabSize: 12, MinItems: 1, MaxItems: 5, Weight: 1.0},
	}
	cols = append(cols, numCols("salary_hist", 17, 6, 0.3)...)
	return Spec{Rows: rows, Task: Multiclass, Classes: 12, NoiseStd: 0.35,
		DirtyTarget: 4, Imbalance: 0.35,
		Description: "EU IT salary survey; messy duplicate job-title labels.",
		Columns:     cols}
}

func surveySpec(rows int) Spec {
	cols := []ColumnSpec{
		{Name: "experience", Type: ColSentence, Cardinality: 6, Weight: 1.3},
		{Name: "education", Type: ColCategorical, Cardinality: 5, Dirty: 3, Weight: 0.9},
		{Name: "field", Type: ColCategorical, Cardinality: 9, Weight: 0.8},
		{Name: "remote", Type: ColBoolean, Weight: 0.4},
	}
	cols = append(cols, numCols("q", 24, 8, 0.08)...)
	return Spec{Rows: rows, Task: Multiclass, Classes: 9, NoiseStd: 0.3,
		Description: "Developer survey; predict role from answers.",
		Columns:     cols}
}

func etailingSpec(rows int) Spec {
	cols := []ColumnSpec{
		{Name: "segment", Type: ColCategorical, Cardinality: 5, Dirty: 5, Weight: 1.6},
		{Name: "region", Type: ColCategorical, Cardinality: 8, Dirty: 3, Weight: 0.7},
		{Name: "device", Type: ColCategorical, Cardinality: 4, Dirty: 2, Weight: 0.5},
		{Name: "payment", Type: ColCategorical, Cardinality: 6, Weight: 0.3},
	}
	cols = append(cols, numCols("behav", 39, 9, 0.12)...)
	return Spec{Rows: rows, Task: Multiclass, Classes: 5, NoiseStd: 0.3,
		Description: "E-tailing shopper survey; duplicate category spellings correlate with the target.",
		Columns:     cols}
}

func accidentsSpec(rows int) Spec {
	cols := []ColumnSpec{
		{Name: "severity_input", Type: ColNumeric, Std: 1.5, Weight: 1.2},
		{Name: "weather", Type: ColCategorical, Cardinality: 8, Weight: 0.8, Table: 1},
		{Name: "road_type", Type: ColCategorical, Cardinality: 6, Weight: 0.6, Table: 1},
		{Name: "vehicle", Type: ColCategorical, Cardinality: 10, Weight: 0.5, Table: 2},
		{Name: "vehicle_age", Type: ColNumeric, Mean: 8, Std: 4, Weight: 0.3, Table: 2},
		{Name: "hour", Type: ColNumeric, Mean: 12, Std: 6, Weight: 0.4},
	}
	cols = append(cols, numCols("sensor", 38, 11, 0.15)...)
	return Spec{Rows: rows, Task: Multiclass, Classes: 6, NoiseStd: 0.35,
		Description: "Traffic accidents (3 tables); predict severity.",
		Columns:     cols}
}

func financialSpec(rows int) Spec {
	cols := []ColumnSpec{
		{Name: "amount", Type: ColNumeric, Mean: 5000, Std: 3000, Weight: 1.1, OutlierRate: 0.002},
		{Name: "duration", Type: ColNumeric, Mean: 24, Std: 12, Weight: 0.8},
		{Name: "account_type", Type: ColCategorical, Cardinality: 4, Weight: 0.7, Table: 1},
		{Name: "district", Type: ColCategorical, Cardinality: 40, Table: 2},
		{Name: "district_avg_salary", Type: ColNumeric, Mean: 9000, Std: 1500, Weight: 0.6, Table: 2},
		{Name: "card_type", Type: ColCategorical, Cardinality: 3, Weight: 0.5, Table: 3},
		{Name: "order_kind", Type: ColCategorical, Cardinality: 5, Table: 4},
		{Name: "trans_freq", Type: ColNumeric, Mean: 20, Std: 10, Weight: 0.9, Table: 5},
		{Name: "loan_hist", Type: ColNumeric, Mean: 2, Std: 1.5, Weight: 0.7, Table: 6},
		{Name: "client_age", Type: ColNumeric, Mean: 45, Std: 15, Weight: 0.4, Table: 7},
	}
	cols = append(cols, numCols("feat", 50, 13, 0.1)...)
	return Spec{Rows: rows, Task: Multiclass, Classes: 4, NoiseStd: 0.3,
		Description: "Loan outcomes over 8 relational banking tables.",
		Columns:     cols}
}

func airlineSpec(rows int) Spec {
	cols := []ColumnSpec{
		{Name: "dep_delay", Type: ColNumeric, Mean: 10, Std: 20, Weight: 1.5},
		{Name: "distance", Type: ColNumeric, Mean: 1200, Std: 600, Weight: 0.5},
	}
	// 18 dimension tables (19 total), each contributing a handful of cols.
	for t := 1; t <= 18; t++ {
		cols = append(cols,
			ColumnSpec{Name: fmt.Sprintf("dim%d_cat", t), Type: ColCategorical,
				Cardinality: 4 + t%9, Weight: pick(t%5 == 0, 0.6, 0), Table: t},
			ColumnSpec{Name: fmt.Sprintf("dim%d_val", t), Type: ColNumeric,
				Mean: float64(t), Std: 2, Weight: pick(t%7 == 0, 0.4, 0), Table: t},
		)
	}
	cols = append(cols, numCols("leg", 75, 19, 0.2)...)
	return Spec{Rows: rows, Task: Multiclass, Classes: 3, NoiseStd: 0.25,
		Description: "Flight on-time performance over 19 tables.",
		Columns:     cols}
}

func gasDriftSpec(rows int) Spec {
	cols := numCols("s", 128, 6, 0.0)
	return Spec{Rows: rows, Task: Multiclass, Classes: 6, NoiseStd: 0.25,
		Description: "Chemical sensor array drift; 128 numeric sensor features.",
		Columns:     cols}
}

func volkertSpec(rows int) Spec {
	cols := numCols("v", 180, 8, 0.05)
	return Spec{Rows: rows, Task: Multiclass, Classes: 10, NoiseStd: 0.35,
		Description: "Anonymized 180-feature multiclass benchmark.",
		Columns:     cols}
}

func yelpSpec(rows int) Spec {
	cols := []ColumnSpec{
		{Name: "categories", Type: ColList, VocabSize: 24, MinItems: 1, MaxItems: 6, Weight: 1.4},
		{Name: "amenities", Type: ColList, VocabSize: 16, MinItems: 0, MaxItems: 5, Weight: 0.8},
		{Name: "city", Type: ColCategorical, Cardinality: 30, Dirty: 2, Weight: 0.5, Table: 1},
		{Name: "state", Type: ColCategorical, Cardinality: 12, Table: 1},
		{Name: "user_avg", Type: ColNumeric, Mean: 3.7, Std: 0.6, Weight: 0.9, Table: 2},
		{Name: "user_count", Type: ColNumeric, Mean: 40, Std: 35, Weight: 0.3, Table: 2},
		{Name: "checkins", Type: ColNumeric, Mean: 200, Std: 150, Weight: 0.6, Table: 3},
		// Hashed-timestamp pathology: large int values, some sentinel zeros
		// that naive tools misinterpret as missing.
		{Name: "ts_hash", Type: ColNumeric, Mean: 8e8, Std: 3e8},
	}
	cols = append(cols, numCols("attr", 180, 16, 0.18)...)
	return Spec{Rows: rows, Task: Multiclass, Classes: 9, NoiseStd: 0.3,
		Description: "Business reviews over 4 tables; list-valued category features.",
		Columns:     cols}
}

func bikeSharingSpec(rows int) Spec {
	return Spec{Rows: rows, Task: Regression, NoiseStd: 0.25,
		Description: "Hourly bike rental demand.",
		Columns: []ColumnSpec{
			{Name: "hour", Type: ColNumeric, Mean: 12, Std: 6.9, Weight: 1.2},
			{Name: "temp", Type: ColNumeric, Mean: 20, Std: 8, Weight: 1.0},
			{Name: "humidity", Type: ColNumeric, Mean: 60, Std: 20, Weight: 0.5},
			{Name: "windspeed", Type: ColNumeric, Mean: 13, Std: 8, Weight: 0.2},
			{Name: "season", Type: ColCategorical, Cardinality: 4, Weight: 0.8},
			{Name: "weekday", Type: ColCategorical, Cardinality: 7, Weight: 0.4},
			{Name: "weather", Type: ColCategorical, Cardinality: 4, Weight: 0.6},
			{Name: "holiday", Type: ColBoolean, Weight: 0.2},
			{Name: "workingday", Type: ColBoolean, Weight: 0.4},
			{Name: "yr", Type: ColBoolean, Weight: 0.3},
			{Name: "record_id", Type: ColID},
		}}
}

func utilitySpec(rows int) Spec {
	return Spec{Rows: rows, Task: Regression, NoiseStd: 0.2,
		Description: "Utility consumption; messy categorical meter classes.",
		Columns: []ColumnSpec{
			{Name: "meter_class", Type: ColCategorical, Cardinality: 6, Dirty: 4, Weight: 1.3},
			{Name: "zone", Type: ColCategorical, Cardinality: 10, Dirty: 2, Weight: 0.7},
			{Name: "sqft", Type: ColNumeric, Mean: 1800, Std: 600, Weight: 1.0},
			{Name: "occupants", Type: ColNumeric, Mean: 3, Std: 1.5, Weight: 0.6},
			{Name: "ac", Type: ColBoolean, Weight: 0.5},
			{Name: "built_year", Type: ColNumeric, Mean: 1985, Std: 20, Weight: 0.3},
			{Name: "insulation", Type: ColCategorical, Cardinality: 4, Weight: 0.4, MissingRate: 0.1},
			{Name: "readings", Type: ColNumeric, Mean: 300, Std: 90, Weight: 0.8},
			{Name: "tariff", Type: ColCategorical, Cardinality: 5, Weight: 0.2},
			{Name: "solar", Type: ColBoolean, Weight: 0.3},
			{Name: "ev", Type: ColBoolean, Weight: 0.2},
			{Name: "meter_id", Type: ColID},
		}}
}

func nycSpec(rows int) Spec {
	cols := []ColumnSpec{
		{Name: "trip_distance", Type: ColNumeric, Mean: 3, Std: 2.5, Weight: 1.5, OutlierRate: 0.002},
		{Name: "pickup_hour", Type: ColNumeric, Mean: 13, Std: 6, Weight: 0.5},
		{Name: "passenger_count", Type: ColNumeric, Mean: 1.6, Std: 1.2, Weight: 0.1},
		{Name: "pickup_zone", Type: ColCategorical, Cardinality: 40, Weight: 0.7},
		{Name: "dropoff_zone", Type: ColCategorical, Cardinality: 40, Weight: 0.5},
		{Name: "vendor", Type: ColCategorical, Cardinality: 3},
		{Name: "payment_type", Type: ColCategorical, Cardinality: 5, Weight: 0.2},
		{Name: "tolls", Type: ColNumeric, Mean: 0.4, Std: 1.5, Weight: 0.4},
	}
	cols = append(cols, numCols("meta", 8, 4, 0.05)...)
	return Spec{Rows: rows, Task: Regression, NoiseStd: 0.2,
		Description: "Taxi fares; predict total amount.",
		Columns:     cols}
}

func houseSalesSpec(rows int) Spec {
	return Spec{Rows: rows, Task: Regression, NoiseStd: 0.2,
		Description: "House sale prices.",
		Columns: []ColumnSpec{
			{Name: "sqft_living", Type: ColNumeric, Mean: 2000, Std: 800, Weight: 1.4},
			{Name: "sqft_lot", Type: ColNumeric, Mean: 12000, Std: 30000, Weight: 0.2, OutlierRate: 0.004},
			{Name: "bedrooms", Type: ColNumeric, Mean: 3.4, Std: 1, Weight: 0.4},
			{Name: "bathrooms", Type: ColNumeric, Mean: 2.1, Std: 0.8, Weight: 0.6},
			{Name: "floors", Type: ColNumeric, Mean: 1.5, Std: 0.5, Weight: 0.2},
			{Name: "waterfront", Type: ColBoolean, Weight: 0.5},
			{Name: "view", Type: ColCategorical, Cardinality: 5, Weight: 0.4},
			{Name: "condition", Type: ColCategorical, Cardinality: 5, Weight: 0.3},
			{Name: "grade", Type: ColNumeric, Mean: 7.6, Std: 1.2, Weight: 1.1},
			{Name: "yr_built", Type: ColNumeric, Mean: 1971, Std: 29, Weight: 0.3},
			{Name: "zipcode", Type: ColCategorical, Cardinality: 70, Weight: 0.6},
			{Name: "lat", Type: ColNumeric, Mean: 47.5, Std: 0.14, Weight: 0.5},
			{Name: "long", Type: ColNumeric, Mean: -122.2, Std: 0.14, Weight: 0.2},
			{Name: "renovated", Type: ColBoolean, Weight: 0.2},
			{Name: "basement", Type: ColBoolean, Weight: 0.3},
			{Name: "address", Type: ColComposite, Cardinality: 12},
			{Name: "sale_id", Type: ColID},
		}}
}

func pick(cond bool, a, b float64) float64 {
	if cond {
		return a
	}
	return b
}
