package data

import (
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 20 {
		t.Fatalf("registry has %d datasets, want 20", len(names))
	}
	infos := AllInfo()
	for i, in := range infos {
		if in.ID != i+1 {
			t.Fatalf("registry IDs not contiguous: %v", in)
		}
		if PaperRows(in.Name) == 0 {
			t.Errorf("dataset %q missing paper row count", in.Name)
		}
	}
}

func TestInfoLookup(t *testing.T) {
	in, err := Info("Diabetes")
	if err != nil {
		t.Fatal(err)
	}
	if in.Task != Binary || in.Tables != 1 {
		t.Fatalf("Diabetes info = %+v", in)
	}
	if _, err := Info("Nope"); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestLoadSmallDatasets(t *testing.T) {
	for _, name := range []string{"Wifi", "Diabetes", "CMC", "Utility", "EU-IT", "Etailing", "Survey"} {
		ds, err := Load(name, 1.0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		info, _ := Info(name)
		if ds.PrimaryTable().NumRows() != info.Rows && info.Rows >= 60 {
			t.Errorf("%s rows = %d, want %d", name, ds.PrimaryTable().NumRows(), info.Rows)
		}
		if info.Task.IsClassification() {
			if ds.PrimaryTable().Col(ds.Target).Kind != KindString {
				t.Errorf("%s: classification target must be string", name)
			}
		}
	}
}

func TestLoadMultiTable(t *testing.T) {
	ds, err := Load("Financial", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTables() != 8 {
		t.Fatalf("Financial tables = %d, want 8", ds.NumTables())
	}
	joined, err := ds.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if joined.NumCols() <= ds.PrimaryTable().NumCols() {
		t.Fatal("consolidation must add dimension columns")
	}
}

func TestLoadScale(t *testing.T) {
	big, err := Load("Gas-Drift", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want := int(13910 * 0.2)
	if big.PrimaryTable().NumRows() != want {
		t.Fatalf("scaled rows = %d, want %d", big.PrimaryTable().NumRows(), want)
	}
	tiny, _ := Load("Wifi", 0.01)
	if tiny.PrimaryTable().NumRows() < 60 {
		t.Fatal("minimum row floor not applied")
	}
	if _, err := Load("Nope", 1); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestLoadDeterminism(t *testing.T) {
	a, _ := Load("Utility", 0.5)
	b, _ := Load("Utility", 0.5)
	at, bt := a.PrimaryTable(), b.PrimaryTable()
	for ci := range at.Cols {
		for r := 0; r < at.NumRows(); r += 97 {
			if at.Cols[ci].ValueString(r) != bt.Cols[ci].ValueString(r) {
				t.Fatal("Load must be deterministic")
			}
		}
	}
}

func TestEUITDirtyTargetPresent(t *testing.T) {
	ds, _ := Load("EU-IT", 1.0)
	got := ds.PrimaryTable().Col(ds.Target).DistinctCount()
	if got <= 12 {
		t.Fatalf("EU-IT target distinct = %d, want > 12 (dirty labels)", got)
	}
}

func TestWifiConstantColumn(t *testing.T) {
	ds, _ := Load("Wifi", 1.0)
	if !ds.PrimaryTable().Col("firmware").IsConstant() {
		t.Fatal("Wifi firmware column should be constant (paper §5.3)")
	}
}
