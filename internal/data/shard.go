package data

// Row-shard views: zero-copy range windows over a column's dense slabs
// for data-parallel elementwise transforms.
//
// The disjoint-write contract is three steps:
//
//  1. BeginShardWrite — the owning column promotes to private dense
//     storage once, up front (a CoW view gathers its mapped rows), and
//     pre-sizes the missing mask over the full length, so no shard ever
//     triggers a promotion or a mask growth mid-flight.
//  2. Workers each take a ShardView(lo, hi) and write only rows in
//     their own [lo, hi) window through the ordinary setters; shard
//     writes go straight to the base slabs (own is a no-op on shards).
//  3. EndShardWrite — the owner bumps its stats version once after the
//     join, invalidating the memoized Summary exactly like a serial
//     write loop would have.
//
// Reads through a shard view are shard-relative: row i of the view is
// row lo+i of the base column.

// BeginShardWrite prepares the column for disjoint-range parallel
// writes: it promotes a CoW view or shared column to private dense
// storage and sizes the missing mask to the full column length. Call
// once before handing out ShardViews.
func (c *Column) BeginShardWrite() {
	if c.isShard {
		panic("data: BeginShardWrite on a shard view")
	}
	c.own()
	c.store.ensureMask(c.Len())
}

// EndShardWrite publishes the shards' writes to the column's statistics
// by bumping the mutation version once. Call after all shard workers
// have joined.
func (c *Column) EndShardWrite() {
	c.touch()
}

// ShardView returns a zero-copy view over rows [lo, hi) of the column
// that writes through to the base slabs. The receiver must be prepared
// with BeginShardWrite first; concurrent shards must cover disjoint
// ranges.
func (c *Column) ShardView(lo, hi int) *Column {
	if c.isShard {
		panic("data: ShardView of a shard view")
	}
	if c.rows != nil {
		panic("data: ShardView of an unpromoted CoW view (call BeginShardWrite first)")
	}
	if lo < 0 || hi < lo || hi > c.Len() {
		panic("data: ShardView range out of bounds")
	}
	return &Column{
		Name:     c.Name,
		Kind:     c.Kind,
		store:    c.ensureStore(),
		shardOff: lo,
		shardLen: hi - lo,
		isShard:  true,
	}
}

// ShardRanges splits [0, n) into contiguous disjoint [lo, hi) ranges of
// at most shardRows rows each. shardRows <= 0 yields a single range
// covering everything; n == 0 yields no ranges.
func ShardRanges(n, shardRows int) [][2]int {
	if n <= 0 {
		return nil
	}
	if shardRows <= 0 || shardRows >= n {
		return [][2]int{{0, n}}
	}
	ranges := make([][2]int, 0, (n+shardRows-1)/shardRows)
	for lo := 0; lo < n; lo += shardRows {
		hi := lo + shardRows
		if hi > n {
			hi = n
		}
		ranges = append(ranges, [2]int{lo, hi})
	}
	return ranges
}

// RowShards splits the table's row range into contiguous disjoint
// [lo, hi) ranges of at most shardRows rows each.
func (t *Table) RowShards(shardRows int) [][2]int {
	return ShardRanges(t.NumRows(), shardRows)
}
