package data

import (
	"reflect"
	"sync"
	"testing"
)

func TestShardRanges(t *testing.T) {
	cases := []struct {
		n, shardRows int
		want         [][2]int
	}{
		{0, 4, nil},
		{-3, 4, nil},
		{10, 0, [][2]int{{0, 10}}},
		{10, -1, [][2]int{{0, 10}}},
		{10, 10, [][2]int{{0, 10}}},
		{10, 100, [][2]int{{0, 10}}},
		{10, 4, [][2]int{{0, 4}, {4, 8}, {8, 10}}},
		{10, 1, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 10}}},
	}
	for _, c := range cases {
		got := ShardRanges(c.n, c.shardRows)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ShardRanges(%d, %d) = %v, want %v", c.n, c.shardRows, got, c.want)
		}
	}
}

func TestRowShardsCoverTable(t *testing.T) {
	tb := NewTable("t")
	tb.MustAddColumn(NewNumeric("x", make([]float64, 11)))
	got := tb.RowShards(4)
	want := [][2]int{{0, 4}, {4, 8}, {8, 11}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RowShards(4) = %v, want %v", got, want)
	}
}

func TestShardViewWriteThrough(t *testing.T) {
	c := NewNumeric("x", []float64{0, 1, 2, 3, 4, 5, 6, 7})
	c.BeginShardWrite()
	v := c.ShardView(2, 5)
	if v.Len() != 3 {
		t.Fatalf("shard Len = %d, want 3", v.Len())
	}
	if v.Num(0) != 2 || v.Num(2) != 4 {
		t.Fatalf("shard reads wrong window: %v %v", v.Num(0), v.Num(2))
	}
	v.SetNum(1, 99)
	v.SetMissing(2)
	c.EndShardWrite()
	if c.Num(3) != 99 {
		t.Fatalf("write-through failed: base row 3 = %v, want 99", c.Num(3))
	}
	if !c.IsMissing(4) || c.IsMissing(3) {
		t.Fatalf("shard SetMissing landed wrong: missing(4)=%v missing(3)=%v", c.IsMissing(4), c.IsMissing(3))
	}
	if c.MissingCount() != 1 {
		t.Fatalf("summary after EndShardWrite: missing = %d, want 1", c.MissingCount())
	}
}

func TestShardViewStringColumn(t *testing.T) {
	c := NewString("s", []string{"a", "b", "c", "d"})
	c.BeginShardWrite()
	v := c.ShardView(1, 3)
	v.SetStr(0, "B")
	v.SetMissing(1)
	c.EndShardWrite()
	if c.Str(1) != "B" {
		t.Fatalf("string write-through failed: %q", c.Str(1))
	}
	if !c.IsMissing(2) {
		t.Fatal("string shard SetMissing failed")
	}
	// SetMissing on a string column blanks the value.
	if c.Str(2) != "" {
		t.Fatalf("missing string cell not blanked: %q", c.Str(2))
	}
}

// A CoW view (post-Select) must be gathered to private dense storage by
// BeginShardWrite; shard writes then stay invisible to the source.
func TestShardWriteOnCoWView(t *testing.T) {
	base := NewNumeric("x", []float64{10, 11, 12, 13, 14, 15})
	view := base.Select([]int{5, 3, 1})
	view.BeginShardWrite()
	sv := view.ShardView(0, 3)
	for i := 0; i < sv.Len(); i++ {
		sv.SetNum(i, sv.Num(i)*2)
	}
	view.EndShardWrite()
	want := []float64{30, 26, 22}
	for i, w := range want {
		if view.Num(i) != w {
			t.Fatalf("view row %d = %v, want %v", i, view.Num(i), w)
		}
	}
	for i, w := range []float64{10, 11, 12, 13, 14, 15} {
		if base.Num(i) != w {
			t.Fatalf("CoW isolation broken: base row %d = %v, want %v", i, base.Num(i), w)
		}
	}
}

// Concurrent disjoint shard writes (including SetMissing, which touches
// the shared mask slab) must produce the same result as a serial loop.
// Run under -race this is the core disjoint-write contract check.
func TestShardConcurrentDisjointWrites(t *testing.T) {
	const n = 10_000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	c := NewNumeric("x", vals)
	c.BeginShardWrite()
	ranges := ShardRanges(n, 257)
	var wg sync.WaitGroup
	for _, r := range ranges {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			v := c.ShardView(lo, hi)
			for i := 0; i < v.Len(); i++ {
				if int(v.Num(i))%10 == 0 {
					v.SetMissing(i)
				} else {
					v.SetNum(i, v.Num(i)+1)
				}
			}
		}(r[0], r[1])
	}
	wg.Wait()
	c.EndShardWrite()
	for i := 0; i < n; i++ {
		if i%10 == 0 {
			if !c.IsMissing(i) {
				t.Fatalf("row %d should be missing", i)
			}
		} else if c.Num(i) != float64(i)+1 {
			t.Fatalf("row %d = %v, want %v", i, c.Num(i), float64(i)+1)
		}
	}
	if got := c.MissingCount(); got != n/10 {
		t.Fatalf("missing count = %d, want %d", got, n/10)
	}
}

func TestShardViewSubSlices(t *testing.T) {
	c := NewNumeric("x", []float64{0, 1, 2, 3, 4})
	c.BeginShardWrite()
	v := c.ShardView(1, 4)
	nums := v.NumsView()
	if want := []float64{1, 2, 3}; !reflect.DeepEqual(nums, want) {
		t.Fatalf("shard NumsView = %v, want %v", nums, want)
	}
	s := NewString("s", []string{"a", "b", "c"})
	s.BeginShardWrite()
	if got := s.ShardView(2, 3).StrsView(); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("shard StrsView = %v", got)
	}
}

func TestShardPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	c := NewNumeric("x", []float64{1, 2, 3})
	c.BeginShardWrite()
	v := c.ShardView(0, 2)
	mustPanic("BeginShardWrite on shard", func() { v.BeginShardWrite() })
	mustPanic("ShardView of shard", func() { v.ShardView(0, 1) })
	mustPanic("out of bounds hi", func() { c.ShardView(0, 4) })
	mustPanic("negative lo", func() { c.ShardView(-1, 2) })
	mustPanic("inverted range", func() { c.ShardView(2, 1) })
	view := NewNumeric("y", []float64{1, 2, 3, 4}).Select([]int{0, 2})
	mustPanic("ShardView of unpromoted CoW view", func() { view.ShardView(0, 1) })
}

// EndShardWrite must invalidate the memoized summary exactly like a
// serial write loop: stats computed before the shard write must not
// survive it.
func TestShardWriteInvalidatesSummary(t *testing.T) {
	c := NewNumeric("x", []float64{1, 2, 3, 4})
	if got := c.Summary().Stats.Mean; got != 2.5 {
		t.Fatalf("pre-write mean = %v", got)
	}
	c.BeginShardWrite()
	sv := c.ShardView(0, 4)
	for i := 0; i < 4; i++ {
		sv.SetNum(i, 10)
	}
	c.EndShardWrite()
	if got := c.Summary().Stats.Mean; got != 10 {
		t.Fatalf("post-write mean = %v, want 10 (stale summary survived EndShardWrite)", got)
	}
}
