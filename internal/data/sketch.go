package data

import (
	"math"
	"sort"
)

// This file implements the mergeable one-pass sketches behind the
// SummarySketch backend: a deterministic KLL-style quantile sketch and a
// distinct sketch that is exact up to a cap and switches to a K-minimum-
// values estimator beyond it. Per-chunk states merge associatively, so a
// column summary composes from chunk summaries instead of requiring a
// whole-column sorted copy — the building block the out-of-core ingest
// path and the paper-scale profiler stand on.

const (
	// qsketchCap is the per-level compactor capacity of QuantileSketch.
	// Error grows roughly with log²(n/cap)/cap; 256 keeps the observed
	// rank error under ~1% at 10M values (pinned at 2% by the tests).
	qsketchCap = 256
	// distinctTrackLimit is the distinct-value count up to which a sketch
	// summary tracks the exact value set (so categorical detection,
	// inclusion dependencies, and Contains behave exactly like the exact
	// backend). Beyond it only the KMV estimate survives.
	distinctTrackLimit = 4096
	// kmvK is the sample size of the K-minimum-values distinct estimator:
	// relative error ~ 1/sqrt(k-2) ≈ 3% once the exact set overflows.
	kmvK = 1024
	// sketchMergeRows is the chunk granularity of the sketch summary
	// build: the column is consumed as independent per-chunk states merged
	// in order, exercising the same merge path out-of-core ingest uses.
	sketchMergeRows = 1 << 16
	// SketchAutoRows is the row count at or above which the auto backend
	// picks the sketch path (mirrors the hist-backend auto threshold
	// convention: exact below, approximate-and-fast at scale).
	SketchAutoRows = 1 << 18
)

// QuantileSketch is a fixed-capacity, mergeable streaming quantile sketch
// in the KLL compactor style, made deterministic: compactions alternate
// their keep-offset via a counter instead of a coin flip, so the same
// inputs in the same order always produce the same sketch. Level i items
// carry weight 2^i. Memory is O(cap · log(n/cap)) regardless of n.
type QuantileSketch struct {
	levels [][]float64
	n      uint64
	comps  uint64 // compaction counter; low bit is the keep-offset
	min    float64
	max    float64
}

// NewQuantileSketch returns an empty sketch.
func NewQuantileSketch() *QuantileSketch {
	return &QuantileSketch{min: math.Inf(1), max: math.Inf(-1)}
}

// Count returns the number of values added (including through merges).
func (s *QuantileSketch) Count() int { return int(s.n) }

// Min returns the exact minimum added value (never compacted away).
func (s *QuantileSketch) Min() float64 { return s.min }

// Max returns the exact maximum added value.
func (s *QuantileSketch) Max() float64 { return s.max }

// Add inserts one value.
func (s *QuantileSketch) Add(v float64) {
	s.n++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if len(s.levels) == 0 {
		s.levels = append(s.levels, make([]float64, 0, qsketchCap))
	}
	s.levels[0] = append(s.levels[0], v)
	if len(s.levels[0]) >= qsketchCap {
		s.compactFrom(0)
	}
}

// compactFrom halves every full level starting at l, promoting the kept
// elements (every second one of the sorted buffer, at a deterministically
// alternating offset) into the next level.
func (s *QuantileSketch) compactFrom(l int) {
	for ; l < len(s.levels) && len(s.levels[l]) >= qsketchCap; l++ {
		buf := s.levels[l]
		sort.Float64s(buf)
		if l+1 >= len(s.levels) {
			s.levels = append(s.levels, make([]float64, 0, qsketchCap))
		}
		off := int(s.comps & 1)
		s.comps++
		for i := off; i < len(buf); i += 2 {
			s.levels[l+1] = append(s.levels[l+1], buf[i])
		}
		s.levels[l] = buf[:0]
	}
}

// Merge folds o into s. Merging is associative up to the documented error
// bound; merging in a fixed order (as the chunked ingest and summary
// paths do) is fully deterministic. o is not modified.
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if o == nil || o.n == 0 {
		return
	}
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	for l, items := range o.levels {
		for len(s.levels) <= l {
			s.levels = append(s.levels, make([]float64, 0, qsketchCap))
		}
		s.levels[l] = append(s.levels[l], items...)
	}
	for l := 0; l < len(s.levels); l++ {
		if len(s.levels[l]) >= qsketchCap {
			s.compactFrom(l)
		}
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) with the same
// interpolation convention as the exact backend: position q·(W−1) over
// the weighted, value-sorted retained items. Exact for columns that never
// compacted (n < cap); clamped into the true [min, max] otherwise. NaN on
// an empty sketch.
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	type wv struct {
		v float64
		w float64
	}
	items := make([]wv, 0, qsketchCap*len(s.levels))
	total := 0.0
	for l, lvl := range s.levels {
		w := float64(uint64(1) << uint(l))
		for _, v := range lvl {
			items = append(items, wv{v, w})
			total += w
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	target := q * (total - 1)
	// Midpoint ranks: an item of weight w covers w ranks centred on
	// cum + (w-1)/2; interpolate linearly between neighbouring centres.
	prevRank, prevVal := math.Inf(-1), s.min
	cum := 0.0
	for _, it := range items {
		r := cum + (it.w-1)/2
		if r >= target {
			if math.IsInf(prevRank, -1) || r == prevRank {
				return clamp(it.v, s.min, s.max)
			}
			frac := (target - prevRank) / (r - prevRank)
			return clamp(prevVal+(it.v-prevVal)*frac, s.min, s.max)
		}
		prevRank, prevVal = r, it.v
		cum += it.w
	}
	return s.max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DistinctSketch counts distinct values with a two-phase design: an exact
// value set up to distinctTrackLimit (so small cardinalities — the ones
// feature typing, categorical detection, and inclusion dependencies
// depend on — stay exact), then a K-minimum-values hash estimator once
// the set overflows. Both phases merge associatively, and the result is
// order-independent: the same value set always yields the same estimate.
type DistinctSketch struct {
	vals     map[string]struct{} // exact values; nil once overflowed
	bits     map[uint64]struct{} // numeric dedup: float bits already rendered
	kmvIn    map[uint64]struct{} // hashes currently held in kmv
	kmv      []uint64            // max-heap of the kmvK smallest hashes
	overflow bool
}

// NewDistinctSketch returns an empty sketch.
func NewDistinctSketch() *DistinctSketch {
	return &DistinctSketch{
		vals:  make(map[string]struct{}),
		kmvIn: make(map[uint64]struct{}),
	}
}

// AddStr inserts a string value.
func (d *DistinctSketch) AddStr(v string) {
	d.addHash(fnvHash64(v))
	d.insert(v)
}

// needsRender reports whether the caller should render the numeric value
// with the given float bits to a string and pass it to insertRendered —
// i.e. whether the exact set is still live and these bits are new. The
// KMV estimator is updated unconditionally, so an overflowed sketch never
// pays the render cost.
func (d *DistinctSketch) needsRender(bits uint64) bool {
	d.addHash(mix64(bits))
	if d.vals == nil {
		return false
	}
	if d.bits == nil {
		d.bits = make(map[uint64]struct{})
	}
	if _, ok := d.bits[bits]; ok {
		return false
	}
	d.bits[bits] = struct{}{}
	return true
}

// insertRendered records the rendered string of float bits previously
// approved by needsRender.
func (d *DistinctSketch) insertRendered(v string) { d.insert(v) }

func (d *DistinctSketch) insert(v string) {
	if d.vals == nil {
		return
	}
	d.vals[v] = struct{}{}
	if len(d.vals) > distinctTrackLimit {
		d.spill()
	}
}

// spill drops the exact set, leaving only the KMV estimator.
func (d *DistinctSketch) spill() {
	d.vals, d.bits, d.overflow = nil, nil, true
}

// addHash feeds one value hash to the KMV estimator (k smallest distinct
// hashes, kept as a max-heap so the largest retained hash is O(1)).
func (d *DistinctSketch) addHash(h uint64) {
	if _, ok := d.kmvIn[h]; ok {
		return
	}
	if len(d.kmv) < kmvK {
		d.kmvIn[h] = struct{}{}
		d.kmv = append(d.kmv, h)
		heapUp(d.kmv, len(d.kmv)-1)
		return
	}
	if h >= d.kmv[0] {
		return
	}
	delete(d.kmvIn, d.kmv[0])
	d.kmvIn[h] = struct{}{}
	d.kmv[0] = h
	heapDown(d.kmv, 0)
}

// Exact reports whether the sketch still tracks the exact value set.
func (d *DistinctSketch) Exact() bool { return d.vals != nil }

// Estimate returns the distinct count: exact while the value set is
// live, the KMV estimate afterwards.
func (d *DistinctSketch) Estimate() int {
	if d.vals != nil {
		return len(d.vals)
	}
	if len(d.kmv) < kmvK {
		return len(d.kmv)
	}
	kth := float64(d.kmv[0])
	if kth == 0 {
		return len(d.kmv)
	}
	return int(float64(kmvK-1)/(kth/float64(math.MaxUint64)) + 0.5)
}

// Merge folds o into d (set union in both phases; exactness survives only
// when both sides are exact and the union stays under the cap).
func (d *DistinctSketch) Merge(o *DistinctSketch) {
	if o == nil {
		return
	}
	for h := range o.kmvIn {
		d.addHash(h)
	}
	if o.vals == nil {
		d.spill()
	}
	if d.vals == nil {
		return
	}
	for v := range o.vals {
		d.insert(v)
		if d.vals == nil {
			return
		}
	}
	for b := range o.bits {
		if d.bits == nil {
			d.bits = make(map[uint64]struct{})
		}
		d.bits[b] = struct{}{}
	}
}

// values returns the exact value map (nil once overflowed). Shared with
// the Summary that owns the sketch — read-only.
func (d *DistinctSketch) values() map[string]struct{} { return d.vals }

func heapUp(h []uint64, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func heapDown(h []uint64, i int) {
	n := len(h)
	for {
		l, r, big := 2*i+1, 2*i+2, i
		if l < n && h[l] > h[big] {
			big = l
		}
		if r < n && h[r] > h[big] {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// fnvHash64 is FNV-1a over the string bytes.
func fnvHash64(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer — a cheap bijective scrambler that
// spreads float bit patterns uniformly over the KMV hash space.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// momentState accumulates count/mean/M2 (Welford) plus exact min/max, and
// merges with the Chan et al. parallel-variance formula.
type momentState struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

func newMomentState() momentState {
	return momentState{min: math.Inf(1), max: math.Inf(-1)}
}

func (m *momentState) add(v float64) {
	m.n++
	d := v - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (v - m.mean)
	if v < m.min {
		m.min = v
	}
	if v > m.max {
		m.max = v
	}
}

func (m *momentState) merge(o momentState) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.mean += d * float64(o.n) / float64(n)
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.n = n
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
}

// sketchState is the mergeable per-chunk summary state: cell counts, the
// distinct sketch, and (numeric kinds) moments plus the quantile sketch.
// States built over disjoint row ranges merge associatively into exactly
// what a single pass over the concatenation would produce (distinct
// counts identically; quantiles within the documented bound).
type sketchState struct {
	rows     int
	missing  int
	numeric  bool
	moments  momentState
	quant    *QuantileSketch
	distinct *DistinctSketch
}

func newSketchState(numeric bool) *sketchState {
	st := &sketchState{numeric: numeric, distinct: NewDistinctSketch(), moments: newMomentState()}
	if numeric {
		st.quant = NewQuantileSketch()
	}
	return st
}

// observe feeds row i of column c into the state.
func (st *sketchState) observe(c *Column, i int) {
	st.rows++
	if c.IsMissing(i) {
		st.missing++
		return
	}
	if !st.numeric {
		st.distinct.AddStr(c.Str(i))
		return
	}
	v := c.Num(i)
	if st.distinct.needsRender(math.Float64bits(v)) {
		st.distinct.insertRendered(c.ValueString(i))
	}
	st.moments.add(v)
	st.quant.Add(v)
}

// merge folds o into st in order.
func (st *sketchState) merge(o *sketchState) {
	st.rows += o.rows
	st.missing += o.missing
	st.distinct.Merge(o.distinct)
	if st.numeric {
		st.moments.merge(o.moments)
		st.quant.Merge(o.quant)
	}
}

// finalize renders the state into a Summary. The sketch summary carries
// no sortedNums — quantile queries answer from the retained sketch — so
// it releases the O(rows) sorted copy the exact backend pins.
func (st *sketchState) finalize() *Summary {
	s := &Summary{
		Rows:    st.rows,
		Missing: st.missing,
		Approx:  true,
	}
	if set := st.distinct.values(); set != nil {
		s.distinctSet = set
		s.Distinct = make([]string, 0, len(set))
		for v := range set {
			s.Distinct = append(s.Distinct, v)
		}
		sort.Strings(s.Distinct)
	} else {
		s.dsketch = st.distinct
	}
	if st.numeric && st.moments.n > 0 {
		s.Stats = Stats{
			Count:  st.moments.n,
			Min:    st.moments.min,
			Max:    st.moments.max,
			Mean:   st.moments.mean,
			Std:    math.Sqrt(st.moments.m2 / float64(st.moments.n)),
			Median: st.quant.Quantile(0.5),
			Q1:     st.quant.Quantile(0.25),
			Q3:     st.quant.Quantile(0.75),
		}
		s.qsketch = st.quant
	}
	return s
}

// computeSummarySketch builds the column summary from per-chunk sketch
// states merged in row order — the same composition the chunked ingest
// and a future out-of-core column store use, so "summarize a column" and
// "merge chunk summaries" are one code path.
func (c *Column) computeSummarySketch() *Summary {
	n := c.Len()
	numeric := c.Kind != KindString
	total := newSketchState(numeric)
	for start := 0; start < n; start += sketchMergeRows {
		end := start + sketchMergeRows
		if end > n {
			end = n
		}
		chunk := newSketchState(numeric)
		for i := start; i < end; i++ {
			chunk.observe(c, i)
		}
		total.merge(chunk)
	}
	return total.finalize()
}
