package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// qsketchRankEps is the rank-error bound the tests pin for the quantile
// sketch at up to 1M values: the estimated q-quantile must sit within
// ±2% of rank q in the sorted data. (Observed error is well under 1%;
// the bound leaves deterministic-compaction headroom.)
const qsketchRankEps = 0.02

// rankErr returns how far the q-rank falls outside the rank interval v
// occupies in sorted. A value repeated heavily (ties) covers a whole rank
// range; any q inside it is a zero-error answer — the standard rank-error
// definition for quantile sketches.
func rankErr(sorted []float64, v, q float64) float64 {
	n := float64(len(sorted))
	lo := float64(sort.SearchFloat64s(sorted, v)) / n
	hi := float64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })) / n
	switch {
	case q < lo:
		return lo - q
	case q > hi:
		return q - hi
	default:
		return 0
	}
}

// Below compaction capacity the sketch holds every value, so quantiles
// must equal the exact interpolation convention bit for bit.
func TestQuantileSketchExactBelowCap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 7, qsketchCap - 1} {
		s := NewQuantileSketch()
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
			s.Add(vals[i])
		}
		sort.Float64s(vals)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			want := quantileSorted(vals, q)
			got := s.Quantile(q)
			if math.Float64bits(want) != math.Float64bits(got) {
				t.Fatalf("n=%d q=%v: got %v, want %v (must be exact below cap)", n, q, got, want)
			}
		}
	}
}

func TestQuantileSketchErrorBound(t *testing.T) {
	dists := map[string]func(*rand.Rand) float64{
		"uniform": func(r *rand.Rand) float64 { return r.Float64() },
		"normal":  func(r *rand.Rand) float64 { return r.NormFloat64() },
		"lognorm": func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64() * 2) },
		"zipfish": func(r *rand.Rand) float64 { return math.Floor(1 / (r.Float64() + 1e-6)) },
	}
	for name, gen := range dists {
		rng := rand.New(rand.NewSource(42))
		n := 200000
		s := NewQuantileSketch()
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = gen(rng)
			s.Add(vals[i])
		}
		sort.Float64s(vals)
		for _, q := range []float64{0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99} {
			est := s.Quantile(q)
			if e := rankErr(vals, est, q); e > qsketchRankEps {
				t.Fatalf("%s q=%v: estimate %v rank err %v > %v", name, q, est, e, qsketchRankEps)
			}
		}
		if s.Min() != vals[0] || s.Max() != vals[n-1] {
			t.Fatalf("%s: min/max not exact", name)
		}
		if s.Count() != n {
			t.Fatalf("%s: count %d", name, s.Count())
		}
	}
}

// Chunked adds + merges must stay within the same bound as a single
// stream, and the whole pipeline must be deterministic: two identical
// runs produce bit-identical estimates.
func TestQuantileSketchMergeAndDeterminism(t *testing.T) {
	build := func(chunks int) *QuantileSketch {
		rng := rand.New(rand.NewSource(9))
		n := 120000
		parts := make([]*QuantileSketch, chunks)
		for i := range parts {
			parts[i] = NewQuantileSketch()
		}
		for i := 0; i < n; i++ {
			parts[i*chunks/n].Add(rng.NormFloat64())
		}
		total := NewQuantileSketch()
		for _, p := range parts {
			total.Merge(p)
		}
		return total
	}
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 120000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	sort.Float64s(vals)
	a, b := build(16), build(16)
	single := build(1)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		if math.Float64bits(a.Quantile(q)) != math.Float64bits(b.Quantile(q)) {
			t.Fatalf("q=%v: merge path nondeterministic", q)
		}
		for _, s := range []*QuantileSketch{single, a} {
			if e := rankErr(vals, s.Quantile(q), q); e > qsketchRankEps {
				t.Fatalf("q=%v: rank err %v", q, e)
			}
		}
	}
	if a.Count() != 120000 {
		t.Fatalf("merged count %d", a.Count())
	}
}

func TestQuantileSketchEmpty(t *testing.T) {
	s := NewQuantileSketch()
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty sketch must answer NaN")
	}
	s.Merge(NewQuantileSketch())
	if s.Count() != 0 {
		t.Fatal("merging empties must stay empty")
	}
}

// Up to distinctTrackLimit values the distinct sketch is an exact set —
// including across merges — and beyond it the KMV estimate stays within
// a few percent.
func TestDistinctSketchExactAndEstimate(t *testing.T) {
	d := NewDistinctSketch()
	for i := 0; i < 3000; i++ {
		d.AddStr(fmt.Sprintf("v%d", i%1500))
	}
	if !d.Exact() || d.Estimate() != 1500 {
		t.Fatalf("exact phase: Exact=%v Estimate=%d, want 1500", d.Exact(), d.Estimate())
	}

	a, b := NewDistinctSketch(), NewDistinctSketch()
	for i := 0; i < 2000; i++ {
		a.AddStr(fmt.Sprintf("x%d", i))
		b.AddStr(fmt.Sprintf("x%d", i+1000)) // 1000 overlap → 3000 union
	}
	a.Merge(b)
	if !a.Exact() || a.Estimate() != 3000 {
		t.Fatalf("merged exact: Exact=%v Estimate=%d, want 3000", a.Exact(), a.Estimate())
	}

	big := NewDistinctSketch()
	const truth = 50000
	for i := 0; i < truth*2; i++ {
		big.AddStr(fmt.Sprintf("k%d", i%truth))
	}
	if big.Exact() {
		t.Fatal("must overflow beyond distinctTrackLimit")
	}
	est := big.Estimate()
	if rel := math.Abs(float64(est)-truth) / truth; rel > 0.10 {
		t.Fatalf("KMV estimate %d vs %d: rel err %v > 10%%", est, truth, rel)
	}
}

// The KMV phase is a set construction, so the estimate must not depend on
// insertion order or merge shape.
func TestDistinctSketchOrderIndependence(t *testing.T) {
	n := 20000
	forward, backward := NewDistinctSketch(), NewDistinctSketch()
	for i := 0; i < n; i++ {
		forward.AddStr(fmt.Sprintf("v%d", i))
		backward.AddStr(fmt.Sprintf("v%d", n-1-i))
	}
	if forward.Estimate() != backward.Estimate() {
		t.Fatalf("order dependent: %d vs %d", forward.Estimate(), backward.Estimate())
	}
	parts := make([]*DistinctSketch, 8)
	for i := range parts {
		parts[i] = NewDistinctSketch()
	}
	for i := 0; i < n; i++ {
		parts[i%8].AddStr(fmt.Sprintf("v%d", i))
	}
	merged := NewDistinctSketch()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Estimate() != forward.Estimate() {
		t.Fatalf("merge shape dependent: %d vs %d", merged.Estimate(), forward.Estimate())
	}
}

func TestMomentStateMergeMatchesSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 100000)
	single := newMomentState()
	parts := make([]momentState, 7)
	for i := range parts {
		parts[i] = newMomentState()
	}
	for i := range vals {
		vals[i] = rng.NormFloat64()*50 + 10
		single.add(vals[i])
		parts[i%7].add(vals[i])
	}
	merged := newMomentState()
	for _, p := range parts {
		merged.merge(p)
	}
	if merged.n != single.n || merged.min != single.min || merged.max != single.max {
		t.Fatal("count/min/max must merge exactly")
	}
	if math.Abs(merged.mean-single.mean) > 1e-9 || math.Abs(merged.m2-single.m2)/single.m2 > 1e-9 {
		t.Fatalf("moments drift: mean %v vs %v, m2 %v vs %v", merged.mean, single.mean, merged.m2, single.m2)
	}
}

// Small columns: the sketch summary must agree with the exact backend on
// everything that matters (counts, distinct set, min/max/quantiles — the
// quantile sketch is exact below capacity).
func TestSketchSummaryMatchesExactSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = math.Round(rng.NormFloat64() * 100)
	}
	c := NewNumeric("v", vals)
	c.SetMissing(7)
	c.SetMissing(130)

	exact := c.SummaryWith(SummaryExact)
	sk := c.SummaryWith(SummarySketch)
	if exact.Approx || !sk.Approx {
		t.Fatalf("Approx flags: exact=%v sketch=%v", exact.Approx, sk.Approx)
	}
	if sk.Rows != exact.Rows || sk.Missing != exact.Missing || sk.DistinctCount() != exact.DistinctCount() {
		t.Fatalf("counts differ: %d/%d/%d vs %d/%d/%d", sk.Rows, sk.Missing, sk.DistinctCount(), exact.Rows, exact.Missing, exact.DistinctCount())
	}
	for i, v := range exact.Distinct {
		if sk.Distinct[i] != v {
			t.Fatalf("distinct[%d] %q vs %q", i, sk.Distinct[i], v)
		}
		if !sk.Contains(v) {
			t.Fatalf("Contains(%q) false", v)
		}
	}
	es, ss := exact.Stats, sk.Stats
	if ss.Count != es.Count || ss.Min != es.Min || ss.Max != es.Max {
		t.Fatalf("stats count/min/max differ: %+v vs %+v", ss, es)
	}
	if math.Abs(ss.Mean-es.Mean) > 1e-9 || math.Abs(ss.Std-es.Std) > 1e-9 {
		t.Fatalf("mean/std differ: %+v vs %+v", ss, es)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if math.Float64bits(sk.Quantile(q)) != math.Float64bits(exact.Quantile(q)) {
			t.Fatalf("q=%v: %v vs %v (exact below cap)", q, sk.Quantile(q), exact.Quantile(q))
		}
	}
	if ss.Median != es.Median || ss.Q1 != es.Q1 || ss.Q3 != es.Q3 {
		t.Fatalf("quartiles differ: %+v vs %+v", ss, es)
	}
}

// Large columns: sketch quantiles stay within the documented rank bound of
// the exact backend, distinct estimates within KMV tolerance, and the
// sketch summary must not retain a sorted copy.
func TestSketchSummaryBoundsLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 300000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1000
	}
	c := NewNumeric("v", vals)
	exact := c.SummaryWith(SummaryExact)
	sk := c.SummaryWith(SummarySketch)
	sort.Float64s(vals)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		if e := rankErr(vals, sk.Quantile(q), q); e > qsketchRankEps {
			t.Fatalf("q=%v: rank err %v > %v", q, e, qsketchRankEps)
		}
	}
	if sk.Stats.Min != exact.Stats.Min || sk.Stats.Max != exact.Stats.Max || sk.Stats.Count != exact.Stats.Count {
		t.Fatal("min/max/count must be exact under sketch")
	}
	if math.Abs(sk.Stats.Mean-exact.Stats.Mean) > 1e-6 || math.Abs(sk.Stats.Std-exact.Stats.Std)/exact.Stats.Std > 1e-6 {
		t.Fatal("mean/std must match to float tolerance")
	}
	truth := exact.DistinctCount()
	if rel := math.Abs(float64(sk.DistinctCount()-truth)) / float64(truth); rel > 0.10 {
		t.Fatalf("distinct estimate %d vs %d: rel err %v", sk.DistinctCount(), truth, rel)
	}
	if len(sk.sortedNums) != 0 {
		t.Fatal("sketch summary must not retain sortedNums")
	}
	if len(exact.sortedNums) != n {
		t.Fatal("exact summary must retain sortedNums")
	}
}

// Backend selection and caching: auto flips to sketch at SketchAutoRows,
// the two backends cache independently, and mutation invalidates both.
func TestSummaryBackendSelectionAndCaching(t *testing.T) {
	small := NewNumeric("s", make([]float64, 100))
	if small.SummaryWith(SummaryAuto).Approx {
		t.Fatal("auto on a small column must be exact")
	}
	big := NewNumeric("b", make([]float64, SketchAutoRows))
	if !big.SummaryWith(SummaryAuto).Approx {
		t.Fatal("auto at SketchAutoRows must sketch")
	}

	c := NewNumeric("c", []float64{1, 2, 3, 4})
	e1, s1 := c.SummaryWith(SummaryExact), c.SummaryWith(SummarySketch)
	if e1 == s1 {
		t.Fatal("backends must not share cache slots")
	}
	if c.SummaryWith(SummaryExact) != e1 || c.SummaryWith(SummarySketch) != s1 {
		t.Fatal("repeated calls must hit the per-backend cache")
	}
	if c.Summary() != e1 {
		t.Fatal("default backend must be exact")
	}
	c.SetNum(0, 99)
	if c.SummaryWith(SummaryExact) == e1 || c.SummaryWith(SummarySketch) == s1 {
		t.Fatal("mutation must invalidate both backend caches")
	}

	SetDefaultSummaryBackend(SummarySketch)
	defer SetDefaultSummaryBackend(SummaryDefault)
	if !c.Summary().Approx {
		t.Fatal("process default must reroute Summary()")
	}
}

func TestParseSummaryBackend(t *testing.T) {
	for in, want := range map[string]SummaryBackend{
		"": SummaryDefault, "default": SummaryDefault,
		"exact": SummaryExact, "sketch": SummarySketch, "auto": SummaryAuto,
	} {
		got, err := ParseSummaryBackend(in)
		if err != nil || got != want {
			t.Fatalf("ParseSummaryBackend(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Fatalf("String() = %q, want %q", got.String(), in)
		}
	}
	if _, err := ParseSummaryBackend("bogus"); err == nil {
		t.Fatal("bogus backend must error")
	}
}

// String columns under the sketch backend: distinct set exact under the
// cap, Stats zero, Quantile NaN — same contract as exact.
func TestSketchSummaryStringColumn(t *testing.T) {
	c := NewString("s", []string{"b", "a", "b", "", "c"})
	c.SetMissing(3)
	sk := c.SummaryWith(SummarySketch)
	exact := c.SummaryWith(SummaryExact)
	if sk.Missing != exact.Missing || sk.DistinctCount() != exact.DistinctCount() {
		t.Fatal("string column counts differ")
	}
	for i := range exact.Distinct {
		if sk.Distinct[i] != exact.Distinct[i] {
			t.Fatal("string distinct set differs")
		}
	}
	if !math.IsNaN(sk.Quantile(0.5)) {
		t.Fatal("string sketch summary must answer NaN quantiles")
	}
	if sk.Stats != (Stats{}) {
		t.Fatal("string sketch summary must have zero Stats")
	}
}
