package data

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// SummaryBackend selects how Column.Summary computes its statistics,
// mirroring the training-backend convention (backend=exact|hist|auto).
type SummaryBackend int

const (
	// SummaryDefault defers to the process-wide default backend
	// (SetDefaultSummaryBackend; exact unless overridden).
	SummaryDefault SummaryBackend = iota
	// SummaryExact is the full-fidelity path: exact distinct sets and a
	// sorted value copy for quantiles — bit-identical to the historical
	// Summary behaviour.
	SummaryExact
	// SummarySketch is the mergeable one-pass path: moments, a
	// fixed-size quantile sketch, and an exact-until-cap distinct sketch.
	// No sorted column copy is built or retained.
	SummarySketch
	// SummaryAuto picks SummarySketch for columns with at least
	// SketchAutoRows rows and SummaryExact below.
	SummaryAuto
)

// String returns the backend name as used by flags ("exact", "sketch",
// "auto"; the zero value renders as "default").
func (b SummaryBackend) String() string {
	switch b {
	case SummaryExact:
		return "exact"
	case SummarySketch:
		return "sketch"
	case SummaryAuto:
		return "auto"
	default:
		return "default"
	}
}

// ParseSummaryBackend parses a -summary-backend flag value.
func ParseSummaryBackend(s string) (SummaryBackend, error) {
	switch s {
	case "", "default":
		return SummaryDefault, nil
	case "exact":
		return SummaryExact, nil
	case "sketch":
		return SummarySketch, nil
	case "auto":
		return SummaryAuto, nil
	default:
		return SummaryDefault, fmt.Errorf("data: unknown summary backend %q (want exact|sketch|auto)", s)
	}
}

// defaultSummaryBackend is the process-wide backend Summary() resolves
// SummaryDefault to. Exact by default so existing behaviour is unchanged
// unless a caller (e.g. the -summary-backend CLI flag) opts in.
var defaultSummaryBackend atomic.Int32

// SetDefaultSummaryBackend installs the process-wide default backend
// (SummaryDefault restores exact). Safe for concurrent use, but callers
// should set it once at startup: cached summaries and profiles are keyed
// by the backend that computed them, not by later default flips.
func SetDefaultSummaryBackend(b SummaryBackend) { defaultSummaryBackend.Store(int32(b)) }

// DefaultSummaryBackend returns the current process-wide default.
func DefaultSummaryBackend() SummaryBackend {
	b := SummaryBackend(defaultSummaryBackend.Load())
	if b == SummaryDefault {
		return SummaryExact
	}
	return b
}

// resolveBackend maps a requested backend to the concrete one (exact or
// sketch) for a column of n rows.
func resolveBackend(b SummaryBackend, n int) SummaryBackend {
	if b == SummaryDefault {
		b = DefaultSummaryBackend()
	}
	if b == SummaryAuto {
		if n >= SketchAutoRows {
			return SummarySketch
		}
		return SummaryExact
	}
	if b != SummarySketch {
		return SummaryExact
	}
	return b
}

// Summary is the memoized one-pass statistics bundle of a column: the
// missing-cell count, the sorted distinct value set, and (for numeric
// kinds) the full Stats plus the sorted non-missing values that quantile
// queries interpolate over. It is computed once per column mutation
// generation by Column.Summary and shared by every caller, which turns the
// profiler's repeated Distinct/MissingCount/NumericStats calls — formerly
// a full column scan each — into pointer loads.
//
// A Summary is immutable after construction. Callers must treat every
// field, including the Distinct slice, as read-only: the same instance is
// handed to concurrent profiler workers.
type Summary struct {
	// Rows is the total cell count at computation time.
	Rows int
	// Missing is the number of missing cells.
	Missing int
	// Distinct holds the distinct non-missing values rendered as strings,
	// sorted ascending. Shared — do not modify.
	Distinct []string
	// Stats summarizes the numeric values (zero for string columns).
	Stats Stats
	// Approx marks a sketch-backend summary: quantiles come from a
	// fixed-size sketch (within the documented rank-error bound) and the
	// distinct set is exact only up to distinctTrackLimit values. Exact
	// summaries always have Approx false.
	Approx bool

	distinctSet map[string]struct{}
	sortedNums  []float64       // ascending non-missing values, exact numeric only
	qsketch     *QuantileSketch // quantile source when sortedNums is released
	dsketch     *DistinctSketch // distinct estimate once the exact set overflowed
}

// DistinctCount returns the number of distinct non-missing values. Under
// the sketch backend the count is a KMV estimate once the column exceeds
// distinctTrackLimit distinct values; below that (and always under the
// exact backend) it is exact.
func (s *Summary) DistinctCount() int {
	if s.dsketch != nil {
		return s.dsketch.Estimate()
	}
	return len(s.Distinct)
}

// Present returns the number of non-missing cells.
func (s *Summary) Present() int { return s.Rows - s.Missing }

// Contains reports whether v is one of the distinct non-missing values.
func (s *Summary) Contains(v string) bool {
	_, ok := s.distinctSet[v]
	return ok
}

// Quantile interpolates the q-quantile of the non-missing numeric values,
// or NaN for string/empty columns (same contract as Column.Quantile).
// Sketch summaries answer from the retained quantile sketch instead of a
// sorted copy.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.sortedNums) == 0 {
		if s.qsketch != nil {
			return s.qsketch.Quantile(q)
		}
		return math.NaN()
	}
	if q <= 0 {
		return s.sortedNums[0]
	}
	if q >= 1 {
		return s.sortedNums[len(s.sortedNums)-1]
	}
	return quantileSorted(s.sortedNums, q)
}

// summaryEntry pins a computed Summary to the column state it was computed
// from: the mutation version, the row count, and the column kind. Since all
// cell storage is behind mutating accessors that bump the version, the only
// out-of-band change the key must catch is a rewrite of the exported Kind
// field (pipescript type conversions flip it after recoding values), which
// changes how values render in Distinct.
type summaryEntry struct {
	version uint64
	rows    int
	kind    Kind
	sum     *Summary
}

// Summary returns the cached one-pass statistics of the column under the
// process-wide default backend, computing them if the column mutated
// since the last call. Invalidation is automatic: every mutating accessor
// (SetNum, SetStr, SetMissing, ClearMissing, the Append* family) bumps
// the version this cache is keyed on — there is no manual Touch()
// contract anymore. Concurrent readers are safe (each backend's cache is
// a single atomic pointer; racing computations produce identical
// summaries and the last store wins). Mutations must not run concurrently
// with readers — the same rule that governs all column access.
func (c *Column) Summary() *Summary { return c.SummaryWith(SummaryDefault) }

// SummaryWith is Summary under an explicit backend. Exact and sketch
// summaries are cached independently per mutation generation, so a
// profiler running the sketch backend never evicts (or is polluted by)
// the exact summaries pipeline operators rely on.
func (c *Column) SummaryWith(b SummaryBackend) *Summary {
	slot := &c.cache
	if resolveBackend(b, c.Len()) == SummarySketch {
		slot = &c.cacheSketch
	}
	v := c.version.Load()
	if e := slot.Load(); e != nil && e.version == v && e.rows == c.Len() && e.kind == c.Kind {
		return e.sum
	}
	var sum *Summary
	if slot == &c.cacheSketch {
		sum = c.computeSummarySketch()
	} else {
		sum = c.computeSummary()
	}
	slot.Store(&summaryEntry{version: v, rows: c.Len(), kind: c.Kind, sum: sum})
	return sum
}

// computeSummary builds the Summary in a single pass over the column (plus
// one sort of the distinct set and, for numeric kinds, one sort of the
// values for the order statistics).
func (c *Column) computeSummary() *Summary {
	n := c.Len()
	s := &Summary{Rows: n, distinctSet: make(map[string]struct{})}
	numeric := c.Kind != KindString
	var vals []float64
	if numeric {
		vals = make([]float64, 0, n)
	}
	for i := 0; i < n; i++ {
		if c.IsMissing(i) {
			s.Missing++
			continue
		}
		s.distinctSet[c.ValueString(i)] = struct{}{}
		if numeric {
			vals = append(vals, c.Num(i))
		}
	}
	s.Distinct = make([]string, 0, len(s.distinctSet))
	for v := range s.distinctSet {
		s.Distinct = append(s.Distinct, v)
	}
	sort.Strings(s.Distinct)
	if !numeric || len(vals) == 0 {
		return s
	}

	st := Stats{Count: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(len(vals))
	varsum := 0.0
	for _, v := range vals {
		d := v - st.Mean
		varsum += d * d
	}
	st.Std = math.Sqrt(varsum / float64(len(vals)))
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		st.Median = vals[mid]
	} else {
		st.Median = (vals[mid-1] + vals[mid]) / 2
	}
	st.Q1 = quantileSorted(vals, 0.25)
	st.Q3 = quantileSorted(vals, 0.75)
	s.Stats = st
	s.sortedNums = vals
	return s
}
