package data

import (
	"math"
	"sort"
)

// Summary is the memoized one-pass statistics bundle of a column: the
// missing-cell count, the sorted distinct value set, and (for numeric
// kinds) the full Stats plus the sorted non-missing values that quantile
// queries interpolate over. It is computed once per column mutation
// generation by Column.Summary and shared by every caller, which turns the
// profiler's repeated Distinct/MissingCount/NumericStats calls — formerly
// a full column scan each — into pointer loads.
//
// A Summary is immutable after construction. Callers must treat every
// field, including the Distinct slice, as read-only: the same instance is
// handed to concurrent profiler workers.
type Summary struct {
	// Rows is the total cell count at computation time.
	Rows int
	// Missing is the number of missing cells.
	Missing int
	// Distinct holds the distinct non-missing values rendered as strings,
	// sorted ascending. Shared — do not modify.
	Distinct []string
	// Stats summarizes the numeric values (zero for string columns).
	Stats Stats

	distinctSet map[string]struct{}
	sortedNums  []float64 // ascending non-missing values, numeric kinds only
}

// DistinctCount returns the number of distinct non-missing values.
func (s *Summary) DistinctCount() int { return len(s.Distinct) }

// Present returns the number of non-missing cells.
func (s *Summary) Present() int { return s.Rows - s.Missing }

// Contains reports whether v is one of the distinct non-missing values.
func (s *Summary) Contains(v string) bool {
	_, ok := s.distinctSet[v]
	return ok
}

// Quantile interpolates the q-quantile of the non-missing numeric values,
// or NaN for string/empty columns (same contract as Column.Quantile).
func (s *Summary) Quantile(q float64) float64 {
	if len(s.sortedNums) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.sortedNums[0]
	}
	if q >= 1 {
		return s.sortedNums[len(s.sortedNums)-1]
	}
	return quantileSorted(s.sortedNums, q)
}

// summaryEntry pins a computed Summary to the column state it was computed
// from: the mutation version, the row count, and the column kind. Since all
// cell storage is behind mutating accessors that bump the version, the only
// out-of-band change the key must catch is a rewrite of the exported Kind
// field (pipescript type conversions flip it after recoding values), which
// changes how values render in Distinct.
type summaryEntry struct {
	version uint64
	rows    int
	kind    Kind
	sum     *Summary
}

// Summary returns the cached one-pass statistics of the column, computing
// them if the column mutated since the last call. Invalidation is
// automatic: every mutating accessor (SetNum, SetStr, SetMissing,
// ClearMissing, the Append* family) bumps the version this cache is keyed
// on — there is no manual Touch() contract anymore. Concurrent readers are
// safe (the cache is a single atomic pointer; racing computations produce
// identical summaries and the last store wins). Mutations must not run
// concurrently with readers — the same rule that governs all column access.
func (c *Column) Summary() *Summary {
	v := c.version.Load()
	if e := c.cache.Load(); e != nil && e.version == v && e.rows == c.Len() && e.kind == c.Kind {
		return e.sum
	}
	sum := c.computeSummary()
	c.cache.Store(&summaryEntry{version: v, rows: c.Len(), kind: c.Kind, sum: sum})
	return sum
}

// computeSummary builds the Summary in a single pass over the column (plus
// one sort of the distinct set and, for numeric kinds, one sort of the
// values for the order statistics).
func (c *Column) computeSummary() *Summary {
	n := c.Len()
	s := &Summary{Rows: n, distinctSet: make(map[string]struct{})}
	numeric := c.Kind != KindString
	var vals []float64
	if numeric {
		vals = make([]float64, 0, n)
	}
	for i := 0; i < n; i++ {
		if c.IsMissing(i) {
			s.Missing++
			continue
		}
		s.distinctSet[c.ValueString(i)] = struct{}{}
		if numeric {
			vals = append(vals, c.Num(i))
		}
	}
	s.Distinct = make([]string, 0, len(s.distinctSet))
	for v := range s.distinctSet {
		s.Distinct = append(s.Distinct, v)
	}
	sort.Strings(s.Distinct)
	if !numeric || len(vals) == 0 {
		return s
	}

	st := Stats{Count: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(len(vals))
	varsum := 0.0
	for _, v := range vals {
		d := v - st.Mean
		varsum += d * d
	}
	st.Std = math.Sqrt(varsum / float64(len(vals)))
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		st.Median = vals[mid]
	} else {
		st.Median = (vals[mid-1] + vals[mid]) / 2
	}
	st.Q1 = quantileSorted(vals, 0.25)
	st.Q3 = quantileSorted(vals, 0.75)
	s.Stats = st
	s.sortedNums = vals
	return s
}
