package data

import (
	"math"
	"testing"
)

// statsEqual compares Stats field-by-field, treating NaN as equal to NaN.
func statsEqual(a, b Stats) bool {
	eq := func(x, y float64) bool {
		if math.IsNaN(x) && math.IsNaN(y) {
			return true
		}
		return x == y
	}
	return a.Count == b.Count && eq(a.Min, b.Min) && eq(a.Max, b.Max) &&
		eq(a.Mean, b.Mean) && eq(a.Median, b.Median) && eq(a.Std, b.Std) &&
		eq(a.Q1, b.Q1) && eq(a.Q3, b.Q3)
}

// assertSummaryFresh checks that a column's memoized statistics match a
// from-scratch recomputation (a Clone starts with an empty cache).
func assertSummaryFresh(t *testing.T, c *Column, ctx string) {
	t.Helper()
	fresh := c.Clone()
	if got, want := c.MissingCount(), fresh.MissingCount(); got != want {
		t.Errorf("%s: MissingCount = %d, fresh recompute = %d (stale summary)", ctx, got, want)
	}
	if got, want := c.DistinctCount(), fresh.DistinctCount(); got != want {
		t.Errorf("%s: DistinctCount = %d, fresh recompute = %d (stale summary)", ctx, got, want)
	}
	if got, want := c.NumericStats(), fresh.NumericStats(); !statsEqual(got, want) {
		t.Errorf("%s: NumericStats = %+v, fresh recompute = %+v (stale summary)", ctx, got, want)
	}
}

func TestSummaryMemoized(t *testing.T) {
	c := NewNumeric("x", []float64{3, 1, 2, 2})
	s1 := c.Summary()
	if s2 := c.Summary(); s2 != s1 {
		t.Fatal("unchanged column must return the cached summary pointer")
	}
	if s1.Rows != 4 || s1.Missing != 0 || s1.DistinctCount() != 3 {
		t.Fatalf("summary content wrong: %+v", s1)
	}
	if got := s1.Stats.Median; got != 2 {
		t.Fatalf("median = %g, want 2", got)
	}
	c.SetNum(0, c.Num(0)) // even a value-preserving write bumps the version
	if s3 := c.Summary(); s3 == s1 {
		t.Fatal("SetNum must invalidate the cached summary")
	}
}

func TestSummaryMutatingHelpersInvalidate(t *testing.T) {
	c := NewNumeric("x", []float64{1, 2, 3, 4})
	_ = c.Summary() // warm
	c.SetMissing(0)
	assertSummaryFresh(t, c, "SetMissing")

	src := NewNumeric("x", []float64{9})
	c.AppendFrom(src, 0)
	assertSummaryFresh(t, c, "AppendFrom")

	c.AppendMissing()
	assertSummaryFresh(t, c, "AppendMissing")
}

func TestSummaryBulkAppendInvalidates(t *testing.T) {
	c := NewNumeric("x", []float64{1, 2})
	if got := c.NumericStats().Count; got != 2 {
		t.Fatalf("warm count = %d", got)
	}
	c.AppendNums(3)
	if got := c.NumericStats().Count; got != 3 {
		t.Fatalf("count after AppendNums = %d, want 3", got)
	}
	assertSummaryFresh(t, c, "AppendNums")

	s := NewString("s", []string{"a"})
	if s.DistinctCount() != 1 {
		t.Fatal("warm distinct wrong")
	}
	s.AppendStrs("b", "c")
	if got := s.DistinctCount(); got != 3 {
		t.Fatalf("DistinctCount after AppendStrs = %d, want 3", got)
	}
	assertSummaryFresh(t, s, "AppendStrs")
}

func TestSummarySetterInvalidates(t *testing.T) {
	c := NewString("s", []string{"a", "a", "a"})
	if c.DistinctCount() != 1 {
		t.Fatal("warm distinct wrong")
	}
	c.SetStr(0, "b")
	if got := c.DistinctCount(); got != 2 {
		t.Fatalf("DistinctCount after SetStr = %d, want 2", got)
	}
	assertSummaryFresh(t, c, "SetStr")
}

func TestSummaryKindChangeInvalidates(t *testing.T) {
	// The Kind field stays exported (type conversions in pipescript flip
	// it); the cache entry pins the kind so Distinct re-renders without any
	// setter call.
	c := NewNumeric("x", []float64{0, 1})
	c.Kind = KindInt
	if got := c.Distinct(); len(got) != 2 || got[0] != "0" {
		t.Fatalf("int distinct = %v", got)
	}
	c.Kind = KindBool
	if got := c.Distinct(); len(got) != 2 || got[0] != "false" {
		t.Fatalf("bool distinct after kind change = %v (stale summary)", got)
	}
}

func TestSummaryStringColumn(t *testing.T) {
	c := NewString("s", []string{"b", "a", "b"})
	c.SetMissing(2)
	s := c.Summary()
	if s.Missing != 1 || s.Present() != 2 || s.DistinctCount() != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if !s.Contains("a") || s.Contains("zzz") {
		t.Fatal("Contains wrong")
	}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("string quantile must be NaN")
	}
	if s.Stats.Count != 0 {
		t.Fatal("string stats must be zero")
	}
}

// The corruption injectors rewrite cells through the setters; they must
// leave every touched column's summary consistent with a from-scratch
// recompute.
func TestCorruptionInvalidatesSummaries(t *testing.T) {
	mk := func() *Table {
		tab := NewTable("corrupt")
		n := 200
		a := make([]float64, n)
		y := make([]float64, n)
		for i := range a {
			a[i] = float64(i % 13)
			y[i] = float64(i % 7)
		}
		tab.MustAddColumn(NewNumeric("a", a))
		tab.MustAddColumn(NewNumeric("y", y))
		return tab
	}

	tab := mk()
	for _, c := range tab.Cols {
		_ = c.Summary() // warm every cache before corrupting
	}
	if n := InjectOutliers(tab, "y", 0.3, 11); n == 0 {
		t.Fatal("no outliers injected")
	}
	for _, c := range tab.Cols {
		assertSummaryFresh(t, c, "InjectOutliers "+c.Name)
	}

	tab = mk()
	for _, c := range tab.Cols {
		_ = c.Summary()
	}
	if n := InjectTargetOutliers(tab, "y", 0.3, 11); n == 0 {
		t.Fatal("no target outliers injected")
	}
	assertSummaryFresh(t, tab.Col("y"), "InjectTargetOutliers")

	tab = mk()
	for _, c := range tab.Cols {
		_ = c.Summary()
	}
	if n := InjectMissing(tab, "y", 0.3, 11); n == 0 {
		t.Fatal("no missing injected")
	}
	for _, c := range tab.Cols {
		assertSummaryFresh(t, c, "InjectMissing "+c.Name)
	}
}
