package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// ColType is the logical generator type of a synthetic column.
type ColType int

// Synthetic column generator types. Each triggers a specific CatDB
// mechanism: dirty categoricals exercise categorical-value refinement,
// composites exercise column splitting, lists exercise k-hot expansion,
// sentences exercise sentence-to-categorical transformation.
const (
	ColNumeric ColType = iota
	ColCategorical
	ColComposite
	ColList
	ColSentence
	ColConstant
	ColID
	ColBoolean
)

// ColumnSpec describes one synthetic column.
type ColumnSpec struct {
	Name        string
	Type        ColType
	Cardinality int     // number of latent categories (categorical/sentence/composite parts)
	Dirty       int     // surface variants per category; 1 (or 0) = clean
	MissingRate float64 // fraction of cells blanked out
	OutlierRate float64 // fraction of numeric cells corrupted with extreme values
	Weight      float64 // contribution of the latent to the target signal; 0 = pure noise
	VocabSize   int     // list columns: size of the item vocabulary
	MinItems    int     // list columns: min items per row
	MaxItems    int     // list columns: max items per row
	Mean, Std   float64 // numeric columns
	Table       int     // 0 = fact table; >0 = dimension table index
	DuplicateOf string  // generate as a (possibly dirty) copy of another column's latent
}

// Spec describes a full synthetic dataset.
type Spec struct {
	Name        string
	Rows        int
	Task        Task
	Classes     int     // classification class count
	Imbalance   float64 // 0 = balanced; 0.9 = heavily skewed class sizes
	NoiseStd    float64 // label noise scale relative to the signal
	DirtyTarget int     // classification: surface variants per class label (EU-IT pathology)
	Columns     []ColumnSpec
	Tables      int // total table count (1 = single table)
	TargetName  string
	Description string
}

// variantSuffixes are the deterministic "messy spelling" transformations the
// generator applies to surface forms; catalog refinement reverses them.
func renderVariant(base string, variant int) string {
	switch variant % 6 {
	case 0:
		return base
	case 1:
		return strings.ToUpper(base)
	case 2:
		return titleCase(base)
	case 3:
		return " " + base
	case 4:
		return strings.ReplaceAll(base, "_", "-")
	default:
		return base + " "
	}
}

// titleCase upper-cases the first letter of each space/underscore-separated
// word (a local replacement for the deprecated strings.Title).
func titleCase(s string) string {
	out := []byte(s)
	up := true
	for i := 0; i < len(out); i++ {
		c := out[i]
		if up && c >= 'a' && c <= 'z' {
			out[i] = c - 'a' + 'A'
		}
		up = c == ' ' || c == '_' || c == '-'
	}
	return string(out)
}

// sentenceTemplates wrap a categorical token into free text; refinement
// extracts the token back out.
var sentenceTemplates = []string{
	"%s",
	"about %s",
	"roughly %s or so",
	"%s (confirmed)",
	"reported as %s",
	"it is %s overall",
}

// Generate materializes the spec into a dataset. The same spec+seed always
// yields the identical dataset.
func Generate(spec Spec, seed int64) (*Dataset, error) {
	if spec.Rows <= 0 {
		return nil, fmt.Errorf("data: spec %q: non-positive row count", spec.Name)
	}
	rng := rand.New(rand.NewSource(seed))
	n := spec.Rows

	// Phase 1: latent values per column (dimension-table columns derive
	// from a shared per-table group id so that joins reconstruct them).
	type gen struct {
		spec   ColumnSpec
		latent []float64 // numeric latent or category index
		second []float64 // composite: second part's latent
	}
	gens := make([]*gen, 0, len(spec.Columns))
	latentByName := map[string]*gen{}

	nTables := spec.Tables
	if nTables < 1 {
		nTables = 1
	}
	// Group ids for dimension tables: dimGroups[t][row] in [0, dimCard[t]).
	dimCard := make([]int, nTables)
	dimGroups := make([][]int, nTables)
	for t := 1; t < nTables; t++ {
		card := n / 20
		if card < 4 {
			card = 4
		}
		if card > 500 {
			card = 500
		}
		dimCard[t] = card
		g := make([]int, n)
		for i := range g {
			g[i] = rng.Intn(card)
		}
		dimGroups[t] = g
	}

	for _, cs := range spec.Columns {
		g := &gen{spec: cs, latent: make([]float64, n)}
		card := cs.Cardinality
		if card <= 0 {
			card = 8
		}
		if dup, ok := latentByName[cs.DuplicateOf]; ok && cs.DuplicateOf != "" {
			copy(g.latent, dup.latent)
		} else {
			switch cs.Type {
			case ColNumeric:
				std := cs.Std
				if std == 0 {
					std = 1
				}
				for i := range g.latent {
					if cs.Table > 0 {
						gi := dimGroups[cs.Table][i]
						g.latent[i] = cs.Mean + std*groupNoise(gi, cs.Name)
					} else {
						g.latent[i] = cs.Mean + std*rng.NormFloat64()
					}
				}
			case ColBoolean:
				for i := range g.latent {
					if cs.Table > 0 {
						g.latent[i] = float64(dimGroups[cs.Table][i] % 2)
					} else if rng.Float64() < 0.5 {
						g.latent[i] = 1
					}
				}
			case ColConstant:
				for i := range g.latent {
					g.latent[i] = 1
				}
			case ColID:
				for i := range g.latent {
					g.latent[i] = float64(i)
				}
			case ColList:
				// latent is a bitmask over min(VocabSize,30) items.
				vs := cs.VocabSize
				if vs <= 0 {
					vs = 8
				}
				if vs > 30 {
					vs = 30
				}
				minI, maxI := cs.MinItems, cs.MaxItems
				if minI <= 0 {
					minI = 1
				}
				if maxI < minI {
					maxI = minI + 2
				}
				for i := range g.latent {
					k := minI + rng.Intn(maxI-minI+1)
					mask := 0
					for j := 0; j < k; j++ {
						mask |= 1 << uint(rng.Intn(vs))
					}
					g.latent[i] = float64(mask)
				}
			default: // categorical, sentence, composite
				for i := range g.latent {
					if cs.Table > 0 {
						g.latent[i] = float64(dimGroups[cs.Table][i] % card)
					} else {
						g.latent[i] = float64(rng.Intn(card))
					}
				}
				if cs.Type == ColComposite {
					g.second = make([]float64, n)
					for i := range g.second {
						g.second[i] = float64(rng.Intn(card))
					}
				}
			}
		}
		gens = append(gens, g)
		latentByName[cs.Name] = g
	}

	// Phase 2: target from the weighted latents.
	score := make([]float64, n)
	for _, g := range gens {
		w := g.spec.Weight
		if w == 0 {
			continue
		}
		card := float64(g.spec.Cardinality)
		if card <= 0 {
			card = 8
		}
		for i := range score {
			switch g.spec.Type {
			case ColNumeric:
				std := g.spec.Std
				if std == 0 {
					std = 1
				}
				score[i] += w * (g.latent[i] - g.spec.Mean) / std
			case ColList:
				// Each set bit of the low half of the vocab pushes the
				// score up; the high half pushes it down.
				mask := int(g.latent[i])
				vs := g.spec.VocabSize
				if vs <= 0 {
					vs = 8
				}
				if vs > 30 {
					vs = 30
				}
				for b := 0; b < vs; b++ {
					if mask&(1<<uint(b)) != 0 {
						if b < vs/2 {
							score[i] += w / float64(vs)
						} else {
							score[i] -= w / float64(vs)
						}
					}
				}
			default:
				// Categorical effect: symmetric around the middle category.
				score[i] += w * (g.latent[i] - (card-1)/2) / card * 2
			}
		}
	}
	noise := spec.NoiseStd
	if noise == 0 {
		noise = 0.3
	}
	for i := range score {
		score[i] += noise * rng.NormFloat64()
	}

	targetName := spec.TargetName
	if targetName == "" {
		targetName = "target"
	}
	var targetCol *Column
	switch spec.Task {
	case Regression:
		vals := make([]float64, n)
		for i, s := range score {
			vals[i] = 100 + 50*s
		}
		targetCol = NewNumeric(targetName, vals)
	default:
		classes := spec.Classes
		if classes < 2 {
			classes = 2
		}
		labels := assignClasses(score, classes, spec.Imbalance)
		strs := make([]string, n)
		for i, cl := range labels {
			base := fmt.Sprintf("class_%d", cl)
			if spec.DirtyTarget > 1 {
				strs[i] = renderVariant(base, rng.Intn(spec.DirtyTarget))
			} else {
				strs[i] = base
			}
		}
		targetCol = NewString(targetName, strs)
	}

	// Phase 3: render surface forms into tables.
	tables := make([]*Table, nTables)
	tables[0] = NewTable(spec.Name)
	for t := 1; t < nTables; t++ {
		tables[t] = NewTable(fmt.Sprintf("%s_dim%d", spec.Name, t))
	}
	ds := &Dataset{Name: spec.Name, Primary: spec.Name, Target: targetName, Task: spec.Task, Description: spec.Description}

	// Fact table FK columns and dimension tables.
	for t := 1; t < nTables; t++ {
		fk := make([]float64, n)
		for i := range fk {
			fk[i] = float64(dimGroups[t][i])
		}
		fkCol := NewInt(fmt.Sprintf("dim%d_id", t), fk)
		tables[0].MustAddColumn(fkCol)
		keys := make([]float64, dimCard[t])
		for i := range keys {
			keys[i] = float64(i)
		}
		tables[t].MustAddColumn(NewInt("id", keys))
		ds.Relations = append(ds.Relations, Relation{
			LeftTable: spec.Name, LeftCol: fmt.Sprintf("dim%d_id", t),
			RightTable: tables[t].Name, RightCol: "id",
		})
	}

	for _, g := range gens {
		cs := g.spec
		var col *Column
		tbl := tables[0]
		vals := g.latent
		rowsHere := n
		if cs.Table > 0 && cs.Table < nTables {
			tbl = tables[cs.Table]
			// Dimension tables store one row per group: re-derive the
			// latent per group id deterministically.
			rowsHere = dimCard[cs.Table]
			vals = make([]float64, rowsHere)
			for gi := 0; gi < rowsHere; gi++ {
				switch cs.Type {
				case ColNumeric:
					std := cs.Std
					if std == 0 {
						std = 1
					}
					vals[gi] = cs.Mean + std*groupNoise(gi, cs.Name)
				case ColBoolean:
					vals[gi] = float64(gi % 2)
				default:
					card := cs.Cardinality
					if card <= 0 {
						card = 8
					}
					vals[gi] = float64(gi % card)
				}
			}
		}
		col = renderColumn(cs, vals, g.second, rng)
		// Missing / outlier injection (fact-table columns only; dimension
		// rows are reference data).
		if cs.Table == 0 {
			for i := 0; i < col.Len(); i++ {
				if cs.MissingRate > 0 && rng.Float64() < cs.MissingRate {
					col.SetMissing(i)
				} else if cs.OutlierRate > 0 && col.Kind.IsNumeric() && rng.Float64() < cs.OutlierRate {
					col.SetNum(i, col.Num(i)*50+1000)
				}
			}
		}
		tbl.MustAddColumn(col)
	}
	tables[0].MustAddColumn(targetCol)

	ds.Tables = tables
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// renderColumn converts latent values into a surface-form column.
func renderColumn(cs ColumnSpec, latent, second []float64, rng *rand.Rand) *Column {
	n := len(latent)
	switch cs.Type {
	case ColNumeric:
		vals := append([]float64(nil), latent...)
		return NewNumeric(cs.Name, vals)
	case ColBoolean:
		b := make([]bool, n)
		for i, v := range latent {
			b[i] = v != 0
		}
		return NewBool(cs.Name, b)
	case ColConstant:
		strs := make([]string, n)
		for i := range strs {
			strs[i] = "const"
		}
		return NewString(cs.Name, strs)
	case ColID:
		vals := append([]float64(nil), latent...)
		return NewInt(cs.Name, vals)
	case ColCategorical:
		strs := make([]string, n)
		dirty := cs.Dirty
		if dirty < 1 {
			dirty = 1
		}
		for i, v := range latent {
			base := categoryLabel(cs.Name, int(v))
			strs[i] = renderVariant(base, rng.Intn(dirty))
		}
		return NewString(cs.Name, strs)
	case ColSentence:
		strs := make([]string, n)
		for i, v := range latent {
			base := categoryLabel(cs.Name, int(v))
			tmpl := sentenceTemplates[rng.Intn(len(sentenceTemplates))]
			strs[i] = fmt.Sprintf(tmpl, base)
		}
		return NewString(cs.Name, strs)
	case ColComposite:
		// Mirrors the paper's Address pathology: a mix of an alphabetic
		// part (state-like) and a numeric part (zip-like) in varying order.
		strs := make([]string, n)
		for i, v := range latent {
			a := categoryLabel(cs.Name+"_a", int(v))
			bIdx := 0
			if second != nil {
				bIdx = int(second[i])
			}
			b := fmt.Sprintf("%04d", 7000+bIdx*37)
			if rng.Float64() < 0.5 {
				strs[i] = a + " " + b
			} else {
				strs[i] = b + " " + a
			}
		}
		return NewString(cs.Name, strs)
	case ColList:
		vs := cs.VocabSize
		if vs <= 0 {
			vs = 8
		}
		if vs > 30 {
			vs = 30
		}
		strs := make([]string, n)
		for i, v := range latent {
			mask := int(v)
			var items []string
			for b := 0; b < vs; b++ {
				if mask&(1<<uint(b)) != 0 {
					items = append(items, categoryLabel(cs.Name+"_item", b))
				}
			}
			// Vary the order so the raw joined string has high cardinality.
			rng.Shuffle(len(items), func(x, y int) { items[x], items[y] = items[y], items[x] })
			strs[i] = strings.Join(items, ", ")
		}
		return NewString(cs.Name, strs)
	default:
		vals := append([]float64(nil), latent...)
		return NewNumeric(cs.Name, vals)
	}
}

// categoryLabel generates a stable human-ish label for category idx of col.
func categoryLabel(col string, idx int) string {
	words := []string{"alpha", "bravo", "congo", "delta", "echo", "fargo", "golf", "hotel",
		"india", "jazz", "kilo", "lima", "mango", "nova", "oscar", "punta",
		"quartz", "romeo", "sierra", "tango", "umbra", "victor", "whisky", "xray"}
	w := words[((idx%len(words))+len(words))%len(words)]
	if idx >= len(words) {
		return fmt.Sprintf("%s_%d", w, idx/len(words))
	}
	return w
}

// groupNoise is a deterministic pseudo-random value in ~N(0,1) derived from
// a group id and column name, so dimension-table values are stable.
func groupNoise(gid int, name string) float64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(name) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	h = (h ^ uint64(gid)) * 1099511628211
	// Map two 32-bit halves to a rough normal via sum of uniforms.
	u1 := float64(h&0xffffffff) / float64(0xffffffff)
	u2 := float64(h>>32) / float64(1<<32)
	return (u1 + u2 - 1.0) * math.Sqrt2 * 1.7
}

// assignClasses bins scores into classes by quantile; imbalance in (0,1)
// skews the bin edges so that low classes absorb most rows.
func assignClasses(score []float64, classes int, imbalance float64) []int {
	n := len(score)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if score[idx[a]] != score[idx[b]] {
			return score[idx[a]] < score[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := make([]int, n)
	// Cumulative class share: balanced = equal; imbalanced = geometric decay.
	shares := make([]float64, classes)
	if imbalance <= 0 {
		for i := range shares {
			shares[i] = 1.0 / float64(classes)
		}
	} else {
		r := 1 - imbalance
		total := 0.0
		w := 1.0
		for i := range shares {
			shares[i] = w
			total += w
			w *= r
		}
		for i := range shares {
			shares[i] /= total
		}
	}
	pos := 0
	for c := 0; c < classes; c++ {
		cnt := int(shares[c] * float64(n))
		if c == classes-1 {
			cnt = n - pos
		}
		for k := 0; k < cnt && pos < n; k++ {
			out[idx[pos]] = c
			pos++
		}
	}
	for pos < n {
		out[idx[pos]] = classes - 1
		pos++
	}
	return out
}
