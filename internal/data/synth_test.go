package data

import (
	"strings"
	"testing"
)

func basicSpec() Spec {
	return Spec{
		Name: "basic", Rows: 500, Task: Binary, Classes: 2, NoiseStd: 0.2,
		Columns: []ColumnSpec{
			{Name: "num", Type: ColNumeric, Mean: 10, Std: 2, Weight: 1},
			{Name: "cat", Type: ColCategorical, Cardinality: 4, Weight: 1},
			{Name: "dirty", Type: ColCategorical, Cardinality: 3, Dirty: 4},
			{Name: "lst", Type: ColList, VocabSize: 6, MinItems: 1, MaxItems: 3},
			{Name: "sent", Type: ColSentence, Cardinality: 4},
			{Name: "comp", Type: ColComposite, Cardinality: 5},
			{Name: "konst", Type: ColConstant},
			{Name: "rowid", Type: ColID},
			{Name: "flag", Type: ColBoolean},
			{Name: "gap", Type: ColNumeric, MissingRate: 0.3},
		},
	}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(basicSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	pt := ds.PrimaryTable()
	if pt == nil {
		t.Fatal("no primary table")
	}
	if pt.NumRows() != 500 {
		t.Fatalf("rows = %d", pt.NumRows())
	}
	// 10 feature columns + target.
	if pt.NumCols() != 11 {
		t.Fatalf("cols = %d, want 11 (%v)", pt.NumCols(), pt.ColumnNames())
	}
	if pt.Col("target") == nil {
		t.Fatal("target column missing")
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, _ := Generate(basicSpec(), 7)
	b, _ := Generate(basicSpec(), 7)
	at, bt := a.PrimaryTable(), b.PrimaryTable()
	for ci := range at.Cols {
		for r := 0; r < at.NumRows(); r++ {
			if at.Cols[ci].ValueString(r) != bt.Cols[ci].ValueString(r) {
				t.Fatalf("row %d col %s differs between identical seeds", r, at.Cols[ci].Name)
			}
		}
	}
	c, _ := Generate(basicSpec(), 8)
	same := true
	ct := c.PrimaryTable()
	for r := 0; r < 20; r++ {
		if at.Col("num").Num(r) != ct.Col("num").Num(r) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical numeric column")
	}
}

func TestGenerateColumnTypes(t *testing.T) {
	ds, _ := Generate(basicSpec(), 3)
	pt := ds.PrimaryTable()
	if pt.Col("num").Kind != KindFloat {
		t.Error("num kind")
	}
	if pt.Col("cat").Kind != KindString {
		t.Error("cat kind")
	}
	if pt.Col("flag").Kind != KindBool {
		t.Error("flag kind")
	}
	if pt.Col("rowid").Kind != KindInt {
		t.Error("rowid kind")
	}
	if !pt.Col("konst").IsConstant() {
		t.Error("constant column must be constant")
	}
	// Dirty categorical has more surface forms than latent categories.
	if got := pt.Col("dirty").DistinctCount(); got <= 3 {
		t.Errorf("dirty distinct = %d, want > 3", got)
	}
	// List values contain comma-separated items.
	found := false
	for _, v := range pt.Col("lst").StrsView() {
		if strings.Contains(v, ", ") {
			found = true
			break
		}
	}
	if !found {
		t.Error("list column should contain multi-item rows")
	}
	// Missing-rate column actually has missing cells.
	if pt.Col("gap").MissingCount() == 0 {
		t.Error("gap column should have missing cells")
	}
}

func TestGenerateImbalance(t *testing.T) {
	spec := basicSpec()
	spec.Classes = 4
	spec.Task = Multiclass
	spec.Imbalance = 0.7
	ds, _ := Generate(spec, 5)
	counts := map[string]int{}
	c := ds.PrimaryTable().Col("target")
	for i := 0; i < c.Len(); i++ {
		counts[c.Str(i)]++
	}
	if len(counts) != 4 {
		t.Fatalf("classes = %d", len(counts))
	}
	if counts["class_0"] <= counts["class_3"] {
		t.Fatalf("imbalance not applied: %v", counts)
	}
}

func TestGenerateDirtyTarget(t *testing.T) {
	spec := basicSpec()
	spec.Task = Multiclass
	spec.Classes = 3
	spec.DirtyTarget = 4
	ds, _ := Generate(spec, 5)
	got := ds.PrimaryTable().Col("target").DistinctCount()
	if got <= 3 {
		t.Fatalf("dirty target distinct = %d, want > 3", got)
	}
}

func TestGenerateRegression(t *testing.T) {
	spec := basicSpec()
	spec.Task = Regression
	ds, _ := Generate(spec, 5)
	if ds.PrimaryTable().Col("target").Kind != KindFloat {
		t.Fatal("regression target must be numeric")
	}
}

func TestGenerateMultiTable(t *testing.T) {
	spec := basicSpec()
	spec.Tables = 3
	spec.Columns = append(spec.Columns,
		ColumnSpec{Name: "dimcat", Type: ColCategorical, Cardinality: 5, Weight: 1, Table: 1},
		ColumnSpec{Name: "dimnum", Type: ColNumeric, Mean: 3, Std: 1, Table: 2},
	)
	ds, err := Generate(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTables() != 3 {
		t.Fatalf("tables = %d", ds.NumTables())
	}
	if len(ds.Relations) != 2 {
		t.Fatalf("relations = %d", len(ds.Relations))
	}
	joined, err := ds.Consolidate()
	if err != nil {
		t.Fatal(err)
	}
	if joined.NumRows() != 500 {
		t.Fatalf("joined rows = %d", joined.NumRows())
	}
	if joined.Col("basic_dim1_dimcat") == nil {
		t.Fatalf("joined dim column missing: %v", joined.ColumnNames())
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Name: "x", Rows: 0}, 1); err == nil {
		t.Fatal("zero rows must error")
	}
}

func TestDuplicateOf(t *testing.T) {
	spec := Spec{
		Name: "dup", Rows: 300, Task: Binary, Classes: 2,
		Columns: []ColumnSpec{
			{Name: "orig", Type: ColCategorical, Cardinality: 4, Weight: 1},
			{Name: "copy", Type: ColCategorical, Cardinality: 4, DuplicateOf: "orig"},
		},
	}
	ds, _ := Generate(spec, 2)
	pt := ds.PrimaryTable()
	same := 0
	for i := 0; i < pt.NumRows(); i++ {
		if pt.Col("orig").Str(i) == pt.Col("copy").Str(i) {
			same++
		}
	}
	if same != pt.NumRows() {
		t.Fatalf("clean duplicate should match everywhere: %d/%d", same, pt.NumRows())
	}
}

func TestAssignClassesBalanced(t *testing.T) {
	score := make([]float64, 100)
	for i := range score {
		score[i] = float64(i)
	}
	cls := assignClasses(score, 4, 0)
	counts := map[int]int{}
	for _, c := range cls {
		counts[c]++
	}
	for c := 0; c < 4; c++ {
		if counts[c] != 25 {
			t.Fatalf("balanced counts = %v", counts)
		}
	}
	// Ordering: lowest scores get class 0.
	if cls[0] != 0 || cls[99] != 3 {
		t.Fatalf("ordering broken: first=%d last=%d", cls[0], cls[99])
	}
}

func TestRenderVariantAndTitleCase(t *testing.T) {
	if renderVariant("alpha_one", 0) != "alpha_one" {
		t.Fatal("variant 0 must be identity")
	}
	if renderVariant("alpha", 1) != "ALPHA" {
		t.Fatal("variant 1 must upper-case")
	}
	if titleCase("alpha beta_gamma") != "Alpha Beta_Gamma" {
		t.Fatalf("titleCase = %q", titleCase("alpha beta_gamma"))
	}
	seen := map[string]bool{}
	for v := 0; v < 6; v++ {
		seen[renderVariant("mango_2", v)] = true
	}
	if len(seen) < 4 {
		t.Fatalf("expected ≥4 distinct variants, got %d", len(seen))
	}
}

func TestCategoryLabelStability(t *testing.T) {
	if categoryLabel("c", 0) != categoryLabel("c", 0) {
		t.Fatal("labels must be stable")
	}
	if categoryLabel("c", 0) == categoryLabel("c", 1) {
		t.Fatal("labels must differ by index")
	}
	if categoryLabel("c", 30) == categoryLabel("c", 6) {
		t.Fatal("wrapped labels must still be unique")
	}
}
