package data

import (
	"fmt"
	"math/rand"
	"sort"
)

// Table is an ordered collection of equal-length columns.
type Table struct {
	Name string
	Cols []*Column
}

// NewTable returns an empty table with the given name.
func NewTable(name string) *Table { return &Table{Name: name} }

// NumRows returns the row count (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.Cols) }

// Col returns the column with the given name, or nil if absent.
func (t *Table) Col(name string) *Column {
	for _, c := range t.Cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = c.Name
	}
	return out
}

// AddColumn appends a column; it returns an error on row-count mismatch or
// duplicate name.
func (t *Table) AddColumn(c *Column) error {
	if len(t.Cols) > 0 && c.Len() != t.NumRows() {
		return fmt.Errorf("data: column %q has %d rows, table %q has %d", c.Name, c.Len(), t.Name, t.NumRows())
	}
	if t.Col(c.Name) != nil {
		return fmt.Errorf("data: duplicate column %q in table %q", c.Name, t.Name)
	}
	t.Cols = append(t.Cols, c)
	return nil
}

// MustAddColumn is AddColumn that panics on error; for construction of
// literal tables in tests and generators where the invariant is known.
func (t *Table) MustAddColumn(c *Column) {
	if err := t.AddColumn(c); err != nil {
		panic(err)
	}
}

// DropColumn removes the named column; it reports whether it was present.
func (t *Table) DropColumn(name string) bool {
	i := t.ColIndex(name)
	if i < 0 {
		return false
	}
	t.Cols = append(t.Cols[:i], t.Cols[i+1:]...)
	return true
}

// ReplaceColumn swaps the named column for c (same name requirement is not
// enforced; c keeps its own name). It reports whether name was present.
func (t *Table) ReplaceColumn(name string, c *Column) bool {
	i := t.ColIndex(name)
	if i < 0 {
		return false
	}
	t.Cols[i] = c
	return true
}

// Clone returns an independent copy of the table in O(columns): each
// column is a copy-on-write view of the original's storage (see
// Column.Clone), so cell slabs are copied only if and when mutated.
func (t *Table) Clone() *Table {
	out := &Table{Name: t.Name, Cols: make([]*Column, len(t.Cols))}
	for i, c := range t.Cols {
		out.Cols[i] = c.Clone()
	}
	return out
}

// SelectRows returns a table containing only the given row indexes. The
// result is a zero-copy view: columns share the receiver's cell storage
// through an index mapping and promote to private storage only on their
// first mutation. Cost is O(columns) plus a single O(len(rows)) index
// copy shared by all dense columns (view columns of a stacked selection
// compose their mappings, memoized per distinct source mapping), not the
// old O(cells) deep copy. The rows slice is not retained.
func (t *Table) SelectRows(rows []int) *Table {
	out := &Table{Name: t.Name, Cols: make([]*Column, len(t.Cols))}
	var dense []int // defensive copy of rows, shared by all identity columns
	var srcRows, composed []int
	for i, c := range t.Cols {
		if c.rows == nil {
			if dense == nil {
				dense = make([]int, len(rows))
				copy(dense, rows)
			}
			out.Cols[i] = c.viewAt(dense)
			continue
		}
		// View column: compose its mapping with rows. Tables sliced from a
		// common parent share one mapping slice across columns, so compare
		// by identity and reuse the last composition.
		if !sameSlice(c.rows, srcRows) {
			srcRows = c.rows
			composed = make([]int, len(rows))
			for j, r := range rows {
				composed[j] = srcRows[r]
			}
		}
		out.Cols[i] = c.viewAt(composed)
	}
	return out
}

// sameSlice reports whether two slices are the identical array window
// (same backing start and length), not merely equal element-wise.
func sameSlice(a, b []int) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// Head returns the first n rows (or all rows if n exceeds the row count).
func (t *Table) Head(n int) *Table {
	if n > t.NumRows() {
		n = t.NumRows()
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return t.SelectRows(rows)
}

// Sample returns up to n rows drawn without replacement using rng. The
// permutation is always drawn, even when n covers the whole table (where
// the result keeps the original row order, as before), so the RNG is
// consumed identically regardless of the table's size and downstream
// draws from the same rng do not diverge on small tables.
func (t *Table) Sample(n int, rng *rand.Rand) *Table {
	perm := rng.Perm(t.NumRows())
	if n >= t.NumRows() {
		return t.Clone()
	}
	return t.SelectRows(perm[:n])
}

// Split partitions the table into train/test with the given train fraction,
// shuffling with the seed. It mirrors the paper's 70/30 split.
func (t *Table) Split(trainFrac float64, seed int64) (train, test *Table) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(t.NumRows())
	cut := int(trainFrac * float64(len(perm)))
	// Training on nothing is never useful: any non-empty table keeps at
	// least one train row, even a single-row table (test then stays empty).
	if cut < 1 && len(perm) > 0 {
		cut = 1
	}
	return t.SelectRows(perm[:cut]), t.SelectRows(perm[cut:])
}

// StratifiedSplit splits the table keeping the per-class proportions of the
// target column close to the original; it falls back to Split when target is
// missing or numeric with high cardinality.
func (t *Table) StratifiedSplit(target string, trainFrac float64, seed int64) (train, test *Table) {
	col := t.Col(target)
	if col == nil {
		return t.Split(trainFrac, seed)
	}
	groups := map[string][]int{}
	for i := 0; i < t.NumRows(); i++ {
		groups[col.ValueString(i)] = append(groups[col.ValueString(i)], i)
	}
	if len(groups) > t.NumRows()/2 {
		return t.Split(trainFrac, seed)
	}
	rng := rand.New(rand.NewSource(seed))
	var trainRows, testRows []int
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rows := groups[k]
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		cut := int(trainFrac * float64(len(rows)))
		if cut < 1 && len(rows) > 1 {
			cut = 1
		}
		trainRows = append(trainRows, rows[:cut]...)
		testRows = append(testRows, rows[cut:]...)
	}
	// All-singleton classes can leave the train side empty; reclaim one row
	// so downstream training always has data.
	if len(trainRows) == 0 && len(testRows) > 0 {
		trainRows = append(trainRows, testRows[0])
		testRows = testRows[1:]
	}
	rng.Shuffle(len(trainRows), func(i, j int) { trainRows[i], trainRows[j] = trainRows[j], trainRows[i] })
	rng.Shuffle(len(testRows), func(i, j int) { testRows[i], testRows[j] = testRows[j], testRows[i] })
	return t.SelectRows(trainRows), t.SelectRows(testRows)
}

// AppendRows appends all rows of src to t; the tables must share the same
// column names and kinds in order.
func (t *Table) AppendRows(src *Table) error {
	if len(t.Cols) != len(src.Cols) {
		return fmt.Errorf("data: append: column count mismatch %d vs %d", len(t.Cols), len(src.Cols))
	}
	for i, c := range t.Cols {
		s := src.Cols[i]
		if c.Name != s.Name || c.Kind != s.Kind {
			return fmt.Errorf("data: append: column %d mismatch (%s %s vs %s %s)", i, c.Name, c.Kind, s.Name, s.Kind)
		}
	}
	for i, c := range t.Cols {
		s := src.Cols[i]
		for r := 0; r < s.Len(); r++ {
			c.AppendFrom(s, r)
		}
		_ = i
	}
	return nil
}
