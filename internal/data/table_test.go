package data

import (
	"fmt"
	"math/rand"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("t")
	t.MustAddColumn(NewNumeric("x", []float64{1, 2, 3, 4, 5, 6}))
	t.MustAddColumn(NewString("s", []string{"a", "b", "a", "b", "a", "b"}))
	return t
}

func TestTableBasics(t *testing.T) {
	tb := sampleTable()
	if tb.NumRows() != 6 || tb.NumCols() != 2 {
		t.Fatalf("shape = %dx%d", tb.NumRows(), tb.NumCols())
	}
	if tb.Col("x") == nil || tb.Col("nope") != nil {
		t.Fatal("Col lookup broken")
	}
	if tb.ColIndex("s") != 1 || tb.ColIndex("nope") != -1 {
		t.Fatal("ColIndex broken")
	}
	names := tb.ColumnNames()
	if names[0] != "x" || names[1] != "s" {
		t.Fatalf("names = %v", names)
	}
	if NewTable("empty").NumRows() != 0 {
		t.Fatal("empty table rows")
	}
}

func TestAddColumnErrors(t *testing.T) {
	tb := sampleTable()
	if err := tb.AddColumn(NewNumeric("y", []float64{1})); err == nil {
		t.Fatal("row mismatch must error")
	}
	if err := tb.AddColumn(NewNumeric("x", make([]float64, 6))); err == nil {
		t.Fatal("duplicate name must error")
	}
}

func TestDropReplaceColumn(t *testing.T) {
	tb := sampleTable()
	if !tb.DropColumn("x") || tb.NumCols() != 1 {
		t.Fatal("DropColumn broken")
	}
	if tb.DropColumn("x") {
		t.Fatal("double drop must report false")
	}
	if !tb.ReplaceColumn("s", NewString("s2", []string{"q", "q", "q", "q", "q", "q"})) {
		t.Fatal("ReplaceColumn must find s")
	}
	if tb.Col("s2") == nil {
		t.Fatal("replacement not applied")
	}
}

func TestSelectRowsHeadSample(t *testing.T) {
	tb := sampleTable()
	sel := tb.SelectRows([]int{5, 0})
	if sel.NumRows() != 2 || sel.Col("x").Num(0) != 6 {
		t.Fatal("SelectRows wrong")
	}
	if tb.Head(3).NumRows() != 3 || tb.Head(100).NumRows() != 6 {
		t.Fatal("Head wrong")
	}
	rng := rand.New(rand.NewSource(1))
	if tb.Sample(4, rng).NumRows() != 4 {
		t.Fatal("Sample size wrong")
	}
	if tb.Sample(100, rng).NumRows() != 6 {
		t.Fatal("oversample must clone")
	}
}

func TestSplit(t *testing.T) {
	tb := sampleTable()
	tr, te := tb.Split(0.7, 42)
	if tr.NumRows()+te.NumRows() != 6 {
		t.Fatalf("split sizes %d+%d", tr.NumRows(), te.NumRows())
	}
	if tr.NumRows() != 4 {
		t.Fatalf("train size = %d, want 4", tr.NumRows())
	}
	// Determinism.
	tr2, _ := tb.Split(0.7, 42)
	for i := 0; i < tr.NumRows(); i++ {
		if tr.Col("x").Num(i) != tr2.Col("x").Num(i) {
			t.Fatal("Split must be deterministic for a fixed seed")
		}
	}
}

func TestSplitTinyTablesNeverEmptyTrain(t *testing.T) {
	// 1- and 2-row tables used to send everything to the test side
	// (int(0.7*1) == 0), leaving downstream training with no data.
	for rows := 1; rows <= 2; rows++ {
		tb := NewTable("t")
		x := make([]float64, rows)
		y := make([]string, rows)
		for i := range x {
			x[i] = float64(i)
			y[i] = fmt.Sprint(i % 2)
		}
		tb.MustAddColumn(NewNumeric("x", x))
		tb.MustAddColumn(NewString("y", y))
		tr, te := tb.Split(0.7, 5)
		if tr.NumRows() == 0 {
			t.Fatalf("Split(%d rows): empty train", rows)
		}
		if tr.NumRows()+te.NumRows() != rows {
			t.Fatalf("Split(%d rows): rows lost", rows)
		}
		str, ste := tb.StratifiedSplit("y", 0.7, 5)
		if str.NumRows() == 0 {
			t.Fatalf("StratifiedSplit(%d rows): empty train", rows)
		}
		if str.NumRows()+ste.NumRows() != rows {
			t.Fatalf("StratifiedSplit(%d rows): rows lost", rows)
		}
	}
}

func TestStratifiedSplit(t *testing.T) {
	tb := NewTable("t")
	n := 100
	x := make([]float64, n)
	y := make([]string, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i)
		if i%10 == 0 {
			y[i] = "rare"
		} else {
			y[i] = "common"
		}
	}
	tb.MustAddColumn(NewNumeric("x", x))
	tb.MustAddColumn(NewString("y", y))
	tr, te := tb.StratifiedSplit("y", 0.7, 7)
	if tr.NumRows()+te.NumRows() != n {
		t.Fatal("rows lost")
	}
	count := func(tab *Table, v string) int {
		c := tab.Col("y")
		k := 0
		for i := 0; i < c.Len(); i++ {
			if c.Str(i) == v {
				k++
			}
		}
		return k
	}
	if count(tr, "rare") != 7 {
		t.Fatalf("train rare = %d, want 7", count(tr, "rare"))
	}
	// Fallback on missing target behaves like Split.
	tr2, te2 := tb.StratifiedSplit("nope", 0.7, 7)
	if tr2.NumRows()+te2.NumRows() != n {
		t.Fatal("fallback split lost rows")
	}
}

func TestAppendRows(t *testing.T) {
	a, b := sampleTable(), sampleTable()
	if err := a.AppendRows(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 12 {
		t.Fatalf("appended rows = %d", a.NumRows())
	}
	bad := NewTable("bad")
	bad.MustAddColumn(NewNumeric("x", []float64{1}))
	if err := a.AppendRows(bad); err == nil {
		t.Fatal("column count mismatch must error")
	}
	bad2 := sampleTable()
	bad2.Cols[0].Name = "renamed"
	if err := a.AppendRows(bad2); err == nil {
		t.Fatal("name mismatch must error")
	}
}

func TestTableCloneDeep(t *testing.T) {
	tb := sampleTable()
	cp := tb.Clone()
	cp.Col("x").SetNum(0, 99)
	if tb.Col("x").Num(0) == 99 {
		t.Fatal("clone mutation leaked into the original")
	}
}
