package data

import (
	"math/rand"
	"testing"
)

// deepSelect materializes the given rows of a table the way the
// pre-view implementation did: fresh dense storage per column, built
// cell by cell. The view equivalence tests compare against it.
func deepSelect(t *Table, rows []int) *Table {
	out := &Table{Name: t.Name}
	for _, c := range t.Cols {
		nc := &Column{Name: c.Name, Kind: c.Kind}
		for _, r := range rows {
			if c.IsMissing(r) {
				nc.AppendMissing()
				continue
			}
			nc.AppendFrom(c, r)
		}
		// AppendMissing/AppendFrom on an empty string column build the
		// numeric slab only when the kind is numeric, matching Select.
		out.Cols = append(out.Cols, nc)
	}
	return out
}

// tablesEqual compares two tables cell by cell, including missing masks.
func tablesEqual(t *testing.T, a, b *Table, ctx string) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", ctx, a.NumRows(), a.NumCols(), b.NumRows(), b.NumCols())
	}
	for ci, ca := range a.Cols {
		cb := b.Cols[ci]
		if ca.Name != cb.Name || ca.Kind != cb.Kind {
			t.Fatalf("%s: col %d meta %s/%s vs %s/%s", ctx, ci, ca.Name, ca.Kind, cb.Name, cb.Kind)
		}
		for i := 0; i < ca.Len(); i++ {
			if ca.IsMissing(i) != cb.IsMissing(i) {
				t.Fatalf("%s: col %s row %d missing mask differs", ctx, ca.Name, i)
			}
			if ca.ValueString(i) != cb.ValueString(i) {
				t.Fatalf("%s: col %s row %d value %q vs %q", ctx, ca.Name, i, ca.ValueString(i), cb.ValueString(i))
			}
		}
	}
}

func viewFixture() *Table {
	tb := NewTable("vf")
	n := 50
	x := make([]float64, n)
	s := make([]string, n)
	for i := range x {
		x[i] = float64(i)
		s[i] = string(rune('a' + i%5))
	}
	tb.MustAddColumn(NewNumeric("x", x))
	tb.MustAddColumn(NewString("s", s))
	tb.Col("x").SetMissing(3)
	tb.Col("s").SetMissing(7)
	return tb
}

// Selecting rows through the view machinery must be observably identical
// to the old materializing deep copy, including stacked selections.
func TestSelectRowsMatchesDeepCopy(t *testing.T) {
	tb := viewFixture()
	rows := []int{9, 3, 3, 0, 42, 7}
	tablesEqual(t, tb.SelectRows(rows), deepSelect(tb, rows), "SelectRows")

	// A selection of a selection composes the index mappings.
	sub := tb.SelectRows(rows)
	rows2 := []int{5, 1, 0}
	tablesEqual(t, sub.SelectRows(rows2), deepSelect(sub, rows2), "stacked SelectRows")
}

// Split and StratifiedSplit on views must produce the same partitions as
// on the base table materialized row by row.
func TestSplitOnViewMatchesBase(t *testing.T) {
	tb := viewFixture()
	all := make([]int, tb.NumRows())
	for i := range all {
		all[i] = i
	}
	view := tb.SelectRows(all) // identity view, storage shared
	tr1, te1 := tb.Split(0.7, 99)
	tr2, te2 := view.Split(0.7, 99)
	tablesEqual(t, tr1, tr2, "train")
	tablesEqual(t, te1, te2, "test")

	str1, ste1 := tb.StratifiedSplit("s", 0.7, 99)
	str2, ste2 := view.StratifiedSplit("s", 0.7, 99)
	tablesEqual(t, str1, str2, "stratified train")
	tablesEqual(t, ste1, ste2, "stratified test")
}

// Mutating through a view promotes only the touched column; the base
// table stays byte-identical and sibling columns keep sharing storage.
func TestViewMutationCopyOnWrite(t *testing.T) {
	tb := viewFixture()
	baseX := append([]float64(nil), tb.Col("x").NumsView()...)
	baseS := append([]string(nil), tb.Col("s").StrsView()...)

	v := tb.SelectRows([]int{10, 11, 12})
	v.Col("x").SetNum(0, -1)
	v.Col("s").SetMissing(2)

	if v.Col("x").Num(0) != -1 || !v.Col("s").IsMissing(2) {
		t.Fatal("view mutation lost")
	}
	for i, want := range baseX {
		if tb.Col("x").Num(i) != want {
			t.Fatalf("base x[%d] changed after view write", i)
		}
	}
	for i, want := range baseS {
		if tb.Col("s").Str(i) != want || tb.Col("s").IsMissing(i) != (i == 7) {
			t.Fatalf("base s[%d] changed after view write", i)
		}
	}

	// Only the touched columns promoted: untouched view columns still
	// alias base storage (same backing array).
	v2 := tb.SelectRows([]int{0, 1})
	if &v2.Col("x").store.nums[0] != &tb.Col("x").store.nums[0] {
		t.Fatal("untouched view column must share storage")
	}
	v2.Col("x").SetNum(0, 5)
	if &v2.Col("x").store.nums[0] == &tb.Col("x").store.nums[0] {
		t.Fatal("mutated view column must own storage")
	}
	if &v2.Col("s").store.strs[0] != &tb.Col("s").store.strs[0] {
		t.Fatal("sibling column must keep sharing storage")
	}
}

// Mutating the base after handing out a view must not show through the
// view (the base promotes, the view keeps the old store).
func TestBaseMutationInvisibleThroughView(t *testing.T) {
	tb := viewFixture()
	v := tb.SelectRows([]int{10})
	tb.Col("x").SetNum(10, 777)
	if v.Col("x").Num(0) == 777 {
		t.Fatal("base write leaked into view")
	}
	if tb.Col("x").Num(10) != 777 {
		t.Fatal("base write lost")
	}
}

// Appends on a clone must never grow storage visible to the original (and
// vice versa): Append* promotes before growing.
func TestCloneAppendIsolation(t *testing.T) {
	c := NewNumeric("x", []float64{1, 2})
	cp := c.Clone()
	cp.AppendNums(3)
	if c.Len() != 2 || cp.Len() != 3 {
		t.Fatalf("lens %d/%d after clone append, want 2/3", c.Len(), cp.Len())
	}
	c.AppendFrom(c, 0)
	if c.Len() != 3 || cp.Len() != 3 || cp.Num(2) != 3 || c.Num(2) != 1 {
		t.Fatal("append isolation broken")
	}
}

// Every setter invalidates a warm summary through a view as well.
func TestViewSetterInvalidatesSummary(t *testing.T) {
	tb := viewFixture()
	v := tb.SelectRows([]int{0, 1, 2, 3, 4})
	x, s := v.Col("x"), v.Col("s")
	warm := func() { _, _ = x.Summary(), s.Summary() }

	warm()
	x.SetNum(0, 100)
	if st := x.NumericStats(); st.Max != 100 {
		t.Fatalf("SetNum left stale stats: %+v", st)
	}
	warm()
	x.SetMissing(1)
	if x.MissingCount() != 2 { // row 3 of the base (index 3 here) was already missing
		t.Fatalf("SetMissing stale: missing = %d", x.MissingCount())
	}
	warm()
	x.ClearMissing(1)
	if x.MissingCount() != 1 {
		t.Fatalf("ClearMissing stale: missing = %d", x.MissingCount())
	}
	warm()
	s.SetStr(0, "zzz")
	if !s.Summary().Contains("zzz") {
		t.Fatal("SetStr left stale distinct set")
	}
	warm()
	s.AppendStrs("qqq")
	if !s.Summary().Contains("qqq") {
		t.Fatal("AppendStrs left stale distinct set")
	}
}

// Sample must consume the RNG identically whether or not n covers the
// whole table, so downstream draws from a shared rng do not diverge on
// small tables.
func TestSampleRNGConsumptionUniform(t *testing.T) {
	tb := viewFixture()
	rngA := rand.New(rand.NewSource(42))
	_ = tb.Sample(5, rngA) // undersample
	afterA := rngA.Int63()

	rngB := rand.New(rand.NewSource(42))
	_ = tb.Sample(tb.NumRows()+10, rngB) // oversample → full clone
	afterB := rngB.Int63()

	if afterA != afterB {
		t.Fatalf("RNG state diverged by sample size: %d vs %d", afterA, afterB)
	}

	// Oversampling still returns the full table in original row order.
	rngC := rand.New(rand.NewSource(42))
	full := tb.Sample(1000, rngC)
	tablesEqual(t, full, tb, "oversample")
}

// Row subsetting must allocate O(columns), not O(cells): the per-column
// cost of SelectRows is a view header, with one shared index copy.
func TestSelectRowsAllocatesPerColumn(t *testing.T) {
	tb := NewTable("alloc")
	const rows, cols = 4096, 16
	for c := 0; c < cols; c++ {
		vals := make([]float64, rows)
		for i := range vals {
			vals[i] = float64(i * c)
		}
		tb.MustAddColumn(NewNumeric(colName(c), vals))
	}
	idx := make([]int, rows/2)
	for i := range idx {
		idx[i] = i * 2
	}
	allocs := testing.AllocsPerRun(10, func() {
		_ = tb.SelectRows(idx)
	})
	// Table + col slice + per-column Column headers + one index copy.
	// A deep copy would take ≥ 3 allocations per column (nums, missing,
	// header) plus the cell copying; give the view generous headroom.
	if max := float64(2*cols + 8); allocs > max {
		t.Fatalf("SelectRows allocs = %.0f, want ≤ %.0f (O(columns))", allocs, max)
	}
}

func colName(i int) string { return "c" + string(rune('a'+i)) }
