// Package embed implements the lightweight column-embedding machinery the
// paper uses to approximate expensive dependency discovery (Algorithm 1,
// lines 7-9): each column is summarized as a 300-dimensional vector built by
// feature hashing of its values; inclusion dependencies, similarities, and
// correlations are then estimated from vector arithmetic. The paper reports
// this yields "faster processing (a few seconds) with minor degradation in
// accuracy" compared to exact discovery.
package embed

import (
	"math"
	"sort"

	"catdb/internal/data"
)

// Dim is the embedding dimensionality used throughout (the paper's 300).
const Dim = 300

// Vector is a fixed-size column embedding.
type Vector [Dim]float64

// hash64 is FNV-1a over a string.
func hash64(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Column builds the embedding of a column: every non-missing value is
// hashed into a bucket (with a signed contribution from a second hash), and
// the vector is L2-normalized. Numeric columns additionally mix in a coarse
// magnitude bucketing so that similarly-distributed columns land close.
func Column(c *data.Column) Vector {
	var v Vector
	n := c.Len()
	for i := 0; i < n; i++ {
		if c.IsMissing(i) {
			continue
		}
		var key string
		if c.Kind.IsNumeric() {
			// Bucket numeric values by order of magnitude and leading digit
			// so embeddings reflect the distribution, not exact values.
			key = numericBucket(c.Num(i))
		} else {
			key = c.Str(i)
		}
		h := hash64(key)
		idx := int(h % Dim)
		sign := 1.0
		if (h>>32)&1 == 1 {
			sign = -1
		}
		v[idx] += sign
	}
	v.normalize()
	return v
}

func numericBucket(x float64) string {
	if x == 0 {
		return "zero"
	}
	neg := ""
	if x < 0 {
		neg = "-"
		x = -x
	}
	mag := int(math.Floor(math.Log10(x)))
	lead := int(x / math.Pow(10, float64(mag)))
	return neg + string(rune('a'+((mag%20)+20)%20)) + string(rune('0'+lead%10))
}

func (v *Vector) normalize() {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	for i := range v {
		v[i] /= norm
	}
}

// Cosine returns the cosine similarity of two embeddings in [-1, 1].
func Cosine(a, b Vector) float64 {
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	if dot > 1 {
		dot = 1
	}
	if dot < -1 {
		dot = -1
	}
	return dot
}

// InclusionScore estimates how strongly the value set of a is included in
// the value set of b (an approximate inclusion dependency): the fraction
// of a's distinct values present in b's. Both distinct sets come from the
// columns' memoized summaries, so pairwise loops no longer rebuild them
// per pair.
func InclusionScore(a, b *data.Column) float64 {
	return InclusionFromSummaries(a.Summary(), b.Summary())
}

// InclusionFromSummaries is InclusionScore over precomputed summaries; the
// profiler's O(m²) inclusion loop uses it directly.
func InclusionFromSummaries(sa, sb *data.Summary) float64 {
	da := sa.Distinct
	if len(da) == 0 {
		return 0
	}
	hit := 0
	for _, v := range da {
		if sb.Contains(v) {
			hit++
		}
	}
	return float64(hit) / float64(len(da))
}

// Correlation computes Pearson correlation for two numeric columns over
// rows where both are present; for non-numeric columns it falls back to
// embedding cosine similarity as the paper's approximate signal. Numeric
// columns of different lengths are compared over their overlapping prefix
// (rows past the shorter column carry no paired observation) instead of
// silently degrading to the embedding fallback.
func Correlation(a, b *data.Column) float64 {
	if a.Kind.IsNumeric() && b.Kind.IsNumeric() {
		rows := a.Len()
		if b.Len() < rows {
			rows = b.Len()
		}
		var n float64
		var sa, sb, saa, sbb, sab float64
		for i := 0; i < rows; i++ {
			if a.IsMissing(i) || b.IsMissing(i) {
				continue
			}
			x, y := a.Num(i), b.Num(i)
			n++
			sa += x
			sb += y
			saa += x * x
			sbb += y * y
			sab += x * y
		}
		if n < 2 {
			return 0
		}
		cov := sab/n - (sa/n)*(sb/n)
		va := saa/n - (sa/n)*(sa/n)
		vb := sbb/n - (sb/n)*(sb/n)
		if va <= 0 || vb <= 0 {
			return 0
		}
		return cov / math.Sqrt(va*vb)
	}
	return Cosine(Column(a), Column(b))
}

// CramersV estimates association between a categorical column and a
// (categorical or binned numeric) target, used by rule generation to find
// features "highly correlated with the target".
func CramersV(a, target *data.Column) float64 {
	n := a.Len()
	if n == 0 || target.Len() != n {
		return 0
	}
	statA, statT := a.NumericStats(), target.NumericStats()
	binCell := func(c *data.Column, st data.Stats, i int) (string, bool) {
		if c.IsMissing(i) {
			return "", false
		}
		if c.Kind.IsNumeric() {
			span := st.Max - st.Min
			if span == 0 {
				return "0", true
			}
			b := int((c.Num(i) - st.Min) / span * 7.999)
			return string(rune('0' + b)), true
		}
		return c.Str(i), true
	}
	counts := map[[2]string]float64{}
	rowTot := map[string]float64{}
	colTot := map[string]float64{}
	var total float64
	for i := 0; i < n; i++ {
		av, ok1 := binCell(a, statA, i)
		tv, ok2 := binCell(target, statT, i)
		if !ok1 || !ok2 {
			continue
		}
		counts[[2]string{av, tv}]++
		rowTot[av]++
		colTot[tv]++
		total++
	}
	if total == 0 || len(rowTot) < 2 || len(colTot) < 2 {
		return 0
	}
	// Chi-squared over the full contingency grid, including cells with zero
	// observations (their contribution is the expected count itself). The
	// grid is walked in sorted key order: floating-point accumulation then
	// has a fixed association order, so the statistic is bit-reproducible
	// run to run (map iteration order is not), which the profiler's
	// parallel-vs-serial and cache-on/off identity guarantees rely on.
	rowKeys := sortedKeys(rowTot)
	colKeys := sortedKeys(colTot)
	var chi2 float64
	for _, rv := range rowKeys {
		for _, cv := range colKeys {
			exp := rowTot[rv] * colTot[cv] / total
			if exp == 0 {
				continue
			}
			d := counts[[2]string{rv, cv}] - exp
			chi2 += d * d / exp
		}
	}
	minDim := float64(len(rowTot) - 1)
	if c := float64(len(colTot) - 1); c < minDim {
		minDim = c
	}
	if minDim <= 0 {
		return 0
	}
	return math.Sqrt(chi2 / (total * minDim))
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
