package embed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"catdb/internal/data"
)

func TestColumnEmbeddingNormalized(t *testing.T) {
	c := data.NewString("s", []string{"a", "b", "c", "a"})
	v := Column(c)
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("norm = %g, want 1", math.Sqrt(norm))
	}
}

func TestCosineSelfSimilarity(t *testing.T) {
	c := data.NewString("s", []string{"x", "y", "z", "x", "y"})
	v := Column(c)
	if got := Cosine(v, v); math.Abs(got-1) > 1e-9 {
		t.Fatalf("self cosine = %g", got)
	}
}

func TestCosineSimilarColumnsCloserThanDissimilar(t *testing.T) {
	a := data.NewString("a", []string{"red", "blue", "green", "red", "blue", "green"})
	b := data.NewString("b", []string{"red", "blue", "green", "green", "blue", "red"})
	c := data.NewString("c", []string{"cat", "dog", "bird", "fish", "lion", "bear"})
	simAB := Cosine(Column(a), Column(b))
	simAC := Cosine(Column(a), Column(c))
	if simAB <= simAC {
		t.Fatalf("similar columns cos=%g should beat dissimilar cos=%g", simAB, simAC)
	}
}

func TestInclusionScore(t *testing.T) {
	sub := data.NewString("sub", []string{"a", "b"})
	sup := data.NewString("sup", []string{"a", "b", "c", "d"})
	if got := InclusionScore(sub, sup); got != 1 {
		t.Fatalf("full inclusion = %g, want 1", got)
	}
	if got := InclusionScore(sup, sub); got != 0.5 {
		t.Fatalf("partial inclusion = %g, want 0.5", got)
	}
	empty := data.NewString("e", nil)
	if InclusionScore(empty, sup) != 0 {
		t.Fatal("empty column inclusion must be 0")
	}
}

func TestCorrelationNumeric(t *testing.T) {
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 2*x[i] + 0.1*rng.NormFloat64()
		z[i] = rng.NormFloat64()
	}
	cx := data.NewNumeric("x", x)
	cy := data.NewNumeric("y", y)
	cz := data.NewNumeric("z", z)
	if got := Correlation(cx, cy); got < 0.95 {
		t.Fatalf("correlated cols corr = %g, want > 0.95", got)
	}
	if got := math.Abs(Correlation(cx, cz)); got > 0.3 {
		t.Fatalf("independent cols corr = %g, want ≈0", got)
	}
}

func TestCorrelationHandlesMissing(t *testing.T) {
	a := data.NewNumeric("a", []float64{1, 2, 3, 4})
	b := data.NewNumeric("b", []float64{1, 2, 3, 4})
	a.SetMissing(0)
	if got := Correlation(a, b); got < 0.99 {
		t.Fatalf("corr with missing = %g", got)
	}
	tiny := data.NewNumeric("t", []float64{1})
	if Correlation(tiny, tiny) != 1 && Correlation(tiny, tiny) != 0 {
		t.Fatal("tiny column should not NaN")
	}
}

func TestCorrelationConstantColumn(t *testing.T) {
	a := data.NewNumeric("a", []float64{5, 5, 5})
	b := data.NewNumeric("b", []float64{1, 2, 3})
	if got := Correlation(a, b); got != 0 {
		t.Fatalf("constant col corr = %g, want 0", got)
	}
}

func TestCramersVAssociation(t *testing.T) {
	n := 600
	feat := make([]string, n)
	tgt := make([]string, n)
	noise := make([]string, n)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		k := i % 3
		feat[i] = string(rune('a' + k))
		tgt[i] = string(rune('x' + k)) // perfect association
		noise[i] = string(rune('a' + rng.Intn(3)))
	}
	cf := data.NewString("f", feat)
	ct := data.NewString("t", tgt)
	cn := data.NewString("n", noise)
	strong := CramersV(cf, ct)
	weak := CramersV(cn, ct)
	if strong < 0.9 {
		t.Fatalf("perfect association V = %g, want ≈1", strong)
	}
	if weak > 0.3 {
		t.Fatalf("noise association V = %g, want ≈0", weak)
	}
}

func TestCramersVNumericBinning(t *testing.T) {
	n := 400
	x := make([]float64, n)
	y := make([]string, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i)
		if i < n/2 {
			y[i] = "low"
		} else {
			y[i] = "high"
		}
	}
	v := CramersV(data.NewNumeric("x", x), data.NewString("y", y))
	if v < 0.8 {
		t.Fatalf("binned numeric association = %g, want high", v)
	}
}

func TestCramersVDegenerate(t *testing.T) {
	a := data.NewString("a", []string{"x", "x"})
	b := data.NewString("b", []string{"p", "q"})
	if CramersV(a, b) != 0 {
		t.Fatal("single-level feature must give 0")
	}
	if CramersV(data.NewString("e", nil), data.NewString("f", nil)) != 0 {
		t.Fatal("empty must give 0")
	}
}

// Property: cosine similarity is symmetric and bounded.
func TestCosineProperties(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		mk := func(r *rand.Rand) data.Column {
			n := 5 + r.Intn(40)
			vals := make([]string, n)
			for i := range vals {
				vals[i] = string(rune('a' + r.Intn(10)))
			}
			return *data.NewString("c", vals)
		}
		ca, cb := mk(ra), mk(rb)
		va, vb := Column(&ca), Column(&cb)
		s1, s2 := Cosine(va, vb), Cosine(vb, va)
		return math.Abs(s1-s2) < 1e-12 && s1 >= -1 && s1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNumericBucketStability(t *testing.T) {
	if numericBucket(123) != numericBucket(150) {
		t.Fatal("same leading digit+magnitude should share a bucket")
	}
	if numericBucket(123) == numericBucket(923) {
		t.Fatal("different leading digits should differ")
	}
	if numericBucket(0) != "zero" {
		t.Fatal("zero bucket")
	}
	if numericBucket(-5) == numericBucket(5) {
		t.Fatal("sign must matter")
	}
}

// Regression: numeric columns of unequal length used to fall through to
// the embedding-cosine path silently; they must get a real Pearson score
// over the overlapping prefix instead.
func TestCorrelationLengthMismatch(t *testing.T) {
	a := data.NewNumeric("a", []float64{1, 2, 3, 4, 5, 6})
	b := data.NewNumeric("b", []float64{2, 4, 6, 8}) // perfectly linear on the overlap
	got := Correlation(a, b)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("Correlation over overlapping prefix = %g, want 1", got)
	}
	if got2 := Correlation(b, a); math.Abs(got2-got) > 1e-12 {
		t.Fatalf("length-mismatch correlation must be symmetric: %g vs %g", got2, got)
	}
	// Anti-correlated overlap.
	c := data.NewNumeric("c", []float64{6, 4, 2})
	if got := Correlation(a, c); math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti-correlated prefix = %g, want -1", got)
	}
}

// The summary-based inclusion fast path must agree with the definition.
func TestInclusionFromSummaries(t *testing.T) {
	a := data.NewString("a", []string{"x", "y"})
	b := data.NewString("b", []string{"x", "y", "z"})
	if got := InclusionFromSummaries(a.Summary(), b.Summary()); got != 1 {
		t.Fatalf("full inclusion = %g, want 1", got)
	}
	if got := InclusionFromSummaries(b.Summary(), a.Summary()); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("partial inclusion = %g, want 2/3", got)
	}
	if got := InclusionScore(a, b); got != 1 {
		t.Fatalf("InclusionScore = %g, want 1", got)
	}
}
