// Package errkb implements the paper's error-management substrate (§4.2):
// a taxonomy of 23 error types in three groups (environment/package
// errors handled by the knowledge base, syntax/parse errors, and
// runtime/semantic errors), a knowledge base of locally-applicable
// patches, and an error-trace dataset with the distribution statistics of
// Table 2 and Figure 8.
package errkb

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"catdb/internal/pipescript"
)

// Category is one of the paper's three error groups.
type Category int

// The three groups of Figure 7/8.
const (
	CategoryKB Category = iota // environment & package errors (KB API)
	CategorySE                 // syntax & parse errors
	CategoryRE                 // runtime & semantic errors
)

// String returns the paper's abbreviation.
func (c Category) String() string {
	switch c {
	case CategoryKB:
		return "KB"
	case CategorySE:
		return "SE"
	default:
		return "RE"
	}
}

// Classified describes one classified pipeline error.
type Classified struct {
	Category Category
	// Type is one of the 23 error type names.
	Type string
	// Code is the machine code (pipescript error code or E_SYNTAX).
	Code string
	Line int
	Msg  string
}

// The 23 error types (6 KB + 5 SE + 12 RE), mirroring the taxonomy the
// paper extracts from its request logs (Figure 8).
var AllErrorTypes = []string{
	// KB group.
	"ModuleNotFoundError", "ImportError", "PackageVersionError",
	"EnvironmentPathError", "DependencyConflictError", "PermissionError",
	// SE group.
	"SyntaxError", "IndentationError", "UnterminatedString",
	"InvalidKeyword", "MalformedOption",
	// RE group.
	"KeyError", "ValueError", "NaNError", "TypeError", "AttributeError",
	"MemoryError", "EmptyDataError", "TargetError", "TaskError",
	"FeatureExplosionError", "ModelNotFoundError", "NoTrainError",
}

// Classify maps a pipeline error (from pipescript.Parse or Execute) to the
// taxonomy. Unknown errors classify as a generic runtime ValueError.
func Classify(err error) Classified {
	var se *pipescript.SyntaxError
	if errors.As(err, &se) {
		typ := "SyntaxError"
		switch {
		case strings.Contains(se.Msg, "unterminated"):
			typ = "UnterminatedString"
		case strings.Contains(se.Msg, "unknown statement"):
			typ = "InvalidKeyword"
		case strings.Contains(se.Msg, "malformed option"):
			typ = "MalformedOption"
		case strings.Contains(se.Msg, "argument"):
			typ = "IndentationError" // malformed statement shape
		}
		return Classified{Category: CategorySE, Type: typ, Code: "E_SYNTAX", Line: se.Line, Msg: se.Msg}
	}
	var re *pipescript.RuntimeError
	if errors.As(err, &re) {
		c := Classified{Code: re.Code, Line: re.Line, Msg: re.Msg}
		switch re.Code {
		case pipescript.ErrPkgMissing:
			c.Category, c.Type = CategoryKB, "ModuleNotFoundError"
		case pipescript.ErrUnknownColumn:
			c.Category, c.Type = CategoryRE, "KeyError"
		case pipescript.ErrStringInMatrix:
			c.Category, c.Type = CategoryRE, "ValueError"
		case pipescript.ErrNaNInMatrix:
			c.Category, c.Type = CategoryRE, "NaNError"
		case pipescript.ErrTypeMismatch:
			c.Category, c.Type = CategoryRE, "TypeError"
		case pipescript.ErrBadOption:
			c.Category, c.Type = CategoryRE, "AttributeError"
		case pipescript.ErrUnknownModel:
			c.Category, c.Type = CategoryRE, "ModelNotFoundError"
		case pipescript.ErrNoTrainStmt:
			c.Category, c.Type = CategoryRE, "NoTrainError"
		case pipescript.ErrEmptyData:
			c.Category, c.Type = CategoryRE, "EmptyDataError"
		case pipescript.ErrTargetMissing:
			c.Category, c.Type = CategoryRE, "TargetError"
		case pipescript.ErrTaskMismatch:
			c.Category, c.Type = CategoryRE, "TaskError"
		case pipescript.ErrModelOOM:
			c.Category, c.Type = CategoryRE, "MemoryError"
		case pipescript.ErrTooManyFeatures:
			c.Category, c.Type = CategoryRE, "FeatureExplosionError"
		case pipescript.ErrPolicy:
			// Compliance violations surface as unavailable-model errors in
			// the taxonomy; the fix path swaps in an allowed alternative.
			c.Category, c.Type = CategoryRE, "ModelNotFoundError"
		default:
			c.Category, c.Type = CategoryRE, "ValueError"
		}
		return c
	}
	return Classified{Category: CategoryRE, Type: "ValueError", Code: "E_UNKNOWN", Msg: err.Error()}
}

// KnowledgeBase holds locally-applicable patches: fixes that need no LLM
// round trip (§4.2's "cost-effective and locally executable solution").
// Beyond the built-in patches it accumulates patches learned from
// successful LLM repairs (see LearnFromFix), so recurring rare errors stop
// costing LLM round trips.
type KnowledgeBase struct {
	learned []LearnedPatch
}

// NewKnowledgeBase returns the built-in knowledge base.
func NewKnowledgeBase() *KnowledgeBase { return &KnowledgeBase{} }

// CanPatch reports whether the KB has a local patch for the error.
func (kb *KnowledgeBase) CanPatch(c Classified) bool {
	switch {
	case c.Category == CategoryKB:
		return true
	case c.Category == CategorySE && (c.Type == "InvalidKeyword" || c.Type == "UnterminatedString"):
		// The ast-level auto-fixes of §4.2: uncommented prose and stray
		// markdown fences are stripped locally.
		return true
	default:
		return false
	}
}

// Patch applies the local fix and returns the patched source. It returns
// an error when no patch applies.
func (kb *KnowledgeBase) Patch(source string, c Classified) (string, error) {
	lines := strings.Split(strings.TrimRight(source, "\n"), "\n")
	idx := c.Line - 1
	switch {
	case c.Code == pipescript.ErrPkgMissing:
		// "Install" substitute: the environment has no external packages,
		// so the require is removed (equivalent behaviour: the pipeline
		// proceeds with built-ins).
		var kept []string
		for _, l := range lines {
			if strings.HasPrefix(strings.TrimSpace(l), "require ") {
				pkg := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(l), "require "))
				if !pipescript.AvailablePackages[pkg] {
					continue
				}
			}
			kept = append(kept, l)
		}
		return strings.Join(kept, "\n") + "\n", nil
	case c.Category == CategorySE && c.Type == "InvalidKeyword":
		if idx >= 0 && idx < len(lines) {
			lines = append(lines[:idx], lines[idx+1:]...)
			return strings.Join(lines, "\n") + "\n", nil
		}
	case c.Category == CategorySE && c.Type == "UnterminatedString":
		if idx >= 0 && idx < len(lines) {
			lines[idx] = lines[idx] + `"`
			return strings.Join(lines, "\n") + "\n", nil
		}
	}
	return "", fmt.Errorf("errkb: no local patch for %s/%s", c.Category, c.Type)
}

// TryPatch applies the best available local fix — a built-in patch first,
// then any learned patch matching the error shape — and reports whether
// one was applied.
func (kb *KnowledgeBase) TryPatch(source string, c Classified) (string, bool) {
	if kb == nil {
		return source, false
	}
	if kb.CanPatch(c) {
		if out, err := kb.Patch(source, c); err == nil {
			return out, true
		}
	}
	if p := kb.learnedPatchFor(c, source); p != nil {
		if out, err := applyLearned(p, source, c); err == nil {
			return out, true
		}
	}
	return source, false
}

// Trace is one recorded error event of the error-trace dataset.
type Trace struct {
	Model    string   `json:"model"`
	Dataset  string   `json:"dataset"`
	Category string   `json:"category"`
	Type     string   `json:"type"`
	Code     string   `json:"code"`
	Attempt  int      `json:"attempt"`
	Fixed    bool     `json:"fixed"`
	FixedBy  string   `json:"fixed_by"` // "kb" or "llm"
	_        struct{} `json:"-"`
}

// TraceStore accumulates error traces across runs (the paper's
// "substantial error traces ... collected over an extended system
// development period").
type TraceStore struct {
	Traces []Trace `json:"traces"`
}

// NewTraceStore returns an empty store.
func NewTraceStore() *TraceStore { return &TraceStore{} }

// Add records one trace.
func (s *TraceStore) Add(t Trace) { s.Traces = append(s.Traces, t) }

// Len returns the trace count.
func (s *TraceStore) Len() int { return len(s.Traces) }

// Distribution summarizes the KB/SE/RE shares per model (Table 2).
type Distribution struct {
	Model         string
	TotalRequests int
	KBPct         float64
	SEPct         float64
	REPct         float64
}

// DistributionByModel computes Table 2 rows from the recorded traces.
func (s *TraceStore) DistributionByModel() []Distribution {
	counts := map[string]map[string]int{}
	for _, t := range s.Traces {
		if counts[t.Model] == nil {
			counts[t.Model] = map[string]int{}
		}
		counts[t.Model][t.Category]++
		counts[t.Model]["total"]++
	}
	models := make([]string, 0, len(counts))
	for m := range counts {
		models = append(models, m)
	}
	sort.Strings(models)
	var out []Distribution
	for _, m := range models {
		c := counts[m]
		total := c["total"]
		if total == 0 {
			continue
		}
		out = append(out, Distribution{
			Model: m, TotalRequests: total,
			KBPct: 100 * float64(c["KB"]) / float64(total),
			SEPct: 100 * float64(c["SE"]) / float64(total),
			REPct: 100 * float64(c["RE"]) / float64(total),
		})
	}
	return out
}

// TypeHistogram counts traces per error type (Figure 8).
func (s *TraceStore) TypeHistogram() map[string]int {
	out := map[string]int{}
	for _, t := range s.Traces {
		out[t.Type]++
	}
	return out
}

// Save writes the trace dataset as JSON.
func (s *TraceStore) Save(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("errkb: marshal traces: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("errkb: %w", err)
	}
	return nil
}

// LoadTraces reads a trace dataset from JSON.
func LoadTraces(path string) (*TraceStore, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("errkb: %w", err)
	}
	var s TraceStore
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("errkb: parse traces: %w", err)
	}
	return &s, nil
}
