package errkb

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"catdb/internal/pipescript"
)

func TestClassifySyntax(t *testing.T) {
	_, err := pipescript.Parse("pipeline \"x\"\nfrobnicate\n")
	c := Classify(err)
	if c.Category != CategorySE || c.Type != "InvalidKeyword" || c.Code != "E_SYNTAX" {
		t.Fatalf("classified = %+v", c)
	}
	if c.Line != 2 {
		t.Fatalf("line = %d", c.Line)
	}
	_, err = pipescript.Parse("pipeline \"x\ntrain\n")
	if got := Classify(err); got.Type != "UnterminatedString" {
		t.Fatalf("unterminated: %+v", got)
	}
}

func TestClassifyRuntime(t *testing.T) {
	cases := []struct {
		code     string
		category Category
		typ      string
	}{
		{pipescript.ErrPkgMissing, CategoryKB, "ModuleNotFoundError"},
		{pipescript.ErrUnknownColumn, CategoryRE, "KeyError"},
		{pipescript.ErrStringInMatrix, CategoryRE, "ValueError"},
		{pipescript.ErrNaNInMatrix, CategoryRE, "NaNError"},
		{pipescript.ErrModelOOM, CategoryRE, "MemoryError"},
		{pipescript.ErrTooManyFeatures, CategoryRE, "FeatureExplosionError"},
		{pipescript.ErrNoTrainStmt, CategoryRE, "NoTrainError"},
	}
	for _, tc := range cases {
		err := &pipescript.RuntimeError{Line: 3, Code: tc.code, Msg: "m"}
		c := Classify(err)
		if c.Category != tc.category || c.Type != tc.typ {
			t.Errorf("%s: got %s/%s", tc.code, c.Category, c.Type)
		}
	}
	// Unknown errors default to RE/ValueError.
	c := Classify(errors.New("weird"))
	if c.Category != CategoryRE || c.Type != "ValueError" {
		t.Fatalf("fallback: %+v", c)
	}
}

func TestTaxonomyHas23Types(t *testing.T) {
	if len(AllErrorTypes) != 23 {
		t.Fatalf("taxonomy has %d types, want 23", len(AllErrorTypes))
	}
	seen := map[string]bool{}
	for _, typ := range AllErrorTypes {
		if seen[typ] {
			t.Fatalf("duplicate type %s", typ)
		}
		seen[typ] = true
	}
}

func TestKBPatchPkgMissing(t *testing.T) {
	kb := NewKnowledgeBase()
	src := "pipeline \"x\"\nrequire xgboost\nrequire tabular\ntrain model=knn target=\"y\"\n"
	c := Classified{Category: CategoryKB, Code: pipescript.ErrPkgMissing, Line: 2}
	if !kb.CanPatch(c) {
		t.Fatal("KB must patch package errors")
	}
	out, err := kb.Patch(src, c)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "xgboost") {
		t.Fatal("phantom require must be removed")
	}
	if !strings.Contains(out, "require tabular") {
		t.Fatal("valid require must survive")
	}
	if _, err := pipescript.Parse(out); err != nil {
		t.Fatalf("patched source must parse: %v", err)
	}
}

func TestKBPatchProse(t *testing.T) {
	kb := NewKnowledgeBase()
	src := "pipeline \"x\"\nHere is the pipeline:\ntrain model=knn target=\"y\"\n"
	_, perr := pipescript.Parse(src)
	c := Classify(perr)
	if !kb.CanPatch(c) {
		t.Fatal("KB should strip prose locally")
	}
	out, err := kb.Patch(src, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipescript.Parse(out); err != nil {
		t.Fatalf("patched source must parse: %v\n%s", err, out)
	}
}

func TestKBPatchUnterminatedString(t *testing.T) {
	kb := NewKnowledgeBase()
	src := "pipeline \"x\ntrain model=knn target=\"y\"\n"
	_, perr := pipescript.Parse(src)
	c := Classify(perr)
	out, err := kb.Patch(src, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipescript.Parse(out); err != nil {
		t.Fatalf("quote patch failed: %v\n%s", err, out)
	}
}

func TestKBRefusesRuntime(t *testing.T) {
	kb := NewKnowledgeBase()
	c := Classified{Category: CategoryRE, Type: "NaNError", Code: pipescript.ErrNaNInMatrix}
	if kb.CanPatch(c) {
		t.Fatal("runtime errors need the LLM, not the KB")
	}
	if _, err := kb.Patch("x", c); err == nil {
		t.Fatal("Patch must refuse runtime errors")
	}
}

func TestTraceStoreDistribution(t *testing.T) {
	s := NewTraceStore()
	for i := 0; i < 80; i++ {
		s.Add(Trace{Model: "llama3.1-70b", Category: "RE", Type: "NaNError"})
	}
	for i := 0; i < 15; i++ {
		s.Add(Trace{Model: "llama3.1-70b", Category: "KB", Type: "ModuleNotFoundError"})
	}
	for i := 0; i < 5; i++ {
		s.Add(Trace{Model: "llama3.1-70b", Category: "SE", Type: "SyntaxError"})
	}
	s.Add(Trace{Model: "gemini-1.5-pro", Category: "RE", Type: "KeyError"})
	dist := s.DistributionByModel()
	if len(dist) != 2 {
		t.Fatalf("models = %d", len(dist))
	}
	var llama Distribution
	for _, d := range dist {
		if d.Model == "llama3.1-70b" {
			llama = d
		}
	}
	if llama.TotalRequests != 100 || llama.REPct != 80 || llama.KBPct != 15 || llama.SEPct != 5 {
		t.Fatalf("llama dist = %+v", llama)
	}
	hist := s.TypeHistogram()
	if hist["NaNError"] != 80 {
		t.Fatalf("histogram = %v", hist)
	}
}

func TestTraceStorePersistence(t *testing.T) {
	s := NewTraceStore()
	s.Add(Trace{Model: "gpt-4o", Dataset: "Wifi", Category: "SE", Type: "SyntaxError", Attempt: 1, Fixed: true, FixedBy: "kb"})
	path := filepath.Join(t.TempDir(), "traces.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTraces(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 || back.Traces[0].Dataset != "Wifi" || !back.Traces[0].Fixed {
		t.Fatalf("round trip: %+v", back.Traces)
	}
	if _, err := LoadTraces(filepath.Join(t.TempDir(), "none.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestCategoryString(t *testing.T) {
	if CategoryKB.String() != "KB" || CategorySE.String() != "SE" || CategoryRE.String() != "RE" {
		t.Fatal("category names")
	}
}
