package errkb

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// This file implements the growing half of the knowledge base: §4.2 notes
// that "by adding rare remaining errors to the knowledge base, any manual
// error correction became the exception". LearnFromFix observes a
// successful LLM repair, generalizes it into a replayable patch, and
// future occurrences of the same error shape are fixed locally without an
// LLM round trip.

// PatchAction is the kind of generalized repair a learned patch performs.
type PatchAction string

// Learned patch actions.
const (
	ActionDeleteLine   PatchAction = "delete-line"   // remove the offending statement
	ActionInsertBefore PatchAction = "insert-before" // insert a statement before train
	ActionReplaceModel PatchAction = "replace-model" // rewrite the train model
)

// LearnedPatch is one generalized repair: it matches on the error code
// plus the statement keyword of the offending line, and applies a
// line-level action.
type LearnedPatch struct {
	Code    string      `json:"code"`    // pipeline error code (e.g. E_NAN_IN_MATRIX)
	StmtOp  string      `json:"stmt_op"` // keyword of the offending line ("" = any)
	Action  PatchAction `json:"action"`
	Payload string      `json:"payload"` // inserted statement / replacement model
	Hits    int         `json:"hits"`    // times replayed
}

// LearnFromFix compares the pipeline before and after a successful LLM
// repair of error c and, when the repair has a simple generalizable shape
// (one line deleted, one statement inserted, or the model swapped),
// records it as a learned patch. It reports whether anything was learned.
func (kb *KnowledgeBase) LearnFromFix(before, after string, c Classified) bool {
	if kb == nil {
		return false
	}
	b := splitLines(before)
	a := splitLines(after)
	// One line removed?
	if len(a) == len(b)-1 {
		if idx := firstDiff(b, a); idx >= 0 && equalTail(b, a, idx+1, idx) {
			op := stmtOp(b[idx])
			kb.learned = append(kb.learned, LearnedPatch{
				Code: c.Code, StmtOp: op, Action: ActionDeleteLine,
			})
			return true
		}
	}
	// One line inserted?
	if len(a) == len(b)+1 {
		if idx := firstDiff(a, b); idx >= 0 && equalTail(a, b, idx+1, idx) {
			kb.learned = append(kb.learned, LearnedPatch{
				Code: c.Code, Action: ActionInsertBefore, Payload: strings.TrimSpace(a[idx]),
			})
			return true
		}
	}
	// Model rewritten in place?
	if len(a) == len(b) {
		for i := range b {
			if b[i] == a[i] {
				continue
			}
			if stmtOp(b[i]) == "train" && stmtOp(a[i]) == "train" {
				if m := modelOf(a[i]); m != "" {
					kb.learned = append(kb.learned, LearnedPatch{
						Code: c.Code, StmtOp: "train", Action: ActionReplaceModel, Payload: m,
					})
					return true
				}
			}
		}
	}
	return false
}

// LearnedCount returns the number of learned patches.
func (kb *KnowledgeBase) LearnedCount() int { return len(kb.learned) }

// learnedPatchFor finds a learned patch matching the classified error and
// the offending line's statement keyword.
func (kb *KnowledgeBase) learnedPatchFor(c Classified, source string) *LearnedPatch {
	lines := splitLines(source)
	op := ""
	if c.Line-1 >= 0 && c.Line-1 < len(lines) {
		op = stmtOp(lines[c.Line-1])
	}
	for i := range kb.learned {
		p := &kb.learned[i]
		if p.Code != c.Code {
			continue
		}
		if p.StmtOp != "" && p.StmtOp != op {
			continue
		}
		return p
	}
	return nil
}

// applyLearned replays a learned patch against the source.
func applyLearned(p *LearnedPatch, source string, c Classified) (string, error) {
	lines := splitLines(source)
	switch p.Action {
	case ActionDeleteLine:
		idx := c.Line - 1
		if idx < 0 || idx >= len(lines) {
			return "", fmt.Errorf("errkb: learned delete out of range")
		}
		lines = append(lines[:idx], lines[idx+1:]...)
	case ActionInsertBefore:
		inserted := false
		out := make([]string, 0, len(lines)+1)
		for _, l := range lines {
			if !inserted && stmtOp(l) == "train" {
				out = append(out, p.Payload)
				inserted = true
			}
			out = append(out, l)
		}
		if !inserted {
			out = append(out, p.Payload)
		}
		lines = out
	case ActionReplaceModel:
		for i, l := range lines {
			if stmtOp(l) == "train" {
				lines[i] = replaceModel(l, p.Payload)
			}
		}
	default:
		return "", fmt.Errorf("errkb: unknown learned action %q", p.Action)
	}
	p.Hits++
	return strings.Join(lines, "\n") + "\n", nil
}

// SaveLearned persists the learned patches as JSON.
func (kb *KnowledgeBase) SaveLearned(path string) error {
	b, err := json.MarshalIndent(kb.learned, "", "  ")
	if err != nil {
		return fmt.Errorf("errkb: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("errkb: %w", err)
	}
	return nil
}

// LoadLearned restores learned patches from JSON, appending to any
// already present.
func (kb *KnowledgeBase) LoadLearned(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("errkb: %w", err)
	}
	var patches []LearnedPatch
	if err := json.Unmarshal(b, &patches); err != nil {
		return fmt.Errorf("errkb: %w", err)
	}
	kb.learned = append(kb.learned, patches...)
	return nil
}

func splitLines(s string) []string {
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}

func stmtOp(line string) string {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

func modelOf(trainLine string) string {
	for _, f := range strings.Fields(trainLine) {
		if strings.HasPrefix(f, "model=") {
			return strings.TrimPrefix(f, "model=")
		}
	}
	return ""
}

func replaceModel(trainLine, model string) string {
	fields := strings.Fields(trainLine)
	for i, f := range fields {
		if strings.HasPrefix(f, "model=") {
			fields[i] = "model=" + model
		}
	}
	return strings.Join(fields, " ")
}

// firstDiff returns the first index where long and short differ (long has
// one extra element), or -1 when the prefixes match entirely.
func firstDiff(long, short []string) int {
	for i := range short {
		if long[i] != short[i] {
			return i
		}
	}
	return len(short)
}

// equalTail reports whether long[li:] == short[si:].
func equalTail(long, short []string, li, si int) bool {
	if len(long)-li != len(short)-si {
		return false
	}
	for i := 0; li+i < len(long); i++ {
		if long[li+i] != short[si+i] {
			return false
		}
	}
	return true
}
