package errkb

import (
	"path/filepath"
	"strings"
	"testing"

	"catdb/internal/pipescript"
)

func TestLearnDeleteLine(t *testing.T) {
	kb := NewKnowledgeBase()
	before := "pipeline \"x\"\nimpute \"ghost\" strategy=median\ntrain model=knn target=\"y\"\n"
	after := "pipeline \"x\"\ntrain model=knn target=\"y\"\n"
	c := Classified{Category: CategoryRE, Code: pipescript.ErrUnknownColumn, Line: 2}
	if !kb.LearnFromFix(before, after, c) {
		t.Fatal("delete fix not learned")
	}
	if kb.LearnedCount() != 1 {
		t.Fatalf("learned = %d", kb.LearnedCount())
	}
	// Replay on a new occurrence with the same shape.
	src := "pipeline \"y\"\nimpute \"phantom\" strategy=mean\ntrain model=gbm target=\"z\"\n"
	out, ok := kb.TryPatch(src, Classified{Code: pipescript.ErrUnknownColumn, Line: 2})
	if !ok {
		t.Fatal("learned patch not replayed")
	}
	if strings.Contains(out, "phantom") {
		t.Fatalf("offending line must be removed:\n%s", out)
	}
	if _, err := pipescript.Parse(out); err != nil {
		t.Fatalf("patched source must parse: %v", err)
	}
}

func TestLearnInsertBefore(t *testing.T) {
	kb := NewKnowledgeBase()
	before := "pipeline \"x\"\nonehot \"c\"\ntrain model=knn target=\"y\"\n"
	after := "pipeline \"x\"\nonehot \"c\"\nimpute_all strategy=auto\ntrain model=knn target=\"y\"\n"
	c := Classified{Category: CategoryRE, Code: pipescript.ErrNaNInMatrix, Line: 3}
	if !kb.LearnFromFix(before, after, c) {
		t.Fatal("insert fix not learned")
	}
	src := "pipeline \"z\"\ntrain model=gbm target=\"w\"\n"
	out, ok := kb.TryPatch(src, Classified{Code: pipescript.ErrNaNInMatrix, Line: 2})
	if !ok || !strings.Contains(out, "impute_all") {
		t.Fatalf("learned insert not replayed:\n%s", out)
	}
	// Inserted before train.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[1], "impute_all") {
		t.Fatalf("insert position wrong:\n%s", out)
	}
}

func TestLearnReplaceModel(t *testing.T) {
	kb := NewKnowledgeBase()
	before := "pipeline \"x\"\ntrain model=tabpfn target=\"y\"\n"
	after := "pipeline \"x\"\ntrain model=random_forest target=\"y\"\n"
	c := Classified{Category: CategoryRE, Code: pipescript.ErrModelOOM, Line: 2}
	if !kb.LearnFromFix(before, after, c) {
		t.Fatal("model swap not learned")
	}
	src := "pipeline \"q\"\ntrain model=tabpfn target=\"t\"\n"
	out, ok := kb.TryPatch(src, Classified{Code: pipescript.ErrModelOOM, Line: 2})
	if !ok || !strings.Contains(out, "model=random_forest") {
		t.Fatalf("learned model swap not replayed:\n%s", out)
	}
}

func TestLearnRejectsComplexDiffs(t *testing.T) {
	kb := NewKnowledgeBase()
	before := "pipeline \"x\"\na\nb\ntrain model=knn\n"
	after := "pipeline \"x\"\nc\nd\ntrain model=knn\n"
	if kb.LearnFromFix(before, after, Classified{Code: "E_X", Line: 2}) {
		t.Fatal("multi-line rewrites must not be generalized")
	}
	if kb.LearnedCount() != 0 {
		t.Fatal("nothing should be learned")
	}
}

func TestTryPatchBuiltinStillFirst(t *testing.T) {
	kb := NewKnowledgeBase()
	src := "pipeline \"x\"\nrequire xgboost\ntrain model=knn target=\"y\"\n"
	c := Classified{Category: CategoryKB, Code: pipescript.ErrPkgMissing, Line: 2}
	out, ok := kb.TryPatch(src, c)
	if !ok || strings.Contains(out, "xgboost") {
		t.Fatalf("built-in patch must fire: %v\n%s", ok, out)
	}
}

func TestLearnedPersistence(t *testing.T) {
	kb := NewKnowledgeBase()
	before := "pipeline \"x\"\ntrain model=tabpfn target=\"y\"\n"
	after := "pipeline \"x\"\ntrain model=gbm target=\"y\"\n"
	kb.LearnFromFix(before, after, Classified{Code: pipescript.ErrModelOOM, Line: 2})
	path := filepath.Join(t.TempDir(), "kb.json")
	if err := kb.SaveLearned(path); err != nil {
		t.Fatal(err)
	}
	kb2 := NewKnowledgeBase()
	if err := kb2.LoadLearned(path); err != nil {
		t.Fatal(err)
	}
	if kb2.LearnedCount() != 1 {
		t.Fatalf("loaded %d patches", kb2.LearnedCount())
	}
	if err := kb2.LoadLearned(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestNilKBTryPatch(t *testing.T) {
	var kb *KnowledgeBase
	if _, ok := kb.TryPatch("x", Classified{}); ok {
		t.Fatal("nil KB must not patch")
	}
	if kb.LearnFromFix("a", "b", Classified{}) {
		t.Fatal("nil KB must not learn")
	}
}
