// Package llm provides the LLM interface CatDB talks to and a
// deterministic simulated implementation with three model personalities
// (gpt-4o, gemini-1.5-pro, llama3.1-70b).
//
// Substitution note (see DESIGN.md §2): the paper drives commercial LLM
// APIs. This reproduction replaces them with a prompt-sensitive generator:
// the simulated model actually parses the <SCHEMA>/<RULES> sections of the
// prompt and emits a PipeScript pipeline whose quality depends on what the
// prompt contains, with seeded fault injection calibrated to the paper's
// per-model error distributions (Table 2, Figure 8). Every CatDB code path
// — prompt construction, validation, the knowledge base, and LLM-based
// error correction — is exercised exactly as with a real model, and runs
// are bit-for-bit reproducible for a fixed seed.
package llm

import (
	"fmt"
	"sync"
)

// Usage counts tokens exchanged with a model.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
	Calls            int
}

// Total returns prompt+completion tokens.
func (u Usage) Total() int { return u.PromptTokens + u.CompletionTokens }

// Add accumulates another usage record.
func (u *Usage) Add(o Usage) {
	u.PromptTokens += o.PromptTokens
	u.CompletionTokens += o.CompletionTokens
	u.Calls += o.Calls
}

// Response is one model completion.
type Response struct {
	Text  string
	Usage Usage
}

// Client is the minimal LLM surface CatDB needs (the llm = LLM(model,
// client_url, config) handle of the user API in §2).
type Client interface {
	// Name identifies the underlying model.
	Name() string
	// MaxPromptTokens is the model's context budget for prompts.
	MaxPromptTokens() int
	// Complete submits one prompt and returns the completion.
	Complete(prompt string) (Response, error)
	// TotalUsage reports cumulative token usage across all calls.
	TotalUsage() Usage
	// ResetUsage clears the cumulative counters (between experiments).
	ResetUsage()
}

// usageTracker implements the shared accounting of Client.
type usageTracker struct {
	mu    sync.Mutex
	total Usage
}

func (t *usageTracker) record(u Usage) {
	t.mu.Lock()
	t.total.Add(u)
	t.mu.Unlock()
}

// TotalUsage returns cumulative usage.
func (t *usageTracker) TotalUsage() Usage {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// ResetUsage zeroes the counters.
func (t *usageTracker) ResetUsage() {
	t.mu.Lock()
	t.total = Usage{}
	t.mu.Unlock()
}

// ErrUnknownModel is returned by New for unrecognized model names.
type ErrUnknownModel struct{ Name string }

// Error implements the error interface.
func (e *ErrUnknownModel) Error() string { return fmt.Sprintf("llm: unknown model %q", e.Name) }
