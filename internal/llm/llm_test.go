package llm

import (
	"strings"
	"testing"

	"catdb/internal/data"
	"catdb/internal/pipescript"
	"catdb/internal/profile"
	"catdb/internal/prompt"
)

func newSim(t *testing.T, model string, seed int64) *Sim {
	t.Helper()
	s, err := New(model, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewUnknownModel(t *testing.T) {
	if _, err := New("gpt-7", 1); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestModelNames(t *testing.T) {
	names := ModelNames()
	if len(names) != 3 {
		t.Fatalf("models = %v", names)
	}
	for _, n := range names {
		if _, ok := PersonalityFor(n); !ok {
			t.Errorf("missing personality for %s", n)
		}
	}
}

func samplePromptInput() prompt.Input {
	return prompt.Input{
		Dataset: "demo", Task: data.Multiclass, Target: "y", Rows: 400,
		Cols: []prompt.ColumnMeta{
			{Name: "num", DataType: data.KindFloat, FeatureType: profile.FeatureNumerical,
				MissingPct: 4, Stats: data.Stats{Min: 0, Max: 10, Mean: 5, Median: 5, Std: 2}},
			{Name: "cat", DataType: data.KindString, FeatureType: profile.FeatureCategorical,
				DistinctCount: 4, DistinctValues: []string{"a", "A", "b", "c"}},
			{Name: "y", DataType: data.KindString, FeatureType: profile.FeatureCategorical,
				IsTarget: true, DistinctCount: 3, DistinctValues: []string{"x", "y2", "z"}},
		},
	}
}

func TestGeneratePipelineFollowsRules(t *testing.T) {
	in := samplePromptInput()
	ps := prompt.Build(in, prompt.ModelSpec{Name: "gpt-4o", MaxPromptTokens: 16000}, prompt.DefaultConfig())
	s := newSim(t, "gpt-4o", 1)
	s.p.ErrProb = 0 // no faults for this test
	resp, err := s.Complete(ps[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := pipescript.Parse(resp.Text)
	if err != nil {
		t.Fatalf("generated program must parse: %v\n%s", err, resp.Text)
	}
	for _, want := range []string{"impute", "onehot", "train"} {
		if !prog.HasStmt(want) {
			t.Errorf("program missing %s:\n%s", want, resp.Text)
		}
	}
	tr := prog.TrainStmt()
	if tr.Opt("target", "") != "y" {
		t.Fatalf("train target = %q", tr.Opt("target", ""))
	}
	if resp.Usage.PromptTokens == 0 || resp.Usage.CompletionTokens == 0 {
		t.Fatal("usage not recorded")
	}
	if s.TotalUsage().Calls != 1 {
		t.Fatal("cumulative usage not recorded")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	in := samplePromptInput()
	ps := prompt.Build(in, prompt.ModelSpec{Name: "gpt-4o", MaxPromptTokens: 16000}, prompt.DefaultConfig())
	a := newSim(t, "llama3.1-70b", 42)
	b := newSim(t, "llama3.1-70b", 42)
	ra, _ := a.Complete(ps[0].Text)
	rb, _ := b.Complete(ps[0].Text)
	if ra.Text != rb.Text {
		t.Fatal("same seed must give identical completion")
	}
}

func TestFaultInjectionRates(t *testing.T) {
	in := samplePromptInput()
	ps := prompt.Build(in, prompt.ModelSpec{Name: "llama", MaxPromptTokens: 8000}, prompt.DefaultConfig())
	s := newSim(t, "llama3.1-70b", 7)
	bad := 0
	n := 200
	for i := 0; i < n; i++ {
		resp, _ := s.Complete(ps[0].Text)
		prog, err := pipescript.Parse(resp.Text)
		if err != nil {
			bad++
			continue
		}
		ex := &pipescript.Executor{Target: "y", Task: data.Multiclass, Seed: 1}
		// A tiny table consistent with the schema.
		tb := data.NewTable("demo")
		tb.MustAddColumn(data.NewNumeric("num", []float64{1, 2, 3, 4, 5, 6, 7, 8}))
		tb.MustAddColumn(data.NewString("cat", []string{"a", "A", "b", "c", "a", "b", "c", "a"}))
		tb.MustAddColumn(data.NewString("y", []string{"x", "y2", "z", "x", "y2", "z", "x", "y2"}))
		tr, te := tb.Split(0.7, 1)
		if _, err := ex.Execute(prog, tr, te); err != nil {
			bad++
		}
	}
	rate := float64(bad) / float64(n)
	// Personality error prob is 0.42; allow generous slack (some injected
	// faults are harmless on this tiny schema).
	if rate < 0.15 || rate > 0.65 {
		t.Fatalf("llama observed error rate = %g, want ≈0.42 ± slack", rate)
	}
}

func TestErrorFixUnknownColumn(t *testing.T) {
	in := samplePromptInput()
	src := "pipeline \"demo\"\nimpute \"nu\" strategy=median\nonehot \"cat\"\ntrain model=random_forest target=\"y\" trees=10\n"
	ep := prompt.FormatErrorPrompt(in, src, 2, "E_UNKNOWN_COLUMN", `column "nu" does not exist`, in.Cols, prompt.DefaultConfig())
	s := newSim(t, "gpt-4o", 3)
	s.p.FixProb = 1
	resp, err := s.Complete(ep.Text)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, `impute "num"`) {
		t.Fatalf("fix should repair the column name:\n%s", resp.Text)
	}
}

func TestErrorFixNaN(t *testing.T) {
	in := samplePromptInput()
	src := "pipeline \"demo\"\nonehot \"cat\"\ntrain model=random_forest target=\"y\"\n"
	ep := prompt.FormatErrorPrompt(in, src, 3, "E_NAN_IN_MATRIX", `input contains NaN: column "num"`, in.Cols, prompt.DefaultConfig())
	s := newSim(t, "gpt-4o", 3)
	s.p.FixProb = 1
	resp, _ := s.Complete(ep.Text)
	prog, err := pipescript.Parse(resp.Text)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.HasStmt("impute_all") {
		t.Fatalf("fix should insert impute_all:\n%s", resp.Text)
	}
	// impute_all must precede train.
	var imputeIdx, trainIdx int
	for i, st := range prog.Stmts {
		if st.Op == "impute_all" {
			imputeIdx = i
		}
		if st.Op == "train" {
			trainIdx = i
		}
	}
	if imputeIdx > trainIdx {
		t.Fatal("impute_all must come before train")
	}
}

func TestErrorFixPkgMissing(t *testing.T) {
	in := samplePromptInput()
	src := "pipeline \"demo\"\nrequire xgboost\ntrain model=random_forest target=\"y\"\n"
	ep := prompt.FormatErrorPrompt(in, src, 2, "E_PKG_MISSING", `package "xgboost" is not installed`, nil, prompt.DefaultConfig())
	s := newSim(t, "gemini-1.5-pro", 3)
	s.p.FixProb = 1
	resp, _ := s.Complete(ep.Text)
	if strings.Contains(resp.Text, "require xgboost") {
		t.Fatalf("fix should remove the bad require:\n%s", resp.Text)
	}
}

func TestErrorFixModelOOM(t *testing.T) {
	in := samplePromptInput()
	src := "pipeline \"demo\"\nonehot \"cat\"\nimpute_all\ntrain model=tabpfn target=\"y\"\n"
	ep := prompt.FormatErrorPrompt(in, src, 4, "E_MODEL_OOM", "model working set exceeds memory budget", in.Cols, prompt.DefaultConfig())
	s := newSim(t, "gpt-4o", 3)
	s.p.FixProb = 1
	resp, _ := s.Complete(ep.Text)
	if !strings.Contains(resp.Text, "model=random_forest") {
		t.Fatalf("fix should swap the model:\n%s", resp.Text)
	}
}

func TestErrorFixSyntax(t *testing.T) {
	in := samplePromptInput()
	src := "pipeline \"demo\"\nHere is the corrected pipeline:\ntrain model=random_forest target=\"y\"\n"
	ep := prompt.FormatErrorPrompt(in, src, 2, "E_SYNTAX", `unknown statement "Here"`, nil, prompt.DefaultConfig())
	s := newSim(t, "gpt-4o", 3)
	s.p.FixProb = 1
	resp, _ := s.Complete(ep.Text)
	if _, err := pipescript.Parse(resp.Text); err != nil {
		t.Fatalf("syntax fix failed: %v\n%s", err, resp.Text)
	}
}

func TestErrorFixCanFail(t *testing.T) {
	in := samplePromptInput()
	src := "pipeline \"demo\"\ntrain model=random_forest target=\"y\"\n"
	ep := prompt.FormatErrorPrompt(in, src, 2, "E_NAN_IN_MATRIX", "nan", nil, prompt.DefaultConfig())
	s := newSim(t, "llama3.1-70b", 5)
	s.p.FixProb = 0
	s.p.FixProbNoMeta = 0
	resp, _ := s.Complete(ep.Text)
	if strings.Contains(resp.Text, "impute_all") {
		t.Fatal("with fix prob 0 nothing should change")
	}
}

func TestDedupRoundTrip(t *testing.T) {
	s := newSim(t, "gemini-1.5-pro", 1)
	values := []string{"Female", "FEMALE", " female", "Male", "male", "alpha-x", "alpha_x"}
	req := BuildDedupRequest("gender", values)
	resp, err := s.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	m := ParseDedupResponse(resp.Text)
	if len(m) != len(values) {
		t.Fatalf("mapping size = %d, want %d: %v", len(m), len(values), m)
	}
	if m["Female"] != m["FEMALE"] || m["FEMALE"] != m[" female"] {
		t.Fatalf("female variants must collapse: %v", m)
	}
	if m["Male"] == m["Female"] {
		t.Fatal("distinct categories must stay distinct")
	}
	if m["alpha-x"] != m["alpha_x"] {
		t.Fatal("separator variants must collapse")
	}
}

func TestTypeInference(t *testing.T) {
	s := newSim(t, "gpt-4o", 1)
	cases := []struct {
		samples []string
		want    string
	}{
		{[]string{"Java, SQL", "Python, Go", "C++, Java"}, "list"},
		{[]string{"7050 CA", "TX 7871", "9000 WA"}, "composite"},
		{[]string{"about two years", "roughly one year", "it is three overall"}, "sentence"},
		{[]string{"red", "green", "blue"}, "categorical"},
	}
	for _, tc := range cases {
		req := BuildTypeRequest("c", tc.samples)
		resp, _ := s.Complete(req)
		if got := ParseTypeResponse(resp.Text); got != tc.want {
			t.Errorf("samples %v: type = %q, want %q", tc.samples, got, tc.want)
		}
	}
}

func TestChainPromptGeneration(t *testing.T) {
	in := samplePromptInput()
	cfg := prompt.DefaultConfig()
	cfg.Chains = 2
	ps := prompt.Build(in, prompt.ModelSpec{Name: "gpt-4o", MaxPromptTokens: 16000}, cfg)
	s := newSim(t, "gpt-4o", 9)
	s.p.ErrProb = 0
	// Drive the chain: feed previous code into subsequent prompts like the
	// core driver does.
	code := ""
	for _, p := range ps {
		text := p.Text
		if code != "" {
			text = strings.Replace(text, "<SCHEMA>", "<CODE>\n"+code+"</CODE>\n<SCHEMA>", 1)
		}
		resp, err := s.Complete(text)
		if err != nil {
			t.Fatal(err)
		}
		code = resp.Text
	}
	prog, err := pipescript.Parse(code)
	if err != nil {
		t.Fatalf("final chain program must parse: %v\n%s", err, code)
	}
	if prog.TrainStmt() == nil {
		t.Fatalf("chain must end with a trained model:\n%s", code)
	}
}

func TestEditDistance(t *testing.T) {
	if editDistance("kitten", "sitting") != 3 {
		t.Fatal("editDistance broken")
	}
	if editDistance("", "abc") != 3 || editDistance("abc", "abc") != 0 {
		t.Fatal("editDistance base cases")
	}
}

func TestUsageAccumulation(t *testing.T) {
	s := newSim(t, "gpt-4o", 1)
	req := BuildTypeRequest("c", []string{"a", "b"})
	_, _ = s.Complete(req)
	_, _ = s.Complete(req)
	u := s.TotalUsage()
	if u.Calls != 2 || u.Total() == 0 {
		t.Fatalf("usage = %+v", u)
	}
	s.ResetUsage()
	if s.TotalUsage().Calls != 0 {
		t.Fatal("reset failed")
	}
}

func TestValueLineEscaping(t *testing.T) {
	for _, v := range []string{" leading", "trailing ", "with\nnewline", `back\slash`} {
		if got := decodeValueLine(encodeValueLine(v)); got != v {
			t.Errorf("round trip %q -> %q", v, got)
		}
	}
}
