package llm

import (
	"catdb/internal/obs"
)

// Observed wraps a client with metrics middleware: every Complete call
// records call counts, prompt/completion tokens, latency, and errors into
// reg, labeled by model name. The wrapper is transparent — completions,
// usage accounting, and determinism of the underlying client are
// unchanged, so traced and untraced runs produce identical pipelines.
// A nil registry (or client) returns the client unwrapped, and wrapping
// an already-observed client with the same registry is a no-op.
func Observed(c Client, reg *obs.Registry) Client {
	if reg == nil || c == nil {
		return c
	}
	if oc, ok := c.(*observedClient); ok && oc.reg == reg {
		return c
	}
	return &observedClient{inner: c, reg: reg}
}

type observedClient struct {
	inner Client
	reg   *obs.Registry
}

func (o *observedClient) Name() string         { return o.inner.Name() }
func (o *observedClient) MaxPromptTokens() int { return o.inner.MaxPromptTokens() }
func (o *observedClient) TotalUsage() Usage    { return o.inner.TotalUsage() }
func (o *observedClient) ResetUsage()          { o.inner.ResetUsage() }

func (o *observedClient) Complete(prompt string) (Response, error) {
	start := obs.Now()
	resp, err := o.inner.Complete(prompt)
	model := o.inner.Name()
	o.reg.Histogram("catdb_llm_call_seconds", obs.DefBuckets, "model", model).Observe(obs.Since(start).Seconds())
	o.reg.Counter("catdb_llm_calls_total", "model", model).Inc()
	if err != nil {
		o.reg.Counter("catdb_llm_errors_total", "model", model).Inc()
		return resp, err
	}
	o.reg.Counter("catdb_llm_tokens_total", "model", model, "dir", "prompt").Add(int64(resp.Usage.PromptTokens))
	o.reg.Counter("catdb_llm_tokens_total", "model", model, "dir", "completion").Add(int64(resp.Usage.CompletionTokens))
	return resp, nil
}
