package llm

// Personality calibrates a simulated model's behaviour to the paper's
// observations: overall hallucination rate, the distribution of error
// types among errors (Table 2), the chance that one error-correction
// round actually fixes the problem (§4.2 reports SE fixed in ~1 iteration
// and RE within ~4), and stylistic choices for generated pipelines.
type Personality struct {
	Name            string
	MaxPromptTokens int

	// ErrProb is the probability that a freshly generated pipeline carries
	// at least one injected fault.
	ErrProb float64
	// Error-type mixture among faults (sums to 1): knowledge-base
	// (environment/package), syntax, runtime/semantic — Table 2 shape.
	KBShare, SEShare, REShare float64
	// FixProb is the per-attempt probability that an error-correction
	// prompt removes the fault (lower without relevant metadata).
	FixProb float64
	// FixProbNoMeta applies when the error prompt carries no schema.
	FixProbNoMeta float64

	// Pipeline style.
	ForestTrees int     // preferred ensemble size
	GBMRounds   int     // preferred boosting rounds
	Diligence   float64 // probability of defensive steps without explicit rules
}

// Personalities of the three models used in the paper's experiments. The
// error mixtures follow Table 2 (Llama: 2.5/2.9/94.6; Gemini:
// 21.2/2.1/76.7); GPT-4o logs were not tabulated so it gets an
// interpolated profile with the lowest overall error rate.
var personalities = map[string]Personality{
	"gpt-4o": {
		Name: "gpt-4o", MaxPromptTokens: 16000,
		ErrProb: 0.22, KBShare: 0.08, SEShare: 0.03, REShare: 0.89,
		FixProb: 0.85, FixProbNoMeta: 0.45,
		ForestTrees: 80, GBMRounds: 80, Diligence: 0.8,
	},
	"gemini-1.5-pro": {
		Name: "gemini-1.5-pro", MaxPromptTokens: 24000,
		ErrProb: 0.28, KBShare: 0.212, SEShare: 0.021, REShare: 0.767,
		FixProb: 0.8, FixProbNoMeta: 0.4,
		ForestTrees: 40, GBMRounds: 60, Diligence: 0.7,
	},
	"llama3.1-70b": {
		Name: "llama3.1-70b", MaxPromptTokens: 8000,
		ErrProb: 0.42, KBShare: 0.025, SEShare: 0.029, REShare: 0.946,
		FixProb: 0.55, FixProbNoMeta: 0.3,
		ForestTrees: 40, GBMRounds: 40, Diligence: 0.5,
	},
}

// ModelNames lists the supported simulated models in the paper's order.
func ModelNames() []string { return []string{"gpt-4o", "gemini-1.5-pro", "llama3.1-70b"} }

// PersonalityFor returns the calibration for a model name.
func PersonalityFor(name string) (Personality, bool) {
	p, ok := personalities[name]
	return p, ok
}
