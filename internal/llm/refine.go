package llm

import (
	"sort"
	"strings"
)

// This file defines the catalog-refinement request/response wire formats
// of §3.2 — the prompts CatDB sends to the LLM to deduplicate categorical
// values and to infer feature types from a column name plus ~10 samples —
// and the simulated model's handlers for them.

// BuildDedupRequest renders the refine-categorical request for a column's
// distinct values. For columns with many distinct items the caller submits
// several batches (the paper's batch-wise robustness strategy).
func BuildDedupRequest(column string, values []string) string {
	var b strings.Builder
	b.WriteString("# CatDB catalog-refinement prompt\n")
	b.WriteString("TASK: refine-categorical\n")
	b.WriteString("COLUMN: " + column + "\n")
	b.WriteString("VALUES:\n")
	for _, v := range values {
		b.WriteString(encodeValueLine(v) + "\n")
	}
	b.WriteString("END\n")
	return b.String()
}

// ParseDedupResponse decodes the raw→canonical mapping from a
// refine-categorical completion.
func ParseDedupResponse(text string) map[string]string {
	out := map[string]string{}
	inMap := false
	for _, line := range strings.Split(text, "\n") {
		switch strings.TrimSpace(line) {
		case "MAP":
			inMap = true
			continue
		case "END":
			inMap = false
			continue
		}
		if !inMap {
			continue
		}
		i := strings.Index(line, " => ")
		if i < 0 {
			continue
		}
		raw := decodeValueLine(line[:i])
		canon := decodeValueLine(line[i+4:])
		if raw != "" {
			out[raw] = canon
		}
	}
	return out
}

// handleDedup groups the submitted values by normal form and maps each raw
// spelling to the group's canonical representative — the simulated
// equivalent of the LLM recognizing semantically-equivalent spellings.
func (s *Sim) handleDedup(req string) string {
	values := parseValueList(req)
	groups := map[string][]string{}
	var order []string
	for _, v := range values {
		nf := canonicalForm(v)
		if _, ok := groups[nf]; !ok {
			order = append(order, nf)
		}
		groups[nf] = append(groups[nf], v)
	}
	var b strings.Builder
	b.WriteString("MAP\n")
	sort.Strings(order)
	for _, nf := range order {
		raws := groups[nf]
		sort.Strings(raws)
		for _, raw := range raws {
			b.WriteString(encodeValueLine(raw) + " => " + encodeValueLine(nf) + "\n")
		}
	}
	b.WriteString("END\n")
	return b.String()
}

// canonicalForm is the simulated LLM's notion of the cleaned spelling of a
// categorical value: trimmed, lower-cased, separator-unified.
func canonicalForm(s string) string {
	s = strings.TrimSpace(strings.ToLower(s))
	s = strings.ReplaceAll(s, "-", "_")
	for strings.Contains(s, "  ") {
		s = strings.ReplaceAll(s, "  ", " ")
	}
	return s
}

// BuildTypeRequest renders the infer-feature-type request from a column
// name and value samples.
func BuildTypeRequest(column string, samples []string) string {
	var b strings.Builder
	b.WriteString("# CatDB catalog-refinement prompt\n")
	b.WriteString("TASK: infer-feature-type\n")
	b.WriteString("COLUMN: " + column + "\n")
	b.WriteString("SAMPLES:\n")
	for _, v := range samples {
		b.WriteString(encodeValueLine(v) + "\n")
	}
	b.WriteString("END\n")
	return b.String()
}

// ParseTypeResponse extracts the inferred feature type name.
func ParseTypeResponse(text string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "TYPE: ") {
			return strings.TrimSpace(strings.TrimPrefix(line, "TYPE: "))
		}
	}
	return ""
}

// handleTypeInference classifies a column from its samples: list columns
// have comma-separated items, composite columns mix a numeric and an
// alphabetic token, sentences are multi-word free text, everything else is
// categorical.
func (s *Sim) handleTypeInference(req string) string {
	samples := parseValueList(req)
	if len(samples) == 0 {
		return "TYPE: categorical\n"
	}
	nComma, nComposite, nMultiWord := 0, 0, 0
	for _, v := range samples {
		if strings.Contains(v, ",") {
			nComma++
			continue
		}
		toks := strings.Fields(v)
		if len(toks) == 2 && (isDigits(toks[0]) != isDigits(toks[1])) {
			nComposite++
			continue
		}
		if len(toks) >= 2 {
			nMultiWord++
		}
	}
	n := len(samples)
	switch {
	case nComma*2 > n:
		return "TYPE: list\n"
	case nComposite*2 > n:
		return "TYPE: composite\n"
	case nMultiWord*2 > n:
		return "TYPE: sentence\n"
	default:
		return "TYPE: categorical\n"
	}
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// parseValueList extracts the VALUES:/SAMPLES: block of a refinement
// request.
func parseValueList(req string) []string {
	var out []string
	in := false
	for _, line := range strings.Split(req, "\n") {
		t := strings.TrimSpace(line)
		if t == "VALUES:" || t == "SAMPLES:" {
			in = true
			continue
		}
		if t == "END" {
			break
		}
		if in && line != "" {
			out = append(out, decodeValueLine(line))
		}
	}
	return out
}

// encodeValueLine escapes newlines so one value occupies exactly one line
// (values with leading/trailing spaces survive round-tripping).
func encodeValueLine(v string) string {
	v = strings.ReplaceAll(v, "\\", "\\\\")
	v = strings.ReplaceAll(v, "\n", "\\n")
	return "|" + v
}

func decodeValueLine(l string) string {
	l = strings.TrimPrefix(l, "|")
	l = strings.ReplaceAll(l, "\\n", "\n")
	return strings.ReplaceAll(l, "\\\\", "\\")
}
