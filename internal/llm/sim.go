package llm

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"catdb/internal/profile"
	"catdb/internal/prompt"
)

// Sim is the deterministic simulated LLM. It understands three request
// families: pipeline-generation prompts (the <TASK>/<SCHEMA>/<RULES> wire
// format of internal/prompt), error-correction prompts (<CODE>/<ERROR>),
// and catalog-refinement requests (see refine.go).
type Sim struct {
	usageTracker
	p     Personality
	seed  int64
	mu    sync.Mutex
	calls int64
	// Temperature widens stylistic variation; the paper runs temperature 0
	// and still observes run-to-run variation, which the per-call RNG
	// stream reproduces.
	Temperature float64
}

// New returns a simulated client for one of the supported model names.
func New(model string, seed int64) (*Sim, error) {
	p, ok := PersonalityFor(model)
	if !ok {
		return nil, &ErrUnknownModel{Name: model}
	}
	return &Sim{p: p, seed: seed}, nil
}

// Name returns the model name.
func (s *Sim) Name() string { return s.p.Name }

// MaxPromptTokens returns the model's context budget.
func (s *Sim) MaxPromptTokens() int { return s.p.MaxPromptTokens }

// Personality exposes the calibration (for tests and reporting).
func (s *Sim) Personality() Personality { return s.p }

func (s *Sim) nextRNG() *rand.Rand {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	return rand.New(rand.NewSource(s.seed*1000003 + s.calls))
}

// Complete dispatches one prompt to the appropriate handler and accounts
// token usage.
func (s *Sim) Complete(text string) (Response, error) {
	rng := s.nextRNG()
	var out string
	switch {
	case strings.Contains(text, "TASK: refine-categorical"):
		out = s.handleDedup(text)
	case strings.Contains(text, "TASK: infer-feature-type"):
		out = s.handleTypeInference(text)
	default:
		parsed := prompt.ParsePrompt(text)
		if parsed.HasError {
			out = s.handleErrorFix(parsed, rng)
		} else {
			out = s.generatePipeline(parsed, rng)
		}
	}
	u := Usage{PromptTokens: prompt.CountTokens(text), CompletionTokens: prompt.CountTokens(out), Calls: 1}
	s.record(u)
	return Response{Text: out, Usage: u}, nil
}

// generatePipeline emits PipeScript from a parsed prompt. With rules it
// follows them faithfully (CatDB's dataset-specific instructions); without
// rules it improvises from whatever metadata is present, with
// personality-dependent diligence — the metadata-only baseline of Fig. 1.
func (s *Sim) generatePipeline(p prompt.Parsed, rng *rand.Rand) string {
	var lines []string
	name := p.Dataset
	if name == "" {
		name = "generated"
	}
	isChainStep := p.Kind == prompt.KindPreprocessing || p.Kind == prompt.KindFeatureEng
	if p.PrevCode != "" {
		lines = strings.Split(strings.TrimRight(p.PrevCode, "\n"), "\n")
	} else {
		lines = []string{fmt.Sprintf("pipeline %q", name)}
	}

	if len(p.Rules) > 0 {
		lines = append(lines, s.followRules(p, rng)...)
	} else if !isChainStep || p.Kind == prompt.KindPreprocessing {
		lines = append(lines, s.improvise(p, rng)...)
	}

	// Single-prompt and model-selection prompts must train a model; chain
	// pre/fe steps must not.
	if !isChainStep && !hasTrain(lines) {
		lines = append(lines, s.trainLine("tree_ensemble", p, rng))
	}
	if !isChainStep {
		lines = append(lines, "evaluate metric=auto")
	}

	src := strings.Join(lines, "\n") + "\n"
	return s.injectFault(src, p, rng)
}

// followRules translates rule directives into statements, preserving the
// preprocessing → feature-engineering → model order.
func (s *Sim) followRules(p prompt.Parsed, rng *rand.Rand) []string {
	var pre, fe, model []string
	for _, r := range p.Rules {
		switch r.Stage {
		case "preprocessing":
			pre = append(pre, r.Directive)
		case "fe":
			fe = append(fe, r.Directive)
		case "model":
			if strings.HasPrefix(r.Directive, "train family=") {
				model = append(model, s.trainLine(strings.TrimPrefix(r.Directive, "train family="), p, rng))
			} else {
				model = append(model, r.Directive)
			}
		}
	}
	// Keep scale before train.
	var scales, trains []string
	for _, m := range model {
		if strings.HasPrefix(m, "train ") {
			trains = append(trains, m)
		} else {
			scales = append(scales, m)
		}
	}
	out := append(pre, fe...)
	out = append(out, scales...)
	return append(out, trains...)
}

// improvise builds a pipeline from metadata alone. Quality depends on
// which profiling items the prompt carried (Table 1's combinations) and on
// the model's diligence: no dedup of dirty categories, no sentence
// extraction, no k-hot lists — exactly the gaps the paper's Figure 1
// metadata-only baseline shows.
func (s *Sim) improvise(p prompt.Parsed, rng *rand.Rand) []string {
	var out []string
	diligent := rng.Float64() < s.p.Diligence
	sawMissing := false
	for _, c := range p.Cols {
		if c.IsTarget {
			continue
		}
		if c.MissingPct > 0 {
			sawMissing = true
			strategy := "most_frequent"
			if c.Feature == profile.FeatureNumerical.String() {
				strategy = "median"
			}
			out = append(out, fmt.Sprintf("impute %q strategy=%s", c.Name, strategy))
		}
	}
	if !sawMissing && diligent {
		out = append(out, "impute_all strategy=auto")
	}
	for _, c := range p.Cols {
		if c.IsTarget {
			continue
		}
		switch c.Feature {
		case "categorical", "boolean":
			if c.Type != "string" {
				continue
			}
			switch {
			case c.Distinct > 0 && c.Distinct > 64:
				out = append(out, fmt.Sprintf("hash_encode %q buckets=64", c.Name))
			default:
				out = append(out, fmt.Sprintf("onehot %q", c.Name))
			}
		case "sentence", "list", "id", "unknown":
			if c.Type != "string" && c.Feature != "id" {
				continue
			}
			// Without refinement rules the model either drops the messy
			// column (losing signal) or hash-encodes its raw values
			// (keeping noise); both are worse than CatDB's treatment.
			if diligent {
				out = append(out, fmt.Sprintf("drop %q", c.Name))
			} else {
				out = append(out, fmt.Sprintf("hash_encode %q buckets=64", c.Name))
			}
		case "constant":
			out = append(out, fmt.Sprintf("drop %q", c.Name))
		}
	}
	return out
}

// trainLine renders the train statement for a model family, with the
// personality's preferred hyper-parameters.
func (s *Sim) trainLine(family string, p prompt.Parsed, rng *rand.Rand) string {
	target := p.Target
	trees := s.p.ForestTrees
	rounds := s.p.GBMRounds
	if s.Temperature > 0 && rng.Float64() < s.Temperature {
		trees += rng.Intn(40)
	}
	switch family {
	case "boosting":
		return fmt.Sprintf("train model=gbm target=%q rounds=%d", target, rounds)
	case "boosting_or_linear":
		if rng.Float64() < 0.5 {
			return fmt.Sprintf("train model=gbm target=%q rounds=%d", target, rounds)
		}
		return fmt.Sprintf("train model=random_forest target=%q trees=%d", target, trees)
	case "tree_ensemble_shallow":
		return fmt.Sprintf("train model=random_forest target=%q trees=%d depth=8", target, trees)
	default:
		return fmt.Sprintf("train model=random_forest target=%q trees=%d", target, trees)
	}
}

func hasTrain(lines []string) bool {
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "train ") {
			return true
		}
	}
	return false
}

// injectFault plants at most one hallucination per completion, drawn from
// the personality's calibrated error mixture.
func (s *Sim) injectFault(src string, p prompt.Parsed, rng *rand.Rand) string {
	if rng.Float64() >= s.p.ErrProb {
		return src
	}
	r := rng.Float64()
	switch {
	case r < s.p.KBShare:
		return s.injectKB(src, rng)
	case r < s.p.KBShare+s.p.SEShare:
		return s.injectSE(src, rng)
	default:
		return s.injectRE(src, p, rng)
	}
}

var phantomPackages = []string{"xgboost", "lightgbm", "imblearn", "category_encoders", "autofeat", "featuretools"}

func (s *Sim) injectKB(src string, rng *rand.Rand) string {
	pkg := phantomPackages[rng.Intn(len(phantomPackages))]
	lines := strings.SplitAfter(src, "\n")
	if len(lines) < 2 {
		return src
	}
	return lines[0] + "require " + pkg + "\n" + strings.Join(lines[1:], "")
}

var proseLines = []string{
	"Here is the generated pipeline:",
	"Sure! The following PipeScript implements the requested steps.",
	"```pipescript",
}

func (s *Sim) injectSE(src string, rng *rand.Rand) string {
	lines := strings.Split(strings.TrimRight(src, "\n"), "\n")
	switch rng.Intn(3) {
	case 0: // uncommented prose in the output
		pos := 1 + rng.Intn(len(lines))
		lines = append(lines[:pos], append([]string{proseLines[rng.Intn(len(proseLines))]}, lines[pos:]...)...)
	case 1: // unterminated string literal
		for attempts := 0; attempts < 10; attempts++ {
			i := rng.Intn(len(lines))
			if strings.Count(lines[i], `"`) >= 2 {
				j := strings.LastIndex(lines[i], `"`)
				lines[i] = lines[i][:j] + lines[i][j+1:]
				break
			}
		}
	default: // misspelled keyword
		for i, l := range lines {
			if strings.HasPrefix(l, "train ") {
				lines[i] = "trian " + strings.TrimPrefix(l, "train ")
				break
			}
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

func (s *Sim) injectRE(src string, p prompt.Parsed, rng *rand.Rand) string {
	lines := strings.Split(strings.TrimRight(src, "\n"), "\n")
	switch rng.Intn(4) {
	case 0: // misspell a referenced column
		for attempts := 0; attempts < 10; attempts++ {
			i := rng.Intn(len(lines))
			col := firstQuoted(lines[i])
			if col != "" && len(col) > 2 && !strings.HasPrefix(lines[i], "pipeline") && !strings.HasPrefix(lines[i], "train") {
				bad := col[:len(col)-1]
				lines[i] = strings.Replace(lines[i], `"`+col+`"`, `"`+bad+`"`, 1)
				break
			}
		}
	case 1: // forget an imputation step
		for i, l := range lines {
			if strings.HasPrefix(l, "impute") {
				lines = append(lines[:i], lines[i+1:]...)
				break
			}
		}
	case 2: // forget an encoding step
		for i, l := range lines {
			if strings.HasPrefix(l, "onehot") || strings.HasPrefix(l, "khot") {
				lines = append(lines[:i], lines[i+1:]...)
				break
			}
		}
	default: // hallucinated model name
		for i, l := range lines {
			if strings.HasPrefix(l, "train ") {
				lines[i] = strings.Replace(l, "model=random_forest", "model=xgb_classifier", 1)
				lines[i] = strings.Replace(lines[i], "model=gbm", "model=xgb_classifier", 1)
				break
			}
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

// handleErrorFix repairs the pipeline in an error-correction prompt. The
// repair succeeds with the personality's fix probability — higher when the
// prompt carries relevant metadata (the paper's observation that RE fixes
// need catalog details).
func (s *Sim) handleErrorFix(p prompt.Parsed, rng *rand.Rand) string {
	src := p.PrevCode
	fixProb := s.p.FixProb
	if len(p.Cols) == 0 && strings.HasPrefix(p.ErrorCode, "E_") && isRuntimeCode(p.ErrorCode) {
		fixProb = s.p.FixProbNoMeta
	}
	if rng.Float64() >= fixProb {
		return src + "\n" // unhelpful resubmission; caller will retry
	}
	lines := strings.Split(strings.TrimRight(src, "\n"), "\n")
	errIdx := p.ErrorLine - 1
	switch p.ErrorCode {
	case "E_SYNTAX":
		if errIdx >= 0 && errIdx < len(lines) {
			l := lines[errIdx]
			if strings.Count(l, `"`)%2 == 1 {
				lines[errIdx] = l + `"`
			} else {
				lines = append(lines[:errIdx], lines[errIdx+1:]...)
			}
		}
	case "E_PKG_MISSING":
		var kept []string
		for _, l := range lines {
			if !strings.HasPrefix(strings.TrimSpace(l), "require ") || isAvailable(l) {
				kept = append(kept, l)
			}
		}
		lines = kept
	case "E_UNKNOWN_COLUMN":
		bad := firstQuoted(p.ErrorMsg)
		best := closestColumn(bad, p.Cols)
		switch {
		case best != "" && best != bad && errIdx >= 0 && errIdx < len(lines):
			lines[errIdx] = strings.Replace(lines[errIdx], `"`+bad+`"`, `"`+best+`"`, 1)
		case errIdx >= 0 && errIdx < len(lines):
			// The name matches the schema exactly, so the column was
			// consumed by an earlier transform (e.g. already one-hot
			// encoded): the redundant statement is removed.
			lines = append(lines[:errIdx], lines[errIdx+1:]...)
		}
	case "E_NAN_IN_MATRIX":
		lines = insertBeforeTrain(lines, "impute_all strategy=auto")
	case "E_STRING_IN_MATRIX":
		col := firstQuoted(p.ErrorMsg)
		if col == "" {
			lines = insertBeforeTrain(lines, "drop_constant")
		} else if colDistinct(col, p.Cols) > 64 {
			lines = insertBeforeTrain(lines, fmt.Sprintf("hash_encode %q buckets=64", col))
		} else {
			lines = insertBeforeTrain(lines, fmt.Sprintf("onehot %q", col))
		}
	case "E_TOO_MANY_FEATURES":
		if errIdx >= 0 && errIdx < len(lines) {
			col := firstQuoted(lines[errIdx])
			if col != "" {
				lines[errIdx] = fmt.Sprintf("hash_encode %q buckets=64", col)
			} else {
				lines = append(lines[:errIdx], lines[errIdx+1:]...)
			}
		}
	case "E_MODEL_OOM", "E_UNKNOWN_MODEL":
		for i, l := range lines {
			if strings.HasPrefix(l, "train ") {
				st := parseTrainTarget(l)
				lines[i] = fmt.Sprintf("train model=random_forest target=%q trees=%d", st, s.p.ForestTrees)
			}
		}
	case "E_POLICY":
		// Compliance fix: switch to the first allowed alternative listed
		// in the error message (or drop the offending require).
		alt := "random_forest"
		if i := strings.Index(p.ErrorMsg, "alternatives: "); i >= 0 {
			rest := strings.TrimSpace(p.ErrorMsg[i+len("alternatives: "):])
			if j := strings.IndexAny(rest, ", "); j > 0 {
				alt = rest[:j]
			} else if rest != "" {
				alt = rest
			}
		}
		if strings.Contains(p.ErrorMsg, "package") {
			var kept []string
			for _, l := range lines {
				if !strings.HasPrefix(strings.TrimSpace(l), "require ") {
					kept = append(kept, l)
				}
			}
			lines = kept
		} else {
			for i, l := range lines {
				if strings.HasPrefix(l, "train ") {
					st := parseTrainTarget(l)
					lines[i] = fmt.Sprintf("train model=%s target=%q", alt, st)
				}
			}
		}
	case "E_NO_TRAIN":
		lines = append(lines, fmt.Sprintf("train model=random_forest target=%q trees=%d", p.Target, s.p.ForestTrees))
	default:
		// Type/task/option mismatches: drop the offending statement.
		if errIdx >= 0 && errIdx < len(lines) && !strings.HasPrefix(lines[errIdx], "pipeline") {
			lines = append(lines[:errIdx], lines[errIdx+1:]...)
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

func isRuntimeCode(code string) bool {
	switch code {
	case "E_SYNTAX", "E_PKG_MISSING":
		return false
	}
	return true
}

func isAvailable(requireLine string) bool {
	pkg := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(requireLine), "require "))
	switch pkg {
	case "tabular", "mlcore", "preprocess", "metrics":
		return true
	}
	return false
}

func insertBeforeTrain(lines []string, stmt string) []string {
	for i, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "train ") {
			out := append([]string{}, lines[:i]...)
			out = append(out, stmt)
			return append(out, lines[i:]...)
		}
	}
	return append(lines, stmt)
}

func parseTrainTarget(line string) string {
	i := strings.Index(line, `target="`)
	if i < 0 {
		return "target"
	}
	rest := line[i+len(`target="`):]
	j := strings.Index(rest, `"`)
	if j < 0 {
		return "target"
	}
	return rest[:j]
}

func firstQuoted(s string) string {
	i := strings.Index(s, `"`)
	if i < 0 {
		return ""
	}
	j := strings.Index(s[i+1:], `"`)
	if j < 0 {
		return ""
	}
	return s[i+1 : i+1+j]
}

func colDistinct(name string, cols []prompt.ParsedCol) int {
	for _, c := range cols {
		if c.Name == name {
			return c.Distinct
		}
	}
	return 0
}

// closestColumn finds the schema column with the smallest edit distance to
// the (misspelled) name; "" when nothing is close enough.
func closestColumn(bad string, cols []prompt.ParsedCol) string {
	best, bestD := "", 1<<30
	for _, c := range cols {
		d := editDistance(bad, c.Name)
		if d < bestD {
			best, bestD = c.Name, d
		}
	}
	if bestD > 1+len(bad)/3 {
		return ""
	}
	return best
}

func editDistance(a, b string) int {
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
