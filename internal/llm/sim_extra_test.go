package llm

import (
	"strings"
	"testing"

	"catdb/internal/data"
	"catdb/internal/pipescript"
	"catdb/internal/profile"
	"catdb/internal/prompt"
)

func TestErrorFixPolicyModel(t *testing.T) {
	in := samplePromptInput()
	src := "pipeline \"demo\"\nonehot \"cat\"\nimpute_all\ntrain model=random_forest target=\"y\"\n"
	ep := prompt.FormatErrorPrompt(in, src, 4, "E_POLICY",
		`model "random_forest" is disallowed by organizational policy; allowed alternatives: gbm, knn`,
		in.Cols, prompt.DefaultConfig())
	s := newSim(t, "gpt-4o", 3)
	s.p.FixProb = 1
	resp, _ := s.Complete(ep.Text)
	if !strings.Contains(resp.Text, "model=gbm") {
		t.Fatalf("policy fix should pick the first allowed alternative:\n%s", resp.Text)
	}
}

func TestErrorFixPolicyPackage(t *testing.T) {
	in := samplePromptInput()
	src := "pipeline \"demo\"\nrequire tabular\ntrain model=gbm target=\"y\"\n"
	ep := prompt.FormatErrorPrompt(in, src, 2, "E_POLICY",
		`package "tabular" is disallowed by organizational policy`, nil, prompt.DefaultConfig())
	s := newSim(t, "gpt-4o", 3)
	s.p.FixProb = 1
	s.p.FixProbNoMeta = 1
	resp, _ := s.Complete(ep.Text)
	if strings.Contains(resp.Text, "require") {
		t.Fatalf("policy fix should drop the require:\n%s", resp.Text)
	}
}

func TestErrorFixTooManyFeatures(t *testing.T) {
	in := samplePromptInput()
	src := "pipeline \"demo\"\nonehot \"cat\"\nimpute_all\ntrain model=gbm target=\"y\"\n"
	ep := prompt.FormatErrorPrompt(in, src, 2, "E_TOO_MANY_FEATURES",
		`one-hot of "cat" would exceed 4096 features`, in.Cols, prompt.DefaultConfig())
	s := newSim(t, "gpt-4o", 3)
	s.p.FixProb = 1
	resp, _ := s.Complete(ep.Text)
	if !strings.Contains(resp.Text, `hash_encode "cat"`) {
		t.Fatalf("explosion fix should switch to hashing:\n%s", resp.Text)
	}
}

func TestErrorFixDefaultDeletesLine(t *testing.T) {
	in := samplePromptInput()
	src := "pipeline \"demo\"\nrebalance method=adasyn\ntrain model=gbm target=\"y\"\n"
	ep := prompt.FormatErrorPrompt(in, src, 2, "E_TASK_MISMATCH",
		"rebalance is only valid for classification tasks", nil, prompt.DefaultConfig())
	s := newSim(t, "gpt-4o", 3)
	s.p.FixProb = 1
	s.p.FixProbNoMeta = 1
	resp, _ := s.Complete(ep.Text)
	if strings.Contains(resp.Text, "rebalance") {
		t.Fatalf("mismatch fix should delete the line:\n%s", resp.Text)
	}
}

func TestInjectFaultKinds(t *testing.T) {
	// Drive each injector directly for coverage and parse-behaviour.
	s := newSim(t, "llama3.1-70b", 9)
	in := samplePromptInput()
	ps := prompt.Build(in, prompt.ModelSpec{MaxPromptTokens: 8000}, prompt.DefaultConfig())
	parsed := prompt.ParsePrompt(ps[0].Text)
	src := "pipeline \"demo\"\nimpute \"num\" strategy=median\nonehot \"cat\"\ntrain model=random_forest target=\"y\" trees=10\nevaluate metric=auto\n"
	rng := s.nextRNG()
	kb := s.injectKB(src, rng)
	if !strings.Contains(kb, "require ") {
		t.Fatalf("KB injection missing:\n%s", kb)
	}
	seenBroken := false
	for i := 0; i < 10; i++ {
		se := s.injectSE(src, s.nextRNG())
		if _, err := pipescript.Parse(se); err != nil {
			seenBroken = true
		}
	}
	if !seenBroken {
		t.Fatal("SE injection never broke the syntax in 10 tries")
	}
	re := s.injectRE(src, parsed, s.nextRNG())
	if re == src {
		t.Log("RE injection happened to be a no-op for this draw (acceptable)")
	}
}

func TestImproviseBranches(t *testing.T) {
	// Exercise sentence/list/constant/id handling without rules.
	in := prompt.Input{
		Dataset: "b", Task: data.Multiclass, Target: "y", Rows: 100,
		Cols: []prompt.ColumnMeta{
			{Name: "s", DataType: data.KindString, FeatureType: profile.FeatureSentence, DistinctCount: 90},
			{Name: "l", DataType: data.KindString, FeatureType: profile.FeatureList, DistinctCount: 80},
			{Name: "k", DataType: data.KindString, FeatureType: profile.FeatureConstant, DistinctCount: 1},
			{Name: "big", DataType: data.KindString, FeatureType: profile.FeatureCategorical, DistinctCount: 200,
				DistinctValues: nil},
			{Name: "y", DataType: data.KindString, FeatureType: profile.FeatureCategorical, IsTarget: true,
				DistinctValues: []string{"a", "b"}},
		},
	}
	cfg := prompt.Config{Combo: prompt.Combo2, Chains: 1, IncludeRules: false}
	ps := prompt.Build(in, prompt.ModelSpec{MaxPromptTokens: 100000}, cfg)
	s := newSim(t, "gpt-4o", 4)
	s.p.ErrProb = 0
	resp, _ := s.Complete(ps[0].Text)
	prog, err := pipescript.Parse(resp.Text)
	if err != nil {
		t.Fatalf("improvised program must parse: %v\n%s", err, resp.Text)
	}
	if !prog.HasStmt("hash_encode") && !prog.HasStmt("drop") {
		t.Fatalf("messy columns unhandled:\n%s", resp.Text)
	}
	if !prog.HasStmt("train") {
		t.Fatal("no train")
	}
}

func TestTemperatureVariesHyperparams(t *testing.T) {
	in := samplePromptInput()
	ps := prompt.Build(in, prompt.ModelSpec{MaxPromptTokens: 16000}, prompt.DefaultConfig())
	a := newSim(t, "gpt-4o", 5)
	a.p.ErrProb = 0
	a.Temperature = 1.0
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		resp, _ := a.Complete(ps[0].Text)
		prog, err := pipescript.Parse(resp.Text)
		if err != nil {
			continue
		}
		if tr := prog.TrainStmt(); tr != nil {
			seen[tr.Opt("trees", "")] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("temperature should vary hyper-parameters, saw %v", seen)
	}
}

func TestClosestColumnThreshold(t *testing.T) {
	cols := []prompt.ParsedCol{{Name: "revenue"}, {Name: "cost"}}
	if got := closestColumn("revenu", cols); got != "revenue" {
		t.Fatalf("close match = %q", got)
	}
	if got := closestColumn("zzzzzz", cols); got != "" {
		t.Fatalf("far match should be empty, got %q", got)
	}
}
