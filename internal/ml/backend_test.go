package ml

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// gridData builds a dataset whose features have few distinct values, so
// histogram binning is lossless (one bin per value, midpoint edges) and
// the histogram sweep proposes exactly the exact sweep's candidates.
func gridData(n int, seed int64) ([][]float64, []int, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	yc := make([]int, n)
	yr := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{
			float64(i % 13),
			float64((i * 7) % 11),
			float64(rng.Intn(6)),
		}
		c := 0
		if X[i][0] > 6 {
			c = 1
		}
		if X[i][1] > 7 && X[i][2] < 3 {
			c = 2
		}
		if rng.Float64() < 0.05 {
			c = rng.Intn(3)
		}
		yc[i] = c
		yr[i] = 2*X[i][0] - X[i][1] + X[i][2]*X[i][2] + 0.1*rng.NormFloat64()
	}
	return X, yc, yr
}

// TestHistMatchesExactClassification pins the two backends against each
// other: on losslessly-binnable data with all candidate thresholds
// enabled, histogram split finding must reproduce the exact tree's
// training-set behaviour bit for bit (same candidates, same integer
// count arithmetic, same tie order).
func TestHistMatchesExactClassification(t *testing.T) {
	X, yc, _ := gridData(240, 3)
	mk := func(backend Backend) *Tree {
		return NewTree(TreeConfig{
			MaxDepth: 6, MinLeaf: 2, MaxThresholds: 10000,
			Seed: 11, Backend: backend, ExactNodeSize: 2,
		})
	}
	exact, hist := mk(BackendExact), mk(BackendHist)
	if err := exact.FitClass(X, yc, 3); err != nil {
		t.Fatal(err)
	}
	if err := hist.FitClass(X, yc, 3); err != nil {
		t.Fatal(err)
	}
	pe, ph := exact.Proba(X), hist.Proba(X)
	for i := range pe {
		for j := range pe[i] {
			if pe[i][j] != ph[i][j] {
				t.Fatalf("row %d class %d: exact %v hist %v", i, j, pe[i], ph[i])
			}
		}
	}
}

// TestHistMatchesExactRegression allows float-summation drift between
// the two sweeps but requires the same training rows to land in leaves
// with near-identical values.
func TestHistMatchesExactRegression(t *testing.T) {
	X, _, yr := gridData(240, 4)
	mk := func(backend Backend) *Tree {
		return NewTree(TreeConfig{
			MaxDepth: 6, MinLeaf: 2, MaxThresholds: 10000,
			Seed: 11, Backend: backend, ExactNodeSize: 2,
		})
	}
	exact, hist := mk(BackendExact), mk(BackendHist)
	if err := exact.Fit(X, yr); err != nil {
		t.Fatal(err)
	}
	if err := hist.Fit(X, yr); err != nil {
		t.Fatal(err)
	}
	pe, ph := exact.Predict(X), hist.Predict(X)
	var se, sh float64
	for i := range pe {
		se += (pe[i] - yr[i]) * (pe[i] - yr[i])
		sh += (ph[i] - yr[i]) * (ph[i] - yr[i])
	}
	// Both backends must fit the training set essentially equally well.
	if math.Abs(se-sh) > 0.01*(1+se) {
		t.Fatalf("train SSE diverged: exact %g hist %g", se, sh)
	}
}

// TestHistCloseToExactSynthetic checks quality parity on continuous data
// where 256-bin quantization is lossy: held-out AUC / R² must stay
// within tolerance of the sort-based baseline.
func TestHistCloseToExactSynthetic(t *testing.T) {
	X, y := synthClass(2000, 3, 0.8, 31)
	Xte, yte := synthClass(600, 3, 0.8, 131)
	var auc [2]float64
	for i, backend := range []Backend{BackendExact, BackendHist} {
		f := NewForest(ForestConfig{Trees: 15, Seed: 5, Backend: backend})
		if err := f.FitClass(X, y, 3); err != nil {
			t.Fatal(err)
		}
		auc[i] = MacroAUC(f.Proba(Xte), yte, 3)
	}
	if math.Abs(auc[0]-auc[1]) > 0.03 {
		t.Fatalf("forest AUC diverged: exact %g hist %g", auc[0], auc[1])
	}
	Xr, yr := synthReg(2000, 0.3, 32)
	Xrte, yrte := synthReg(600, 0.3, 132)
	var r2 [2]float64
	for i, backend := range []Backend{BackendExact, BackendHist} {
		g := NewGBM(GBMConfig{Rounds: 30, Seed: 5, Backend: backend})
		if err := g.Fit(Xr, yr); err != nil {
			t.Fatal(err)
		}
		r2[i] = R2(g.Predict(Xrte), yrte)
	}
	if math.Abs(r2[0]-r2[1]) > 0.05 {
		t.Fatalf("gbm R2 diverged: exact %g hist %g", r2[0], r2[1])
	}
}

// workerCounts returns the pinned worker settings of the determinism
// contract: serial, a fixed small pool, and GOMAXPROCS.
func workerCounts() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

func TestForestWorkerInvariance(t *testing.T) {
	X, y := synthClass(900, 3, 0.7, 41)
	var ref [][]float64
	for _, w := range workerCounts() {
		f := NewForest(ForestConfig{Trees: 10, Seed: 3, Workers: w})
		if err := f.FitClass(X, y, 3); err != nil {
			t.Fatal(err)
		}
		p := f.Proba(X)
		if ref == nil {
			ref = p
			continue
		}
		for i := range p {
			for j := range p[i] {
				if p[i][j] != ref[i][j] {
					t.Fatalf("workers=%d: proba[%d][%d] = %v, want %v", w, i, j, p[i][j], ref[i][j])
				}
			}
		}
	}
}

func TestExtraTreesWorkerInvariance(t *testing.T) {
	X, y := synthClass(900, 3, 0.7, 42)
	var ref [][]float64
	for _, w := range workerCounts() {
		e := NewExtraTrees(ForestConfig{Trees: 12, Seed: 3, Workers: w})
		if err := e.FitClass(X, y, 3); err != nil {
			t.Fatal(err)
		}
		p := e.Proba(X)
		if ref == nil {
			ref = p
			continue
		}
		for i := range p {
			for j := range p[i] {
				if p[i][j] != ref[i][j] {
					t.Fatalf("workers=%d: proba[%d][%d] = %v, want %v", w, i, j, p[i][j], ref[i][j])
				}
			}
		}
	}
}

func TestGBMWorkerInvariance(t *testing.T) {
	X, y := synthClass(900, 4, 0.7, 43)
	var ref [][]float64
	for _, w := range workerCounts() {
		g := NewGBM(GBMConfig{Rounds: 8, Seed: 3, Workers: w})
		if err := g.FitClass(X, y, 4); err != nil {
			t.Fatal(err)
		}
		p := g.Proba(X)
		if ref == nil {
			ref = p
			continue
		}
		for i := range p {
			for j := range p[i] {
				if p[i][j] != ref[i][j] {
					t.Fatalf("workers=%d: proba[%d][%d] = %v, want %v", w, i, j, p[i][j], ref[i][j])
				}
			}
		}
	}
	// Regression path too.
	Xr, yr := synthReg(900, 0.2, 44)
	var refR []float64
	for _, w := range workerCounts() {
		g := NewGBM(GBMConfig{Rounds: 8, Seed: 3, Workers: w})
		if err := g.Fit(Xr, yr); err != nil {
			t.Fatal(err)
		}
		p := g.Predict(Xr)
		if refR == nil {
			refR = p
			continue
		}
		for i := range p {
			if p[i] != refR[i] {
				t.Fatalf("workers=%d: pred[%d] = %v, want %v", w, i, p[i], refR[i])
			}
		}
	}
}

func TestKNNWorkerInvariance(t *testing.T) {
	X, y := synthClass(800, 3, 0.6, 45)
	q := X[:300]
	var ref [][]float64
	var refC []int
	for _, w := range workerCounts() {
		k := NewKNN(KNNConfig{K: 7, Workers: w})
		if err := k.FitClass(X, y, 3); err != nil {
			t.Fatal(err)
		}
		p := k.Proba(q)
		c := k.PredictClass(q)
		if ref == nil {
			ref, refC = p, c
			continue
		}
		for i := range p {
			if c[i] != refC[i] {
				t.Fatalf("workers=%d: class[%d] = %d, want %d", w, i, c[i], refC[i])
			}
			for j := range p[i] {
				if p[i][j] != ref[i][j] {
					t.Fatalf("workers=%d: proba[%d][%d] = %v, want %v", w, i, j, p[i][j], ref[i][j])
				}
			}
		}
	}
}

// TestUnfittedEnsemblesReturnZeros pins the before-Fit contract: no NaN
// from divide-by-zero, no nil-dereference panics — zero values.
func TestUnfittedEnsemblesReturnZeros(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	f := NewForest(ForestConfig{})
	if f.Fitted() {
		t.Fatal("new forest claims fitted")
	}
	for _, v := range f.Predict(X) {
		if v != 0 {
			t.Fatalf("unfitted forest predicted %v", v)
		}
	}
	for _, row := range f.Proba(X) {
		for _, v := range row {
			if v != 0 || math.IsNaN(v) {
				t.Fatalf("unfitted forest proba %v", v)
			}
		}
	}
	if c := f.PredictClass(X); c[0] != 0 || c[1] != 0 {
		t.Fatalf("unfitted forest classes %v", c)
	}

	g := NewGBM(GBMConfig{})
	if g.Fitted() {
		t.Fatal("new gbm claims fitted")
	}
	for _, v := range g.Predict(X) {
		if v != 0 || math.IsNaN(v) {
			t.Fatalf("unfitted gbm predicted %v", v)
		}
	}
	if c := g.PredictClass(X); c[0] != 0 || c[1] != 0 {
		t.Fatalf("unfitted gbm classes %v", c)
	}
	for _, row := range g.Proba(X) {
		if len(row) != 0 {
			t.Fatalf("unfitted gbm proba row %v", row)
		}
	}

	e := NewExtraTrees(ForestConfig{})
	if e.Fitted() {
		t.Fatal("new extra-trees claims fitted")
	}
	for _, v := range e.Predict(X) {
		if v != 0 {
			t.Fatalf("unfitted extra-trees predicted %v", v)
		}
	}
	if c := e.PredictClass(X); c[0] != 0 || c[1] != 0 {
		t.Fatalf("unfitted extra-trees classes %v", c)
	}

	// A failed fit must leave the model unfitted, not half-trained.
	if err := f.FitClass(X, []int{0, 0}, 1); err == nil {
		t.Fatal("1-class fit must error")
	}
	if f.Fitted() {
		t.Fatal("forest claims fitted after failed fit")
	}
	if err := g.FitClass(X, []int{0, 0}, 1); err == nil {
		t.Fatal("1-class fit must error")
	}
	if g.Fitted() {
		t.Fatal("gbm claims fitted after failed fit")
	}
}

// TestBinnedMatrixCodes checks the code/edge contract: code(x) <= b iff
// x <= edges[b], NaN lands in the last bin, and low-cardinality features
// bin losslessly.
func TestBinnedMatrixCodes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 3000
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), float64(rng.Intn(5)), rng.Float64() * 100}
	}
	X[17][0] = math.NaN()
	bm := NewBinnedMatrix(X, 64)
	if bm.Rows() != n || bm.Features() != 3 {
		t.Fatalf("shape = %d×%d", bm.Rows(), bm.Features())
	}
	for f := 0; f < 3; f++ {
		if bm.Bins(f) > 64 {
			t.Fatalf("feature %d has %d bins", f, bm.Bins(f))
		}
		edges := bm.edges[f]
		for b := 1; b < len(edges); b++ {
			if edges[b] <= edges[b-1] {
				t.Fatalf("feature %d edges not strictly increasing", f)
			}
		}
		for r := 0; r < n; r++ {
			v := X[r][f]
			c := int(bm.codes[f][r])
			if math.IsNaN(v) {
				if c != len(edges) {
					t.Fatalf("NaN code = %d, want last bin %d", c, len(edges))
				}
				continue
			}
			if c > 0 && !(v > edges[c-1]) {
				t.Fatalf("feature %d row %d: %v not > lower edge %v", f, r, v, edges[c-1])
			}
			if c < len(edges) && !(v <= edges[c]) {
				t.Fatalf("feature %d row %d: %v not <= upper edge %v", f, r, v, edges[c])
			}
		}
	}
	// The 5-value integer feature must bin losslessly: one bin per value.
	if bm.Bins(1) != 5 {
		t.Fatalf("low-cardinality feature has %d bins, want 5", bm.Bins(1))
	}
}

// TestFitBinnedShared fits several trees against one shared matrix —
// the ensemble pattern — and checks the API's error cases.
func TestFitBinnedShared(t *testing.T) {
	X, yc, yr := gridData(600, 7)
	bm := NewBinnedMatrix(X, 256)
	tr := NewTree(TreeConfig{Seed: 1, Backend: BackendHist, MinLeaf: 2})
	if err := tr.FitClassBinned(bm, yc, 3, nil); err != nil {
		t.Fatal(err)
	}
	pred := tr.Predict(X)
	correct := 0
	for i := range pred {
		if int(pred[i]) == yc[i] {
			correct++
		}
	}
	if float64(correct)/float64(len(yc)) < 0.85 {
		t.Fatalf("binned tree train accuracy = %d/%d", correct, len(yc))
	}
	rg := NewTree(TreeConfig{Seed: 2, Backend: BackendHist, MinLeaf: 2})
	if err := rg.FitBinned(bm, yr, nil); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(rg.Predict(X), yr); r2 < 0.8 {
		t.Fatalf("binned regression tree R2 = %g", r2)
	}
	if err := NewTree(TreeConfig{}).FitBinned(nil, yr, nil); err == nil {
		t.Fatal("nil matrix must error")
	}
	if err := NewTree(TreeConfig{}).FitBinned(bm, yr[:10], nil); err == nil {
		t.Fatal("row mismatch must error")
	}
	if err := NewTree(TreeConfig{}).FitClassBinned(bm, yc, 1, nil); err == nil {
		t.Fatal("1-class must error")
	}
	if err := NewTree(TreeConfig{}).FitBinned(bm, yr, []int{}); err == nil {
		t.Fatal("empty row set must error")
	}
}

// TestTrainPredictionCapture pins the GBM optimization: leaf values
// recorded during growth must equal a full re-traversal of the matrix.
func TestTrainPredictionCapture(t *testing.T) {
	X, _, yr := gridData(800, 8)
	for _, backend := range []Backend{BackendExact, BackendHist} {
		tr := NewTree(TreeConfig{Seed: 4, Backend: backend})
		captured := make([]float64, len(yr))
		if err := tr.fitRows(nil, X, yr, 0, nil, captured); err != nil {
			t.Fatal(err)
		}
		walked := tr.Predict(X)
		for i := range walked {
			if captured[i] != walked[i] {
				t.Fatalf("backend %d row %d: captured %v, walked %v", backend, i, captured[i], walked[i])
			}
		}
	}
}
