package ml

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// benchRows/benchFeatures size the cold-fit benchmark dataset. The
// acceptance bar for the histogram backend is measured on this shape:
// ≥ 20k rows of mixed continuous + low-cardinality features, the regime
// where sort-and-sweep split finding is most expensive. Every config pins
// Workers: 1 so the before/after delta is the algorithmic win alone, not
// parallelism.
const (
	benchRows     = 20000
	benchFeatures = 16
	benchClasses  = 3
)

// benchMatrix builds a deterministic synthetic design matrix: half the
// features are continuous signal/noise mixes, half are low-cardinality
// integer codes (the one-hot/ordinal shapes pipeline matrices produce).
func benchMatrix(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			if j%2 == 0 {
				row[j] = rng.NormFloat64()
			} else {
				row[j] = float64(rng.Intn(8))
			}
		}
		X[i] = row
	}
	return X
}

// benchLabels derives an XOR-ish multiclass target with label noise so
// trees must actually grow to fit it.
func benchLabels(X [][]float64, classes int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed + 1))
	y := make([]int, len(X))
	for i, row := range X {
		s := row[0] + 0.5*row[1] - row[2]*row[3]*0.25
		c := 0
		if s > 0.5 {
			c = 1
		}
		if s < -0.5 {
			c = 2 % classes
		}
		if rng.Float64() < 0.05 {
			c = rng.Intn(classes)
		}
		y[i] = c
	}
	return y
}

// benchTarget derives a nonlinear regression target.
func benchTarget(X [][]float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed + 2))
	y := make([]float64, len(X))
	for i, row := range X {
		y[i] = 3*row[0] - 2*row[1] + row[2]*row[3] + 0.3*rng.NormFloat64()
	}
	return y
}

var (
	benchOnce sync.Once
	benchX    [][]float64
	benchYC   []int
	benchYR   []float64
)

func benchData() ([][]float64, []int, []float64) {
	benchOnce.Do(func() {
		benchX = benchMatrix(benchRows, benchFeatures, 42)
		benchYC = benchLabels(benchX, benchClasses, 42)
		benchYR = benchTarget(benchX, 42)
	})
	return benchX, benchYC, benchYR
}

func sink(v float64) {
	if math.IsNaN(v) {
		panic("benchmark produced NaN")
	}
}

// BenchmarkMLForestFitClass is the cold classification-forest fit the
// execute step of every generated pipeline pays (Alg. 4).
func BenchmarkMLForestFitClass(b *testing.B) {
	X, yc, _ := benchData()
	for i := 0; i < b.N; i++ {
		f := NewForest(ForestConfig{Trees: 15, Seed: 7, Workers: 1})
		if err := f.FitClass(X, yc, benchClasses); err != nil {
			b.Fatal(err)
		}
		sink(f.Proba(X[:1])[0][0])
	}
}

// BenchmarkMLForestFitReg is the cold regression-forest fit.
func BenchmarkMLForestFitReg(b *testing.B) {
	X, _, yr := benchData()
	for i := 0; i < b.N; i++ {
		f := NewForest(ForestConfig{Trees: 15, Seed: 7, Workers: 1})
		if err := f.Fit(X, yr); err != nil {
			b.Fatal(err)
		}
		sink(f.Predict(X[:1])[0])
	}
}

// BenchmarkMLGBMFitClass is the cold one-vs-rest boosted fit (rounds ×
// classes tree fits over the same matrix).
func BenchmarkMLGBMFitClass(b *testing.B) {
	X, yc, _ := benchData()
	for i := 0; i < b.N; i++ {
		g := NewGBM(GBMConfig{Rounds: 40, Seed: 7, Workers: 1})
		if err := g.FitClass(X, yc, benchClasses); err != nil {
			b.Fatal(err)
		}
		sink(g.Proba(X[:1])[0][0])
	}
}

// BenchmarkMLGBMFitReg is the cold least-squares boosted fit.
func BenchmarkMLGBMFitReg(b *testing.B) {
	X, _, yr := benchData()
	for i := 0; i < b.N; i++ {
		g := NewGBM(GBMConfig{Rounds: 40, Seed: 7, Workers: 1})
		if err := g.Fit(X, yr); err != nil {
			b.Fatal(err)
		}
		sink(g.Predict(X[:1])[0])
	}
}

// BenchmarkMLExtraTreesFitClass is the cold extra-trees fit.
func BenchmarkMLExtraTreesFitClass(b *testing.B) {
	X, yc, _ := benchData()
	for i := 0; i < b.N; i++ {
		e := NewExtraTrees(ForestConfig{Trees: 15, Seed: 7, Workers: 1})
		if err := e.FitClass(X, yc, benchClasses); err != nil {
			b.Fatal(err)
		}
		sink(e.Proba(X[:1])[0][0])
	}
}

var (
	benchForestOnce sync.Once
	benchForest     *Forest
	benchGBMOnce    sync.Once
	benchGBM        *GBM
)

// BenchmarkMLForestProba times batch inference over the full matrix.
func BenchmarkMLForestProba(b *testing.B) {
	X, yc, _ := benchData()
	benchForestOnce.Do(func() {
		benchForest = NewForest(ForestConfig{Trees: 15, Seed: 7, Workers: 1})
		if err := benchForest.FitClass(X, yc, benchClasses); err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink(benchForest.Proba(X)[0][0])
	}
}

// BenchmarkMLGBMProba times batch boosted inference over the full matrix.
func BenchmarkMLGBMProba(b *testing.B) {
	X, yc, _ := benchData()
	benchGBMOnce.Do(func() {
		benchGBM = NewGBM(GBMConfig{Rounds: 40, Seed: 7, Workers: 1})
		if err := benchGBM.FitClass(X, yc, benchClasses); err != nil {
			b.Fatal(err)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink(benchGBM.Proba(X)[0][0])
	}
}

// BenchmarkMLKNNPredict times brute-force batch KNN prediction (4k
// stored rows, 2k queries), the per-row scan the pool now parallelizes.
func BenchmarkMLKNNPredict(b *testing.B) {
	X, yc, _ := benchData()
	k := NewKNN(KNNConfig{K: 7, MaxTrain: 4000, Workers: 1})
	if err := k.FitClass(X[:4000], yc[:4000], benchClasses); err != nil {
		b.Fatal(err)
	}
	q := X[4000:6000]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := k.PredictClass(q)
		sink(float64(p[0]))
	}
}
