package ml

import (
	"math"
	"sort"
)

// BinnedMatrix is the shared, read-only training representation behind
// the histogram tree backend: every feature is quantile-binned once into
// at most 256 uint8 codes, stored column-major so split finding scans a
// contiguous byte slice per feature instead of chasing row pointers. The
// per-feature edge arrays recover real-valued thresholds, so trees grown
// on codes still predict over raw float rows. A matrix is built once per
// ensemble Fit/FitClass and shared — race-free, since it is never
// mutated after construction — across all trees of a Forest/ExtraTrees
// and all rounds × one-vs-rest classes of a GBM.
type BinnedMatrix struct {
	rows     int
	features int
	maxBins  int         // max bins over features; histogram slab stride
	bins     []int       // per-feature bin count (len(edges[f])+1)
	codes    [][]uint8   // feature-major: codes[f][row]
	edges    [][]float64 // per-feature ascending thresholds; bin b holds (edges[b-1], edges[b]]
	raw      [][]float64 // original row-major matrix, for the exact-fallback sweep
}

// maxHistBins is the hard cap on bins per feature (uint8 codes).
const maxHistBins = 256

// NewBinnedMatrix quantile-bins X into at most maxBins (≤256) codes per
// feature. Features with few distinct values get one bin per value with
// midpoint edges, so low-cardinality columns bin losslessly.
func NewBinnedMatrix(X [][]float64, maxBins int) *BinnedMatrix {
	if maxBins <= 1 || maxBins > maxHistBins {
		maxBins = maxHistBins
	}
	n := len(X)
	d := 0
	if n > 0 {
		d = len(X[0])
	}
	bm := &BinnedMatrix{
		rows: n, features: d,
		bins:  make([]int, d),
		codes: make([][]uint8, d),
		edges: make([][]float64, d),
		raw:   X,
	}
	vals := make([]float64, 0, n)
	for f := 0; f < d; f++ {
		vals = vals[:0]
		for _, row := range X {
			if v := row[f]; !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		sort.Float64s(vals)
		edges := binEdges(vals, maxBins)
		codes := make([]uint8, n)
		for r, row := range X {
			// NaN compares false against every edge and lands in the last
			// bin — the same side a NaN takes at predict time (x <= thr is
			// false), so binning and traversal agree on missing values.
			codes[r] = uint8(sort.SearchFloat64s(edges, row[f]))
		}
		bm.edges[f] = edges
		bm.codes[f] = codes
		bm.bins[f] = len(edges) + 1
		if bm.bins[f] > bm.maxBins {
			bm.maxBins = bm.bins[f]
		}
	}
	if bm.maxBins == 0 {
		bm.maxBins = 1
	}
	return bm
}

// binEdges picks ascending split thresholds over sorted values. Every
// edge is the midpoint between two adjacent observed values — the same
// thresholds the exact sort-and-sweep proposes — either between all
// consecutive distinct values (when few) or between quantile cut values
// and their successors.
func binEdges(sorted []float64, maxBins int) []float64 {
	m := len(sorted)
	if m == 0 {
		return nil
	}
	distinct := 1
	for i := 1; i < m && distinct <= maxBins; i++ {
		if sorted[i] != sorted[i-1] {
			distinct++
		}
	}
	var edges []float64
	if distinct <= maxBins {
		for i := 1; i < m; i++ {
			if sorted[i] != sorted[i-1] {
				edges = append(edges, (sorted[i-1]+sorted[i])/2)
			}
		}
		return edges
	}
	prev := math.Inf(-1)
	for k := 1; k < maxBins; k++ {
		v := sorted[k*m/maxBins]
		if v <= prev {
			continue
		}
		// First value strictly greater than v; the midpoint separates
		// "<= v" from the rest exactly.
		j := sort.SearchFloat64s(sorted, v)
		for j < m && sorted[j] == v {
			j++
		}
		if j >= m {
			break
		}
		edges = append(edges, (v+sorted[j])/2)
		prev = v
	}
	return edges
}

// Rows returns the number of binned rows.
func (bm *BinnedMatrix) Rows() int { return bm.rows }

// Features returns the number of binned features.
func (bm *BinnedMatrix) Features() int { return bm.features }

// Bins returns the bin count of feature f.
func (bm *BinnedMatrix) Bins(f int) int { return bm.bins[f] }

// autoHistMinRows is the fit size at which BackendAuto switches to the
// histogram backend; below it the exact sort-and-sweep is cheaper than
// paying the one-time binning pass.
const autoHistMinRows = 512

// sharedBinned resolves an ensemble-level backend choice into a shared
// binned matrix (nil means every tree uses the exact path).
func sharedBinned(X [][]float64, backend Backend, maxBins, n int) *BinnedMatrix {
	switch backend {
	case BackendExact:
		return nil
	case BackendHist:
		return NewBinnedMatrix(X, maxBins)
	default:
		if n >= autoHistMinRows {
			return NewBinnedMatrix(X, maxBins)
		}
		return nil
	}
}
