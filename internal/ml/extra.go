package ml

import (
	"math/rand"
	"sort"

	"catdb/internal/pool"
)

// ExtraTrees is an extremely-randomized-trees ensemble: like a random
// forest but with random split thresholds instead of exhaustive search,
// trading a little bias for much faster training — the cheap-ensemble
// option AutoML portfolios like FLAML lean on.
type ExtraTrees struct {
	Config  ForestConfig
	trees   []*randTree
	classes int
}

// NewExtraTrees returns an extra-trees ensemble.
func NewExtraTrees(cfg ForestConfig) *ExtraTrees {
	return &ExtraTrees{Config: cfg.withDefaults()}
}

type randTree struct {
	feature   int
	threshold float64
	left      *randTree
	right     *randTree
	isLeaf    bool
	value     []float64
}

// Fitted reports whether the ensemble has been trained.
func (e *ExtraTrees) Fitted() bool { return len(e.trees) > 0 }

// FitClass trains the ensemble for classification.
func (e *ExtraTrees) FitClass(X [][]float64, y []int, classes int) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	if classes < 2 {
		return errClasses(classes)
	}
	e.classes = classes
	yf := make([]float64, len(y))
	for i, v := range y {
		yf[i] = float64(v)
	}
	e.fit(X, yf)
	return nil
}

// Fit trains the ensemble for regression.
func (e *ExtraTrees) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	e.classes = 0
	e.fit(X, append([]float64(nil), y...))
	return nil
}

// fit grows trees in parallel over a binned matrix built once and shared
// read-only by every tree (large fits only). Each tree derives its RNG
// from its index, so the ensemble is bit-identical at any worker count.
func (e *ExtraTrees) fit(X [][]float64, y []float64) {
	cfg := e.Config
	e.trees = make([]*randTree, cfg.Trees)
	n := len(y)
	bm := sharedBinned(X, cfg.Backend, cfg.MaxBins, n)
	_ = pool.Each(cfg.Workers, cfg.Trees, func(t int) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*104729))
		rows := make([]int, n)
		for i := range rows {
			rows[i] = rng.Intn(n)
		}
		e.trees[t] = e.grow(X, bm, y, rows, 0, rng)
		return nil
	})
}

func (e *ExtraTrees) grow(X [][]float64, bm *BinnedMatrix, y []float64, idx []int, depth int, rng *rand.Rand) *randTree {
	leaf := e.leaf(y, idx)
	if depth >= e.Config.MaxDepth || len(idx) < 2*e.Config.MinLeaf {
		return leaf
	}
	// Random splits: try a handful of (feature, random threshold) pairs
	// and keep the first that produces two viable children. With a binned
	// matrix the candidate scan runs over contiguous uint8 codes — the
	// threshold is a random bin boundary mapped back to its real value —
	// instead of chasing row pointers through the float matrix.
	d := len(X[0])
	for try := 0; try < 8; try++ {
		f := rng.Intn(d)
		if bm != nil {
			codes := bm.codes[f]
			minC, maxC := codes[idx[0]], codes[idx[0]]
			for _, r := range idx {
				c := codes[r]
				if c < minC {
					minC = c
				}
				if c > maxC {
					maxC = c
				}
			}
			if minC == maxC {
				continue
			}
			cb := int(minC) + rng.Intn(int(maxC)-int(minC))
			li := make([]int, 0, len(idx)/2)
			ri := make([]int, 0, len(idx)/2)
			b := uint8(cb)
			for _, r := range idx {
				if codes[r] <= b {
					li = append(li, r)
				} else {
					ri = append(ri, r)
				}
			}
			if len(li) < e.Config.MinLeaf || len(ri) < e.Config.MinLeaf {
				continue
			}
			return &randTree{
				feature: f, threshold: bm.edges[f][cb],
				left:  e.grow(X, bm, y, li, depth+1, rng),
				right: e.grow(X, bm, y, ri, depth+1, rng),
			}
		}
		lo, hi := X[idx[0]][f], X[idx[0]][f]
		for _, r := range idx {
			if X[r][f] < lo {
				lo = X[r][f]
			}
			if X[r][f] > hi {
				hi = X[r][f]
			}
		}
		if lo == hi {
			continue
		}
		thr := lo + rng.Float64()*(hi-lo)
		var li, ri []int
		for _, r := range idx {
			if X[r][f] <= thr {
				li = append(li, r)
			} else {
				ri = append(ri, r)
			}
		}
		if len(li) < e.Config.MinLeaf || len(ri) < e.Config.MinLeaf {
			continue
		}
		return &randTree{
			feature: f, threshold: thr,
			left:  e.grow(X, bm, y, li, depth+1, rng),
			right: e.grow(X, bm, y, ri, depth+1, rng),
		}
	}
	return leaf
}

func (e *ExtraTrees) leaf(y []float64, idx []int) *randTree {
	if e.classes > 0 {
		dist := make([]float64, e.classes)
		for _, r := range idx {
			c := int(y[r])
			if c >= 0 && c < e.classes {
				dist[c]++
			}
		}
		return &randTree{isLeaf: true, value: dist}
	}
	var sum float64
	for _, r := range idx {
		sum += y[r]
	}
	return &randTree{isLeaf: true, value: []float64{sum / float64(len(idx))}}
}

func (t *randTree) lookup(row []float64) []float64 {
	n := t
	for n != nil && !n.isLeaf {
		if n.feature < len(row) && row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		return []float64{0}
	}
	return n.value
}

// Predict averages trees (regression) or returns argmax classes. An
// unfitted ensemble predicts zeros.
func (e *ExtraTrees) Predict(X [][]float64) []float64 {
	out := make([]float64, len(X))
	if !e.Fitted() {
		return out
	}
	if e.classes > 0 {
		p := e.Proba(X)
		for i := range p {
			out[i] = float64(argmax(p[i]))
		}
		return out
	}
	nt := float64(len(e.trees))
	forChunks(e.Config.Workers, len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum float64
			for _, t := range e.trees {
				sum += t.lookup(X[i])[0]
			}
			out[i] = sum / nt
		}
	})
	return out
}

// PredictClass returns class predictions (zeros when unfitted).
func (e *ExtraTrees) PredictClass(X [][]float64) []int {
	if !e.Fitted() || e.classes == 0 {
		return make([]int, len(X))
	}
	return predictFromProba(e.Proba(X))
}

// Proba averages the trees' class distributions, fanning row chunks over
// the worker pool. An unfitted ensemble returns all-zero rows.
func (e *ExtraTrees) Proba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	if !e.Fitted() || e.classes == 0 {
		for i := range out {
			out[i] = make([]float64, e.classes)
		}
		return out
	}
	forChunks(e.Config.Workers, len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := make([]float64, e.classes)
			for _, t := range e.trees {
				v := t.lookup(X[i])
				var sum float64
				for _, x := range v {
					sum += x
				}
				if sum == 0 {
					continue
				}
				for j := range acc {
					if j < len(v) {
						acc[j] += v[j] / sum
					}
				}
			}
			var tot float64
			for _, x := range acc {
				tot += x
			}
			if tot == 0 {
				for j := range acc {
					acc[j] = 1 / float64(e.classes)
				}
			} else {
				for j := range acc {
					acc[j] /= tot
				}
			}
			out[i] = acc
		}
	})
	return out
}

// SVM is a one-vs-rest linear support-vector classifier trained with
// hinge-loss SGD over standardized features.
type SVM struct {
	Config  LinearConfig
	w       [][]float64
	b       []float64
	sc      *scaler
	classes int
}

// NewSVM returns a linear SVM classifier.
func NewSVM(cfg LinearConfig) *SVM { return &SVM{Config: cfg.withDefaults()} }

// FitClass trains one-vs-rest hinge-loss SGD.
func (m *SVM) FitClass(X [][]float64, y []int, classes int) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	if classes < 2 {
		return errClasses(classes)
	}
	m.classes = classes
	m.sc = fitScaler(X)
	n, d := len(y), len(X[0])
	Xs := make([][]float64, n)
	for i, row := range X {
		Xs[i] = m.sc.apply(row)
	}
	lambda := m.Config.L2
	if lambda <= 0 {
		lambda = 1e-4
	}
	m.w = make([][]float64, classes)
	m.b = make([]float64, classes)
	rng := rand.New(rand.NewSource(m.Config.Seed))
	order := rng.Perm(n)
	for c := 0; c < classes; c++ {
		w := make([]float64, d)
		b := 0.0
		step := 0
		for e := 0; e < m.Config.Epochs; e++ {
			for _, i := range order {
				step++
				eta := 1 / (lambda * float64(step+10))
				t := -1.0
				if y[i] == c {
					t = 1
				}
				margin := b
				for j, v := range Xs[i] {
					margin += w[j] * v
				}
				for j := range w {
					w[j] -= eta * lambda * w[j]
				}
				if t*margin < 1 {
					for j, v := range Xs[i] {
						w[j] += eta * t * v
					}
					b += eta * t
				}
			}
		}
		m.w[c] = w
		m.b[c] = b
	}
	return nil
}

// PredictClass returns argmax-margin classes.
func (m *SVM) PredictClass(X [][]float64) []int { return predictFromProba(m.Proba(X)) }

// Proba converts margins to normalized pseudo-probabilities via rank-safe
// sigmoid squashing.
func (m *SVM) Proba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		rs := m.sc.apply(row)
		p := make([]float64, m.classes)
		var sum float64
		for c := 0; c < m.classes; c++ {
			margin := m.b[c]
			for j, v := range rs {
				if j < len(m.w[c]) {
					margin += m.w[c][j] * v
				}
			}
			p[c] = sigmoid(margin)
			sum += p[c]
		}
		if sum == 0 {
			sum = 1
		}
		for c := range p {
			p[c] /= sum
		}
		out[i] = p
	}
	return out
}

// CrossValidateClass runs k-fold cross-validation of a classifier factory
// and returns the per-fold macro-AUC scores.
func CrossValidateClass(X [][]float64, y []int, classes, folds int, seed int64,
	factory func(seed int64) interface {
		FitClass(X [][]float64, y []int, classes int) error
		Proba(X [][]float64) [][]float64
	}) ([]float64, error) {

	if folds < 2 {
		folds = 2
	}
	n := len(y)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	scores := make([]float64, 0, folds)
	for f := 0; f < folds; f++ {
		lo, hi := f*n/folds, (f+1)*n/folds
		test := perm[lo:hi]
		train := append(append([]int(nil), perm[:lo]...), perm[hi:]...)
		if len(test) == 0 || len(train) == 0 {
			continue
		}
		Xtr, ytr := subset(X, y, train)
		Xte, yte := subset(X, y, test)
		clf := factory(seed + int64(f))
		if err := clf.FitClass(Xtr, ytr, classes); err != nil {
			return nil, err
		}
		scores = append(scores, MacroAUC(clf.Proba(Xte), yte, classes))
	}
	sort.Float64s(scores)
	return scores, nil
}

func subset(X [][]float64, y []int, rows []int) ([][]float64, []int) {
	xs := make([][]float64, len(rows))
	ys := make([]int, len(rows))
	for i, r := range rows {
		xs[i], ys[i] = X[r], y[r]
	}
	return xs, ys
}
