package ml

import (
	"math/rand"
	"runtime"

	"catdb/internal/pool"
)

// ForestConfig tunes a random forest.
type ForestConfig struct {
	Trees       int // default 50
	MaxDepth    int // default 12
	MinLeaf     int // default 3
	FeatureFrac float64
	Seed        int64
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.Trees <= 0 {
		c.Trees = 50
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 3
	}
	if c.FeatureFrac <= 0 {
		c.FeatureFrac = 0.6
	}
	return c
}

// Forest is a bagged random forest for classification and regression.
type Forest struct {
	Config  ForestConfig
	trees   []*Tree
	classes int
}

// NewForest returns a forest with the given configuration.
func NewForest(cfg ForestConfig) *Forest { return &Forest{Config: cfg.withDefaults()} }

// Fit trains a regression forest.
func (f *Forest) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	f.classes = 0
	return f.fitBagged(X, func(t *Tree, rows []int) error {
		bx, by := bagRegression(X, y, rows)
		return t.Fit(bx, by)
	}, len(y))
}

// FitClass trains a classification forest.
func (f *Forest) FitClass(X [][]float64, y []int, classes int) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	if classes < 2 {
		return errClasses(classes)
	}
	f.classes = classes
	return f.fitBagged(X, func(t *Tree, rows []int) error {
		bx, by := bagClass(X, y, rows)
		return t.FitClass(bx, by, classes)
	}, len(y))
}

func (f *Forest) fitBagged(X [][]float64, fitOne func(*Tree, []int) error, n int) error {
	cfg := f.Config
	f.trees = make([]*Tree, cfg.Trees)
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Trees {
		workers = cfg.Trees
	}
	// Each tree seeds its own RNG from its index, so the forest is
	// identical at any worker count; pool.Each runs the single-worker case
	// without spawning goroutines at all.
	return pool.Each(workers, cfg.Trees, func(i int) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		rows := make([]int, n)
		for r := range rows {
			rows[r] = rng.Intn(n)
		}
		t := NewTree(TreeConfig{
			MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf,
			FeatureFrac: cfg.FeatureFrac, Seed: cfg.Seed + int64(i),
		})
		err := fitOne(t, rows)
		f.trees[i] = t
		return err
	})
}

func bagRegression(X [][]float64, y []float64, rows []int) ([][]float64, []float64) {
	bx := make([][]float64, len(rows))
	by := make([]float64, len(rows))
	for i, r := range rows {
		bx[i], by[i] = X[r], y[r]
	}
	return bx, by
}

func bagClass(X [][]float64, y []int, rows []int) ([][]float64, []int) {
	bx := make([][]float64, len(rows))
	by := make([]int, len(rows))
	for i, r := range rows {
		bx[i], by[i] = X[r], y[r]
	}
	return bx, by
}

// Predict averages tree outputs (regression) or majority-votes via
// averaged probabilities (classification, returned as class indices).
func (f *Forest) Predict(X [][]float64) []float64 {
	if f.classes > 0 {
		p := f.Proba(X)
		out := make([]float64, len(X))
		for i := range p {
			out[i] = float64(argmax(p[i]))
		}
		return out
	}
	out := make([]float64, len(X))
	for _, t := range f.trees {
		for i, v := range t.Predict(X) {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(f.trees))
	}
	return out
}

// PredictClass returns integer class predictions.
func (f *Forest) PredictClass(X [][]float64) []int {
	return predictFromProba(f.Proba(X))
}

// Proba averages the trees' class distributions.
func (f *Forest) Proba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i := range out {
		out[i] = make([]float64, f.classes)
	}
	for _, t := range f.trees {
		tp := t.Proba(X)
		for i := range out {
			for j := range out[i] {
				out[i][j] += tp[i][j]
			}
		}
	}
	nt := float64(len(f.trees))
	for i := range out {
		for j := range out[i] {
			out[i][j] /= nt
		}
	}
	return out
}
