package ml

import (
	"math/rand"

	"catdb/internal/pool"
)

// ForestConfig tunes a random forest (and the extra-trees ensemble).
type ForestConfig struct {
	Trees       int // default 50
	MaxDepth    int // default 12
	MinLeaf     int // default 3
	FeatureFrac float64
	Seed        int64
	// Workers bounds the goroutines used for tree fitting and batch
	// inference: 0 = GOMAXPROCS, 1 = serial. Every tree derives its RNG
	// from its index, so the ensemble is bit-identical at any setting.
	Workers int
	// Backend selects the tree split backend (default auto: histogram
	// for large fits, exact for small ones).
	Backend Backend
	// MaxBins caps histogram bins per feature (default 256).
	MaxBins int
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.Trees <= 0 {
		c.Trees = 50
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 3
	}
	if c.FeatureFrac <= 0 {
		c.FeatureFrac = 0.6
	}
	return c
}

// Forest is a bagged random forest for classification and regression.
type Forest struct {
	Config  ForestConfig
	trees   []*Tree
	classes int
}

// NewForest returns a forest with the given configuration.
func NewForest(cfg ForestConfig) *Forest { return &Forest{Config: cfg.withDefaults()} }

// Fitted reports whether the forest has been trained.
func (f *Forest) Fitted() bool { return len(f.trees) > 0 }

// Fit trains a regression forest.
func (f *Forest) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	f.classes = 0
	return f.fitEnsemble(X, y)
}

// FitClass trains a classification forest.
func (f *Forest) FitClass(X [][]float64, y []int, classes int) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	if classes < 2 {
		return errClasses(classes)
	}
	f.classes = classes
	yf := make([]float64, len(y))
	for i, v := range y {
		yf[i] = float64(v)
	}
	return f.fitEnsemble(X, yf)
}

// fitEnsemble bags trees over a binned matrix built once and shared
// read-only across every tree. Each tree seeds its own RNG from its
// index, so the forest is identical at any worker count; pool.Each runs
// the single-worker case without spawning goroutines at all.
func (f *Forest) fitEnsemble(X [][]float64, yf []float64) error {
	cfg := f.Config
	n := len(yf)
	bm := sharedBinned(X, cfg.Backend, cfg.MaxBins, n)
	treeBackend := BackendExact
	if bm != nil {
		treeBackend = BackendHist
	}
	f.trees = make([]*Tree, cfg.Trees)
	err := pool.Each(cfg.Workers, cfg.Trees, func(i int) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		rows := make([]int, n)
		for r := range rows {
			rows[r] = rng.Intn(n)
		}
		t := NewTree(TreeConfig{
			MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf,
			FeatureFrac: cfg.FeatureFrac, Seed: cfg.Seed + int64(i),
			Backend: treeBackend, MaxBins: cfg.MaxBins,
		})
		err := t.fitRows(bm, X, yf, f.classes, rows, nil)
		f.trees[i] = t
		return err
	})
	if err != nil {
		f.trees = nil
	}
	return err
}

// Predict averages tree outputs (regression) or majority-votes via
// averaged probabilities (classification, returned as class indices).
// An unfitted forest predicts zeros rather than NaN.
func (f *Forest) Predict(X [][]float64) []float64 {
	out := make([]float64, len(X))
	if !f.Fitted() {
		return out
	}
	if f.classes > 0 {
		p := f.Proba(X)
		for i := range p {
			out[i] = float64(argmax(p[i]))
		}
		return out
	}
	nt := float64(len(f.trees))
	forChunks(f.Config.Workers, len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum float64
			for _, t := range f.trees {
				sum += t.leafValue(X[i])[0]
			}
			out[i] = sum / nt
		}
	})
	return out
}

// PredictClass returns integer class predictions (zeros when unfitted).
func (f *Forest) PredictClass(X [][]float64) []int {
	if !f.Fitted() || f.classes == 0 {
		return make([]int, len(X))
	}
	return predictFromProba(f.Proba(X))
}

// Proba averages the trees' class distributions, fanning row chunks over
// the worker pool. An unfitted forest returns all-zero rows.
func (f *Forest) Proba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	if !f.Fitted() || f.classes == 0 {
		for i := range out {
			out[i] = make([]float64, f.classes)
		}
		return out
	}
	nt := float64(len(f.trees))
	forChunks(f.Config.Workers, len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := make([]float64, f.classes)
			for _, t := range f.trees {
				v := t.leafValue(X[i])
				var sum float64
				for _, x := range v {
					sum += x
				}
				if sum == 0 {
					sum = 1
				}
				for j, x := range v {
					acc[j] += x / sum
				}
			}
			for j := range acc {
				acc[j] /= nt
			}
			out[i] = acc
		}
	})
	return out
}
