package ml

import (
	"math"
)

// GBMConfig tunes gradient-boosted trees.
type GBMConfig struct {
	Rounds       int     // default 60
	LearningRate float64 // default 0.1
	MaxDepth     int     // default 4
	MinLeaf      int     // default 5
	Seed         int64
}

func (c GBMConfig) withDefaults() GBMConfig {
	if c.Rounds <= 0 {
		c.Rounds = 60
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
	return c
}

// GBM is a gradient-boosting machine: least-squares boosting for regression
// and one-vs-rest logistic boosting for classification.
type GBM struct {
	Config  GBMConfig
	base    float64
	trees   []*Tree   // regression
	ovr     [][]*Tree // classification: per class, per round
	bias    []float64 // per-class initial log-odds
	classes int
}

// NewGBM returns a GBM with the given configuration.
func NewGBM(cfg GBMConfig) *GBM { return &GBM{Config: cfg.withDefaults()} }

// Fit trains least-squares gradient boosting for regression.
func (g *GBM) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	g.classes = 0
	var sum float64
	for _, v := range y {
		sum += v
	}
	g.base = sum / float64(len(y))
	resid := make([]float64, len(y))
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = g.base
	}
	g.trees = nil
	for r := 0; r < g.Config.Rounds; r++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		t := NewTree(TreeConfig{MaxDepth: g.Config.MaxDepth, MinLeaf: g.Config.MinLeaf, Seed: g.Config.Seed + int64(r)})
		if err := t.Fit(X, resid); err != nil {
			return err
		}
		up := t.Predict(X)
		for i := range pred {
			pred[i] += g.Config.LearningRate * up[i]
		}
		g.trees = append(g.trees, t)
	}
	return nil
}

// Predict returns regression predictions or argmax classes for
// classification GBMs.
func (g *GBM) Predict(X [][]float64) []float64 {
	if g.classes > 0 {
		p := g.Proba(X)
		out := make([]float64, len(X))
		for i := range p {
			out[i] = float64(argmax(p[i]))
		}
		return out
	}
	out := make([]float64, len(X))
	for i := range out {
		out[i] = g.base
	}
	for _, t := range g.trees {
		for i, v := range t.Predict(X) {
			out[i] += g.Config.LearningRate * v
		}
	}
	return out
}

// FitClass trains one-vs-rest logistic gradient boosting.
func (g *GBM) FitClass(X [][]float64, y []int, classes int) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	if classes < 2 {
		return errClasses(classes)
	}
	g.classes = classes
	n := len(y)
	g.ovr = make([][]*Tree, classes)
	g.bias = make([]float64, classes)
	for c := 0; c < classes; c++ {
		pos := 0
		target := make([]float64, n)
		for i, lbl := range y {
			if lbl == c {
				target[i] = 1
				pos++
			}
		}
		p0 := float64(pos) / float64(n)
		p0 = math.Min(math.Max(p0, 1e-4), 1-1e-4)
		g.bias[c] = math.Log(p0 / (1 - p0))
		score := make([]float64, n)
		for i := range score {
			score[i] = g.bias[c]
		}
		grad := make([]float64, n)
		for r := 0; r < g.Config.Rounds; r++ {
			for i := range grad {
				grad[i] = target[i] - sigmoid(score[i])
			}
			t := NewTree(TreeConfig{MaxDepth: g.Config.MaxDepth, MinLeaf: g.Config.MinLeaf, Seed: g.Config.Seed + int64(c*1000+r)})
			if err := t.Fit(X, grad); err != nil {
				return err
			}
			up := t.Predict(X)
			for i := range score {
				score[i] += g.Config.LearningRate * up[i]
			}
			g.ovr[c] = append(g.ovr[c], t)
		}
	}
	return nil
}

// PredictClass returns integer class predictions.
func (g *GBM) PredictClass(X [][]float64) []int {
	return predictFromProba(g.Proba(X))
}

// Proba returns normalized one-vs-rest probabilities.
func (g *GBM) Proba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	scores := make([][]float64, g.classes)
	for c := 0; c < g.classes; c++ {
		s := make([]float64, len(X))
		for i := range s {
			s[i] = g.bias[c]
		}
		for _, t := range g.ovr[c] {
			for i, v := range t.Predict(X) {
				s[i] += g.Config.LearningRate * v
			}
		}
		scores[c] = s
	}
	for i := range out {
		row := make([]float64, g.classes)
		var sum float64
		for c := 0; c < g.classes; c++ {
			row[c] = sigmoid(scores[c][i])
			sum += row[c]
		}
		if sum == 0 {
			sum = 1
		}
		for c := range row {
			row[c] /= sum
		}
		out[i] = row
	}
	return out
}

func sigmoid(x float64) float64 {
	if x < -40 {
		return 0
	}
	if x > 40 {
		return 1
	}
	return 1 / (1 + math.Exp(-x))
}
