package ml

import (
	"math"

	"catdb/internal/pool"
)

// GBMConfig tunes gradient-boosted trees.
type GBMConfig struct {
	Rounds       int     // default 60
	LearningRate float64 // default 0.1
	MaxDepth     int     // default 4
	MinLeaf      int     // default 5
	Seed         int64
	// Workers bounds the goroutines used for one-vs-rest class fitting
	// and batch inference: 0 = GOMAXPROCS, 1 = serial. Every class
	// derives its tree seeds from (class, round), so the model is
	// bit-identical at any setting.
	Workers int
	// Backend selects the tree split backend (default auto).
	Backend Backend
	// MaxBins caps histogram bins per feature (default 256).
	MaxBins int
}

func (c GBMConfig) withDefaults() GBMConfig {
	if c.Rounds <= 0 {
		c.Rounds = 60
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
	return c
}

// GBM is a gradient-boosting machine: least-squares boosting for regression
// and one-vs-rest logistic boosting for classification. Feature binning
// happens once per fit and is shared across every round (and every OVR
// class), and each round's training predictions are captured from leaf
// assignments during growth instead of re-traversing the tree.
type GBM struct {
	Config  GBMConfig
	base    float64
	trees   []*Tree   // regression
	ovr     [][]*Tree // classification: per class, per round
	bias    []float64 // per-class initial log-odds
	classes int
	fitted  bool
}

// NewGBM returns a GBM with the given configuration.
func NewGBM(cfg GBMConfig) *GBM { return &GBM{Config: cfg.withDefaults()} }

// Fitted reports whether the model has been trained.
func (g *GBM) Fitted() bool { return g.fitted }

func (g *GBM) treeConfig(seed int64, bm *BinnedMatrix) TreeConfig {
	backend := g.Config.Backend
	if bm != nil {
		backend = BackendHist
	} else if backend == BackendAuto {
		backend = BackendExact
	}
	return TreeConfig{
		MaxDepth: g.Config.MaxDepth, MinLeaf: g.Config.MinLeaf,
		Seed: seed, Backend: backend, MaxBins: g.Config.MaxBins,
	}
}

// Fit trains least-squares gradient boosting for regression.
func (g *GBM) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	g.classes = 0
	g.fitted = false
	var sum float64
	for _, v := range y {
		sum += v
	}
	n := len(y)
	g.base = sum / float64(n)
	bm := sharedBinned(X, g.Config.Backend, g.Config.MaxBins, n)
	rows := allRows(n)
	resid := make([]float64, n)
	pred := make([]float64, n)
	up := make([]float64, n)
	for i := range pred {
		pred[i] = g.base
	}
	g.trees = nil
	for r := 0; r < g.Config.Rounds; r++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		t := NewTree(g.treeConfig(g.Config.Seed+int64(r), bm))
		if err := t.fitRows(bm, X, resid, 0, rows, up); err != nil {
			return err
		}
		for i := range pred {
			pred[i] += g.Config.LearningRate * up[i]
		}
		g.trees = append(g.trees, t)
	}
	g.fitted = true
	return nil
}

// Predict returns regression predictions or argmax classes for
// classification GBMs. An unfitted model predicts zeros.
func (g *GBM) Predict(X [][]float64) []float64 {
	out := make([]float64, len(X))
	if !g.fitted {
		return out
	}
	if g.classes > 0 {
		p := g.Proba(X)
		for i := range p {
			out[i] = float64(argmax(p[i]))
		}
		return out
	}
	lr := g.Config.LearningRate
	forChunks(g.Config.Workers, len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := g.base
			for _, t := range g.trees {
				s += lr * t.leafValue(X[i])[0]
			}
			out[i] = s
		}
	})
	return out
}

// FitClass trains one-vs-rest logistic gradient boosting. The classes
// are independent boosting chains over the same binned matrix, so they
// fan out over the worker pool; per-(class, round) tree seeds keep the
// model bit-identical at any worker count.
func (g *GBM) FitClass(X [][]float64, y []int, classes int) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	if classes < 2 {
		return errClasses(classes)
	}
	g.classes = classes
	g.fitted = false
	n := len(y)
	g.ovr = make([][]*Tree, classes)
	g.bias = make([]float64, classes)
	bm := sharedBinned(X, g.Config.Backend, g.Config.MaxBins, n)
	rows := allRows(n)
	err := pool.Each(g.Config.Workers, classes, func(c int) error {
		pos := 0
		target := make([]float64, n)
		for i, lbl := range y {
			if lbl == c {
				target[i] = 1
				pos++
			}
		}
		p0 := float64(pos) / float64(n)
		p0 = math.Min(math.Max(p0, 1e-4), 1-1e-4)
		g.bias[c] = math.Log(p0 / (1 - p0))
		score := make([]float64, n)
		for i := range score {
			score[i] = g.bias[c]
		}
		grad := make([]float64, n)
		up := make([]float64, n)
		trees := make([]*Tree, 0, g.Config.Rounds)
		for r := 0; r < g.Config.Rounds; r++ {
			for i := range grad {
				grad[i] = target[i] - sigmoid(score[i])
			}
			t := NewTree(g.treeConfig(g.Config.Seed+int64(c*1000+r), bm))
			if err := t.fitRows(bm, X, grad, 0, rows, up); err != nil {
				return err
			}
			for i := range score {
				score[i] += g.Config.LearningRate * up[i]
			}
			trees = append(trees, t)
		}
		g.ovr[c] = trees
		return nil
	})
	if err != nil {
		g.ovr = nil
		return err
	}
	g.fitted = true
	return nil
}

// PredictClass returns integer class predictions (zeros when unfitted).
func (g *GBM) PredictClass(X [][]float64) []int {
	if !g.fitted || g.classes == 0 {
		return make([]int, len(X))
	}
	return predictFromProba(g.Proba(X))
}

// Proba returns normalized one-vs-rest probabilities, fanning row chunks
// over the worker pool. An unfitted model returns all-zero rows.
func (g *GBM) Proba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	if !g.fitted || g.classes == 0 {
		for i := range out {
			out[i] = make([]float64, g.classes)
		}
		return out
	}
	lr := g.Config.LearningRate
	forChunks(g.Config.Workers, len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := make([]float64, g.classes)
			var sum float64
			for c := 0; c < g.classes; c++ {
				s := g.bias[c]
				for _, t := range g.ovr[c] {
					s += lr * t.leafValue(X[i])[0]
				}
				row[c] = sigmoid(s)
				sum += row[c]
			}
			if sum == 0 {
				sum = 1
			}
			for c := range row {
				row[c] /= sum
			}
			out[i] = row
		}
	})
	return out
}

func sigmoid(x float64) float64 {
	if x < -40 {
		return 0
	}
	if x > 40 {
		return 1
	}
	return 1 / (1 + math.Exp(-x))
}
