package ml

import "math/rand"

// grower is the per-tree construction state shared by both split
// backends. It owns the tree's RNG, the optional binned matrix, a slab
// free-list for histogram reuse, and the optional per-row train
// prediction capture used by boosting.
type grower struct {
	t    *Tree
	X    [][]float64
	bm   *BinnedMatrix // nil = exact backend
	y    []float64
	yc   []int16   // classification labels (-1 = out of range), nil for regression
	pred []float64 // optional: leaf value per training row (regression)
	rng  *rand.Rand

	// Histogram slab management. A slab holds one histogram per feature,
	// strided by maxBins × statLen; statLen is the per-bin payload:
	// classes counts (classification) or {count, sum, sum²} (regression).
	slabLen int
	statLen int
	free    [][]float64
	// Sweep scratch (classification).
	scratchL []float64
	scratchR []float64
	totals   []float64
}

func newGrower(t *Tree, X [][]float64, bm *BinnedMatrix, y []float64, pred []float64, rng *rand.Rand) *grower {
	g := &grower{t: t, X: X, bm: bm, y: y, pred: pred, rng: rng}
	if bm != nil {
		g.statLen = 3
		if t.classes > 0 {
			g.statLen = t.classes
		}
		g.slabLen = bm.features * bm.maxBins * g.statLen
	}
	if t.classes > 0 {
		g.scratchL = make([]float64, t.classes)
		g.scratchR = make([]float64, t.classes)
		g.totals = make([]float64, t.classes)
	}
	return g
}

// grow builds the subtree over rows idx. slab, when non-nil, is this
// node's pre-derived histogram (from the parent-minus-sibling trick);
// ownership transfers in: grow releases or re-derives it.
func (g *grower) grow(idx []int, depth int, slab []float64) *treeNode {
	t := g.t
	if depth >= t.Config.MaxDepth || len(idx) < 2*t.Config.MinLeaf || g.pure(idx) {
		g.release(slab)
		return g.makeLeaf(idx)
	}
	useHist := g.bm != nil && len(idx) >= t.Config.ExactNodeSize
	var feat, bin, nLeft int
	var thr float64
	var ok bool
	if useHist {
		if slab == nil {
			slab = g.getSlab()
			g.accumulate(slab, idx)
		}
		feat, bin, thr, nLeft, ok = g.bestSplitHist(slab, idx)
	} else {
		g.release(slab)
		slab = nil
		feat, thr, ok = t.bestSplit(g.X, g.y, idx, g.rng)
	}
	if !ok {
		g.release(slab)
		return g.makeLeaf(idx)
	}
	var li, ri []int
	if useHist {
		li, ri = g.partitionCodes(idx, feat, bin, nLeft)
	} else {
		for _, r := range idx {
			if g.X[r][feat] <= thr {
				li = append(li, r)
			} else {
				ri = append(ri, r)
			}
		}
	}
	if len(li) < t.Config.MinLeaf || len(ri) < t.Config.MinLeaf {
		g.release(slab)
		return g.makeLeaf(idx)
	}
	var lh, rh []float64
	if useHist {
		lh, rh = g.childSlabs(slab, li, ri, depth+1)
	}
	n := &treeNode{feature: feat, threshold: thr}
	n.left = g.grow(li, depth+1, lh)
	n.right = g.grow(ri, depth+1, rh)
	return n
}

func (g *grower) pure(idx []int) bool {
	first := g.y[idx[0]]
	for _, r := range idx[1:] {
		if g.y[r] != first {
			return false
		}
	}
	return true
}

// makeLeaf emits a leaf node and, for regression trees with prediction
// capture enabled, records the leaf value for every covered row.
func (g *grower) makeLeaf(idx []int) *treeNode {
	if g.t.classes > 0 {
		dist := make([]float64, g.t.classes)
		for _, r := range idx {
			if c := g.yc[r]; c >= 0 {
				dist[c]++
			}
		}
		return &treeNode{isLeaf: true, value: dist}
	}
	var sum float64
	for _, r := range idx {
		sum += g.y[r]
	}
	mean := sum / float64(len(idx))
	if g.pred != nil {
		for _, r := range idx {
			g.pred[r] = mean
		}
	}
	return &treeNode{isLeaf: true, value: []float64{mean}}
}

// partitionCodes splits idx by binned code — a contiguous uint8 scan —
// which is predicate-equivalent to X[r][feat] <= edges[feat][bin].
func (g *grower) partitionCodes(idx []int, feat, bin, nLeft int) (li, ri []int) {
	codes := g.bm.codes[feat]
	li = make([]int, 0, nLeft)
	ri = make([]int, 0, len(idx)-nLeft)
	cb := uint8(bin)
	for _, r := range idx {
		if codes[r] <= cb {
			li = append(li, r)
		} else {
			ri = append(ri, r)
		}
	}
	return li, ri
}

// childNeedsHist reports whether a child node will run a histogram sweep
// (mirrors grow's own decision, minus the purity scan — an unused slab
// is simply released by the child).
func (g *grower) childNeedsHist(child []int, depth int) bool {
	t := g.t
	return len(child) >= t.Config.ExactNodeSize &&
		depth < t.Config.MaxDepth &&
		len(child) >= 2*t.Config.MinLeaf
}

// childSlabs derives the children's histograms from the parent's using
// the subtraction trick: only the smaller side is re-accumulated; the
// sibling's histogram is parent − fresh, computed in place in the parent
// slab. The parent slab's ownership is consumed (transferred or freed).
func (g *grower) childSlabs(parent []float64, li, ri []int, childDepth int) (lh, rh []float64) {
	needL := g.childNeedsHist(li, childDepth)
	needR := g.childNeedsHist(ri, childDepth)
	switch {
	case needL && needR:
		fresh := g.getSlab()
		if len(li) <= len(ri) {
			g.accumulate(fresh, li)
			subtractSlab(parent, fresh)
			return fresh, parent
		}
		g.accumulate(fresh, ri)
		subtractSlab(parent, fresh)
		return parent, fresh
	case needL:
		if len(li) <= len(ri) {
			lh = g.getSlab()
			g.accumulate(lh, li)
			g.release(parent)
			return lh, nil
		}
		fresh := g.getSlab()
		g.accumulate(fresh, ri)
		subtractSlab(parent, fresh)
		g.release(fresh)
		return parent, nil
	case needR:
		if len(ri) <= len(li) {
			rh = g.getSlab()
			g.accumulate(rh, ri)
			g.release(parent)
			return nil, rh
		}
		fresh := g.getSlab()
		g.accumulate(fresh, li)
		subtractSlab(parent, fresh)
		g.release(fresh)
		return nil, parent
	default:
		g.release(parent)
		return nil, nil
	}
}

func subtractSlab(dst, src []float64) {
	for i := range dst {
		dst[i] -= src[i]
	}
}

func (g *grower) getSlab() []float64 {
	if k := len(g.free); k > 0 {
		s := g.free[k-1]
		g.free = g.free[:k-1]
		clear(s)
		return s
	}
	return make([]float64, g.slabLen)
}

func (g *grower) release(slab []float64) {
	if slab != nil {
		g.free = append(g.free, slab)
	}
}

// accumulate fills slab with per-feature histograms over rows idx. All
// features are accumulated (not just the sampled subset) so the sibling
// subtraction stays valid at every descendant.
func (g *grower) accumulate(slab []float64, idx []int) {
	bm := g.bm
	if g.t.classes > 0 {
		classes := g.t.classes
		fw := bm.maxBins * classes
		yc := g.yc
		for f := 0; f < bm.features; f++ {
			codes := bm.codes[f]
			h := slab[f*fw : (f+1)*fw]
			for _, r := range idx {
				c := yc[r]
				if c < 0 {
					continue
				}
				h[int(codes[r])*classes+int(c)]++
			}
		}
		return
	}
	fw := bm.maxBins * 3
	y := g.y
	for f := 0; f < bm.features; f++ {
		codes := bm.codes[f]
		h := slab[f*fw : (f+1)*fw]
		for _, r := range idx {
			b := int(codes[r]) * 3
			v := y[r]
			h[b]++
			h[b+1] += v
			h[b+2] += v * v
		}
	}
}

// bestSplitHist sweeps each (sampled) feature's histogram for the
// impurity-minimizing bin boundary: O(rows·features) accumulation has
// already happened; each feature costs only O(bins) here. Boundaries
// after empty bins are skipped — they duplicate the previous partition —
// which keeps the candidate set identical to the exact sweep's
// value-change positions when bins are lossless.
func (g *grower) bestSplitHist(slab []float64, idx []int) (feat, bin int, thr float64, nLeft int, ok bool) {
	t := g.t
	bm := g.bm
	nf := bm.features
	feats := g.rng.Perm(nf)
	if t.Config.FeatureFrac > 0 && t.Config.FeatureFrac < 1 {
		k := int(float64(nf)*t.Config.FeatureFrac + 0.999)
		if k < 1 {
			k = 1
		}
		feats = feats[:k]
	}
	n := len(idx)
	nn := float64(n)
	bestGain := 0.0
	parentImp := t.impurity(g.y, idx)

	if t.classes > 0 {
		classes := t.classes
		fw := bm.maxBins * classes
		totals := g.totals
		for c := range totals {
			totals[c] = 0
		}
		for _, r := range idx {
			if c := g.yc[r]; c >= 0 {
				totals[c]++
			}
		}
		left, right := g.scratchL, g.scratchR
		for _, f := range feats {
			nb := bm.bins[f]
			if nb < 2 {
				continue
			}
			h := slab[f*fw:]
			for c := range left {
				left[c] = 0
			}
			cntL := 0.0
			for b := 0; b < nb-1; b++ {
				binCnt := 0.0
				for c := 0; c < classes; c++ {
					v := h[b*classes+c]
					left[c] += v
					binCnt += v
				}
				if binCnt == 0 {
					continue
				}
				cntL += binCnt
				cntR := nn - cntL
				if cntR < float64(t.Config.MinLeaf) {
					break
				}
				if cntL < float64(t.Config.MinLeaf) {
					continue
				}
				gL := giniFromCounts(left, cntL)
				for c := 0; c < classes; c++ {
					right[c] = totals[c] - left[c]
				}
				gR := giniFromCounts(right, cntR)
				gain := parentImp - (cntL*gL+cntR*gR)/nn
				if gain > bestGain+1e-12 {
					bestGain, feat, bin, ok = gain, f, b, true
					thr = bm.edges[f][b]
					nLeft = int(cntL)
				}
			}
		}
		return feat, bin, thr, nLeft, ok
	}

	// Regression: per-bin {count, sum, sum²} prefixes give each
	// boundary's variance split in O(1).
	fw := bm.maxBins * 3
	var totSum, totSq float64
	for _, r := range idx {
		v := g.y[r]
		totSum += v
		totSq += v * v
	}
	for _, f := range feats {
		nb := bm.bins[f]
		if nb < 2 {
			continue
		}
		h := slab[f*fw:]
		var cntL, sumL, sqL float64
		for b := 0; b < nb-1; b++ {
			bc := h[b*3]
			if bc == 0 {
				continue
			}
			cntL += bc
			sumL += h[b*3+1]
			sqL += h[b*3+2]
			cntR := nn - cntL
			if cntR < float64(t.Config.MinLeaf) {
				break
			}
			if cntL < float64(t.Config.MinLeaf) {
				continue
			}
			vL := varFromSums(sumL, sqL, cntL)
			vR := varFromSums(totSum-sumL, totSq-sqL, cntR)
			gain := parentImp - (cntL*vL+cntR*vR)/nn
			if gain > bestGain+1e-12 {
				bestGain, feat, bin, ok = gain, f, b, true
				thr = bm.edges[f][b]
				nLeft = int(cntL)
			}
		}
	}
	return feat, bin, thr, nLeft, ok
}
