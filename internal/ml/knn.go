package ml

// KNNConfig tunes k-nearest-neighbours.
type KNNConfig struct {
	K int // default 7
	// MaxTrain caps the stored training rows (0 = unlimited); large stores
	// are subsampled head-first for predict-time tractability.
	MaxTrain int
	// Workers bounds the goroutines used for batch prediction: 0 =
	// GOMAXPROCS, 1 = serial. Query rows are independent, so predictions
	// are identical at any setting.
	Workers int
}

func (c KNNConfig) withDefaults() KNNConfig {
	if c.K <= 0 {
		c.K = 7
	}
	return c
}

// KNN is a brute-force k-nearest-neighbours model for classification and
// regression over standardized features.
type KNN struct {
	Config  KNNConfig
	x       [][]float64
	yr      []float64
	yc      []int
	classes int
	sc      *scaler
}

// NewKNN returns a KNN model.
func NewKNN(cfg KNNConfig) *KNN { return &KNN{Config: cfg.withDefaults()} }

// Fit stores the (standardized) training set for regression.
func (k *KNN) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	k.classes = 0
	k.store(X)
	k.yr = append([]float64(nil), y...)
	if k.Config.MaxTrain > 0 && len(k.yr) > k.Config.MaxTrain {
		k.yr = k.yr[:k.Config.MaxTrain]
	}
	return nil
}

// FitClass stores the training set for classification.
func (k *KNN) FitClass(X [][]float64, y []int, classes int) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	if classes < 2 {
		return errClasses(classes)
	}
	k.classes = classes
	k.store(X)
	k.yc = append([]int(nil), y...)
	if k.Config.MaxTrain > 0 && len(k.yc) > k.Config.MaxTrain {
		k.yc = k.yc[:k.Config.MaxTrain]
	}
	return nil
}

func (k *KNN) store(X [][]float64) {
	k.sc = fitScaler(X)
	k.x = make([][]float64, len(X))
	for i, row := range X {
		k.x[i] = k.sc.apply(row)
	}
	if k.Config.MaxTrain > 0 && len(k.x) > k.Config.MaxTrain {
		k.x = k.x[:k.Config.MaxTrain]
	}
}

type neighbour struct {
	dist float64
	idx  int
}

// nearest returns the K nearest stored rows by squared Euclidean
// distance via a bounded insertion pass (O(n·K), no full sort). Ties
// break on the lower stored index, so results are deterministic and
// independent of scan parallelism. buf, when non-nil, is reused.
func (k *KNN) nearest(row []float64, buf []neighbour) []neighbour {
	rs := k.sc.apply(row)
	kk := k.Config.K
	if kk > len(k.x) {
		kk = len(k.x)
	}
	best := buf[:0]
	for i, tr := range k.x {
		var d float64
		for j := range tr {
			diff := tr[j] - rs[j]
			d += diff * diff
		}
		if len(best) == kk && d >= best[kk-1].dist {
			continue
		}
		// Insert in (dist, idx) order; strict < keeps the earlier index
		// on equal distances.
		p := len(best)
		if p < kk {
			best = append(best, neighbour{})
		} else {
			p = kk - 1
		}
		for p > 0 && d < best[p-1].dist {
			best[p] = best[p-1]
			p--
		}
		best[p] = neighbour{d, i}
	}
	return best
}

// Predict returns the neighbour-mean for regression or argmax class (as
// float64) for classification.
func (k *KNN) Predict(X [][]float64) []float64 {
	out := make([]float64, len(X))
	if k.classes > 0 {
		for i, c := range k.PredictClass(X) {
			out[i] = float64(c)
		}
		return out
	}
	forChunks(k.Config.Workers, len(X), func(lo, hi int) {
		buf := make([]neighbour, 0, k.Config.K)
		for i := lo; i < hi; i++ {
			nb := k.nearest(X[i], buf)
			var sum float64
			for _, n := range nb {
				sum += k.yr[n.idx]
			}
			out[i] = sum / float64(len(nb))
		}
	})
	return out
}

// PredictClass returns majority-vote class indices.
func (k *KNN) PredictClass(X [][]float64) []int {
	return predictFromProba(k.Proba(X))
}

// Proba returns neighbour-vote class distributions. Query rows fan out
// over the worker pool; each row's scan is independent, so the output is
// identical at any worker count.
func (k *KNN) Proba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	forChunks(k.Config.Workers, len(X), func(lo, hi int) {
		buf := make([]neighbour, 0, k.Config.K)
		for i := lo; i < hi; i++ {
			nb := k.nearest(X[i], buf)
			p := make([]float64, k.classes)
			for _, n := range nb {
				p[k.yc[n.idx]]++
			}
			for j := range p {
				p[j] /= float64(len(nb))
			}
			out[i] = p
		}
	})
	return out
}
