package ml

import (
	"math"
	"math/rand"
)

// LinearConfig tunes (regularized) linear and logistic models trained with
// mini-batch gradient descent on standardized inputs.
type LinearConfig struct {
	Epochs       int     // default 100
	LearningRate float64 // default 0.1
	L2           float64 // ridge penalty; 0 = plain least squares
	Seed         int64
}

func (c LinearConfig) withDefaults() LinearConfig {
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	return c
}

// scaler standardizes features to zero mean / unit variance internally so
// gradient descent behaves on unscaled inputs.
type scaler struct {
	mean, std []float64
}

func fitScaler(X [][]float64) *scaler {
	d := len(X[0])
	s := &scaler{mean: make([]float64, d), std: make([]float64, d)}
	n := float64(len(X))
	for _, row := range X {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] < 1e-12 {
			s.std[j] = 1
		}
	}
	return s
}

func (s *scaler) apply(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		if j < len(s.mean) {
			out[j] = (v - s.mean[j]) / s.std[j]
		}
	}
	return out
}

// Linear is a least-squares (optionally ridge) regressor.
type Linear struct {
	Config LinearConfig
	w      []float64
	b      float64
	sc     *scaler
	yMean  float64
	yStd   float64
}

// NewLinear returns a linear regressor.
func NewLinear(cfg LinearConfig) *Linear { return &Linear{Config: cfg.withDefaults()} }

// Fit trains by full-batch gradient descent on standardized features and
// target.
func (l *Linear) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	l.sc = fitScaler(X)
	n := len(y)
	var sum float64
	for _, v := range y {
		sum += v
	}
	l.yMean = sum / float64(n)
	var sq float64
	for _, v := range y {
		d := v - l.yMean
		sq += d * d
	}
	l.yStd = math.Sqrt(sq / float64(n))
	if l.yStd < 1e-12 {
		l.yStd = 1
	}
	d := len(X[0])
	Xs := make([][]float64, n)
	for i, row := range X {
		Xs[i] = l.sc.apply(row)
	}
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - l.yMean) / l.yStd
	}
	l.w = make([]float64, d)
	l.b = 0
	lr := l.Config.LearningRate
	for e := 0; e < l.Config.Epochs; e++ {
		gw := make([]float64, d)
		gb := 0.0
		for i, row := range Xs {
			pred := l.b
			for j, v := range row {
				pred += l.w[j] * v
			}
			err := pred - ys[i]
			for j, v := range row {
				gw[j] += err * v
			}
			gb += err
		}
		inv := 1 / float64(n)
		for j := range l.w {
			l.w[j] -= lr * (gw[j]*inv + l.Config.L2*l.w[j])
		}
		l.b -= lr * gb * inv
	}
	return nil
}

// Predict returns linear predictions in the original target scale.
func (l *Linear) Predict(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		rs := l.sc.apply(row)
		p := l.b
		for j, v := range rs {
			if j < len(l.w) {
				p += l.w[j] * v
			}
		}
		out[i] = p*l.yStd + l.yMean
	}
	return out
}

// Logistic is a one-vs-rest logistic-regression classifier.
type Logistic struct {
	Config  LinearConfig
	w       [][]float64 // per class
	b       []float64
	sc      *scaler
	classes int
}

// NewLogistic returns a logistic-regression classifier.
func NewLogistic(cfg LinearConfig) *Logistic { return &Logistic{Config: cfg.withDefaults()} }

// FitClass trains one-vs-rest logistic regression with SGD.
func (l *Logistic) FitClass(X [][]float64, y []int, classes int) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	if classes < 2 {
		return errClasses(classes)
	}
	l.classes = classes
	l.sc = fitScaler(X)
	n := len(y)
	d := len(X[0])
	Xs := make([][]float64, n)
	for i, row := range X {
		Xs[i] = l.sc.apply(row)
	}
	l.w = make([][]float64, classes)
	l.b = make([]float64, classes)
	rng := rand.New(rand.NewSource(l.Config.Seed))
	order := rng.Perm(n)
	for c := 0; c < classes; c++ {
		w := make([]float64, d)
		b := 0.0
		lr := l.Config.LearningRate
		for e := 0; e < l.Config.Epochs; e++ {
			for _, i := range order {
				t := 0.0
				if y[i] == c {
					t = 1
				}
				p := b
				for j, v := range Xs[i] {
					p += w[j] * v
				}
				g := sigmoid(p) - t
				for j, v := range Xs[i] {
					w[j] -= lr * (g*v + l.Config.L2*w[j])
				}
				b -= lr * g
			}
			lr *= 0.97
		}
		l.w[c] = w
		l.b[c] = b
	}
	return nil
}

// PredictClass returns argmax class indices.
func (l *Logistic) PredictClass(X [][]float64) []int {
	return predictFromProba(l.Proba(X))
}

// Proba returns normalized one-vs-rest probabilities.
func (l *Logistic) Proba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		rs := l.sc.apply(row)
		p := make([]float64, l.classes)
		var sum float64
		for c := 0; c < l.classes; c++ {
			s := l.b[c]
			for j, v := range rs {
				if j < len(l.w[c]) {
					s += l.w[c][j] * v
				}
			}
			p[c] = sigmoid(s)
			sum += p[c]
		}
		if sum == 0 {
			sum = 1
		}
		for c := range p {
			p[c] /= sum
		}
		out[i] = p
	}
	return out
}
