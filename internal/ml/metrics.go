package ml

import (
	"math"
	"sort"
)

// Accuracy returns the fraction of exact matches between two label slices.
func Accuracy(pred, truth []int) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return 0
	}
	hit := 0
	for i := range pred {
		if pred[i] == truth[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}

// AccuracyStrings returns exact-match accuracy over string labels (used
// when predictions and truth carry surface-form class names, so dirty
// duplicate labels genuinely hurt, as in the EU-IT experiment).
func AccuracyStrings(pred, truth []string) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return 0
	}
	hit := 0
	for i := range pred {
		if pred[i] == truth[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}

// BinaryAUC computes ROC AUC for binary labels given positive-class scores.
func BinaryAUC(score []float64, truth []int) float64 {
	type pair struct {
		s float64
		y int
	}
	ps := make([]pair, len(score))
	pos, neg := 0, 0
	for i := range score {
		ps[i] = pair{score[i], truth[i]}
		if truth[i] == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].s < ps[b].s })
	// Rank-sum (Mann-Whitney U) with tie handling via average ranks.
	ranks := make([]float64, len(ps))
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var sumPos float64
	for i, p := range ps {
		if p.y == 1 {
			sumPos += ranks[i]
		}
	}
	u := sumPos - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg))
}

// MacroAUC computes one-vs-rest AUC averaged over classes from a
// probability matrix (n×classes). Classes absent from truth are skipped.
func MacroAUC(proba [][]float64, truth []int, classes int) float64 {
	if len(proba) == 0 {
		return 0.5
	}
	var sum float64
	var used int
	for c := 0; c < classes; c++ {
		score := make([]float64, len(proba))
		bin := make([]int, len(truth))
		pos := 0
		for i := range proba {
			score[i] = proba[i][c]
			if truth[i] == c {
				bin[i] = 1
				pos++
			}
		}
		if pos == 0 || pos == len(truth) {
			continue
		}
		sum += BinaryAUC(score, bin)
		used++
	}
	if used == 0 {
		return 0.5
	}
	return sum / float64(used)
}

// MacroF1 averages per-class F1 scores.
func MacroF1(pred, truth []int, classes int) float64 {
	if len(pred) == 0 {
		return 0
	}
	var sum float64
	var used int
	for c := 0; c < classes; c++ {
		var tp, fp, fn float64
		for i := range pred {
			switch {
			case pred[i] == c && truth[i] == c:
				tp++
			case pred[i] == c && truth[i] != c:
				fp++
			case pred[i] != c && truth[i] == c:
				fn++
			}
		}
		if tp+fn == 0 {
			continue
		}
		used++
		if tp == 0 {
			continue
		}
		prec := tp / (tp + fp)
		rec := tp / (tp + fn)
		sum += 2 * prec * rec / (prec + rec)
	}
	if used == 0 {
		return 0
	}
	return sum / float64(used)
}

// LogLoss is the mean negative log-likelihood of the truth under proba.
func LogLoss(proba [][]float64, truth []int) float64 {
	if len(proba) == 0 {
		return 0
	}
	var sum float64
	for i, row := range proba {
		p := 1e-15
		if truth[i] < len(row) {
			p = math.Max(row[truth[i]], 1e-15)
		}
		sum -= math.Log(p)
	}
	return sum / float64(len(proba))
}

// R2 is the coefficient of determination.
func R2(pred, truth []float64) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return 0
	}
	var mean float64
	for _, v := range truth {
		mean += v
	}
	mean /= float64(len(truth))
	var ssRes, ssTot float64
	for i := range truth {
		d := truth[i] - pred[i]
		ssRes += d * d
		m := truth[i] - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// RMSE is the root mean squared error.
func RMSE(pred, truth []float64) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return math.NaN()
	}
	var sum float64
	for i := range pred {
		d := pred[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}
