// Package ml is the from-scratch machine-learning substrate the generated
// pipelines train against: CART decision trees, random forests, gradient
// boosting, logistic/linear/ridge regression, k-nearest neighbours,
// Gaussian naive Bayes, and a TabPFN-like kernel model (with the real
// TabPFN's small-data restriction), plus the evaluation metrics the paper
// reports (accuracy, AUC, F1, R², RMSE, log-loss).
package ml

import (
	"errors"
	"fmt"

	"catdb/internal/pool"
)

// ErrOutOfMemory is returned by models whose working set would exceed their
// design limits (used to reproduce the paper's TabPFN out-of-memory
// failures on large datasets).
var ErrOutOfMemory = errors.New("ml: model working set exceeds memory budget")

// Regressor predicts a numeric value per row.
type Regressor interface {
	Fit(X [][]float64, y []float64) error
	Predict(X [][]float64) []float64
}

// Classifier predicts a class index per row and class probabilities.
type Classifier interface {
	Fit(X [][]float64, y []int, classes int) error
	Predict(X [][]float64) []int
	// Proba returns an n×classes matrix of class probabilities.
	Proba(X [][]float64) [][]float64
}

// checkXY validates shared fit preconditions.
func checkXY(X [][]float64, n int) error {
	if len(X) == 0 {
		return fmt.Errorf("ml: empty feature matrix")
	}
	if len(X) != n {
		return fmt.Errorf("ml: X has %d rows, y has %d", len(X), n)
	}
	w := len(X[0])
	for i, r := range X {
		if len(r) != w {
			return fmt.Errorf("ml: ragged feature matrix at row %d", i)
		}
	}
	return nil
}

// argmax returns the index of the largest value (first on ties).
func argmax(v []float64) int {
	best, bi := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}

// predictFromProba converts probability rows into class predictions.
func predictFromProba(p [][]float64) []int {
	out := make([]int, len(p))
	for i, row := range p {
		out[i] = argmax(row)
	}
	return out
}

// inferChunk is the row-chunk granularity for parallel batch inference:
// large enough to amortize dispatch, small enough to balance load.
const inferChunk = 512

// forChunks fans fn over contiguous row ranges of [0,n) on the worker
// pool (workers: 0 = GOMAXPROCS, 1 = serial). Each chunk writes only its
// own output indices, so results are identical at any worker count.
func forChunks(workers, n int, fn func(lo, hi int)) {
	if n == 0 {
		return
	}
	chunks := (n + inferChunk - 1) / inferChunk
	_ = pool.Each(workers, chunks, func(c int) error {
		lo := c * inferChunk
		hi := lo + inferChunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
		return nil
	})
}
