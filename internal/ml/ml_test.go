package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// synthClass builds a separable 2-feature classification set.
func synthClass(n, classes int, noise float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		angle := 2 * math.Pi * float64(c) / float64(classes)
		X[i] = []float64{
			3*math.Cos(angle) + noise*rng.NormFloat64(),
			3*math.Sin(angle) + noise*rng.NormFloat64(),
		}
		y[i] = c
	}
	return X, y
}

// synthReg builds y = 3*x0 - 2*x1 + noise.
func synthReg(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 3*X[i][0] - 2*X[i][1] + noise*rng.NormFloat64()
	}
	return X, y
}

func TestTreeClassification(t *testing.T) {
	X, y := synthClass(600, 3, 0.5, 1)
	tr := NewTree(TreeConfig{Seed: 1})
	if err := tr.FitClass(X, y, 3); err != nil {
		t.Fatal(err)
	}
	pred := tr.Predict(X)
	preds := make([]int, len(pred))
	for i, p := range pred {
		preds[i] = int(p)
	}
	if acc := Accuracy(preds, y); acc < 0.9 {
		t.Fatalf("tree train accuracy = %g", acc)
	}
	proba := tr.Proba(X[:5])
	for _, row := range proba {
		var sum float64
		for _, p := range row {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("proba not normalized: %v", row)
		}
	}
}

func TestTreeRegression(t *testing.T) {
	X, y := synthReg(600, 0.2, 2)
	tr := NewTree(TreeConfig{Seed: 1})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(tr.Predict(X), y); r2 < 0.8 {
		t.Fatalf("tree train R2 = %g", r2)
	}
}

func TestTreeErrors(t *testing.T) {
	if err := NewTree(TreeConfig{}).Fit(nil, nil); err == nil {
		t.Fatal("empty X must error")
	}
	if err := NewTree(TreeConfig{}).FitClass([][]float64{{1}}, []int{0}, 1); err == nil {
		t.Fatal("1-class must error")
	}
	if err := NewTree(TreeConfig{}).Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged X must error")
	}
}

func TestForestClassificationGeneralizes(t *testing.T) {
	X, y := synthClass(800, 4, 0.8, 3)
	Xte, yte := synthClass(300, 4, 0.8, 99)
	f := NewForest(ForestConfig{Trees: 20, Seed: 1})
	if err := f.FitClass(X, y, 4); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(f.PredictClass(Xte), yte); acc < 0.85 {
		t.Fatalf("forest test accuracy = %g", acc)
	}
	if auc := MacroAUC(f.Proba(Xte), yte, 4); auc < 0.9 {
		t.Fatalf("forest AUC = %g", auc)
	}
}

func TestForestRegression(t *testing.T) {
	X, y := synthReg(800, 0.3, 4)
	Xte, yte := synthReg(300, 0.3, 98)
	f := NewForest(ForestConfig{Trees: 20, Seed: 1})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(f.Predict(Xte), yte); r2 < 0.75 {
		t.Fatalf("forest test R2 = %g", r2)
	}
}

func TestForestDeterminism(t *testing.T) {
	X, y := synthClass(300, 2, 0.6, 5)
	a := NewForest(ForestConfig{Trees: 8, Seed: 7})
	b := NewForest(ForestConfig{Trees: 8, Seed: 7})
	_ = a.FitClass(X, y, 2)
	_ = b.FitClass(X, y, 2)
	pa, pb := a.PredictClass(X), b.PredictClass(X)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed must give same forest")
		}
	}
}

func TestGBMRegression(t *testing.T) {
	X, y := synthReg(600, 0.2, 6)
	g := NewGBM(GBMConfig{Rounds: 40, Seed: 1})
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(g.Predict(X), y); r2 < 0.85 {
		t.Fatalf("gbm train R2 = %g", r2)
	}
}

func TestGBMClassification(t *testing.T) {
	X, y := synthClass(600, 3, 0.6, 7)
	g := NewGBM(GBMConfig{Rounds: 25, Seed: 1})
	if err := g.FitClass(X, y, 3); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(g.PredictClass(X), y); acc < 0.85 {
		t.Fatalf("gbm train accuracy = %g", acc)
	}
}

func TestLinearRecoversCoefficients(t *testing.T) {
	X, y := synthReg(500, 0.05, 8)
	l := NewLinear(LinearConfig{Epochs: 300})
	if err := l.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(l.Predict(X), y); r2 < 0.97 {
		t.Fatalf("linear R2 = %g", r2)
	}
}

func TestLogisticBinary(t *testing.T) {
	X, y := synthClass(500, 2, 0.7, 9)
	l := NewLogistic(LinearConfig{Epochs: 30, Seed: 1})
	if err := l.FitClass(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(l.PredictClass(X), y); acc < 0.9 {
		t.Fatalf("logistic accuracy = %g", acc)
	}
}

func TestKNN(t *testing.T) {
	X, y := synthClass(400, 3, 0.5, 10)
	k := NewKNN(KNNConfig{K: 5})
	if err := k.FitClass(X, y, 3); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(k.PredictClass(X), y); acc < 0.9 {
		t.Fatalf("knn accuracy = %g", acc)
	}
	Xr, yr := synthReg(300, 0.2, 11)
	kr := NewKNN(KNNConfig{K: 5})
	if err := kr.Fit(Xr, yr); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(kr.Predict(Xr), yr); r2 < 0.7 {
		t.Fatalf("knn R2 = %g", r2)
	}
}

func TestNaiveBayes(t *testing.T) {
	X, y := synthClass(500, 3, 0.5, 12)
	nb := NewNaiveBayes()
	if err := nb.FitClass(X, y, 3); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(nb.PredictClass(X), y); acc < 0.9 {
		t.Fatalf("nb accuracy = %g", acc)
	}
}

func TestTabPFNSimSmallData(t *testing.T) {
	X, y := synthClass(400, 3, 0.5, 13)
	tp := NewTabPFNSim()
	if err := tp.FitClass(X, y, 3); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tp.PredictClass(X), y); acc < 0.9 {
		t.Fatalf("tabpfn accuracy = %g", acc)
	}
}

func TestTabPFNSimOOM(t *testing.T) {
	X, y := synthClass(3000, 2, 0.5, 14)
	tp := NewTabPFNSim()
	err := tp.FitClass(X, y, 2)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	// Wide data also fails.
	wide := make([][]float64, 100)
	for i := range wide {
		wide[i] = make([]float64, 200)
	}
	yw := make([]int, 100)
	for i := range yw {
		yw[i] = i % 2
	}
	if err := NewTabPFNSim().FitClass(wide, yw, 2); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("wide data: want ErrOutOfMemory, got %v", err)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 2, 0}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %g", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy must be 0")
	}
	if Accuracy([]int{1}, []int{1, 2}) != 0 {
		t.Fatal("length mismatch must be 0")
	}
	if got := AccuracyStrings([]string{"a", "b"}, []string{"a", "c"}); got != 0.5 {
		t.Fatalf("string accuracy = %g", got)
	}
}

func TestBinaryAUC(t *testing.T) {
	// Perfect separation.
	score := []float64{0.1, 0.2, 0.8, 0.9}
	truth := []int{0, 0, 1, 1}
	if got := BinaryAUC(score, truth); got != 1 {
		t.Fatalf("perfect AUC = %g", got)
	}
	// Inverted.
	if got := BinaryAUC(score, []int{1, 1, 0, 0}); got != 0 {
		t.Fatalf("inverted AUC = %g", got)
	}
	// All ties → 0.5.
	if got := BinaryAUC([]float64{0.5, 0.5, 0.5, 0.5}, truth); got != 0.5 {
		t.Fatalf("tied AUC = %g", got)
	}
	// Degenerate single-class → 0.5.
	if got := BinaryAUC(score, []int{1, 1, 1, 1}); got != 0.5 {
		t.Fatalf("single-class AUC = %g", got)
	}
}

func TestMacroAUCAndF1(t *testing.T) {
	proba := [][]float64{
		{0.9, 0.05, 0.05},
		{0.1, 0.8, 0.1},
		{0.2, 0.1, 0.7},
		{0.7, 0.2, 0.1},
	}
	truth := []int{0, 1, 2, 0}
	if auc := MacroAUC(proba, truth, 3); auc != 1 {
		t.Fatalf("macro AUC = %g", auc)
	}
	pred := []int{0, 1, 2, 0}
	if f1 := MacroF1(pred, truth, 3); f1 != 1 {
		t.Fatalf("perfect F1 = %g", f1)
	}
	if f1 := MacroF1([]int{1, 0, 0, 1}, truth, 3); f1 >= 0.5 {
		t.Fatalf("bad F1 = %g", f1)
	}
}

func TestLogLoss(t *testing.T) {
	perfect := [][]float64{{1, 0}, {0, 1}}
	if got := LogLoss(perfect, []int{0, 1}); got > 1e-10 {
		t.Fatalf("perfect logloss = %g", got)
	}
	bad := [][]float64{{0, 1}}
	if got := LogLoss(bad, []int{0}); got < 10 {
		t.Fatalf("bad logloss = %g", got)
	}
}

func TestR2AndRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	if got := R2(pred, pred); got != 1 {
		t.Fatalf("identity R2 = %g", got)
	}
	if got := RMSE(pred, pred); got != 0 {
		t.Fatalf("identity RMSE = %g", got)
	}
	if got := R2([]float64{2, 2, 2}, []float64{1, 2, 3}); got >= 0.5 {
		t.Fatalf("mean-predictor R2 = %g", got)
	}
	if got := R2([]float64{5, 5}, []float64{5, 5}); got != 1 {
		t.Fatalf("constant truth exact pred R2 = %g", got)
	}
	if !math.IsNaN(RMSE(nil, nil)) {
		t.Fatal("empty RMSE must be NaN")
	}
}

func TestKNNMaxTrain(t *testing.T) {
	X, y := synthClass(500, 2, 0.5, 15)
	k := NewKNN(KNNConfig{K: 3, MaxTrain: 100})
	if err := k.FitClass(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if len(k.x) != 100 {
		t.Fatalf("stored rows = %d, want 100", len(k.x))
	}
}

func TestExtraTreesClassification(t *testing.T) {
	X, y := synthClass(600, 3, 0.5, 21)
	et := NewExtraTrees(ForestConfig{Trees: 30, Seed: 1})
	if err := et.FitClass(X, y, 3); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(et.PredictClass(X), y); acc < 0.85 {
		t.Fatalf("extra-trees accuracy = %g", acc)
	}
}

func TestExtraTreesRegression(t *testing.T) {
	X, y := synthReg(600, 0.2, 22)
	et := NewExtraTrees(ForestConfig{Trees: 40, Seed: 1})
	if err := et.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(et.Predict(X), y); r2 < 0.7 {
		t.Fatalf("extra-trees R2 = %g", r2)
	}
}

func TestSVMBinary(t *testing.T) {
	X, y := synthClass(500, 2, 0.6, 23)
	m := NewSVM(LinearConfig{Epochs: 10, Seed: 1})
	if err := m.FitClass(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m.PredictClass(X), y); acc < 0.9 {
		t.Fatalf("svm accuracy = %g", acc)
	}
}

func TestSVMMulticlass(t *testing.T) {
	X, y := synthClass(600, 4, 0.5, 24)
	m := NewSVM(LinearConfig{Epochs: 10, Seed: 1})
	if err := m.FitClass(X, y, 4); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m.PredictClass(X), y); acc < 0.85 {
		t.Fatalf("svm multiclass accuracy = %g", acc)
	}
}

func TestCrossValidateClass(t *testing.T) {
	X, y := synthClass(300, 2, 0.6, 25)
	scores, err := CrossValidateClass(X, y, 2, 5, 1, func(seed int64) interface {
		FitClass(X [][]float64, y []int, classes int) error
		Proba(X [][]float64) [][]float64
	} {
		return NewTree(TreeConfig{Seed: seed})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 5 {
		t.Fatalf("folds = %d", len(scores))
	}
	for _, s := range scores {
		if s < 0.8 {
			t.Fatalf("fold AUC = %g", s)
		}
	}
}

func TestModelErrorsExtra(t *testing.T) {
	if err := NewExtraTrees(ForestConfig{}).FitClass(nil, nil, 2); err == nil {
		t.Fatal("empty X must error")
	}
	if err := NewSVM(LinearConfig{}).FitClass([][]float64{{1}}, []int{0}, 1); err == nil {
		t.Fatal("1-class must error")
	}
}
