package ml

import (
	"math"
)

// NaiveBayes is a Gaussian naive-Bayes classifier.
type NaiveBayes struct {
	classes int
	prior   []float64
	mean    [][]float64
	vari    [][]float64
}

// NewNaiveBayes returns an empty Gaussian NB classifier.
func NewNaiveBayes() *NaiveBayes { return &NaiveBayes{} }

// FitClass estimates per-class feature means/variances and priors.
func (nb *NaiveBayes) FitClass(X [][]float64, y []int, classes int) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	if classes < 2 {
		return errClasses(classes)
	}
	nb.classes = classes
	d := len(X[0])
	nb.prior = make([]float64, classes)
	nb.mean = make([][]float64, classes)
	nb.vari = make([][]float64, classes)
	counts := make([]float64, classes)
	for c := 0; c < classes; c++ {
		nb.mean[c] = make([]float64, d)
		nb.vari[c] = make([]float64, d)
	}
	for i, row := range X {
		c := y[i]
		counts[c]++
		for j, v := range row {
			nb.mean[c][j] += v
		}
	}
	for c := 0; c < classes; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range nb.mean[c] {
			nb.mean[c][j] /= counts[c]
		}
	}
	for i, row := range X {
		c := y[i]
		for j, v := range row {
			dv := v - nb.mean[c][j]
			nb.vari[c][j] += dv * dv
		}
	}
	n := float64(len(y))
	for c := 0; c < classes; c++ {
		nb.prior[c] = (counts[c] + 1) / (n + float64(classes))
		for j := range nb.vari[c] {
			if counts[c] > 0 {
				nb.vari[c][j] /= counts[c]
			}
			if nb.vari[c][j] < 1e-9 {
				nb.vari[c][j] = 1e-9
			}
		}
	}
	return nil
}

// PredictClass returns argmax-posterior class indices.
func (nb *NaiveBayes) PredictClass(X [][]float64) []int {
	return predictFromProba(nb.Proba(X))
}

// Proba returns normalized class posteriors.
func (nb *NaiveBayes) Proba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		logp := make([]float64, nb.classes)
		for c := 0; c < nb.classes; c++ {
			lp := math.Log(nb.prior[c])
			for j, v := range row {
				if j >= len(nb.mean[c]) {
					break
				}
				m, va := nb.mean[c][j], nb.vari[c][j]
				lp += -0.5*math.Log(2*math.Pi*va) - (v-m)*(v-m)/(2*va)
			}
			logp[c] = lp
		}
		out[i] = softmaxLog(logp)
	}
	return out
}

// softmaxLog exponentiates log-probabilities stably and normalizes.
func softmaxLog(logp []float64) []float64 {
	maxv := logp[0]
	for _, v := range logp[1:] {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logp))
	var sum float64
	for i, v := range logp {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	if sum == 0 {
		sum = 1
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
