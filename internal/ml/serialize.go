package ml

import (
	"fmt"
)

// This file implements fitted-model serialization for the pipeline
// artifact path: Export captures everything a trained model needs at
// inference time into a flat, JSON-friendly FittedModel, and
// FittedModel.Model reconstructs a live model whose predictions are
// bit-identical to the original (the dumped parameters are the exact
// float64 values the fit produced, and Go's JSON encoder round-trips
// float64 losslessly). Training-only state (RNG seeds, bagging rows,
// binned matrices) is deliberately not serialized.

// Model kind tags stored in FittedModel.Kind.
const (
	KindForest     = "forest"
	KindExtraTrees = "extra_trees"
	KindTree       = "tree"
	KindGBM        = "gbm"
	KindKNN        = "knn"
	KindLogistic   = "logistic"
	KindLinear     = "linear"
	KindNaiveBayes = "naive_bayes"
	KindSVM        = "svm"
	KindTabPFN     = "tabpfn"
)

// FlatNode is one node of a flattened decision tree: children are
// indices into the node slice (-1 = absent), parents precede children,
// so a preorder walk reconstructs the tree and malformed child indices
// (<= parent) are rejected rather than looping.
type FlatNode struct {
	Feature   int       `json:"f"`
	Threshold float64   `json:"t"`
	Left      int       `json:"l"`
	Right     int       `json:"r"`
	Leaf      bool      `json:"leaf,omitempty"`
	Value     []float64 `json:"v,omitempty"`
}

// ScalerDump holds fitted standardization parameters.
type ScalerDump struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

// FittedModel is the serializable form of any trained model in the zoo.
// Only the fields relevant to Kind are populated; the rest stay at their
// zero values and are omitted from the encoding.
type FittedModel struct {
	Kind    string `json:"kind"`
	Classes int    `json:"classes,omitempty"` // 0 for regression

	// Tree ensembles (forest, extra_trees, tree, gbm regression chain).
	Trees [][]FlatNode `json:"trees,omitempty"`
	// GBM classification: per class, per boosting round.
	OVR          [][][]FlatNode `json:"ovr,omitempty"`
	Base         float64        `json:"base,omitempty"`
	Bias         []float64      `json:"bias,omitempty"`
	LearningRate float64        `json:"learning_rate,omitempty"`

	// Instance stores (knn, tabpfn) hold already-standardized rows.
	X         [][]float64 `json:"x,omitempty"`
	Yr        []float64   `json:"yr,omitempty"`
	Yc        []int       `json:"yc,omitempty"`
	K         int         `json:"k,omitempty"`
	Bandwidth float64     `json:"bandwidth,omitempty"`

	// Linear family.
	W     []float64   `json:"w,omitempty"`  // linear regression weights
	WC    [][]float64 `json:"wc,omitempty"` // logistic / svm per-class weights
	B     float64     `json:"b,omitempty"`
	BC    []float64   `json:"bc,omitempty"`
	YMean float64     `json:"y_mean,omitempty"`
	YStd  float64     `json:"y_std,omitempty"`

	// Gaussian naive Bayes.
	Prior []float64   `json:"prior,omitempty"`
	Mean  [][]float64 `json:"mean,omitempty"`
	Vari  [][]float64 `json:"vari,omitempty"`

	Scaler *ScalerDump `json:"scaler,omitempty"`
}

func flattenNode(n *treeNode, out *[]FlatNode) int {
	if n == nil {
		return -1
	}
	i := len(*out)
	*out = append(*out, FlatNode{})
	fn := FlatNode{Feature: n.feature, Threshold: n.threshold,
		Leaf: n.isLeaf, Value: n.value, Left: -1, Right: -1}
	fn.Left = flattenNode(n.left, out)
	fn.Right = flattenNode(n.right, out)
	(*out)[i] = fn
	return i
}

func flattenRandNode(n *randTree, out *[]FlatNode) int {
	if n == nil {
		return -1
	}
	i := len(*out)
	*out = append(*out, FlatNode{})
	fn := FlatNode{Feature: n.feature, Threshold: n.threshold,
		Leaf: n.isLeaf, Value: n.value, Left: -1, Right: -1}
	fn.Left = flattenRandNode(n.left, out)
	fn.Right = flattenRandNode(n.right, out)
	(*out)[i] = fn
	return i
}

func flattenTree(root *treeNode) []FlatNode {
	var out []FlatNode
	flattenNode(root, &out)
	return out
}

func flattenRandTree(root *randTree) []FlatNode {
	var out []FlatNode
	flattenRandNode(root, &out)
	return out
}

func checkChild(nodes []FlatNode, parent, child int) error {
	if child == -1 {
		return nil
	}
	if child <= parent || child >= len(nodes) {
		return fmt.Errorf("ml: malformed tree dump: node %d has child index %d (of %d nodes)",
			parent, child, len(nodes))
	}
	return nil
}

func unflattenNode(nodes []FlatNode, i int) (*treeNode, error) {
	if i < 0 {
		return nil, nil
	}
	fn := nodes[i]
	if err := checkChild(nodes, i, fn.Left); err != nil {
		return nil, err
	}
	if err := checkChild(nodes, i, fn.Right); err != nil {
		return nil, err
	}
	n := &treeNode{feature: fn.Feature, threshold: fn.Threshold,
		isLeaf: fn.Leaf, value: fn.Value}
	var err error
	if n.left, err = unflattenNode(nodes, fn.Left); err != nil {
		return nil, err
	}
	if n.right, err = unflattenNode(nodes, fn.Right); err != nil {
		return nil, err
	}
	return n, nil
}

func unflattenRandNode(nodes []FlatNode, i int) (*randTree, error) {
	if i < 0 {
		return nil, nil
	}
	fn := nodes[i]
	if err := checkChild(nodes, i, fn.Left); err != nil {
		return nil, err
	}
	if err := checkChild(nodes, i, fn.Right); err != nil {
		return nil, err
	}
	n := &randTree{feature: fn.Feature, threshold: fn.Threshold,
		isLeaf: fn.Leaf, value: fn.Value}
	var err error
	if n.left, err = unflattenRandNode(nodes, fn.Left); err != nil {
		return nil, err
	}
	if n.right, err = unflattenRandNode(nodes, fn.Right); err != nil {
		return nil, err
	}
	return n, nil
}

func unflattenTree(nodes []FlatNode) (*treeNode, error) {
	if len(nodes) == 0 {
		return nil, nil
	}
	return unflattenNode(nodes, 0)
}

func unflattenRandTree(nodes []FlatNode) (*randTree, error) {
	if len(nodes) == 0 {
		return nil, nil
	}
	return unflattenRandNode(nodes, 0)
}

func dumpScaler(s *scaler) *ScalerDump {
	if s == nil {
		return nil
	}
	return &ScalerDump{Mean: s.mean, Std: s.std}
}

func loadScaler(d *ScalerDump, kind string) (*scaler, error) {
	if d == nil {
		return nil, fmt.Errorf("ml: %s dump is missing its scaler", kind)
	}
	return &scaler{mean: d.Mean, std: d.Std}, nil
}

// Export captures a trained model's inference-time parameters. It errors
// on unknown model types and on models that have not been fitted.
func Export(m any) (*FittedModel, error) {
	switch v := m.(type) {
	case *Forest:
		if !v.Fitted() {
			return nil, fmt.Errorf("ml: cannot export unfitted forest")
		}
		fm := &FittedModel{Kind: KindForest, Classes: v.classes}
		for _, t := range v.trees {
			fm.Trees = append(fm.Trees, flattenTree(t.root))
		}
		return fm, nil
	case *ExtraTrees:
		if !v.Fitted() {
			return nil, fmt.Errorf("ml: cannot export unfitted extra-trees ensemble")
		}
		fm := &FittedModel{Kind: KindExtraTrees, Classes: v.classes}
		for _, t := range v.trees {
			fm.Trees = append(fm.Trees, flattenRandTree(t))
		}
		return fm, nil
	case *Tree:
		if v.root == nil {
			return nil, fmt.Errorf("ml: cannot export unfitted tree")
		}
		return &FittedModel{Kind: KindTree, Classes: v.classes,
			Trees: [][]FlatNode{flattenTree(v.root)}}, nil
	case *GBM:
		if !v.Fitted() {
			return nil, fmt.Errorf("ml: cannot export unfitted gbm")
		}
		fm := &FittedModel{Kind: KindGBM, Classes: v.classes,
			Base: v.base, Bias: v.bias, LearningRate: v.Config.LearningRate}
		for _, t := range v.trees {
			fm.Trees = append(fm.Trees, flattenTree(t.root))
		}
		for _, chain := range v.ovr {
			var flat [][]FlatNode
			for _, t := range chain {
				flat = append(flat, flattenTree(t.root))
			}
			fm.OVR = append(fm.OVR, flat)
		}
		return fm, nil
	case *KNN:
		if len(v.x) == 0 {
			return nil, fmt.Errorf("ml: cannot export unfitted knn")
		}
		return &FittedModel{Kind: KindKNN, Classes: v.classes,
			X: v.x, Yr: v.yr, Yc: v.yc, K: v.Config.K, Scaler: dumpScaler(v.sc)}, nil
	case *Logistic:
		if len(v.w) == 0 {
			return nil, fmt.Errorf("ml: cannot export unfitted logistic model")
		}
		return &FittedModel{Kind: KindLogistic, Classes: v.classes,
			WC: v.w, BC: v.b, Scaler: dumpScaler(v.sc)}, nil
	case *Linear:
		if v.sc == nil {
			return nil, fmt.Errorf("ml: cannot export unfitted linear model")
		}
		return &FittedModel{Kind: KindLinear, W: v.w, B: v.b,
			YMean: v.yMean, YStd: v.yStd, Scaler: dumpScaler(v.sc)}, nil
	case *NaiveBayes:
		if v.classes == 0 {
			return nil, fmt.Errorf("ml: cannot export unfitted naive-bayes model")
		}
		return &FittedModel{Kind: KindNaiveBayes, Classes: v.classes,
			Prior: v.prior, Mean: v.mean, Vari: v.vari}, nil
	case *SVM:
		if len(v.w) == 0 {
			return nil, fmt.Errorf("ml: cannot export unfitted svm")
		}
		return &FittedModel{Kind: KindSVM, Classes: v.classes,
			WC: v.w, BC: v.b, Scaler: dumpScaler(v.sc)}, nil
	case *TabPFNSim:
		if len(v.x) == 0 {
			return nil, fmt.Errorf("ml: cannot export unfitted tabpfn model")
		}
		return &FittedModel{Kind: KindTabPFN, Classes: v.classes,
			X: v.x, Yc: v.y, Bandwidth: v.bandwidth, Scaler: dumpScaler(v.sc)}, nil
	default:
		return nil, fmt.Errorf("ml: cannot export model of type %T", m)
	}
}

// Model reconstructs a live model from the dump. workers bounds the
// goroutines used for batch inference (0 = GOMAXPROCS, 1 = serial);
// it is a runtime knob and never part of the serialized state — models
// are bit-identical at any setting.
func (fm *FittedModel) Model(workers int) (any, error) {
	switch fm.Kind {
	case KindForest:
		f := NewForest(ForestConfig{Workers: workers})
		f.classes = fm.Classes
		for _, nodes := range fm.Trees {
			root, err := unflattenTree(nodes)
			if err != nil {
				return nil, err
			}
			t := NewTree(TreeConfig{})
			t.root, t.classes = root, fm.Classes
			f.trees = append(f.trees, t)
		}
		if len(f.trees) == 0 {
			return nil, fmt.Errorf("ml: forest dump has no trees")
		}
		return f, nil
	case KindExtraTrees:
		e := NewExtraTrees(ForestConfig{Workers: workers})
		e.classes = fm.Classes
		for _, nodes := range fm.Trees {
			root, err := unflattenRandTree(nodes)
			if err != nil {
				return nil, err
			}
			e.trees = append(e.trees, root)
		}
		if len(e.trees) == 0 {
			return nil, fmt.Errorf("ml: extra-trees dump has no trees")
		}
		return e, nil
	case KindTree:
		if len(fm.Trees) != 1 {
			return nil, fmt.Errorf("ml: tree dump needs exactly 1 tree, got %d", len(fm.Trees))
		}
		root, err := unflattenTree(fm.Trees[0])
		if err != nil {
			return nil, err
		}
		t := NewTree(TreeConfig{})
		t.root, t.classes = root, fm.Classes
		return t, nil
	case KindGBM:
		g := NewGBM(GBMConfig{LearningRate: fm.LearningRate, Workers: workers})
		g.classes = fm.Classes
		g.base = fm.Base
		g.bias = fm.Bias
		for _, nodes := range fm.Trees {
			root, err := unflattenTree(nodes)
			if err != nil {
				return nil, err
			}
			t := NewTree(TreeConfig{})
			t.root = root
			g.trees = append(g.trees, t)
		}
		for _, chain := range fm.OVR {
			var trees []*Tree
			for _, nodes := range chain {
				root, err := unflattenTree(nodes)
				if err != nil {
					return nil, err
				}
				t := NewTree(TreeConfig{})
				t.root = root
				trees = append(trees, t)
			}
			g.ovr = append(g.ovr, trees)
		}
		if len(g.trees) == 0 && len(g.ovr) == 0 {
			return nil, fmt.Errorf("ml: gbm dump has no trees")
		}
		if fm.Classes > 0 && len(g.ovr) != fm.Classes {
			return nil, fmt.Errorf("ml: gbm dump has %d OVR chains for %d classes", len(g.ovr), fm.Classes)
		}
		g.fitted = true
		return g, nil
	case KindKNN:
		sc, err := loadScaler(fm.Scaler, fm.Kind)
		if err != nil {
			return nil, err
		}
		k := NewKNN(KNNConfig{K: fm.K, Workers: workers})
		k.classes = fm.Classes
		k.x, k.yr, k.yc, k.sc = fm.X, fm.Yr, fm.Yc, sc
		if len(k.x) == 0 {
			return nil, fmt.Errorf("ml: knn dump has no stored rows")
		}
		return k, nil
	case KindLogistic:
		sc, err := loadScaler(fm.Scaler, fm.Kind)
		if err != nil {
			return nil, err
		}
		l := NewLogistic(LinearConfig{})
		l.classes = fm.Classes
		l.w, l.b, l.sc = fm.WC, fm.BC, sc
		return l, nil
	case KindLinear:
		sc, err := loadScaler(fm.Scaler, fm.Kind)
		if err != nil {
			return nil, err
		}
		l := NewLinear(LinearConfig{})
		l.w, l.b, l.sc, l.yMean, l.yStd = fm.W, fm.B, sc, fm.YMean, fm.YStd
		return l, nil
	case KindNaiveBayes:
		nb := NewNaiveBayes()
		nb.classes = fm.Classes
		nb.prior, nb.mean, nb.vari = fm.Prior, fm.Mean, fm.Vari
		if len(nb.prior) != fm.Classes {
			return nil, fmt.Errorf("ml: naive-bayes dump has %d priors for %d classes", len(nb.prior), fm.Classes)
		}
		return nb, nil
	case KindSVM:
		sc, err := loadScaler(fm.Scaler, fm.Kind)
		if err != nil {
			return nil, err
		}
		m := NewSVM(LinearConfig{})
		m.classes = fm.Classes
		m.w, m.b, m.sc = fm.WC, fm.BC, sc
		return m, nil
	case KindTabPFN:
		sc, err := loadScaler(fm.Scaler, fm.Kind)
		if err != nil {
			return nil, err
		}
		t := NewTabPFNSim()
		t.classes = fm.Classes
		t.x, t.y, t.sc, t.bandwidth = fm.X, fm.Yc, sc, fm.Bandwidth
		return t, nil
	default:
		return nil, fmt.Errorf("ml: unknown model kind %q", fm.Kind)
	}
}
