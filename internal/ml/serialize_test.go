package ml

import (
	"bytes"
	"encoding/json"
	"testing"
)

// roundTrip pushes a FittedModel through JSON and back, returning the
// reconstructed live model.
func roundTrip(t *testing.T, m any, workers int) any {
	t.Helper()
	fm, err := Export(m)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	blob, err := json.Marshal(fm)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back FittedModel
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	out, err := back.Model(workers)
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	return out
}

type prober interface {
	Proba(X [][]float64) [][]float64
}

type predictor interface {
	Predict(X [][]float64) []float64
}

func sameProba(t *testing.T, name string, a, b prober, X [][]float64) {
	t.Helper()
	pa, pb := a.Proba(X), b.Proba(X)
	if len(pa) != len(pb) {
		t.Fatalf("%s: proba row count %d vs %d", name, len(pa), len(pb))
	}
	for i := range pa {
		if len(pa[i]) != len(pb[i]) {
			t.Fatalf("%s row %d: class count %d vs %d", name, i, len(pa[i]), len(pb[i]))
		}
		for j := range pa[i] {
			if pa[i][j] != pb[i][j] {
				t.Fatalf("%s row %d class %d: %v != %v (not bit-identical)",
					name, i, j, pa[i][j], pb[i][j])
			}
		}
	}
}

func samePredict(t *testing.T, name string, a, b predictor, X [][]float64) {
	t.Helper()
	pa, pb := a.Predict(X), b.Predict(X)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("%s row %d: %v != %v (not bit-identical)", name, i, pa[i], pb[i])
		}
	}
}

func TestSerializeClassifiersRoundTrip(t *testing.T) {
	X, y := synthClass(400, 3, 0.6, 7)
	Xq, _ := synthClass(90, 3, 0.9, 8)
	cases := []struct {
		name string
		make func() interface {
			FitClass(X [][]float64, y []int, classes int) error
			Proba(X [][]float64) [][]float64
		}
	}{
		{"forest", func() interface {
			FitClass(X [][]float64, y []int, classes int) error
			Proba(X [][]float64) [][]float64
		} {
			return NewForest(ForestConfig{Trees: 12, Seed: 3})
		}},
		{"extra_trees", func() interface {
			FitClass(X [][]float64, y []int, classes int) error
			Proba(X [][]float64) [][]float64
		} {
			return NewExtraTrees(ForestConfig{Trees: 12, Seed: 3})
		}},
		{"tree", func() interface {
			FitClass(X [][]float64, y []int, classes int) error
			Proba(X [][]float64) [][]float64
		} {
			return NewTree(TreeConfig{Seed: 3})
		}},
		{"gbm", func() interface {
			FitClass(X [][]float64, y []int, classes int) error
			Proba(X [][]float64) [][]float64
		} {
			return NewGBM(GBMConfig{Rounds: 10, Seed: 3})
		}},
		{"knn", func() interface {
			FitClass(X [][]float64, y []int, classes int) error
			Proba(X [][]float64) [][]float64
		} {
			return NewKNN(KNNConfig{K: 5})
		}},
		{"logistic", func() interface {
			FitClass(X [][]float64, y []int, classes int) error
			Proba(X [][]float64) [][]float64
		} {
			return NewLogistic(LinearConfig{Epochs: 8, Seed: 3})
		}},
		{"naive_bayes", func() interface {
			FitClass(X [][]float64, y []int, classes int) error
			Proba(X [][]float64) [][]float64
		} {
			return NewNaiveBayes()
		}},
		{"svm", func() interface {
			FitClass(X [][]float64, y []int, classes int) error
			Proba(X [][]float64) [][]float64
		} {
			return NewSVM(LinearConfig{Epochs: 4, Seed: 3})
		}},
		{"tabpfn", func() interface {
			FitClass(X [][]float64, y []int, classes int) error
			Proba(X [][]float64) [][]float64
		} {
			return NewTabPFNSim()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.make()
			if err := m.FitClass(X, y, 3); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				back := roundTrip(t, m, workers).(prober)
				sameProba(t, tc.name, m, back, Xq)
			}
		})
	}
}

func TestSerializeRegressorsRoundTrip(t *testing.T) {
	X, y := synthReg(400, 0.3, 11)
	Xq, _ := synthReg(90, 0.8, 12)
	cases := []struct {
		name string
		make func() interface {
			Fit(X [][]float64, y []float64) error
			Predict(X [][]float64) []float64
		}
	}{
		{"forest", func() interface {
			Fit(X [][]float64, y []float64) error
			Predict(X [][]float64) []float64
		} {
			return NewForest(ForestConfig{Trees: 12, Seed: 3})
		}},
		{"extra_trees", func() interface {
			Fit(X [][]float64, y []float64) error
			Predict(X [][]float64) []float64
		} {
			return NewExtraTrees(ForestConfig{Trees: 12, Seed: 3})
		}},
		{"tree", func() interface {
			Fit(X [][]float64, y []float64) error
			Predict(X [][]float64) []float64
		} {
			return NewTree(TreeConfig{Seed: 3})
		}},
		{"gbm", func() interface {
			Fit(X [][]float64, y []float64) error
			Predict(X [][]float64) []float64
		} {
			return NewGBM(GBMConfig{Rounds: 10, Seed: 3})
		}},
		{"knn", func() interface {
			Fit(X [][]float64, y []float64) error
			Predict(X [][]float64) []float64
		} {
			return NewKNN(KNNConfig{K: 5})
		}},
		{"linear", func() interface {
			Fit(X [][]float64, y []float64) error
			Predict(X [][]float64) []float64
		} {
			return NewLinear(LinearConfig{Epochs: 30})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.make()
			if err := m.Fit(X, y); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				back := roundTrip(t, m, workers).(predictor)
				samePredict(t, tc.name, m, back, Xq)
			}
		})
	}
}

func TestSerializeDeterministicEncoding(t *testing.T) {
	X, y := synthClass(200, 2, 0.5, 5)
	f := NewForest(ForestConfig{Trees: 5, Seed: 1})
	if err := f.FitClass(X, y, 2); err != nil {
		t.Fatal(err)
	}
	fm, err := Export(f)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(fm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(fm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic across marshals")
	}
}

func TestSerializeRejectsUnfittedAndMalformed(t *testing.T) {
	if _, err := Export(NewForest(ForestConfig{})); err == nil {
		t.Fatal("expected error exporting unfitted forest")
	}
	if _, err := Export(42); err == nil {
		t.Fatal("expected error exporting unknown type")
	}
	// Child index pointing at or before its parent must be rejected, not
	// walked into a cycle.
	bad := &FittedModel{Kind: KindTree, Classes: 2, Trees: [][]FlatNode{{
		{Feature: 0, Threshold: 1, Left: 0, Right: -1},
	}}}
	if _, err := bad.Model(0); err == nil {
		t.Fatal("expected error for self-referential tree dump")
	}
	if _, err := (&FittedModel{Kind: "nope"}).Model(0); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}
