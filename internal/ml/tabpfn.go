package ml

import (
	"math"
)

// TabPFNSim mimics the behavioural profile of TabPFN (Hollmann et al.,
// ICLR'23) as used by CAAFE: excellent accuracy on *small* tabular
// classification problems with zero hyper-parameter tuning, but a hard
// capacity ceiling — the real model is a fixed transformer limited to about
// 1000 training rows / 100 features and runs out of memory beyond that.
// The simulation is a distance-weighted kernel classifier over standardized
// features, which shares those properties: strong small-sample behaviour
// and quadratic blow-up that we convert into an explicit ErrOutOfMemory.
type TabPFNSim struct {
	// MaxRows and MaxFeatures are the capacity ceiling; defaults 1200/100.
	MaxRows     int
	MaxFeatures int
	x           [][]float64
	y           []int
	classes     int
	sc          *scaler
	bandwidth   float64
}

// NewTabPFNSim returns a TabPFN-like classifier with default limits.
func NewTabPFNSim() *TabPFNSim { return &TabPFNSim{MaxRows: 1200, MaxFeatures: 100} }

// FitClass stores the training set; it fails with ErrOutOfMemory when the
// data exceeds the model's capacity, reproducing the paper's CAAFE-TabPFN
// failures on large/wide datasets (Tables 5 and 7).
func (t *TabPFNSim) FitClass(X [][]float64, y []int, classes int) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	if classes < 2 {
		return errClasses(classes)
	}
	maxRows, maxFeat := t.MaxRows, t.MaxFeatures
	if maxRows <= 0 {
		maxRows = 1200
	}
	if maxFeat <= 0 {
		maxFeat = 100
	}
	if len(X) > maxRows || len(X[0]) > maxFeat {
		return ErrOutOfMemory
	}
	t.classes = classes
	t.sc = fitScaler(X)
	t.x = make([][]float64, len(X))
	for i, row := range X {
		t.x[i] = t.sc.apply(row)
	}
	t.y = append([]int(nil), y...)
	// Median-heuristic bandwidth over a subsample.
	var dists []float64
	step := len(t.x)/64 + 1
	for i := 0; i < len(t.x); i += step {
		for j := i + step; j < len(t.x); j += step {
			dists = append(dists, l2(t.x[i], t.x[j]))
		}
	}
	t.bandwidth = 1
	if len(dists) > 0 {
		var sum float64
		for _, d := range dists {
			sum += d
		}
		t.bandwidth = sum / float64(len(dists))
		if t.bandwidth < 1e-6 {
			t.bandwidth = 1e-6
		}
	}
	return nil
}

func l2(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Sqrt(d)
}

// PredictClass returns kernel-vote class indices.
func (t *TabPFNSim) PredictClass(X [][]float64) []int {
	return predictFromProba(t.Proba(X))
}

// Proba returns Gaussian-kernel-weighted class distributions.
func (t *TabPFNSim) Proba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		rs := t.sc.apply(row)
		p := make([]float64, t.classes)
		var sum float64
		for j, tr := range t.x {
			d := l2(rs, tr) / t.bandwidth
			w := math.Exp(-d * d)
			p[t.y[j]] += w
			sum += w
		}
		if sum == 0 {
			for c := range p {
				p[c] = 1 / float64(t.classes)
			}
		} else {
			for c := range p {
				p[c] /= sum
			}
		}
		out[i] = p
	}
	return out
}
