package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// TreeConfig tunes CART construction.
type TreeConfig struct {
	MaxDepth      int // default 10
	MinLeaf       int // default 5
	MaxThresholds int // candidate split thresholds per feature; default 32
	// FeatureFrac is the fraction of features examined per split (random
	// forests use < 1). 0 means all features.
	FeatureFrac float64
	Seed        int64
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
	if c.MaxThresholds <= 0 {
		c.MaxThresholds = 32
	}
	return c
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	// leaf payload
	isLeaf bool
	value  []float64 // class distribution (classification) or 1-elem mean (regression)
}

// Tree is a CART decision tree usable for classification and regression.
type Tree struct {
	Config  TreeConfig
	root    *treeNode
	classes int // 0 for regression
}

// NewTree returns a tree with the given configuration.
func NewTree(cfg TreeConfig) *Tree { return &Tree{Config: cfg.withDefaults()} }

// Fit trains a regression tree.
func (t *Tree) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	t.classes = 0
	rng := rand.New(rand.NewSource(t.Config.Seed))
	idx := allRows(len(y))
	t.root = t.build(X, y, nil, idx, 0, rng)
	return nil
}

// FitClass trains a classification tree over integer labels in [0,classes).
func (t *Tree) FitClass(X [][]float64, y []int, classes int) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	if classes < 2 {
		return errClasses(classes)
	}
	t.classes = classes
	yf := make([]float64, len(y))
	for i, v := range y {
		yf[i] = float64(v)
	}
	rng := rand.New(rand.NewSource(t.Config.Seed))
	idx := allRows(len(y))
	t.root = t.build(X, yf, nil, idx, 0, rng)
	return nil
}

func errClasses(c int) error { return fmt.Errorf("ml: need at least 2 classes, got %d", c) }

// Predict returns per-row predictions: the mean for regression, the argmax
// class index (as float64) for classification.
func (t *Tree) Predict(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		v := t.leafValue(row)
		if t.classes > 0 {
			out[i] = float64(argmax(v))
		} else {
			out[i] = v[0]
		}
	}
	return out
}

// Proba returns normalized class distributions (classification trees only).
func (t *Tree) Proba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		v := t.leafValue(row)
		p := make([]float64, len(v))
		var sum float64
		for _, x := range v {
			sum += x
		}
		if sum == 0 {
			sum = 1
		}
		for j, x := range v {
			p[j] = x / sum
		}
		out[i] = p
	}
	return out
}

func (t *Tree) leafValue(row []float64) []float64 {
	n := t.root
	for n != nil && !n.isLeaf {
		if n.feature < len(row) && row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		if t.classes > 0 {
			return make([]float64, t.classes)
		}
		return []float64{0}
	}
	return n.value
}

func allRows(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// build grows a node over rows idx; sampleWeights may be nil.
func (t *Tree) build(X [][]float64, y []float64, w []float64, idx []int, depth int, rng *rand.Rand) *treeNode {
	if len(idx) == 0 {
		return nil
	}
	leaf := t.makeLeaf(y, w, idx)
	if depth >= t.Config.MaxDepth || len(idx) < 2*t.Config.MinLeaf || t.pure(y, idx) {
		return leaf
	}
	feat, thr, ok := t.bestSplit(X, y, idx, rng)
	if !ok {
		return leaf
	}
	var li, ri []int
	for _, r := range idx {
		if X[r][feat] <= thr {
			li = append(li, r)
		} else {
			ri = append(ri, r)
		}
	}
	if len(li) < t.Config.MinLeaf || len(ri) < t.Config.MinLeaf {
		return leaf
	}
	n := &treeNode{feature: feat, threshold: thr}
	n.left = t.build(X, y, w, li, depth+1, rng)
	n.right = t.build(X, y, w, ri, depth+1, rng)
	if n.left == nil || n.right == nil {
		return leaf
	}
	return n
}

func (t *Tree) pure(y []float64, idx []int) bool {
	first := y[idx[0]]
	for _, r := range idx[1:] {
		if y[r] != first {
			return false
		}
	}
	return true
}

func (t *Tree) makeLeaf(y []float64, w []float64, idx []int) *treeNode {
	if t.classes > 0 {
		dist := make([]float64, t.classes)
		for _, r := range idx {
			c := int(y[r])
			if c >= 0 && c < t.classes {
				dist[c]++
			}
		}
		return &treeNode{isLeaf: true, value: dist}
	}
	var sum float64
	for _, r := range idx {
		sum += y[r]
	}
	return &treeNode{isLeaf: true, value: []float64{sum / float64(len(idx))}}
}

// bestSplit scans (a sample of) features for the impurity-minimizing
// split using a sort-and-sweep: rows are ordered by feature value once and
// prefix statistics give each candidate boundary's gain in O(1).
func (t *Tree) bestSplit(X [][]float64, y []float64, idx []int, rng *rand.Rand) (feat int, thr float64, ok bool) {
	nf := len(X[0])
	feats := rng.Perm(nf)
	if t.Config.FeatureFrac > 0 && t.Config.FeatureFrac < 1 {
		k := int(float64(nf)*t.Config.FeatureFrac + 0.999)
		if k < 1 {
			k = 1
		}
		feats = feats[:k]
	}
	n := len(idx)
	bestGain := 0.0
	parentImp := t.impurity(y, idx)
	type vy struct{ v, y float64 }
	arr := make([]vy, n)
	// Classification sweep state.
	var leftCounts, rightCounts []float64
	if t.classes > 0 {
		leftCounts = make([]float64, t.classes)
		rightCounts = make([]float64, t.classes)
	}
	for _, f := range feats {
		for i, r := range idx {
			arr[i] = vy{X[r][f], y[r]}
		}
		sort.Slice(arr, func(a, b int) bool { return arr[a].v < arr[b].v })
		if arr[0].v == arr[n-1].v {
			continue // constant feature in this node
		}
		// Candidate boundaries: positions where the value changes,
		// subsampled to MaxThresholds.
		stride := 1
		if n > t.Config.MaxThresholds*2 {
			stride = n / t.Config.MaxThresholds
		}
		if t.classes > 0 {
			for c := range leftCounts {
				leftCounts[c] = 0
			}
			for c := range rightCounts {
				rightCounts[c] = 0
			}
			for i := 0; i < n; i++ {
				c := int(arr[i].y)
				if c >= 0 && c < t.classes {
					rightCounts[c]++
				}
			}
			nextEval := t.Config.MinLeaf
			for p := 1; p < n; p++ {
				c := int(arr[p-1].y)
				if c >= 0 && c < t.classes {
					leftCounts[c]++
					rightCounts[c]--
				}
				if p < nextEval || p < t.Config.MinLeaf || n-p < t.Config.MinLeaf {
					continue
				}
				if arr[p].v == arr[p-1].v {
					continue
				}
				nextEval = p + stride
				gL := giniFromCounts(leftCounts, float64(p))
				gR := giniFromCounts(rightCounts, float64(n-p))
				gain := parentImp - (float64(p)*gL+float64(n-p)*gR)/float64(n)
				if gain > bestGain+1e-12 {
					bestGain, feat, ok = gain, f, true
					thr = (arr[p-1].v + arr[p].v) / 2
				}
			}
			continue
		}
		// Regression sweep: prefix sums for variance.
		var sumL, sqL float64
		var sumR, sqR float64
		for i := 0; i < n; i++ {
			sumR += arr[i].y
			sqR += arr[i].y * arr[i].y
		}
		nextEval := t.Config.MinLeaf
		for p := 1; p < n; p++ {
			v := arr[p-1].y
			sumL += v
			sqL += v * v
			sumR -= v
			sqR -= v * v
			if p < nextEval || p < t.Config.MinLeaf || n-p < t.Config.MinLeaf {
				continue
			}
			if arr[p].v == arr[p-1].v {
				continue
			}
			nextEval = p + stride
			vL := varFromSums(sumL, sqL, float64(p))
			vR := varFromSums(sumR, sqR, float64(n-p))
			gain := parentImp - (float64(p)*vL+float64(n-p)*vR)/float64(n)
			if gain > bestGain+1e-12 {
				bestGain, feat, ok = gain, f, true
				thr = (arr[p-1].v + arr[p].v) / 2
			}
		}
	}
	return feat, thr, ok
}

func giniFromCounts(counts []float64, n float64) float64 {
	if n <= 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

func varFromSums(sum, sq, n float64) float64 {
	if n <= 0 {
		return 0
	}
	mean := sum / n
	v := sq/n - mean*mean
	if v < 0 {
		return 0
	}
	return v
}

// impurity is Gini for classification, variance for regression.
func (t *Tree) impurity(y []float64, idx []int) float64 {
	if t.classes > 0 {
		counts := make([]float64, t.classes)
		for _, r := range idx {
			c := int(y[r])
			if c >= 0 && c < t.classes {
				counts[c]++
			}
		}
		n := float64(len(idx))
		g := 1.0
		for _, c := range counts {
			p := c / n
			g -= p * p
		}
		return g
	}
	var sum, sq float64
	for _, r := range idx {
		sum += y[r]
		sq += y[r] * y[r]
	}
	n := float64(len(idx))
	mean := sum / n
	v := sq/n - mean*mean
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}
