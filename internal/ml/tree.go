package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Backend selects how a tree finds splits.
type Backend int

const (
	// BackendAuto uses the histogram backend for large fits and the exact
	// sort-and-sweep for small ones (the binning pass only pays for itself
	// past autoHistMinRows).
	BackendAuto Backend = iota
	// BackendExact sorts every feature at every node (the original path).
	BackendExact
	// BackendHist quantile-bins each feature once and finds splits by
	// histogram sweep, falling back to the exact sweep for nodes smaller
	// than ExactNodeSize.
	BackendHist
)

// TreeConfig tunes CART construction.
type TreeConfig struct {
	MaxDepth      int // default 10
	MinLeaf       int // default 5
	MaxThresholds int // exact backend: candidate thresholds per feature; default 32
	// FeatureFrac is the fraction of features examined per split (random
	// forests use < 1). 0 means all features.
	FeatureFrac float64
	Seed        int64
	// Backend selects exact vs histogram split finding (default auto).
	Backend Backend
	// MaxBins caps histogram bins per feature (default and max 256).
	MaxBins int
	// ExactNodeSize is the node size below which the histogram backend
	// switches to the exact sweep: once a node holds fewer rows than
	// bins, sorting them outright is cheaper than a 256-bin sweep.
	// Default 64.
	ExactNodeSize int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
	if c.MaxThresholds <= 0 {
		c.MaxThresholds = 32
	}
	if c.MaxBins <= 1 || c.MaxBins > maxHistBins {
		c.MaxBins = maxHistBins
	}
	if c.ExactNodeSize <= 0 {
		c.ExactNodeSize = 64
	}
	return c
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	// leaf payload
	isLeaf bool
	value  []float64 // class distribution (classification) or 1-elem mean (regression)
}

// Tree is a CART decision tree usable for classification and regression.
type Tree struct {
	Config  TreeConfig
	root    *treeNode
	classes int // 0 for regression
}

// NewTree returns a tree with the given configuration.
func NewTree(cfg TreeConfig) *Tree { return &Tree{Config: cfg.withDefaults()} }

// Fit trains a regression tree.
func (t *Tree) Fit(X [][]float64, y []float64) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	return t.fitRows(nil, X, y, 0, nil, nil)
}

// FitClass trains a classification tree over integer labels in [0,classes).
func (t *Tree) FitClass(X [][]float64, y []int, classes int) error {
	if err := checkXY(X, len(y)); err != nil {
		return err
	}
	if classes < 2 {
		return errClasses(classes)
	}
	yf := make([]float64, len(y))
	for i, v := range y {
		yf[i] = float64(v)
	}
	return t.fitRows(nil, X, yf, classes, nil, nil)
}

// FitBinned trains a regression tree over a shared binned matrix,
// restricted to rows (nil = all rows; duplicate indices implement
// bagging). Ensembles build the matrix once and hand it to every tree.
func (t *Tree) FitBinned(bm *BinnedMatrix, y []float64, rows []int) error {
	if err := checkBinned(bm, len(y)); err != nil {
		return err
	}
	return t.fitRows(bm, bm.raw, y, 0, rows, nil)
}

// FitClassBinned trains a classification tree over a shared binned matrix.
func (t *Tree) FitClassBinned(bm *BinnedMatrix, y []int, classes int, rows []int) error {
	if err := checkBinned(bm, len(y)); err != nil {
		return err
	}
	if classes < 2 {
		return errClasses(classes)
	}
	yf := make([]float64, len(y))
	for i, v := range y {
		yf[i] = float64(v)
	}
	return t.fitRows(bm, bm.raw, yf, classes, rows, nil)
}

func checkBinned(bm *BinnedMatrix, n int) error {
	if bm == nil || bm.rows == 0 {
		return fmt.Errorf("ml: empty binned matrix")
	}
	if bm.rows != n {
		return fmt.Errorf("ml: binned matrix has %d rows, y has %d", bm.rows, n)
	}
	return nil
}

// fitRows is the shared training entry point: bm may be nil (exact
// backend or auto-resolve), rows may be nil (all rows) or carry
// duplicates (bagging), and pred — regression only — captures each
// training row's leaf value during growth so boosting needs no
// re-traversal of X after each round.
func (t *Tree) fitRows(bm *BinnedMatrix, X [][]float64, yf []float64, classes int, rows []int, pred []float64) error {
	t.classes = classes
	if rows == nil {
		rows = allRows(len(yf))
	}
	if len(rows) == 0 {
		return fmt.Errorf("ml: no training rows")
	}
	if bm == nil {
		switch t.Config.Backend {
		case BackendHist:
			bm = NewBinnedMatrix(X, t.Config.MaxBins)
		case BackendAuto:
			if len(rows) >= autoHistMinRows {
				bm = NewBinnedMatrix(X, t.Config.MaxBins)
			}
		}
	} else if t.Config.Backend == BackendExact {
		bm = nil
	}
	g := newGrower(t, X, bm, yf, pred, rand.New(rand.NewSource(t.Config.Seed)))
	if classes > 0 {
		g.yc = make([]int16, len(yf))
		for i, v := range yf {
			c := int(v)
			if c < 0 || c >= classes {
				c = -1 // out-of-range labels are ignored, as in the exact sweep
			}
			g.yc[i] = int16(c)
		}
	}
	t.root = g.grow(rows, 0, nil)
	return nil
}

func errClasses(c int) error { return fmt.Errorf("ml: need at least 2 classes, got %d", c) }

// Predict returns per-row predictions: the mean for regression, the argmax
// class index (as float64) for classification.
func (t *Tree) Predict(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		v := t.leafValue(row)
		if t.classes > 0 {
			out[i] = float64(argmax(v))
		} else {
			out[i] = v[0]
		}
	}
	return out
}

// Proba returns normalized class distributions (classification trees only).
func (t *Tree) Proba(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		v := t.leafValue(row)
		p := make([]float64, len(v))
		var sum float64
		for _, x := range v {
			sum += x
		}
		if sum == 0 {
			sum = 1
		}
		for j, x := range v {
			p[j] = x / sum
		}
		out[i] = p
	}
	return out
}

func (t *Tree) leafValue(row []float64) []float64 {
	n := t.root
	for n != nil && !n.isLeaf {
		if n.feature < len(row) && row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		if t.classes > 0 {
			return make([]float64, t.classes)
		}
		return []float64{0}
	}
	return n.value
}

func allRows(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// bestSplit scans (a sample of) features for the impurity-minimizing
// split using a sort-and-sweep: rows are ordered by feature value once and
// prefix statistics give each candidate boundary's gain in O(1).
func (t *Tree) bestSplit(X [][]float64, y []float64, idx []int, rng *rand.Rand) (feat int, thr float64, ok bool) {
	nf := len(X[0])
	feats := rng.Perm(nf)
	if t.Config.FeatureFrac > 0 && t.Config.FeatureFrac < 1 {
		k := int(float64(nf)*t.Config.FeatureFrac + 0.999)
		if k < 1 {
			k = 1
		}
		feats = feats[:k]
	}
	n := len(idx)
	bestGain := 0.0
	parentImp := t.impurity(y, idx)
	type vy struct{ v, y float64 }
	arr := make([]vy, n)
	// Classification sweep state.
	var leftCounts, rightCounts []float64
	if t.classes > 0 {
		leftCounts = make([]float64, t.classes)
		rightCounts = make([]float64, t.classes)
	}
	for _, f := range feats {
		for i, r := range idx {
			arr[i] = vy{X[r][f], y[r]}
		}
		sort.Slice(arr, func(a, b int) bool { return arr[a].v < arr[b].v })
		if arr[0].v == arr[n-1].v {
			continue // constant feature in this node
		}
		// Candidate boundaries: positions where the value changes,
		// subsampled to MaxThresholds.
		stride := 1
		if n > t.Config.MaxThresholds*2 {
			stride = n / t.Config.MaxThresholds
		}
		if t.classes > 0 {
			for c := range leftCounts {
				leftCounts[c] = 0
			}
			for c := range rightCounts {
				rightCounts[c] = 0
			}
			for i := 0; i < n; i++ {
				c := int(arr[i].y)
				if c >= 0 && c < t.classes {
					rightCounts[c]++
				}
			}
			nextEval := t.Config.MinLeaf
			for p := 1; p < n; p++ {
				c := int(arr[p-1].y)
				if c >= 0 && c < t.classes {
					leftCounts[c]++
					rightCounts[c]--
				}
				if p < nextEval || p < t.Config.MinLeaf || n-p < t.Config.MinLeaf {
					continue
				}
				if arr[p].v == arr[p-1].v {
					continue
				}
				nextEval = p + stride
				gL := giniFromCounts(leftCounts, float64(p))
				gR := giniFromCounts(rightCounts, float64(n-p))
				gain := parentImp - (float64(p)*gL+float64(n-p)*gR)/float64(n)
				if gain > bestGain+1e-12 {
					bestGain, feat, ok = gain, f, true
					thr = (arr[p-1].v + arr[p].v) / 2
				}
			}
			continue
		}
		// Regression sweep: prefix sums for variance.
		var sumL, sqL float64
		var sumR, sqR float64
		for i := 0; i < n; i++ {
			sumR += arr[i].y
			sqR += arr[i].y * arr[i].y
		}
		nextEval := t.Config.MinLeaf
		for p := 1; p < n; p++ {
			v := arr[p-1].y
			sumL += v
			sqL += v * v
			sumR -= v
			sqR -= v * v
			if p < nextEval || p < t.Config.MinLeaf || n-p < t.Config.MinLeaf {
				continue
			}
			if arr[p].v == arr[p-1].v {
				continue
			}
			nextEval = p + stride
			vL := varFromSums(sumL, sqL, float64(p))
			vR := varFromSums(sumR, sqR, float64(n-p))
			gain := parentImp - (float64(p)*vL+float64(n-p)*vR)/float64(n)
			if gain > bestGain+1e-12 {
				bestGain, feat, ok = gain, f, true
				thr = (arr[p-1].v + arr[p].v) / 2
			}
		}
	}
	return feat, thr, ok
}

func giniFromCounts(counts []float64, n float64) float64 {
	if n <= 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

func varFromSums(sum, sq, n float64) float64 {
	if n <= 0 {
		return 0
	}
	mean := sum / n
	v := sq/n - mean*mean
	if v < 0 {
		return 0
	}
	return v
}

// impurity is Gini for classification, variance for regression.
func (t *Tree) impurity(y []float64, idx []int) float64 {
	if t.classes > 0 {
		counts := make([]float64, t.classes)
		for _, r := range idx {
			c := int(y[r])
			if c >= 0 && c < t.classes {
				counts[c]++
			}
		}
		n := float64(len(idx))
		g := 1.0
		for _, c := range counts {
			p := c / n
			g -= p * p
		}
		return g
	}
	var sum, sq float64
	for _, r := range idx {
		sum += y[r]
		sq += y[r] * y[r]
	}
	n := float64(len(idx))
	mean := sum / n
	v := sq/n - mean*mean
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}
