package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file holds the performance-analysis exporters over the span
// store: folded-stack flamegraph output (WriteFolded) and the
// critical-path report (CriticalPath / WriteCriticalPath). Both operate
// on Snapshot, so they work on live traces too — running spans carry
// their elapsed-so-far durations.

// WriteFolded renders the span tree in folded-stacks format — one
// "root;child;leaf <value>" line per distinct stack, value = the
// stack's aggregated self time in microseconds — the input format of
// flamegraph.pl and speedscope. Self time is a span's duration minus
// its children's (clamped at zero: concurrent children can sum past the
// parent), identical stacks aggregate, and lines sort lexicographically,
// so the output is deterministic under an injectable clock.
func (t *Tracer) WriteFolded(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans := t.Snapshot()
	childDur := map[int]time.Duration{}
	ids := map[int]bool{}
	for _, d := range spans {
		ids[d.ID] = true
	}
	parentOf := map[int]int{}
	for _, d := range spans {
		p := d.Parent
		if !ids[p] {
			p = 0 // orphans fold as roots, mirroring WriteTree
		}
		parentOf[d.ID] = p
		childDur[p] += d.Dur
	}
	stacks := map[string]int64{}
	var stackOf func(id int) string
	memo := map[int]string{}
	byID := map[int]SpanData{}
	for _, d := range spans {
		byID[d.ID] = d
	}
	stackOf = func(id int) string {
		if s, ok := memo[id]; ok {
			return s
		}
		d := byID[id]
		s := d.Name
		if p := parentOf[id]; p != 0 {
			s = stackOf(p) + ";" + s
		}
		memo[id] = s
		return s
	}
	for _, d := range spans {
		self := d.Dur - childDur[d.ID]
		if self < 0 {
			self = 0
		}
		stacks[stackOf(d.ID)] += self.Microseconds()
	}
	keys := make([]string, 0, len(stacks))
	for k := range stacks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, stacks[k]); err != nil {
			return err
		}
	}
	return nil
}

// PathNode is one hop of a critical path: the span, its full duration,
// and the share of wall time attributed to it (its duration minus the
// duration of the child the path continues through — for the last hop,
// its whole duration).
type PathNode struct {
	ID      int
	Name    string
	Start   time.Duration
	Dur     time.Duration
	Self    time.Duration
	Running bool
}

// CriticalPath walks the span hierarchy along the chain that determined
// the trace's wall time: starting from the latest-finishing root, each
// hop descends into the latest-finishing child — under the DAG wave
// scheduler that is the longest chain through the concurrent waves.
// Self on each node is its duration minus the chosen child's, so the
// Self column answers "where would shaving time actually shorten the
// run". Returns nil on an empty (or nil) tracer.
func (t *Tracer) CriticalPath() []PathNode {
	if t == nil {
		return nil
	}
	spans := t.Snapshot()
	if len(spans) == 0 {
		return nil
	}
	ids := map[int]bool{}
	for _, d := range spans {
		ids[d.ID] = true
	}
	children := map[int][]SpanData{}
	for _, d := range spans {
		p := d.Parent
		if !ids[p] {
			p = 0
		}
		children[p] = append(children[p], d)
	}
	// latest picks the latest-finishing span; ties resolve to the span
	// that started first (snapshot order), keeping the walk stable.
	latest := func(cands []SpanData) SpanData {
		best := cands[0]
		for _, c := range cands[1:] {
			if c.Start+c.Dur > best.Start+best.Dur {
				best = c
			}
		}
		return best
	}
	var path []PathNode
	cur := latest(children[0])
	for {
		node := PathNode{ID: cur.ID, Name: cur.Name, Start: cur.Start, Dur: cur.Dur, Self: cur.Dur, Running: cur.Running}
		kids := children[cur.ID]
		if len(kids) == 0 {
			path = append(path, node)
			return path
		}
		next := latest(kids)
		node.Self = cur.Dur - next.Dur
		if node.Self < 0 {
			node.Self = 0
		}
		path = append(path, node)
		cur = next
	}
}

// WriteCriticalPath renders CriticalPath as an indented report with each
// hop's total and attributed (self) time, plus self's share of the
// path root's duration.
func (t *Tracer) WriteCriticalPath(w io.Writer) error {
	if t == nil {
		return nil
	}
	path := t.CriticalPath()
	if len(path) == 0 {
		_, err := fmt.Fprintln(w, "critical path: no spans recorded")
		return err
	}
	total := path[0].Dur
	if _, err := fmt.Fprintf(w, "critical path: %d spans, %s wall time\n", len(path), total); err != nil {
		return err
	}
	width := 0
	for i, n := range path {
		if l := 2*i + len(n.Name); l > width {
			width = l
		}
	}
	for i, n := range path {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(n.Self) / float64(total)
		}
		marker := ""
		if n.Running {
			marker = "  [running]"
		}
		name := strings.Repeat(" ", 2*i) + n.Name
		if _, err := fmt.Fprintf(w, "  %s%s  total=%s self=%s (%s%%)%s\n",
			name, strings.Repeat(" ", width-len(name)+2), n.Dur, n.Self,
			strconv.FormatFloat(pct, 'f', 1, 64), marker); err != nil {
			return err
		}
	}
	return nil
}
