package obs

import (
	"bytes"
	"strings"
	"testing"
)

// buildWaveTrace records a DAG-wave-shaped tree under the stepping fake
// clock: run → exec → dag-wave → two dag-node children, so the folded
// output exercises stack aggregation and the critical path has a real
// longest chain to pick (the second node finishes later).
func buildWaveTrace() *Tracer {
	tr := NewWithClock(fakeClock()) // epoch consumes the 0ms reading
	run := tr.Root("run")           // start 1ms
	exec := run.Child("exec")       // start 2ms
	w := exec.Child("dag-wave")     // start 3ms
	n1 := w.Child("dag-node")       // start 4ms
	n1.End()                        // dur 1ms
	n2 := w.Child("dag-node")       // start 6ms
	n2.End()                        // dur 1ms, ends at 7ms (later than n1)
	w.End()                         // dur 5ms
	exec.End()                      // dur 7ms
	run.End()                       // dur 9ms
	return tr
}

func TestFoldedGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildWaveTrace().WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.folded.golden", buf.Bytes())
}

func TestFoldedAggregatesSiblingStacks(t *testing.T) {
	var buf bytes.Buffer
	if err := buildWaveTrace().WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The two 1ms dag-node spans share one stack line summing to 2000µs.
	if !strings.Contains(out, "run;exec;dag-wave;dag-node 2000\n") {
		t.Errorf("sibling stacks not aggregated:\n%s", out)
	}
	if got := strings.Count(out, "dag-node"); got != 1 {
		t.Errorf("dag-node appears on %d lines, want 1:\n%s", got, out)
	}
}

func TestCriticalPathGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildWaveTrace().WriteCriticalPath(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.critpath.golden", buf.Bytes())
}

func TestCriticalPathPicksLatestChild(t *testing.T) {
	path := buildWaveTrace().CriticalPath()
	want := []string{"run", "exec", "dag-wave", "dag-node"}
	if len(path) != len(want) {
		t.Fatalf("path length = %d, want %d (%+v)", len(path), len(want), path)
	}
	var selfSum, total int64
	for i, n := range path {
		if n.Name != want[i] {
			t.Errorf("path[%d] = %s, want %s", i, n.Name, want[i])
		}
		selfSum += int64(n.Self)
	}
	// The node chosen at the wave level must be the later-finishing
	// sibling (start 6ms), not the first one.
	if got := path[3].Start.Milliseconds(); got != 6 {
		t.Errorf("critical path chose dag-node starting at %dms, want 6ms", got)
	}
	// Self times attribute disjoint shares of the root's wall time; on a
	// pure chain they can never exceed it.
	total = int64(path[0].Dur)
	if selfSum > total {
		t.Errorf("sum of self times %d exceeds root duration %d", selfSum, total)
	}
}

func TestCriticalPathLiveTrace(t *testing.T) {
	tr := NewWithClock(fakeClock())
	run := tr.Root("run")
	gen := run.Child("generate")
	_ = gen // still open: the live path must mark it running
	path := tr.CriticalPath()
	if len(path) != 2 || path[1].Name != "generate" {
		t.Fatalf("live path = %+v, want run → generate", path)
	}
	if !path[1].Running {
		t.Error("open span not marked Running on the critical path")
	}
	if path[1].Dur <= 0 {
		t.Error("open span has no elapsed-so-far duration")
	}
	var buf bytes.Buffer
	if err := tr.WriteCriticalPath(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[running]") {
		t.Errorf("report missing running marker:\n%s", buf.String())
	}
}

func TestExportersNilAndEmpty(t *testing.T) {
	var nilTr *Tracer
	var buf bytes.Buffer
	if err := nilTr.WriteFolded(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteFolded: err=%v len=%d", err, buf.Len())
	}
	if err := nilTr.WriteCriticalPath(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteCriticalPath: err=%v len=%d", err, buf.Len())
	}
	if got := nilTr.CriticalPath(); got != nil {
		t.Errorf("nil CriticalPath = %+v, want nil", got)
	}
	empty := NewWithClock(fakeClock())
	if got := empty.CriticalPath(); got != nil {
		t.Errorf("empty CriticalPath = %+v, want nil", got)
	}
	buf.Reset()
	if err := empty.WriteCriticalPath(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no spans") {
		t.Errorf("empty report = %q", buf.String())
	}
}
