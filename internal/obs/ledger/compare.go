package ledger

import (
	"fmt"
	"sort"
	"strings"
)

// Regression is one flagged metric: the latest run of a configuration
// exceeded its baseline beyond the caller's threshold.
type Regression struct {
	Key      string  // ConfigHash|Dataset|Model group identity
	Dataset  string
	Model    string
	Metric   string  // "stage_seconds/exec", "tokens/total", ...
	Baseline float64
	Latest   float64
	Ratio    float64 // Latest / Baseline
}

func (r Regression) String() string {
	hash := r.Key
	if i := strings.IndexByte(hash, '|'); i >= 0 {
		hash = hash[:i]
	}
	if len(hash) > 8 {
		hash = hash[:8]
	}
	return fmt.Sprintf("%s %s/%s: %s %.3f -> %.3f (%.2fx)",
		r.Dataset, r.Model, hash, r.Metric, r.Baseline, r.Latest, r.Ratio)
}

// minCompareSeconds is the absolute floor below which stage-time
// deltas are noise, not regressions: a stage going 1ms -> 2ms doubles
// but means nothing on a warm cache.
const minCompareSeconds = 0.005

// Compare checks each configuration group's latest run against its
// baseline (the earliest record with the same Key). A stage time or
// the token total regresses when latest > baseline*(1+threshold);
// stage times additionally need the delta to clear an absolute ~5ms
// floor. Returns the regressions (deterministically ordered) and how
// many groups had both a baseline and a later run to compare.
func Compare(records []Record, threshold float64) (regs []Regression, compared int) {
	groups := map[string][]Record{}
	var order []string
	for _, r := range records {
		k := r.Key()
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	sort.Strings(order)
	for _, k := range order {
		g := groups[k]
		if len(g) < 2 {
			continue // no history to compare against
		}
		compared++
		base, last := g[0], g[len(g)-1]
		flag := func(metric string, bv, lv float64) {
			regs = append(regs, Regression{
				Key: k, Dataset: last.Dataset, Model: last.Model,
				Metric: metric, Baseline: bv, Latest: lv, Ratio: lv / bv,
			})
		}
		stages := make([]string, 0, len(base.StageSeconds))
		for s := range base.StageSeconds {
			stages = append(stages, s)
		}
		sort.Strings(stages)
		for _, s := range stages {
			bv, lv := base.StageSeconds[s], last.StageSeconds[s]
			if bv <= 0 {
				continue
			}
			if lv > bv*(1+threshold) && lv-bv > minCompareSeconds {
				flag("stage_seconds/"+s, bv, lv)
			}
		}
		if bt, lt := base.TotalTokens(), last.TotalTokens(); bt > 0 && float64(lt) > float64(bt)*(1+threshold) {
			flag("tokens/total", float64(bt), float64(lt))
		}
	}
	return regs, compared
}
