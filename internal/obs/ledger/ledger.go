// Package ledger is the persistent cross-run memory of the repo: an
// append-only JSONL file with one record per completed pipeline run
// (config hash, dataset, model, stage seconds, token counts, fix
// counts, final metric snapshot). Processes append through a Writer;
// the ops server's /api/runs endpoint and `benchjson -compare` read the
// file back to answer "how did this exact configuration run last time"
// across process lifetimes — the cross-run baseline the committed
// BENCH_*.json files otherwise fake by hand.
//
// Like internal/obs, the package is a leaf: it depends on nothing
// inside the repo, so every layer (core, bench, the CLIs, the ops
// server) can record into it.
package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
	"time"
)

// Record is one completed run. StageSeconds keys are the Table 8 stage
// names (profile, refine, generate, exec); Tokens keys are the cost
// directions (prompt, completion, error_prompt, error_completion);
// Metrics holds the final evaluation snapshot (test_acc, test_auc,
// test_r2, ...). All maps marshal with sorted keys, so records are
// deterministic given deterministic inputs.
type Record struct {
	// Time is the RFC3339 append timestamp — informational only, never
	// part of comparison identity. Writer.Append stamps it when empty.
	Time       string             `json:"time,omitempty"`
	ConfigHash string             `json:"config_hash"`
	Dataset    string             `json:"dataset"`
	Model      string             `json:"model"`
	Variant    string             `json:"variant,omitempty"`
	Seed       int64              `json:"seed"`
	StageSeconds map[string]float64 `json:"stage_seconds,omitempty"`
	Tokens       map[string]int     `json:"tokens,omitempty"`
	LLMCalls     int                `json:"llm_calls,omitempty"`
	Attempts     int                `json:"attempts,omitempty"`
	KBFixes      int                `json:"kb_fixes,omitempty"`
	LLMFixes     int                `json:"llm_fixes,omitempty"`
	Handcrafted  bool               `json:"handcrafted,omitempty"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

// Key is the comparison identity of a record: runs compare only within
// the same (config hash, dataset, model) group.
func (r Record) Key() string {
	return r.ConfigHash + "|" + r.Dataset + "|" + r.Model
}

// TotalSeconds sums the stage seconds.
func (r Record) TotalSeconds() float64 {
	t := 0.0
	for _, s := range r.StageSeconds {
		t += s
	}
	return t
}

// TotalTokens sums the token directions.
func (r Record) TotalTokens() int {
	t := 0
	for _, n := range r.Tokens {
		t += n
	}
	return t
}

// ConfigHash hashes the identifying parts of a run configuration into a
// short stable hex string (FNV-64a over the NUL-joined parts).
func ConfigHash(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Writer appends records to a ledger file. It is safe for concurrent
// use (the bench harness appends from pool workers); each record is one
// '\n'-terminated JSON line written in a single Write call on an
// O_APPEND descriptor. A nil *Writer is a valid disabled writer.
type Writer struct {
	mu   sync.Mutex
	f    *os.File
	path string
	err  error // first append failure, reported by Close
	now  func() time.Time
}

// OpenWriter opens (creating if needed) the ledger file for appending.
func OpenWriter(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: open %s: %w", path, err)
	}
	return &Writer{f: f, path: path, now: time.Now}, nil
}

// Path returns the ledger file path ("" on nil).
func (w *Writer) Path() string {
	if w == nil {
		return ""
	}
	return w.path
}

// Append writes one record as a JSON line, stamping Time when empty.
// The first failure is also retained and re-reported by Close, so
// callers appending from hot paths may ignore the per-call error.
func (w *Writer) Append(rec Record) error {
	if w == nil {
		return nil
	}
	if rec.Time == "" {
		rec.Time = w.now().UTC().Format(time.RFC3339)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return w.keep(fmt.Errorf("ledger: marshal: %w", err))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(append(b, '\n')); err != nil {
		return w.keepLocked(fmt.Errorf("ledger: append %s: %w", w.path, err))
	}
	return nil
}

func (w *Writer) keep(err error) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.keepLocked(err)
}

func (w *Writer) keepLocked(err error) error {
	if w.err == nil {
		w.err = err
	}
	return err
}

// Close closes the file and returns the first append error, if any.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	cerr := w.f.Close()
	if w.err != nil {
		return w.err
	}
	return cerr
}

// Read parses ledger records from a JSONL stream in file order. Blank
// lines are skipped; a malformed line fails with its line number so a
// corrupt ledger is diagnosable.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("ledger: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ledger: read: %w", err)
	}
	return out, nil
}

// ReadFile reads a whole ledger file. A missing file is an empty
// ledger, not an error — the first run of a process has no history.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ledger: %w", err)
	}
	defer f.Close()
	return Read(f)
}
