package ledger

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	return func() time.Time { return time.Unix(1700000000, 0) }
}

func baseRecord() Record {
	return Record{
		ConfigHash: ConfigHash("CMC", "gpt-4o", "CatDB", "42"),
		Dataset:    "CMC",
		Model:      "gpt-4o",
		Variant:    "CatDB",
		Seed:       42,
		StageSeconds: map[string]float64{
			"profile":  0.8,
			"generate": 2.0,
			"exec":     1.0,
		},
		Tokens:   map[string]int{"prompt": 1200, "completion": 400},
		LLMCalls: 2,
		Attempts: 1,
		Metrics:  map[string]float64{"test_acc": 0.71},
	}
}

func TestWriterAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	w, err := OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	w.now = fixedClock()
	rec := baseRecord()
	if err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-opening appends, never truncates: the ledger is cross-process.
	w2, err := OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	w2.now = fixedClock()
	rec2 := baseRecord()
	rec2.StageSeconds["exec"] = 1.01
	if err := w2.Append(rec2); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records, want 2", len(got))
	}
	if got[0].ConfigHash != rec.ConfigHash || got[0].Dataset != "CMC" {
		t.Errorf("round trip mangled record: %+v", got[0])
	}
	if got[0].Time == "" {
		t.Error("Append did not stamp Time")
	}
	if got[1].StageSeconds["exec"] != 1.01 {
		t.Errorf("second append lost data: %+v", got[1])
	}
	if got[0].Key() != got[1].Key() {
		t.Error("same config hashed to different keys")
	}
}

func TestReadFileMissingIsEmpty(t *testing.T) {
	got, err := ReadFile(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || got != nil {
		t.Errorf("missing ledger: got %v, %v; want nil, nil", got, err)
	}
}

func TestReadRejectsCorruptLineWithNumber(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := os.WriteFile(path, []byte("{\"config_hash\":\"a\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("corrupt line error = %v, want line 2 mentioned", err)
	}
}

func TestConfigHashStableAndDistinct(t *testing.T) {
	a := ConfigHash("CMC", "gpt-4o", "CatDB", "42")
	if b := ConfigHash("CMC", "gpt-4o", "CatDB", "42"); a != b {
		t.Errorf("same parts hashed differently: %s vs %s", a, b)
	}
	if c := ConfigHash("CMC", "gpt-4o", "CatDB", "43"); a == c {
		t.Error("different seeds collided")
	}
	// The NUL joiner keeps part boundaries significant.
	if d := ConfigHash("CM", "Cgpt-4o", "CatDB", "42"); a == d {
		t.Error("shifted part boundary collided")
	}
	if len(a) != 16 {
		t.Errorf("hash %q not 16 hex chars", a)
	}
}

// TestCompareFlagsStageRegression is the acceptance check: a synthetic
// 20% exec-stage regression is flagged at a 10% threshold while an
// unchanged run passes clean.
func TestCompareFlagsStageRegression(t *testing.T) {
	base := baseRecord()
	same := baseRecord()
	regs, compared := Compare([]Record{base, same}, 0.10)
	if compared != 1 {
		t.Errorf("compared = %d, want 1", compared)
	}
	if len(regs) != 0 {
		t.Errorf("unchanged run flagged: %+v", regs)
	}

	slow := baseRecord()
	slow.StageSeconds["exec"] = base.StageSeconds["exec"] * 1.20
	regs, compared = Compare([]Record{base, slow}, 0.10)
	if compared != 1 {
		t.Fatalf("compared = %d, want 1", compared)
	}
	if len(regs) != 1 {
		t.Fatalf("20%% exec regression produced %d flags, want 1: %+v", len(regs), regs)
	}
	r := regs[0]
	if r.Metric != "stage_seconds/exec" {
		t.Errorf("flagged metric = %s, want stage_seconds/exec", r.Metric)
	}
	if r.Ratio < 1.19 || r.Ratio > 1.21 {
		t.Errorf("ratio = %v, want ~1.20", r.Ratio)
	}
	if !strings.Contains(r.String(), "CMC gpt-4o") {
		t.Errorf("regression string unhelpful: %s", r.String())
	}
}

func TestCompareBaselineIsEarliestLatestIsLast(t *testing.T) {
	base := baseRecord()
	mid := baseRecord()
	mid.StageSeconds["exec"] = 5 // a bad middle run must not become the baseline
	fixedLater := baseRecord()
	regs, _ := Compare([]Record{base, mid, fixedLater}, 0.10)
	if len(regs) != 0 {
		t.Errorf("recovered run still flagged against earliest baseline: %+v", regs)
	}
}

func TestCompareTokenRegressionAndNoiseFloor(t *testing.T) {
	base := baseRecord()
	chatty := baseRecord()
	chatty.Tokens = map[string]int{"prompt": 1200, "completion": 400, "error_prompt": 900}
	regs, _ := Compare([]Record{base, chatty}, 0.10)
	if len(regs) != 1 || regs[0].Metric != "tokens/total" {
		t.Errorf("token regression not flagged: %+v", regs)
	}

	// A doubled but sub-5ms stage is noise, not a regression.
	tiny := baseRecord()
	tiny.StageSeconds = map[string]float64{"profile": 0.001}
	tinySlow := baseRecord()
	tinySlow.StageSeconds = map[string]float64{"profile": 0.002}
	tinySlow.Tokens = base.Tokens
	regs, _ = Compare([]Record{tiny, tinySlow}, 0.10)
	if len(regs) != 0 {
		t.Errorf("sub-floor stage delta flagged: %+v", regs)
	}
}

func TestCompareGroupsByConfig(t *testing.T) {
	a := baseRecord()
	b := baseRecord()
	b.Model = "llama3.1-70b"
	b.ConfigHash = ConfigHash("CMC", "llama3.1-70b", "CatDB", "42")
	b.StageSeconds["exec"] = 100 // other config: never compared against a
	regs, compared := Compare([]Record{a, b}, 0.10)
	if compared != 0 || len(regs) != 0 {
		t.Errorf("cross-config comparison happened: compared=%d regs=%+v", compared, regs)
	}
}

func TestWriterConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	w, err := OpenWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rec := baseRecord()
			rec.Seed = seed
			_ = w.Append(rec)
		}(int64(i))
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("interleaved writes corrupted the ledger: %v", err)
	}
	if len(got) != n {
		t.Errorf("read %d records, want %d", len(got), n)
	}
}

func TestNilWriterIsDisabled(t *testing.T) {
	var w *Writer
	if err := w.Append(baseRecord()); err != nil {
		t.Errorf("nil Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if w.Path() != "" {
		t.Errorf("nil Path = %q", w.Path())
	}
}
