package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a race-safe metrics registry: counters, gauges, and
// bounded-bucket histograms, identified by name plus a sorted label set.
// WriteProm renders the whole registry as Prometheus-style text with a
// stable ordering (families by name, series by label string), so the
// exposition is golden-file testable.
//
// A nil *Registry is a valid disabled registry: accessors return nil
// instruments whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// promEscaper escapes a label value per the Prometheus text exposition
// format: only backslash, double-quote, and newline are escaped. Go's
// strconv.Quote is NOT usable here — its \xNN/\uNNNN escapes for control
// and non-ASCII bytes are invalid exposition syntax (Prometheus label
// values are raw UTF-8).
var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labelSet canonicalizes "k1", "v1", "k2", "v2" pairs: sorted by key,
// rendered once into the {k="v",...} form used both as map key suffix and
// exposition. An odd trailing key is dropped.
func labelSet(kv []string) string {
	if len(kv) < 2 {
		return ""
	}
	n := len(kv) / 2
	pairs := make([][2]string, n)
	for i := 0; i < n; i++ {
		pairs[i] = [2]string{kv[2*i], kv[2*i+1]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p[0])
		b.WriteString(`="`)
		promEscaper.WriteString(&b, p[1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v      atomic.Int64
	name   string
	labels string
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric.
type Gauge struct {
	v      atomic.Int64
	name   string
	labels string
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (no-op on nil).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Max raises the gauge to v if v is larger (CAS loop; no-op on nil).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded-bucket distribution: observations land in the
// first bucket whose upper bound is >= v, with an implicit +Inf bucket.
type Histogram struct {
	mu     sync.Mutex
	name   string
	labels string
	bounds []float64
	counts []int64 // len(bounds)+1; last = +Inf
	sum    float64
	count  int64
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the interpolated p-quantile (0 <= p <= 1) from the
// bucket counts, mirroring PromQL's histogram_quantile: rank position
// p*count is located in the cumulative bucket counts and linearly
// interpolated within the bucket, with the first bucket's lower edge
// taken as 0 when its bound is positive (its own bound otherwise) and
// observations in the +Inf bucket reported as the highest finite bound.
// Returns NaN on a nil or empty histogram.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return math.NaN()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.count)
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			} else if bound <= 0 {
				lower = bound
			}
			inBucket := h.counts[i]
			if inBucket == 0 {
				return bound
			}
			frac := (rank - float64(cum-inBucket)) / float64(inBucket)
			return lower + (bound-lower)*frac
		}
	}
	// The rank lands in the +Inf bucket: the best bounded answer is the
	// highest finite bound (PromQL does the same).
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// Counter returns (creating on first use) the counter with the given name
// and label pairs ("k1", "v1", "k2", "v2", ...). Nil registry returns a
// nil no-op counter.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	labels := labelSet(kv)
	key := name + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{name: name, labels: labels}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge with the given name and
// label pairs. Nil registry returns a nil no-op gauge.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	labels := labelSet(kv)
	key := name + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{name: name, labels: labels}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram with the given
// name, bucket upper bounds, and label pairs. The bounds of the first
// creation win; they must be sorted ascending. Nil registry returns a nil
// no-op histogram.
func (r *Registry) Histogram(name string, bounds []float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	labels := labelSet(kv)
	key := name + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[key]
	if !ok {
		h = &Histogram{
			name: name, labels: labels,
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[key] = h
	}
	return h
}

// WriteProm renders the registry as Prometheus text exposition with
// deterministic ordering: families sorted by name (counters, then gauges,
// then histograms, interleaved by name), series sorted by label string.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type series struct {
		labels string
		render func(io.Writer, string, string) error
	}
	families := map[string]struct {
		typ    string
		series []series
	}{}
	addSeries := func(name, typ, labels string, render func(io.Writer, string, string) error) {
		f := families[name]
		f.typ = typ
		f.series = append(f.series, series{labels: labels, render: render})
		families[name] = f
	}
	for _, c := range r.counters {
		c := c
		addSeries(c.name, "counter", c.labels, func(w io.Writer, name, labels string) error {
			_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, c.Value())
			return err
		})
	}
	for _, g := range r.gauges {
		g := g
		addSeries(g.name, "gauge", g.labels, func(w io.Writer, name, labels string) error {
			_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, g.Value())
			return err
		})
	}
	for _, h := range r.hists {
		h := h
		addSeries(h.name, "histogram", h.labels, func(w io.Writer, name, labels string) error {
			h.mu.Lock()
			defer h.mu.Unlock()
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i]
				if err := writeBucket(w, name, labels, strconv.FormatFloat(b, 'g', -1, 64), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)]
			if err := writeBucket(w, name, labels, "+Inf", cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels,
				strconv.FormatFloat(h.sum, 'g', -1, 64)); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count)
			return err
		})
	}
	r.mu.Unlock()

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := families[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.typ); err != nil {
			return err
		}
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for _, s := range f.series {
			if err := s.render(w, n, s.labels); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeBucket emits one cumulative histogram bucket line, splicing the
// le label into the (possibly empty) label set. The splice only trims
// the trailing '}' of a labelSet rendering, so it stays valid for any
// escaped label values; le itself is a float rendering ("+Inf" or
// strconv.FormatFloat) and never needs escaping.
func writeBucket(w io.Writer, name, labels, le string, cum int64) error {
	withLE := `{le="` + le + `"}`
	if labels != "" {
		withLE = labels[:len(labels)-1] + `,le="` + le + `"}`
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLE, cum)
	return err
}
