// Package obs is the observability substrate of the repo: hierarchical
// span tracing (Tracer/Span) and a metrics registry (Registry) with
// Prometheus-style text exposition. It is a leaf package — everything
// else (core, llm, profile, pool, pipescript, bench, the CLIs) records
// into it, and it depends on nothing inside the repo.
//
// Two invariants shape the design:
//
//   - The disabled fast path is free. Every method is safe on a nil
//     *Tracer, *Span, *Registry, *Counter, *Gauge, or *Histogram and does
//     no work and no allocation, so instrumented code paths need no
//     conditionals and untraced runs stay bit-identical to the
//     pre-instrumentation code.
//
//   - Exporter output is deterministic. Spans export in start order (a
//     process-wide mutex assigns IDs), attributes and metric series sort
//     by key, and the clock is injectable (NewWithClock), so exporters
//     are golden-file testable.
package obs

import "time"

// Now is the single wall-clock source for stage timing outside the
// tracer's injectable clock. internal/core is forbidden (make lint-obs)
// from calling time.Now directly — stage accounting flows through obs so
// the spans and the Result duration fields cannot drift apart.
func Now() time.Time { return time.Now() }

// Since returns the elapsed wall-clock time since t.
func Since(t time.Time) time.Duration { return time.Since(t) }

// DefBuckets are the default latency histogram bounds in seconds,
// spanning sub-millisecond span overheads to multi-minute AutoML budgets.
var DefBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}
