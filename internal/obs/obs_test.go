package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock steps 1ms per reading, making span offsets and durations
// reproducible. The tracer serializes clock reads under its mutex.
func fakeClock() func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * time.Millisecond)
		n++
		return t
	}
}

// buildTestTrace records a fixed span tree with every attribute type.
func buildTestTrace() *Tracer {
	tr := NewWithClock(fakeClock())
	run := tr.Root("run")
	run.SetStr("dataset", "CMC")
	run.SetStr("model", "gpt-4o")
	prof := run.Child("profile")
	prof.SetBool("cacheHit", false)
	prof.End()
	gen := run.Child("generate")
	gen.SetStr("kind", "pipeline")
	gen.SetInt("promptTokens", 1234)
	att := gen.Child("debug-attempt")
	att.SetInt("attempt", 1)
	att.SetStr("category", "SE")
	att.SetStr("fixedBy", "kb")
	att.SetInt("tokens", 0)
	att.End()
	gen.End()
	exec := run.Child("exec")
	exec.SetFloat("score", 87.5)
	exec.End()
	run.End()
	return tr
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestTraceGoldenJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestTrace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.jsonl.golden", buf.Bytes())
}

func TestTraceGoldenTree(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestTrace().WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.tree.golden", buf.Bytes())
}

func buildTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("catdb_llm_calls_total", "model", "gpt-4o").Add(3)
	reg.Counter("catdb_llm_calls_total", "model", "llama3.1-70b").Inc()
	reg.Counter("catdb_fixes_total", "by", "kb", "category", "SE").Add(2)
	reg.Gauge("catdb_pool_queue_depth").Set(7)
	reg.Gauge("catdb_pool_workers_peak").Max(4)
	reg.Gauge("catdb_pool_workers_peak").Max(2) // lower: must not win
	h := reg.Histogram("catdb_stage_seconds", []float64{0.1, 1, 10}, "stage", "profile")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.1) // boundary lands in the le="0.1" bucket
	h.Observe(99)
	return reg
}

func TestMetricsGoldenProm(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom.golden", buf.Bytes())
}

// TestMetricsEscapingGoldenProm pins the exposition-format escaping of
// hostile label values: quotes, backslashes, newlines, and non-ASCII
// must come out as spec escapes (\" \\ \n) and raw UTF-8 — never Go's
// \xNN/\uNNNN forms, which Prometheus rejects.
func TestMetricsEscapingGoldenProm(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("catdb_errors_total", "msg", "cannot parse \"train\" stmt").Inc()
	reg.Counter("catdb_errors_total", "msg", `path C:\data\x.csv`).Add(2)
	reg.Counter("catdb_errors_total", "msg", "line one\nline two").Inc()
	reg.Gauge("catdb_variant_info", "variant", "CatDB τ₂=15 β>1").Set(1)
	h := reg.Histogram("catdb_quoted_seconds", []float64{1}, "q", `both " and \ here`)
	h.Observe(0.5)
	h.Observe(2)
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	// The non-ASCII value must pass through as raw UTF-8, not \uNNNN.
	if !strings.Contains(buf.String(), `variant="CatDB τ₂=15 β>1"`) {
		t.Errorf("unicode label value not raw UTF-8:\n%s", buf.String())
	}
	checkGolden(t, "metrics.escaping.prom.golden", buf.Bytes())
}

func TestHistogramSumAndQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 8} {
		h.Observe(v)
	}
	if got := h.Sum(); got != 14.5 {
		t.Errorf("Sum = %v, want 14.5", got)
	}
	// rank 2.5 lands in the (1,2] bucket holding 2 observations after a
	// cumulative 1: interpolate 1 + (2-1)*(2.5-1)/2 = 1.75.
	if got := h.Quantile(0.5); got != 1.75 {
		t.Errorf("Quantile(0.5) = %v, want 1.75", got)
	}
	// p=1 lands in the +Inf bucket: report the highest finite bound.
	if got := h.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
	empty := reg.Histogram("empty_seconds", []float64{1})
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty Quantile = %v, want NaN", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("nil Quantile = %v, want NaN", got)
	}
	if got := nilH.Sum(); got != 0 {
		t.Errorf("nil Sum = %v, want 0", got)
	}
}

// TestSnapshotMarksRunningSpans pins the live-view contract: open spans
// snapshot with Running=true and an elapsed-so-far duration, and the
// JSONL export carries the running flag; ended spans never do.
func TestSnapshotMarksRunningSpans(t *testing.T) {
	tr := NewWithClock(fakeClock())
	run := tr.Root("run")   // start 0ms
	gen := run.Child("gen") // start 1ms
	gen.End()               // dur 1ms
	snap := tr.Snapshot()   // clock now at 3ms
	if snap[0].Name != "run" || !snap[0].Running {
		t.Fatalf("open root not marked running: %+v", snap[0])
	}
	if got := snap[0].Dur.Milliseconds(); got != 3 {
		t.Errorf("running span Dur = %dms, want elapsed-so-far 3ms", got)
	}
	if snap[1].Running {
		t.Errorf("ended span marked running: %+v", snap[1])
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[0], `"running":true`) {
		t.Errorf("open span JSONL missing running flag: %s", lines[0])
	}
	if strings.Contains(lines[1], "running") {
		t.Errorf("ended span JSONL carries running flag: %s", lines[1])
	}
	run.End()
	for _, d := range tr.Snapshot() {
		if d.Running {
			t.Errorf("span %q still running after End", d.Name)
		}
	}
}

func TestPromExpositionDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	reg := buildTestRegistry()
	if err := reg.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two expositions of the same registry differ")
	}
}

func TestMetricIdentityIgnoresLabelOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "a", "1", "b", "2").Inc()
	reg.Counter("x_total", "b", "2", "a", "1").Inc()
	if got := reg.Counter("x_total", "a", "1", "b", "2").Value(); got != 2 {
		t.Errorf("label order fragmented the counter: got %d, want 2", got)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", []float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 3, 3} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`h_seconds_bucket{le="1"} 1`,
		`h_seconds_bucket{le="2"} 2`,
		`h_seconds_bucket{le="+Inf"} 4`,
		`h_seconds_sum 8`,
		`h_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestNilFastPath pins the disabled path: every tracer/span/registry
// operation on nil receivers must be a no-op and allocation-free, so
// uninstrumented runs pay nothing.
func TestNilFastPath(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Root("run")
		child := sp.Child("stage")
		child.SetStr("k", "v")
		child.SetInt("n", 1)
		child.SetBool("b", true)
		child.SetFloat("f", 0.5)
		child.End()
		sp.End()
		reg.Counter("c_total").Inc()
		reg.Gauge("g").Set(1)
		reg.Histogram("h", DefBuckets).Observe(1)
		_ = tr.Snapshot()
		_ = tr.Len()
	})
	if allocs != 0 {
		t.Errorf("nil fast path allocated %v times per run, want 0", allocs)
	}
	if err := tr.WriteJSONL(os.Stderr); err != nil {
		t.Errorf("nil tracer WriteJSONL: %v", err)
	}
	if err := tr.WriteTree(os.Stderr); err != nil {
		t.Errorf("nil tracer WriteTree: %v", err)
	}
	if err := reg.WriteProm(os.Stderr); err != nil {
		t.Errorf("nil registry WriteProm: %v", err)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewWithClock(fakeClock())
	sp := tr.Root("x")
	sp.End()
	first := tr.Snapshot()[0].Dur
	sp.End()
	if got := tr.Snapshot()[0].Dur; got != first {
		t.Errorf("second End changed duration: %v -> %v", first, got)
	}
}

func TestTreeRendersOrphansAsRoots(t *testing.T) {
	tr := NewWithClock(fakeClock())
	parent := tr.Root("root")
	child := parent.Child("child")
	child.End()
	parent.End()
	// Fabricate an orphan by snapshotting a tracer whose parent span ids
	// never appear: simplest is a child of an ended span from another
	// tracer — not constructible via the API, so instead verify the tree
	// renders every span exactly once.
	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "root") != 1 || strings.Count(out, "child") != 1 {
		t.Errorf("tree did not render each span once:\n%s", out)
	}
	if !strings.HasPrefix(strings.Split(out, "\n")[1], "  child") {
		t.Errorf("child not indented under root:\n%s", out)
	}
}
