package opsserver

import (
	"runtime"
	"sync"
	"time"

	"catdb/internal/obs"
)

// queueDepthBuckets bounds the sampled pool-queue-depth distribution:
// depths past a few hundred pending tasks all mean "saturated".
var queueDepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

// Collector samples process runtime stats (goroutines, heap, GC) and
// the pool queue depth into an obs.Registry, so /metrics answers "what
// is this run doing to the process" without a sidecar. Sampling is
// pull-based and injectable: tests call Sample directly or drive Run
// with a manual tick channel; production uses Start with a real ticker.
type Collector struct {
	reg *obs.Registry

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewCollector returns a collector recording into reg. A nil registry
// yields a collector whose samples are no-ops (every instrument is the
// registry's nil no-op form), so wiring never branches on enablement.
func NewCollector(reg *obs.Registry) *Collector {
	return &Collector{reg: reg}
}

// Sample takes one reading: runtime gauges are set to current values,
// monotonic runtime totals (GC pauses, cycles, allocated bytes) are
// re-published as-is, and the live pool queue depth is observed into a
// histogram so scrapes see its distribution, not just the last instant.
func (c *Collector) Sample() {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.reg.Gauge("catdb_runtime_goroutines").Set(int64(runtime.NumGoroutine()))
	c.reg.Gauge("catdb_runtime_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	c.reg.Gauge("catdb_runtime_total_alloc_bytes").Set(int64(ms.TotalAlloc))
	c.reg.Gauge("catdb_runtime_gc_pause_ns_total").Set(int64(ms.PauseTotalNs))
	c.reg.Gauge("catdb_runtime_gc_cycles").Set(int64(ms.NumGC))
	depth := c.reg.Gauge("catdb_pool_queue_depth").Value()
	c.reg.Histogram("catdb_pool_queue_depth_sampled", queueDepthBuckets).Observe(float64(depth))
	c.reg.Counter("catdb_runtime_samples_total").Inc()
}

// Run samples once per tick until the channel closes or Stop is
// called. It is the deterministic core of Start: tests feed a manual
// channel and know exactly how many samples were taken.
func (c *Collector) Run(ticks <-chan time.Time) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.mu.Unlock()
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case _, ok := <-ticks:
			if !ok {
				return
			}
			c.Sample()
		}
	}
}

// Start samples on a real ticker every interval until Stop.
func (c *Collector) Start(interval time.Duration) {
	if c == nil {
		return
	}
	t := time.NewTicker(interval)
	go func() {
		defer t.Stop()
		c.Run(t.C)
	}()
}

// Stop halts a running collector and waits for its loop to exit. Safe
// to call on a collector that never started, and idempotent.
func (c *Collector) Stop() {
	if c == nil {
		return
	}
	c.mu.Lock()
	stop, done := c.stop, c.done
	started := c.started
	c.started = false
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if !started {
		return
	}
	close(stop)
	<-done
}
