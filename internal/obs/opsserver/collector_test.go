package opsserver

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"catdb/internal/obs"
)

func TestCollectorSample(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCollector(reg)
	c.Sample()
	if got := reg.Counter("catdb_runtime_samples_total").Value(); got != 1 {
		t.Errorf("samples_total = %d, want 1", got)
	}
	if got := reg.Gauge("catdb_runtime_goroutines").Value(); got <= 0 {
		t.Errorf("goroutines = %d, want > 0", got)
	}
	if got := reg.Gauge("catdb_runtime_heap_alloc_bytes").Value(); got <= 0 {
		t.Errorf("heap_alloc_bytes = %d, want > 0", got)
	}

	// The live pool queue depth gets re-observed into a histogram, so
	// scrapes see its distribution over the run, not one instant.
	reg.Gauge("catdb_pool_queue_depth").Set(7)
	c.Sample()
	h := reg.Histogram("catdb_pool_queue_depth_sampled", queueDepthBuckets)
	if got := h.Count(); got != 2 {
		t.Errorf("queue depth samples = %d, want 2", got)
	}
	if got := h.Sum(); got != 7 {
		t.Errorf("queue depth sum = %v, want 7 (0 then 7)", got)
	}

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"catdb_runtime_goroutines",
		"catdb_runtime_heap_alloc_bytes",
		"catdb_runtime_gc_pause_ns_total",
		"catdb_runtime_gc_cycles",
		"catdb_pool_queue_depth_sampled_bucket",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestCollectorRunManualTicks pins the deterministic path: the sampling
// loop is driven entirely by the injected channel, one sample per tick.
func TestCollectorRunManualTicks(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCollector(reg)
	ticks := make(chan time.Time)
	go c.Run(ticks)
	for i := 0; i < 3; i++ {
		ticks <- time.Time{} // unbuffered: Run has consumed it on return
	}
	c.Stop()
	if got := reg.Counter("catdb_runtime_samples_total").Value(); got != 3 {
		t.Errorf("samples_total = %d, want exactly 3", got)
	}
	// Stop is idempotent, and a stopped collector can run again.
	c.Stop()
	ticks2 := make(chan time.Time, 1)
	ticks2 <- time.Time{}
	close(ticks2)
	c.Run(ticks2) // returns on channel close
	if got := reg.Counter("catdb_runtime_samples_total").Value(); got != 4 {
		t.Errorf("samples_total after rerun = %d, want 4", got)
	}
	c.Stop()
}

func TestCollectorStartTicker(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCollector(reg)
	c.Start(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("catdb_runtime_samples_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker collector never sampled")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	after := reg.Counter("catdb_runtime_samples_total").Value()
	time.Sleep(5 * time.Millisecond)
	if got := reg.Counter("catdb_runtime_samples_total").Value(); got != after {
		t.Errorf("collector still sampling after Stop: %d -> %d", after, got)
	}
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	c.Sample()
	c.Start(time.Millisecond)
	c.Stop()
	c.Run(nil)
	// A collector over a nil registry samples into no-op instruments.
	disabled := NewCollector(nil)
	disabled.Sample()
	disabled.Stop()
}
