// Package opsserver is the live ops plane: an embeddable debug HTTP
// server that any catdb process can attach with one flag (-listen).
// It exposes the process's observability state while a run is in
// flight — Prometheus metrics, pprof profiles, the live span tree
// (in-flight spans included), flamegraph and critical-path exports,
// and the persistent run ledger.
//
// This is deliberately the ONLY place in the repo that registers
// net/http handlers (`make lint-http` enforces it): the server is a
// read-only window onto state owned by internal/obs and
// internal/obs/ledger, never a control surface, so run results are
// byte-identical with the server attached or not.
package opsserver

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"catdb/internal/obs"
	"catdb/internal/obs/ledger"
)

// Options selects what the server exposes. Any field may be nil/empty:
// the corresponding endpoint then reports "not enabled" rather than
// panicking, so callers wire up whatever subset they have.
type Options struct {
	Registry   *obs.Registry // /metrics
	Tracer     *obs.Tracer   // /api/spans, /api/flame, /api/critical-path
	LedgerPath string        // /api/runs
}

// NewHandler builds the ops-plane handler on a private mux (never the
// DefaultServeMux, which pprof's package import side-effects would
// otherwise pollute process-wide).
func NewHandler(opts Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, `catdb ops plane
  /metrics            Prometheus exposition
  /api/spans          live span tree (JSON; running spans included)
  /api/flame          folded-stacks flamegraph (flamegraph.pl / speedscope input)
  /api/critical-path  wall-time critical path report
  /api/runs           run ledger records (JSON; ?last=N)
  /debug/pprof/       pprof index
`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if opts.Registry == nil {
			http.Error(w, "metrics not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = opts.Registry.WriteProm(w)
	})
	mux.HandleFunc("/api/spans", func(w http.ResponseWriter, r *http.Request) {
		if opts.Tracer == nil {
			http.Error(w, "tracing not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, spanTree(opts.Tracer.Snapshot()))
	})
	mux.HandleFunc("/api/flame", func(w http.ResponseWriter, r *http.Request) {
		if opts.Tracer == nil {
			http.Error(w, "tracing not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = opts.Tracer.WriteFolded(w)
	})
	mux.HandleFunc("/api/critical-path", func(w http.ResponseWriter, r *http.Request) {
		if opts.Tracer == nil {
			http.Error(w, "tracing not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = opts.Tracer.WriteCriticalPath(w)
	})
	mux.HandleFunc("/api/runs", func(w http.ResponseWriter, r *http.Request) {
		if opts.LedgerPath == "" {
			http.Error(w, "run ledger not enabled", http.StatusNotFound)
			return
		}
		records, err := ledger.ReadFile(opts.LedgerPath)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if s := r.URL.Query().Get("last"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(records) {
				records = records[len(records)-n:]
			}
		}
		if records == nil {
			records = []ledger.Record{}
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, records)
	})
	// pprof goes on the private mux via the named handler funcs, not the
	// `_ "net/http/pprof"` import that registers on DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// spanNode is the /api/spans wire form: the span tree nested the way a
// UI wants to render it, with running spans carrying elapsed-so-far
// durations.
type spanNode struct {
	ID       int            `json:"id"`
	Name     string         `json:"name"`
	StartNS  int64          `json:"start_ns"`
	DurNS    int64          `json:"dur_ns"`
	Running  bool           `json:"running,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*spanNode    `json:"children,omitempty"`
}

// spanTree nests a snapshot into root nodes. Orphans (parent missing
// from the snapshot) surface as roots, mirroring WriteTree; children
// keep snapshot (start) order.
func spanTree(spans []obs.SpanData) []*spanNode {
	nodes := make(map[int]*spanNode, len(spans))
	for _, d := range spans {
		nodes[d.ID] = &spanNode{
			ID: d.ID, Name: d.Name,
			StartNS: d.Start.Nanoseconds(), DurNS: d.Dur.Nanoseconds(),
			Running: d.Running, Attrs: d.Attrs,
		}
	}
	roots := []*spanNode{}
	for _, d := range spans { // snapshot order = start order, keeps children sorted
		if p, ok := nodes[d.Parent]; ok && d.Parent != d.ID {
			p.Children = append(p.Children, nodes[d.ID])
		} else {
			roots = append(roots, nodes[d.ID])
		}
	}
	return roots
}

// Server is a running ops-plane listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves the ops plane in a background goroutine.
func Start(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("opsserver: listen %s: %w", addr, err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           NewHandler(opts),
			ReadHeaderTimeout: 10 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address ("" on nil), resolving ":0" requests.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the http base URL ("" on nil).
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops the listener. A nil server closes cleanly, so callers can
// `defer srv.Close()` unconditionally.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
