package opsserver

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"catdb/internal/obs"
	"catdb/internal/obs/ledger"
)

// fakeClock steps 1ms per reading (the tracer serializes reads).
func fakeClock() func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * time.Millisecond)
		n++
		return t
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("catdb_llm_calls_total", "model", "gpt-4o").Add(3)
	tr := obs.NewWithClock(fakeClock())
	run := tr.Root("run")
	gen := run.Child("generate")
	gen.SetStr("kind", "pipeline")
	gen.End()
	// run stays open: the live view must show it running.

	ledgerPath := filepath.Join(t.TempDir(), "runs.jsonl")
	lw, err := ledger.OpenWriter(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := lw.Append(ledger.Record{
			ConfigHash: ledger.ConfigHash("CMC", "gpt-4o"), Dataset: "CMC",
			Model: "gpt-4o", Seed: int64(i),
			StageSeconds: map[string]float64{"exec": 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := Start("127.0.0.1:0", Options{Registry: reg, Tracer: tr, LedgerPath: ledgerPath})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := srv.URL()

	if code, body := get(t, base+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: code=%d body=%q", code, body)
	}
	if code, body := get(t, base+"/nope"); code != 404 {
		t.Errorf("unknown path: code=%d body=%q", code, body)
	}

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics code=%d", code)
	}
	if !strings.Contains(body, `catdb_llm_calls_total{model="gpt-4o"} 3`) {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body = get(t, base+"/api/spans")
	if code != 200 {
		t.Fatalf("/api/spans code=%d", code)
	}
	var roots []struct {
		Name     string         `json:"name"`
		Running  bool           `json:"running"`
		Attrs    map[string]any `json:"attrs"`
		Children []struct {
			Name  string         `json:"name"`
			DurNS int64          `json:"dur_ns"`
			Attrs map[string]any `json:"attrs"`
		} `json:"children"`
	}
	if err := json.Unmarshal([]byte(body), &roots); err != nil {
		t.Fatalf("/api/spans not JSON: %v\n%s", err, body)
	}
	if len(roots) != 1 || roots[0].Name != "run" || !roots[0].Running {
		t.Errorf("/api/spans root wrong: %+v", roots)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "generate" ||
		roots[0].Children[0].Attrs["kind"] != "pipeline" {
		t.Errorf("/api/spans nesting wrong: %+v", roots)
	}

	code, body = get(t, base+"/api/flame")
	if code != 200 || !strings.Contains(body, "run;generate") {
		t.Errorf("/api/flame: code=%d body=%q", code, body)
	}
	code, body = get(t, base+"/api/critical-path")
	if code != 200 || !strings.Contains(body, "critical path:") || !strings.Contains(body, "[running]") {
		t.Errorf("/api/critical-path: code=%d body=%q", code, body)
	}

	code, body = get(t, base+"/api/runs")
	if code != 200 {
		t.Fatalf("/api/runs code=%d", code)
	}
	var records []ledger.Record
	if err := json.Unmarshal([]byte(body), &records); err != nil {
		t.Fatalf("/api/runs not JSON: %v\n%s", err, body)
	}
	if len(records) != 3 || records[0].Dataset != "CMC" {
		t.Errorf("/api/runs = %+v, want 3 CMC records", records)
	}
	_, body = get(t, base+"/api/runs?last=1")
	records = nil
	if err := json.Unmarshal([]byte(body), &records); err != nil || len(records) != 1 || records[0].Seed != 2 {
		t.Errorf("/api/runs?last=1 = %+v (err %v), want just the newest", records, err)
	}

	if code, _ := get(t, base+"/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ code=%d", code)
	}
}

func TestServerDisabledEndpoints(t *testing.T) {
	srv, err := Start("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/api/spans", "/api/flame", "/api/critical-path", "/api/runs"} {
		if code, _ := get(t, srv.URL()+path); code != 404 {
			t.Errorf("%s with nothing wired: code=%d, want 404", path, code)
		}
	}
}

func TestServerNilAndClose(t *testing.T) {
	var s *Server
	if s.Addr() != "" || s.URL() != "" {
		t.Error("nil server has an address")
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	srv, err := Start("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := http.Get(srv.URL() + "/"); err == nil {
		t.Error("server still serving after Close")
	}
}

// TestScrapeUnderLoad hammers /metrics and /api/spans while writers
// mutate the registry and tracer — the race-lane proof that scraping a
// live run is safe.
func TestScrapeUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.New()
	srv, err := Start("127.0.0.1:0", Options{Registry: reg, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			root := tr.Root(fmt.Sprintf("writer-%d", id))
			for j := 0; ; j++ {
				select {
				case <-stop:
					root.End()
					return
				default:
				}
				reg.Counter("catdb_load_total", "writer", fmt.Sprint(id)).Inc()
				reg.Histogram("catdb_load_seconds", obs.DefBuckets).Observe(float64(j % 10))
				// Cap the span count: unbounded spans make every scrape
				// serialize a huge tree and the test crawls.
				if j < 200 {
					sp := root.Child("op")
					sp.SetInt("j", int64(j))
					sp.End()
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				for _, path := range []string{"/metrics", "/api/spans"} {
					resp, err := http.Get(srv.URL() + path)
					if err != nil {
						t.Errorf("%s under load: %v", path, err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						t.Errorf("%s under load: code=%d", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
