package obs_test

import (
	"bytes"
	"testing"

	"catdb/internal/obs"
	"catdb/internal/pool"
)

// TestConcurrentRecordingUnderPoolMap exercises the shared tracer and
// registry exactly the way the bench harness does — one span subtree and
// a batch of metric updates per pool.Map cell — and then exports while
// the structures are quiescent. Run under `make race`, it guards the
// store's race-safety invariants.
func TestConcurrentRecordingUnderPoolMap(t *testing.T) {
	tr := obs.New()
	reg := obs.NewRegistry()
	root := tr.Root("bench:race")
	const cells = 64
	_, err := pool.Map(8, cells, func(i int) (int, error) {
		sp := root.Child("cell")
		sp.SetInt("index", int64(i))
		inner := sp.Child("run")
		inner.SetStr("dataset", "synthetic")
		inner.End()
		sp.End()
		reg.Counter("race_cells_total").Inc()
		reg.Counter("race_by_parity_total", "parity", []string{"even", "odd"}[i%2]).Inc()
		reg.Gauge("race_last_index").Set(int64(i))
		reg.Gauge("race_max_index").Max(int64(i))
		reg.Histogram("race_index_hist", obs.DefBuckets).Observe(float64(i))
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	if got := tr.Len(); got != 1+2*cells {
		t.Errorf("span count = %d, want %d", got, 1+2*cells)
	}
	if got := reg.Counter("race_cells_total").Value(); got != cells {
		t.Errorf("race_cells_total = %d, want %d", got, cells)
	}
	even := reg.Counter("race_by_parity_total", "parity", "even").Value()
	odd := reg.Counter("race_by_parity_total", "parity", "odd").Value()
	if even != cells/2 || odd != cells/2 {
		t.Errorf("parity counters = %d/%d, want %d each", even, odd, cells/2)
	}
	if got := reg.Gauge("race_max_index").Value(); got != cells-1 {
		t.Errorf("race_max_index = %d, want %d", got, cells-1)
	}
	if got := reg.Histogram("race_index_hist", obs.DefBuckets).Count(); got != cells {
		t.Errorf("histogram count = %d, want %d", got, cells)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("exports produced no output")
	}
}

// TestConcurrentExportDuringRecording pins that exporting while spans and
// metrics are still being recorded is memory-safe (the exporters snapshot
// under locks).
func TestConcurrentExportDuringRecording(t *testing.T) {
	tr := obs.New()
	reg := obs.NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			_ = tr.WriteJSONL(&buf)
			_ = tr.WriteTree(&buf)
			_ = reg.WriteProm(&buf)
		}
	}()
	_, err := pool.Map(4, 200, func(i int) (struct{}, error) {
		sp := tr.Root("r")
		sp.SetInt("i", int64(i))
		sp.End()
		reg.Counter("c_total").Inc()
		reg.Histogram("h", []float64{1, 10}).Observe(float64(i))
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
}
