package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records hierarchical spans into a race-safe in-memory store.
// Span IDs are assigned under the tracer's mutex in start order, so
// exports are deterministically ordered regardless of which goroutine
// started which span first in wall-clock terms.
//
// A nil *Tracer is a valid no-op tracer: Root returns a nil *Span whose
// methods are all no-ops, so instrumentation never branches on enablement.
type Tracer struct {
	mu     sync.Mutex
	now    func() time.Time
	epoch  time.Time
	nextID int
	spans  []*Span
}

// New returns a tracer over the wall clock.
func New() *Tracer { return NewWithClock(time.Now) }

// NewWithClock returns a tracer whose timestamps come from now — tests
// inject a stepping clock to make durations and offsets reproducible. The
// clock is only ever called under the tracer's mutex, so a stateful fake
// clock needs no locking of its own.
func NewWithClock(now func() time.Time) *Tracer {
	t := &Tracer{now: now}
	t.epoch = now()
	return t
}

// Root starts a parentless span.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0)
}

func (t *Tracer) newSpan(name string, parent int) *Span {
	t.mu.Lock()
	t.nextID++
	s := &Span{
		tracer: t,
		id:     t.nextID,
		parent: parent,
		name:   name,
		start:  t.now().Sub(t.epoch),
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// offset returns the current clock position relative to the epoch.
func (t *Tracer) offset() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now().Sub(t.epoch)
}

// Len reports how many spans have been started.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Span is one node of the trace tree. All methods are no-ops on a nil
// receiver. A span is owned by the goroutine that started it until End;
// attribute writes are nevertheless mutex-guarded so a misbehaving caller
// degrades to racy-but-memory-safe rather than corrupting the store.
type Span struct {
	tracer *Tracer
	id     int
	parent int
	name   string
	start  time.Duration // offset from tracer epoch

	mu    sync.Mutex
	attrs map[string]any
	dur   time.Duration
	ended bool
}

// Child starts a nested span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.newSpan(name, s.id)
}

// Tracer returns the tracer that owns the span (nil for a nil span).
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

func (s *Span) set(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// The typed setters nil-check before calling set: boxing the value into
// an interface would otherwise allocate even on the disabled path.

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.set(key, v)
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.set(key, v)
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.set(key, v)
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.set(key, v)
}

// End records the span's duration. Only the first End counts; a span
// never ended exports with a zero duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	off := s.tracer.offset()
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = off - s.start
	}
	s.mu.Unlock()
}

// SpanData is an exported snapshot of one span.
type SpanData struct {
	ID     int
	Parent int // 0 = root
	Name   string
	Start  time.Duration // offset from tracer construction
	Dur    time.Duration
	// Running marks a span still open at snapshot time; its Dur is the
	// elapsed time so far, so live views (the ops server's /api/spans)
	// render in-flight work with a meaningful duration.
	Running bool
	Attrs   map[string]any
}

// Snapshot returns all spans in start order. Open spans are marked
// Running and carry their elapsed-so-far duration instead of zero. The
// attribute maps are copies; mutating them does not affect the store.
func (t *Tracer) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	now := t.now().Sub(t.epoch)
	t.mu.Unlock()
	out := make([]SpanData, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		d := SpanData{ID: s.id, Parent: s.parent, Name: s.name, Start: s.start, Dur: s.dur}
		if !s.ended {
			d.Running = true
			if now > s.start {
				d.Dur = now - s.start
			}
		}
		if len(s.attrs) > 0 {
			d.Attrs = make(map[string]any, len(s.attrs))
			for k, v := range s.attrs {
				d.Attrs[k] = v
			}
		}
		s.mu.Unlock()
		out = append(out, d)
	}
	return out
}

// spanJSON is the JSONL wire form; map values marshal with sorted keys,
// so lines are deterministic.
type spanJSON struct {
	ID      int            `json:"id"`
	Parent  int            `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Running bool           `json:"running,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL exports one JSON object per span, in start order. Spans
// still open export running:true with their elapsed-so-far duration.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, d := range t.Snapshot() {
		b, err := json.Marshal(spanJSON{
			ID: d.ID, Parent: d.Parent, Name: d.Name,
			StartNS: d.Start.Nanoseconds(), DurNS: d.Dur.Nanoseconds(),
			Running: d.Running, Attrs: d.Attrs,
		})
		if err != nil {
			return fmt.Errorf("obs: marshal span: %w", err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// WriteTree exports a human-readable indented tree. Children print in
// start order under their parent; orphans (parent never recorded) print
// as roots so partial traces still render.
func (t *Tracer) WriteTree(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans := t.Snapshot()
	byParent := map[int][]SpanData{}
	ids := map[int]bool{}
	for _, d := range spans {
		ids[d.ID] = true
	}
	for _, d := range spans {
		p := d.Parent
		if !ids[p] {
			p = 0
		}
		byParent[p] = append(byParent[p], d)
	}
	var rec func(parent, depth int) error
	rec = func(parent, depth int) error {
		for _, d := range byParent[parent] {
			marker := ""
			if d.Running {
				marker = ", running"
			}
			if _, err := fmt.Fprintf(w, "%*s%s (%s%s)%s\n",
				2*depth, "", d.Name, d.Dur, marker, formatAttrs(d.Attrs)); err != nil {
				return err
			}
			if err := rec(d.ID, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, 0)
}

// formatAttrs renders attributes as " k=v k=v" sorted by key.
func formatAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf(" %s=%v", k, attrs[k])
	}
	return out
}
