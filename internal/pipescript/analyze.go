package pipescript

import (
	"fmt"
	"strings"

	"catdb/internal/data"
)

// ColumnInfo is the static-analysis view of one input column.
type ColumnInfo struct {
	Name       string
	IsString   bool
	HasMissing bool
	IsTarget   bool
}

// IssueCode classifies a static-analysis finding.
type IssueCode string

// Static-analysis issue codes. These are *predictions* of the runtime
// errors the executor would raise, found without running the pipeline —
// the "code analysis to identify and refine any missing steps" of §4.
const (
	IssueMissingEncode IssueCode = "MISSING_ENCODE" // string feature reaches train un-encoded
	IssueMissingImpute IssueCode = "MISSING_IMPUTE" // missing values reach train un-imputed
	IssueUnknownColumn IssueCode = "UNKNOWN_COLUMN" // statement references a non-existent column
	IssueNoTrain       IssueCode = "NO_TRAIN"       // pipeline never trains
	IssueTargetDropped IssueCode = "TARGET_DROPPED" // target column dropped before train
	IssueTaskMismatch  IssueCode = "TASK_MISMATCH"  // rebalance/augment against the wrong task
	IssueUnknownModel  IssueCode = "UNKNOWN_MODEL"  // train references an unavailable model
	IssueBadPackage    IssueCode = "BAD_PACKAGE"    // require of an uninstalled package
	IssueDoubleEncode  IssueCode = "DOUBLE_ENCODE"  // column encoded twice
)

// Issue is one static-analysis finding.
type Issue struct {
	Code   IssueCode
	Line   int
	Column string // affected data column, if any
	Msg    string
}

// knownModels lists the model names the executor accepts.
var knownModels = map[string]bool{
	"random_forest": true, "decision_tree": true, "gbm": true,
	"gradient_boosting": true, "logistic_regression": true,
	"linear_regression": true, "ridge": true, "knn": true,
	"naive_bayes": true, "tabpfn": true, "extra_trees": true, "svm": true,
}

// Analyze statically checks a parsed pipeline against the input schema,
// simulating column lifecycle (encodes, drops, splits) to predict the
// runtime errors Execute would raise. It returns issues ordered by source
// line.
func Analyze(p *Program, cols []ColumnInfo, task data.Task) []Issue {
	var issues []Issue
	type state struct {
		isString   bool
		hasMissing bool
		isTarget   bool
		encoded    bool
		present    bool
	}
	st := map[string]*state{}
	var target string
	for _, c := range cols {
		st[c.Name] = &state{isString: c.IsString, hasMissing: c.HasMissing, isTarget: c.IsTarget, present: true}
		if c.IsTarget {
			target = c.Name
		}
	}
	imputeAll := false
	trained := false
	lookup := func(name string, line int) *state {
		s, ok := st[name]
		if !ok || !s.present {
			issues = append(issues, Issue{Code: IssueUnknownColumn, Line: line, Column: name,
				Msg: fmt.Sprintf("column %q does not exist at this point", name)})
			return nil
		}
		return s
	}
	for _, stmt := range p.Stmts {
		spec := opRegistry[stmt.Op]
		if spec == nil {
			continue // Parse rejects unknown statements
		}
		// Checks and transitions that go beyond the column footprint:
		// packages, task shape, whole-table imputation, the train gate.
		switch stmt.Op {
		case "require":
			if !AvailablePackages[stmt.Arg(0)] {
				issues = append(issues, Issue{Code: IssueBadPackage, Line: stmt.Line,
					Msg: fmt.Sprintf("package %q is not installed", stmt.Arg(0))})
			}
		case "impute_all":
			imputeAll = true
			for _, s := range st {
				s.hasMissing = false
			}
		case "rebalance":
			if task == data.Regression {
				issues = append(issues, Issue{Code: IssueTaskMismatch, Line: stmt.Line,
					Msg: "rebalance is only valid for classification"})
			}
		case "augment":
			if task != data.Regression {
				issues = append(issues, Issue{Code: IssueTaskMismatch, Line: stmt.Line,
					Msg: "augment is only valid for regression"})
			}
		case "train":
			trained = true
			model := stmt.Opt("model", "random_forest")
			if !knownModels[model] {
				issues = append(issues, Issue{Code: IssueUnknownModel, Line: stmt.Line,
					Msg: fmt.Sprintf("model %q is not available", model)})
			}
			tgt := stmt.Opt("target", target)
			if s, ok := st[tgt]; !ok || !s.present {
				issues = append(issues, Issue{Code: IssueTargetDropped, Line: stmt.Line, Column: tgt,
					Msg: fmt.Sprintf("train target %q does not exist", tgt)})
			}
			for name, s := range st {
				if !s.present || s.isTarget || name == tgt {
					continue
				}
				if s.isString && !s.encoded {
					issues = append(issues, Issue{Code: IssueMissingEncode, Line: stmt.Line, Column: name,
						Msg: fmt.Sprintf("string column %q reaches training un-encoded", name)})
				}
				if s.hasMissing && !imputeAll {
					issues = append(issues, Issue{Code: IssueMissingImpute, Line: stmt.Line, Column: name,
						Msg: fmt.Sprintf("column %q may carry missing values into training", name)})
				}
			}
		}
		if spec.refs == nil {
			continue
		}
		// Footprint checks driven by the same refs the DAG scheduler
		// uses. The "" target omits implicit target reads — target
		// existence is train's concern, checked above.
		r := spec.refs(stmt, "")
		need := make([]string, 0, len(r.reads)+len(r.writes)+len(r.removes))
		need = append(need, r.reads...)
		need = append(need, r.writes...)
		need = append(need, r.removes...)
		resolved := true
		checked := map[string]bool{}
		for _, name := range need {
			if checked[name] {
				continue
			}
			checked[name] = true
			if lookup(name, stmt.Line) == nil {
				resolved = false
			}
		}
		if !resolved {
			continue // unresolved reference: no state transition to simulate
		}
		if spec.encoder {
			// All encoders share one state machine, so re-encoding an
			// already-encoded column is a DOUBLE_ENCODE whichever pair
			// of encoders is involved. The source column stays tracked
			// under its own name; fixed-suffix derived columns
			// (__hash/__ord/__tenc) become present encoded columns.
			s := st[stmt.Arg(0)]
			if s.encoded {
				issues = append(issues, Issue{Code: IssueDoubleEncode, Line: stmt.Line, Column: stmt.Arg(0),
					Msg: fmt.Sprintf("column %q is encoded more than once", stmt.Arg(0))})
			}
			s.encoded = true
			s.isString = false
			s.hasMissing = false // encoders produce complete indicators
			for _, name := range r.adds {
				st[name] = &state{present: true, encoded: true}
			}
			continue
		}
		switch stmt.Op {
		case "impute":
			st[stmt.Arg(0)].hasMissing = false
		case "drop":
			if st[stmt.Arg(0)].isTarget {
				issues = append(issues, Issue{Code: IssueTargetDropped, Line: stmt.Line, Column: stmt.Arg(0),
					Msg: "pipeline drops the target column"})
			}
		}
		for _, name := range r.removes {
			if s := st[name]; s != nil {
				s.present = false
			}
		}
		for _, name := range r.adds {
			st[name] = &state{isString: spec.stringAdds, present: true}
		}
	}
	if !trained {
		issues = append(issues, Issue{Code: IssueNoTrain, Line: lastLine(p),
			Msg: "pipeline never trains a model"})
	}
	return issues
}

// Repair rewrites the pipeline source to fix the repairable issues found
// by Analyze: missing imputation and encodings are inserted before the
// train statement, unavailable models are replaced, bad requires are
// removed, and a train statement is appended if absent. Unrepairable
// issues (unknown columns) are left to the error-management loop.
func Repair(source string, issues []Issue, cols []ColumnInfo, target string) string {
	lines := strings.Split(strings.TrimRight(source, "\n"), "\n")
	needImpute := false
	encodeCols := map[string]bool{}
	appendTrain := false
	// Unknown-column references that are near-misses of a real column are
	// probably typos of it; the encode the typo'd statement intended will
	// exist once the error loop repairs the name, so skip inserting a
	// duplicate here.
	typoTargets := map[string]bool{}
	for _, is := range issues {
		if is.Code != IssueUnknownColumn {
			continue
		}
		for _, c := range cols {
			if nameDistance(is.Column, c.Name) <= 2 {
				typoTargets[c.Name] = true
			}
		}
	}
	for _, is := range issues {
		switch is.Code {
		case IssueMissingImpute:
			needImpute = true
		case IssueMissingEncode:
			if !typoTargets[is.Column] {
				encodeCols[is.Column] = true
			}
		case IssueUnknownModel:
			for i, l := range lines {
				if strings.HasPrefix(strings.TrimSpace(l), "train ") {
					lines[i] = rewriteModel(l, "random_forest")
				}
			}
		case IssueBadPackage:
			var kept []string
			for _, l := range lines {
				t := strings.TrimSpace(l)
				if strings.HasPrefix(t, "require ") && !AvailablePackages[strings.TrimPrefix(t, "require ")] {
					continue
				}
				kept = append(kept, l)
			}
			lines = kept
		case IssueNoTrain:
			appendTrain = true
		case IssueTaskMismatch:
			if is.Line-1 >= 0 && is.Line-1 < len(lines) {
				lines = append(lines[:is.Line-1], lines[is.Line:]...)
			}
		}
	}
	var inserts []string
	if needImpute {
		inserts = append(inserts, "impute_all strategy=auto")
	}
	for _, c := range cols {
		if encodeCols[c.Name] {
			inserts = append(inserts, fmt.Sprintf("onehot %q", c.Name))
		}
	}
	if len(inserts) > 0 {
		out := make([]string, 0, len(lines)+len(inserts))
		inserted := false
		for _, l := range lines {
			if !inserted && strings.HasPrefix(strings.TrimSpace(l), "train ") {
				out = append(out, inserts...)
				inserted = true
			}
			out = append(out, l)
		}
		if !inserted {
			out = append(out, inserts...)
		}
		lines = out
	}
	if appendTrain {
		lines = append(lines, fmt.Sprintf("train model=random_forest target=%q trees=50", target))
	}
	return strings.Join(lines, "\n") + "\n"
}

// nameDistance is a small Levenshtein distance for typo detection.
func nameDistance(a, b string) int {
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func rewriteModel(trainLine, model string) string {
	fields := strings.Fields(trainLine)
	for i, f := range fields {
		if strings.HasPrefix(f, "model=") {
			fields[i] = "model=" + model
		}
	}
	return strings.Join(fields, " ")
}
