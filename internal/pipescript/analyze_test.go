package pipescript

import (
	"testing"

	"catdb/internal/data"
)

func analysisCols() []ColumnInfo {
	return []ColumnInfo{
		{Name: "num", HasMissing: true},
		{Name: "cat", IsString: true},
		{Name: "addr", IsString: true},
		{Name: "y", IsString: true, IsTarget: true},
	}
}

func analyze(t *testing.T, src string, task data.Task) []Issue {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(p, analysisCols(), task)
}

func hasIssue(issues []Issue, code IssueCode) bool {
	for _, is := range issues {
		if is.Code == code {
			return true
		}
	}
	return false
}

func TestAnalyzeCleanPipeline(t *testing.T) {
	src := `pipeline "ok"
impute "num" strategy=median
onehot "cat"
onehot "addr"
train model=random_forest target="y"
`
	if issues := analyze(t, src, data.Multiclass); len(issues) != 0 {
		t.Fatalf("clean pipeline flagged: %+v", issues)
	}
}

func TestAnalyzeMissingSteps(t *testing.T) {
	src := `pipeline "bad"
onehot "cat"
train model=random_forest target="y"
`
	issues := analyze(t, src, data.Multiclass)
	if !hasIssue(issues, IssueMissingEncode) {
		t.Fatalf("addr un-encoded not flagged: %+v", issues)
	}
	if !hasIssue(issues, IssueMissingImpute) {
		t.Fatalf("num un-imputed not flagged: %+v", issues)
	}
}

func TestAnalyzeUnknownColumnAndModel(t *testing.T) {
	src := `pipeline "bad"
impute "ghost" strategy=median
impute_all
onehot "cat"
onehot "addr"
train model=xgb_classifier target="y"
`
	issues := analyze(t, src, data.Multiclass)
	if !hasIssue(issues, IssueUnknownColumn) || !hasIssue(issues, IssueUnknownModel) {
		t.Fatalf("issues: %+v", issues)
	}
}

func TestAnalyzeTargetDropAndNoTrain(t *testing.T) {
	issues := analyze(t, "pipeline \"x\"\ndrop \"y\"\n", data.Multiclass)
	if !hasIssue(issues, IssueTargetDropped) || !hasIssue(issues, IssueNoTrain) {
		t.Fatalf("issues: %+v", issues)
	}
}

func TestAnalyzeTaskMismatchAndPackage(t *testing.T) {
	src := `pipeline "x"
require xgboost
rebalance method=adasyn
impute_all
onehot "cat"
onehot "addr"
train model=knn target="y"
`
	issues := analyze(t, src, data.Regression)
	if !hasIssue(issues, IssueBadPackage) || !hasIssue(issues, IssueTaskMismatch) {
		t.Fatalf("issues: %+v", issues)
	}
}

func TestAnalyzeSplitComposite(t *testing.T) {
	src := `pipeline "x"
split_composite "addr" into=state,zip
impute_all
onehot "cat"
onehot "state"
onehot "zip"
train model=knn target="y"
`
	if issues := analyze(t, src, data.Multiclass); len(issues) != 0 {
		t.Fatalf("split lifecycle broken: %+v", issues)
	}
}

func TestAnalyzeDoubleEncode(t *testing.T) {
	src := `pipeline "x"
impute_all
onehot "cat"
ordinal "cat"
onehot "addr"
train model=knn target="y"
`
	issues := analyze(t, src, data.Multiclass)
	// "cat" no longer exists after onehot replaces it, so the second
	// encode is an unknown-column OR double-encode depending on tracking;
	// either way it must be flagged.
	if !hasIssue(issues, IssueDoubleEncode) && !hasIssue(issues, IssueUnknownColumn) {
		t.Fatalf("double encode not flagged: %+v", issues)
	}
}

func TestRepairProducesRunnablePipeline(t *testing.T) {
	// A badly broken pipeline: no imputation, un-encoded strings, unknown
	// model, phantom package.
	src := `pipeline "broken"
require xgboost
train model=xgb_classifier target="y"
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cols := analysisCols()
	issues := Analyze(p, cols, data.Multiclass)
	if len(issues) == 0 {
		t.Fatal("expected issues")
	}
	fixed := Repair(src, issues, cols, "y")
	prog, err := Parse(fixed)
	if err != nil {
		t.Fatalf("repaired source must parse: %v\n%s", err, fixed)
	}
	// Verify on actual data.
	tb := data.NewTable("t")
	n := 60
	num := make([]float64, n)
	cat := make([]string, n)
	addr := make([]string, n)
	y := make([]string, n)
	for i := 0; i < n; i++ {
		num[i] = float64(i % 7)
		cat[i] = []string{"a", "b"}[i%2]
		addr[i] = []string{"x", "z"}[i%2]
		y[i] = []string{"p", "q"}[i%2]
	}
	nc := data.NewNumeric("num", num)
	nc.SetMissing(3)
	tb.MustAddColumn(nc)
	tb.MustAddColumn(data.NewString("cat", cat))
	tb.MustAddColumn(data.NewString("addr", addr))
	tb.MustAddColumn(data.NewString("y", y))
	tr, te := tb.Split(0.7, 1)
	ex := &Executor{Target: "y", Task: data.Binary, Seed: 1}
	if _, err := ex.Execute(prog, tr, te); err != nil {
		t.Fatalf("repaired pipeline must run: %v\n%s", err, fixed)
	}
}

func TestRepairAppendsTrain(t *testing.T) {
	src := "pipeline \"x\"\nimpute_all\n"
	p, _ := Parse(src)
	issues := Analyze(p, analysisCols(), data.Multiclass)
	fixed := Repair(src, issues, analysisCols(), "y")
	prog, err := Parse(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if prog.TrainStmt() == nil {
		t.Fatalf("repair must append train:\n%s", fixed)
	}
}

func TestAnalyzePredictsRuntimeErrors(t *testing.T) {
	// Property-style check: for a set of broken pipelines, every runtime
	// error raised by Execute is predicted by Analyze.
	cases := []string{
		"pipeline \"a\"\ntrain model=random_forest target=\"y\"\n",                        // string cols
		"pipeline \"b\"\nonehot \"cat\"\nonehot \"addr\"\ntrain model=knn target=\"y\"\n", // missing num
		"pipeline \"c\"\nimpute_all\nonehot \"cat\"\nonehot \"addr\"\ntrain model=fancy target=\"y\"\n",
	}
	tb := data.NewTable("t")
	n := 40
	num := make([]float64, n)
	cat := make([]string, n)
	addr := make([]string, n)
	y := make([]string, n)
	for i := 0; i < n; i++ {
		num[i] = float64(i)
		cat[i] = "c"
		addr[i] = "a"
		y[i] = []string{"p", "q"}[i%2]
	}
	nc := data.NewNumeric("num", num)
	nc.SetMissing(1)
	tb.MustAddColumn(nc)
	tb.MustAddColumn(data.NewString("cat", cat))
	tb.MustAddColumn(data.NewString("addr", addr))
	tb.MustAddColumn(data.NewString("y", y))
	tr, te := tb.Split(0.7, 1)
	for _, src := range cases {
		p, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		issues := Analyze(p, analysisCols(), data.Binary)
		ex := &Executor{Target: "y", Task: data.Binary, Seed: 1}
		if _, err := ex.Execute(p, tr, te); err == nil {
			continue // analysis may be conservative; only check failures
		}
		if len(issues) == 0 {
			t.Fatalf("runtime failure not predicted for:\n%s", src)
		}
	}
}

func issueFor(issues []Issue, code IssueCode, column string) bool {
	for _, is := range issues {
		if is.Code == code && is.Column == column {
			return true
		}
	}
	return false
}

func TestAnalyzeMultiColumnUnknown(t *testing.T) {
	// Every name in a multi-column statement is checked, not just the
	// first: interaction's second operand must be flagged too.
	src := `pipeline "x"
impute_all
onehot "cat"
onehot "addr"
interaction "num" "ghost" op=product
train model=knn target="y"
`
	issues := analyze(t, src, data.Multiclass)
	if !issueFor(issues, IssueUnknownColumn, "ghost") {
		t.Fatalf("interaction second arg not checked: %+v", issues)
	}
}

func TestAnalyzeExtraOpLookups(t *testing.T) {
	// The extended ops go through the same footprint checks as the core
	// set — a phantom column in any of them is an UNKNOWN_COLUMN.
	for _, stmt := range []string{
		`bin_numeric "ghost" bins=4`,
		`log_transform "ghost"`,
		`winsorize "ghost"`,
		`target_encode "ghost"`,
		`remove_outliers "ghost"`,
	} {
		src := "pipeline \"x\"\n" + stmt + "\nimpute_all\nonehot \"cat\"\nonehot \"addr\"\ntrain target=\"y\"\n"
		issues := analyze(t, src, data.Multiclass)
		if !issueFor(issues, IssueUnknownColumn, "ghost") {
			t.Fatalf("%s: phantom column not flagged: %+v", stmt, issues)
		}
	}
}

func TestAnalyzeMixedEncoderDoubleEncode(t *testing.T) {
	// Encoding the same column with two *different* encoders is still a
	// double encode; the shared op table marks them all as encoders.
	for _, pair := range [][2]string{
		{`onehot "cat"`, `hash_encode "cat"`},
		{`hash_encode "cat"`, `ordinal "cat"`},
		{`target_encode "cat"`, `onehot "cat"`},
		{`khot "cat"`, `target_encode "cat"`},
	} {
		src := "pipeline \"x\"\nimpute_all\n" + pair[0] + "\n" + pair[1] + "\nonehot \"addr\"\ntrain target=\"y\"\n"
		issues := analyze(t, src, data.Multiclass)
		if !issueFor(issues, IssueDoubleEncode, "cat") {
			t.Fatalf("%s then %s: double encode not flagged: %+v", pair[0], pair[1], issues)
		}
	}
}

func TestAnalyzeUnknownColumnReportedOnce(t *testing.T) {
	// In-place ops read and write the same column; the missing-column
	// check must still fire exactly once per statement.
	src := "pipeline \"x\"\nimpute \"ghost\"\nimpute_all\nonehot \"cat\"\nonehot \"addr\"\ntrain target=\"y\"\n"
	issues := analyze(t, src, data.Multiclass)
	n := 0
	for _, is := range issues {
		if is.Code == IssueUnknownColumn {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("want exactly 1 UNKNOWN_COLUMN, got %d: %+v", n, issues)
	}
}

func TestAnalyzeWholeTableForms(t *testing.T) {
	// The whole-table keyword of each op has no static footprint; any
	// other first argument is a column name and must resolve — matching
	// what the executor's requireCol would raise.
	src := `pipeline "x"
clip_outliers all
scale all_numeric
remove_outliers "num"
impute_all
onehot "cat"
onehot "addr"
train target="y"
`
	if issues := analyze(t, src, data.Multiclass); len(issues) != 0 {
		t.Fatalf("whole-table forms flagged: %+v", issues)
	}
	// scale's keyword is all_numeric, not all: runtime would raise
	// UNKNOWN_COLUMN for `scale all`, and analysis predicts it.
	src2 := "pipeline \"x\"\nscale all\nimpute_all\nonehot \"cat\"\nonehot \"addr\"\ntrain target=\"y\"\n"
	if issues := analyze(t, src2, data.Multiclass); !issueFor(issues, IssueUnknownColumn, "all") {
		t.Fatalf("scale all not flagged: %+v", issues)
	}
}

func TestAnalyzeDerivedEncoderColumnsPresent(t *testing.T) {
	// Fixed-suffix encoder outputs (__hash/__ord/__tenc) are tracked as
	// present columns, so downstream references to them resolve.
	src := `pipeline "x"
hash_encode "cat"
scale "cat__hash"
impute_all
onehot "addr"
train target="y"
`
	if issues := analyze(t, src, data.Multiclass); len(issues) != 0 {
		t.Fatalf("derived column reference flagged: %+v", issues)
	}
}
