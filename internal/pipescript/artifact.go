package pipescript

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"catdb/internal/data"
	"catdb/internal/ml"
	"catdb/internal/obs"
)

// ArtifactVersion is the fitted-pipeline schema version. Load rejects
// artifacts from any other version rather than guessing at forward or
// backward compatibility.
const ArtifactVersion = 1

// FittedStep is one recorded preprocessing step of a fitted pipeline:
// the op name plus exactly the parameters fitted on training data. The
// union of fields across ops is flattened into a single struct so the
// JSON encoding stays schema-stable; only the fields an op uses are set.
type FittedStep struct {
	Op   string `json:"op"`
	Col  string `json:"col,omitempty"`
	ColB string `json:"col_b,omitempty"` // interaction: second source column

	// Output column names (interaction; split_composite uses both).
	Name  string `json:"name,omitempty"`
	NameB string `json:"name_b,omitempty"`

	// impute fill values.
	Num float64 `json:"num,omitempty"`
	Str string  `json:"str,omitempty"`

	// clip bounds (clip_outliers, remove_outliers, winsorize).
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`

	// scale parameters; Method doubles as the interaction op.
	Method string  `json:"method,omitempty"`
	A      float64 `json:"a,omitempty"`
	B      float64 `json:"b,omitempty"`

	// Encoder state.
	Cats     []string          `json:"cats,omitempty"`      // onehot/khot vocabulary
	Buckets  int               `json:"buckets,omitempty"`   // hash_encode
	Mapping  map[string]int    `json:"mapping,omitempty"`   // ordinal
	ValueMap map[string]string `json:"value_map,omitempty"` // dedup_values raw→canonical
	Edges    []float64         `json:"edges,omitempty"`     // bin_numeric
	Cols     []string          `json:"cols,omitempty"`      // drop set

	// target_encode smoothed-mean state. Sums and counts are kept (rather
	// than precomputed encodings) so the transform path runs the identical
	// arithmetic the fit path ran, including for unseen categories.
	Sums   map[string]float64 `json:"sums,omitempty"`
	Counts map[string]float64 `json:"counts,omitempty"`
	Global float64            `json:"global,omitempty"`
}

// FittedPipeline is the versioned, serializable artifact a fit run
// produces: every fitted preprocessing step plus the trained model.
// Applying it to new rows (Transform/Predict) touches only feature
// columns — steps addressing the label column are evaluation-only and
// never recorded, so a serving artifact cannot read or write labels.
type FittedPipeline struct {
	Version   int             `json:"version"`
	Pipeline  string          `json:"pipeline,omitempty"` // source program name
	Task      string          `json:"task"`               // binary | multiclass | regression
	Metric    string          `json:"metric"`             // auc | r2
	ModelName string          `json:"model_name"`
	Features  []string        `json:"features"`          // model input columns, in matrix order
	Classes   []string        `json:"classes,omitempty"` // class index → label (classification)
	Steps     []FittedStep    `json:"steps"`
	Model     *ml.FittedModel `json:"model"`

	// Runtime knobs — never serialized. Workers bounds inference
	// goroutines (0 = GOMAXPROCS, 1 = serial; predictions are identical
	// at any setting). ShardRows sets the row-shard chunk size for
	// transform-time elementwise loops (0 = default, negative = serial),
	// and DAG schedules independent recorded steps as waves; both knobs
	// leave outputs bit-identical. Metrics, when set, records per-stage
	// transform latencies and prediction counters; nil disables with
	// zero overhead.
	Workers   int           `json:"-"`
	ShardRows int           `json:"-"`
	DAG       bool          `json:"-"`
	Metrics   *obs.Registry `json:"-"`

	// model caches the reconstructed live model across Predict calls.
	model any
}

// Save writes the artifact as deterministic JSON: struct fields encode
// in declaration order and map keys sort, so identical fits produce
// byte-identical artifacts.
func (fp *FittedPipeline) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(fp)
}

// SaveFile writes the artifact to path.
func (fp *FittedPipeline) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fp.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFittedPipeline reads and version-checks an artifact.
func LoadFittedPipeline(r io.Reader) (*FittedPipeline, error) {
	var fp FittedPipeline
	if err := json.NewDecoder(r).Decode(&fp); err != nil {
		return nil, fmt.Errorf("pipescript: decode artifact: %w", err)
	}
	if fp.Version != ArtifactVersion {
		return nil, &ArtifactError{Code: ErrArtifactVersion,
			Msg: fmt.Sprintf("artifact version %d, this build reads version %d", fp.Version, ArtifactVersion)}
	}
	return &fp, nil
}

// LoadFittedPipelineFile reads an artifact from path.
func LoadFittedPipelineFile(path string) (*FittedPipeline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadFittedPipeline(f)
}

// Fit executes the program like Execute and additionally records every
// fitted preprocessing parameter and the trained model into a
// FittedPipeline artifact. The returned Result is computed by exactly
// the same code path as Execute — the evaluation split is transformed by
// the very step objects the artifact stores, so applying the artifact to
// the same rows later is bit-identical by construction. Fit is not safe
// for concurrent use of one Executor.
func (e *Executor) Fit(p *Program, train, test *data.Table) (*Result, *FittedPipeline, error) {
	fp := &FittedPipeline{
		Version:  ArtifactVersion,
		Pipeline: p.Name,
		Task:     e.Task.String(),
	}
	e.record = fp
	defer func() { e.record = nil }()
	res, err := e.Execute(p, train, test)
	if err != nil {
		return nil, nil, err
	}
	if fp.Model == nil {
		return nil, nil, rtErr(lastLine(p), ErrNoTrainStmt, "pipeline trained no model to export")
	}
	return res, fp, nil
}

// touchesTarget reports whether a step addresses the label column. Such
// steps stay evaluation-only: they are applied to the held-out split for
// scoring parity with Execute but are never recorded into the artifact,
// preserving the transform path's no-label-access invariant.
func (s FittedStep) touchesTarget(target string) bool {
	if target == "" {
		return false
	}
	if s.Col == target || s.ColB == target {
		return true
	}
	for _, c := range s.Cols {
		if c == target {
			return true
		}
	}
	return false
}

// recordAndApply applies a fitted step to the evaluation split and, when
// an artifact is being recorded, appends it (unless it touches the
// target). Both the inline evaluation path and the serving path funnel
// through FittedStep.apply, which is what makes them bit-identical.
func (e *Executor) recordAndApply(step FittedStep, te *data.Table) error {
	if e.record != nil && !step.touchesTarget(e.Target) {
		e.record.Steps = append(e.record.Steps, step)
	}
	return step.apply(e.sh, te)
}
