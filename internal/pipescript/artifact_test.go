package pipescript

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"catdb/internal/data"
	"catdb/internal/ml"
	"catdb/internal/obs"
)

// messyRegTable builds a regression table with a noisy numeric target,
// missing values, and a dirty categorical for target encoding.
func messyRegTable(n int, seed int64) *data.Table {
	rng := rand.New(rand.NewSource(seed))
	num := make([]float64, n)
	num2 := make([]float64, n)
	cat := make([]string, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		c := i % 3
		num[i] = float64(c)*2 + rng.NormFloat64()*0.4
		num2[i] = rng.NormFloat64() * 3
		cat[i] = []string{"red", "RED", "green", "Green", "blue", "blue "}[c*2+rng.Intn(2)]
		y[i] = 4*float64(c) + 0.5*num2[i] + rng.NormFloat64()*0.3
	}
	t := data.NewTable("mr")
	t.MustAddColumn(data.NewNumeric("num", num))
	t.MustAddColumn(data.NewNumeric("num2", num2))
	t.MustAddColumn(data.NewString("cat", cat))
	t.MustAddColumn(data.NewNumeric("y", y))
	for i := 0; i < n; i += 17 {
		t.Col("num").SetMissing(i)
	}
	return t
}

// fitRoundTrip fits a pipeline, serializes the artifact, and loads it
// back, returning the inline result and the round-tripped artifact.
func fitRoundTrip(t *testing.T, ex *Executor, src string, tr, te *data.Table) (*Result, *FittedPipeline) {
	t.Helper()
	ex.CapturePredictions = true
	res, fp, err := ex.Fit(mustParse(t, src), tr, te)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fp.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := LoadFittedPipeline(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return res, back
}

func TestArtifactClassificationBitIdentical(t *testing.T) {
	src := `pipeline "clf"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
winsorize "num" lower=0.05 upper=0.95
scale all_numeric method=standard
train model=%s target="y" trees=10 rounds=8
evaluate metric=auto
`
	for _, model := range []string{"random_forest", "gbm", "knn"} {
		for _, fitWorkers := range []int{1, 4} {
			tr, te := split(messyTable(900, 2), 5)
			ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 3, Workers: fitWorkers}
			res, fp := fitRoundTrip(t, ex, fmt.Sprintf(src, model), tr, te)
			if len(res.TestProba) == 0 {
				t.Fatalf("%s: no captured test probabilities", model)
			}
			for _, predWorkers := range []int{1, 4} {
				fp.Workers = predWorkers
				fp.model = nil // force re-instantiation at this worker count
				pred, err := fp.Predict(te)
				if err != nil {
					t.Fatalf("%s: predict: %v", model, err)
				}
				if pred.Rows != len(res.TestProba) {
					t.Fatalf("%s: %d rows scored, inline scored %d", model, pred.Rows, len(res.TestProba))
				}
				for i := range pred.Proba {
					for j := range pred.Proba[i] {
						if pred.Proba[i][j] != res.TestProba[i][j] {
							t.Fatalf("%s (fit w=%d, pred w=%d) row %d class %d: artifact %v != inline %v",
								model, fitWorkers, predWorkers, i, j, pred.Proba[i][j], res.TestProba[i][j])
						}
					}
					if pred.Values[i] != res.TestPredictions[i] || pred.Labels[i] != res.TestLabels[i] {
						t.Fatalf("%s row %d: label %q/%v != inline %q/%v", model, i,
							pred.Labels[i], pred.Values[i], res.TestLabels[i], res.TestPredictions[i])
					}
				}
			}
		}
	}
}

func TestArtifactRegressionBitIdentical(t *testing.T) {
	src := `pipeline "reg"
impute "num" strategy=median
target_encode "cat"
winsorize "num2" lower=0.02 upper=0.98
scale "num" method=standard
train model=%s target="y" trees=10 rounds=8
evaluate metric=auto
`
	for _, model := range []string{"random_forest", "gbm", "knn"} {
		tr, te := split(messyRegTable(900, 4), 6)
		ex := &Executor{Target: "y", Task: data.Regression, Seed: 3, Workers: 2}
		res, fp := fitRoundTrip(t, ex, fmt.Sprintf(src, model), tr, te)
		if len(res.TestPredictions) == 0 {
			t.Fatalf("%s: no captured test predictions", model)
		}
		for _, predWorkers := range []int{1, 4} {
			fp.Workers = predWorkers
			fp.model = nil
			pred, err := fp.Predict(te)
			if err != nil {
				t.Fatalf("%s: predict: %v", model, err)
			}
			for i := range pred.Values {
				if pred.Values[i] != res.TestPredictions[i] {
					t.Fatalf("%s (pred w=%d) row %d: artifact %v != inline %v",
						model, predWorkers, i, pred.Values[i], res.TestPredictions[i])
				}
			}
		}
	}
}

func TestArtifactDeterministicAcrossWorkersAndSaves(t *testing.T) {
	src := `pipeline "det"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
scale all_numeric method=standard
train model=random_forest target="y" trees=8
evaluate metric=auto
`
	var blobs [][]byte
	for _, workers := range []int{1, 4} {
		tr, te := split(messyTable(600, 2), 5)
		ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 3, Workers: workers}
		_, fp, err := ex.Fit(mustParse(t, src), tr, te)
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := fp.Save(&a); err != nil {
			t.Fatal(err)
		}
		if err := fp.Save(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("artifact encoding not deterministic across saves")
		}
		blobs = append(blobs, a.Bytes())
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatal("artifact differs between fit worker counts")
	}
}

// TestScaleExemptsTargetOnTestSplit is the regression test for the
// target-leakage bug: `scale "y"` used to rescale held-out ground truth,
// so TestRMSE was computed in scaled units instead of target units.
func TestScaleExemptsTargetOnTestSplit(t *testing.T) {
	tr, te := split(messyRegTable(600, 9), 11)
	rawY := append([]float64(nil), te.Col("y").NumsView()...)
	src := `pipeline "leak"
impute "num" strategy=median
drop "cat"
scale "y" method=standard
train model=linear_regression target="y"
evaluate metric=auto
`
	ex := &Executor{Target: "y", Task: data.Regression, Seed: 1, CapturePredictions: true}
	res, err := ex.Execute(mustParse(t, src), tr, te)
	if err != nil {
		t.Fatal(err)
	}
	// The model learned the scaled target, so its raw-unit RMSE is large;
	// the reported metric must be against the UNSCALED test truth.
	want := ml.RMSE(res.TestPredictions, rawY)
	if res.TestRMSE != want {
		t.Fatalf("TestRMSE = %v, want %v (computed against raw ground truth)", res.TestRMSE, want)
	}
	// The scaled train target has std≈1 while raw y spans ~4 units per
	// class; the honest RMSE is far above the scaled-truth RMSE the old
	// code reported (which was < 1 by construction).
	if res.TestRMSE < 1 {
		t.Fatalf("TestRMSE = %v suspiciously small: test ground truth looks rescaled", res.TestRMSE)
	}
}

// TestTrainRejectsMissingTarget is the regression test for the
// NaN-target bug: missing regression targets used to flow into the fit
// as silent zeros, and missing classification labels became a "" class.
func TestTrainRejectsMissingTarget(t *testing.T) {
	src := `pipeline "nan"
impute "num" strategy=median
drop "cat"
train model=decision_tree target="y"
evaluate metric=auto
`
	t.Run("regression", func(t *testing.T) {
		tab := messyRegTable(300, 3)
		for i := 0; i < tab.NumRows(); i += 11 {
			tab.Col("y").SetMissing(i)
		}
		tr, te := split(tab, 5)
		ex := &Executor{Target: "y", Task: data.Regression, Seed: 1}
		_, err := ex.Execute(mustParse(t, src), tr, te)
		var re *RuntimeError
		if !errors.As(err, &re) || re.Code != ErrNaNInMatrix {
			t.Fatalf("err = %v, want %s for missing regression targets", err, ErrNaNInMatrix)
		}
	})
	t.Run("classification", func(t *testing.T) {
		tab := messyTable(300, 3)
		for i := 0; i < tab.NumRows(); i += 11 {
			tab.Col("y").SetMissing(i)
		}
		tr, te := split(tab, 5)
		ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
		src := `pipeline "nanc"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
train model=decision_tree target="y"
evaluate metric=auto
`
		_, err := ex.Execute(mustParse(t, src), tr, te)
		var re *RuntimeError
		if !errors.As(err, &re) || re.Code != ErrNaNInMatrix {
			t.Fatalf("err = %v, want %s for missing class labels", err, ErrNaNInMatrix)
		}
	})
}

func TestArtifactNeverRecordsLabelSteps(t *testing.T) {
	src := `pipeline "labels"
impute "num" strategy=median
impute "y" strategy=most_frequent
dedup_values "y"
dedup_values "cat"
onehot "cat"
khot "lst"
train model=decision_tree target="y"
evaluate metric=auto
`
	tab := messyTable(300, 3)
	for i := 0; i < tab.NumRows(); i += 13 {
		tab.Col("num").SetMissing(i)
	}
	tr, te := split(tab, 5)
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	_, fp, err := ex.Fit(mustParse(t, src), tr, te)
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range fp.Steps {
		if step.touchesTarget("y") {
			t.Fatalf("artifact recorded a label-touching step: %+v", step)
		}
	}
	for _, f := range fp.Features {
		if f == "y" {
			t.Fatal("label column listed as a model feature")
		}
	}
}

func TestPredictContractErrors(t *testing.T) {
	src := `pipeline "contract"
dedup_values "cat"
onehot "cat"
khot "lst"
train model=decision_tree target="y"
evaluate metric=auto
`
	base := messyTable(300, 3)
	// No missing numerics for this pipeline (no impute step).
	for i := 0; i < base.NumRows(); i++ {
		if base.Col("num").IsMissing(i) {
			base.Col("num").ClearMissing(i)
			base.Col("num").SetNum(i, 0)
		}
	}
	tr, te := split(base, 5)
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	_, fp, err := ex.Fit(mustParse(t, src), tr, te)
	if err != nil {
		t.Fatal(err)
	}
	wantCode := func(t *testing.T, err error, code string) {
		t.Helper()
		var ae *ArtifactError
		if !errors.As(err, &ae) || ae.Code != code {
			t.Fatalf("err = %v, want artifact error %s", err, code)
		}
	}
	t.Run("absent_feature", func(t *testing.T) {
		batch := te.Clone()
		batch.DropColumn("cat") // its onehot features can never materialize
		_, err := fp.Predict(batch)
		wantCode(t, err, ErrFeatureAbsent)
	})
	t.Run("nan_feature", func(t *testing.T) {
		batch := te.Clone()
		batch.Col("num").SetMissing(0)
		_, err := fp.Predict(batch)
		wantCode(t, err, ErrFeatureNaN)
	})
	t.Run("version_mismatch", func(t *testing.T) {
		bad := *fp
		bad.Version = ArtifactVersion + 1
		_, err := bad.Predict(te)
		wantCode(t, err, ErrArtifactVersion)
		var buf bytes.Buffer
		if err := bad.Save(&buf); err != nil {
			t.Fatal(err)
		}
		_, err = LoadFittedPipeline(&buf)
		wantCode(t, err, ErrArtifactVersion)
	})
	t.Run("no_model", func(t *testing.T) {
		bad := *fp
		bad.Model = nil
		_, err := bad.Predict(te)
		wantCode(t, err, ErrArtifactModel)
	})
}

func TestPredictRecordsMetrics(t *testing.T) {
	src := `pipeline "obs"
dedup_values "cat"
onehot "cat"
khot "lst"
impute "num" strategy=median
train model=decision_tree target="y"
evaluate metric=auto
`
	tr, te := split(messyTable(300, 3), 5)
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	_, fp, err := ex.Fit(mustParse(t, src), tr, te)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fp.Metrics = reg
	if _, err := fp.Predict(te); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("catdb_predict_rows_total").Value(); got != int64(te.NumRows()) {
		t.Fatalf("rows counter = %d, want %d", got, te.NumRows())
	}
	if reg.Counter("catdb_predict_batches_total").Value() != 1 {
		t.Fatal("batch counter not incremented")
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"catdb_predict_seconds", "catdb_transform_stage_seconds"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("prom output missing %s", want)
		}
	}
}
