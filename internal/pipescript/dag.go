package pipescript

import (
	"fmt"
	"sort"
	"strings"
)

// This file lowers a linear PipeScript program into a dependency DAG.
// The program is first split into segments at barrier statements
// (whole-table ops: row drops/appends, "all" forms, train). Within a
// segment, each statement's column footprint (optable.go refs) yields
// edges: statement j depends on an earlier statement i when i writes,
// removes, or adds a column that j touches, or j writes/removes a
// column that i reads. Read-read sharing carries no edge — column
// summaries memoize through atomic pointers, so concurrent read-only
// access (including racing identical summary computations) is safe.
//
// Resolution is intentionally conservative: if any referenced column
// cannot be proven present at its statement (or an added name could
// collide — e.g. with another add, an existing column, or a one-hot's
// data-dependent "col__" output prefix), the whole segment falls back
// to linear execution. Fallback is never an error: the linear path
// raises exactly the message the program would have raised anyway, so
// results and errors are independent of scheduling.

// dagNode is one schedulable statement inside a segment.
type dagNode struct {
	idx  int // statement index in the program (error-ordering key)
	st   Stmt
	spec *opSpec
	refs colRefs
	deps []dagDep // earlier nodes this one must wait for
}

type dagDep struct {
	node int    // index into the segment's node slice
	col  string // first conflicting column (for rendering)
}

// segment is a maximal run of non-barrier statements, optionally
// terminated by one barrier statement.
type segment struct {
	stmts   []Stmt
	barrier *Stmt
}

// segmentProgram splits the statement list at barriers.
func segmentProgram(p *Program) []segment {
	var segs []segment
	cur := segment{}
	for i := range p.Stmts {
		st := p.Stmts[i]
		spec := opRegistry[st.Op]
		if spec == nil || spec.isBarrierStmt(st) {
			cur.barrier = &p.Stmts[i]
			segs = append(segs, cur)
			cur = segment{}
			continue
		}
		cur.stmts = append(cur.stmts, st)
	}
	if len(cur.stmts) > 0 {
		segs = append(segs, cur)
	}
	return segs
}

// resolveSegment statically checks every column reference in a segment
// against the set of columns present when the segment starts, and
// derives dependency edges. start is the program index of the first
// statement. ok=false (with a reason) means the segment must run
// linearly.
func resolveSegment(stmts []Stmt, start int, present map[string]bool, target string) ([]*dagNode, string, bool) {
	sim := make(map[string]bool, len(present))
	for name := range present {
		sim[name] = true
	}
	var activePrefixes []string
	matchesPrefix := func(name string) string {
		for _, p := range activePrefixes {
			if strings.HasPrefix(name, p) {
				return p
			}
		}
		return ""
	}
	nodes := make([]*dagNode, 0, len(stmts))
	for i, st := range stmts {
		spec := opRegistry[st.Op]
		nd := &dagNode{idx: start + i, st: st, spec: spec}
		if !spec.pure {
			nd.refs = spec.refs(st, target)
			r := nd.refs
			for _, name := range r.names() {
				if p := matchesPrefix(name); p != "" {
					return nil, fmt.Sprintf("column %q may be produced under encoder prefix %q", name, p), false
				}
			}
			for _, name := range r.reads {
				if !sim[name] {
					return nil, fmt.Sprintf("column %q not statically present at line %d", name, st.Line), false
				}
			}
			for _, name := range r.writes {
				if !sim[name] {
					return nil, fmt.Sprintf("column %q not statically present at line %d", name, st.Line), false
				}
			}
			for _, name := range r.removes {
				if !sim[name] {
					return nil, fmt.Sprintf("column %q not statically present at line %d", name, st.Line), false
				}
			}
			for _, name := range r.adds {
				if sim[name] {
					// Adding over an existing name must fail with the real
					// table's duplicate-column error — run linearly.
					return nil, fmt.Sprintf("added column %q collides with an existing column", name), false
				}
			}
			for _, p := range r.prefixes {
				for name := range sim {
					if strings.HasPrefix(name, p) {
						return nil, fmt.Sprintf("existing column %q under encoder prefix %q", name, p), false
					}
				}
				for _, q := range activePrefixes {
					if strings.HasPrefix(p, q) || strings.HasPrefix(q, p) {
						return nil, fmt.Sprintf("encoder prefixes %q and %q overlap", p, q), false
					}
				}
			}
			for _, name := range r.removes {
				delete(sim, name)
			}
			for _, name := range r.adds {
				sim[name] = true
			}
			activePrefixes = append(activePrefixes, r.prefixes...)
		}
		for j, prev := range nodes {
			if col, hit := refsConflict(prev.refs, nd.refs); hit {
				nd.deps = append(nd.deps, dagDep{node: j, col: col})
			}
		}
		nodes = append(nodes, nd)
	}
	return nodes, "", true
}

// refsConflict reports whether two footprints require ordering, and
// names the first conflicting column. a is the earlier statement.
func refsConflict(a, b colRefs) (string, bool) {
	aw := map[string]bool{}
	for _, n := range a.writes {
		aw[n] = true
	}
	for _, n := range a.removes {
		aw[n] = true
	}
	for _, n := range a.adds {
		aw[n] = true
	}
	// i's writes vs anything j touches.
	for _, n := range b.names() {
		if aw[n] {
			return n, true
		}
	}
	// i's reads vs j's writes/removes/adds.
	ar := map[string]bool{}
	for _, n := range a.reads {
		ar[n] = true
	}
	for _, n := range b.writes {
		if ar[n] {
			return n, true
		}
	}
	for _, n := range b.removes {
		if ar[n] {
			return n, true
		}
	}
	for _, n := range b.adds {
		if ar[n] {
			return n, true
		}
	}
	return "", false
}

// waveOrder computes deterministic Kahn levels: wave[k] holds the node
// indices (ascending) whose dependencies all lie in earlier waves.
func waveOrder(nodes []*dagNode) [][]int {
	level := make([]int, len(nodes))
	maxLevel := 0
	for i, nd := range nodes { // deps always point backwards, one pass suffices
		for _, d := range nd.deps {
			if level[d.node]+1 > level[i] {
				level[i] = level[d.node] + 1
			}
		}
		if level[i] > maxLevel {
			maxLevel = level[i]
		}
	}
	waves := make([][]int, maxLevel+1)
	for i := range nodes {
		waves[level[i]] = append(waves[level[i]], i)
	}
	return waves
}

// RenderDAG renders the dependency-DAG plan of a program over the
// given initial column set, as the scheduler would partition it:
// segments of parallel waves separated by serial barriers. It is a
// static preview — segments whose references cannot be proven resolve
// are marked serial, and barriers with statically unknown effects
// (drop_constant, select_topk, ...) may make later segments resolve
// differently at run time. Used for plan goldens and -dag-plan output.
func RenderDAG(p *Program, cols []string, target string) string {
	var b strings.Builder
	present := map[string]bool{}
	for _, c := range cols {
		present[c] = true
	}
	segs := segmentProgram(p)
	fmt.Fprintf(&b, "dag %q: %d statement(s), %d segment(s)\n", p.Name, len(p.Stmts), len(segs))
	start := 0
	for si, seg := range segs {
		if len(seg.stmts) > 0 {
			nodes, reason, ok := resolveSegment(seg.stmts, start, present, target)
			if !ok {
				fmt.Fprintf(&b, "segment %d: serial (%s)\n", si+1, reason)
				for _, st := range seg.stmts {
					fmt.Fprintf(&b, "  [line %d] %s\n", st.Line, renderStmt(st))
				}
			} else {
				waves := waveOrder(nodes)
				fmt.Fprintf(&b, "segment %d: parallel (%d node(s), %d wave(s))\n", si+1, len(nodes), len(waves))
				for wi, wave := range waves {
					fmt.Fprintf(&b, "  wave %d:\n", wi+1)
					for _, ni := range wave {
						nd := nodes[ni]
						fmt.Fprintf(&b, "    [line %d] %s%s\n", nd.st.Line, renderStmt(nd.st), renderDeps(nodes, nd))
					}
				}
				// Advance the simulated column set past the segment.
				for _, nd := range nodes {
					for _, name := range nd.refs.removes {
						delete(present, name)
					}
					for _, name := range nd.refs.adds {
						present[name] = true
					}
				}
			}
		}
		start += len(seg.stmts)
		if seg.barrier != nil {
			fmt.Fprintf(&b, "barrier [line %d] %s\n", seg.barrier.Line, renderStmt(*seg.barrier))
			start++
		}
	}
	return b.String()
}

func renderStmt(st Stmt) string {
	parts := []string{st.Op}
	parts = append(parts, st.Args...)
	keys := make([]string, 0, len(st.KV))
	for k := range st.KV {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, k+"="+st.KV[k])
	}
	return strings.Join(parts, " ")
}

func renderDeps(nodes []*dagNode, nd *dagNode) string {
	if len(nd.deps) == 0 {
		return ""
	}
	parts := make([]string, len(nd.deps))
	for i, d := range nd.deps {
		parts[i] = fmt.Sprintf("line %d (%s)", nodes[d.node].st.Line, d.col)
	}
	return "  <- " + strings.Join(parts, ", ")
}
