package pipescript

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"catdb/internal/bench/baseline"
	"catdb/internal/data"
)

// BenchmarkDAGPreprocess measures the DAG scheduler against linear
// execution on a wide multi-branch preprocessing program over a
// 100k-row table: per-column impute/winsorize/log_transform/scale
// chains on the numeric columns and dedup_values/onehot chains on the
// categorical ones — 18 independent branches with no cross-column
// dependencies, the best case for wave scheduling.
//
// `make bench` runs this twice: BENCH_BASELINE=dag (alias:
// BENCH_DAG_MODE=serial) captures the linear baseline into
// BENCH_dag.json, then the default DAG pass records the scheduled
// numbers against it.
func BenchmarkDAGPreprocess(b *testing.B) {
	const rows = 100_000
	const numCols = 12
	const catCols = 6
	rng := rand.New(rand.NewSource(11))
	base := data.NewTable("bench")
	for c := 0; c < numCols; c++ {
		vals := make([]float64, rows)
		for i := range vals {
			vals[i] = rng.NormFloat64()*float64(c+1) + 1.5
		}
		col := data.NewNumeric(fmt.Sprintf("num%02d", c), vals)
		for i := c; i < rows; i += 97 {
			col.SetMissing(i)
		}
		base.MustAddColumn(col)
	}
	cats := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for c := 0; c < catCols; c++ {
		vals := make([]string, rows)
		for i := range vals {
			vals[i] = cats[(i+c)%len(cats)]
		}
		base.MustAddColumn(data.NewString(fmt.Sprintf("cat%02d", c), vals))
	}
	var src strings.Builder
	src.WriteString("pipeline \"wide\"\n")
	for c := 0; c < numCols; c++ {
		name := fmt.Sprintf("num%02d", c)
		fmt.Fprintf(&src, "impute %q strategy=median\n", name)
		fmt.Fprintf(&src, "winsorize %q\n", name)
		fmt.Fprintf(&src, "log_transform %q\n", name)
		fmt.Fprintf(&src, "scale %q method=standard\n", name)
	}
	for c := 0; c < catCols; c++ {
		name := fmt.Sprintf("cat%02d", c)
		fmt.Fprintf(&src, "dedup_values %q\n", name)
		fmt.Fprintf(&src, "onehot %q\n", name)
	}
	p, err := Parse(src.String())
	if err != nil {
		b.Fatal(err)
	}
	dag := !baseline.Lane("dag", "BENCH_DAG_MODE", "serial")
	for _, workers := range []int{4} {
		name := fmt.Sprintf("rows=%d/branches=%d/workers=%d", rows, numCols+catCols, workers)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				tr := base.Clone()
				te := base.Head(512)
				ex := &Executor{Seed: 1, AllowNoTrain: true, DAG: dag, Workers: workers}
				b.StartTimer()
				if _, err := ex.Execute(p, tr, te); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
