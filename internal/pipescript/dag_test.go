package pipescript

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"catdb/internal/data"
	"catdb/internal/obs"
)

// dagWorkerCounts are the pool sizes every equivalence test sweeps.
var dagWorkerCounts = []int{1, 2, 4, 8}

// execBothWays runs the program linearly and as a DAG at every worker
// count and requires bit-identical results and errors.
func execBothWays(t *testing.T, src string, tr, te *data.Table, target string, task data.Task) (*Result, error) {
	t.Helper()
	p := mustParse(t, src)
	lin := &Executor{Target: target, Task: task, Seed: 1, AllowNoTrain: true}
	wantRes, wantErr := lin.Execute(p, tr, te)
	for _, w := range dagWorkerCounts {
		dag := &Executor{Target: target, Task: task, Seed: 1, AllowNoTrain: true, DAG: true, Workers: w}
		gotRes, gotErr := dag.Execute(p, tr, te)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("workers=%d: linear err=%v dag err=%v", w, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("workers=%d: error mismatch\nlinear: %v\ndag:    %v", w, wantErr, gotErr)
			}
			continue
		}
		a, b := *wantRes, *gotRes
		a.Program, b.Program = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("workers=%d: result mismatch\nlinear: %+v\ndag:    %+v", w, a, b)
		}
	}
	return wantRes, wantErr
}

func TestDAGMatchesLinearWidePipeline(t *testing.T) {
	tr, te := split(messyTable(600, 1), 7)
	res, err := execBothWays(t, `pipeline "wide"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
winsorize "num" lower=0.05 upper=0.95
log_transform "num"
scale "num" method=standard
train model=random_forest target="y" trees=15
evaluate metric=auto
`, tr, te, "y", data.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAUC <= 0 {
		t.Fatalf("expected a trained model, got %+v", res)
	}
}

func TestDAGMatchesLinearEncodersAndBarriers(t *testing.T) {
	tr, te := split(messyTable(500, 3), 5)
	execBothWays(t, `pipeline "mixed"
dedup_values "cat"
hash_encode "cat" buckets=16
impute "num" strategy=mean
impute_all strategy=auto
bin_numeric "num" bins=4
drop_constant
train model=gbm target="y" rounds=8
`, tr, te, "y", data.Multiclass)
}

func TestDAGMatchesLinearRegression(t *testing.T) {
	n := 400
	rng := rand.New(rand.NewSource(9))
	a := make([]float64, n)
	b := make([]float64, n)
	y := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.Float64() * 10
		y[i] = 3*a[i] - b[i] + rng.NormFloat64()*0.1
	}
	tab := data.NewTable("reg")
	tab.MustAddColumn(data.NewNumeric("a", a))
	tab.MustAddColumn(data.NewNumeric("b", b))
	tab.MustAddColumn(data.NewNumeric("y", y))
	tr, te := split(tab, 11)
	execBothWays(t, `pipeline "reg"
interaction "a" "b" op=product
log_transform "b"
scale "a" method=minmax
train model=linear_regression target="y"
`, tr, te, "y", data.Regression)
}

// Errors must surface identically: unknown columns force the segment
// onto the linear path (so messages embed the live column count), and
// when several branches fail the lowest-line error wins.
func TestDAGMatchesLinearErrors(t *testing.T) {
	for _, src := range []string{
		"pipeline \"e\"\nimpute \"nope\" strategy=median\ntrain target=\"y\"\n",
		"pipeline \"e\"\nscale \"cat\"\nscale \"lst\"\ntrain target=\"y\"\n",
		"pipeline \"e\"\nonehot \"cat\"\nscale \"lst\" method=standard\nkhot \"num\"\ntrain target=\"y\"\n",
		"pipeline \"e\"\nrequire \"pandas\"\nimpute \"num\"\ntrain target=\"y\"\n",
		"pipeline \"e\"\ndrop \"y\"\ntrain target=\"y\"\n",
	} {
		tr, te := split(messyTable(200, 2), 3)
		if _, err := execBothWays(t, src, tr, te, "y", data.Multiclass); err == nil {
			t.Fatalf("expected an error from %q", src)
		}
	}
}

// The deferred one-hot feature-cap check must fire with the same error
// at the same line as the linear immediate check.
func TestDAGMatchesLinearFeatureCap(t *testing.T) {
	n := 6000 // 0.7 split keeps 4200 distinct categories, over the 4096 cap
	vals := make([]string, n)
	num := make([]float64, n)
	y := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("cat_%04d", i) // all distinct
		num[i] = float64(i % 7)
		y[i] = []string{"a", "b"}[i%2]
	}
	tab := data.NewTable("cap")
	tab.MustAddColumn(data.NewString("wide", vals))
	tab.MustAddColumn(data.NewNumeric("num", num))
	tab.MustAddColumn(data.NewString("y", y))
	tr, te := split(tab, 1)
	_, err := execBothWays(t, `pipeline "cap"
impute "num" strategy=median
onehot "wide" max_categories=5000
train target="y"
`, tr, te, "y", data.Binary)
	if err == nil || !strings.Contains(err.Error(), "would exceed") {
		t.Fatalf("expected the feature-cap error, got %v", err)
	}
}

// Fitted artifacts must serialize byte-identically whichever way the
// pipeline executed: step order is the statement order, not the
// completion order.
func TestDAGFitArtifactIdentical(t *testing.T) {
	src := `pipeline "fit"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
scale "num" method=standard
train model=random_forest target="y" trees=10
`
	p := mustParse(t, src)
	tr, te := split(messyTable(400, 5), 9)
	lin := &Executor{Target: "y", Task: data.Multiclass, Seed: 2}
	_, wantFP, err := lin.Fit(p, tr, te)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(wantFP)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range dagWorkerCounts {
		dag := &Executor{Target: "y", Task: data.Multiclass, Seed: 2, DAG: true, Workers: w}
		_, gotFP, err := dag.Fit(p, tr, te)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(gotFP)
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Fatalf("workers=%d: artifact differs\nlinear: %s\ndag:    %s", w, want, got)
		}
	}
}

// Randomized programs over a mixed-type table: DAG scheduling must
// reproduce linear execution (results and errors) at every worker
// count, whatever the program shape.
func TestDAGPropertyRandomPrograms(t *testing.T) {
	mk := func() (*data.Table, *data.Table) {
		n := 240
		rng := rand.New(rand.NewSource(42))
		alpha := make([]float64, n)
		beta := make([]float64, n)
		gamma := make([]string, n)
		delta := make([]string, n)
		y := make([]string, n)
		for i := 0; i < n; i++ {
			alpha[i] = rng.NormFloat64()
			beta[i] = float64(i % 5)
			gamma[i] = []string{"x", "y", "z"}[i%3]
			delta[i] = []string{"p", "q"}[i%2]
			y[i] = []string{"no", "yes"}[i%2]
		}
		tab := data.NewTable("prop")
		tab.MustAddColumn(data.NewNumeric("alpha", alpha))
		tab.MustAddColumn(data.NewNumeric("beta", beta))
		tab.MustAddColumn(data.NewString("gamma", gamma))
		tab.MustAddColumn(data.NewString("delta", delta))
		tab.MustAddColumn(data.NewString("y", y))
		for i := 0; i < n; i += 13 {
			tab.Col("alpha").SetMissing(i)
		}
		return split(tab, 17)
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := genProgram(rng)
		tr, te := mk()
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			execBothWays(t, src, tr, te, "y", data.Binary)
		})
	}
}

// The scheduler's structural counters (nodes, waves, segments) are a
// property of the DAG, not of the pool size: they must be identical at
// every worker count.
func TestDAGMetricsDeterministic(t *testing.T) {
	src := `pipeline "m"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
scale "num" method=standard
train model=naive_bayes target="y"
`
	p := mustParse(t, src)
	counters := func(w int) map[string]int64 {
		tr, te := split(messyTable(300, 4), 5)
		reg := obs.NewRegistry()
		ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1, DAG: true, Workers: w, Metrics: reg}
		if _, err := ex.Execute(p, tr, te); err != nil {
			t.Fatal(err)
		}
		return map[string]int64{
			"nodes_impute":  reg.Counter("catdb_dag_nodes_total", "op", "impute").Value(),
			"nodes_onehot":  reg.Counter("catdb_dag_nodes_total", "op", "onehot").Value(),
			"waves":         reg.Counter("catdb_dag_waves_total").Value(),
			"seg_parallel":  reg.Counter("catdb_dag_segments_total", "mode", "parallel").Value(),
			"seg_linear":    reg.Counter("catdb_dag_segments_total", "mode", "linear").Value(),
			"execs":         reg.Counter("catdb_pipescript_execs_total").Value(),
			"nodes_scale":   reg.Counter("catdb_dag_nodes_total", "op", "scale").Value(),
			"nodes_dedup":   reg.Counter("catdb_dag_nodes_total", "op", "dedup_values").Value(),
			"nodes_khot":    reg.Counter("catdb_dag_nodes_total", "op", "khot").Value(),
			"nodes_missing": reg.Counter("catdb_dag_nodes_total", "op", "train").Value(), // train is a barrier: never a node
		}
	}
	want := counters(1)
	if want["nodes_onehot"] != 1 || want["seg_parallel"] != 1 || want["nodes_missing"] != 0 {
		t.Fatalf("unexpected baseline counters: %+v", want)
	}
	for _, w := range dagWorkerCounts[1:] {
		if got := counters(w); !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: counters diverge\nwant %+v\ngot  %+v", w, want, got)
		}
	}
}

// TestOpTableComplete pins the optable contract: every parseable op is
// registered with a handler and either a footprint, a barrier rule, or
// an explicit pure marker — the properties the DAG builder relies on.
func TestOpTableComplete(t *testing.T) {
	if len(knownOps) == 0 || len(knownOps) != len(opRegistry) {
		t.Fatalf("knownOps (%d) and opRegistry (%d) out of sync", len(knownOps), len(opRegistry))
	}
	for name, minArgs := range knownOps {
		spec := opRegistry[name]
		if spec == nil {
			t.Fatalf("op %q parseable but unregistered", name)
		}
		if spec.minArgs != minArgs {
			t.Fatalf("op %q: arity mismatch (%d vs %d)", name, spec.minArgs, minArgs)
		}
		if spec.exec == nil {
			t.Fatalf("op %q has no handler", name)
		}
		if !spec.pure && spec.refs == nil && spec.barrier == nil {
			t.Fatalf("op %q declares neither refs nor barrier", name)
		}
	}
}

// Golden for the DAG topology rendering of a representative pipeline.
func TestDAGRenderGolden(t *testing.T) {
	p := mustParse(t, `pipeline "demo"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
scale "num" method=standard
impute_all strategy=auto
hash_encode "cat2" buckets=8
interaction "num" "num2" op=product
train model=random_forest target="y" trees=20
`)
	got := RenderDAG(p, []string{"num", "num2", "cat", "cat2", "y"}, "y")
	want := `dag "demo": 9 statement(s), 2 segment(s)
segment 1: parallel (5 node(s), 2 wave(s))
  wave 1:
    [line 1] pipeline demo
    [line 2] impute num strategy=median
    [line 3] dedup_values cat
  wave 2:
    [line 4] onehot cat  <- line 3 (cat)
    [line 5] scale num method=standard  <- line 2 (num)
barrier [line 6] impute_all strategy=auto
segment 2: parallel (2 node(s), 1 wave(s))
  wave 1:
    [line 7] hash_encode cat2 buckets=8
    [line 8] interaction num num2 op=product
barrier [line 9] train model=random_forest target=y trees=20
`
	if got != want {
		t.Fatalf("render mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
