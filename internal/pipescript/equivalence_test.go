package pipescript

import (
	"reflect"
	"testing"

	"catdb/internal/data"
)

// materialize rebuilds a table into fresh dense storage through the
// public accessors, severing any storage sharing with views.
func materialize(t *data.Table) *data.Table {
	out := data.NewTable(t.Name)
	for _, c := range t.Cols {
		var nc *data.Column
		if c.Kind == data.KindString {
			nc = data.NewString(c.Name, append([]string(nil), c.StrsView()...))
		} else {
			nc = data.NewNumeric(c.Name, append([]float64(nil), c.NumsView()...))
		}
		nc.Kind = c.Kind
		for i := 0; i < c.Len(); i++ {
			if c.IsMissing(i) {
				nc.SetMissing(i)
			}
		}
		out.MustAddColumn(nc)
	}
	return out
}

// Executing a pipeline on zero-copy split views must produce a result
// bit-identical to executing it on the same rows materialized into dense
// storage (the pre-view deep-copy semantics): imputation, scaling,
// encoding, rebalancing, and model training all read and write through
// the copy-on-write layer without observable change.
func TestExecuteOnViewsMatchesMaterialized(t *testing.T) {
	base := messyTable(600, 9)
	trView, teView := base.Split(0.7, 13) // index-mapped views of base

	src := `pipeline "equiv"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
scale all_numeric method=standard
rebalance method=adasyn target="y"
train model=gradient_boosting target="y" trees=10
evaluate metric=auto
`
	run := func(tr, te *data.Table) *Result {
		t.Helper()
		ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 4}
		res, err := ex.Execute(mustParse(t, src), tr, te)
		if err != nil {
			t.Fatal(err)
		}
		res.Program = nil // parsed per run; everything else must match exactly
		return res
	}

	before := materialize(base) // snapshot of the base cells
	viewRes := run(trView, teView)
	denseRes := run(materialize(trView), materialize(teView))
	if !reflect.DeepEqual(viewRes, denseRes) {
		t.Fatalf("view execution differs from materialized execution:\nview:  %+v\ndense: %+v", viewRes, denseRes)
	}

	// The base table the views came from is untouched by the run: the
	// executor clones, and every write copy-on-write-promotes away from
	// the shared storage.
	for ci, c := range base.Cols {
		want := before.Cols[ci]
		for i := 0; i < c.Len(); i++ {
			if c.ValueString(i) != want.ValueString(i) || c.IsMissing(i) != want.IsMissing(i) {
				t.Fatalf("base table mutated by pipeline run: col %s row %d", c.Name, i)
			}
		}
	}
}
