package pipescript

import "fmt"

// Runtime error codes. internal/errkb classifies these into the paper's
// three groups (KB / SE / RE) and knows local patches for some of them.
const (
	ErrPkgMissing      = "E_PKG_MISSING"       // require-d package not installed (KB)
	ErrUnknownColumn   = "E_UNKNOWN_COLUMN"    // statement references a column that does not exist (RE)
	ErrStringInMatrix  = "E_STRING_IN_MATRIX"  // un-encoded string feature at train time (RE)
	ErrNaNInMatrix     = "E_NAN_IN_MATRIX"     // missing values reached the model (RE)
	ErrTypeMismatch    = "E_TYPE_MISMATCH"     // numeric op on non-numeric column or vice versa (RE)
	ErrBadOption       = "E_BAD_OPTION"        // unparsable option value (RE)
	ErrUnknownModel    = "E_UNKNOWN_MODEL"     // train references an unknown model (RE)
	ErrNoTrainStmt     = "E_NO_TRAIN"          // pipeline never trains a model (RE)
	ErrEmptyData       = "E_EMPTY_DATA"        // all rows/columns eliminated (RE)
	ErrTargetMissing   = "E_TARGET_MISSING"    // target column absent (RE)
	ErrTaskMismatch    = "E_TASK_MISMATCH"     // e.g. rebalance on regression (RE)
	ErrModelOOM        = "E_MODEL_OOM"         // model exceeded its memory budget (RE)
	ErrTooManyFeatures = "E_TOO_MANY_FEATURES" // encoder exploded the feature space (RE)
)

// RuntimeError is a pipeline execution failure (the paper's RE class, plus
// the KB class when Code is ErrPkgMissing). It carries the statement line
// so error prompts can cite it, mirroring the <ERROR> tag contents.
type RuntimeError struct {
	Line int
	Code string
	Msg  string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("pipescript: runtime error at line %d [%s]: %s", e.Line, e.Code, e.Msg)
}

func rtErr(line int, code, format string, args ...interface{}) *RuntimeError {
	return &RuntimeError{Line: line, Code: code, Msg: fmt.Sprintf(format, args...)}
}
