package pipescript

import (
	"errors"
	"sort"
	"strconv"

	"catdb/internal/data"
	"catdb/internal/embed"
	"catdb/internal/ml"
	"catdb/internal/obs"
)

// Result is the outcome of executing a pipeline on train/test data.
type Result struct {
	Program   *Program
	ModelName string
	Metric    string  // "auc" for classification, "r2" for regression
	TrainAcc  float64 // classification: exact-match accuracy in [0,100]
	TestAcc   float64
	TrainAUC  float64 // classification: macro AUC in [0,100]
	TestAUC   float64
	TrainR2   float64 // regression: R² in [0,100] (clamped at 0)
	TestR2    float64
	TestRMSE  float64
	Features  int // feature count at train time
	TrainRows int

	// Captured only when Executor.CapturePredictions is set: the raw
	// model outputs on the test split (regression values, or class
	// probabilities plus argmax labels for classification). Used to pin
	// artifact-based serving bit-identical to inline scoring.
	TestPredictions []float64
	TestLabels      []string
	TestProba       [][]float64
}

// Primary returns the headline score: AUC for classification, R² for
// regression (both on the test split, scaled to [0,100]).
func (r *Result) Primary() float64 {
	if r.Metric == "r2" {
		return r.TestR2
	}
	return r.TestAUC
}

// Executor runs parsed PipeScript programs against a dataset split.
type Executor struct {
	Target string
	Task   data.Task
	Seed   int64
	// MaxOneHot caps categories per one-hot statement (default 64).
	MaxOneHot int
	// AllowNoTrain permits programs without a train statement (used to
	// validate CatDB Chain's intermediate preprocessing/fe pipelines).
	AllowNoTrain bool
	// Policy, when set, enforces organizational library constraints
	// (disallowed models/packages raise E_POLICY).
	Policy *Policy
	// Workers bounds the goroutines tree ensembles and KNN use for fitting
	// and batch inference (0 = GOMAXPROCS, 1 = serial). Models derive
	// per-tree/per-class seeds, so results are identical at any setting.
	// With DAG set it also bounds concurrent pipeline statements.
	Workers int
	// DAG schedules independent statements (disjoint column footprints
	// between barriers) concurrently over internal/pool instead of
	// executing the program linearly. Results, fitted artifacts, and
	// errors are bit-identical to linear execution at any Workers
	// setting; statements whose column references cannot be resolved
	// statically fall back to linear execution automatically.
	DAG bool
	// ShardRows caps the rows one shard task covers when elementwise op
	// loops are split across workers (0 = the 32768 default; negative
	// disables row sharding). Whether and how a loop shards depends only
	// on the row count and this setting — never on Workers — and shards
	// write disjoint row ranges, so results, artifacts, errors, and the
	// catdb_shard_tasks_total metrics are bit-identical to serial
	// execution at any (Workers, ShardRows).
	ShardRows int
	// Metrics, when set, records execution counts, latencies, and error
	// codes (catdb_pipescript_*) into the observability registry. Nil
	// disables recording with zero overhead.
	Metrics *obs.Registry
	// Span, when set, parents the DAG scheduler's span tree: one
	// dag-segment span per parallel segment, dag-wave per Kahn wave,
	// dag-node per executed statement — the hierarchy the critical-path
	// and flamegraph exporters attribute wall time over. Spans observe
	// only; results stay bit-identical with or without them. Nil (the
	// default) disables recording with zero overhead.
	Span *obs.Span
	// CapturePredictions copies the model's raw test-split outputs into
	// Result.TestPredictions/TestLabels/TestProba (off by default: the
	// search loop only needs aggregate scores).
	CapturePredictions bool

	// record, when non-nil, collects fitted steps and the trained model
	// into an artifact; set by Fit for the duration of one Execute.
	record *FittedPipeline

	// Per-execution row-shard state, set by execute: the shared worker
	// budget (also consumed by the DAG wave scheduler, so waves × shards
	// never oversubscribe Workers) and the sharder elementwise op loops
	// fan out through (nil when ShardRows < 0).
	budget *workerBudget
	sh     *sharder
}

// Execute validates and runs the program on copies of train/test. The
// returned error, if any, is a *RuntimeError (semantic failures) — syntax
// failures are reported by Parse.
func (e *Executor) Execute(p *Program, train, test *data.Table) (*Result, error) {
	if e.Metrics == nil {
		return e.execute(p, train, test)
	}
	start := obs.Now()
	res, err := e.execute(p, train, test)
	e.Metrics.Histogram("catdb_pipescript_exec_seconds", obs.DefBuckets).Observe(obs.Since(start).Seconds())
	e.Metrics.Counter("catdb_pipescript_execs_total").Inc()
	if err != nil {
		code := "E_UNKNOWN"
		var re *RuntimeError
		if errors.As(err, &re) {
			code = re.Code
		}
		e.Metrics.Counter("catdb_pipescript_exec_errors_total", "code", code).Inc()
	}
	return res, err
}

// execute is the uninstrumented body of Execute.
func (e *Executor) execute(p *Program, train, test *data.Table) (*Result, error) {
	tr := train.Clone()
	te := test.Clone()
	maxOH := e.MaxOneHot
	if maxOH <= 0 {
		maxOH = 64
	}
	e.budget = newWorkerBudget(e.Workers)
	e.sh = newSharder(e.ShardRows, e.budget, e.Metrics)
	defer func() { e.budget, e.sh = nil, nil }()
	res := &Result{Program: p}

	trained := false
	if e.DAG {
		if err := e.executeDAG(p, tr, te, maxOH, res, &trained); err != nil {
			return nil, err
		}
	} else {
		for _, st := range p.Stmts {
			if err := e.execStmt(st, tr, te, maxOH, res, &trained); err != nil {
				return nil, err
			}
		}
	}
	if !trained {
		if e.AllowNoTrain {
			return res, nil
		}
		return nil, rtErr(lastLine(p), ErrNoTrainStmt, "pipeline finished without training a model")
	}
	return res, nil
}

func lastLine(p *Program) int {
	if len(p.Stmts) == 0 {
		return 1
	}
	return p.Stmts[len(p.Stmts)-1].Line
}

// execStmt dispatches one statement through the registered op table
// (optable.go). tr/te are the real train/test tables on this path, so
// every side effect applies immediately.
func (e *Executor) execStmt(st Stmt, tr, te *data.Table, maxOH int, res *Result, trained *bool) error {
	if err := e.policyCheck(st); err != nil {
		return err
	}
	spec := opRegistry[st.Op]
	if spec == nil {
		// Parse guarantees registered ops; this is unreachable by construction.
		return rtErr(st.Line, ErrBadOption, "unhandled statement %q", st.Op)
	}
	return spec.exec(e, st, &execCtx{e: e, tr: tr, te: te, maxOH: maxOH, res: res, trained: trained, sh: e.shardFor(spec)})
}

// shardFor gates the row-shard executor by op class: only elementwise
// and whole-table ops carry row loops whose writes are provably
// disjoint per row. Pure and stateful-fit ops run without a sharder
// (train's matrix builds shard through e.sh explicitly).
func (e *Executor) shardFor(spec *opSpec) *sharder {
	if spec.class == opElementwise || spec.class == opWholeTable {
		return e.sh
	}
	return nil
}

// requireCol resolves a column reference in a core statement.
func requireCol(tr *data.Table, line int, name string) (*data.Column, error) {
	if c := tr.Col(name); c != nil {
		return c, nil
	}
	return nil, rtErr(line, ErrUnknownColumn, "column %q does not exist (have %d columns)", name, tr.NumCols())
}

func (e *Executor) execNop(Stmt, *execCtx) error { return nil }

func (e *Executor) execRequire(st Stmt, _ *execCtx) error {
	pkg := st.Arg(0)
	if !AvailablePackages[pkg] {
		return rtErr(st.Line, ErrPkgMissing, "package %q is not installed in the execution environment", pkg)
	}
	return nil
}

func (e *Executor) execImpute(st Stmt, c *execCtx) error {
	col, err := requireCol(c.tr, st.Line, st.Arg(0))
	if err != nil {
		return err
	}
	num, str, ierr := imputeValue(col, st.Opt("strategy", "most_frequent"))
	if ierr != nil {
		return rtErr(st.Line, ErrTypeMismatch, "%v", ierr)
	}
	applyImpute(c.sh, col, num, str)
	return c.apply(FittedStep{Op: "impute", Col: col.Name, Num: num, Str: str}, st.Line, ErrBadOption)
}

func (e *Executor) execImputeAll(st Stmt, c *execCtx) error {
	strategy := st.Opt("strategy", "auto")
	for _, col := range c.tr.Cols {
		if col.Name == e.Target || col.MissingCount() == 0 {
			continue
		}
		s := strategy
		if s == "auto" {
			if col.Kind.IsNumeric() {
				s = "median"
			} else {
				s = "most_frequent"
			}
		}
		num, str, ierr := imputeValue(col, s)
		if ierr != nil {
			return rtErr(st.Line, ErrTypeMismatch, "%v", ierr)
		}
		applyImpute(c.sh, col, num, str)
		if err := c.apply(FittedStep{Op: "impute", Col: col.Name, Num: num, Str: str}, st.Line, ErrBadOption); err != nil {
			return err
		}
	}
	return nil
}

// outlierCols resolves the column set and IQR factor shared by the
// clip/remove outlier statements.
func (e *Executor) outlierCols(st Stmt, c *execCtx) ([]*data.Column, float64, error) {
	factor, err := strconv.ParseFloat(st.Opt("factor", "1.5"), 64)
	if err != nil {
		return nil, 0, rtErr(st.Line, ErrBadOption, "bad factor %q", st.Opt("factor", ""))
	}
	var cols []*data.Column
	if st.Arg(0) == "all" {
		for _, col := range c.tr.Cols {
			if col.Kind.IsNumeric() && col.Name != e.Target {
				cols = append(cols, col)
			}
		}
	} else {
		col, cerr := requireCol(c.tr, st.Line, st.Arg(0))
		if cerr != nil {
			return nil, 0, cerr
		}
		if !col.Kind.IsNumeric() {
			return nil, 0, rtErr(st.Line, ErrTypeMismatch, "outlier handling needs a numeric column, %q is %s", col.Name, col.Kind)
		}
		cols = append(cols, col)
	}
	return cols, factor, nil
}

func (e *Executor) execClipOutliers(st Stmt, c *execCtx) error {
	cols, factor, err := e.outlierCols(st, c)
	if err != nil {
		return err
	}
	for _, col := range cols {
		lo, hi := iqrBounds(col, factor)
		clipColumn(c.sh, col, lo, hi)
		if col.Name != e.Target {
			if err := c.apply(FittedStep{Op: "clip", Col: col.Name, Lo: lo, Hi: hi}, st.Line, ErrBadOption); err != nil {
				return err
			}
		}
	}
	return nil
}

// execRemoveOutliers drops offending train rows (test rows are clipped
// so evaluation set size is preserved, as cleaning tools do).
func (e *Executor) execRemoveOutliers(st Stmt, c *execCtx) error {
	cols, factor, err := e.outlierCols(st, c)
	if err != nil {
		return err
	}
	tr := c.tr
	keep := make([]bool, tr.NumRows())
	for i := range keep {
		keep[i] = true
	}
	for _, col := range cols {
		lo, hi := iqrBounds(col, factor)
		// The keep-mask scan is elementwise (row i writes only keep[i]),
		// so it shards like an apply loop.
		c.sh.ranges("remove_outliers", col.Len(), func(rlo, rhi int) {
			for i := rlo; i < rhi; i++ {
				if !col.IsMissing(i) && (col.Num(i) < lo || col.Num(i) > hi) {
					keep[i] = false
				}
			}
		})
		// Evaluation rows are clipped (never dropped) so the test set
		// size is preserved — except the target, which is ground truth.
		if col.Name != e.Target {
			if err := c.apply(FittedStep{Op: "clip", Col: col.Name, Lo: lo, Hi: hi}, st.Line, ErrBadOption); err != nil {
				return err
			}
		}
	}
	var rows []int
	for i, k := range keep {
		if k {
			rows = append(rows, i)
		}
	}
	if len(rows) == 0 {
		return rtErr(st.Line, ErrEmptyData, "outlier removal dropped every row")
	}
	*tr = *tr.SelectRows(rows)
	return nil
}

func (e *Executor) execScale(st Stmt, c *execCtx) error {
	method := st.Opt("method", "standard")
	var cols []*data.Column
	if st.Arg(0) == "all_numeric" {
		for _, col := range c.tr.Cols {
			if col.Kind.IsNumeric() && col.Name != e.Target {
				cols = append(cols, col)
			}
		}
	} else {
		col, cerr := requireCol(c.tr, st.Line, st.Arg(0))
		if cerr != nil {
			return cerr
		}
		if !col.Kind.IsNumeric() {
			return rtErr(st.Line, ErrTypeMismatch, "cannot scale non-numeric column %q", col.Name)
		}
		cols = append(cols, col)
	}
	for _, col := range cols {
		sp, serr := fitScale(col, method)
		if serr != nil {
			return rtErr(st.Line, ErrBadOption, "%v", serr)
		}
		sp.apply(c.sh, col)
		// Like the outlier ops, the target is exempt on the test side:
		// scaling held-out ground truth would corrupt RMSE (the train
		// target may be scaled — the model just learns that scale).
		if col.Name != e.Target {
			if err := c.apply(FittedStep{Op: "scale", Col: col.Name,
				Method: sp.method, A: sp.a, B: sp.b}, st.Line, ErrBadOption); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *Executor) execOnehot(st Stmt, c *execCtx) error {
	col, err := requireCol(c.tr, st.Line, st.Arg(0))
	if err != nil {
		return err
	}
	maxCats := c.maxOH
	if v := st.Opt("max_categories", ""); v != "" {
		mc, perr := strconv.Atoi(v)
		if perr != nil || mc <= 0 {
			return rtErr(st.Line, ErrBadOption, "bad max_categories %q", v)
		}
		maxCats = mc
	}
	cats := topCategories(col, maxCats)
	if err := c.capOK(st.Line, "one-hot", col.Name, len(cats)); err != nil {
		return err
	}
	if err := oneHot(c.sh, c.tr, col.Name, cats); err != nil {
		return rtErr(st.Line, ErrUnknownColumn, "%v", err)
	}
	return c.apply(FittedStep{Op: "onehot", Col: col.Name, Cats: cats}, st.Line, ErrUnknownColumn)
}

func (e *Executor) execKhot(st Stmt, c *execCtx) error {
	col, err := requireCol(c.tr, st.Line, st.Arg(0))
	if err != nil {
		return err
	}
	if col.Kind != data.KindString {
		return rtErr(st.Line, ErrTypeMismatch, "khot needs a string list column, %q is %s", col.Name, col.Kind)
	}
	items := listItems(col, 256)
	if err := c.capOK(st.Line, "k-hot", col.Name, len(items)); err != nil {
		return err
	}
	if err := kHot(c.sh, c.tr, col.Name, items); err != nil {
		return rtErr(st.Line, ErrUnknownColumn, "%v", err)
	}
	return c.apply(FittedStep{Op: "khot", Col: col.Name, Cats: items}, st.Line, ErrUnknownColumn)
}

func (e *Executor) execHashEncode(st Stmt, c *execCtx) error {
	col, err := requireCol(c.tr, st.Line, st.Arg(0))
	if err != nil {
		return err
	}
	buckets, perr := strconv.Atoi(st.Opt("buckets", "64"))
	if perr != nil || buckets <= 0 {
		return rtErr(st.Line, ErrBadOption, "bad buckets %q", st.Opt("buckets", ""))
	}
	if err := hashEncode(c.sh, c.tr, col.Name, buckets); err != nil {
		return rtErr(st.Line, ErrUnknownColumn, "%v", err)
	}
	return c.apply(FittedStep{Op: "hash_encode", Col: col.Name, Buckets: buckets}, st.Line, ErrUnknownColumn)
}

func (e *Executor) execOrdinal(st Stmt, c *execCtx) error {
	col, err := requireCol(c.tr, st.Line, st.Arg(0))
	if err != nil {
		return err
	}
	mapping := map[string]int{}
	for i, cat := range topCategories(col, 1<<20) {
		mapping[cat] = i
	}
	if err := ordinalEncode(c.sh, c.tr, col.Name, mapping); err != nil {
		return rtErr(st.Line, ErrUnknownColumn, "%v", err)
	}
	return c.apply(FittedStep{Op: "ordinal", Col: col.Name, Mapping: mapping}, st.Line, ErrUnknownColumn)
}

func (e *Executor) execDrop(st Stmt, c *execCtx) error {
	if _, err := requireCol(c.tr, st.Line, st.Arg(0)); err != nil {
		return err
	}
	if st.Arg(0) == e.Target {
		return rtErr(st.Line, ErrTargetMissing, "cannot drop the target column %q", e.Target)
	}
	c.tr.DropColumn(st.Arg(0))
	return c.apply(FittedStep{Op: "drop", Cols: []string{st.Arg(0)}}, st.Line, "")
}

func (e *Executor) execDropConstant(st Stmt, c *execCtx) error {
	names := constantCols(c.tr, e.Target)
	if len(names) == 0 {
		return nil
	}
	for _, name := range names {
		c.tr.DropColumn(name)
	}
	return c.apply(FittedStep{Op: "drop", Cols: names}, st.Line, "")
}

func (e *Executor) execDropSparse(st Stmt, c *execCtx) error {
	thr, perr := strconv.ParseFloat(st.Opt("threshold", "0.02"), 64)
	if perr != nil {
		return rtErr(st.Line, ErrBadOption, "bad threshold %q", st.Opt("threshold", ""))
	}
	var doomed []string
	for _, col := range c.tr.Cols {
		if col.Name != e.Target && 1-col.MissingRatio() < thr {
			doomed = append(doomed, col.Name)
		}
	}
	if len(doomed) == 0 {
		return nil
	}
	for _, name := range doomed {
		c.tr.DropColumn(name)
	}
	return c.apply(FittedStep{Op: "drop", Cols: doomed}, st.Line, "")
}

func (e *Executor) execSplitComposite(st Stmt, c *execCtx) error {
	col, err := requireCol(c.tr, st.Line, st.Arg(0))
	if err != nil {
		return err
	}
	names := splitNames(st, col.Name)
	if err := splitComposite(c.sh, c.tr, col.Name, names[0], names[1]); err != nil {
		return rtErr(st.Line, ErrUnknownColumn, "%v", err)
	}
	return c.apply(FittedStep{Op: "split_composite", Col: col.Name,
		Name: names[0], NameB: names[1]}, st.Line, ErrUnknownColumn)
}

func (e *Executor) execExtractToken(st Stmt, c *execCtx) error {
	col, err := requireCol(c.tr, st.Line, st.Arg(0))
	if err != nil {
		return err
	}
	if col.Kind != data.KindString {
		return rtErr(st.Line, ErrTypeMismatch, "extract_token needs a string column, %q is %s", col.Name, col.Kind)
	}
	extractToken(c.sh, col)
	return c.apply(FittedStep{Op: "extract_token", Col: col.Name}, st.Line, "")
}

func (e *Executor) execDedupValues(st Stmt, c *execCtx) error {
	col, err := requireCol(c.tr, st.Line, st.Arg(0))
	if err != nil {
		return err
	}
	if col.Kind != data.KindString {
		return rtErr(st.Line, ErrTypeMismatch, "dedup_values needs a string column, %q is %s", col.Name, col.Kind)
	}
	mapping := DedupMapping(col)
	byNormal := map[string]string{}
	for raw, canon := range mapping {
		byNormal[NormalizeValue(raw)] = canon
	}
	applyMapping(c.sh, col, mapping, byNormal)
	return c.apply(FittedStep{Op: "dedup_values", Col: col.Name, ValueMap: mapping}, st.Line, "")
}

func (e *Executor) execRebalance(st Stmt, c *execCtx) error {
	if e.Task == data.Regression {
		return rtErr(st.Line, ErrTaskMismatch, "rebalance is only valid for classification tasks")
	}
	if err := rebalanceADASYN(c.tr, e.Target, e.Seed); err != nil {
		return rtErr(st.Line, ErrTargetMissing, "%v", err)
	}
	return nil
}

func (e *Executor) execAugment(st Stmt, c *execCtx) error {
	if e.Task != data.Regression {
		return rtErr(st.Line, ErrTaskMismatch, "augment is only valid for regression tasks")
	}
	factor, perr := strconv.ParseFloat(st.Opt("factor", "0.15"), 64)
	if perr != nil {
		return rtErr(st.Line, ErrBadOption, "bad factor %q", st.Opt("factor", ""))
	}
	if err := augmentRegression(c.tr, e.Target, factor, e.Seed); err != nil {
		return rtErr(st.Line, ErrTypeMismatch, "%v", err)
	}
	return nil
}

func (e *Executor) execSelectTopK(st Stmt, c *execCtx) error {
	k, perr := strconv.Atoi(st.Opt("k", "0"))
	if perr != nil || k <= 0 {
		return rtErr(st.Line, ErrBadOption, "select_topk needs k>0")
	}
	return e.selectTopK(st, c, k)
}

func (e *Executor) execTrain(st Stmt, c *execCtx) error {
	if err := e.train(st, c.tr, c.te, c.res); err != nil {
		return err
	}
	*c.trained = true
	return nil
}

func constantCols(t *data.Table, target string) []string {
	var out []string
	for _, c := range t.Cols {
		if c.Name != target && c.IsConstant() {
			out = append(out, c.Name)
		}
	}
	return out
}

func splitNames(st Stmt, col string) [2]string {
	names := [2]string{col + "_part", col + "_code"}
	if v := st.Opt("into", ""); v != "" {
		parts := splitComma(v)
		if len(parts) >= 1 && parts[0] != "" {
			names[0] = parts[0]
		}
		if len(parts) >= 2 && parts[1] != "" {
			names[1] = parts[1]
		}
	}
	return names
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	out = append(out, cur)
	return out
}

// selectTopK keeps the k features most associated with the target.
func (e *Executor) selectTopK(st Stmt, c *execCtx, k int) error {
	tr := c.tr
	target := tr.Col(e.Target)
	type scored struct {
		name  string
		score float64
	}
	var sc []scored
	for _, c := range tr.Cols {
		if c.Name == e.Target {
			continue
		}
		var s float64
		if target != nil {
			if c.Kind.IsNumeric() && target.Kind.IsNumeric() {
				s = abs(embed.Correlation(c, target))
			} else {
				s = embed.CramersV(c, target)
			}
		}
		sc = append(sc, scored{c.Name, s})
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].name < sc[j].name
	})
	if k >= len(sc) {
		return nil
	}
	dropped := make([]string, 0, len(sc)-k)
	for _, s := range sc[k:] {
		tr.DropColumn(s.name)
		dropped = append(dropped, s.name)
	}
	return c.apply(FittedStep{Op: "drop", Cols: dropped}, st.Line, "")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// train builds feature matrices, fits the requested model, and fills in
// the result metrics.
func (e *Executor) train(st Stmt, tr, te *data.Table, res *Result) error {
	target := st.Opt("target", e.Target)
	tcol := tr.Col(target)
	if tcol == nil {
		return rtErr(st.Line, ErrTargetMissing, "target column %q not found", target)
	}
	// Matrix validation: every remaining feature must be numeric and
	// complete — the same contract scikit-learn enforces.
	for _, c := range tr.Cols {
		if c.Name == target {
			continue
		}
		if !c.Kind.IsNumeric() {
			return rtErr(st.Line, ErrStringInMatrix, "could not convert string column %q to float (did the pipeline forget to encode it?)", c.Name)
		}
		if c.MissingCount() > 0 {
			return rtErr(st.Line, ErrNaNInMatrix, "input contains NaN: column %q has %d missing values", c.Name, c.MissingCount())
		}
	}
	// The target must be complete too: a missing regression target would
	// read as a silent 0 through NumsView, and a missing classification
	// label would stringify to "" and become a phantom class.
	if tcol.MissingCount() > 0 {
		return rtErr(st.Line, ErrNaNInMatrix,
			"input contains NaN: target column %q has %d missing values", target, tcol.MissingCount())
	}
	Xtr, featNames := matrix(e.sh, tr, target)
	Xte, _ := matrixAligned(e.sh, te, featNames)
	if len(Xtr) == 0 || len(featNames) == 0 {
		return rtErr(st.Line, ErrEmptyData, "no usable feature columns at train time")
	}
	res.Features = len(featNames)
	res.TrainRows = len(Xtr)
	modelName := st.Opt("model", "random_forest")
	res.ModelName = modelName

	if e.Task.IsClassification() {
		res.Metric = "auc"
		labels := tcol
		classIdx := map[string]int{}
		for _, v := range labels.Distinct() {
			classIdx[v] = len(classIdx)
		}
		classes := len(classIdx)
		if classes < 2 {
			return rtErr(st.Line, ErrEmptyData, "target %q has a single class in train data", target)
		}
		ytr := make([]int, labels.Len())
		for i := range ytr {
			ytr[i] = classIdx[labels.ValueString(i)]
		}
		clf, err := e.buildClassifier(st, modelName)
		if err != nil {
			return err
		}
		if err := clf.FitClass(Xtr, ytr, classes); err != nil {
			if errors.Is(err, ml.ErrOutOfMemory) {
				return rtErr(st.Line, ErrModelOOM, "model %q: %v", modelName, err)
			}
			return rtErr(st.Line, ErrBadOption, "model %q fit failed: %v", modelName, err)
		}
		// Reverse class mapping for string-accuracy scoring.
		classOf := make([]string, classes)
		for v, i := range classIdx {
			classOf[i] = v
		}
		scoreSplit := func(X [][]float64, truthCol *data.Column) (acc, auc float64) {
			if len(X) == 0 || truthCol == nil {
				return 0, 0
			}
			proba := clf.Proba(X)
			pred := make([]int, len(proba))
			for i := range proba {
				pred[i] = argmax(proba[i])
			}
			truthStr := make([]string, truthCol.Len())
			predStr := make([]string, len(pred))
			truthIdx := make([]int, truthCol.Len())
			for i := range truthStr {
				truthStr[i] = truthCol.ValueString(i)
				if idx, ok := classIdx[truthStr[i]]; ok {
					truthIdx[i] = idx
				} else {
					truthIdx[i] = -1 // unseen surface form: always wrong
				}
				predStr[i] = classOf[pred[i]]
			}
			return ml.AccuracyStrings(predStr, truthStr) * 100,
				ml.MacroAUC(proba, truthIdx, classes) * 100
		}
		res.TrainAcc, res.TrainAUC = scoreSplit(Xtr, labels)
		res.TestAcc, res.TestAUC = scoreSplit(Xte, te.Col(target))
		if e.CapturePredictions && len(Xte) > 0 {
			res.TestProba = clf.Proba(Xte)
			res.TestPredictions = make([]float64, len(res.TestProba))
			res.TestLabels = make([]string, len(res.TestProba))
			for i, row := range res.TestProba {
				idx := argmax(row)
				res.TestPredictions[i] = float64(idx)
				res.TestLabels[i] = classOf[idx]
			}
		}
		if e.record != nil {
			if err := e.recordModel(st, res, featNames, classOf, clf); err != nil {
				return err
			}
		}
		return nil
	}

	// Regression.
	res.Metric = "r2"
	if !tcol.Kind.IsNumeric() {
		return rtErr(st.Line, ErrTypeMismatch, "regression target %q is not numeric", target)
	}
	ytr := append([]float64(nil), tcol.NumsView()...)
	reg, err := e.buildRegressor(st, modelName)
	if err != nil {
		return err
	}
	if err := reg.Fit(Xtr, ytr); err != nil {
		if errors.Is(err, ml.ErrOutOfMemory) {
			return rtErr(st.Line, ErrModelOOM, "model %q: %v", modelName, err)
		}
		return rtErr(st.Line, ErrBadOption, "model %q fit failed: %v", modelName, err)
	}
	clampR2 := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v * 100
	}
	res.TrainR2 = clampR2(ml.R2(reg.Predict(Xtr), ytr))
	teT := te.Col(target)
	if len(Xte) > 0 && (teT != nil || e.CapturePredictions) {
		pred := reg.Predict(Xte)
		if e.CapturePredictions {
			res.TestPredictions = pred
		}
		if teT != nil {
			yte := append([]float64(nil), teT.NumsView()...)
			res.TestR2 = clampR2(ml.R2(pred, yte))
			res.TestRMSE = ml.RMSE(pred, yte)
		}
	}
	if e.record != nil {
		if err := e.recordModel(st, res, featNames, nil, reg); err != nil {
			return err
		}
	}
	return nil
}

// recordModel exports the trained model and train-time schema into the
// artifact being recorded.
func (e *Executor) recordModel(st Stmt, res *Result, featNames, classOf []string, model any) error {
	fm, err := ml.Export(model)
	if err != nil {
		return rtErr(st.Line, ErrBadOption, "artifact export: %v", err)
	}
	e.record.Metric = res.Metric
	e.record.ModelName = res.ModelName
	e.record.Features = append([]string(nil), featNames...)
	e.record.Classes = classOf
	e.record.Model = fm
	return nil
}

func argmax(v []float64) int {
	best, bi := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}

// matrix extracts the numeric feature matrix and column order.
func matrix(sh *sharder, t *data.Table, target string) ([][]float64, []string) {
	var names []string
	var cols []*data.Column
	for _, c := range t.Cols {
		if c.Name == target || !c.Kind.IsNumeric() {
			continue
		}
		names = append(names, c.Name)
		cols = append(cols, c)
	}
	X := make([][]float64, t.NumRows())
	sh.ranges("matrix", len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := make([]float64, len(cols))
			for j, c := range cols {
				row[j] = c.Num(i)
			}
			X[i] = row
		}
	})
	return X, names
}

// matrixAligned extracts features in the given column order so test
// matrices line up with train matrices. The contract is deliberately
// lenient for the in-search evaluation path: a column that is absent,
// non-numeric, or short zero-fills its cells (and a missing cell reads
// as its stored 0), because candidate pipelines routinely produce test
// splits lacking a train-only encoded column and the search must score
// them rather than crash. The serving path (FittedPipeline.Predict) is
// the strict version: it rejects absent/non-numeric/incomplete fitted
// features with a typed ArtifactError before this zero-fill can skew
// predictions.
func matrixAligned(sh *sharder, t *data.Table, names []string) ([][]float64, []string) {
	cols := make([]*data.Column, len(names))
	for j, n := range names {
		cols[j] = t.Col(n)
	}
	X := make([][]float64, t.NumRows())
	sh.ranges("matrix", len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := make([]float64, len(names))
			for j, c := range cols {
				if c != nil && c.Kind.IsNumeric() && i < c.Len() {
					row[j] = c.Num(i)
				}
			}
			X[i] = row
		}
	})
	return X, names
}

// classifierIface and regressorIface unify the ml model zoo.
type classifierIface interface {
	FitClass(X [][]float64, y []int, classes int) error
	Proba(X [][]float64) [][]float64
}

type regressorIface interface {
	Fit(X [][]float64, y []float64) error
	Predict(X [][]float64) []float64
}

func (e *Executor) buildClassifier(st Stmt, name string) (classifierIface, error) {
	trees := atoiOpt(st, "trees", 50)
	depth := atoiOpt(st, "depth", 0)
	backend, err := backendOpt(st)
	if err != nil {
		return nil, err
	}
	bins := atoiOpt(st, "bins", 0)
	switch name {
	case "random_forest":
		return ml.NewForest(ml.ForestConfig{Trees: trees, MaxDepth: depth, Seed: e.Seed,
			Workers: e.Workers, Backend: backend, MaxBins: bins}), nil
	case "decision_tree":
		return ml.NewTree(ml.TreeConfig{MaxDepth: depth, Seed: e.Seed,
			Backend: backend, MaxBins: bins}), nil
	case "gbm", "gradient_boosting":
		return ml.NewGBM(ml.GBMConfig{Rounds: atoiOpt(st, "rounds", 40), MaxDepth: depth, Seed: e.Seed,
			Workers: e.Workers, Backend: backend, MaxBins: bins}), nil
	case "logistic_regression":
		return ml.NewLogistic(ml.LinearConfig{Epochs: atoiOpt(st, "epochs", 20), Seed: e.Seed}), nil
	case "knn":
		return ml.NewKNN(ml.KNNConfig{K: atoiOpt(st, "k", 7), MaxTrain: 4000, Workers: e.Workers}), nil
	case "naive_bayes":
		return ml.NewNaiveBayes(), nil
	case "tabpfn":
		return ml.NewTabPFNSim(), nil
	case "extra_trees":
		return ml.NewExtraTrees(ml.ForestConfig{Trees: trees, MaxDepth: depth, Seed: e.Seed,
			Workers: e.Workers, Backend: backend, MaxBins: bins}), nil
	case "svm":
		return ml.NewSVM(ml.LinearConfig{Epochs: atoiOpt(st, "epochs", 10), Seed: e.Seed}), nil
	default:
		return nil, rtErr(st.Line, ErrUnknownModel, "unknown classification model %q", name)
	}
}

func (e *Executor) buildRegressor(st Stmt, name string) (regressorIface, error) {
	trees := atoiOpt(st, "trees", 50)
	depth := atoiOpt(st, "depth", 0)
	backend, err := backendOpt(st)
	if err != nil {
		return nil, err
	}
	bins := atoiOpt(st, "bins", 0)
	switch name {
	case "random_forest":
		return ml.NewForest(ml.ForestConfig{Trees: trees, MaxDepth: depth, Seed: e.Seed,
			Workers: e.Workers, Backend: backend, MaxBins: bins}), nil
	case "decision_tree":
		return ml.NewTree(ml.TreeConfig{MaxDepth: depth, Seed: e.Seed,
			Backend: backend, MaxBins: bins}), nil
	case "gbm", "gradient_boosting":
		return ml.NewGBM(ml.GBMConfig{Rounds: atoiOpt(st, "rounds", 40), MaxDepth: depth, Seed: e.Seed,
			Workers: e.Workers, Backend: backend, MaxBins: bins}), nil
	case "linear_regression":
		return ml.NewLinear(ml.LinearConfig{Epochs: atoiOpt(st, "epochs", 150)}), nil
	case "ridge":
		return ml.NewLinear(ml.LinearConfig{Epochs: atoiOpt(st, "epochs", 150), L2: 0.01}), nil
	case "knn":
		return ml.NewKNN(ml.KNNConfig{K: atoiOpt(st, "k", 7), MaxTrain: 4000, Workers: e.Workers}), nil
	case "extra_trees":
		return ml.NewExtraTrees(ml.ForestConfig{Trees: trees, MaxDepth: depth, Seed: e.Seed,
			Workers: e.Workers, Backend: backend, MaxBins: bins}), nil
	default:
		return nil, rtErr(st.Line, ErrUnknownModel, "unknown regression model %q", name)
	}
}

func atoiOpt(st Stmt, key string, def int) int {
	if v, ok := st.KV[key]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// backendOpt parses the optional backend=auto|exact|hist model option
// into the tree split backend selector.
func backendOpt(st Stmt) (ml.Backend, error) {
	v, ok := st.KV["backend"]
	if !ok {
		return ml.BackendAuto, nil
	}
	switch v {
	case "auto", "":
		return ml.BackendAuto, nil
	case "exact":
		return ml.BackendExact, nil
	case "hist", "histogram":
		return ml.BackendHist, nil
	default:
		return 0, rtErr(st.Line, ErrBadOption, "unknown backend %q (want auto, exact or hist)", v)
	}
}
