package pipescript

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"catdb/internal/data"
)

// messyTable builds a classification table with missing values, a dirty
// categorical, a list column, and a numeric feature.
func messyTable(n int, seed int64) *data.Table {
	rng := rand.New(rand.NewSource(seed))
	num := make([]float64, n)
	cat := make([]string, n)
	lst := make([]string, n)
	y := make([]string, n)
	for i := 0; i < n; i++ {
		c := i % 3
		num[i] = float64(c)*2 + rng.NormFloat64()*0.4
		cat[i] = []string{"red", "RED", "green", "Green", "blue", "blue "}[c*2+rng.Intn(2)]
		lst[i] = []string{"a, b", "b, c", "c, a"}[c]
		y[i] = []string{"lo", "mid", "hi"}[c]
	}
	t := data.NewTable("m")
	t.MustAddColumn(data.NewNumeric("num", num))
	t.MustAddColumn(data.NewString("cat", cat))
	t.MustAddColumn(data.NewString("lst", lst))
	t.MustAddColumn(data.NewString("y", y))
	// Inject some missing numerics.
	for i := 0; i < n; i += 17 {
		t.Col("num").SetMissing(i)
	}
	return t
}

func split(t *data.Table, seed int64) (*data.Table, *data.Table) {
	return t.Split(0.7, seed)
}

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExecuteFullPipeline(t *testing.T) {
	tr, te := split(messyTable(600, 1), 7)
	p := mustParse(t, `pipeline "full"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
scale all_numeric method=standard
train model=random_forest target="y" trees=15
evaluate metric=auto
`)
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	res, err := ex.Execute(p, tr, te)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAcc < 90 {
		t.Fatalf("test accuracy = %g, want high (separable data)", res.TestAcc)
	}
	if res.TestAUC < 90 {
		t.Fatalf("test AUC = %g", res.TestAUC)
	}
	if res.Metric != "auc" || res.ModelName != "random_forest" {
		t.Fatalf("result meta: %+v", res)
	}
	if res.Features == 0 || res.TrainRows == 0 {
		t.Fatal("feature/row counts missing")
	}
}

func TestExecuteStringInMatrix(t *testing.T) {
	tr, te := split(messyTable(300, 2), 7)
	p := mustParse(t, `pipeline "bad"
impute "num" strategy=median
train model=random_forest target="y"
`)
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	_, err := ex.Execute(p, tr, te)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrStringInMatrix {
		t.Fatalf("want E_STRING_IN_MATRIX, got %v", err)
	}
	if !strings.Contains(re.Error(), "line 3") {
		t.Fatalf("error should cite the train line: %v", re)
	}
}

func TestExecuteNaNInMatrix(t *testing.T) {
	tr, te := split(messyTable(300, 3), 7)
	p := mustParse(t, `pipeline "bad"
onehot "cat"
khot "lst"
train model=random_forest target="y"
`)
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	_, err := ex.Execute(p, tr, te)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrNaNInMatrix {
		t.Fatalf("want E_NAN_IN_MATRIX, got %v", err)
	}
}

func TestExecuteUnknownColumn(t *testing.T) {
	tr, te := split(messyTable(200, 4), 7)
	p := mustParse(t, "pipeline \"x\"\nimpute \"nope\" strategy=median\ntrain model=knn target=\"y\"\n")
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	_, err := ex.Execute(p, tr, te)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrUnknownColumn {
		t.Fatalf("want E_UNKNOWN_COLUMN, got %v", err)
	}
}

func TestExecutePkgMissing(t *testing.T) {
	tr, te := split(messyTable(200, 5), 7)
	p := mustParse(t, "pipeline \"x\"\nrequire xgboost\ntrain model=knn target=\"y\"\n")
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	_, err := ex.Execute(p, tr, te)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrPkgMissing {
		t.Fatalf("want E_PKG_MISSING, got %v", err)
	}
}

func TestExecuteNoTrain(t *testing.T) {
	tr, te := split(messyTable(200, 6), 7)
	p := mustParse(t, "pipeline \"x\"\nimpute \"num\" strategy=mean\n")
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	_, err := ex.Execute(p, tr, te)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrNoTrainStmt {
		t.Fatalf("want E_NO_TRAIN, got %v", err)
	}
}

func TestExecuteUnknownModel(t *testing.T) {
	tr, te := split(messyTable(200, 7), 7)
	p := mustParse(t, "pipeline \"x\"\ndrop \"cat\"\ndrop \"lst\"\nimpute_all\ntrain model=quantum_forest target=\"y\"\n")
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	_, err := ex.Execute(p, tr, te)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrUnknownModel {
		t.Fatalf("want E_UNKNOWN_MODEL, got %v", err)
	}
}

func TestExecuteBackendOption(t *testing.T) {
	tr, te := split(messyTable(600, 9), 7)
	src := `pipeline "x"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
train model=random_forest target="y" trees=10 backend=%s bins=64
evaluate metric=auto
`
	for _, backend := range []string{"exact", "hist", "auto"} {
		p := mustParse(t, strings.Replace(src, "%s", backend, 1))
		ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1, Workers: 2}
		res, err := ex.Execute(p, tr, te)
		if err != nil {
			t.Fatalf("backend=%s: %v", backend, err)
		}
		if res.TestAcc < 85 {
			t.Fatalf("backend=%s: test accuracy = %g", backend, res.TestAcc)
		}
	}
	p := mustParse(t, strings.Replace(src, "%s", "quantum", 1))
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	_, err := ex.Execute(p, tr, te)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrBadOption {
		t.Fatalf("want E_BAD_OPTION for bad backend, got %v", err)
	}
}

func TestExecuteTabPFNOOM(t *testing.T) {
	tr, te := split(messyTable(3000, 8), 7)
	p := mustParse(t, "pipeline \"x\"\ndrop \"cat\"\ndrop \"lst\"\nimpute_all\ntrain model=tabpfn target=\"y\"\n")
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	_, err := ex.Execute(p, tr, te)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrModelOOM {
		t.Fatalf("want E_MODEL_OOM, got %v", err)
	}
}

func TestExecuteRebalanceOnRegression(t *testing.T) {
	n := 200
	tb := data.NewTable("r")
	tb.MustAddColumn(data.NewNumeric("x", make([]float64, n)))
	tb.MustAddColumn(data.NewNumeric("y", make([]float64, n)))
	tr, te := split(tb, 7)
	p := mustParse(t, "pipeline \"x\"\nrebalance\ntrain model=linear_regression target=\"y\"\n")
	ex := &Executor{Target: "y", Task: data.Regression, Seed: 1}
	_, err := ex.Execute(p, tr, te)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrTaskMismatch {
		t.Fatalf("want E_TASK_MISMATCH, got %v", err)
	}
}

func TestExecuteRegression(t *testing.T) {
	n := 800
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 3*x[i] + 1 + rng.NormFloat64()*0.1
	}
	tb := data.NewTable("r")
	tb.MustAddColumn(data.NewNumeric("x", x))
	tb.MustAddColumn(data.NewNumeric("y", y))
	tr, te := split(tb, 7)
	p := mustParse(t, "pipeline \"reg\"\ntrain model=gbm target=\"y\" rounds=30\n")
	ex := &Executor{Target: "y", Task: data.Regression, Seed: 1}
	res, err := ex.Execute(p, tr, te)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestR2 < 90 {
		t.Fatalf("regression R2 = %g", res.TestR2)
	}
	if res.Metric != "r2" {
		t.Fatal("metric must be r2")
	}
}

func TestRebalanceEqualizesClasses(t *testing.T) {
	n := 300
	x := make([]float64, n)
	y := make([]string, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i)
		if i < 270 {
			y[i] = "big"
		} else {
			y[i] = "small"
		}
	}
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewNumeric("x", x))
	tb.MustAddColumn(data.NewString("y", y))
	if err := rebalanceADASYN(tb, "y", 1); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	c := tb.Col("y")
	for i := 0; i < c.Len(); i++ {
		counts[c.Str(i)]++
	}
	if counts["small"] < 100 {
		t.Fatalf("minority after rebalance = %d", counts["small"])
	}
}

func TestSplitCompositeOp(t *testing.T) {
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewString("addr", []string{"7050 CA", "TX 7871", "CA 9000"}))
	tb.MustAddColumn(data.NewNumeric("y", []float64{1, 2, 3}))
	tr := tb.Clone()
	te := tb.Clone()
	p := mustParse(t, "pipeline \"x\"\nsplit_composite \"addr\" into=state,zip\nonehot \"state\"\nonehot \"zip\"\ntrain model=knn target=\"y\" k=1\n")
	ex := &Executor{Target: "y", Task: data.Regression, Seed: 1}
	if _, err := ex.Execute(p, tr, te); err != nil {
		t.Fatal(err)
	}
	// Verify via the low-level op too.
	tb2 := tb.Clone()
	if err := splitComposite(nil, tb2, "addr", "state", "zip"); err != nil {
		t.Fatal(err)
	}
	if tb2.Col("state").Str(0) != "CA" || tb2.Col("zip").Str(0) != "7050" {
		t.Fatalf("split wrong: %v %v", tb2.Col("state").StrsView(), tb2.Col("zip").StrsView())
	}
	if tb2.Col("state").Str(1) != "TX" || tb2.Col("zip").Str(1) != "7871" {
		t.Fatal("order-insensitive split failed")
	}
}

func TestExtractTokenOp(t *testing.T) {
	c := data.NewString("s", []string{"about alpha", "roughly bravo or so", "congo (confirmed)"})
	extractToken(nil, c)
	want := []string{"alpha", "bravo", "congo"}
	for i, w := range want {
		if c.Str(i) != w {
			t.Fatalf("extract[%d] = %q, want %q", i, c.Str(i), w)
		}
	}
}

func TestDedupMappingCollapsesVariants(t *testing.T) {
	c := data.NewString("g", []string{"Female", "female", "FEMALE", " female", "Male", "male", "Female"})
	m := DedupMapping(c)
	canon := m["Female"]
	for _, raw := range []string{"female", "FEMALE", " female"} {
		if m[raw] != canon {
			t.Fatalf("variant %q maps to %q, want %q", raw, m[raw], canon)
		}
	}
	if m["Male"] == canon {
		t.Fatal("distinct categories must not merge")
	}
}

func TestDropConstantAndSparse(t *testing.T) {
	n := 100
	tb := data.NewTable("t")
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 7)
	}
	tb.MustAddColumn(data.NewNumeric("x", x))
	konst := make([]string, n)
	for i := range konst {
		konst[i] = "k"
	}
	tb.MustAddColumn(data.NewString("konst", konst))
	sparse := data.NewNumeric("sparse", make([]float64, n))
	for i := 0; i < n-1; i++ {
		sparse.SetMissing(i)
	}
	tb.MustAddColumn(sparse)
	good := make([]float64, n)
	for i := range good {
		good[i] = float64(i % 5)
	}
	tb.MustAddColumn(data.NewNumeric("good", good))
	y := make([]string, n)
	for i := range y {
		y[i] = []string{"a", "b"}[i%2]
	}
	tb.MustAddColumn(data.NewString("y", y))
	tr, te := split(tb, 7)
	p := mustParse(t, "pipeline \"x\"\ndrop_constant\ndrop_sparse threshold=0.05\nimpute_all\ntrain model=naive_bayes target=\"y\"\n")
	ex := &Executor{Target: "y", Task: data.Binary, Seed: 1}
	res, err := ex.Execute(p, tr, te)
	if err != nil {
		t.Fatal(err)
	}
	// x + good survive ("konst" constant, "sparse" sparse).
	if res.Features != 2 {
		t.Fatalf("features = %d, want 2", res.Features)
	}
}

func TestSelectTopKKeepsInformative(t *testing.T) {
	n := 400
	rng := rand.New(rand.NewSource(10))
	inf := make([]float64, n)
	noise := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		inf[i] = rng.NormFloat64()
		noise[i] = rng.NormFloat64()
		y[i] = inf[i] * 5
	}
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewNumeric("noise", noise))
	tb.MustAddColumn(data.NewNumeric("inf", inf))
	tb.MustAddColumn(data.NewNumeric("y", y))
	tr, te := split(tb, 7)
	p := mustParse(t, "pipeline \"x\"\nselect_topk k=1\ntrain model=linear_regression target=\"y\"\n")
	ex := &Executor{Target: "y", Task: data.Regression, Seed: 1}
	res, err := ex.Execute(p, tr, te)
	if err != nil {
		t.Fatal(err)
	}
	if res.Features != 1 {
		t.Fatalf("features = %d", res.Features)
	}
	if res.TestR2 < 90 {
		t.Fatalf("top-k kept the wrong feature (R2=%g)", res.TestR2)
	}
}

func TestHashEncodeAndOrdinal(t *testing.T) {
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewString("c", []string{"a", "b", "c", "a"}))
	tb.MustAddColumn(data.NewNumeric("y", []float64{1, 2, 3, 4}))
	tr, te := tb.Clone(), tb.Clone()
	p := mustParse(t, "pipeline \"x\"\nhash_encode \"c\" buckets=8\ntrain model=knn target=\"y\" k=1\n")
	ex := &Executor{Target: "y", Task: data.Regression, Seed: 1}
	if _, err := ex.Execute(p, tr, te); err != nil {
		t.Fatal(err)
	}
	tr2, te2 := tb.Clone(), tb.Clone()
	p2 := mustParse(t, "pipeline \"x\"\nordinal \"c\"\ntrain model=knn target=\"y\" k=1\n")
	if _, err := ex.Execute(p2, tr2, te2); err != nil {
		t.Fatal(err)
	}
}

func TestOneHotUnseenTestCategory(t *testing.T) {
	tr := data.NewTable("tr")
	tr.MustAddColumn(data.NewString("c", []string{"a", "b", "a", "b"}))
	tr.MustAddColumn(data.NewString("y", []string{"x", "z", "x", "z"}))
	te := data.NewTable("te")
	te.MustAddColumn(data.NewString("c", []string{"a", "NEW"}))
	te.MustAddColumn(data.NewString("y", []string{"x", "z"}))
	p := mustParse(t, "pipeline \"x\"\nonehot \"c\"\ntrain model=naive_bayes target=\"y\"\n")
	ex := &Executor{Target: "y", Task: data.Binary, Seed: 1}
	if _, err := ex.Execute(p, tr, te); err != nil {
		t.Fatal(err) // unseen category encodes to all-zeros, no crash
	}
}

func TestClipOutliersBoundsFromTrain(t *testing.T) {
	n := 200
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i % 10)
	}
	vals[0] = 1e6 // extreme outlier
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewNumeric("x", vals))
	y := make([]float64, n)
	copy(y, vals)
	tb.MustAddColumn(data.NewNumeric("y", y))
	tr, te := tb.Clone(), tb.Clone()
	p := mustParse(t, "pipeline \"x\"\nclip_outliers \"x\" method=iqr factor=1.5\ntrain model=knn target=\"y\" k=3\n")
	ex := &Executor{Target: "y", Task: data.Regression, Seed: 1}
	if _, err := ex.Execute(p, tr, te); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyTargetHurtsAccuracy(t *testing.T) {
	// When the target has messy duplicate labels, exact-match accuracy is
	// low; after dedup of the target it recovers — the EU-IT pathology.
	n := 600
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, n)
	y := make([]string, n)
	for i := 0; i < n; i++ {
		c := i % 2
		x[i] = float64(c)*3 + rng.NormFloat64()*0.3
		base := []string{"engineer", "manager"}[c]
		y[i] = []string{base, strings.ToUpper(base), " " + base}[rng.Intn(3)]
	}
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewNumeric("x", x))
	tb.MustAddColumn(data.NewString("y", y))
	tr, te := split(tb, 7)

	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	dirty := mustParse(t, "pipeline \"d\"\ntrain model=random_forest target=\"y\" trees=10\n")
	resDirty, err := ex.Execute(dirty, tr, te)
	if err != nil {
		t.Fatal(err)
	}
	clean := mustParse(t, "pipeline \"c\"\ndedup_values \"y\"\ntrain model=random_forest target=\"y\" trees=10\n")
	resClean, err := ex.Execute(clean, tr, te)
	if err != nil {
		t.Fatal(err)
	}
	if resClean.TestAcc <= resDirty.TestAcc+10 {
		t.Fatalf("dedup target should lift accuracy substantially: dirty=%g clean=%g",
			resDirty.TestAcc, resClean.TestAcc)
	}
}
