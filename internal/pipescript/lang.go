// Package pipescript defines PipeScript, the pipeline DSL that plays the
// role of the LLM-generated Python in this reproduction. A PipeScript
// program is a sequence of data-preparation, feature-engineering, and
// model-training statements executed against tabular data. Like the
// paper's Python pipelines it can be syntactically invalid (parser errors
// with line numbers, the analogue of Python's ast checks), reference
// unavailable packages (knowledge-base errors), or fail at runtime
// (semantic errors such as un-encoded string features or NaNs at training
// time — the same failure modes scikit-learn raises).
package pipescript

import (
	"fmt"
	"strings"
)

// Stmt is a single parsed statement.
type Stmt struct {
	Line int               // 1-based source line
	Op   string            // statement keyword
	Args []string          // positional arguments
	KV   map[string]string // key=value options
}

// Arg returns positional argument i or "".
func (s Stmt) Arg(i int) string {
	if i < len(s.Args) {
		return s.Args[i]
	}
	return ""
}

// Opt returns the option value or a default.
func (s Stmt) Opt(key, def string) string {
	if v, ok := s.KV[key]; ok {
		return v
	}
	return def
}

// Program is a parsed PipeScript pipeline.
type Program struct {
	Name   string
	Stmts  []Stmt
	Source string
}

// SyntaxError is a parse-time failure with a source location. It is the
// analogue of the Python ast errors of §4.2 (SE).
type SyntaxError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pipescript: syntax error at line %d: %s", e.Line, e.Msg)
}

// knownOps maps statement keywords to their minimum positional arg
// counts. It is populated exclusively by registerOp (optable.go), the
// single source of op metadata shared by the parser, executor, static
// analyzer, and DAG builder.
var knownOps = map[string]int{}

// AvailablePackages is the pre-installed environment of the pipeline
// runner (§4.2: "Pipelines run in a basic, pre-installed environment").
// require-ing anything else raises a knowledge-base error.
var AvailablePackages = map[string]bool{
	"tabular":    true,
	"mlcore":     true,
	"preprocess": true,
	"metrics":    true,
}

// Parse parses PipeScript source into a program; the error (if any) is a
// *SyntaxError carrying the offending line.
func Parse(src string) (*Program, error) {
	p := &Program{Source: src}
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		toks, err := tokenize(line)
		if err != nil {
			return nil, &SyntaxError{Line: ln + 1, Msg: err.Error()}
		}
		if len(toks) == 0 {
			continue
		}
		op := toks[0]
		minArgs, ok := knownOps[op]
		if !ok {
			return nil, &SyntaxError{Line: ln + 1, Msg: fmt.Sprintf("unknown statement %q", op)}
		}
		st := Stmt{Line: ln + 1, Op: op, KV: map[string]string{}}
		for _, t := range toks[1:] {
			if i := strings.Index(t, "="); i > 0 && !strings.HasPrefix(t, `"`) {
				key := t[:i]
				val := strings.Trim(t[i+1:], `"`)
				if key == "" || val == "" {
					return nil, &SyntaxError{Line: ln + 1, Msg: fmt.Sprintf("malformed option %q", t)}
				}
				st.KV[key] = val
				continue
			}
			st.Args = append(st.Args, strings.Trim(t, `"`))
		}
		if len(st.Args) < minArgs {
			return nil, &SyntaxError{Line: ln + 1, Msg: fmt.Sprintf("%s needs %d argument(s), got %d", op, minArgs, len(st.Args))}
		}
		if op == "pipeline" && p.Name == "" {
			p.Name = st.Arg(0)
		}
		p.Stmts = append(p.Stmts, st)
	}
	if len(p.Stmts) == 0 {
		return nil, &SyntaxError{Line: 1, Msg: "empty program"}
	}
	if p.Stmts[0].Op != "pipeline" {
		return nil, &SyntaxError{Line: p.Stmts[0].Line, Msg: "program must start with a pipeline statement"}
	}
	return p, nil
}

// tokenize splits a statement line into tokens honouring double quotes.
func tokenize(line string) ([]string, error) {
	var toks []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated string literal")
	}
	flush()
	// Strip surrounding quotes but keep inner content (incl. spaces).
	for i, t := range toks {
		if strings.HasPrefix(t, `"`) && strings.HasSuffix(t, `"`) && len(t) >= 2 {
			toks[i] = t // trimming handled by caller per-field
		}
	}
	return toks, nil
}

// HasStmt reports whether the program contains at least one statement with
// the given op (used by verification and tests).
func (p *Program) HasStmt(op string) bool {
	for _, s := range p.Stmts {
		if s.Op == op {
			return true
		}
	}
	return false
}

// TrainStmt returns the first train statement, or nil.
func (p *Program) TrainStmt() *Stmt {
	for i := range p.Stmts {
		if p.Stmts[i].Op == "train" {
			return &p.Stmts[i]
		}
	}
	return nil
}
