package pipescript

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

const goodSrc = `# generated pipeline
pipeline "demo"
require tabular
impute "age" strategy=median
impute_all strategy=auto
clip_outliers all method=iqr factor=1.5
scale all_numeric method=standard
onehot "state" max_categories=32
khot "skills"
drop "address"
drop_constant
rebalance method=adasyn
select_topk k=20
train model=random_forest target="salary" trees=40
evaluate metric=auto
`

func TestParseGoodProgram(t *testing.T) {
	p, err := Parse(goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" {
		t.Fatalf("name = %q", p.Name)
	}
	if len(p.Stmts) != 14 {
		t.Fatalf("stmts = %d", len(p.Stmts))
	}
	tr := p.TrainStmt()
	if tr == nil || tr.Opt("model", "") != "random_forest" || tr.Opt("target", "") != "salary" {
		t.Fatalf("train stmt = %+v", tr)
	}
	if tr.Opt("trees", "") != "40" {
		t.Fatal("numeric option lost")
	}
	if !p.HasStmt("khot") || p.HasStmt("hash_encode") {
		t.Fatal("HasStmt broken")
	}
}

func TestParseComments(t *testing.T) {
	p, err := Parse("pipeline \"x\"\n# a comment\n\ntrain model=knn\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(p.Stmts))
	}
}

func TestParseSyntaxErrors(t *testing.T) {
	cases := []struct {
		src  string
		line int
	}{
		{"pipeline \"x\"\nfrobnicate foo\n", 2},                     // unknown statement
		{"pipeline \"x\"\nimpute\n", 2},                             // missing arg
		{"pipeline \"x\"\ntrain model=\"rf\nevaluate\n", 2},         // unterminated quote
		{"impute \"age\"\n", 1},                                     // missing pipeline header
		{"", 1},                                                     // empty program
		{"pipeline \"x\"\nHere is the pipeline you asked for\n", 2}, // prose injection
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Fatalf("src %q: want SyntaxError, got %v", tc.src, err)
		}
		if se.Line != tc.line {
			t.Errorf("src %q: error line = %d, want %d", tc.src, se.Line, tc.line)
		}
		if !strings.Contains(se.Error(), "syntax error") {
			t.Errorf("error string should mention syntax error: %v", se)
		}
	}
}

func TestParseQuotedValuesWithSpaces(t *testing.T) {
	p, err := Parse("pipeline \"two words\"\ndrop \"my column\"\ntrain model=knn\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "two words" {
		t.Fatalf("name = %q", p.Name)
	}
	if p.Stmts[1].Arg(0) != "my column" {
		t.Fatalf("arg = %q", p.Stmts[1].Arg(0))
	}
}

func TestStmtAccessors(t *testing.T) {
	st := Stmt{Args: []string{"a"}, KV: map[string]string{"k": "v"}}
	if st.Arg(0) != "a" || st.Arg(5) != "" {
		t.Fatal("Arg accessor broken")
	}
	if st.Opt("k", "d") != "v" || st.Opt("nope", "d") != "d" {
		t.Fatal("Opt accessor broken")
	}
}

func TestMalformedOption(t *testing.T) {
	_, err := Parse("pipeline \"x\"\nimpute \"a\" strategy=\n")
	if err == nil {
		t.Fatal("empty option value must be a syntax error")
	}
}

// Property: parsing never panics on arbitrary input and always returns
// either a program or a *SyntaxError.
func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		p, err := Parse(s)
		if err != nil {
			var se *SyntaxError
			return errors.As(err, &se)
		}
		return p != nil && len(p.Stmts) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a well-formed single-op program parses and round-trips its op.
func TestParseOpsRoundTrip(t *testing.T) {
	for op, minArgs := range knownOps {
		if op == "pipeline" {
			continue
		}
		src := "pipeline \"p\"\n" + op
		for i := 0; i < minArgs; i++ {
			src += " \"arg\""
		}
		src += "\n"
		p, err := Parse(src)
		if err != nil {
			t.Errorf("op %s: %v", op, err)
			continue
		}
		if p.Stmts[1].Op != op {
			t.Errorf("op %s round trip failed", op)
		}
	}
}
