package pipescript

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"catdb/internal/data"
)

// maxEncodedFeatures caps the total feature count encoders may create; the
// analogue of a pipeline blowing up memory through one-hot explosion.
const maxEncodedFeatures = 4096

// sentenceStopwords are the filler words the extract_token op strips; they
// cover the templates the synthetic generator uses plus common glue words,
// matching how the (simulated) LLM turns sentences into categories.
var sentenceStopwords = map[string]bool{
	"about": true, "roughly": true, "or": true, "so": true, "confirmed": true,
	"(confirmed)": true, "reported": true, "as": true, "it": true, "is": true,
	"overall": true, "the": true, "a": true, "an": true, "of": true,
	"this": true, "note": true, "number": true,
}

// imputeValue computes the fill value for a column from train data.
func imputeValue(c *data.Column, strategy string) (num float64, str string, err error) {
	switch strategy {
	case "mean":
		if !c.Kind.IsNumeric() {
			return 0, "", fmt.Errorf("mean imputation on non-numeric column %q", c.Name)
		}
		return c.NumericStats().Mean, "", nil
	case "median":
		if !c.Kind.IsNumeric() {
			return 0, "", fmt.Errorf("median imputation on non-numeric column %q", c.Name)
		}
		return c.NumericStats().Median, "", nil
	case "most_frequent":
		counts := map[string]int{}
		for i := 0; i < c.Len(); i++ {
			if !c.IsMissing(i) {
				counts[c.ValueString(i)]++
			}
		}
		best, bestN := "", -1
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if counts[k] > bestN {
				best, bestN = k, counts[k]
			}
		}
		if c.Kind.IsNumeric() {
			f, _ := strconv.ParseFloat(best, 64)
			return f, "", nil
		}
		return 0, best, nil
	default:
		if strings.HasPrefix(strategy, "constant:") {
			v := strings.TrimPrefix(strategy, "constant:")
			if c.Kind.IsNumeric() {
				f, perr := strconv.ParseFloat(v, 64)
				if perr != nil {
					return 0, "", fmt.Errorf("constant %q is not numeric", v)
				}
				return f, "", nil
			}
			return 0, v, nil
		}
		return 0, "", fmt.Errorf("unknown imputation strategy %q", strategy)
	}
}

func applyImpute(sh *sharder, c *data.Column, num float64, str string) {
	sh.transform("impute", c, func(v *data.Column) {
		for i := 0; i < v.Len(); i++ {
			if !v.IsMissing(i) {
				continue
			}
			v.ClearMissing(i)
			if v.Kind.IsNumeric() {
				v.SetNum(i, num)
			} else {
				v.SetStr(i, str)
			}
		}
	})
}

// iqrBounds computes [Q1-f*IQR, Q3+f*IQR] from a train column.
func iqrBounds(c *data.Column, factor float64) (lo, hi float64) {
	q1, q3 := c.Quantile(0.25), c.Quantile(0.75)
	iqr := q3 - q1
	return q1 - factor*iqr, q3 + factor*iqr
}

func clipColumn(sh *sharder, c *data.Column, lo, hi float64) {
	sh.transform("clip", c, func(v *data.Column) {
		for i := 0; i < v.Len(); i++ {
			if v.IsMissing(i) {
				continue
			}
			if v.Num(i) < lo {
				v.SetNum(i, lo)
			}
			if v.Num(i) > hi {
				v.SetNum(i, hi)
			}
		}
	})
}

// scaleParams holds fitted scaling parameters for one column.
type scaleParams struct {
	method string
	a, b   float64 // standard: mean/std; minmax: min/span; decimal: 1/pow10, 0
}

func fitScale(c *data.Column, method string) (scaleParams, error) {
	st := c.NumericStats()
	switch method {
	case "standard":
		std := st.Std
		if std == 0 {
			std = 1
		}
		return scaleParams{method: method, a: st.Mean, b: std}, nil
	case "minmax":
		span := st.Max - st.Min
		if span == 0 {
			span = 1
		}
		return scaleParams{method: method, a: st.Min, b: span}, nil
	case "decimal":
		maxAbs := math.Max(math.Abs(st.Min), math.Abs(st.Max))
		p := 1.0
		for maxAbs >= 1 {
			maxAbs /= 10
			p *= 10
		}
		return scaleParams{method: method, a: p, b: 0}, nil
	default:
		return scaleParams{}, fmt.Errorf("unknown scaling method %q", method)
	}
}

func (sp scaleParams) apply(sh *sharder, c *data.Column) {
	sh.transform("scale", c, func(v *data.Column) {
		for i := 0; i < v.Len(); i++ {
			if v.IsMissing(i) {
				continue
			}
			switch sp.method {
			case "standard":
				v.SetNum(i, (v.Num(i)-sp.a)/sp.b)
			case "minmax":
				v.SetNum(i, (v.Num(i)-sp.a)/sp.b)
			case "decimal":
				v.SetNum(i, v.Num(i)/sp.a)
			}
		}
	})
	// Kind changes must land on the real column, not a shard view —
	// they are hoisted out of the sharded body by construction.
	c.Kind = data.KindFloat
}

// topCategories returns up to max categories of c by descending frequency
// (ties broken alphabetically for determinism).
func topCategories(c *data.Column, max int) []string {
	counts := map[string]int{}
	for i := 0; i < c.Len(); i++ {
		if !c.IsMissing(i) {
			counts[c.ValueString(i)]++
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > max {
		keys = keys[:max]
	}
	return keys
}

// oneHot replaces col with 0/1 indicator columns for cats.
func oneHot(sh *sharder, t *data.Table, col string, cats []string) error {
	c := t.Col(col)
	if c == nil {
		return fmt.Errorf("column %q missing", col)
	}
	n := c.Len()
	idx := make(map[string]int, len(cats))
	vals := make([][]float64, len(cats))
	for j, cat := range cats {
		idx[cat] = j
		vals[j] = make([]float64, n)
	}
	sh.ranges("onehot", n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if c.IsMissing(i) {
				continue
			}
			if j, ok := idx[c.ValueString(i)]; ok {
				vals[j][i] = 1
			}
		}
	})
	t.DropColumn(col)
	for j, cat := range cats {
		if err := t.AddColumn(data.NewNumeric(encodedName(col, cat), vals[j])); err != nil {
			return err
		}
	}
	return nil
}

// kHot replaces a list column with per-item indicator columns.
func kHot(sh *sharder, t *data.Table, col string, items []string) error {
	c := t.Col(col)
	if c == nil {
		return fmt.Errorf("column %q missing", col)
	}
	n := c.Len()
	idx := make(map[string]int, len(items))
	vals := make([][]float64, len(items))
	for j, item := range items {
		idx[item] = j
		vals[j] = make([]float64, n)
	}
	sh.ranges("khot", n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if c.IsMissing(i) {
				continue
			}
			for _, part := range strings.Split(c.Str(i), ",") {
				if j, ok := idx[strings.TrimSpace(part)]; ok {
					vals[j][i] = 1
				}
			}
		}
	})
	t.DropColumn(col)
	for j, item := range items {
		if err := t.AddColumn(data.NewNumeric(encodedName(col, item), vals[j])); err != nil {
			return err
		}
	}
	return nil
}

// listItems returns the sorted item vocabulary of a list column (capped).
func listItems(c *data.Column, max int) []string {
	set := map[string]struct{}{}
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) {
			continue
		}
		for _, part := range strings.Split(c.Str(i), ",") {
			p := strings.TrimSpace(part)
			if p != "" {
				set[p] = struct{}{}
			}
		}
	}
	items := make([]string, 0, len(set))
	for k := range set {
		items = append(items, k)
	}
	sort.Strings(items)
	if len(items) > max {
		items = items[:max]
	}
	return items
}

func encodedName(col, cat string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, cat)
	if len(clean) > 24 {
		clean = clean[:24]
	}
	return col + "__" + clean
}

// hashEncode replaces a column with a single numeric bucket column.
func hashEncode(sh *sharder, t *data.Table, col string, buckets int) error {
	c := t.Col(col)
	if c == nil {
		return fmt.Errorf("column %q missing", col)
	}
	vals := make([]float64, c.Len())
	nc := data.NewNumeric(col+"__hash", vals)
	sh.ranges("hash_encode", c.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if c.IsMissing(i) {
				// Preserve the missing mask.
				nc.SetMissing(i)
				continue
			}
			vals[i] = float64(stringHash(c.ValueString(i)) % uint64(buckets))
		}
	})
	t.DropColumn(col)
	return t.AddColumn(nc)
}

func stringHash(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// ordinalEncode maps train categories to indices; unseen values become -1.
func ordinalEncode(sh *sharder, t *data.Table, col string, mapping map[string]int) error {
	c := t.Col(col)
	if c == nil {
		return fmt.Errorf("column %q missing", col)
	}
	vals := make([]float64, c.Len())
	sh.ranges("ordinal", c.Len(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if c.IsMissing(i) {
				vals[i] = -1
				continue
			}
			if idx, ok := mapping[c.ValueString(i)]; ok {
				vals[i] = float64(idx)
			} else {
				vals[i] = -1
			}
		}
	})
	t.DropColumn(col)
	return t.AddColumn(data.NewNumeric(col+"__ord", vals))
}

// splitComposite splits values like "7050 CA" into a numeric-token part and
// an alpha-token part, creating two new string columns.
func splitComposite(sh *sharder, t *data.Table, col, nameA, nameB string) error {
	c := t.Col(col)
	if c == nil {
		return fmt.Errorf("column %q missing", col)
	}
	n := c.Len()
	alpha := make([]string, n)
	num := make([]string, n)
	alphaCol := data.NewString(nameA, alpha)
	numCol := data.NewString(nameB, num)
	sh.ranges("split_composite", n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if c.IsMissing(i) {
				alphaCol.SetMissing(i)
				numCol.SetMissing(i)
				continue
			}
			var alphaParts, numParts []string
			for _, tok := range strings.Fields(c.Str(i)) {
				if isNumericToken(tok) {
					numParts = append(numParts, tok)
				} else {
					alphaParts = append(alphaParts, tok)
				}
			}
			if len(alphaParts) == 0 {
				alphaCol.SetMissing(i)
			} else {
				alphaCol.SetStr(i, strings.Join(alphaParts, " "))
			}
			if len(numParts) == 0 {
				numCol.SetMissing(i)
			} else {
				numCol.SetStr(i, strings.Join(numParts, " "))
			}
		}
	})
	t.DropColumn(col)
	if err := t.AddColumn(alphaCol); err != nil {
		return err
	}
	return t.AddColumn(numCol)
}

func isNumericToken(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// extractToken rewrites each sentence cell to its content token (longest
// non-stopword token), turning sentence columns into categoricals.
func extractToken(sh *sharder, c *data.Column) {
	sh.transform("extract_token", c, func(v *data.Column) {
		for i := 0; i < v.Len(); i++ {
			if v.IsMissing(i) {
				continue
			}
			v.SetStr(i, ContentToken(v.Str(i)))
		}
	})
}

// ContentToken returns the informative token of a sentence value: the
// longest token that is not a known filler word (ties: first occurrence).
func ContentToken(s string) string {
	best := ""
	for _, tok := range strings.Fields(s) {
		clean := strings.Trim(strings.ToLower(tok), "().,;:!?")
		if clean == "" || sentenceStopwords[clean] {
			continue
		}
		if len(clean) > len(best) {
			best = clean
		}
	}
	if best == "" {
		return strings.TrimSpace(strings.ToLower(s))
	}
	return best
}

// NormalizeValue canonicalizes a categorical surface form: trim, lower,
// unify separators, collapse spaces. Semantically-equivalent dirty variants
// produced by the generator collapse to the same normal form.
func NormalizeValue(s string) string {
	s = strings.TrimSpace(strings.ToLower(s))
	s = strings.ReplaceAll(s, "-", "_")
	for strings.Contains(s, "  ") {
		s = strings.ReplaceAll(s, "  ", " ")
	}
	return s
}

// DedupMapping builds raw→canonical over the distinct values of a column:
// values sharing a normal form map to the most frequent raw spelling.
func DedupMapping(c *data.Column) map[string]string {
	counts := map[string]int{}
	for i := 0; i < c.Len(); i++ {
		if !c.IsMissing(i) {
			counts[c.ValueString(i)]++
		}
	}
	groups := map[string][]string{}
	for raw := range counts {
		nf := NormalizeValue(raw)
		groups[nf] = append(groups[nf], raw)
	}
	out := map[string]string{}
	for _, raws := range groups {
		sort.Slice(raws, func(i, j int) bool {
			if counts[raws[i]] != counts[raws[j]] {
				return counts[raws[i]] > counts[raws[j]]
			}
			return raws[i] < raws[j]
		})
		canon := raws[0]
		for _, raw := range raws {
			out[raw] = canon
		}
	}
	return out
}

// applyMapping rewrites string cells through the mapping; unmapped values
// are normalized and re-looked-up so unseen test variants still collapse.
func applyMapping(sh *sharder, c *data.Column, mapping map[string]string, byNormal map[string]string) {
	sh.transform("dedup_values", c, func(v *data.Column) {
		for i := 0; i < v.Len(); i++ {
			if v.IsMissing(i) {
				continue
			}
			s := v.Str(i)
			if to, ok := mapping[s]; ok {
				v.SetStr(i, to)
				continue
			}
			if to, ok := byNormal[NormalizeValue(s)]; ok {
				v.SetStr(i, to)
			}
		}
	})
}

// rebalanceADASYN oversamples minority classes on the train table by
// jittered duplication of minority rows (an ADASYN-flavoured synthetic
// sampler over mixed-type rows: numeric cells get Gaussian jitter scaled by
// the column std, other cells are copied).
func rebalanceADASYN(t *data.Table, target string, seed int64) error {
	c := t.Col(target)
	if c == nil {
		return fmt.Errorf("target %q missing", target)
	}
	groups := map[string][]int{}
	for i := 0; i < t.NumRows(); i++ {
		groups[c.ValueString(i)] = append(groups[c.ValueString(i)], i)
	}
	maxN := 0
	for _, rows := range groups {
		if len(rows) > maxN {
			maxN = len(rows)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	stds := map[string]float64{}
	for _, col := range t.Cols {
		if col.Kind.IsNumeric() && col.Name != target {
			stds[col.Name] = col.NumericStats().Std
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, label := range keys {
		rows := groups[label]
		need := maxN - len(rows)
		// Cap synthesis to 3x the class size to bound blow-up on extreme
		// imbalance.
		if need > 3*len(rows) {
			need = 3 * len(rows)
		}
		for k := 0; k < need; k++ {
			src := rows[rng.Intn(len(rows))]
			for _, col := range t.Cols {
				col.AppendFrom(col, src)
				if std, ok := stds[col.Name]; ok && !col.IsMissing(col.Len()-1) {
					last := col.Len() - 1
					col.SetNum(last, col.Num(last)+rng.NormFloat64()*std*0.05)
				}
			}
		}
	}
	return nil
}

// augmentRegression densifies sparse target regions by jittered duplication
// (the Imbalanced-Learning-Regression analogue).
func augmentRegression(t *data.Table, target string, factor float64, seed int64) error {
	c := t.Col(target)
	if c == nil {
		return fmt.Errorf("target %q missing", target)
	}
	if !c.Kind.IsNumeric() {
		return fmt.Errorf("regression augmentation needs numeric target")
	}
	rng := rand.New(rand.NewSource(seed))
	lo, hi := c.Quantile(0.1), c.Quantile(0.9)
	var tails []int
	for i := 0; i < c.Len(); i++ {
		if !c.IsMissing(i) && (c.Num(i) < lo || c.Num(i) > hi) {
			tails = append(tails, i)
		}
	}
	if len(tails) == 0 {
		return nil
	}
	need := int(float64(t.NumRows()) * factor)
	stds := map[string]float64{}
	for _, col := range t.Cols {
		if col.Kind.IsNumeric() {
			stds[col.Name] = col.NumericStats().Std
		}
	}
	for k := 0; k < need; k++ {
		src := tails[rng.Intn(len(tails))]
		for _, col := range t.Cols {
			col.AppendFrom(col, src)
			if std, ok := stds[col.Name]; ok && !col.IsMissing(col.Len()-1) {
				last := col.Len() - 1
				col.SetNum(last, col.Num(last)+rng.NormFloat64()*std*0.05)
			}
		}
	}
	return nil
}

// Exported wrappers for catalog materialization (internal/catalog reuses
// the exact transforms the pipeline executor applies, so refined data and
// pipeline-transformed data behave identically).

// KHot replaces a list column with per-item indicator columns. The
// exported wrappers run serially (nil sharder): catalog materialization
// works on profile-sized samples where fan-out never pays.
func KHot(t *data.Table, col string, items []string) error { return kHot(nil, t, col, items) }

// ListItems returns the sorted item vocabulary of a list column (capped).
func ListItems(c *data.Column, max int) []string { return listItems(c, max) }

// SplitComposite splits a mixed alpha/numeric composite column into two.
func SplitComposite(t *data.Table, col, nameA, nameB string) error {
	return splitComposite(nil, t, col, nameA, nameB)
}

// ExtractTokens rewrites sentence cells to their content tokens in place.
func ExtractTokens(c *data.Column) { extractToken(nil, c) }

// ApplyValueMapping rewrites string cells through a raw→canonical mapping,
// normalizing unmapped values before a second lookup.
func ApplyValueMapping(c *data.Column, mapping map[string]string) {
	byNormal := map[string]string{}
	for raw, canon := range mapping {
		byNormal[NormalizeValue(raw)] = canon
	}
	applyMapping(nil, c, mapping, byNormal)
}
