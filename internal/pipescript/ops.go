package pipescript

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"catdb/internal/data"
)

// maxEncodedFeatures caps the total feature count encoders may create; the
// analogue of a pipeline blowing up memory through one-hot explosion.
const maxEncodedFeatures = 4096

// sentenceStopwords are the filler words the extract_token op strips; they
// cover the templates the synthetic generator uses plus common glue words,
// matching how the (simulated) LLM turns sentences into categories.
var sentenceStopwords = map[string]bool{
	"about": true, "roughly": true, "or": true, "so": true, "confirmed": true,
	"(confirmed)": true, "reported": true, "as": true, "it": true, "is": true,
	"overall": true, "the": true, "a": true, "an": true, "of": true,
	"this": true, "note": true, "number": true,
}

// imputeValue computes the fill value for a column from train data.
func imputeValue(c *data.Column, strategy string) (num float64, str string, err error) {
	switch strategy {
	case "mean":
		if !c.Kind.IsNumeric() {
			return 0, "", fmt.Errorf("mean imputation on non-numeric column %q", c.Name)
		}
		return c.NumericStats().Mean, "", nil
	case "median":
		if !c.Kind.IsNumeric() {
			return 0, "", fmt.Errorf("median imputation on non-numeric column %q", c.Name)
		}
		return c.NumericStats().Median, "", nil
	case "most_frequent":
		counts := map[string]int{}
		for i := 0; i < c.Len(); i++ {
			if !c.IsMissing(i) {
				counts[c.ValueString(i)]++
			}
		}
		best, bestN := "", -1
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if counts[k] > bestN {
				best, bestN = k, counts[k]
			}
		}
		if c.Kind.IsNumeric() {
			f, _ := strconv.ParseFloat(best, 64)
			return f, "", nil
		}
		return 0, best, nil
	default:
		if strings.HasPrefix(strategy, "constant:") {
			v := strings.TrimPrefix(strategy, "constant:")
			if c.Kind.IsNumeric() {
				f, perr := strconv.ParseFloat(v, 64)
				if perr != nil {
					return 0, "", fmt.Errorf("constant %q is not numeric", v)
				}
				return f, "", nil
			}
			return 0, v, nil
		}
		return 0, "", fmt.Errorf("unknown imputation strategy %q", strategy)
	}
}

func applyImpute(c *data.Column, num float64, str string) {
	for i := 0; i < c.Len(); i++ {
		if !c.IsMissing(i) {
			continue
		}
		c.ClearMissing(i)
		if c.Kind.IsNumeric() {
			c.SetNum(i, num)
		} else {
			c.SetStr(i, str)
		}
	}
}

// iqrBounds computes [Q1-f*IQR, Q3+f*IQR] from a train column.
func iqrBounds(c *data.Column, factor float64) (lo, hi float64) {
	q1, q3 := c.Quantile(0.25), c.Quantile(0.75)
	iqr := q3 - q1
	return q1 - factor*iqr, q3 + factor*iqr
}

func clipColumn(c *data.Column, lo, hi float64) {
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) {
			continue
		}
		if c.Num(i) < lo {
			c.SetNum(i, lo)
		}
		if c.Num(i) > hi {
			c.SetNum(i, hi)
		}
	}
}

// scaleParams holds fitted scaling parameters for one column.
type scaleParams struct {
	method string
	a, b   float64 // standard: mean/std; minmax: min/span; decimal: 1/pow10, 0
}

func fitScale(c *data.Column, method string) (scaleParams, error) {
	st := c.NumericStats()
	switch method {
	case "standard":
		std := st.Std
		if std == 0 {
			std = 1
		}
		return scaleParams{method: method, a: st.Mean, b: std}, nil
	case "minmax":
		span := st.Max - st.Min
		if span == 0 {
			span = 1
		}
		return scaleParams{method: method, a: st.Min, b: span}, nil
	case "decimal":
		maxAbs := math.Max(math.Abs(st.Min), math.Abs(st.Max))
		p := 1.0
		for maxAbs >= 1 {
			maxAbs /= 10
			p *= 10
		}
		return scaleParams{method: method, a: p, b: 0}, nil
	default:
		return scaleParams{}, fmt.Errorf("unknown scaling method %q", method)
	}
}

func (sp scaleParams) apply(c *data.Column) {
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) {
			continue
		}
		switch sp.method {
		case "standard":
			c.SetNum(i, (c.Num(i)-sp.a)/sp.b)
		case "minmax":
			c.SetNum(i, (c.Num(i)-sp.a)/sp.b)
		case "decimal":
			c.SetNum(i, c.Num(i)/sp.a)
		}
	}
	c.Kind = data.KindFloat
}

// topCategories returns up to max categories of c by descending frequency
// (ties broken alphabetically for determinism).
func topCategories(c *data.Column, max int) []string {
	counts := map[string]int{}
	for i := 0; i < c.Len(); i++ {
		if !c.IsMissing(i) {
			counts[c.ValueString(i)]++
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > max {
		keys = keys[:max]
	}
	return keys
}

// oneHot replaces col with 0/1 indicator columns for cats.
func oneHot(t *data.Table, col string, cats []string) error {
	c := t.Col(col)
	if c == nil {
		return fmt.Errorf("column %q missing", col)
	}
	n := c.Len()
	pos := t.ColIndex(col)
	newCols := make([]*data.Column, 0, len(cats))
	for _, cat := range cats {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			if !c.IsMissing(i) && c.ValueString(i) == cat {
				vals[i] = 1
			}
		}
		newCols = append(newCols, data.NewNumeric(encodedName(col, cat), vals))
	}
	t.DropColumn(col)
	for j, nc := range newCols {
		if err := t.AddColumn(nc); err != nil {
			return err
		}
		_ = j
	}
	_ = pos
	return nil
}

// kHot replaces a list column with per-item indicator columns.
func kHot(t *data.Table, col string, items []string) error {
	c := t.Col(col)
	if c == nil {
		return fmt.Errorf("column %q missing", col)
	}
	n := c.Len()
	newCols := make([]*data.Column, 0, len(items))
	for _, item := range items {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			if c.IsMissing(i) {
				continue
			}
			for _, part := range strings.Split(c.Str(i), ",") {
				if strings.TrimSpace(part) == item {
					vals[i] = 1
					break
				}
			}
		}
		newCols = append(newCols, data.NewNumeric(encodedName(col, item), vals))
	}
	t.DropColumn(col)
	for _, nc := range newCols {
		if err := t.AddColumn(nc); err != nil {
			return err
		}
	}
	return nil
}

// listItems returns the sorted item vocabulary of a list column (capped).
func listItems(c *data.Column, max int) []string {
	set := map[string]struct{}{}
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) {
			continue
		}
		for _, part := range strings.Split(c.Str(i), ",") {
			p := strings.TrimSpace(part)
			if p != "" {
				set[p] = struct{}{}
			}
		}
	}
	items := make([]string, 0, len(set))
	for k := range set {
		items = append(items, k)
	}
	sort.Strings(items)
	if len(items) > max {
		items = items[:max]
	}
	return items
}

func encodedName(col, cat string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, cat)
	if len(clean) > 24 {
		clean = clean[:24]
	}
	return col + "__" + clean
}

// hashEncode replaces a column with a single numeric bucket column.
func hashEncode(t *data.Table, col string, buckets int) error {
	c := t.Col(col)
	if c == nil {
		return fmt.Errorf("column %q missing", col)
	}
	vals := make([]float64, c.Len())
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) {
			continue
		}
		vals[i] = float64(stringHash(c.ValueString(i)) % uint64(buckets))
	}
	nc := data.NewNumeric(col+"__hash", vals)
	// Preserve the missing mask.
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) {
			nc.SetMissing(i)
		}
	}
	t.DropColumn(col)
	return t.AddColumn(nc)
}

func stringHash(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// ordinalEncode maps train categories to indices; unseen values become -1.
func ordinalEncode(t *data.Table, col string, mapping map[string]int) error {
	c := t.Col(col)
	if c == nil {
		return fmt.Errorf("column %q missing", col)
	}
	vals := make([]float64, c.Len())
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) {
			vals[i] = -1
			continue
		}
		if idx, ok := mapping[c.ValueString(i)]; ok {
			vals[i] = float64(idx)
		} else {
			vals[i] = -1
		}
	}
	t.DropColumn(col)
	return t.AddColumn(data.NewNumeric(col+"__ord", vals))
}

// splitComposite splits values like "7050 CA" into a numeric-token part and
// an alpha-token part, creating two new string columns.
func splitComposite(t *data.Table, col, nameA, nameB string) error {
	c := t.Col(col)
	if c == nil {
		return fmt.Errorf("column %q missing", col)
	}
	n := c.Len()
	alpha := make([]string, n)
	num := make([]string, n)
	alphaCol := data.NewString(nameA, alpha)
	numCol := data.NewString(nameB, num)
	for i := 0; i < n; i++ {
		if c.IsMissing(i) {
			alphaCol.SetMissing(i)
			numCol.SetMissing(i)
			continue
		}
		var alphaParts, numParts []string
		for _, tok := range strings.Fields(c.Str(i)) {
			if isNumericToken(tok) {
				numParts = append(numParts, tok)
			} else {
				alphaParts = append(alphaParts, tok)
			}
		}
		if len(alphaParts) == 0 {
			alphaCol.SetMissing(i)
		} else {
			alphaCol.SetStr(i, strings.Join(alphaParts, " "))
		}
		if len(numParts) == 0 {
			numCol.SetMissing(i)
		} else {
			numCol.SetStr(i, strings.Join(numParts, " "))
		}
	}
	t.DropColumn(col)
	if err := t.AddColumn(alphaCol); err != nil {
		return err
	}
	return t.AddColumn(numCol)
}

func isNumericToken(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// extractToken rewrites each sentence cell to its content token (longest
// non-stopword token), turning sentence columns into categoricals.
func extractToken(c *data.Column) {
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) {
			continue
		}
		c.SetStr(i, ContentToken(c.Str(i)))
	}
}

// ContentToken returns the informative token of a sentence value: the
// longest token that is not a known filler word (ties: first occurrence).
func ContentToken(s string) string {
	best := ""
	for _, tok := range strings.Fields(s) {
		clean := strings.Trim(strings.ToLower(tok), "().,;:!?")
		if clean == "" || sentenceStopwords[clean] {
			continue
		}
		if len(clean) > len(best) {
			best = clean
		}
	}
	if best == "" {
		return strings.TrimSpace(strings.ToLower(s))
	}
	return best
}

// NormalizeValue canonicalizes a categorical surface form: trim, lower,
// unify separators, collapse spaces. Semantically-equivalent dirty variants
// produced by the generator collapse to the same normal form.
func NormalizeValue(s string) string {
	s = strings.TrimSpace(strings.ToLower(s))
	s = strings.ReplaceAll(s, "-", "_")
	for strings.Contains(s, "  ") {
		s = strings.ReplaceAll(s, "  ", " ")
	}
	return s
}

// DedupMapping builds raw→canonical over the distinct values of a column:
// values sharing a normal form map to the most frequent raw spelling.
func DedupMapping(c *data.Column) map[string]string {
	counts := map[string]int{}
	for i := 0; i < c.Len(); i++ {
		if !c.IsMissing(i) {
			counts[c.ValueString(i)]++
		}
	}
	groups := map[string][]string{}
	for raw := range counts {
		nf := NormalizeValue(raw)
		groups[nf] = append(groups[nf], raw)
	}
	out := map[string]string{}
	for _, raws := range groups {
		sort.Slice(raws, func(i, j int) bool {
			if counts[raws[i]] != counts[raws[j]] {
				return counts[raws[i]] > counts[raws[j]]
			}
			return raws[i] < raws[j]
		})
		canon := raws[0]
		for _, raw := range raws {
			out[raw] = canon
		}
	}
	return out
}

// applyMapping rewrites string cells through the mapping; unmapped values
// are normalized and re-looked-up so unseen test variants still collapse.
func applyMapping(c *data.Column, mapping map[string]string, byNormal map[string]string) {
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) {
			continue
		}
		v := c.Str(i)
		if to, ok := mapping[v]; ok {
			c.SetStr(i, to)
			continue
		}
		if to, ok := byNormal[NormalizeValue(v)]; ok {
			c.SetStr(i, to)
		}
	}
}

// rebalanceADASYN oversamples minority classes on the train table by
// jittered duplication of minority rows (an ADASYN-flavoured synthetic
// sampler over mixed-type rows: numeric cells get Gaussian jitter scaled by
// the column std, other cells are copied).
func rebalanceADASYN(t *data.Table, target string, seed int64) error {
	c := t.Col(target)
	if c == nil {
		return fmt.Errorf("target %q missing", target)
	}
	groups := map[string][]int{}
	for i := 0; i < t.NumRows(); i++ {
		groups[c.ValueString(i)] = append(groups[c.ValueString(i)], i)
	}
	maxN := 0
	for _, rows := range groups {
		if len(rows) > maxN {
			maxN = len(rows)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	stds := map[string]float64{}
	for _, col := range t.Cols {
		if col.Kind.IsNumeric() && col.Name != target {
			stds[col.Name] = col.NumericStats().Std
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, label := range keys {
		rows := groups[label]
		need := maxN - len(rows)
		// Cap synthesis to 3x the class size to bound blow-up on extreme
		// imbalance.
		if need > 3*len(rows) {
			need = 3 * len(rows)
		}
		for k := 0; k < need; k++ {
			src := rows[rng.Intn(len(rows))]
			for _, col := range t.Cols {
				col.AppendFrom(col, src)
				if std, ok := stds[col.Name]; ok && !col.IsMissing(col.Len()-1) {
					last := col.Len() - 1
					col.SetNum(last, col.Num(last)+rng.NormFloat64()*std*0.05)
				}
			}
		}
	}
	return nil
}

// augmentRegression densifies sparse target regions by jittered duplication
// (the Imbalanced-Learning-Regression analogue).
func augmentRegression(t *data.Table, target string, factor float64, seed int64) error {
	c := t.Col(target)
	if c == nil {
		return fmt.Errorf("target %q missing", target)
	}
	if !c.Kind.IsNumeric() {
		return fmt.Errorf("regression augmentation needs numeric target")
	}
	rng := rand.New(rand.NewSource(seed))
	lo, hi := c.Quantile(0.1), c.Quantile(0.9)
	var tails []int
	for i := 0; i < c.Len(); i++ {
		if !c.IsMissing(i) && (c.Num(i) < lo || c.Num(i) > hi) {
			tails = append(tails, i)
		}
	}
	if len(tails) == 0 {
		return nil
	}
	need := int(float64(t.NumRows()) * factor)
	stds := map[string]float64{}
	for _, col := range t.Cols {
		if col.Kind.IsNumeric() {
			stds[col.Name] = col.NumericStats().Std
		}
	}
	for k := 0; k < need; k++ {
		src := tails[rng.Intn(len(tails))]
		for _, col := range t.Cols {
			col.AppendFrom(col, src)
			if std, ok := stds[col.Name]; ok && !col.IsMissing(col.Len()-1) {
				last := col.Len() - 1
				col.SetNum(last, col.Num(last)+rng.NormFloat64()*std*0.05)
			}
		}
	}
	return nil
}

// Exported wrappers for catalog materialization (internal/catalog reuses
// the exact transforms the pipeline executor applies, so refined data and
// pipeline-transformed data behave identically).

// KHot replaces a list column with per-item indicator columns.
func KHot(t *data.Table, col string, items []string) error { return kHot(t, col, items) }

// ListItems returns the sorted item vocabulary of a list column (capped).
func ListItems(c *data.Column, max int) []string { return listItems(c, max) }

// SplitComposite splits a mixed alpha/numeric composite column into two.
func SplitComposite(t *data.Table, col, nameA, nameB string) error {
	return splitComposite(t, col, nameA, nameB)
}

// ExtractTokens rewrites sentence cells to their content tokens in place.
func ExtractTokens(c *data.Column) { extractToken(c) }

// ApplyValueMapping rewrites string cells through a raw→canonical mapping,
// normalizing unmapped values before a second lookup.
func ApplyValueMapping(c *data.Column, mapping map[string]string) {
	byNormal := map[string]string{}
	for raw, canon := range mapping {
		byNormal[NormalizeValue(raw)] = canon
	}
	applyMapping(c, mapping, byNormal)
}
