package pipescript

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"catdb/internal/data"
)

// This file adds the extended pipeline primitives beyond the paper's core
// set: numeric binning, log transforms, interaction features, row
// deduplication, winsorizing, and target encoding. The simulated LLM uses
// a subset of them; they are also available to hand-written pipelines via
// the public ExecutePipeline API. Registration (parser arity, column
// footprints, barrier flags) lives in optable.go with the core set.

// requireColExtra resolves a column reference in an extended statement
// (shorter message than the core requireCol, kept for compatibility).
func requireColExtra(tr *data.Table, line int, name string) (*data.Column, error) {
	if c := tr.Col(name); c != nil {
		return c, nil
	}
	return nil, rtErr(line, ErrUnknownColumn, "column %q does not exist", name)
}

func (e *Executor) execBinNumeric(st Stmt, ctx *execCtx) error {
	c, err := requireColExtra(ctx.tr, st.Line, st.Arg(0))
	if err != nil {
		return err
	}
	if !c.Kind.IsNumeric() {
		return rtErr(st.Line, ErrTypeMismatch, "bin_numeric needs a numeric column, %q is %s", c.Name, c.Kind)
	}
	bins, perr := strconv.Atoi(st.Opt("bins", "8"))
	if perr != nil || bins < 2 {
		return rtErr(st.Line, ErrBadOption, "bad bins %q", st.Opt("bins", ""))
	}
	edges := make([]float64, bins-1)
	for i := range edges {
		edges[i] = c.Quantile(float64(i+1) / float64(bins))
	}
	binifyColumn(ctx.sh, c, edges)
	return ctx.apply(FittedStep{Op: "bin_numeric", Col: c.Name, Edges: edges}, st.Line, ErrBadOption)
}

func (e *Executor) execLogTransform(st Stmt, ctx *execCtx) error {
	c, err := requireColExtra(ctx.tr, st.Line, st.Arg(0))
	if err != nil {
		return err
	}
	if !c.Kind.IsNumeric() {
		return rtErr(st.Line, ErrTypeMismatch, "log_transform needs a numeric column, %q is %s", c.Name, c.Kind)
	}
	logTransformColumn(ctx.sh, c)
	return ctx.apply(FittedStep{Op: "log_transform", Col: c.Name}, st.Line, ErrBadOption)
}

func (e *Executor) execInteraction(st Stmt, ctx *execCtx) error {
	a, err := requireColExtra(ctx.tr, st.Line, st.Arg(0))
	if err != nil {
		return err
	}
	b, err := requireColExtra(ctx.tr, st.Line, st.Arg(1))
	if err != nil {
		return err
	}
	if !a.Kind.IsNumeric() || !b.Kind.IsNumeric() {
		return rtErr(st.Line, ErrTypeMismatch, "interaction needs numeric columns")
	}
	op := st.Opt("op", "product")
	name := fmt.Sprintf("%s_%s_%s", a.Name, op, b.Name)
	if err := buildInteraction(ctx.sh, ctx.tr, a.Name, b.Name, op, name); err != nil {
		return rtErr(st.Line, ErrBadOption, "%v", err)
	}
	return ctx.apply(FittedStep{Op: "interaction", Col: a.Name, ColB: b.Name,
		Method: op, Name: name}, st.Line, ErrBadOption)
}

func (e *Executor) execDropDuplicates(st Stmt, ctx *execCtx) error {
	tr := ctx.tr
	seen := map[string]bool{}
	var keep []int
	for i := 0; i < tr.NumRows(); i++ {
		var key strings.Builder
		for _, c := range tr.Cols {
			key.WriteString(c.ValueString(i))
			key.WriteByte(0x1f)
		}
		k := key.String()
		if !seen[k] {
			seen[k] = true
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return rtErr(st.Line, ErrEmptyData, "deduplication removed every row")
	}
	if len(keep) < tr.NumRows() {
		*tr = *tr.SelectRows(keep)
	}
	return nil
}

func (e *Executor) execWinsorize(st Stmt, ctx *execCtx) error {
	c, err := requireColExtra(ctx.tr, st.Line, st.Arg(0))
	if err != nil {
		return err
	}
	if !c.Kind.IsNumeric() {
		return rtErr(st.Line, ErrTypeMismatch, "winsorize needs a numeric column, %q is %s", c.Name, c.Kind)
	}
	lowQ, err1 := strconv.ParseFloat(st.Opt("lower", "0.01"), 64)
	hiQ, err2 := strconv.ParseFloat(st.Opt("upper", "0.99"), 64)
	if err1 != nil || err2 != nil || lowQ < 0 || hiQ > 1 || lowQ >= hiQ {
		return rtErr(st.Line, ErrBadOption, "bad winsorize bounds")
	}
	lo, hi := c.Quantile(lowQ), c.Quantile(hiQ)
	clipColumn(ctx.sh, c, lo, hi)
	if c.Name != e.Target {
		return ctx.apply(FittedStep{Op: "clip", Col: c.Name, Lo: lo, Hi: hi}, st.Line, ErrBadOption)
	}
	return nil
}

func (e *Executor) execTargetEncode(st Stmt, ctx *execCtx) error {
	tr := ctx.tr
	c, err := requireColExtra(tr, st.Line, st.Arg(0))
	if err != nil {
		return err
	}
	if c.Kind != data.KindString {
		return rtErr(st.Line, ErrTypeMismatch, "target_encode needs a string column, %q is %s", c.Name, c.Kind)
	}
	tcol := tr.Col(e.Target)
	if tcol == nil {
		return rtErr(st.Line, ErrTargetMissing, "target %q not found", e.Target)
	}
	if !tcol.Kind.IsNumeric() {
		return rtErr(st.Line, ErrTypeMismatch, "target encoding needs a numeric target (regression)")
	}
	// Smoothed mean encoding fitted on train.
	sums := map[string]float64{}
	counts := map[string]float64{}
	var global float64
	var n float64
	for i := 0; i < c.Len(); i++ {
		if c.IsMissing(i) || tcol.IsMissing(i) {
			continue
		}
		v := c.Str(i)
		sums[v] += tcol.Num(i)
		counts[v]++
		global += tcol.Num(i)
		n++
	}
	if n == 0 {
		return rtErr(st.Line, ErrEmptyData, "no data to fit target encoding")
	}
	global /= n
	if err := smoothedMeanEncode(ctx.sh, tr, c.Name, sums, counts, global); err != nil {
		return rtErr(st.Line, ErrBadOption, "%v", err)
	}
	return ctx.apply(FittedStep{Op: "target_encode", Col: c.Name,
		Sums: sums, Counts: counts, Global: global}, st.Line, ErrBadOption)
}

// binifyColumn maps numeric values to their bin ordinal over fitted
// quantile edges.
func binifyColumn(sh *sharder, col *data.Column, edges []float64) {
	sh.transform("bin_numeric", col, func(v *data.Column) {
		for i := 0; i < v.Len(); i++ {
			if v.IsMissing(i) {
				continue
			}
			b := 0
			for _, edge := range edges {
				if v.Num(i) > edge {
					b++
				}
			}
			v.SetNum(i, float64(b))
		}
	})
	// Kind changes land on the real column after the shard join.
	col.Kind = data.KindInt
}

// logTransformColumn applies the signed log1p transform in place:
// sign(x)·log(1+|x|) keeps negatives meaningful.
func logTransformColumn(sh *sharder, col *data.Column) {
	sh.transform("log_transform", col, func(v *data.Column) {
		for i := 0; i < v.Len(); i++ {
			if v.IsMissing(i) {
				continue
			}
			x := v.Num(i)
			s := 1.0
			if x < 0 {
				s, x = -1, -x
			}
			v.SetNum(i, s*math.Log1p(x))
		}
	})
	col.Kind = data.KindFloat
}

// buildInteraction adds a product/ratio column of two numeric sources; a
// table lacking either source is left unchanged (the interaction column
// only exists where both sources do).
func buildInteraction(sh *sharder, t *data.Table, aName, bName, op, name string) error {
	ca, cb := t.Col(aName), t.Col(bName)
	if ca == nil || cb == nil {
		return nil
	}
	vals := make([]float64, ca.Len())
	nc := data.NewNumeric(name, vals)
	sh.ranges("interaction", len(vals), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if ca.IsMissing(i) || cb.IsMissing(i) {
				nc.SetMissing(i)
				continue
			}
			switch op {
			case "ratio":
				den := cb.Num(i)
				if den == 0 {
					den = 1
				}
				vals[i] = ca.Num(i) / den
			default:
				vals[i] = ca.Num(i) * cb.Num(i)
			}
		}
	})
	return t.AddColumn(nc)
}

// tencSmoothing is the smoothed-mean prior weight of target encoding.
const tencSmoothing = 10

// smoothedMeanEncode replaces a string column with its fitted smoothed
// mean encoding. The sums/counts maps (not precomputed encodings) feed
// the identical arithmetic at fit and serve time, so unseen and seen
// categories alike encode bit-identically on both paths.
func smoothedMeanEncode(sh *sharder, t *data.Table, col string, sums, counts map[string]float64, global float64) error {
	c := t.Col(col)
	if c == nil {
		return nil
	}
	vals := make([]float64, c.Len())
	nc := data.NewNumeric(col+"__tenc", vals)
	sh.ranges("target_encode", len(vals), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if c.IsMissing(i) {
				vals[i] = global
				continue
			}
			v := c.Str(i)
			vals[i] = (sums[v] + tencSmoothing*global) / (counts[v] + tencSmoothing)
		}
	})
	t.DropColumn(col)
	return t.AddColumn(nc)
}
