package pipescript

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"catdb/internal/data"
)

// This file adds the extended pipeline primitives beyond the paper's core
// set: numeric binning, log transforms, interaction features, row
// deduplication, winsorizing, and target encoding. The simulated LLM uses
// a subset of them; they are also available to hand-written pipelines via
// the public ExecutePipeline API.

func init() {
	// Register the extended statements with the parser.
	knownOps["bin_numeric"] = 1   // bin_numeric <col> bins=N
	knownOps["log_transform"] = 1 // log_transform <col>
	knownOps["interaction"] = 2   // interaction <colA> <colB> op=product|ratio
	knownOps["drop_duplicates"] = 0
	knownOps["winsorize"] = 1     // winsorize <col> lower=0.01 upper=0.99
	knownOps["target_encode"] = 1 // target_encode <col>
}

// execExtra handles the extended statements; it returns (handled, error).
func (e *Executor) execExtra(st Stmt, tr, te *data.Table) (bool, error) {
	requireCol := func(name string) (*data.Column, error) {
		if c := tr.Col(name); c != nil {
			return c, nil
		}
		return nil, rtErr(st.Line, ErrUnknownColumn, "column %q does not exist", name)
	}
	switch st.Op {
	case "bin_numeric":
		c, err := requireCol(st.Arg(0))
		if err != nil {
			return true, err
		}
		if !c.Kind.IsNumeric() {
			return true, rtErr(st.Line, ErrTypeMismatch, "bin_numeric needs a numeric column, %q is %s", c.Name, c.Kind)
		}
		bins, perr := strconv.Atoi(st.Opt("bins", "8"))
		if perr != nil || bins < 2 {
			return true, rtErr(st.Line, ErrBadOption, "bad bins %q", st.Opt("bins", ""))
		}
		edges := make([]float64, bins-1)
		for i := range edges {
			edges[i] = c.Quantile(float64(i+1) / float64(bins))
		}
		binifyColumn(c, edges)
		if err := e.recordAndApply(FittedStep{Op: "bin_numeric", Col: c.Name, Edges: edges}, te); err != nil {
			return true, rtErr(st.Line, ErrBadOption, "%v", err)
		}
		return true, nil

	case "log_transform":
		c, err := requireCol(st.Arg(0))
		if err != nil {
			return true, err
		}
		if !c.Kind.IsNumeric() {
			return true, rtErr(st.Line, ErrTypeMismatch, "log_transform needs a numeric column, %q is %s", c.Name, c.Kind)
		}
		logTransformColumn(c)
		if err := e.recordAndApply(FittedStep{Op: "log_transform", Col: c.Name}, te); err != nil {
			return true, rtErr(st.Line, ErrBadOption, "%v", err)
		}
		return true, nil

	case "interaction":
		a, err := requireCol(st.Arg(0))
		if err != nil {
			return true, err
		}
		b, err := requireCol(st.Arg(1))
		if err != nil {
			return true, err
		}
		if !a.Kind.IsNumeric() || !b.Kind.IsNumeric() {
			return true, rtErr(st.Line, ErrTypeMismatch, "interaction needs numeric columns")
		}
		op := st.Opt("op", "product")
		name := fmt.Sprintf("%s_%s_%s", a.Name, op, b.Name)
		if err := buildInteraction(tr, a.Name, b.Name, op, name); err != nil {
			return true, rtErr(st.Line, ErrBadOption, "%v", err)
		}
		if err := e.recordAndApply(FittedStep{Op: "interaction", Col: a.Name, ColB: b.Name,
			Method: op, Name: name}, te); err != nil {
			return true, rtErr(st.Line, ErrBadOption, "%v", err)
		}
		return true, nil

	case "drop_duplicates":
		seen := map[string]bool{}
		var keep []int
		for i := 0; i < tr.NumRows(); i++ {
			var key strings.Builder
			for _, c := range tr.Cols {
				key.WriteString(c.ValueString(i))
				key.WriteByte(0x1f)
			}
			k := key.String()
			if !seen[k] {
				seen[k] = true
				keep = append(keep, i)
			}
		}
		if len(keep) == 0 {
			return true, rtErr(st.Line, ErrEmptyData, "deduplication removed every row")
		}
		if len(keep) < tr.NumRows() {
			*tr = *tr.SelectRows(keep)
		}
		return true, nil

	case "winsorize":
		c, err := requireCol(st.Arg(0))
		if err != nil {
			return true, err
		}
		if !c.Kind.IsNumeric() {
			return true, rtErr(st.Line, ErrTypeMismatch, "winsorize needs a numeric column, %q is %s", c.Name, c.Kind)
		}
		lowQ, err1 := strconv.ParseFloat(st.Opt("lower", "0.01"), 64)
		hiQ, err2 := strconv.ParseFloat(st.Opt("upper", "0.99"), 64)
		if err1 != nil || err2 != nil || lowQ < 0 || hiQ > 1 || lowQ >= hiQ {
			return true, rtErr(st.Line, ErrBadOption, "bad winsorize bounds")
		}
		lo, hi := c.Quantile(lowQ), c.Quantile(hiQ)
		clipColumn(c, lo, hi)
		if c.Name != e.Target {
			if err := e.recordAndApply(FittedStep{Op: "clip", Col: c.Name, Lo: lo, Hi: hi}, te); err != nil {
				return true, rtErr(st.Line, ErrBadOption, "%v", err)
			}
		}
		return true, nil

	case "target_encode":
		c, err := requireCol(st.Arg(0))
		if err != nil {
			return true, err
		}
		if c.Kind != data.KindString {
			return true, rtErr(st.Line, ErrTypeMismatch, "target_encode needs a string column, %q is %s", c.Name, c.Kind)
		}
		tcol := tr.Col(e.Target)
		if tcol == nil {
			return true, rtErr(st.Line, ErrTargetMissing, "target %q not found", e.Target)
		}
		if !tcol.Kind.IsNumeric() {
			return true, rtErr(st.Line, ErrTypeMismatch, "target encoding needs a numeric target (regression)")
		}
		// Smoothed mean encoding fitted on train.
		sums := map[string]float64{}
		counts := map[string]float64{}
		var global float64
		var n float64
		for i := 0; i < c.Len(); i++ {
			if c.IsMissing(i) || tcol.IsMissing(i) {
				continue
			}
			v := c.Str(i)
			sums[v] += tcol.Num(i)
			counts[v]++
			global += tcol.Num(i)
			n++
		}
		if n == 0 {
			return true, rtErr(st.Line, ErrEmptyData, "no data to fit target encoding")
		}
		global /= n
		if err := smoothedMeanEncode(tr, c.Name, sums, counts, global); err != nil {
			return true, rtErr(st.Line, ErrBadOption, "%v", err)
		}
		if err := e.recordAndApply(FittedStep{Op: "target_encode", Col: c.Name,
			Sums: sums, Counts: counts, Global: global}, te); err != nil {
			return true, rtErr(st.Line, ErrBadOption, "%v", err)
		}
		return true, nil
	}
	return false, nil
}

// binifyColumn maps numeric values to their bin ordinal over fitted
// quantile edges.
func binifyColumn(col *data.Column, edges []float64) {
	for i := 0; i < col.Len(); i++ {
		if col.IsMissing(i) {
			continue
		}
		b := 0
		for _, edge := range edges {
			if col.Num(i) > edge {
				b++
			}
		}
		col.SetNum(i, float64(b))
	}
	col.Kind = data.KindInt
}

// logTransformColumn applies the signed log1p transform in place:
// sign(x)·log(1+|x|) keeps negatives meaningful.
func logTransformColumn(col *data.Column) {
	for i := 0; i < col.Len(); i++ {
		if col.IsMissing(i) {
			continue
		}
		v := col.Num(i)
		s := 1.0
		if v < 0 {
			s, v = -1, -v
		}
		col.SetNum(i, s*math.Log1p(v))
	}
	col.Kind = data.KindFloat
}

// buildInteraction adds a product/ratio column of two numeric sources; a
// table lacking either source is left unchanged (the interaction column
// only exists where both sources do).
func buildInteraction(t *data.Table, aName, bName, op, name string) error {
	ca, cb := t.Col(aName), t.Col(bName)
	if ca == nil || cb == nil {
		return nil
	}
	vals := make([]float64, ca.Len())
	nc := data.NewNumeric(name, vals)
	for i := range vals {
		if ca.IsMissing(i) || cb.IsMissing(i) {
			nc.SetMissing(i)
			continue
		}
		switch op {
		case "ratio":
			den := cb.Num(i)
			if den == 0 {
				den = 1
			}
			vals[i] = ca.Num(i) / den
		default:
			vals[i] = ca.Num(i) * cb.Num(i)
		}
	}
	return t.AddColumn(nc)
}

// tencSmoothing is the smoothed-mean prior weight of target encoding.
const tencSmoothing = 10

// smoothedMeanEncode replaces a string column with its fitted smoothed
// mean encoding. The sums/counts maps (not precomputed encodings) feed
// the identical arithmetic at fit and serve time, so unseen and seen
// categories alike encode bit-identically on both paths.
func smoothedMeanEncode(t *data.Table, col string, sums, counts map[string]float64, global float64) error {
	c := t.Col(col)
	if c == nil {
		return nil
	}
	vals := make([]float64, c.Len())
	nc := data.NewNumeric(col+"__tenc", vals)
	for i := range vals {
		if c.IsMissing(i) {
			vals[i] = global
			continue
		}
		v := c.Str(i)
		vals[i] = (sums[v] + tencSmoothing*global) / (counts[v] + tencSmoothing)
	}
	t.DropColumn(col)
	return t.AddColumn(nc)
}
