package pipescript

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"catdb/internal/data"
)

// This file adds the extended pipeline primitives beyond the paper's core
// set: numeric binning, log transforms, interaction features, row
// deduplication, winsorizing, and target encoding. The simulated LLM uses
// a subset of them; they are also available to hand-written pipelines via
// the public ExecutePipeline API.

func init() {
	// Register the extended statements with the parser.
	knownOps["bin_numeric"] = 1   // bin_numeric <col> bins=N
	knownOps["log_transform"] = 1 // log_transform <col>
	knownOps["interaction"] = 2   // interaction <colA> <colB> op=product|ratio
	knownOps["drop_duplicates"] = 0
	knownOps["winsorize"] = 1     // winsorize <col> lower=0.01 upper=0.99
	knownOps["target_encode"] = 1 // target_encode <col>
}

// execExtra handles the extended statements; it returns (handled, error).
func (e *Executor) execExtra(st Stmt, tr, te *data.Table) (bool, error) {
	requireCol := func(name string) (*data.Column, error) {
		if c := tr.Col(name); c != nil {
			return c, nil
		}
		return nil, rtErr(st.Line, ErrUnknownColumn, "column %q does not exist", name)
	}
	switch st.Op {
	case "bin_numeric":
		c, err := requireCol(st.Arg(0))
		if err != nil {
			return true, err
		}
		if !c.Kind.IsNumeric() {
			return true, rtErr(st.Line, ErrTypeMismatch, "bin_numeric needs a numeric column, %q is %s", c.Name, c.Kind)
		}
		bins, perr := strconv.Atoi(st.Opt("bins", "8"))
		if perr != nil || bins < 2 {
			return true, rtErr(st.Line, ErrBadOption, "bad bins %q", st.Opt("bins", ""))
		}
		edges := make([]float64, bins-1)
		for i := range edges {
			edges[i] = c.Quantile(float64(i+1) / float64(bins))
		}
		binify := func(col *data.Column) {
			for i := 0; i < col.Len(); i++ {
				if col.IsMissing(i) {
					continue
				}
				b := 0
				for _, edge := range edges {
					if col.Num(i) > edge {
						b++
					}
				}
				col.SetNum(i, float64(b))
			}
			col.Kind = data.KindInt
		}
		binify(c)
		if tc := te.Col(c.Name); tc != nil {
			binify(tc)
		}
		return true, nil

	case "log_transform":
		c, err := requireCol(st.Arg(0))
		if err != nil {
			return true, err
		}
		if !c.Kind.IsNumeric() {
			return true, rtErr(st.Line, ErrTypeMismatch, "log_transform needs a numeric column, %q is %s", c.Name, c.Kind)
		}
		// Signed log1p keeps negatives meaningful: sign(x)·log(1+|x|).
		apply := func(col *data.Column) {
			for i := 0; i < col.Len(); i++ {
				if col.IsMissing(i) {
					continue
				}
				v := col.Num(i)
				s := 1.0
				if v < 0 {
					s, v = -1, -v
				}
				col.SetNum(i, s*math.Log1p(v))
			}
			col.Kind = data.KindFloat
		}
		apply(c)
		if tc := te.Col(c.Name); tc != nil {
			apply(tc)
		}
		return true, nil

	case "interaction":
		a, err := requireCol(st.Arg(0))
		if err != nil {
			return true, err
		}
		b, err := requireCol(st.Arg(1))
		if err != nil {
			return true, err
		}
		if !a.Kind.IsNumeric() || !b.Kind.IsNumeric() {
			return true, rtErr(st.Line, ErrTypeMismatch, "interaction needs numeric columns")
		}
		op := st.Opt("op", "product")
		name := fmt.Sprintf("%s_%s_%s", a.Name, op, b.Name)
		build := func(t *data.Table) error {
			ca, cb := t.Col(a.Name), t.Col(b.Name)
			if ca == nil || cb == nil {
				return nil // the interaction column only exists where both sources do
			}
			vals := make([]float64, ca.Len())
			nc := data.NewNumeric(name, vals)
			for i := range vals {
				if ca.IsMissing(i) || cb.IsMissing(i) {
					nc.SetMissing(i)
					continue
				}
				switch op {
				case "ratio":
					den := cb.Num(i)
					if den == 0 {
						den = 1
					}
					vals[i] = ca.Num(i) / den
				default:
					vals[i] = ca.Num(i) * cb.Num(i)
				}
			}
			return t.AddColumn(nc)
		}
		if err := build(tr); err != nil {
			return true, rtErr(st.Line, ErrBadOption, "%v", err)
		}
		if err := build(te); err != nil {
			return true, rtErr(st.Line, ErrBadOption, "%v", err)
		}
		return true, nil

	case "drop_duplicates":
		seen := map[string]bool{}
		var keep []int
		for i := 0; i < tr.NumRows(); i++ {
			var key strings.Builder
			for _, c := range tr.Cols {
				key.WriteString(c.ValueString(i))
				key.WriteByte(0x1f)
			}
			k := key.String()
			if !seen[k] {
				seen[k] = true
				keep = append(keep, i)
			}
		}
		if len(keep) == 0 {
			return true, rtErr(st.Line, ErrEmptyData, "deduplication removed every row")
		}
		if len(keep) < tr.NumRows() {
			*tr = *tr.SelectRows(keep)
		}
		return true, nil

	case "winsorize":
		c, err := requireCol(st.Arg(0))
		if err != nil {
			return true, err
		}
		if !c.Kind.IsNumeric() {
			return true, rtErr(st.Line, ErrTypeMismatch, "winsorize needs a numeric column, %q is %s", c.Name, c.Kind)
		}
		lowQ, err1 := strconv.ParseFloat(st.Opt("lower", "0.01"), 64)
		hiQ, err2 := strconv.ParseFloat(st.Opt("upper", "0.99"), 64)
		if err1 != nil || err2 != nil || lowQ < 0 || hiQ > 1 || lowQ >= hiQ {
			return true, rtErr(st.Line, ErrBadOption, "bad winsorize bounds")
		}
		lo, hi := c.Quantile(lowQ), c.Quantile(hiQ)
		clipColumn(c, lo, hi)
		if tc := te.Col(c.Name); tc != nil && c.Name != e.Target {
			clipColumn(tc, lo, hi)
		}
		return true, nil

	case "target_encode":
		c, err := requireCol(st.Arg(0))
		if err != nil {
			return true, err
		}
		if c.Kind != data.KindString {
			return true, rtErr(st.Line, ErrTypeMismatch, "target_encode needs a string column, %q is %s", c.Name, c.Kind)
		}
		tcol := tr.Col(e.Target)
		if tcol == nil {
			return true, rtErr(st.Line, ErrTargetMissing, "target %q not found", e.Target)
		}
		if !tcol.Kind.IsNumeric() {
			return true, rtErr(st.Line, ErrTypeMismatch, "target encoding needs a numeric target (regression)")
		}
		// Smoothed mean encoding fitted on train.
		sums := map[string]float64{}
		counts := map[string]float64{}
		var global float64
		var n float64
		for i := 0; i < c.Len(); i++ {
			if c.IsMissing(i) || tcol.IsMissing(i) {
				continue
			}
			v := c.Str(i)
			sums[v] += tcol.Num(i)
			counts[v]++
			global += tcol.Num(i)
			n++
		}
		if n == 0 {
			return true, rtErr(st.Line, ErrEmptyData, "no data to fit target encoding")
		}
		global /= n
		const smoothing = 10
		encodeOne := func(t *data.Table) error {
			col := t.Col(c.Name)
			if col == nil {
				return nil
			}
			vals := make([]float64, col.Len())
			nc := data.NewNumeric(c.Name+"__tenc", vals)
			for i := range vals {
				if col.IsMissing(i) {
					vals[i] = global
					continue
				}
				v := col.Str(i)
				cnt := counts[v]
				vals[i] = (sums[v] + smoothing*global) / (cnt + smoothing)
			}
			t.DropColumn(c.Name)
			return t.AddColumn(nc)
		}
		if err := encodeOne(tr); err != nil {
			return true, rtErr(st.Line, ErrBadOption, "%v", err)
		}
		if err := encodeOne(te); err != nil {
			return true, rtErr(st.Line, ErrBadOption, "%v", err)
		}
		return true, nil
	}
	return false, nil
}
