package pipescript

import (
	"errors"
	"math"
	"testing"

	"catdb/internal/data"
)

func extraTable(n int) *data.Table {
	t := data.NewTable("x")
	a := make([]float64, n)
	b := make([]float64, n)
	cat := make([]string, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = float64(i)
		b[i] = float64(i%5) + 1
		cat[i] = []string{"p", "q", "r"}[i%3]
		y[i] = float64(i%3)*10 + float64(i%5)
	}
	t.MustAddColumn(data.NewNumeric("a", a))
	t.MustAddColumn(data.NewNumeric("b", b))
	t.MustAddColumn(data.NewString("cat", cat))
	t.MustAddColumn(data.NewNumeric("y", y))
	return t
}

func runExtra(t *testing.T, src string, task data.Task) (*Result, error) {
	t.Helper()
	tb := extraTable(200)
	tr, te := tb.Split(0.7, 1)
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Target: "y", Task: task, Seed: 1}
	return ex.Execute(p, tr, te)
}

func TestBinNumeric(t *testing.T) {
	res, err := runExtra(t, "pipeline \"x\"\nbin_numeric \"a\" bins=4\ndrop \"cat\"\ntrain model=knn target=\"y\" k=3\n", data.Regression)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Bad bins option.
	_, err = runExtra(t, "pipeline \"x\"\nbin_numeric \"a\" bins=1\ntrain model=knn target=\"y\"\n", data.Regression)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrBadOption {
		t.Fatalf("want E_BAD_OPTION, got %v", err)
	}
	// Non-numeric column.
	_, err = runExtra(t, "pipeline \"x\"\nbin_numeric \"cat\"\ntrain model=knn target=\"y\"\n", data.Regression)
	if !errors.As(err, &re) || re.Code != ErrTypeMismatch {
		t.Fatalf("want E_TYPE_MISMATCH, got %v", err)
	}
}

func TestBinNumericValues(t *testing.T) {
	tb := extraTable(100)
	tr, te := tb.Split(0.7, 1)
	p, _ := Parse("pipeline \"x\"\nbin_numeric \"a\" bins=4\ndrop \"cat\"\ntrain model=knn target=\"y\" k=3\n")
	ex := &Executor{Target: "y", Task: data.Regression, Seed: 1}
	if _, err := ex.Execute(p, tr, te); err != nil {
		t.Fatal(err)
	}
	// The original tables are untouched (executor clones).
	if v := tr.Col("a").Num(10); v != v {
		t.Fatal("unexpected mutation")
	}
}

func TestLogTransform(t *testing.T) {
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewNumeric("v", []float64{0, math.E - 1, -(math.E - 1), 100}))
	tb.MustAddColumn(data.NewNumeric("y", []float64{1, 2, 3, 4}))
	tr, te := tb.Clone(), tb.Clone()
	p, _ := Parse("pipeline \"x\"\nlog_transform \"v\"\ntrain model=knn target=\"y\" k=1\n")
	ex := &Executor{Target: "y", Task: data.Regression, Seed: 1}
	if _, err := ex.Execute(p, tr, te); err != nil {
		t.Fatal(err)
	}
	// Signed symmetry on the low-level behaviour: re-run on a scratch
	// clone to inspect values via the train side of a fresh executor run.
	p2, _ := Parse("pipeline \"x\"\nlog_transform \"v\"\ntrain model=knn target=\"y\" k=1\n")
	scratch := tb.Clone()
	ex2 := &Executor{Target: "y", Task: data.Regression, Seed: 1}
	if _, err := ex2.Execute(p2, scratch, tb.Clone()); err != nil {
		t.Fatal(err)
	}
}

func TestInteraction(t *testing.T) {
	res, err := runExtra(t, "pipeline \"x\"\ninteraction \"a\" \"b\" op=product\ndrop \"cat\"\ntrain model=knn target=\"y\" k=3\n", data.Regression)
	if err != nil {
		t.Fatal(err)
	}
	if res.Features != 3 { // a, b, a_product_b
		t.Fatalf("features = %d, want 3", res.Features)
	}
	res2, err := runExtra(t, "pipeline \"x\"\ninteraction \"a\" \"b\" op=ratio\ndrop \"cat\"\ntrain model=knn target=\"y\" k=3\n", data.Regression)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Features != 3 {
		t.Fatalf("ratio features = %d", res2.Features)
	}
	// Unknown column.
	_, err = runExtra(t, "pipeline \"x\"\ninteraction \"a\" \"ghost\"\ntrain model=knn target=\"y\"\n", data.Regression)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrUnknownColumn {
		t.Fatalf("want E_UNKNOWN_COLUMN, got %v", err)
	}
}

func TestDropDuplicatesOp(t *testing.T) {
	tb := data.NewTable("t")
	tb.MustAddColumn(data.NewNumeric("x", []float64{1, 1, 2, 2, 3}))
	tb.MustAddColumn(data.NewNumeric("y", []float64{1, 1, 2, 2, 3}))
	tr := tb.Clone()
	te := tb.Clone()
	p, _ := Parse("pipeline \"x\"\ndrop_duplicates\ntrain model=knn target=\"y\" k=1\n")
	ex := &Executor{Target: "y", Task: data.Regression, Seed: 1}
	res, err := ex.Execute(p, tr, te)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainRows != 3 {
		t.Fatalf("rows after dedup = %d, want 3", res.TrainRows)
	}
}

func TestWinsorize(t *testing.T) {
	res, err := runExtra(t, "pipeline \"x\"\nwinsorize \"a\" lower=0.05 upper=0.95\ndrop \"cat\"\ntrain model=knn target=\"y\" k=3\n", data.Regression)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	_, err = runExtra(t, "pipeline \"x\"\nwinsorize \"a\" lower=0.9 upper=0.1\ntrain model=knn target=\"y\"\n", data.Regression)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrBadOption {
		t.Fatalf("want E_BAD_OPTION, got %v", err)
	}
}

func TestTargetEncode(t *testing.T) {
	res, err := runExtra(t, "pipeline \"x\"\ntarget_encode \"cat\"\ntrain model=knn target=\"y\" k=3\n", data.Regression)
	if err != nil {
		t.Fatal(err)
	}
	if res.Features != 3 { // a, b, cat__tenc
		t.Fatalf("features = %d, want 3", res.Features)
	}
	// Numeric column rejected.
	_, err = runExtra(t, "pipeline \"x\"\ntarget_encode \"a\"\ntrain model=knn target=\"y\"\n", data.Regression)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrTypeMismatch {
		t.Fatalf("want E_TYPE_MISMATCH, got %v", err)
	}
}

func TestExtendedOpsParse(t *testing.T) {
	for _, op := range []string{"bin_numeric", "log_transform", "interaction", "drop_duplicates", "winsorize", "target_encode"} {
		if _, ok := knownOps[op]; !ok {
			t.Errorf("op %s not registered", op)
		}
	}
}
