package pipescript

import (
	"fmt"

	"catdb/internal/data"
)

// This file is the single source of op knowledge: every PipeScript
// statement kind is registered here with its parser arity, its static
// column footprint (reads/writes/removes/adds), whether it is a
// whole-table barrier, and its executor handler. The parser (knownOps),
// the executor dispatch (execStmt), the static analyzer (Analyze), and
// the DAG builder (dag.go) all consume this one table, so they cannot
// drift from each other. `make lint-dag` enforces that no op is wired
// up anywhere else.

// colRefs is the static column footprint of one statement: which
// columns it reads, mutates in place, removes from the table, and adds.
// prefixes lists name prefixes under which the op adds a data-dependent
// set of columns (one-hot/k-hot indicator names depend on the observed
// categories, so only the "col__" prefix is known statically).
type colRefs struct {
	reads    []string
	writes   []string
	removes  []string
	adds     []string
	prefixes []string
}

// names returns every statically known column name the footprint
// mentions, in reads/writes/removes/adds order (with duplicates).
func (r colRefs) names() []string {
	out := make([]string, 0, len(r.reads)+len(r.writes)+len(r.removes)+len(r.adds))
	out = append(out, r.reads...)
	out = append(out, r.writes...)
	out = append(out, r.removes...)
	out = append(out, r.adds...)
	return out
}

// opClass is the sharding classification of an op: how its output rows
// relate to its input rows. It decides whether the row-shard executor
// (sharder.go) may split the op's apply loops across workers.
type opClass int

const (
	// opPure ops touch no columns at all (pipeline/require/evaluate).
	opPure opClass = iota
	// opElementwise ops produce output row i from input row i alone once
	// their parameters are fitted: the handler splits into a serial fit
	// step (params over the full column) and a shardable exec step that
	// writes disjoint row ranges.
	opElementwise
	// opStatefulFit ops carry cross-row state through their main
	// computation (model training, feature scoring) and do not shard at
	// the op level; their inner matrix builds may still shard.
	opStatefulFit
	// opWholeTable ops change the row set or column set in ways that
	// depend on whole-table context (row drops/appends, column drops).
	opWholeTable
)

// opSpec describes one registered statement kind.
type opSpec struct {
	name    string
	minArgs int
	// class is the sharding classification (see opClass). Validated at
	// registration: pure ops must be opPure and vice versa.
	class opClass
	// pure ops touch no columns at all (pipeline/require/evaluate);
	// they become dependency-free DAG nodes.
	pure bool
	// encoder marks category encoders for the analyzer's DOUBLE_ENCODE
	// detection (onehot, khot, hash_encode, ordinal, target_encode).
	encoder bool
	// barrier, when non-nil and true for a statement, forces serial
	// whole-table execution: the op reads or mutates columns that cannot
	// be enumerated statically (row drops/appends, "all" forms, ...).
	barrier func(st Stmt) bool
	// refs derives the static column footprint for non-barrier
	// statements. target is the executor's label column ("" omits
	// implicit target reads, which is what the analyzer wants).
	refs func(st Stmt, target string) colRefs
	// stringAdds marks ops whose added columns hold strings
	// (split_composite parts still need encoding before train).
	stringAdds bool
	exec       func(e *Executor, st Stmt, c *execCtx) error
}

// opRegistry holds every registered op, keyed by statement keyword.
var opRegistry = map[string]*opSpec{}

// registerOp installs an op into the registry and the parser's arity
// table. It panics on incomplete specs so a miswired op fails at
// package init, not silently at schedule time.
func registerOp(spec opSpec) {
	if spec.exec == nil {
		panic("pipescript: op " + spec.name + " registered without an exec handler")
	}
	if !spec.pure && spec.refs == nil && spec.barrier == nil {
		panic("pipescript: op " + spec.name + " declares neither column refs nor a barrier")
	}
	if spec.pure != (spec.class == opPure) {
		panic("pipescript: op " + spec.name + " has an inconsistent pure/opPure classification")
	}
	if _, dup := opRegistry[spec.name]; dup {
		panic("pipescript: op " + spec.name + " registered twice")
	}
	s := spec
	opRegistry[spec.name] = &s
	knownOps[spec.name] = spec.minArgs
}

// isBarrierStmt reports whether the statement must run serially against
// the real train/test tables.
func (s *opSpec) isBarrierStmt(st Stmt) bool {
	return s.barrier != nil && s.barrier(st)
}

func alwaysBarrier(Stmt) bool { return true }

// inPlaceRefs is the footprint of ops that transform one named column
// in place (impute, scale <col>, winsorize, ...).
func inPlaceRefs(st Stmt, _ string) colRefs {
	col := st.Arg(0)
	return colRefs{reads: []string{col}, writes: []string{col}}
}

// colOrWholeTable is the footprint of ops whose first argument names
// either one column or a whole-table keyword ("all"/"all_numeric").
// The keyword form enumerates its columns at run time, so it has no
// static footprint — those statements are barriers and never reach the
// scheduler's resolver; the empty footprint is what the analyzer sees.
func colOrWholeTable(keyword string) func(Stmt, string) colRefs {
	return func(st Stmt, _ string) colRefs {
		if st.Arg(0) == keyword {
			return colRefs{}
		}
		return inPlaceRefs(st, "")
	}
}

// replaceRefs is the footprint of encoders that drop the source column
// and add one derived column with a fixed suffix.
func replaceRefs(suffix string) func(Stmt, string) colRefs {
	return func(st Stmt, _ string) colRefs {
		col := st.Arg(0)
		return colRefs{reads: []string{col}, removes: []string{col}, adds: []string{col + suffix}}
	}
}

// prefixEncodeRefs is the footprint of one-hot/k-hot: the source column
// is dropped and an unknown set of "col__<cat>" indicators is added.
func prefixEncodeRefs(st Stmt, _ string) colRefs {
	col := st.Arg(0)
	return colRefs{reads: []string{col}, removes: []string{col}, prefixes: []string{col + "__"}}
}

// deferredStep is a recorded fit/transform step whose test-side
// application (recordAndApply) is postponed until the DAG merge so the
// artifact step order and test-table mutation order stay identical to
// linear execution.
type deferredStep struct {
	step FittedStep
	line int
	code string // RuntimeError code used to wrap apply errors; "" = raw
}

// deferredCap is a postponed feature-count guard: one-hot/k-hot bound
// the encoded width against the table's column count, which during DAG
// execution is only known at merge time.
type deferredCap struct {
	line int
	kind string // "one-hot" or "k-hot"
	col  string
	adds int
}

// nodeBuffer collects the side effects a DAG node defers to the merge.
type nodeBuffer struct {
	steps []deferredStep
	cap   *deferredCap
}

// execCtx carries the per-statement execution environment. On the
// linear path tr/te are the real tables and side effects apply
// immediately; on the DAG path tr is the node's private column view,
// te is nil, and apply/capOK buffer into node for the ordered merge.
type execCtx struct {
	e       *Executor
	tr      *data.Table
	te      *data.Table
	maxOH   int
	res     *Result
	trained *bool
	node    *nodeBuffer // non-nil only while running as a DAG node
	// sh is the row-shard executor for this execution (nil = serial).
	// Elementwise apply loops route through it; its worker budget is
	// shared with the DAG wave scheduler so waves × shards never
	// oversubscribe Workers.
	sh *sharder
}

// apply records a fitted step and applies it to the test table (linear
// path), or buffers it for the merge (DAG path). code wraps any apply
// error into a RuntimeError; "" returns the raw error unchanged.
func (c *execCtx) apply(step FittedStep, line int, code string) error {
	if c.node != nil {
		c.node.steps = append(c.node.steps, deferredStep{step: step, line: line, code: code})
		return nil
	}
	if err := c.e.recordAndApply(step, c.te); err != nil {
		if code == "" {
			return err
		}
		return rtErr(line, code, "%v", err)
	}
	return nil
}

// capOK enforces the encoded-feature cap against the current column
// count (linear path) or defers the check to the merge (DAG path).
func (c *execCtx) capOK(line int, kind, col string, adds int) error {
	if c.node != nil {
		c.node.cap = &deferredCap{line: line, kind: kind, col: col, adds: adds}
		return nil
	}
	if c.tr.NumCols()+adds > maxEncodedFeatures {
		return capErr(line, kind, col)
	}
	return nil
}

func capErr(line int, kind, col string) error {
	return rtErr(line, ErrTooManyFeatures, "%s of %q would exceed %d features", kind, col, maxEncodedFeatures)
}

func init() {
	// Core statements (the paper's pipeline vocabulary).
	registerOp(opSpec{name: "pipeline", minArgs: 1, pure: true, class: opPure, exec: (*Executor).execNop})
	registerOp(opSpec{name: "evaluate", minArgs: 0, pure: true, class: opPure, exec: (*Executor).execNop})
	registerOp(opSpec{name: "require", minArgs: 1, pure: true, class: opPure, exec: (*Executor).execRequire})

	registerOp(opSpec{name: "impute", minArgs: 1, class: opElementwise, refs: inPlaceRefs, exec: (*Executor).execImpute})
	registerOp(opSpec{name: "impute_all", minArgs: 0, class: opElementwise, barrier: alwaysBarrier, exec: (*Executor).execImputeAll})

	// clip_outliers <col>|all: the "all" form touches every numeric
	// column; the single-column form clips one column in place.
	registerOp(opSpec{name: "clip_outliers", minArgs: 1, class: opElementwise,
		barrier: func(st Stmt) bool { return st.Arg(0) == "all" },
		refs:    colOrWholeTable("all"), exec: (*Executor).execClipOutliers})
	// remove_outliers drops train rows, so it is always a barrier; its
	// refs exist for the analyzer's column checks only.
	registerOp(opSpec{name: "remove_outliers", minArgs: 1, class: opWholeTable,
		barrier: alwaysBarrier, refs: colOrWholeTable("all"),
		exec: (*Executor).execRemoveOutliers})
	registerOp(opSpec{name: "scale", minArgs: 1, class: opElementwise,
		barrier: func(st Stmt) bool { return st.Arg(0) == "all_numeric" },
		refs:    colOrWholeTable("all_numeric"), exec: (*Executor).execScale})

	registerOp(opSpec{name: "onehot", minArgs: 1, encoder: true, class: opElementwise,
		refs: prefixEncodeRefs, exec: (*Executor).execOnehot})
	registerOp(opSpec{name: "khot", minArgs: 1, encoder: true, class: opElementwise,
		refs: prefixEncodeRefs, exec: (*Executor).execKhot})
	registerOp(opSpec{name: "hash_encode", minArgs: 1, encoder: true, class: opElementwise,
		refs: replaceRefs("__hash"), exec: (*Executor).execHashEncode})
	registerOp(opSpec{name: "ordinal", minArgs: 1, encoder: true, class: opElementwise,
		refs: replaceRefs("__ord"), exec: (*Executor).execOrdinal})

	registerOp(opSpec{name: "drop", minArgs: 1, class: opWholeTable,
		refs: func(st Stmt, _ string) colRefs {
			return colRefs{reads: []string{st.Arg(0)}, removes: []string{st.Arg(0)}}
		}, exec: (*Executor).execDrop})
	registerOp(opSpec{name: "drop_constant", minArgs: 0, class: opWholeTable, barrier: alwaysBarrier, exec: (*Executor).execDropConstant})
	registerOp(opSpec{name: "drop_sparse", minArgs: 0, class: opWholeTable, barrier: alwaysBarrier, exec: (*Executor).execDropSparse})

	registerOp(opSpec{name: "split_composite", minArgs: 1, stringAdds: true, class: opElementwise,
		refs: func(st Stmt, _ string) colRefs {
			col := st.Arg(0)
			names := splitNames(st, col)
			return colRefs{reads: []string{col}, removes: []string{col}, adds: names[:]}
		}, exec: (*Executor).execSplitComposite})
	registerOp(opSpec{name: "extract_token", minArgs: 1, class: opElementwise, refs: inPlaceRefs, exec: (*Executor).execExtractToken})
	registerOp(opSpec{name: "dedup_values", minArgs: 1, class: opElementwise, refs: inPlaceRefs, exec: (*Executor).execDedupValues})

	registerOp(opSpec{name: "rebalance", minArgs: 0, class: opWholeTable, barrier: alwaysBarrier, exec: (*Executor).execRebalance})
	registerOp(opSpec{name: "augment", minArgs: 0, class: opWholeTable, barrier: alwaysBarrier, exec: (*Executor).execAugment})
	registerOp(opSpec{name: "select_topk", minArgs: 0, class: opStatefulFit, barrier: alwaysBarrier, exec: (*Executor).execSelectTopK})
	registerOp(opSpec{name: "train", minArgs: 0, class: opStatefulFit, barrier: alwaysBarrier, exec: (*Executor).execTrain})

	// Extended statements beyond the paper's core set (ops_extra.go).
	registerOp(opSpec{name: "bin_numeric", minArgs: 1, class: opElementwise, refs: inPlaceRefs, exec: (*Executor).execBinNumeric})
	registerOp(opSpec{name: "log_transform", minArgs: 1, class: opElementwise, refs: inPlaceRefs, exec: (*Executor).execLogTransform})
	registerOp(opSpec{name: "interaction", minArgs: 2, class: opElementwise,
		refs: func(st Stmt, _ string) colRefs {
			a, b := st.Arg(0), st.Arg(1)
			name := fmt.Sprintf("%s_%s_%s", a, st.Opt("op", "product"), b)
			return colRefs{reads: []string{a, b}, adds: []string{name}}
		}, exec: (*Executor).execInteraction})
	registerOp(opSpec{name: "drop_duplicates", minArgs: 0, class: opWholeTable, barrier: alwaysBarrier, exec: (*Executor).execDropDuplicates})
	registerOp(opSpec{name: "winsorize", minArgs: 1, class: opElementwise, refs: inPlaceRefs, exec: (*Executor).execWinsorize})
	registerOp(opSpec{name: "target_encode", minArgs: 1, encoder: true, class: opElementwise,
		refs: func(st Stmt, target string) colRefs {
			col := st.Arg(0)
			r := colRefs{reads: []string{col}, removes: []string{col}, adds: []string{col + "__tenc"}}
			if target != "" {
				r.reads = append(r.reads, target)
			}
			return r
		}, exec: (*Executor).execTargetEncode})
}
