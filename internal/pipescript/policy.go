package pipescript

import (
	"sort"
	"strings"
)

// Policy enforces organizational library constraints on pipeline
// execution — the allowed/disallowed-library compliance lists that §4.3
// of the paper names as future work. A disallowed model or package raises
// ErrPolicy at execution time, which the error-management loop repairs by
// switching to an allowed alternative.
type Policy struct {
	// DisallowedModels lists model names pipelines must not train.
	DisallowedModels []string
	// DisallowedPackages lists packages pipelines must not require
	// (checked before the installed-package check).
	DisallowedPackages []string
}

// ErrPolicy is the runtime error code for compliance violations.
const ErrPolicy = "E_POLICY"

// modelDisallowed reports whether the policy bans the model.
func (p *Policy) modelDisallowed(model string) bool {
	if p == nil {
		return false
	}
	for _, m := range p.DisallowedModels {
		if m == model {
			return true
		}
	}
	return false
}

// packageDisallowed reports whether the policy bans the package.
func (p *Policy) packageDisallowed(pkg string) bool {
	if p == nil {
		return false
	}
	for _, m := range p.DisallowedPackages {
		if m == pkg {
			return true
		}
	}
	return false
}

// allowedModelAlternatives returns the known model names the policy
// permits, sorted, for inclusion in error messages so the LLM fixer can
// pick a compliant replacement.
func (p *Policy) allowedModelAlternatives() []string {
	var out []string
	for m := range knownModels {
		if !p.modelDisallowed(m) {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// policyCheck raises ErrPolicy for statements that violate the policy.
func (e *Executor) policyCheck(st Stmt) error {
	if e.Policy == nil {
		return nil
	}
	switch st.Op {
	case "require":
		if e.Policy.packageDisallowed(st.Arg(0)) {
			return rtErr(st.Line, ErrPolicy, "package %q is disallowed by organizational policy", st.Arg(0))
		}
	case "train":
		model := st.Opt("model", "random_forest")
		if e.Policy.modelDisallowed(model) {
			return rtErr(st.Line, ErrPolicy,
				"model %q is disallowed by organizational policy; allowed alternatives: %s",
				model, strings.Join(e.Policy.allowedModelAlternatives(), ", "))
		}
	}
	return nil
}
