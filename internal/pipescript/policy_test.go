package pipescript

import (
	"errors"
	"testing"

	"catdb/internal/data"
)

func policyTable() (*data.Table, *data.Table) {
	t := data.NewTable("p")
	n := 100
	x := make([]float64, n)
	y := make([]string, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i % 10)
		y[i] = []string{"a", "b"}[i%2]
	}
	t.MustAddColumn(data.NewNumeric("x", x))
	t.MustAddColumn(data.NewString("y", y))
	return t.Split(0.7, 1)
}

func TestPolicyDisallowedModel(t *testing.T) {
	tr, te := policyTable()
	p, _ := Parse("pipeline \"x\"\ntrain model=random_forest target=\"y\" trees=5\n")
	ex := &Executor{Target: "y", Task: data.Binary, Seed: 1,
		Policy: &Policy{DisallowedModels: []string{"random_forest"}}}
	_, err := ex.Execute(p, tr, te)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrPolicy {
		t.Fatalf("want E_POLICY, got %v", err)
	}
	if !contains(re.Msg, "allowed alternatives") {
		t.Fatalf("message must list alternatives: %s", re.Msg)
	}
	// Allowed model passes.
	p2, _ := Parse("pipeline \"x\"\ntrain model=gbm target=\"y\" rounds=5\n")
	if _, err := ex.Execute(p2, tr, te); err != nil {
		t.Fatalf("allowed model must pass: %v", err)
	}
}

func TestPolicyDisallowedPackage(t *testing.T) {
	tr, te := policyTable()
	p, _ := Parse("pipeline \"x\"\nrequire tabular\ntrain model=gbm target=\"y\" rounds=5\n")
	ex := &Executor{Target: "y", Task: data.Binary, Seed: 1,
		Policy: &Policy{DisallowedPackages: []string{"tabular"}}}
	_, err := ex.Execute(p, tr, te)
	var re *RuntimeError
	if !errors.As(err, &re) || re.Code != ErrPolicy {
		t.Fatalf("want E_POLICY, got %v", err)
	}
}

func TestPolicyNilIsNoop(t *testing.T) {
	tr, te := policyTable()
	p, _ := Parse("pipeline \"x\"\ntrain model=random_forest target=\"y\" trees=5\n")
	ex := &Executor{Target: "y", Task: data.Binary, Seed: 1}
	if _, err := ex.Execute(p, tr, te); err != nil {
		t.Fatalf("nil policy must not interfere: %v", err)
	}
}

func TestPolicyAlternativesExcludeBanned(t *testing.T) {
	pol := &Policy{DisallowedModels: []string{"random_forest", "gbm"}}
	for _, alt := range pol.allowedModelAlternatives() {
		if alt == "random_forest" || alt == "gbm" {
			t.Fatalf("banned model in alternatives: %s", alt)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
