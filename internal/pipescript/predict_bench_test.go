package pipescript

import (
	"sort"
	"testing"

	"catdb/internal/data"
	"catdb/internal/obs"
)

// benchArtifact fits the full-pipeline serving benchmark artifact once:
// impute + dedup + one-hot + k-hot + scaling in front of a forest.
func benchArtifact(b *testing.B) (*FittedPipeline, *data.Table) {
	b.Helper()
	src := `pipeline "bench"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
scale all_numeric method=standard
train model=random_forest target="y" trees=15
evaluate metric=auto
`
	prog, err := Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	tr, te := messyTable(1200, 2).Split(0.7, 5)
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 1}
	_, fp, err := ex.Fit(prog, tr, te)
	if err != nil {
		b.Fatal(err)
	}
	te.DropColumn("y") // serving batches carry raw features only
	return fp, te
}

// BenchmarkPredictSingleRow measures request-style serving latency: one
// raw row through recorded transforms plus inference. Alongside the mean
// ns/op it reports the p50/p99 of the individual call latencies, which
// is what a serving SLO is written against.
func BenchmarkPredictSingleRow(b *testing.B) {
	fp, te := benchArtifact(b)
	row := te.Head(1)
	if _, err := fp.Predict(row); err != nil { // warm the live model
		b.Fatal(err)
	}
	lat := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := obs.Now()
		if _, err := fp.Predict(row); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, float64(obs.Since(start).Nanoseconds()))
	}
	b.StopTimer()
	sort.Float64s(lat)
	b.ReportMetric(lat[len(lat)/2], "p50-ns")
	b.ReportMetric(lat[len(lat)*99/100], "p99-ns")
}

// BenchmarkPredictBatch measures throughput over a 512-row batch — the
// model zoo's internal inference chunk size — and reports rows/second.
func BenchmarkPredictBatch(b *testing.B) {
	fp, te := benchArtifact(b)
	rows := make([]int, 512)
	for i := range rows {
		rows[i] = i % te.NumRows()
	}
	batch := te.SelectRows(rows)
	if _, err := fp.Predict(batch); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := obs.Now()
	for i := 0; i < b.N; i++ {
		if _, err := fp.Predict(batch); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := obs.Since(start).Seconds()
	b.StopTimer()
	if elapsed > 0 {
		b.ReportMetric(float64(512*b.N)/elapsed, "qps")
	}
}
