package pipescript

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"catdb/internal/data"
)

// genProgram builds a random syntactically-valid PipeScript program.
func genProgram(rng *rand.Rand) string {
	cols := []string{"alpha", "beta", "gamma", "delta"}
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline %q\n", "prop")
	n := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		col := cols[rng.Intn(len(cols))]
		switch rng.Intn(8) {
		case 0:
			fmt.Fprintf(&b, "impute %q strategy=median\n", col)
		case 1:
			b.WriteString("impute_all strategy=auto\n")
		case 2:
			fmt.Fprintf(&b, "onehot %q\n", col)
		case 3:
			fmt.Fprintf(&b, "scale %q method=standard\n", col)
		case 4:
			fmt.Fprintf(&b, "drop %q\n", col)
		case 5:
			fmt.Fprintf(&b, "clip_outliers %q method=iqr factor=1.5\n", col)
		case 6:
			fmt.Fprintf(&b, "hash_encode %q buckets=%d\n", col, 2+rng.Intn(64))
		default:
			b.WriteString("drop_constant\n")
		}
	}
	fmt.Fprintf(&b, "train model=random_forest target=%q trees=%d\n", "y", 5+rng.Intn(40))
	b.WriteString("evaluate metric=auto\n")
	return b.String()
}

// Property: every generated valid program parses, and re-parsing the
// statement count is stable.
func TestPropertyValidProgramsParse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genProgram(rng)
		p, err := Parse(src)
		if err != nil {
			return false
		}
		p2, err := Parse(src)
		if err != nil {
			return false
		}
		return len(p.Stmts) == len(p2.Stmts) && p.TrainStmt() != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NormalizeValue is idempotent.
func TestPropertyNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := NormalizeValue(s)
		return NormalizeValue(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: DedupMapping maps every distinct value, and applying the
// mapping twice equals applying it once (the mapping is closed).
func TestPropertyDedupMappingClosed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := []string{"red", "green", "blue", "teal"}
		n := 10 + rng.Intn(50)
		vals := make([]string, n)
		for i := range vals {
			v := base[rng.Intn(len(base))]
			switch rng.Intn(4) {
			case 0:
				v = strings.ToUpper(v)
			case 1:
				v = " " + v
			case 2:
				v = v + " "
			}
			vals[i] = v
		}
		c := data.NewString("c", vals)
		m := DedupMapping(c)
		for _, d := range c.Distinct() {
			if _, ok := m[d]; !ok {
				return false
			}
		}
		// Closure: canonical values map to themselves.
		for _, canon := range m {
			if m[canon] != canon {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: one-hot encoding produces rows whose indicator sum is at most
// 1 and exactly 1 for non-missing cells of known categories.
func TestPropertyOneHotRowSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = string(rune('a' + rng.Intn(5)))
		}
		c := data.NewString("c", vals)
		if rng.Intn(2) == 0 {
			c.SetMissing(rng.Intn(n))
		}
		t := data.NewTable("t")
		t.MustAddColumn(c.Clone())
		cats := topCategories(c, 10)
		if err := oneHot(nil, t, "c", cats); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for _, col := range t.Cols {
				sum += col.Num(i)
			}
			if c.IsMissing(i) {
				if sum != 0 {
					return false
				}
			} else if sum != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ContentToken never returns a known stopword for inputs that
// contain at least one content token.
func TestPropertyContentToken(t *testing.T) {
	tokens := []string{"alpha", "bravo", "kilo9", "zz_top"}
	templates := []string{"about %s", "%s (confirmed)", "reported as %s", "it is %s overall"}
	f := func(ti, wi uint8) bool {
		tok := tokens[int(wi)%len(tokens)]
		s := strings.Replace(templates[int(ti)%len(templates)], "%s", tok, 1)
		return ContentToken(s) == tok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: executing the same program twice on the same data yields
// identical metrics (full determinism of the executor).
func TestPropertyExecutorDeterminism(t *testing.T) {
	tb := messyTable(300, 42)
	tr, te := tb.Split(0.7, 7)
	src := `pipeline "det"
impute "num" strategy=median
dedup_values "cat"
onehot "cat"
khot "lst"
train model=random_forest target="y" trees=10
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Target: "y", Task: data.Multiclass, Seed: 5}
	a, err := ex.Execute(p, tr, te)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ex.Execute(p, tr, te)
	if err != nil {
		t.Fatal(err)
	}
	if a.TestAUC != b.TestAUC || a.TestAcc != b.TestAcc || a.Features != b.Features {
		t.Fatalf("executor nondeterministic: %+v vs %+v", a, b)
	}
}
